// Lintlogs enforces the structured-logging boundary: no package under
// internal/ may import the legacy "log" package except internal/obs (which
// owns the slog setup).  Printf-style logging loses the request_id
// correlation the telemetry layer provides, so a stray log.Printf is a
// regression the type system cannot catch — this gate can.
//
// Usage (wired into `make lint-logs`, part of tier-1):
//
//	go run ./scripts/lintlogs
//
// Exits non-zero listing every offending file.  Test files are exempt:
// they log to *testing.T, and a test that imports "log" to capture output
// is not a production logging path.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

func main() {
	bad, err := scan("internal")
	if err != nil {
		fmt.Fprintln(os.Stderr, "lintlogs:", err)
		os.Exit(1)
	}
	if len(bad) > 0 {
		for _, f := range bad {
			fmt.Fprintf(os.Stderr, "lintlogs: %s imports %q; use *slog.Logger (internal/obs) so log lines carry request/job IDs\n", f, "log")
		}
		os.Exit(1)
	}
	fmt.Println("lintlogs: ok")
}

// scan walks root for non-test Go files outside internal/obs that import
// the legacy "log" package.
func scan(root string) ([]string, error) {
	var bad []string
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if filepath.ToSlash(path) == "internal/obs" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
		for _, imp := range f.Imports {
			if p, _ := strconv.Unquote(imp.Path.Value); p == "log" {
				bad = append(bad, path)
			}
		}
		return nil
	})
	return bad, err
}
