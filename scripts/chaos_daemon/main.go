// Command chaos_daemon is the fault-tolerance counterpart of
// scripts/smoke_daemon, run by `make chaos-smoke`: it builds subgeminid
// and rehearses the failure modes OPERATIONS.md documents, against the
// real binary over real HTTP.  Three scenarios:
//
//   - kill-mid-job: a long match job is SIGKILLed mid-run; on restart the
//     boot recovery marks the interrupted record failed and the daemon
//     keeps serving matches.
//   - disk-error: with store.write-snapshot armed via -faults, a circuit
//     upload fails, /readyz flips to 503 while /healthz stays 200, and
//     the next clean write restores readiness.
//   - overload: with -shed-inflight 1, a pathological ring match (the
//     worst case for Phase II) holds the inflight budget; batch, sweep
//     and job submissions shed with 429 + Retry-After while a single
//     POST /v1/match stays live; the pathological match itself is cut by
//     its deadline and returns within 2x of it; goroutine counts return
//     to the pre-overload baseline (no leaks).
//   - edit-storm: concurrent sweeps race a sequence of PATCH edit
//     batches with one injected edit-log write failure mid-storm; the
//     failed PATCH leaves the version lineage intact (/readyz flips and
//     recovers), the post-storm sweep replays from the result cache with
//     counts identical to a forced full re-sweep, and replacing the
//     circuit invalidates its cache entries.
//   - telemetry: a shed request, a fault-injected request, and a slow
//     match each return an X-Request-Id whose timeline the flight
//     recorder kept for cause (shed / error / slow); the detail endpoint
//     reconstructs the slow match's span tree and the outcome filter
//     finds the shed.
//
// Usage (from the repository root):
//
//	go run ./scripts/chaos_daemon
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"
)

const nandNetlist = `
.GLOBAL VDD GND
MP1 y a VDD pmos
MP2 y b VDD pmos
MN1 y a n1 nmos
MN2 n1 b GND nmos
MP3 z y VDD pmos
MN3 z y GND nmos
.END
`

// ringCircuit builds a closed ring of n 2-pin resistors as top-level
// cards: n0 - R0 - n1 - R1 - ... - R(n-1) - n0.  Matching one ring
// against a slightly larger one is the pathological Phase II workload
// (see internal/core's cancellation tests): perfect symmetry makes every
// candidate run ~n/2 solve passes before the wrap-around refutes it.
func ringCircuit(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "R%d n%d n%d\n", i, i, (i+1)%n)
	}
	b.WriteString(".END\n")
	return b.String()
}

// ringPattern is the same ring as a portless .SUBCKT, for inline use in a
// match request.
func ringPattern(n int) string {
	var b strings.Builder
	b.WriteString(".SUBCKT ringpat\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "R%d p%d p%d\n", i, i, (i+1)%n)
	}
	b.WriteString(".ENDS\n")
	return b.String()
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "chaos-smoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("chaos-smoke: OK")
}

func run() error {
	tmp, err := os.MkdirTemp("", "subgeminid-chaos-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "subgeminid")
	build := exec.Command("go", "build", "-o", bin, "./cmd/subgeminid")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building subgeminid: %w", err)
	}

	if err := killMidJob(bin, filepath.Join(tmp, "kill")); err != nil {
		return fmt.Errorf("kill-mid-job: %w", err)
	}
	fmt.Println("chaos-smoke: kill-mid-job ok (interrupted job failed cleanly at boot)")

	if err := diskError(bin, filepath.Join(tmp, "disk")); err != nil {
		return fmt.Errorf("disk-error: %w", err)
	}
	fmt.Println("chaos-smoke: disk-error ok (/readyz tracked the injected store fault)")

	if err := overload(bin, filepath.Join(tmp, "overload")); err != nil {
		return fmt.Errorf("overload: %w", err)
	}
	fmt.Println("chaos-smoke: overload ok (bulk shed, match live, deadline cut the solve)")

	if err := editStorm(bin, filepath.Join(tmp, "editstorm")); err != nil {
		return fmt.Errorf("edit-storm: %w", err)
	}
	fmt.Println("chaos-smoke: edit-storm ok (replay survived concurrent edits and a log fault)")

	if err := telemetry(bin, filepath.Join(tmp, "telemetry")); err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	fmt.Println("chaos-smoke: telemetry ok (shed, fault, and slow requests all landed in the flight recorder)")
	return nil
}

// killMidJob: SIGKILL the daemon while a pathological match job is
// running, restart it over the same data directory, and assert the boot
// recovery marked the record failed while the daemon stays serviceable.
func killMidJob(bin, dataDir string) error {
	d, err := startDaemon(bin, dataDir)
	if err != nil {
		return err
	}
	defer d.kill()

	if err := d.putCircuit("alpha", nandNetlist); err != nil {
		return err
	}
	if err := d.putCircuit("ring", ringCircuit(1504)); err != nil {
		return err
	}
	// No timeout_ms: left alone, this symmetric-ring job would run for
	// minutes.  The kill lands while its record is persisted as running.
	jobID, err := d.submitMatchJob("ring", ringPattern(1500), "ringpat", 0)
	if err != nil {
		return err
	}
	if err := d.waitJobState(jobID, "running", 15*time.Second); err != nil {
		return err
	}
	if err := d.cmd.Process.Kill(); err != nil {
		return fmt.Errorf("SIGKILL: %w", err)
	}
	d.cmd.Wait()

	d2, err := startDaemon(bin, dataDir)
	if err != nil {
		return fmt.Errorf("restart: %w", err)
	}
	defer d2.kill()

	state, jerr, err := d2.jobState(jobID)
	if err != nil {
		return err
	}
	if state != "failed" || !strings.Contains(jerr, "interrupted") {
		return fmt.Errorf("job %s after SIGKILL+restart is %q (%q), want failed/interrupted", jobID, state, jerr)
	}
	mets, err := d2.metrics()
	if err != nil {
		return err
	}
	if mets[`subgeminid_jobs_recovered_total`] < 1 {
		return fmt.Errorf("subgeminid_jobs_recovered_total = %v, want >= 1", mets[`subgeminid_jobs_recovered_total`])
	}
	// The daemon is not just up, it still matches.
	if count, err := d2.match("alpha", "NAND2"); err != nil {
		return err
	} else if count != 1 {
		return fmt.Errorf("post-restart match: NAND2 on alpha = %d, want 1", count)
	}
	return d2.stop()
}

// diskError: with store.write-snapshot armed to fail once, the first
// upload errors and /readyz goes 503 while /healthz stays 200; the next
// clean write restores readiness.
func diskError(bin, dataDir string) error {
	d, err := startDaemon(bin, dataDir, "-faults", "store.write-snapshot=error:1")
	if err != nil {
		return err
	}
	defer d.kill()

	if code, err := d.statusOf("GET", "/readyz", ""); err != nil {
		return err
	} else if code != http.StatusOK {
		return fmt.Errorf("/readyz at boot = %d, want 200", code)
	}
	code, _, body, err := d.doRaw("PUT", "/v1/circuits/alpha", nandNetlist)
	if err != nil {
		return err
	}
	if code < 400 {
		return fmt.Errorf("upload with snapshot fault armed = %d (%s), want an error", code, body)
	}
	if code, err := d.statusOf("GET", "/readyz", ""); err != nil {
		return err
	} else if code != http.StatusServiceUnavailable {
		return fmt.Errorf("/readyz after injected disk error = %d, want 503", code)
	}
	// Liveness is about the process, not the disk.
	if code, err := d.statusOf("GET", "/healthz", ""); err != nil {
		return err
	} else if code != http.StatusOK {
		return fmt.Errorf("/healthz after injected disk error = %d, want 200", code)
	}

	// The one-shot fault is spent: the retry succeeds and readiness recovers.
	if err := d.putCircuit("alpha", nandNetlist); err != nil {
		return fmt.Errorf("retry upload after fault expired: %w", err)
	}
	if code, err := d.statusOf("GET", "/readyz", ""); err != nil {
		return err
	} else if code != http.StatusOK {
		return fmt.Errorf("/readyz after clean write = %d, want 200", code)
	}
	if count, err := d.match("alpha", "NAND2"); err != nil {
		return err
	} else if count != 1 {
		return fmt.Errorf("match after recovery: NAND2 on alpha = %d, want 1", count)
	}
	mets, err := d.metrics()
	if err != nil {
		return err
	}
	if mets[`subgeminid_faults_fired_total`] < 1 {
		return fmt.Errorf("subgeminid_faults_fired_total = %v, want >= 1", mets[`subgeminid_faults_fired_total`])
	}
	return d.stop()
}

// overload: a pathological ring match with a 3s deadline holds the
// inflight budget; bulk endpoints shed with 429 + Retry-After while a
// single match stays live; the ring match is cut by its deadline and
// returns within 2x of it; goroutines return to baseline afterwards.
func overload(bin, dataDir string) error {
	d, err := startDaemon(bin, dataDir,
		"-max-concurrent", "2", "-shed-inflight", "1", "-retry-after", "3s")
	if err != nil {
		return err
	}
	defer d.kill()

	if err := d.putCircuit("alpha", nandNetlist); err != nil {
		return err
	}
	if err := d.putCircuit("ring", ringCircuit(4004)); err != nil {
		return err
	}
	baseline, err := d.goroutines()
	if err != nil {
		return err
	}

	const deadline = 3 * time.Second
	type outcome struct {
		code    int
		body    string
		elapsed time.Duration
		err     error
	}
	done := make(chan outcome, 1)
	go func() {
		body := fmt.Sprintf(`{"circuit":"ring","netlist":%s,"subckt":"ringpat","timeout_ms":%d}`,
			mustJSON(ringPattern(4000)), deadline.Milliseconds())
		start := time.Now()
		code, _, respBody, err := d.doRaw("POST", "/v1/match", body)
		done <- outcome{code, respBody, time.Since(start), err}
	}()

	// Wait until the ring match actually occupies a slot, then prove the
	// shed order: every bulk endpoint 429s while a single match is served.
	if err := d.waitInflight(1, 15*time.Second); err != nil {
		return err
	}
	for _, ep := range []struct{ method, path, body string }{
		{"POST", "/v1/match/batch", `{"circuit":"alpha","requests":[{"pattern":"NAND2"}]}`},
		{"POST", "/v1/sweep", `{"circuit":"alpha","library":"none"}`},
		{"POST", "/v1/jobs", `{"kind":"match","match":{"circuit":"alpha","pattern":"NAND2"}}`},
	} {
		code, hdr, body, err := d.doRaw(ep.method, ep.path, ep.body)
		if err != nil {
			return err
		}
		if code != http.StatusTooManyRequests {
			return fmt.Errorf("%s under load = %d (%s), want 429", ep.path, code, body)
		}
		if ra := hdr.Get("Retry-After"); ra != "3" {
			return fmt.Errorf("%s Retry-After = %q, want \"3\"", ep.path, ra)
		}
		var shed struct {
			Shed        bool `json:"shed"`
			RetryAfterS int  `json:"retry_after_s"`
		}
		if err := json.Unmarshal([]byte(body), &shed); err != nil {
			return fmt.Errorf("%s shed body %q: %w", ep.path, body, err)
		}
		if !shed.Shed || shed.RetryAfterS != 3 {
			return fmt.Errorf("%s shed body %q, want shed:true retry_after_s:3", ep.path, body)
		}
	}
	if count, err := d.match("alpha", "NAND2"); err != nil {
		return fmt.Errorf("single match under load: %w", err)
	} else if count != 1 {
		return fmt.Errorf("single match under load: NAND2 on alpha = %d, want 1", count)
	}

	// That match ran the region-localized Phase II engine; its region
	// telemetry must be visible on /metrics even while the daemon sheds.
	mets, err := d.metrics()
	if err != nil {
		return err
	}
	if mets["subgeminid_match_region_vertices_total"] < 1 {
		return fmt.Errorf("subgeminid_match_region_vertices_total = %v after a served match, want >= 1",
			mets["subgeminid_match_region_vertices_total"])
	}
	if mets["subgeminid_match_region_max_size"] < 1 {
		return fmt.Errorf("subgeminid_match_region_max_size = %v after a served match, want >= 1",
			mets["subgeminid_match_region_max_size"])
	}

	// The pathological match must be cut by its deadline, not by the end
	// of its O(n^2) first candidate: deep cancellation bounds the overrun.
	oc := <-done
	if oc.err != nil {
		return fmt.Errorf("pathological match: %w", oc.err)
	}
	if oc.code != http.StatusGatewayTimeout {
		return fmt.Errorf("pathological match = %d (%s), want 504", oc.code, oc.body)
	}
	if oc.elapsed > 2*deadline {
		return fmt.Errorf("pathological match returned after %v, want <= 2x its %v deadline", oc.elapsed, deadline)
	}
	fmt.Printf("  chaos: deadline %v cut the ring match after %v\n", deadline, oc.elapsed.Round(time.Millisecond))

	// Shedding lifts once the load is gone.
	if code, _, body, err := d.doRaw("POST", "/v1/match/batch",
		`{"circuit":"alpha","requests":[{"pattern":"NAND2"}]}`); err != nil {
		return err
	} else if code != http.StatusOK {
		return fmt.Errorf("batch after load = %d (%s), want 200", code, body)
	}

	// No goroutine leaks: the overload round leaves no stragglers behind.
	slackDeadline := time.Now().Add(10 * time.Second)
	for {
		n, err := d.goroutines()
		if err != nil {
			return err
		}
		if n <= baseline+3 {
			break
		}
		if time.Now().After(slackDeadline) {
			return fmt.Errorf("goroutines after overload = %d, baseline %d: leak", n, baseline)
		}
		time.Sleep(100 * time.Millisecond)
	}
	return d.stop()
}

// nandArray builds n disconnected CMOS NAND2 gates as top-level cards —
// enough instances that a sweep's result cache has something to replay.
func nandArray(n int) string {
	var b strings.Builder
	b.WriteString(".GLOBAL VDD GND\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "MP1_%d y%d a%d VDD pmos\n", i, i, i)
		fmt.Fprintf(&b, "MP2_%d y%d b%d VDD pmos\n", i, i, i)
		fmt.Fprintf(&b, "MN1_%d y%d a%d m%d nmos\n", i, i, i, i)
		fmt.Fprintf(&b, "MN2_%d m%d b%d GND nmos\n", i, i, i)
	}
	b.WriteString(".END\n")
	return b.String()
}

// sweepOnce runs one library sweep and returns the decoded response.
func (d *daemon) sweepOnce(circuit, library string, sinceVersion uint64) (*sweepReply, error) {
	body := fmt.Sprintf(`{"circuit":%q,"library":%q,"since_version":%d}`, circuit, library, sinceVersion)
	var resp sweepReply
	if err := d.do("POST", "/v1/sweep", body, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// sweepReply is the slice of the sweep response the storm asserts on.
type sweepReply struct {
	Count      int    `json:"count"`
	Version    uint64 `json:"version"`
	Replayed   int    `json:"replayed"`
	Recomputed int    `json:"recomputed"`
	Results    []struct {
		Pattern string `json:"pattern"`
		Count   int    `json:"count"`
	} `json:"results"`
}

// editStorm: sweeps race PATCH edit batches, with the edit-log write
// armed to fail once mid-storm.  The failed PATCH must not advance the
// version lineage (/readyz flips and recovers with the next clean edit),
// the post-storm sweep must replay from the result cache with per-pattern
// counts identical to a forced full re-sweep, and replacing the circuit
// must invalidate its cache entries.
func editStorm(bin, dataDir string) error {
	const patches = 12
	// skip=6: the first six PATCH log appends pass, the seventh fails.
	d, err := startDaemon(bin, dataDir, "-faults", "store.append-log=error:1:skip=6")
	if err != nil {
		return err
	}
	defer d.kill()

	if err := d.putCircuit("mesh", nandArray(40)); err != nil {
		return err
	}
	if err := d.do("PUT", "/v1/libraries/std", `{"patterns":["NAND2","INV"]}`, nil); err != nil {
		return err
	}
	cold, err := d.sweepOnce("mesh", "std", 0)
	if err != nil {
		return err
	}
	if cold.Replayed != 0 {
		return fmt.Errorf("cold sweep replayed %d candidates with an empty cache", cold.Replayed)
	}
	if cold.Count < 40 {
		return fmt.Errorf("cold sweep found %d instances on 40 NAND2 gates, want >= 40", cold.Count)
	}

	// Sweepers hammer the circuit while the PATCH sequence lands.  They
	// cannot assert counts — each runs against whatever version it leases —
	// only that every sweep succeeds and stays internally consistent.
	stop := make(chan struct{})
	sweepErr := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() {
			for {
				select {
				case <-stop:
					sweepErr <- nil
					return
				default:
				}
				if _, err := d.sweepOnce("mesh", "std", 0); err != nil {
					sweepErr <- fmt.Errorf("sweep during storm: %w", err)
					return
				}
			}
		}()
	}

	applied := 0
	faultSeen := false
	for i := 0; i < patches; i++ {
		body := fmt.Sprintf(`{"ops":[{"op":"rewire_pin","device":"MN2_%d","pin":0,"net":"eco%d"}]}`, i, i)
		code, _, respBody, err := d.doRaw("PATCH", "/v1/circuits/mesh", body)
		if err != nil {
			close(stop)
			return err
		}
		switch {
		case code == http.StatusOK:
			applied++
		case code >= 400 && !faultSeen:
			// The injected log-append failure: the edit must not have
			// applied, and the store reports degraded until a clean write.
			faultSeen = true
			if rcode, err := d.statusOf("GET", "/readyz", ""); err != nil {
				close(stop)
				return err
			} else if rcode != http.StatusServiceUnavailable {
				close(stop)
				return fmt.Errorf("/readyz after injected edit-log fault = %d, want 503", rcode)
			}
		default:
			close(stop)
			return fmt.Errorf("PATCH %d = %d (%s), want 200 (or one injected failure)", i, code, respBody)
		}
	}
	close(stop)
	for i := 0; i < 3; i++ {
		if err := <-sweepErr; err != nil {
			return err
		}
	}
	if !faultSeen {
		return fmt.Errorf("the armed store.append-log fault never fired across %d PATCHes", patches)
	}
	if code, err := d.statusOf("GET", "/readyz", ""); err != nil {
		return err
	} else if code != http.StatusOK {
		return fmt.Errorf("/readyz after the storm = %d, want 200 (clean edits recover the store)", code)
	}

	// The failed PATCH must be absent from the lineage: version = initial
	// upload + successful edits, nothing skipped or double-counted.
	var vl struct {
		Version uint64 `json:"version"`
	}
	if err := d.do("GET", "/v1/circuits/mesh/versions", "", &vl); err != nil {
		return err
	}
	wantVersion := uint64(1 + applied)
	if vl.Version != wantVersion {
		return fmt.Errorf("version after %d applied edits = %d, want %d", applied, vl.Version, wantVersion)
	}

	// Post-storm: the warm sweep replays from the cache, and a forced full
	// re-sweep (since_version past the head) agrees pattern by pattern.
	warm, err := d.sweepOnce("mesh", "std", 0)
	if err != nil {
		return err
	}
	if warm.Replayed == 0 {
		return fmt.Errorf("post-storm sweep replayed nothing; the result cache sat out the storm")
	}
	full, err := d.sweepOnce("mesh", "std", wantVersion+1000)
	if err != nil {
		return err
	}
	if full.Replayed != 0 {
		return fmt.Errorf("since_version past the head still replayed %d candidates", full.Replayed)
	}
	if len(warm.Results) != len(full.Results) {
		return fmt.Errorf("warm sweep has %d patterns, full has %d", len(warm.Results), len(full.Results))
	}
	for i := range warm.Results {
		if warm.Results[i].Count != full.Results[i].Count {
			return fmt.Errorf("pattern %s: warm replay found %d instances, full re-sweep %d",
				warm.Results[i].Pattern, warm.Results[i].Count, full.Results[i].Count)
		}
	}
	fmt.Printf("  chaos: %d edits applied, warm sweep replayed %d / recomputed %d, counts match full\n",
		applied, warm.Replayed, warm.Recomputed)

	mets, err := d.metrics()
	if err != nil {
		return err
	}
	if got := int(mets["subgeminid_delta_edits_total"]); got != applied {
		return fmt.Errorf("subgeminid_delta_edits_total = %d, want %d", got, applied)
	}
	if mets["subgeminid_result_cache_hits_total"] < 1 {
		return fmt.Errorf("subgeminid_result_cache_hits_total = %v, want >= 1", mets["subgeminid_result_cache_hits_total"])
	}
	if mets["subgeminid_faults_fired_total"] < 1 {
		return fmt.Errorf("subgeminid_faults_fired_total = %v, want >= 1", mets["subgeminid_faults_fired_total"])
	}

	// Replacement starts a new version lineage: the cache entries drop and
	// the next sweep is a full, re-capturing run.
	if err := d.putCircuit("mesh", nandArray(40)); err != nil {
		return err
	}
	mets, err = d.metrics()
	if err != nil {
		return err
	}
	if mets["subgeminid_result_cache_invalidations_total"] < 1 {
		return fmt.Errorf("subgeminid_result_cache_invalidations_total = %v after replacement, want >= 1",
			mets["subgeminid_result_cache_invalidations_total"])
	}
	fresh, err := d.sweepOnce("mesh", "std", 0)
	if err != nil {
		return err
	}
	if fresh.Replayed != 0 {
		return fmt.Errorf("sweep after replacement replayed %d candidates from a dead lineage", fresh.Replayed)
	}
	return d.stop()
}

// timeline is the slice of a /debug/requests timeline the telemetry scene
// asserts on.
type timeline struct {
	RequestID  string `json:"request_id"`
	Scope      string `json:"scope"`
	Path       string `json:"path"`
	Status     int    `json:"status"`
	KeepReason string `json:"keep_reason"`
	DurationUS int64  `json:"duration_us"`
	Spans      []struct {
		Kind  string            `json:"kind"`
		DurUS int64             `json:"dur_us"`
		Attrs map[string]string `json:"attrs"`
	} `json:"spans"`
}

// findTimelines fetches GET /debug/requests/{id} and returns its timelines.
func (d *daemon) findTimelines(id string) ([]timeline, error) {
	var body struct {
		Timelines []timeline `json:"timelines"`
	}
	if err := d.do("GET", "/debug/requests/"+id, "", &body); err != nil {
		return nil, err
	}
	return body.Timelines, nil
}

// telemetry: drive one shed request, one fault-injected request, and one
// slow match through the daemon, then prove that each response's
// X-Request-Id resolves in the flight recorder to a timeline kept for the
// right cause, that the slow match's span tree reconstructs its path
// through the engine, and that the list endpoint's outcome filter finds
// the shed.
func telemetry(bin, dataDir string) error {
	// -shed-memory-bytes 1 sheds every bulk request (heap in use is always
	// past a 1-byte budget) while single matches stay live; -slow-request
	// 1ms makes the ring match below slow for certain; the huge -flight-
	// sample proves keeps are for cause, not sampling luck.  The armed
	// server.handler fault fires on the third request (skip=2): the two
	// uploads pass, the probe after them draws the 503.
	d, err := startDaemon(bin, dataDir,
		"-shed-memory-bytes", "1", "-slow-request", "1ms", "-flight-sample", "1000000",
		"-log-format", "json",
		"-faults", "server.handler=error:1:skip=2")
	if err != nil {
		return err
	}
	defer d.kill()

	if err := d.putCircuit("alpha", nandNetlist); err != nil {
		return err
	}
	if err := d.putCircuit("ring", ringCircuit(2000)); err != nil {
		return err
	}

	// Request 3: the armed fault turns it away with 503.
	code, hdr, body, err := d.doRaw("GET", "/v1/circuits", "")
	if err != nil {
		return err
	}
	if code != http.StatusServiceUnavailable {
		return fmt.Errorf("fault-armed request = %d (%s), want 503", code, body)
	}
	faultID := hdr.Get("X-Request-Id")

	// A bulk request sheds under the 1-byte memory budget.
	code, hdr, body, err = d.doRaw("POST", "/v1/match/batch",
		`{"circuit":"alpha","requests":[{"pattern":"NAND2"}]}`)
	if err != nil {
		return err
	}
	if code != http.StatusTooManyRequests {
		return fmt.Errorf("batch under memory shed = %d (%s), want 429", code, body)
	}
	shedID := hdr.Get("X-Request-Id")

	// A single match stays live; matching a 4-ring against a 2000-ring
	// finds nothing but walks the whole Phase I relabeling, far past 1ms.
	code, hdr, body, err = d.doRaw("POST", "/v1/match", fmt.Sprintf(
		`{"circuit":"ring","netlist":%s,"subckt":"ringpat"}`, mustJSON(ringPattern(4))))
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("slow match = %d (%s), want 200", code, body)
	}
	slowID := hdr.Get("X-Request-Id")

	for _, check := range []struct{ id, reason string }{
		{faultID, "error"}, {shedID, "shed"}, {slowID, "slow"},
	} {
		if check.id == "" {
			return fmt.Errorf("the %s response carried no X-Request-Id header", check.reason)
		}
		tls, err := d.findTimelines(check.id)
		if err != nil {
			return fmt.Errorf("flight recorder lookup for the %s request: %w", check.reason, err)
		}
		if len(tls) != 1 {
			return fmt.Errorf("flight recorder holds %d timelines for %s, want 1", len(tls), check.id)
		}
		if tls[0].KeepReason != check.reason {
			return fmt.Errorf("request %s kept for %q, want %q", check.id, tls[0].KeepReason, check.reason)
		}
	}

	// The slow match's timeline reconstructs its path through the daemon.
	tls, err := d.findTimelines(slowID)
	if err != nil {
		return err
	}
	kinds := map[string]bool{}
	for _, sp := range tls[0].Spans {
		kinds[sp.Kind] = true
	}
	for _, kind := range []string{"queue-wait", "store-get", "phase1", "phase2"} {
		if !kinds[kind] {
			return fmt.Errorf("slow match timeline has no %s span (spans: %+v)", kind, tls[0].Spans)
		}
	}
	if tls[0].DurationUS < 1000 {
		return fmt.Errorf("slow match recorded %dµs, but was kept as slow at a 1ms threshold", tls[0].DurationUS)
	}

	// The list endpoint's outcome filter isolates the shed.
	var list struct {
		Requests []timeline `json:"requests"`
	}
	if err := d.do("GET", "/debug/requests?outcome=shed", "", &list); err != nil {
		return err
	}
	if len(list.Requests) != 1 || list.Requests[0].RequestID != shedID {
		return fmt.Errorf("outcome=shed returned %+v, want exactly the shed request %s", list.Requests, shedID)
	}

	mets, err := d.metrics()
	if err != nil {
		return err
	}
	if mets["subgeminid_slow_requests_total"] < 1 {
		return fmt.Errorf("subgeminid_slow_requests_total = %v, want >= 1", mets["subgeminid_slow_requests_total"])
	}
	if mets[`subgeminid_flight_recorder_kept_total{reason="shed"}`] < 1 {
		return fmt.Errorf("flight_recorder_kept_total{reason=shed} = %v, want >= 1",
			mets[`subgeminid_flight_recorder_kept_total{reason="shed"}`])
	}
	fmt.Printf("  chaos: recorder kept shed=%s fault=%s slow=%s (slow took %dµs)\n",
		shedID, faultID, slowID, tls[0].DurationUS)
	return d.stop()
}

func mustJSON(s string) string {
	raw, err := json.Marshal(s)
	if err != nil {
		panic(err)
	}
	return string(raw)
}

// daemon is one running subgeminid process plus its base URL.
type daemon struct {
	cmd  *exec.Cmd
	base string
}

// startDaemon launches the binary on an ephemeral port with any extra
// flags and waits for its "listening on" line.
func startDaemon(bin, dataDir string, extra ...string) (*daemon, error) {
	args := append([]string{
		"-addr", "127.0.0.1:0", "-data-dir", dataDir, "-globals", "VDD,GND", "-drain", "10s",
	}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	d := &daemon{cmd: cmd}
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println("  daemon:", line)
		if addr, ok := strings.CutPrefix(line, "listening on "); ok {
			d.base = "http://" + strings.TrimSpace(addr)
			// Keep draining stdout so the daemon never blocks on a full pipe.
			go func() {
				for sc.Scan() {
					fmt.Println("  daemon:", sc.Text())
				}
			}()
			return d, nil
		}
	}
	cmd.Process.Kill()
	cmd.Wait()
	return nil, fmt.Errorf("daemon exited before reporting its listen address")
}

// stop shuts the daemon down gracefully and waits for it to exit.
func (d *daemon) stop() error {
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(30 * time.Second):
		d.cmd.Process.Kill()
		return fmt.Errorf("daemon did not exit within 30s of SIGTERM")
	}
}

// kill is the deferred safety net; stop() already waited in the happy path.
func (d *daemon) kill() {
	if d.cmd.ProcessState == nil {
		d.cmd.Process.Kill()
		d.cmd.Wait()
	}
}

// doRaw issues one request and returns status, headers and body without
// treating error statuses as failures — chaos scenarios assert on them.
func (d *daemon) doRaw(method, path, body string) (int, http.Header, string, error) {
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequestWithContext(context.Background(), method, d.base+path, rd)
	if err != nil {
		return 0, nil, "", err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, "", err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, strings.TrimSpace(string(raw)), nil
}

func (d *daemon) statusOf(method, path, body string) (int, error) {
	code, _, _, err := d.doRaw(method, path, body)
	return code, err
}

// do is the happy-path variant: non-2xx is an error, 2xx decodes into out.
func (d *daemon) do(method, path, body string, out any) error {
	code, _, raw, err := d.doRaw(method, path, body)
	if err != nil {
		return err
	}
	if code >= 300 {
		return fmt.Errorf("%s %s: %d: %s", method, path, code, raw)
	}
	if out != nil {
		return json.Unmarshal([]byte(raw), out)
	}
	return nil
}

func (d *daemon) putCircuit(name, src string) error {
	return d.do("PUT", "/v1/circuits/"+name, src, nil)
}

func (d *daemon) match(circuit, pattern string) (int, error) {
	body := fmt.Sprintf(`{"circuit":%q,"pattern":%q}`, circuit, pattern)
	var resp struct {
		Count int `json:"count"`
	}
	if err := d.do("POST", "/v1/match", body, &resp); err != nil {
		return 0, err
	}
	return resp.Count, nil
}

// submitMatchJob submits an async match job with an inline ring pattern;
// timeoutMS of 0 leaves the job unbounded (jobs have no default timeout).
func (d *daemon) submitMatchJob(circuit, netlist, subckt string, timeoutMS int) (string, error) {
	payload := map[string]any{
		"kind": "match",
		"match": map[string]any{
			"circuit": circuit, "netlist": netlist, "subckt": subckt,
		},
	}
	if timeoutMS > 0 {
		payload["match"].(map[string]any)["timeout_ms"] = timeoutMS
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return "", err
	}
	var view struct {
		ID string `json:"id"`
	}
	if err := d.do("POST", "/v1/jobs", string(raw), &view); err != nil {
		return "", err
	}
	return view.ID, nil
}

func (d *daemon) jobState(id string) (state, jerr string, err error) {
	var view struct {
		State string `json:"state"`
		Error string `json:"error"`
	}
	if err := d.do("GET", "/v1/jobs/"+id, "", &view); err != nil {
		return "", "", err
	}
	return view.State, view.Error, nil
}

// waitJobState polls until the job reaches the wanted state; a terminal
// state other than the wanted one fails immediately.
func (d *daemon) waitJobState(id, want string, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for {
		state, jerr, err := d.jobState(id)
		if err != nil {
			return err
		}
		if state == want {
			return nil
		}
		switch state {
		case "done", "failed", "cancelled":
			return fmt.Errorf("job %s ended %q (%s) while waiting for %q", id, state, jerr, want)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s still %q after %v, want %q", id, state, patience, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// metrics fetches /metrics into a name-or-series → value map; labeled
// series keep their label braces in the key.
func (d *daemon) metrics() (map[string]float64, error) {
	_, _, raw, err := d.doRaw("GET", "/metrics", "")
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(raw, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			continue
		}
		out[name] = f
	}
	return out, nil
}

// waitInflight polls /metrics until at least n matches are in flight.
func (d *daemon) waitInflight(n int, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for {
		mets, err := d.metrics()
		if err != nil {
			return err
		}
		if int(mets["subgeminid_matches_inflight"]) >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("matches_inflight stayed %v after %v, want >= %d",
				mets["subgeminid_matches_inflight"], patience, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// goroutines reads the daemon's goroutine count from its pprof endpoint,
// closing idle client connections first so keep-alive handler goroutines
// do not inflate the sample.
func (d *daemon) goroutines() (int, error) {
	http.DefaultClient.CloseIdleConnections()
	_, _, raw, err := d.doRaw("GET", "/debug/pprof/goroutine?debug=1", "")
	if err != nil {
		return 0, err
	}
	line, _, _ := strings.Cut(raw, "\n")
	var n int
	if _, err := fmt.Sscanf(line, "goroutine profile: total %d", &n); err != nil {
		return 0, fmt.Errorf("parsing %q: %w", line, err)
	}
	return n, nil
}
