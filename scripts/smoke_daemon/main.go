// Command smoke_daemon is the end-to-end smoke test behind `make
// smoke-daemon`: it builds subgeminid, boots it with a temporary data
// directory, uploads two circuits and a pattern library, runs one
// synchronous match, one asynchronous extract job, and one asynchronous
// library-sweep job, restarts the daemon, and asserts the circuits, the
// library, and the job records survived the restart.  It exercises the
// real binary over real HTTP — the process-level counterpart of the
// in-process restart tests in internal/server.
//
// Usage (from the repository root):
//
//	go run ./scripts/smoke_daemon
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

const nandNetlist = `
.GLOBAL VDD GND
MP1 y a VDD pmos
MP2 y b VDD pmos
MN1 y a n1 nmos
MN2 n1 b GND nmos
MP3 z y VDD pmos
MN3 z y GND nmos
.END
`

const invPairNetlist = `
.GLOBAL VDD GND
MP1 b a VDD pmos
MN1 b a GND nmos
MP2 c b VDD pmos
MN2 c b GND nmos
.END
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "smoke-daemon: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("smoke-daemon: OK")
}

func run() error {
	tmp, err := os.MkdirTemp("", "subgeminid-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "subgeminid")
	build := exec.Command("go", "build", "-o", bin, "./cmd/subgeminid")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building subgeminid: %w", err)
	}
	dataDir := filepath.Join(tmp, "data")

	// First daemon: upload, match, run a job.
	d, err := startDaemon(bin, dataDir)
	if err != nil {
		return err
	}
	defer d.kill()

	if err := d.putCircuit("alpha", nandNetlist); err != nil {
		return err
	}
	if err := d.putCircuit("beta", invPairNetlist); err != nil {
		return err
	}
	count, err := d.match("alpha", "NAND2")
	if err != nil {
		return err
	}
	if count != 1 {
		return fmt.Errorf("sync match: NAND2 on alpha = %d, want 1", count)
	}

	jobID, err := d.submitExtractJob("alpha", []string{"NAND2", "INV"})
	if err != nil {
		return err
	}
	state, jerr, err := d.waitJob(jobID)
	if err != nil {
		return err
	}
	if state != "done" {
		return fmt.Errorf("extract job ended %q: %s", state, jerr)
	}

	// A pattern library plus an async sweep over it.
	if err := d.putLibrary("gates", []string{"NAND2", "INV"}); err != nil {
		return err
	}
	sweepID, err := d.submitSweepJob("alpha", "gates")
	if err != nil {
		return err
	}
	if state, jerr, err = d.waitJob(sweepID); err != nil {
		return err
	} else if state != "done" {
		return fmt.Errorf("sweep job ended %q: %s", state, jerr)
	}
	fmt.Printf("smoke-daemon: first boot ok (sync match + jobs %s, %s)\n", jobID, sweepID)

	if err := d.stop(); err != nil {
		return fmt.Errorf("first shutdown: %w", err)
	}

	// Second daemon over the same data directory: everything reloads.
	d2, err := startDaemon(bin, dataDir)
	if err != nil {
		return fmt.Errorf("restart: %w", err)
	}
	defer d2.kill()

	keys, err := d2.listCircuits()
	if err != nil {
		return err
	}
	if !keys["alpha"] || !keys["beta"] || len(keys) != 2 {
		return fmt.Errorf("after restart the store has %v, want alpha and beta", keys)
	}
	if count, err = d2.match("alpha", "NAND2"); err != nil {
		return err
	} else if count != 1 {
		return fmt.Errorf("post-restart match: NAND2 on alpha = %d, want 1", count)
	}
	if count, err = d2.match("beta", "INV"); err != nil {
		return err
	} else if count != 2 {
		return fmt.Errorf("post-restart match: INV on beta = %d, want 2", count)
	}
	if state, _, err = d2.jobState(jobID); err != nil {
		return err
	} else if state != "done" {
		return fmt.Errorf("job %s after restart is %q, want done", jobID, state)
	}
	if state, _, err = d2.jobState(sweepID); err != nil {
		return err
	} else if state != "done" {
		return fmt.Errorf("sweep job %s after restart is %q, want done", sweepID, state)
	}
	pats, err := d2.getLibrary("gates")
	if err != nil {
		return err
	}
	if len(pats) != 2 || pats[0] != "NAND2" || pats[1] != "INV" {
		return fmt.Errorf("library after restart = %v, want [NAND2 INV]", pats)
	}
	// The reloaded library still sweeps: NAND2 and INV each match once.
	if counts, err := d2.sweep("alpha", "gates"); err != nil {
		return err
	} else if counts["NAND2"] != 1 || counts["INV"] != 1 {
		return fmt.Errorf("post-restart sweep counts = %v, want NAND2:1 INV:1", counts)
	}
	fmt.Println("smoke-daemon: restart reloaded both circuits, the library, and the job records")

	return d2.stop()
}

// daemon is one running subgeminid process plus its base URL.
type daemon struct {
	cmd  *exec.Cmd
	base string
}

// startDaemon launches the binary on an ephemeral port and waits for its
// "listening on" line.
func startDaemon(bin, dataDir string) (*daemon, error) {
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-data-dir", dataDir, "-globals", "VDD,GND", "-drain", "10s")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	d := &daemon{cmd: cmd}
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println("  daemon:", line)
		if addr, ok := strings.CutPrefix(line, "listening on "); ok {
			d.base = "http://" + strings.TrimSpace(addr)
			// Keep draining stdout so the daemon never blocks on a full pipe.
			go func() {
				for sc.Scan() {
					fmt.Println("  daemon:", sc.Text())
				}
			}()
			return d, nil
		}
	}
	cmd.Process.Kill()
	cmd.Wait()
	return nil, fmt.Errorf("daemon exited before reporting its listen address")
}

// stop shuts the daemon down gracefully and waits for it to exit.
func (d *daemon) stop() error {
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(30 * time.Second):
		d.cmd.Process.Kill()
		return fmt.Errorf("daemon did not exit within 30s of SIGTERM")
	}
}

// kill is the deferred safety net; stop() already waited in the happy path.
func (d *daemon) kill() {
	if d.cmd.ProcessState == nil {
		d.cmd.Process.Kill()
		d.cmd.Wait()
	}
}

func (d *daemon) do(method, path string, body io.Reader, out any) error {
	req, err := http.NewRequest(method, d.base+path, body)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 300 {
		return fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, strings.TrimSpace(string(raw)))
	}
	if out != nil {
		return json.Unmarshal(raw, out)
	}
	return nil
}

func (d *daemon) putCircuit(name, src string) error {
	return d.do("PUT", "/v1/circuits/"+name, strings.NewReader(src), nil)
}

func (d *daemon) listCircuits() (map[string]bool, error) {
	var list []struct {
		Key string `json:"key"`
	}
	if err := d.do("GET", "/v1/circuits", nil, &list); err != nil {
		return nil, err
	}
	keys := make(map[string]bool, len(list))
	for _, c := range list {
		keys[c.Key] = true
	}
	return keys, nil
}

func (d *daemon) match(circuit, pattern string) (int, error) {
	body := fmt.Sprintf(`{"circuit":%q,"pattern":%q}`, circuit, pattern)
	var resp struct {
		Count int `json:"count"`
	}
	if err := d.do("POST", "/v1/match", strings.NewReader(body), &resp); err != nil {
		return 0, err
	}
	return resp.Count, nil
}

func (d *daemon) submitExtractJob(circuit string, cells []string) (string, error) {
	payload := map[string]any{
		"kind":    "extract",
		"extract": map[string]any{"circuit": circuit, "cells": cells},
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return "", err
	}
	var view struct {
		ID string `json:"id"`
	}
	if err := d.do("POST", "/v1/jobs", strings.NewReader(string(raw)), &view); err != nil {
		return "", err
	}
	return view.ID, nil
}

func (d *daemon) putLibrary(name string, patterns []string) error {
	raw, err := json.Marshal(map[string]any{"patterns": patterns})
	if err != nil {
		return err
	}
	return d.do("PUT", "/v1/libraries/"+name, strings.NewReader(string(raw)), nil)
}

func (d *daemon) getLibrary(name string) ([]string, error) {
	var info struct {
		Patterns []string `json:"patterns"`
	}
	if err := d.do("GET", "/v1/libraries/"+name, nil, &info); err != nil {
		return nil, err
	}
	return info.Patterns, nil
}

func (d *daemon) sweep(circuit, library string) (map[string]int, error) {
	body := fmt.Sprintf(`{"circuit":%q,"library":%q}`, circuit, library)
	var resp struct {
		Results []struct {
			Pattern string `json:"pattern"`
			Count   int    `json:"count"`
		} `json:"results"`
	}
	if err := d.do("POST", "/v1/sweep", strings.NewReader(body), &resp); err != nil {
		return nil, err
	}
	counts := make(map[string]int, len(resp.Results))
	for _, r := range resp.Results {
		counts[r.Pattern] = r.Count
	}
	return counts, nil
}

func (d *daemon) submitSweepJob(circuit, library string) (string, error) {
	payload := map[string]any{
		"kind":  "sweep",
		"sweep": map[string]any{"circuit": circuit, "library": library},
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return "", err
	}
	var view struct {
		ID string `json:"id"`
	}
	if err := d.do("POST", "/v1/jobs", strings.NewReader(string(raw)), &view); err != nil {
		return "", err
	}
	return view.ID, nil
}

func (d *daemon) jobState(id string) (state, jerr string, err error) {
	var view struct {
		State string `json:"state"`
		Error string `json:"error"`
	}
	if err := d.do("GET", "/v1/jobs/"+id, nil, &view); err != nil {
		return "", "", err
	}
	return view.State, view.Error, nil
}

func (d *daemon) waitJob(id string) (state, jerr string, err error) {
	deadline := time.Now().Add(30 * time.Second)
	for {
		state, jerr, err = d.jobState(id)
		if err != nil {
			return "", "", err
		}
		switch state {
		case "done", "failed", "cancelled":
			return state, jerr, nil
		}
		if time.Now().After(deadline) {
			return "", "", fmt.Errorf("job %s still %q after 30s", id, state)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
