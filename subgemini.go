// Package subgemini is a technology-independent subcircuit matcher: a Go
// implementation of the SubGemini algorithm (Ohlrich, Ebeling, Ginting,
// Sather, "SubGemini: Identifying SubCircuits using a Fast Subgraph
// Isomorphism Algorithm", 30th DAC, 1993).
//
// Given a pattern subcircuit S and a main circuit G — both plain netlists of
// typed devices and nets, with no assumptions about technology or semantics
// — it finds every instance of S inside G.  Although subgraph isomorphism is
// NP-complete, circuits carry enough structure that matching runs in time
// roughly linear in the total number of devices inside the matched
// instances.
//
// The package is a facade over the implementation packages:
//
//   - circuit graphs: New, AddNet/AddDevice (see Circuit)
//   - netlist I/O: ParseNetlist, WriteNetlist, WriteSubckt
//   - matching: Find, NewMatcher, Options, Instance
//   - library sweeps: Sweep, SweepPattern, SweepOptions (one circuit,
//     many patterns, shared Phase I groundwork)
//   - algorithm tracing: Tracer, NewTraceCollector, NewJSONLTracer
//     (see ALGORITHM.md for the phase-by-phase walkthrough)
//   - graph isomorphism (Gemini): Compare
//   - extraction and rule checking: ExtractCells, CheckRules
//   - the CMOS standard-cell library: Cell, Cells
//
// # Quick start
//
//	g, _ := subgemini.ParseNetlist(circuitSrc, "chip.sp")
//	main, _ := g.MainCircuit("chip")
//	res, _ := subgemini.Find(main, subgemini.Cell("NAND2").Pattern(),
//	    subgemini.Options{Globals: []string{"VDD", "GND"}})
//	for _, inst := range res.Instances {
//	    fmt.Println(inst.Devices())
//	}
package subgemini

import (
	"io"

	"subgemini/internal/baseline"
	"subgemini/internal/core"
	"subgemini/internal/extract"
	"subgemini/internal/gemini"
	"subgemini/internal/graph"
	"subgemini/internal/jobs"
	"subgemini/internal/netlist"
	"subgemini/internal/server"
	"subgemini/internal/sprecog"
	"subgemini/internal/stdcell"
	"subgemini/internal/sweep"
	"subgemini/internal/trace"
	"subgemini/internal/verilog"
)

// Circuit graph model (see the graph package for full documentation).
type (
	// Circuit is a bipartite circuit graph of devices and nets.
	Circuit = graph.Circuit
	// Device is a device vertex (transistor, gate, or any typed component).
	Device = graph.Device
	// Net is a net (wire) vertex.
	Net = graph.Net
	// Pin is one device terminal: its equivalence class and net.
	Pin = graph.Pin
	// TermClass is a terminal equivalence class; terminals sharing a class
	// are interchangeable (a MOS transistor's source and drain).
	TermClass = graph.TermClass
)

// MOS terminal classes used by the built-in netlist reader and cell library.
const (
	ClassDS   = graph.ClassDS
	ClassGate = graph.ClassGate
	ClassBulk = graph.ClassBulk
)

// New returns an empty circuit with the given name.
func New(name string) *Circuit { return graph.New(name) }

// Matching.
type (
	// Options configures a matching run; see core.Options.
	Options = core.Options
	// Instance is one verified embedding of the pattern.
	Instance = core.Instance
	// Result is a matching outcome: instances plus instrumentation.
	Result = core.Result
	// Matcher runs several patterns against one main circuit.
	Matcher = core.Matcher
	// OverlapPolicy selects MatchAll or NonOverlapping semantics.
	OverlapPolicy = core.OverlapPolicy
	// CircuitCSR is a flat adjacency view of a circuit; build one with
	// NewCircuitCSR and install it via Options.CSR so several matchers over
	// the same circuit share one flattening.
	CircuitCSR = core.CSR
	// ScratchPool recycles Phase II per-candidate main-graph scratch across
	// matching runs over same-sized circuits; the zero value is ready to
	// use via Options.Scratch, and is safe for concurrent matchers.
	ScratchPool = core.ScratchPool
)

// NewCircuitCSR flattens a circuit into the CSR view the Phase I engine
// runs on.  Matchers build (and cache) one on demand, so this is only
// needed to share the view across matchers via Options.CSR.
func NewCircuitCSR(g *Circuit) *CircuitCSR { return core.NewCSR(g) }

// Overlap policies.
const (
	MatchAll       = core.MatchAll
	NonOverlapping = core.NonOverlapping
)

// Find locates every instance of pattern s inside circuit g.
func Find(g, s *Circuit, opts Options) (*Result, error) { return core.Find(g, s, opts) }

// NewMatcher prepares a reusable matcher for one main circuit.
func NewMatcher(g *Circuit, opts Options) (*Matcher, error) { return core.NewMatcher(g, opts) }

// FindParallel is Find with candidate verification fanned out over the
// given number of workers (0 = GOMAXPROCS).  MatchAll policy only; results
// equal Find's up to a canonicalized instance order.  When Options.Tracer
// is set it falls back to the sequential Find so the event stream keeps
// its deterministic candidate order.
func FindParallel(g, s *Circuit, opts Options, workers int) (*Result, error) {
	m, err := core.NewMatcher(g, opts)
	if err != nil {
		return nil, err
	}
	return m.FindParallel(s, workers)
}

// Library sweeps (amortized multi-pattern matching).
type (
	// SweepPattern is one named entry of a sweep library.
	SweepPattern = sweep.Pattern
	// SweepOptions configures a library sweep.
	SweepOptions = sweep.Options
	// SweepReport is the merged outcome of a sweep: per-pattern results in
	// input order plus run/dedup accounting.
	SweepReport = sweep.Report
	// SweepPatternResult is one pattern's share of a sweep report.
	SweepPatternResult = sweep.PatternResult
)

// Sweep matches a whole pattern library against one circuit in a single
// run, building the main-graph adjacency view and initial Phase I labeling
// once, deduplicating structurally identical patterns, and fanning the
// per-pattern runs over a bounded worker pool.  Results are bit-identical
// to looping Find over the library, in library order.
func Sweep(g *Circuit, library []SweepPattern, opts SweepOptions) (*SweepReport, error) {
	return sweep.Run(g, library, opts)
}

// FindNaive runs the exhaustive depth-first reference matcher — the
// baseline SubGemini is compared against.  It is exponentially slower on
// large circuits but independent of the labeling machinery, which makes it
// useful for cross-checking.
func FindNaive(g, s *Circuit, globals []string, maxInstances int) ([]*Instance, error) {
	res, err := baseline.Find(g, s, baseline.Options{Globals: globals, MaxInstances: maxInstances})
	if err != nil {
		return nil, err
	}
	return res.Instances, nil
}

// Tracing (algorithm observability).  Install a sink via Options.Tracer to
// receive one structured event per Phase I relabeling pass, one for the
// candidate-vector selection, and one per Phase II candidate examined; see
// ALGORITHM.md for a worked example of the stream.
type (
	// Tracer is the event sink interface; implementations must be cheap
	// (events fire on the matching hot path) and, when used with
	// FindParallel, safe for concurrent use.
	Tracer = trace.Tracer
	// TraceEvent is one trace record: a run boundary, a Phase I pass, the
	// candidate-vector selection, or a Phase II candidate outcome.
	TraceEvent = trace.Event
	// TraceCollector is a bounded in-memory ring of the most recent events.
	TraceCollector = trace.Collector
	// JSONLTracer streams events as subgemini-trace/v1 JSON Lines.
	JSONLTracer = trace.JSONLWriter
)

// NewTraceCollector returns an in-memory event sink retaining the most
// recent capacity events (capacity <= 0 selects a default of 4096).
func NewTraceCollector(capacity int) *TraceCollector { return trace.NewCollector(capacity) }

// NewJSONLTracer returns an event sink streaming subgemini-trace/v1 JSON
// Lines to w.  Call Flush after the run and check its error.
func NewJSONLTracer(w io.Writer) *JSONLTracer { return trace.NewJSONLWriter(w) }

// ReadTraceJSONL parses a subgemini-trace/v1 stream back into events.
func ReadTraceJSONL(r io.Reader) ([]TraceEvent, error) { return trace.ReadJSONL(r) }

// RenderTrace formats events as the human-readable per-run tables that
// cmd/tracefmt (and ALGORITHM.md) show.
func RenderTrace(w io.Writer, events []TraceEvent) error { return trace.Render(w, events) }

// Serving (the subgeminid daemon logic).
type (
	// Server is the long-lived HTTP/JSON matching service: a resident
	// circuit, a compiled-pattern cache, admission control, and metrics.
	// It implements http.Handler; see internal/server for the endpoints.
	Server = server.Server
	// ServerConfig parameterizes NewServer.
	ServerConfig = server.Config
	// ServerMatchRequest is the body of POST /v1/match, exported so Go
	// clients (examples/server) can marshal requests without duplicating
	// the wire format.
	ServerMatchRequest = server.MatchRequest
	// ServerMatchResponse is the body of a successful POST /v1/match.
	ServerMatchResponse = server.MatchResponse
	// ServerBatchRequest is the body of POST /v1/match/batch.
	ServerBatchRequest = server.BatchRequest
	// ServerBatchResponse is the body of a batch reply.
	ServerBatchResponse = server.BatchResponse
	// ServerCircuitInfo describes one stored circuit (PUT/GET
	// /v1/circuits/{name} and the legacy /v1/circuit endpoints).
	ServerCircuitInfo = server.CircuitInfo
	// ServerJobRequest is the body of POST /v1/jobs.
	ServerJobRequest = server.JobRequest
	// ServerExtractRequest is the payload of an extract job.
	ServerExtractRequest = server.ExtractRequest
	// ServerExtractResponse is the result of a finished extract job.
	ServerExtractResponse = server.ExtractResponse
	// ServerJobView is a job's externally visible state (GET /v1/jobs/{id}).
	ServerJobView = jobs.View
)

// NewServer builds the daemon state for cmd/subgeminid or for embedding
// the matching service into another process.  With ServerConfig.DataDir
// set, stored circuits and job records are reloaded from disk, so boot can
// fail on a corrupt data directory.  Callers owning the server's lifetime
// should Close it to drain jobs and flush snapshots.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// Netlist I/O.
type (
	// NetlistFile is a parsed SPICE-subset netlist.
	NetlistFile = netlist.File
	// Subckt is a parsed .SUBCKT definition.
	Subckt = netlist.Subckt
)

// ParseNetlist parses SPICE-subset netlist source; name is used in errors.
func ParseNetlist(src, name string) (*NetlistFile, error) { return netlist.ParseString(src, name) }

// ReadNetlist parses a netlist from a reader.
func ReadNetlist(r io.Reader, name string) (*NetlistFile, error) { return netlist.Parse(r, name) }

// WriteNetlist emits a flat circuit as netlist cards.
func WriteNetlist(w io.Writer, c *Circuit) error { return netlist.WriteCircuit(w, c) }

// WriteSubckt emits a pattern circuit as a .SUBCKT definition.
func WriteSubckt(w io.Writer, c *Circuit) error { return netlist.WriteSubckt(w, c) }

// EncodeCircuitJSON writes a circuit in the JSON interchange format, for
// tooling that wants circuits without parsing SPICE or Verilog.
func EncodeCircuitJSON(w io.Writer, c *Circuit) error { return graph.EncodeJSON(w, c) }

// DecodeCircuitJSON reads a circuit in the JSON interchange format.
func DecodeCircuitJSON(r io.Reader) (*Circuit, error) { return graph.DecodeJSON(r) }

// VerilogModule is a parsed structural Verilog module.
type VerilogModule = verilog.Module

// ParseVerilog reads a structural Verilog module (gate instances plus
// nmos/pmos switch primitives).
func ParseVerilog(r io.Reader, name string) (*VerilogModule, error) { return verilog.Parse(r, name) }

// WriteVerilog emits a circuit as one structural Verilog module.
func WriteVerilog(w io.Writer, c *Circuit, moduleName string) error {
	return verilog.Write(w, c, moduleName)
}

// Graph isomorphism (Gemini).
type (
	// CompareOptions configures a Gemini comparison.
	CompareOptions = gemini.Options
	// CompareResult reports isomorphism plus a witness mapping or reason.
	CompareResult = gemini.Result
)

// Compare decides whether two circuits are isomorphic, Gemini-style.
func Compare(a, b *Circuit, opts CompareOptions) (*CompareResult, error) {
	return gemini.Compare(a, b, opts)
}

// HierCompareReport is the per-cell outcome of a hierarchical comparison.
type HierCompareReport = gemini.HierReport

// CompareHierarchical compares two hierarchical netlists cell-by-cell
// (shared .SUBCKT definitions with ports matched by name) plus a flat
// comparison of the expanded top levels, localizing mismatches to the
// cells that cause them (paper §I).
func CompareHierarchical(a, b *NetlistFile, opts CompareOptions) (*HierCompareReport, error) {
	return gemini.CompareHierarchical(a, b, opts)
}

// Extraction and rule checking.
type (
	// CellDef is a transistor-level standard cell.
	CellDef = stdcell.CellDef
	// ExtractOptions configures gate extraction.
	ExtractOptions = extract.Options
	// Extraction is one cell's extraction count.
	Extraction = extract.Extraction
	// Rule is a questionable-construct pattern for rule checking.
	Rule = extract.Rule
	// Violation is one rule-check hit.
	Violation = extract.Violation
)

// Cell returns the named cell from the built-in CMOS library (INV, BUF,
// NAND2/3/4, NOR2/3/4, AND2, OR2, AOI21/22, OAI21/22, XOR2, XNOR2, MUX2,
// TINV, HA, LATCH, DFF, SRAM6T, FA), or nil.
func Cell(name string) *CellDef { return stdcell.Get(name) }

// Cells returns the whole built-in cell library, sorted by name.
func Cells() []*CellDef { return stdcell.All() }

// ExtractCells converts a transistor circuit toward a gate-level one by
// extracting each cell (largest first) and replacing its instances with
// single gate devices.  The circuit is modified in place.
func ExtractCells(c *Circuit, cells []*CellDef, opts ExtractOptions) ([]Extraction, error) {
	return extract.Cells(c, cells, opts)
}

// ExtractSpec is a user-defined extraction pattern (see SpecsFromNetlist).
type ExtractSpec = extract.Spec

// SpecsFromNetlist turns every .SUBCKT of a parsed netlist into an
// extraction spec, so the extraction library is extended by writing
// subcircuits rather than code (paper §I).
func SpecsFromNetlist(f *NetlistFile) ([]ExtractSpec, error) {
	return extract.SpecsFromNetlist(f)
}

// ExtractSpecs is ExtractCells for user-defined pattern specs.
func ExtractSpecs(c *Circuit, specs []ExtractSpec, opts ExtractOptions) ([]Extraction, error) {
	return extract.Specs(c, specs, opts)
}

// WriteHierarchical emits an extracted circuit as a hierarchical netlist:
// .SUBCKT definitions for the library cells it uses, plus instance cards.
func WriteHierarchical(w io.Writer, c *Circuit) error {
	return extract.WriteHierarchical(w, c)
}

// StandardRules returns the built-in questionable-construct rule library.
func StandardRules() []*Rule { return extract.StandardRules() }

// CheckRules matches every rule pattern against the circuit.
func CheckRules(c *Circuit, rules []*Rule, globals []string) ([]Violation, error) {
	return extract.Check(c, rules, globals)
}

// Ad hoc recognizer (the §I comparison baseline).
type (
	// RecognizedGate is one static CMOS gate found by the classical
	// series-parallel recognizer.
	RecognizedGate = sprecog.Gate
	// RecognizeResult groups recognized gates and leftover regions.
	RecognizeResult = sprecog.Result
)

// RecognizeGates runs the classical channel-graph / series-parallel CMOS
// gate recognizer over a flat transistor circuit — the technology-specific
// ad hoc method the paper's introduction contrasts SubGemini with.  It
// names simple static gates and leaves pass-transistor structure
// unrecognized; see EXPERIMENTS.md E9 for the comparison.
func RecognizeGates(c *Circuit, vdd, gnd string) (*RecognizeResult, error) {
	return sprecog.Recognize(c, vdd, gnd)
}
