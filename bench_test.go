// Benchmarks regenerating the paper's evaluation artifacts (experiments
// E4–E8 in DESIGN.md), one benchmark family per table or figure.  Run with
//
//	go test -bench=. -benchmem
//
// cmd/benchtab prints the same experiments as formatted tables, and
// EXPERIMENTS.md records the paper-claim-vs-measured comparison.
package subgemini_test

import (
	"fmt"
	"testing"

	"subgemini/internal/baseline"
	"subgemini/internal/bench"
	"subgemini/internal/core"
	"subgemini/internal/extract"
	"subgemini/internal/gen"
	"subgemini/internal/graph"
	"subgemini/internal/sprecog"
	"subgemini/internal/stdcell"
)

// findOnce runs one matching pass and reports derived metrics.
func findOnce(b *testing.B, g *graph.Circuit, pat *graph.Circuit, want int) *core.Result {
	b.Helper()
	res, err := core.Find(g, pat, core.Options{Globals: bench.Rails})
	if err != nil {
		b.Fatal(err)
	}
	if want >= 0 && len(res.Instances) != want {
		b.Fatalf("found %d instances, want %d", len(res.Instances), want)
	}
	return res
}

// BenchmarkE4Results regenerates the E4 results table: one sub-benchmark
// per (circuit, pattern) pair of the evaluation suite.
func BenchmarkE4Results(b *testing.B) {
	for _, w := range bench.Suite(1) {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			d := w.Build()
			want := d.Expected(w.Pattern)
			pat := w.Pattern.Pattern()
			b.ResetTimer()
			var matched int
			for i := 0; i < b.N; i++ {
				res := findOnce(b, d.C, pat, want)
				matched = res.Report.MatchedDevices
			}
			b.ReportMetric(float64(d.C.NumDevices()), "devices")
			b.ReportMetric(float64(want), "instances")
			if matched > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(matched), "ns/matched-dev")
			}
		})
	}
}

// BenchmarkE5Scaling regenerates the E5 linearity figure: the same pattern
// in circuits of growing size.  The ns/matched-dev metric staying flat
// across sizes within one series is the paper's headline claim.
func BenchmarkE5Scaling(b *testing.B) {
	type sweep struct {
		series  string
		pattern *stdcell.CellDef
		build   func(n int) *gen.Design
		params  []int
	}
	sweeps := []sweep{
		{"FA-in-adder", stdcell.FA, gen.RippleAdder, []int{64, 256, 1024, 2048}},
		{"NAND2-in-rand", stdcell.NAND2, func(n int) *gen.Design { return gen.RandomLogic(n, 32, 11) }, []int{250, 1000, 4000}},
		{"6T-in-sram", stdcell.SRAM6T, func(n int) *gen.Design { return gen.SRAMArray(n, n) }, []int{8, 16, 32, 64}},
	}
	for _, sw := range sweeps {
		for _, param := range sw.params {
			name := fmt.Sprintf("%s/%d", sw.series, param)
			b.Run(name, func(b *testing.B) {
				d := sw.build(param)
				pat := sw.pattern.Pattern()
				b.ResetTimer()
				var matched int
				for i := 0; i < b.N; i++ {
					res := findOnce(b, d.C, pat, -1)
					matched = res.Report.MatchedDevices
				}
				if matched > 0 {
					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(matched), "ns/matched-dev")
				}
			})
		}
	}
}

// BenchmarkE6Baseline regenerates the E6 comparison: SubGemini vs the
// pruned DFS and vs the paper's exhaustive [6]-style DFS, including the
// pass-transistor switch grid on which exhaustive search explodes.
func BenchmarkE6Baseline(b *testing.B) {
	cases := []struct {
		name    string
		build   func() *gen.Design
		pattern func() *graph.Circuit
	}{
		{"adder16-FA", func() *gen.Design { return gen.RippleAdder(16) }, func() *graph.Circuit { return stdcell.FA.Pattern() }},
		{"rand1000-NAND2", func() *gen.Design { return gen.RandomLogic(1000, 32, 11) }, func() *graph.Circuit { return stdcell.NAND2.Pattern() }},
		{"switchgrid12-passchain12", func() *gen.Design { return gen.SwitchGrid(12, 12) }, func() *graph.Circuit { return gen.PassChainPattern(12) }},
	}
	for _, c := range cases {
		d := c.build()
		b.Run(c.name+"/subgemini", func(b *testing.B) {
			pat := c.pattern()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				findOnce(b, d.C, pat, -1)
			}
		})
		b.Run(c.name+"/prunedDFS", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := baseline.Find(d.C, c.pattern(), baseline.Options{Globals: bench.Rails}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(c.name+"/plainDFS", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// The step budget bounds the pathological case; an aborted
				// run is still a valid lower-bound measurement.
				if _, err := baseline.Find(d.C, c.pattern(), baseline.Options{
					Globals: bench.Rails, Plain: true, MaxSteps: 50_000_000,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7SpecialSignals regenerates the E7 ablation: matching with the
// supply rails treated as special signals versus as ordinary nets.
func BenchmarkE7SpecialSignals(b *testing.B) {
	d := gen.ArrayMultiplier(6)
	b.Run("INV-mult6/rails-special", func(b *testing.B) {
		g := d.C.Clone()
		pat := stdcell.INV.Pattern()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := core.Find(g, pat, core.Options{Globals: bench.Rails})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(len(res.Instances)), "instances")
			}
		}
	})
	b.Run("INV-mult6/rails-ordinary", func(b *testing.B) {
		g := d.C.Clone()
		pat := stdcell.INV.Pattern()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := core.Find(g, pat, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(len(res.Instances)), "instances")
			}
		}
	})
}

// BenchmarkParallel measures the FindParallel extension (not a paper
// experiment): candidate verification fanned out across workers on a large
// tiled design.
func BenchmarkParallel(b *testing.B) {
	d := gen.RippleAdder(2048)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			m, err := core.NewMatcher(d.C, core.Options{Globals: bench.Rails})
			if err != nil {
				b.Fatal(err)
			}
			pat := stdcell.FA.Pattern()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := m.FindParallel(pat, workers)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Instances) != 2048 {
					b.Fatalf("found %d", len(res.Instances))
				}
			}
		})
	}
}

// BenchmarkE8EarlyAbort regenerates E8: a pattern with no instance must be
// refuted by Phase I consistency checking alone.
func BenchmarkE8EarlyAbort(b *testing.B) {
	d := gen.RippleAdder(256)
	pat := stdcell.SRAM6T.Pattern()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := findOnce(b, d.C, pat, 0)
		if res.Report.Candidates != 0 {
			b.Fatalf("Phase II examined %d candidates, want 0", res.Report.Candidates)
		}
	}
}

// BenchmarkE9Coverage times the ad hoc recognizer against SubGemini
// library extraction on the same netlist (the E9 generality experiment's
// performance side; coverage numbers are in EXPERIMENTS.md).
func BenchmarkE9Coverage(b *testing.B) {
	d := gen.ArrayMultiplier(6)
	b.Run("adhoc-recognizer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := sprecog.Recognize(d.C.Clone(), "VDD", "GND")
			if err != nil {
				b.Fatal(err)
			}
			if res.UnrecognizedDevices() != 0 {
				b.Fatal("multiplier not fully recognized")
			}
		}
	})
	b.Run("subgemini-extraction", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			work := d.C.Clone()
			if _, err := extract.Cells(work, []*stdcell.CellDef{stdcell.FA, stdcell.AND2}, extract.Options{Globals: bench.Rails}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
