package subgemini_test

import (
	"fmt"
	"log"
	"os"

	"subgemini"
)

// ExampleFind locates a NAND gate in a small transistor netlist.
func ExampleFind() {
	file, err := subgemini.ParseNetlist(`
.GLOBAL VDD GND
MP1 y a VDD pmos
MP2 y b VDD pmos
MN1 y a n1 nmos
MN2 n1 b GND nmos
.END`, "chip.sp")
	if err != nil {
		log.Fatal(err)
	}
	circuit, err := file.MainCircuit("chip")
	if err != nil {
		log.Fatal(err)
	}
	res, err := subgemini.Find(circuit, subgemini.Cell("NAND2").Pattern(),
		subgemini.Options{Globals: []string{"VDD", "GND"}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("instances:", len(res.Instances))
	for _, d := range res.Instances[0].Devices() {
		fmt.Println(" ", d.Name)
	}
	// Output:
	// instances: 1
	//   MP1
	//   MP2
	//   MN1
	//   MN2
}

// ExampleFind_bind restricts a pattern port to a specific net: only the
// inverter driven by net "en" is reported.
func ExampleFind_bind() {
	file, err := subgemini.ParseNetlist(`
.GLOBAL VDD GND
MP1 y1 en VDD pmos
MN1 y1 en GND nmos
MP2 y2 other VDD pmos
MN2 y2 other GND nmos
.END`, "two.sp")
	if err != nil {
		log.Fatal(err)
	}
	circuit, err := file.MainCircuit("two")
	if err != nil {
		log.Fatal(err)
	}
	res, err := subgemini.Find(circuit, subgemini.Cell("INV").Pattern(), subgemini.Options{
		Globals: []string{"VDD", "GND"},
		Bind:    map[string]string{"A": "en"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("instances:", len(res.Instances))
	// Output:
	// instances: 1
}

// ExampleCompare checks two netlists for isomorphism, Gemini-style.
func ExampleCompare() {
	parse := func(src string) *subgemini.Circuit {
		f, err := subgemini.ParseNetlist(src, "x.sp")
		if err != nil {
			log.Fatal(err)
		}
		c, err := f.MainCircuit("x")
		if err != nil {
			log.Fatal(err)
		}
		return c
	}
	a := parse(".GLOBAL VDD GND\nMP1 y a VDD pmos\nMN1 y a GND nmos\n")
	b := parse(".GLOBAL VDD GND\nMNx out in GND nmos\nMPx out in VDD pmos\n")
	res, err := subgemini.Compare(a, b, subgemini.CompareOptions{Globals: []string{"VDD", "GND"}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("isomorphic:", res.Isomorphic)
	// Output:
	// isomorphic: true
}

// ExampleExtractCells converts a transistor netlist into a gate netlist.
func ExampleExtractCells() {
	file, err := subgemini.ParseNetlist(`
.GLOBAL VDD GND
MP1 y a VDD pmos
MP2 y b VDD pmos
MN1 y a n1 nmos
MN2 n1 b GND nmos
MP3 z y VDD pmos
MN3 z y GND nmos
.END`, "chip.sp")
	if err != nil {
		log.Fatal(err)
	}
	circuit, err := file.MainCircuit("chip")
	if err != nil {
		log.Fatal(err)
	}
	_, err = subgemini.ExtractCells(circuit,
		[]*subgemini.CellDef{subgemini.Cell("NAND2"), subgemini.Cell("INV")},
		subgemini.ExtractOptions{Globals: []string{"VDD", "GND"}})
	if err != nil {
		log.Fatal(err)
	}
	if err := subgemini.WriteNetlist(os.Stdout, circuit); err != nil {
		log.Fatal(err)
	}
	// Output:
	// * circuit chip: 2 devices, 6 nets
	// .GLOBAL VDD GND
	// Xu1_NAND2 a b y VDD GND NAND2
	// Xu2_INV y z VDD GND INV
	// .END
}

// ExampleCheckRules reviews a circuit for questionable constructs.
func ExampleCheckRules() {
	c := subgemini.New("bad")
	vdd := c.AddNet("VDD")
	en, x := c.AddNet("en"), c.AddNet("x")
	classes := []subgemini.TermClass{subgemini.ClassDS, subgemini.ClassGate, subgemini.ClassDS}
	if _, err := c.AddDevice("m1", "nmos", classes, []*subgemini.Net{vdd, en, x}); err != nil {
		log.Fatal(err)
	}
	vios, err := subgemini.CheckRules(c, subgemini.StandardRules(), []string{"VDD", "GND"})
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range vios {
		fmt.Println(v.Rule.Name)
	}
	// Output:
	// nmos-pullup
}
