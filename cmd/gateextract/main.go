// Gateextract converts a flat transistor netlist into a gate-level netlist
// by iterated subcircuit extraction with the built-in CMOS cell library
// (or a selected subset), the application the paper's introduction leads
// with.
//
// Usage:
//
//	gateextract -circuit chip.sp [-cells FA,NAND2,INV] [-globals VDD,GND]
//	            [-o gates.sp]
//
// Cells are extracted from largest to smallest (the §V.A partial order);
// each found instance is replaced by a single gate device, and whatever
// the library does not cover is left at transistor level.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"subgemini"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gateextract: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// run executes the CLI against the given argument list, so tests can drive
// it without spawning a process.
func run(args []string, stdout, stderr io.Writer) error {
	flag := flag.NewFlagSet("gateextract", flag.ContinueOnError)
	flag.SetOutput(stderr)
	var (
		circuitPath = flag.String("circuit", "", "netlist file with the main circuit (required)")
		cellsCSV    = flag.String("cells", "", "comma-separated built-in cell names (default: whole library)")
		patternPath = flag.String("patterns", "", "netlist file whose .SUBCKT definitions form the extraction library (replaces the built-ins)")
		globalsCSV  = flag.String("globals", "VDD,GND", "comma-separated special-signal nets")
		outPath     = flag.String("o", "", "output netlist file (default: stdout)")
		hier        = flag.Bool("hier", false, "emit a hierarchical netlist with .SUBCKT definitions for the used cells")
		emitVerilog = flag.Bool("verilog", false, "emit a structural Verilog module instead of a SPICE netlist")
	)
	if err := flag.Parse(args); err != nil {
		return err
	}
	if *circuitPath == "" {
		return fmt.Errorf("-circuit is required")
	}

	r, err := os.Open(*circuitPath)
	if err != nil {
		return err
	}
	f, err := subgemini.ReadNetlist(r, *circuitPath)
	r.Close()
	if err != nil {
		return err
	}
	circuit, err := f.MainCircuit("main")
	if err != nil {
		return err
	}

	opts := subgemini.ExtractOptions{Globals: strings.Split(*globalsCSV, ",")}
	before := circuit.NumDevices()
	var counts []subgemini.Extraction
	if *patternPath != "" {
		pr, err := os.Open(*patternPath)
		if err != nil {
			return err
		}
		pf, err := subgemini.ReadNetlist(pr, *patternPath)
		pr.Close()
		if err != nil {
			return err
		}
		specs, err := subgemini.SpecsFromNetlist(pf)
		if err != nil {
			return err
		}
		counts, err = subgemini.ExtractSpecs(circuit, specs, opts)
		if err != nil {
			return err
		}
	} else {
		var cells []*subgemini.CellDef
		if *cellsCSV == "" {
			cells = subgemini.Cells()
		} else {
			for _, name := range strings.Split(*cellsCSV, ",") {
				c := subgemini.Cell(strings.TrimSpace(name))
				if c == nil {
					return fmt.Errorf("no library cell named %q", name)
				}
				cells = append(cells, c)
			}
		}
		counts, err = subgemini.ExtractCells(circuit, cells, opts)
		if err != nil {
			return err
		}
	}
	for _, e := range counts {
		if e.Count > 0 {
			fmt.Fprintf(stderr, "extracted %-8s x %d\n", e.Cell, e.Count)
		}
	}
	fmt.Fprintf(stderr, "%d devices -> %d devices\n", before, circuit.NumDevices())

	out := stdout
	if *outPath != "" {
		file, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer file.Close()
		out = file
	}
	write := subgemini.WriteNetlist
	switch {
	case *emitVerilog:
		write = func(w io.Writer, c *subgemini.Circuit) error {
			return subgemini.WriteVerilog(w, c, c.Name)
		}
	case *hier:
		write = subgemini.WriteHierarchical
	}
	return write(out, circuit)
}
