package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const src = `
.GLOBAL VDD GND
MP1 y a VDD pmos
MP2 y b VDD pmos
MN1 y a n1 nmos
MN2 n1 b GND nmos
MP3 z y VDD pmos
MN3 z y GND nmos
.END
`

func writeTemp(t *testing.T, contents string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "c.sp")
	if err := os.WriteFile(p, []byte(contents), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGateExtractFlat(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-circuit", writeTemp(t, src), "-cells", "NAND2,INV"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "NAND2") || !strings.Contains(out.String(), "INV") {
		t.Errorf("flat output missing cells:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "6 devices -> 2 devices") {
		t.Errorf("summary missing:\n%s", errOut.String())
	}
}

func TestGateExtractHier(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-circuit", writeTemp(t, src), "-cells", "NAND2,INV", "-hier"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{".SUBCKT NAND2", ".SUBCKT INV", "Xu1_NAND2"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("hier output missing %q:\n%s", want, out.String())
		}
	}
}

func TestGateExtractVerilog(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-circuit", writeTemp(t, src), "-cells", "NAND2,INV", "-verilog"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"module main", "NAND2 ", ".Y(", "endmodule"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("verilog output missing %q:\n%s", want, out.String())
		}
	}
}

func TestGateExtractOutputFile(t *testing.T) {
	dst := filepath.Join(t.TempDir(), "out.sp")
	var out, errOut strings.Builder
	if err := run([]string{"-circuit", writeTemp(t, src), "-o", dst}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("output file empty")
	}
	if out.Len() != 0 {
		t.Error("netlist also written to stdout despite -o")
	}
}

func TestGateExtractErrors(t *testing.T) {
	var out, errOut strings.Builder
	if err := run(nil, &out, &errOut); err == nil {
		t.Error("missing -circuit accepted")
	}
	if err := run([]string{"-circuit", "/nope"}, &out, &errOut); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"-circuit", writeTemp(t, src), "-cells", "NOPE"}, &out, &errOut); err == nil {
		t.Error("unknown cell accepted")
	}
}

func TestGateExtractUserPatterns(t *testing.T) {
	lib := `
.GLOBAL VDD GND
.SUBCKT MYINV IN OUT
MP OUT IN VDD pmos
MN OUT IN GND nmos
.ENDS
`
	libPath := filepath.Join(t.TempDir(), "lib.sp")
	if err := os.WriteFile(libPath, []byte(lib), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if err := run([]string{"-circuit", writeTemp(t, src), "-patterns", libPath}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	// The user's MYINV claims the output inverter; the NAND2 stays at
	// transistor level (the user library has no NAND).
	if !strings.Contains(errOut.String(), "MYINV") {
		t.Errorf("summary missing MYINV:\n%s", errOut.String())
	}
	if !strings.Contains(out.String(), "MYINV") || !strings.Contains(out.String(), "nmos") {
		t.Errorf("output missing mixed levels:\n%s", out.String())
	}
}

func TestGateExtractDefaultLibrary(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-circuit", writeTemp(t, src)}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	// With the whole library, AND2 (NAND2+INV) wins over the pieces.
	if !strings.Contains(errOut.String(), "AND2") {
		t.Errorf("default library missed the AND2 composite:\n%s", errOut.String())
	}
	if err := run([]string{"-circuit", writeTemp(t, src), "-patterns", "/does/not/exist"}, &out, &errOut); err == nil {
		t.Error("missing -patterns file accepted")
	}
}
