// Benchtab regenerates the paper's evaluation tables and figures
// (DESIGN.md experiments E4–E9) as text tables.
//
// Usage:
//
//	benchtab [-table results|scaling|baseline|ablation|coverage|phase1|phase2|sweep|incremental|all] [-quick] [-json out.json]
//
// Absolute times are machine-dependent; the shapes the paper claims —
// instance counts, tight candidate vectors, flat time-per-matched-device,
// and a large margin over the naive matcher — are what EXPERIMENTS.md
// records.
//
// With -json, the selected tables are additionally written to a file as
// one JSON document (schema "subgemini-benchtab/v1", documented in
// EXPERIMENTS.md), so successive runs can be archived as BENCH_*.json and
// compared across PRs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"subgemini/internal/bench"
	"subgemini/internal/stats"
)

// jsonOutput is the -json document: one optional section per table, plus
// the summed matcher reports of the results suite.
type jsonOutput struct {
	Schema        string                 `json:"schema"`
	Quick         bool                   `json:"quick"`
	Results       []bench.Row            `json:"results,omitempty"`
	ResultsTotals *stats.Snapshot        `json:"results_totals,omitempty"`
	Scaling       []bench.ScalePoint     `json:"scaling,omitempty"`
	Baseline      []bench.BaselineRow    `json:"baseline,omitempty"`
	Ablation      []bench.AblationRow    `json:"ablation,omitempty"`
	Coverage      []bench.CoverageRow    `json:"coverage,omitempty"`
	Phase1        []bench.Phase1Row      `json:"phase1,omitempty"`
	Phase2        []bench.Phase2Row      `json:"phase2,omitempty"`
	Sweep         []bench.SweepRow       `json:"sweep,omitempty"`
	Incremental   []bench.IncrementalRow `json:"incremental,omitempty"`
}

func main() {
	table := flag.String("table", "all", "which table to regenerate: results, scaling, baseline, ablation, coverage, phase1, phase2, sweep, incremental, all")
	quick := flag.Bool("quick", false, "use reduced workload sizes")
	jsonPath := flag.String("json", "", "also write the selected tables to this file as JSON")
	flag.Parse()

	out := jsonOutput{Schema: "subgemini-benchtab/v1", Quick: *quick}
	run := func(name string, fn func() error) {
		switch *table {
		case name, "all":
			if err := fn(); err != nil {
				log.Fatalf("%s: %v", name, err)
			}
		}
	}
	run("results", func() error {
		rows, totals, err := results(*quick)
		out.Results, out.ResultsTotals = rows, totals
		return err
	})
	run("scaling", func() error {
		pts, err := scaling(*quick)
		out.Scaling = pts
		return err
	})
	run("baseline", func() error {
		rows, err := baselineCmp()
		out.Baseline = rows
		return err
	})
	run("ablation", func() error {
		rows, err := ablation()
		out.Ablation = rows
		return err
	})
	run("coverage", func() error {
		rows, err := coverage()
		out.Coverage = rows
		return err
	})
	run("phase1", func() error {
		rows, err := phase1(*quick)
		out.Phase1 = rows
		return err
	})
	run("phase2", func() error {
		rows, err := phase2(*quick)
		out.Phase2 = rows
		return err
	})
	run("sweep", func() error {
		rows, err := sweepTable(*quick)
		out.Sweep = rows
		return err
	})
	run("incremental", func() error {
		rows, err := incrementalTable(*quick)
		out.Incremental = rows
		return err
	})

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			log.Fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}

func coverage() ([]bench.CoverageRow, error) {
	rows, err := bench.ExtractionCoverage()
	if err != nil {
		return nil, err
	}
	fmt.Println("== E9: ad hoc series-parallel recognizer vs SubGemini library extraction ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "circuit\tMOS devices\tadhoc gates (named)\tadhoc coverage\tsubgemini cells\tsubgemini coverage\tadhoc time\tsubgemini time\tworkload")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d (%d)\t%.0f%%\t%d\t%.0f%%\t%v\t%v\t%s\n",
			r.Circuit, r.Devices, r.AdhocGates, r.AdhocNamed, r.AdhocCover*100,
			r.SubgCells, r.SubgCover*100, round(r.AdhocTime), round(r.SubgTime), r.Description)
	}
	w.Flush()
	fmt.Println("(the ad hoc method cannot name multi-stage cells and loses pass-transistor structure entirely; paper §I)")
	fmt.Println()
	return rows, nil
}

func results(quick bool) ([]bench.Row, *stats.Snapshot, error) {
	suite := bench.Suite(1)
	if quick && len(suite) > 5 {
		suite = suite[:5]
	}
	var rows []bench.Row
	var agg stats.Aggregate
	for _, w := range suite {
		row, err := bench.Run(w)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, row)
		agg.Add(&row.Report)
	}
	fmt.Println("== E4: results table (per circuit/pattern pair) ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "circuit\tdevices\tnets\tpattern\tfound\texpected\t|CV|\tmatched devs\tphase1\tphase2\ttotal\tper matched dev")
	for _, r := range rows {
		status := ""
		if r.Found != r.Expected {
			status = "  <-- MISMATCH"
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%s\t%d\t%d\t%d\t%d\t%v\t%v\t%v\t%v%s\n",
			r.Circuit, r.Devices, r.Nets, r.Pattern, r.Found, r.Expected, r.CVSize,
			r.Matched, round(r.P1), round(r.P2), round(r.Total), round(r.PerDevice), status)
	}
	w.Flush()
	snap := agg.Snapshot()
	fmt.Printf("totals: %d runs, %d instances, %d matched devices, %d candidates, %d guesses, %d backtracks, %s total\n",
		snap.Runs, snap.Sum.Instances, snap.Sum.MatchedDevices, snap.Sum.Candidates,
		snap.Sum.Guesses, snap.Sum.Backtracks, round(snap.Sum.Total()))
	fmt.Println()
	return rows, &snap, nil
}

func scaling(quick bool) ([]bench.ScalePoint, error) {
	pts, err := bench.ScalingSeries(quick)
	if err != nil {
		return nil, err
	}
	fmt.Println("== E5: scaling figure (linearity in matched devices) ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "series\tparam\tdevices\tinstances\tmatched devs\ttotal\tus per matched dev")
	last := ""
	for _, p := range pts {
		if p.Series != last {
			if last != "" {
				fmt.Fprintln(w, "\t\t\t\t\t\t")
			}
			last = p.Series
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%v\t%.3f\n",
			p.Series, p.Param, p.Devices, p.Instances, p.Matched, round(p.Total), p.PerDevice)
	}
	w.Flush()
	fmt.Println("(linear scaling <=> the last column stays roughly flat within each series)")
	fmt.Println()
	return pts, nil
}

func baselineCmp() ([]bench.BaselineRow, error) {
	rows, err := bench.BaselineComparison(1)
	if err != nil {
		return nil, err
	}
	fmt.Println("== E6: SubGemini vs exhaustive DFS ([6]-style) and pruned DFS ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "circuit\tdevices\tpattern\tinstances\tsubgemini\tpruned DFS\tplain DFS\tplain steps\tspeedup vs plain")
	for _, r := range rows {
		plain := round(r.Plain)
		steps := fmt.Sprintf("%d", r.PlainSteps)
		if r.PlainAborted {
			plain = ">" + plain
			steps = ">" + steps + " (cut off)"
		}
		fmt.Fprintf(w, "%s\t%d\t%s\t%d\t%v\t%v\t%s\t%s\t%.1fx\n",
			r.Circuit, r.Devices, r.Pattern, r.Instances, round(r.SubGemini), round(r.Pruned), plain, steps, r.Speedup)
	}
	w.Flush()
	fmt.Println()
	return rows, nil
}

func ablation() ([]bench.AblationRow, error) {
	rows, err := bench.Ablation()
	if err != nil {
		return nil, err
	}
	fmt.Println("== E7/E8: special-signal ablation and early abort ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "case\t|CV|\tinstances\ttotal\tnote")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%v\t%s\n", r.Case, r.CVSize, r.Instances, round(r.Total), r.Note)
	}
	w.Flush()
	fmt.Println()
	return rows, nil
}

func phase1(quick bool) ([]bench.Phase1Row, error) {
	rows, err := bench.Phase1Scaling(quick)
	if err != nil {
		return nil, err
	}
	fmt.Println("== Phase I engines: legacy vs CSR, workers sweep ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "circuit\tdevices\tpattern\tengine\tworkers\tpasses\tpruned\t|CV|\tfound\tphase1 (min)")
	last := ""
	for _, r := range rows {
		if r.Circuit != last {
			if last != "" {
				fmt.Fprintln(w, "\t\t\t\t\t\t\t\t\t")
			}
			last = r.Circuit
		}
		fmt.Fprintf(w, "%s\t%d\t%s\t%s\t%d\t%d\t%d\t%d\t%d\t%v\n",
			r.Circuit, r.Devices, r.Pattern, r.Engine, r.Workers,
			r.Passes, r.Pruned, r.CVSize, r.Found, round(r.P1))
	}
	w.Flush()
	fmt.Println("(all configurations must agree on every column but the time; worker rows need real cores to win)")
	fmt.Println()
	return rows, nil
}

func phase2(quick bool) ([]bench.Phase2Row, error) {
	rows, err := bench.Phase2Regions(quick)
	if err != nil {
		return nil, err
	}
	fmt.Println("== Phase II engines: whole-graph legacy vs region-localized ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "circuit\tdevices\tpattern\tengine\tcandidates\tfound\tradius\tavg ball\tmax ball\tphase2 (min)")
	last := ""
	for _, r := range rows {
		if r.Circuit != last {
			if last != "" {
				fmt.Fprintln(w, "\t\t\t\t\t\t\t\t\t")
			}
			last = r.Circuit
		}
		ball := "-"
		radius := "-"
		if r.Engine == "region" {
			ball = fmt.Sprintf("%.0f", r.AvgBall)
			radius = fmt.Sprintf("%d", r.Radius)
		}
		max := "-"
		if r.MaxBall > 0 {
			max = fmt.Sprintf("%d", r.MaxBall)
		}
		fmt.Fprintf(w, "%s\t%d\t%s\t%s\t%d\t%d\t%s\t%s\t%s\t%v\n",
			r.Circuit, r.Devices, r.Pattern, r.Engine,
			r.Candidates, r.Found, radius, ball, max, round(r.P2))
	}
	w.Flush()
	fmt.Println("(both engines must agree on candidates and found; the region win grows with circuit size / ball size)")
	fmt.Println()
	return rows, nil
}

func sweepTable(quick bool) ([]bench.SweepRow, error) {
	rows, err := bench.SweepScaling(quick)
	if err != nil {
		return nil, err
	}
	fmt.Println("== Library sweep: one amortized run vs a sequential matcher loop ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "circuit\tdevices\tpatterns\tworkers\tinstances\tdeduped\tsequential\tsweep\tspeedup")
	last := ""
	for _, r := range rows {
		if r.Circuit != last {
			if last != "" {
				fmt.Fprintln(w, "\t\t\t\t\t\t\t\t")
			}
			last = r.Circuit
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%v\t%v\t%.2fx\n",
			r.Circuit, r.Devices, r.Patterns, r.Workers, r.Instances, r.Deduped,
			round(r.Sequential), round(r.Sweep), r.Speedup)
	}
	w.Flush()
	fmt.Println("(per-pattern instance counts are checked against the sequential loop; worker rows need real cores to win)")
	fmt.Println()
	return rows, nil
}

func incrementalTable(quick bool) ([]bench.IncrementalRow, error) {
	rows, err := bench.IncrementalScaling(quick)
	if err != nil {
		return nil, err
	}
	fmt.Println("== Incremental re-match: refreshing results after an edit vs recomputing from scratch ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "circuit\tdevices\tedited devs\treplayed\trecomputed\tre-match (inc)\tre-match (full)\tre-sweep (inc)\tre-sweep (full)\tspeedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%s %v\t%s %v\t%v\t%v\t%.1fx\n",
			r.Circuit, r.Devices, r.EditDevs, r.Replayed, r.Recomputed,
			r.Pattern, round(r.ReMatch), r.Pattern, round(r.ReMatchFull),
			round(r.IncResweep), round(r.FullResweep), r.Speedup)
	}
	w.Flush()
	fmt.Println("(speedup = full re-sweep / incremental re-match: refreshing a pattern's result after the edit")
	fmt.Println(" vs the pre-delta full library re-sweep; sweep instance counts are cross-checked full vs incremental)")
	fmt.Println()
	return rows, nil
}

func round(d interface{ Microseconds() int64 }) string {
	us := d.Microseconds()
	switch {
	case us >= 1_000_000:
		return fmt.Sprintf("%.2fs", float64(us)/1e6)
	case us >= 1000:
		return fmt.Sprintf("%.2fms", float64(us)/1e3)
	default:
		return fmt.Sprintf("%dµs", us)
	}
}
