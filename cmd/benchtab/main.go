// Benchtab regenerates the paper's evaluation tables and figures
// (DESIGN.md experiments E4–E9) as text tables.
//
// Usage:
//
//	benchtab [-table results|scaling|baseline|ablation|coverage|all] [-quick]
//
// Absolute times are machine-dependent; the shapes the paper claims —
// instance counts, tight candidate vectors, flat time-per-matched-device,
// and a large margin over the naive matcher — are what EXPERIMENTS.md
// records.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"subgemini/internal/bench"
)

func main() {
	table := flag.String("table", "all", "which table to regenerate: results, scaling, baseline, ablation, coverage, all")
	quick := flag.Bool("quick", false, "use reduced workload sizes")
	flag.Parse()

	run := func(name string, fn func() error) {
		switch *table {
		case name, "all":
			if err := fn(); err != nil {
				log.Fatalf("%s: %v", name, err)
			}
		}
	}
	run("results", func() error { return results(*quick) })
	run("scaling", func() error { return scaling(*quick) })
	run("baseline", func() error { return baselineCmp() })
	run("ablation", func() error { return ablation() })
	run("coverage", func() error { return coverage() })
}

func coverage() error {
	rows, err := bench.ExtractionCoverage()
	if err != nil {
		return err
	}
	fmt.Println("== E9: ad hoc series-parallel recognizer vs SubGemini library extraction ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "circuit\tMOS devices\tadhoc gates (named)\tadhoc coverage\tsubgemini cells\tsubgemini coverage\tadhoc time\tsubgemini time\tworkload")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d (%d)\t%.0f%%\t%d\t%.0f%%\t%v\t%v\t%s\n",
			r.Circuit, r.Devices, r.AdhocGates, r.AdhocNamed, r.AdhocCover*100,
			r.SubgCells, r.SubgCover*100, round(r.AdhocTime), round(r.SubgTime), r.Description)
	}
	w.Flush()
	fmt.Println("(the ad hoc method cannot name multi-stage cells and loses pass-transistor structure entirely; paper §I)")
	fmt.Println()
	return nil
}

func results(quick bool) error {
	suite := bench.Suite(1)
	if quick && len(suite) > 5 {
		suite = suite[:5]
	}
	var rows []bench.Row
	for _, w := range suite {
		row, err := bench.Run(w)
		if err != nil {
			return err
		}
		rows = append(rows, row)
	}
	fmt.Println("== E4: results table (per circuit/pattern pair) ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "circuit\tdevices\tnets\tpattern\tfound\texpected\t|CV|\tmatched devs\tphase1\tphase2\ttotal\tper matched dev")
	for _, r := range rows {
		status := ""
		if r.Found != r.Expected {
			status = "  <-- MISMATCH"
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%s\t%d\t%d\t%d\t%d\t%v\t%v\t%v\t%v%s\n",
			r.Circuit, r.Devices, r.Nets, r.Pattern, r.Found, r.Expected, r.CVSize,
			r.Matched, round(r.P1), round(r.P2), round(r.Total), round(r.PerDevice), status)
	}
	w.Flush()
	fmt.Println()
	return nil
}

func scaling(quick bool) error {
	pts, err := bench.ScalingSeries(quick)
	if err != nil {
		return err
	}
	fmt.Println("== E5: scaling figure (linearity in matched devices) ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "series\tparam\tdevices\tinstances\tmatched devs\ttotal\tus per matched dev")
	last := ""
	for _, p := range pts {
		if p.Series != last {
			if last != "" {
				fmt.Fprintln(w, "\t\t\t\t\t\t")
			}
			last = p.Series
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%v\t%.3f\n",
			p.Series, p.Param, p.Devices, p.Instances, p.Matched, round(p.Total), p.PerDevice)
	}
	w.Flush()
	fmt.Println("(linear scaling <=> the last column stays roughly flat within each series)")
	fmt.Println()
	return nil
}

func baselineCmp() error {
	rows, err := bench.BaselineComparison(1)
	if err != nil {
		return err
	}
	fmt.Println("== E6: SubGemini vs exhaustive DFS ([6]-style) and pruned DFS ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "circuit\tdevices\tpattern\tinstances\tsubgemini\tpruned DFS\tplain DFS\tplain steps\tspeedup vs plain")
	for _, r := range rows {
		plain := round(r.Plain)
		steps := fmt.Sprintf("%d", r.PlainSteps)
		if r.PlainAborted {
			plain = ">" + plain
			steps = ">" + steps + " (cut off)"
		}
		fmt.Fprintf(w, "%s\t%d\t%s\t%d\t%v\t%v\t%s\t%s\t%.1fx\n",
			r.Circuit, r.Devices, r.Pattern, r.Instances, round(r.SubGemini), round(r.Pruned), plain, steps, r.Speedup)
	}
	w.Flush()
	fmt.Println()
	return nil
}

func ablation() error {
	rows, err := bench.Ablation()
	if err != nil {
		return err
	}
	fmt.Println("== E7/E8: special-signal ablation and early abort ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "case\t|CV|\tinstances\ttotal\tnote")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%v\t%s\n", r.Case, r.CVSize, r.Instances, round(r.Total), r.Note)
	}
	w.Flush()
	fmt.Println()
	return nil
}

func round(d interface{ Microseconds() int64 }) string {
	us := d.Microseconds()
	switch {
	case us >= 1_000_000:
		return fmt.Sprintf("%.2fs", float64(us)/1e6)
	case us >= 1000:
		return fmt.Sprintf("%.2fms", float64(us)/1e3)
	default:
		return fmt.Sprintf("%dµs", us)
	}
}
