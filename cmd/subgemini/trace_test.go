package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"subgemini"
)

// TestCLITraceFile checks the -trace flag end to end: the run writes a
// subgemini-trace/v1 JSONL file whose events cover the whole run.
func TestCLITraceFile(t *testing.T) {
	ckt := writeTemp(t, "c.sp", circuitSrc)
	tracePath := filepath.Join(t.TempDir(), "run.jsonl")
	if _, err := runCLI(t, "-circuit", ckt, "-cell", "NAND2", "-trace", tracePath); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := subgemini.ReadTraceJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 4 {
		t.Fatalf("trace holds %d events, want at least run_start, a pass, the CV, and run_end", len(events))
	}
	if events[0].Kind != "run_start" || events[0].Pattern != "NAND2" {
		t.Errorf("first event = %+v, want run_start for NAND2", events[0])
	}
	last := events[len(events)-1]
	if last.Kind != "run_end" || last.Instances != 1 {
		t.Errorf("last event = %+v, want run_end with 1 instance", last)
	}
}

// TestCLITraceStdout checks -trace - : the JSONL stream shares stdout with
// the normal report, header line first.
func TestCLITraceStdout(t *testing.T) {
	ckt := writeTemp(t, "c.sp", circuitSrc)
	out, err := runCLI(t, "-circuit", ckt, "-cell", "NAND2", "-q", "-trace", "-")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `{"schema":"subgemini-trace/v1"}`) {
		t.Errorf("stdout missing the trace schema header:\n%s", out)
	}
	if !strings.Contains(out, `"kind":"phase2_candidate"`) {
		t.Errorf("stdout missing candidate events:\n%s", out)
	}
}
