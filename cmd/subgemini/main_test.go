package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const circuitSrc = `
.GLOBAL VDD GND
MP1 y a VDD pmos
MP2 y b VDD pmos
MN1 y a n1 nmos
MN2 n1 b GND nmos
MP3 z y VDD pmos
MN3 z y GND nmos
.END
`

const patternSrc = `
.GLOBAL VDD GND
.SUBCKT NANDX A B Y
MP1 Y A VDD pmos
MP2 Y B VDD pmos
MN1 Y A n1 nmos
MN2 n1 B GND nmos
.ENDS
`

func writeTemp(t *testing.T, name, contents string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(contents), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out, errOut strings.Builder
	err := run(args, &out, &errOut)
	return out.String(), err
}

func TestCLIWithLibraryCell(t *testing.T) {
	ckt := writeTemp(t, "c.sp", circuitSrc)
	out, err := runCLI(t, "-circuit", ckt, "-cell", "NAND2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "1 instance(s)") {
		t.Errorf("output missing instance count:\n%s", out)
	}
	if !strings.Contains(out, "MP1 MP2 MN1 MN2") {
		t.Errorf("output missing instance devices:\n%s", out)
	}
}

func TestCLIWithPatternFile(t *testing.T) {
	ckt := writeTemp(t, "c.sp", circuitSrc)
	pat := writeTemp(t, "p.sp", patternSrc)
	// Single subckt in the file: -subckt may be omitted.
	out, err := runCLI(t, "-circuit", ckt, "-pattern", pat, "-q")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "1" {
		t.Errorf("quiet output = %q, want 1", out)
	}
	// Explicit -subckt also works.
	out, err = runCLI(t, "-circuit", ckt, "-pattern", pat, "-subckt", "NANDX", "-q")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "1" {
		t.Errorf("quiet output = %q, want 1", out)
	}
}

func TestCLITraceTable(t *testing.T) {
	ckt := writeTemp(t, "c.sp", circuitSrc)
	out, err := runCLI(t, "-circuit", ckt, "-cell", "INV", "-tracetable")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Phase II trace for candidate") {
		t.Errorf("trace table missing:\n%s", out)
	}
}

func TestCLIBind(t *testing.T) {
	ckt := writeTemp(t, "c.sp", circuitSrc)
	out, err := runCLI(t, "-circuit", ckt, "-cell", "INV", "-bind", "A=y", "-q")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "1" {
		t.Errorf("bound count = %q, want 1", out)
	}
	out, err = runCLI(t, "-circuit", ckt, "-cell", "INV", "-bind", "A=a", "-q")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "0" {
		t.Errorf("bound-to-a count = %q, want 0 (a drives the NAND, not an inverter)", out)
	}
}

func TestCLIWorkers(t *testing.T) {
	ckt := writeTemp(t, "c.sp", circuitSrc)
	for _, w := range []string{"2", "-1"} {
		out, err := runCLI(t, "-circuit", ckt, "-cell", "NAND2", "-workers", w, "-q")
		if err != nil {
			t.Fatalf("-workers %s: %v", w, err)
		}
		if strings.TrimSpace(out) != "1" {
			t.Errorf("-workers %s count = %q, want 1", w, out)
		}
	}
	// The parallel matcher rejects NonOverlapping and MaxInstances; the
	// CLI reports that before doing any work.
	for _, args := range [][]string{
		{"-circuit", ckt, "-cell", "NAND2", "-workers", "2", "-nonoverlap"},
		{"-circuit", ckt, "-cell", "NAND2", "-workers", "2", "-max", "1"},
	} {
		if _, err := runCLI(t, args...); err == nil {
			t.Errorf("args %v: expected an error", args)
		}
	}
}

func TestCLIErrors(t *testing.T) {
	ckt := writeTemp(t, "c.sp", circuitSrc)
	pat := writeTemp(t, "p.sp", patternSrc)
	cases := [][]string{
		{},                // no -circuit
		{"-circuit", ckt}, // neither -pattern nor -cell
		{"-circuit", ckt, "-pattern", pat, "-cell", "INV"}, // both
		{"-circuit", ckt, "-cell", "NOPE"},                 // unknown cell
		{"-circuit", "/does/not/exist", "-cell", "INV"},    // missing file
		{"-circuit", ckt, "-cell", "INV", "-bind", "junk"}, // malformed bind
	}
	for _, args := range cases {
		if _, err := runCLI(t, args...); err == nil {
			t.Errorf("args %v: expected an error", args)
		}
	}
}

func TestCLIJSON(t *testing.T) {
	ckt := writeTemp(t, "c.sp", circuitSrc)
	out, err := runCLI(t, "-circuit", ckt, "-cell", "NAND2", "-json")
	if err != nil {
		t.Fatal(err)
	}
	var insts []struct {
		Devices map[string]string `json:"devices"`
		Nets    map[string]string `json:"nets"`
	}
	if err := json.Unmarshal([]byte(out), &insts); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(insts) != 1 {
		t.Fatalf("%d instances in JSON, want 1", len(insts))
	}
	if insts[0].Devices["MP1"] != "MP1" || insts[0].Nets["Y"] != "y" {
		t.Errorf("mapping wrong: %+v", insts[0])
	}
}

func TestCLILibrarySweep(t *testing.T) {
	ckt := writeTemp(t, "c.sp", circuitSrc)

	// Built-in names: the NAND2+INV circuit holds one of each.
	out, err := runCLI(t, "-circuit", ckt, "-library", "NAND2,INV")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"library: 2 patterns, 2 matcher runs", "NAND2", "INV", "total             2"} {
		if !strings.Contains(out, want) {
			t.Errorf("library output missing %q:\n%s", want, out)
		}
	}

	// -q prints the total; a -pattern .SUBCKT shadows nothing here but is
	// swept alongside the built-in, and duplicates are reported as deduped.
	pat := writeTemp(t, "p.sp", patternSrc)
	out, err = runCLI(t, "-circuit", ckt, "-pattern", pat, "-library", "NANDX,NAND2", "-q")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) != "2" {
		t.Errorf("quiet sweep total = %q, want 2", out)
	}

	// JSON form carries per-pattern counts in input order.
	out, err = runCLI(t, "-circuit", ckt, "-pattern", pat, "-library", "all", "-json")
	if err != nil {
		t.Fatal(err)
	}
	var entries []struct {
		Pattern string `json:"pattern"`
		Count   int    `json:"count"`
	}
	if err := json.Unmarshal([]byte(out), &entries); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if len(entries) != 1 || entries[0].Pattern != "NANDX" || entries[0].Count != 1 {
		t.Errorf("json sweep = %+v, want [{NANDX 1}]", entries)
	}

	// Flag validation.
	if _, err := runCLI(t, "-circuit", ckt, "-library", "INV", "-cell", "INV"); err == nil {
		t.Error("library+cell accepted, want error")
	}
	if _, err := runCLI(t, "-circuit", ckt, "-library", "INV", "-nonoverlap"); err == nil {
		t.Error("library+nonoverlap accepted, want error")
	}
	if _, err := runCLI(t, "-circuit", ckt, "-library", "NO_SUCH"); err == nil {
		t.Error("unknown library name accepted, want error")
	}
}
