// Subgemini is the command-line pattern matcher: it finds every instance
// of a subcircuit inside a flat netlist.
//
// Usage:
//
//	subgemini -circuit chip.sp -pattern cells.sp -subckt NAND2 [flags]
//	subgemini -circuit chip.sp -cell NAND2 [flags]
//	subgemini -circuit chip.sp -library NAND2,NOR2,INV [flags]
//	subgemini -circuit chip.sp -pattern cells.sp -library all [flags]
//
// The circuit file's top-level cards form the main circuit (subcircuit
// instances are flattened).  The pattern comes either from a .SUBCKT in
// -pattern (selected with -subckt; if the file has exactly one definition,
// -subckt may be omitted) or from the built-in cell library via -cell.
//
// -library sweeps a whole set of patterns in one run, sharing the circuit
// adjacency view and initial Phase I labeling across them: a comma list of
// names (built-in cells, or .SUBCKTs of -pattern, which shadow same-named
// cells), or "all" for every .SUBCKT of -pattern (every built-in cell when
// -pattern is absent).  Output is a per-pattern count table.
//
// Flags:
//
//	-globals VDD,GND   treat these nets as special signals (in addition
//	                   to any .GLOBAL directives in the files)
//	-nonoverlap        report only disjoint instances (extraction
//	                   semantics) instead of all instances
//	-max N             stop after N instances
//	-workers N         verify Phase II candidates over N workers
//	                   (-1 = all CPUs; incompatible with -nonoverlap/-max)
//	-phase1workers N   stripe Phase I relabeling of the main circuit over
//	                   N goroutines (results are bit-identical; defaults
//	                   to -workers when that is set, else sequential)
//	-phase1legacy      use the pointer-walking reference Phase I engine
//	                   instead of the data-oriented CSR engine
//	-phase2legacy      use the whole-graph reference Phase II engine
//	                   instead of the region-localized engine
//	-v                 trace the phases to stderr
//	-tracetable        print Table-1-style per-pass label tables
//	-trace FILE        write a subgemini-trace/v1 JSONL event stream
//	                   ("-" = stdout; render it with tracefmt)
//	-q                 print only the instance count
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"subgemini"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("subgemini: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// run executes the CLI against the given argument list, so tests can drive
// it without spawning a process.
func run(args []string, stdout, stderr io.Writer) error {
	flag := flag.NewFlagSet("subgemini", flag.ContinueOnError)
	flag.SetOutput(stderr)
	var (
		circuitPath = flag.String("circuit", "", "netlist file with the main circuit (required)")
		patternPath = flag.String("pattern", "", "netlist file holding the pattern .SUBCKT")
		subcktName  = flag.String("subckt", "", "name of the pattern .SUBCKT in -pattern")
		cellName    = flag.String("cell", "", "use a built-in library cell as the pattern")
		libraryCSV  = flag.String("library", "", `sweep a comma-separated set of patterns in one run ("all" = every -pattern .SUBCKT, or every built-in cell)`)
		globalsCSV  = flag.String("globals", "", "comma-separated special-signal nets")
		bindCSV     = flag.String("bind", "", "port bindings PORT=NET[,PORT=NET...]: each pattern port matches only the named net")
		nonOverlap  = flag.Bool("nonoverlap", false, "report only disjoint instances")
		maxInst     = flag.Int("max", 0, "stop after this many instances (0 = no limit)")
		workers     = flag.Int("workers", 0, "verify Phase II candidates over N workers, 0 = sequential (-1 = all CPUs; incompatible with -nonoverlap and -max)")
		p1Workers   = flag.Int("phase1workers", 0, "stripe Phase I relabeling over N goroutines (0 = follow -workers)")
		p1Legacy    = flag.Bool("phase1legacy", false, "use the pointer-walking reference Phase I engine")
		p2Legacy    = flag.Bool("phase2legacy", false, "use the whole-graph reference Phase II engine")
		verbose     = flag.Bool("v", false, "trace matching to stderr")
		traceTable  = flag.Bool("tracetable", false, "print a Table-1-style per-pass label table for every Phase II candidate")
		tracePath   = flag.String("trace", "", `write a subgemini-trace/v1 JSONL event stream to this file ("-" = stdout; render with tracefmt)`)
		quiet       = flag.Bool("q", false, "print only the instance count")
		asJSON      = flag.Bool("json", false, "print instances as JSON (pattern name -> image name maps)")
	)
	if err := flag.Parse(args); err != nil {
		return err
	}
	if *circuitPath == "" {
		return fmt.Errorf("-circuit is required")
	}
	if *libraryCSV != "" {
		if *cellName != "" || *subcktName != "" {
			return fmt.Errorf("-library replaces -cell/-subckt; drop them")
		}
		if *nonOverlap {
			return fmt.Errorf("-library uses overlap semantics; drop -nonoverlap")
		}
		circuit, err := loadMain(*circuitPath)
		if err != nil {
			return err
		}
		lib, err := loadLibrary(*patternPath, *libraryCSV)
		if err != nil {
			return err
		}
		return runSweep(circuit, lib, sweepFlags{
			globalsCSV: *globalsCSV,
			maxInst:    *maxInst,
			workers:    *workers,
			p1Workers:  *p1Workers,
			quiet:      *quiet,
			asJSON:     *asJSON,
		}, stdout)
	}
	if (*patternPath == "") == (*cellName == "") {
		return fmt.Errorf("exactly one of -pattern or -cell is required")
	}

	circuit, err := loadMain(*circuitPath)
	if err != nil {
		return err
	}
	pattern, err := loadPattern(*patternPath, *subcktName, *cellName)
	if err != nil {
		return err
	}

	opts := subgemini.Options{
		MaxInstances: *maxInst,
		Workers:      *p1Workers,
		LegacyPhase1: *p1Legacy,
		LegacyPhase2: *p2Legacy,
	}
	if opts.Workers == 0 && *workers > 0 {
		// A Phase II fan-out is a statement that cores are available; let
		// Phase I use them too unless told otherwise.
		opts.Workers = *workers
	}
	if *globalsCSV != "" {
		opts.Globals = strings.Split(*globalsCSV, ",")
	}
	if *bindCSV != "" {
		opts.Bind = make(map[string]string)
		for _, pair := range strings.Split(*bindCSV, ",") {
			port, net, ok := strings.Cut(pair, "=")
			if !ok {
				return fmt.Errorf("-bind entry %q is not PORT=NET", pair)
			}
			opts.Bind[port] = net
		}
	}
	if *nonOverlap {
		opts.Policy = subgemini.NonOverlapping
	}
	if *verbose {
		opts.Trace = stderr
	}
	if *traceTable {
		opts.TraceTable = stdout
	}
	var traceSink *subgemini.JSONLTracer
	if *tracePath != "" {
		out := io.Writer(stdout)
		if *tracePath != "-" {
			f, err := os.Create(*tracePath)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		traceSink = subgemini.NewJSONLTracer(out)
		opts.Tracer = traceSink
	}

	var res *subgemini.Result
	if *workers != 0 {
		if *nonOverlap {
			return fmt.Errorf("-workers requires overlap semantics; drop -nonoverlap")
		}
		if *maxInst > 0 {
			return fmt.Errorf("-workers cannot honor -max deterministically; drop one of them")
		}
		// -1 means "all CPUs", which FindParallel spells as 0.
		n := *workers
		if n < 0 {
			n = 0
		}
		res, err = subgemini.FindParallel(circuit, pattern, opts, n)
	} else {
		res, err = subgemini.Find(circuit, pattern, opts)
	}
	if traceSink != nil {
		// Flush even when the match failed: a partial trace of an aborted
		// run is exactly what post-mortem debugging wants.
		if ferr := traceSink.Flush(); ferr != nil && err == nil {
			return fmt.Errorf("writing trace: %w", ferr)
		}
	}
	if err != nil {
		return err
	}
	if *quiet {
		fmt.Fprintln(stdout, len(res.Instances))
		return nil
	}
	if *asJSON {
		return writeJSON(stdout, res)
	}
	fmt.Fprintf(stdout, "circuit %s: %d devices, %d nets\n", circuit.Name, circuit.NumDevices(), circuit.NumNets())
	fmt.Fprintf(stdout, "pattern %s: %d devices\n", pattern.Name, pattern.NumDevices())
	fmt.Fprintf(stdout, "%d instance(s)\n", len(res.Instances))
	for i, inst := range res.Instances {
		fmt.Fprintf(stdout, "#%d:", i+1)
		for _, d := range inst.Devices() {
			fmt.Fprintf(stdout, " %s", d.Name)
		}
		fmt.Fprintln(stdout)
	}
	fmt.Fprintln(stdout, "stats:", res.Report.String())
	return nil
}

// sweepFlags carries the subset of CLI options the -library mode honors.
type sweepFlags struct {
	globalsCSV string
	maxInst    int
	workers    int
	p1Workers  int
	quiet      bool
	asJSON     bool
}

// loadLibrary resolves -library into named pattern templates.  User
// .SUBCKTs from -pattern shadow same-named built-in cells; "all" selects
// every .SUBCKT of -pattern, or the whole built-in library without one.
func loadLibrary(patternPath, csv string) ([]subgemini.SweepPattern, error) {
	var f *subgemini.NetlistFile
	if patternPath != "" {
		var err error
		if f, err = parseFile(patternPath); err != nil {
			return nil, err
		}
	}
	var names []string
	if csv == "all" {
		if f != nil {
			for name := range f.Subckts {
				names = append(names, name)
			}
			sort.Strings(names)
		} else {
			for _, c := range subgemini.Cells() {
				names = append(names, c.Name)
			}
		}
	} else {
		names = strings.Split(csv, ",")
	}
	lib := make([]subgemini.SweepPattern, 0, len(names))
	for _, name := range names {
		name = strings.TrimSpace(name)
		if f != nil {
			if _, ok := f.Subckts[name]; ok {
				tpl, err := f.Pattern(name)
				if err != nil {
					return nil, err
				}
				lib = append(lib, subgemini.SweepPattern{Name: name, Template: tpl})
				continue
			}
		}
		def := subgemini.Cell(name)
		if def == nil {
			return nil, fmt.Errorf("no library cell or -pattern .SUBCKT named %q (cells: %s)", name, cellNames())
		}
		lib = append(lib, subgemini.SweepPattern{Name: name, Template: def.Pattern()})
	}
	return lib, nil
}

// runSweep executes the -library mode: one amortized run over the whole
// set, reported as a per-pattern count table.
func runSweep(circuit *subgemini.Circuit, lib []subgemini.SweepPattern, fl sweepFlags, stdout io.Writer) error {
	opts := subgemini.SweepOptions{
		MaxInstances:  fl.maxInst,
		Phase1Workers: fl.p1Workers,
	}
	if fl.globalsCSV != "" {
		opts.Globals = strings.Split(fl.globalsCSV, ",")
	}
	switch {
	case fl.workers > 0:
		opts.Workers = fl.workers
	case fl.workers < 0:
		opts.Workers = 0 // all CPUs
	default:
		opts.Workers = 1 // sequential, like the single-pattern default
	}
	rep, err := subgemini.Sweep(circuit, lib, opts)
	if err != nil {
		return err
	}
	if fl.quiet {
		fmt.Fprintln(stdout, rep.Instances())
		return nil
	}
	if fl.asJSON {
		type entry struct {
			Pattern string `json:"pattern"`
			Alias   string `json:"alias,omitempty"`
			Count   int    `json:"count"`
		}
		out := make([]entry, 0, len(rep.Results))
		for i := range rep.Results {
			pr := &rep.Results[i]
			out = append(out, entry{Pattern: pr.Name, Alias: pr.Alias, Count: len(pr.Instances)})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	fmt.Fprintf(stdout, "circuit %s: %d devices, %d nets\n", circuit.Name, circuit.NumDevices(), circuit.NumNets())
	fmt.Fprintf(stdout, "library: %d patterns, %d matcher runs (%d deduped), %v\n",
		len(rep.Results), rep.Runs, rep.Deduped, rep.Duration.Round(time.Microsecond))
	for i := range rep.Results {
		pr := &rep.Results[i]
		note := ""
		if pr.Alias != "" {
			note = "  (= " + pr.Alias + ")"
		}
		fmt.Fprintf(stdout, "%-12s %6d%s\n", pr.Name, len(pr.Instances), note)
	}
	fmt.Fprintf(stdout, "total        %6d\n", rep.Instances())
	return nil
}

// writeJSON emits the instances as a JSON array of name maps.
func writeJSON(w io.Writer, res *subgemini.Result) error {
	type inst struct {
		Devices map[string]string `json:"devices"`
		Nets    map[string]string `json:"nets"`
	}
	out := make([]inst, 0, len(res.Instances))
	for _, in := range res.Instances {
		ji := inst{Devices: map[string]string{}, Nets: map[string]string{}}
		for sd, gd := range in.DevMap {
			ji.Devices[sd.Name] = gd.Name
		}
		for sn, gnet := range in.NetMap {
			ji.Nets[sn.Name] = gnet.Name
		}
		out = append(out, ji)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func loadMain(path string) (*subgemini.Circuit, error) {
	f, err := parseFile(path)
	if err != nil {
		return nil, err
	}
	return f.MainCircuit(base(path))
}

func loadPattern(path, subckt, cell string) (*subgemini.Circuit, error) {
	if cell != "" {
		def := subgemini.Cell(cell)
		if def == nil {
			return nil, fmt.Errorf("no library cell named %q (available: %s)", cell, cellNames())
		}
		return def.Pattern(), nil
	}
	f, err := parseFile(path)
	if err != nil {
		return nil, err
	}
	if subckt == "" {
		if len(f.Subckts) != 1 {
			return nil, fmt.Errorf("%s defines %d subcircuits; select one with -subckt", path, len(f.Subckts))
		}
		for name := range f.Subckts {
			subckt = name
		}
	}
	return f.Pattern(subckt)
}

func parseFile(path string) (*subgemini.NetlistFile, error) {
	r, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return subgemini.ReadNetlist(r, path)
}

func base(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		path = path[i+1:]
	}
	return strings.TrimSuffix(path, ".sp")
}

func cellNames() string {
	var names []string
	for _, c := range subgemini.Cells() {
		names = append(names, c.Name)
	}
	return strings.Join(names, ", ")
}
