// Docgen regenerates the tracer-generated sections of ALGORITHM.md: it
// runs the paper's Fig. 1 worked example (internal/gen/paperex) through the
// matcher with both trace sinks installed and splices the resulting tables
// between marker comments, so the documentation cannot drift from what the
// code actually does.  A staleness test in this package (and `make
// docs-check`) fails whenever the committed file no longer matches the
// regenerated output; `make docs` (or `go run ./cmd/docgen -write`)
// refreshes it.
//
// Usage:
//
//	docgen [-write | -check] [ALGORITHM.md]
//
// With no flag the regenerated document is printed to stdout.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"subgemini/internal/core"
	"subgemini/internal/gen/paperex"
	"subgemini/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("docgen: ")
	write := flag.Bool("write", false, "rewrite the file in place")
	check := flag.Bool("check", false, "exit nonzero if the file is stale")
	flag.Parse()
	path := "ALGORITHM.md"
	if flag.NArg() == 1 {
		path = flag.Arg(0)
	} else if flag.NArg() > 1 {
		log.Fatal("usage: docgen [-write | -check] [ALGORITHM.md]")
	}

	doc, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fresh, err := regenerate(string(doc))
	if err != nil {
		log.Fatal(err)
	}
	switch {
	case *check:
		if fresh != string(doc) {
			log.Fatalf("%s is stale: regenerate it with `make docs`", path)
		}
	case *write:
		if fresh != string(doc) {
			if err := os.WriteFile(path, []byte(fresh), 0o644); err != nil {
				log.Fatal(err)
			}
		}
	default:
		os.Stdout.WriteString(fresh)
	}
}

// generate runs the Fig. 1 example once and returns the generated blocks by
// marker name.
func generate() (map[string]string, error) {
	var table bytes.Buffer
	col := trace.NewCollector(0)
	res, err := core.Find(paperex.PaperMain(), paperex.PaperPattern(), core.Options{
		TraceTable: &table,
		Tracer:     col,
	})
	if err != nil {
		return nil, err
	}
	if len(res.Instances) != 1 {
		return nil, fmt.Errorf("paper example found %d instances, want 1 — the worked example is broken", len(res.Instances))
	}
	events := col.Events()
	// Wall-clock durations are the one nondeterministic field; zero them so
	// Render prints "-" and the generated document is byte-stable.
	for i := range events {
		events[i].DurationNS = 0
	}
	var run bytes.Buffer
	if err := trace.Render(&run, events); err != nil {
		return nil, err
	}
	return map[string]string{
		"paper-example-trace":  fence(run.String()),
		"paper-example-table1": fence(table.String()),
	}, nil
}

func fence(s string) string {
	return "```text\n" + strings.TrimRight(s, "\n") + "\n```"
}

// regenerate splices every generated block into doc and returns the result.
// Every block must have its marker pair present, and every marker pair in
// the document must correspond to a known block, so a renamed section fails
// loudly instead of silently sticking to stale content.
func regenerate(doc string) (string, error) {
	blocks, err := generate()
	if err != nil {
		return "", err
	}
	for name, content := range blocks {
		begin := fmt.Sprintf("<!-- generated:begin %s -->", name)
		end := fmt.Sprintf("<!-- generated:end %s -->", name)
		i := strings.Index(doc, begin)
		j := strings.Index(doc, end)
		if i < 0 || j < 0 || j < i {
			return "", fmt.Errorf("marker pair for block %q not found in document", name)
		}
		doc = doc[:i+len(begin)] + "\n" + content + "\n" + doc[j:]
	}
	if n := strings.Count(doc, "<!-- generated:begin "); n != len(blocks) {
		return "", fmt.Errorf("document has %d generated:begin markers, docgen knows %d blocks", n, len(blocks))
	}
	return doc, nil
}
