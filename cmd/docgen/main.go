// Docgen regenerates the generated sections of the repository's living
// documents, so they cannot drift from what the code actually does:
//
//   - ALGORITHM.md: the tracer-produced tables of the paper's Fig. 1
//     worked example (internal/gen/paperex), rendered by running the real
//     matcher with both trace sinks installed.
//   - OPERATIONS.md: the subgeminid metrics reference, generated from the
//     server's metric registry (server.MetricsReference), and the
//     fault-injection point table, generated from the faults registry
//     (faults.List).
//
// A staleness test in this package (and `make docs-check`) fails whenever
// a committed file no longer matches the regenerated output; `make docs`
// (or `go run ./cmd/docgen -write`) refreshes them.
//
// Usage:
//
//	docgen [-write | -check] [file ...]
//
// With no files both documents are processed; with no flag the regenerated
// documents are printed to stdout.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"subgemini/internal/core"
	"subgemini/internal/delta"
	"subgemini/internal/faults"
	"subgemini/internal/gen"
	"subgemini/internal/gen/paperex"
	"subgemini/internal/server"
	"subgemini/internal/stdcell"
	"subgemini/internal/trace"

	// The fault-point table must see every registration; the server import
	// above pulls in jobs, store, and sweep transitively, but keep the
	// dependency explicit for the points those packages own.
	_ "subgemini/internal/jobs"
	_ "subgemini/internal/store"
	_ "subgemini/internal/sweep"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("docgen: ")
	write := flag.Bool("write", false, "rewrite the files in place")
	check := flag.Bool("check", false, "exit nonzero if any file is stale")
	flag.Parse()
	paths := flag.Args()
	if len(paths) == 0 {
		paths = []string{"ALGORITHM.md", "OPERATIONS.md"}
	}
	stale := false
	for _, path := range paths {
		doc, err := os.ReadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		fresh, err := regenerate(path, string(doc))
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		switch {
		case *check:
			if fresh != string(doc) {
				log.Printf("%s is stale: regenerate it with `make docs`", path)
				stale = true
			}
		case *write:
			if fresh != string(doc) {
				if err := os.WriteFile(path, []byte(fresh), 0o644); err != nil {
					log.Fatal(err)
				}
			}
		default:
			os.Stdout.WriteString(fresh)
		}
	}
	if stale {
		os.Exit(1)
	}
}

// blocksFor returns the generated blocks for one document, keyed by marker
// name.
func blocksFor(path string) (map[string]string, error) {
	switch base := filepath.Base(path); base {
	case "ALGORITHM.md":
		return algorithmBlocks()
	case "OPERATIONS.md":
		return operationsBlocks()
	default:
		return nil, fmt.Errorf("no generated blocks known for %s", base)
	}
}

// algorithmBlocks runs the Fig. 1 example once and returns the generated
// trace blocks.
func algorithmBlocks() (map[string]string, error) {
	var table bytes.Buffer
	col := trace.NewCollector(0)
	res, err := core.Find(paperex.PaperMain(), paperex.PaperPattern(), core.Options{
		TraceTable: &table,
		Tracer:     col,
	})
	if err != nil {
		return nil, err
	}
	if len(res.Instances) != 1 {
		return nil, fmt.Errorf("paper example found %d instances, want 1 — the worked example is broken", len(res.Instances))
	}
	events := col.Events()
	// Wall-clock durations are the one nondeterministic field; zero them so
	// Render prints "-" and the generated document is byte-stable.
	for i := range events {
		events[i].DurationNS = 0
	}
	var run bytes.Buffer
	if err := trace.Render(&run, events); err != nil {
		return nil, err
	}
	regions, err := phase2RegionsBlock()
	if err != nil {
		return nil, err
	}
	blast, err := incrementalBlastRadiusBlock()
	if err != nil {
		return nil, err
	}
	return map[string]string{
		"paper-example-trace":      fence(run.String()),
		"paper-example-table1":     fence(table.String()),
		"phase2-regions":           regions,
		"incremental-blast-radius": blast,
	}, nil
}

// incrementalBlastRadiusBlock runs the real incremental engine on a
// deterministic circuit — capture a NAND2 match, rewire k pins through the
// delta engine, replay — and renders how the blast radius grows with edit
// size: how much of the previous run's Phase II work survives the edit.
func incrementalBlastRadiusBlock() (string, error) {
	opts := core.Options{Globals: []string{"VDD", "GND"}}
	pat := stdcell.NAND2.Pattern()
	var b strings.Builder
	b.WriteString("| edited pins | dirty vertices | mode | replayed | recomputed | re-verified | instances |\n")
	b.WriteString("|---|---|---|---|---|---|---|\n")
	for _, k := range []int{1, 2, 4, 8} {
		// A fresh circuit per row: delta.Apply mutates in place, and each
		// row's edit batch must land on the pristine version-1 graph.  The
		// workload is the quick-mode bench circuit (seeded, so byte-stable).
		c := gen.RandomLogic(400, 32, 11).C
		m, err := core.NewMatcher(c, opts)
		if err != nil {
			return "", err
		}
		cold, state, err := m.FindIncremental(pat, nil, nil)
		if err != nil {
			return "", err
		}
		if len(cold.Instances) == 0 {
			return "", fmt.Errorf("blast-radius capture found no NAND2 instances; workload degenerate")
		}
		ops := make([]delta.Op, k)
		for i := range ops {
			dev := c.Devices[(i*997+13)%len(c.Devices)]
			ops[i] = delta.Op{Op: delta.OpRewirePin, Device: dev.Name, Pin: 0, Net: fmt.Sprintf("eco%d", i)}
		}
		step, err := delta.Apply(c, 2, ops)
		if err != nil {
			return "", err
		}
		ds, err := delta.Compose([]*delta.Step{step})
		if err != nil {
			return "", err
		}
		em, err := core.NewMatcher(c, opts)
		if err != nil {
			return "", err
		}
		warm, _, err := em.FindIncremental(pat, state, ds)
		if err != nil {
			return "", err
		}
		rep := warm.Report
		if rep.IncrementalMode == "replay" && rep.Replayed == 0 {
			return "", fmt.Errorf("blast-radius row k=%d replayed nothing; the incremental engine is inert", k)
		}
		share := "-"
		if total := rep.Replayed + rep.Recomputed; total > 0 {
			share = fmt.Sprintf("%.0f%%", 100*float64(rep.Recomputed)/float64(total))
		}
		fmt.Fprintf(&b, "| %d | %d | %s | %d | %d | %s | %d |\n",
			k, rep.DirtyVertices, rep.IncrementalMode, rep.Replayed, rep.Recomputed, share, len(warm.Instances))
	}
	return strings.TrimRight(b.String(), "\n"), nil
}

// phase2RegionsBlock reruns the Fig. 1 example on the region-localized
// Phase II engine (TraceTable forces the whole-graph engine, so the run
// above cannot supply this) and renders the per-candidate region table
// from the ball sizes the tracer reports.
func phase2RegionsBlock() (string, error) {
	main := paperex.PaperMain()
	vertices := main.NumDevices() + main.NumNets()
	col := trace.NewCollector(0)
	res, err := core.Find(main, paperex.PaperPattern(), core.Options{Tracer: col})
	if err != nil {
		return "", err
	}
	if len(res.Instances) != 1 {
		return "", fmt.Errorf("paper example found %d instances on the region engine, want 1", len(res.Instances))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Key vertex radius %d (pattern eccentricity); G has %d vertices.\n\n",
		res.Report.RegionRadius, vertices)
	b.WriteString("| candidate | ball vertices | share of G | passes | outcome |\n")
	b.WriteString("|---|---|---|---|---|\n")
	for _, e := range col.Events() {
		if e.Kind != trace.KindPhase2Candidate {
			continue
		}
		outcome := "refuted"
		if e.Matched {
			outcome = "match"
		}
		fmt.Fprintf(&b, "| %s | %d | %.0f%% | %d | %s |\n",
			e.Candidate, e.BallSize, 100*float64(e.BallSize)/float64(vertices), e.Passes, outcome)
	}
	return strings.TrimRight(b.String(), "\n"), nil
}

// operationsBlocks renders the runbook's generated reference tables from
// the live registries.
func operationsBlocks() (map[string]string, error) {
	var fp strings.Builder
	fp.WriteString("| Point | Fires at |\n|---|---|\n")
	for _, p := range faults.List() {
		fmt.Fprintf(&fp, "| `%s` | %s |\n", p.Name, p.Desc)
	}
	return map[string]string{
		"metrics-reference": strings.TrimRight(server.MetricsReferenceMarkdown(), "\n"),
		"fault-points":      strings.TrimRight(fp.String(), "\n"),
	}, nil
}

func fence(s string) string {
	return "```text\n" + strings.TrimRight(s, "\n") + "\n```"
}

// regenerate splices every generated block into doc and returns the result.
// Every block must have its marker pair present, and every marker pair in
// the document must correspond to a known block, so a renamed section fails
// loudly instead of silently sticking to stale content.
func regenerate(path, doc string) (string, error) {
	blocks, err := blocksFor(path)
	if err != nil {
		return "", err
	}
	for name, content := range blocks {
		begin := fmt.Sprintf("<!-- generated:begin %s -->", name)
		end := fmt.Sprintf("<!-- generated:end %s -->", name)
		i := strings.Index(doc, begin)
		j := strings.Index(doc, end)
		if i < 0 || j < 0 || j < i {
			return "", fmt.Errorf("marker pair for block %q not found in document", name)
		}
		doc = doc[:i+len(begin)] + "\n" + content + "\n" + doc[j:]
	}
	if n := strings.Count(doc, "<!-- generated:begin "); n != len(blocks) {
		return "", fmt.Errorf("document has %d generated:begin markers, docgen knows %d blocks", n, len(blocks))
	}
	return doc, nil
}
