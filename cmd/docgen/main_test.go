package main

import (
	"os"
	"strings"
	"testing"
)

// TestAlgorithmMDIsFresh is the staleness gate: it regenerates the
// tracer-produced blocks from the current matcher and fails when the
// committed ALGORITHM.md differs.  Being part of `go test ./...` puts it in
// tier-1, so documentation drift breaks the build until `make docs` runs.
func TestAlgorithmMDIsFresh(t *testing.T) {
	doc, err := os.ReadFile("../../ALGORITHM.md")
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := regenerate(string(doc))
	if err != nil {
		t.Fatal(err)
	}
	if fresh != string(doc) {
		t.Error("ALGORITHM.md generated tables are stale; refresh them with `make docs`")
	}
}

// TestGenerateBlocks sanity-checks the generated content itself: the trace
// rendering must show the paper's candidate outcomes and the Table-1 view
// must include both Phase II candidate tables.
func TestGenerateBlocks(t *testing.T) {
	blocks, err := generate()
	if err != nil {
		t.Fatal(err)
	}
	tr := blocks["paper-example-trace"]
	for _, want := range []string{"key vertex N4 (net), |CV| = 2", "N13", "no match", "N14", "MATCH"} {
		if !strings.Contains(tr, want) {
			t.Errorf("trace block missing %q:\n%s", want, tr)
		}
	}
	if strings.Contains(tr, "time") && !strings.Contains(tr, "-") {
		t.Error("trace block should render stripped durations as '-'")
	}
	tab := blocks["paper-example-table1"]
	for _, want := range []string{"candidate N13 (no match", "candidate N14 (MATCH", "[*KV]"} {
		if !strings.Contains(tab, want) {
			t.Errorf("table block missing %q:\n%s", want, tab)
		}
	}
}

func TestRegenerateRejectsBadMarkers(t *testing.T) {
	if _, err := regenerate("no markers at all\n"); err == nil {
		t.Error("document without markers accepted")
	}
	doc := "<!-- generated:begin paper-example-trace -->\n<!-- generated:end paper-example-trace -->\n" +
		"<!-- generated:begin paper-example-table1 -->\n<!-- generated:end paper-example-table1 -->\n" +
		"<!-- generated:begin unknown-block -->\n<!-- generated:end unknown-block -->\n"
	if _, err := regenerate(doc); err == nil {
		t.Error("document with an unknown marker pair accepted")
	}
}
