package main

import (
	"os"
	"strings"
	"testing"
)

// checkFresh is the staleness gate for one document: it regenerates the
// generated blocks from the current code and fails when the committed file
// differs.  Being part of `go test ./...` puts it in tier-1, so
// documentation drift breaks the build until `make docs` runs.
func checkFresh(t *testing.T, path string) {
	t.Helper()
	doc, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := regenerate(path, string(doc))
	if err != nil {
		t.Fatal(err)
	}
	if fresh != string(doc) {
		t.Errorf("%s generated sections are stale; refresh them with `make docs`", path)
	}
}

func TestAlgorithmMDIsFresh(t *testing.T)  { checkFresh(t, "../../ALGORITHM.md") }
func TestOperationsMDIsFresh(t *testing.T) { checkFresh(t, "../../OPERATIONS.md") }

// TestGenerateBlocks sanity-checks the generated content itself: the trace
// rendering must show the paper's candidate outcomes and the Table-1 view
// must include both Phase II candidate tables.
func TestGenerateBlocks(t *testing.T) {
	blocks, err := algorithmBlocks()
	if err != nil {
		t.Fatal(err)
	}
	tr := blocks["paper-example-trace"]
	for _, want := range []string{"key vertex N4 (net), |CV| = 2", "N13", "no match", "N14", "MATCH"} {
		if !strings.Contains(tr, want) {
			t.Errorf("trace block missing %q:\n%s", want, tr)
		}
	}
	if strings.Contains(tr, "time") && !strings.Contains(tr, "-") {
		t.Error("trace block should render stripped durations as '-'")
	}
	tab := blocks["paper-example-table1"]
	for _, want := range []string{"candidate N13 (no match", "candidate N14 (MATCH", "[*KV]"} {
		if !strings.Contains(tab, want) {
			t.Errorf("table block missing %q:\n%s", want, tab)
		}
	}
}

// TestOperationsBlocks: the runbook tables must carry every registered
// fault point and the shed/readiness metrics this PR introduced.
func TestOperationsBlocks(t *testing.T) {
	blocks, err := operationsBlocks()
	if err != nil {
		t.Fatal(err)
	}
	fp := blocks["fault-points"]
	for _, want := range []string{
		"jobs.persist", "jobs.run", "server.handler",
		"store.reload", "store.write-manifest", "store.write-snapshot", "sweep.worker",
	} {
		if !strings.Contains(fp, "`"+want+"`") {
			t.Errorf("fault-point table missing %q:\n%s", want, fp)
		}
	}
	mr := blocks["metrics-reference"]
	for _, want := range []string{"subgeminid_shed_total", "subgeminid_ready", "subgeminid_jobs_persist_retries_total"} {
		if !strings.Contains(mr, "`"+want+"`") {
			t.Errorf("metrics reference missing %q", want)
		}
	}
}

func TestRegenerateRejectsBadMarkers(t *testing.T) {
	if _, err := regenerate("ALGORITHM.md", "no markers at all\n"); err == nil {
		t.Error("document without markers accepted")
	}
	doc := "<!-- generated:begin paper-example-trace -->\n<!-- generated:end paper-example-trace -->\n" +
		"<!-- generated:begin paper-example-table1 -->\n<!-- generated:end paper-example-table1 -->\n" +
		"<!-- generated:begin unknown-block -->\n<!-- generated:end unknown-block -->\n"
	if _, err := regenerate("ALGORITHM.md", doc); err == nil {
		t.Error("document with an unknown marker pair accepted")
	}
	if _, err := regenerate("UNKNOWN.md", "anything"); err == nil {
		t.Error("file with no known block set accepted")
	}
}
