package main

import (
	"context"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

const circuitSrc = `
.GLOBAL VDD GND
MP1 y a VDD pmos
MP2 y b VDD pmos
MN1 y a n1 nmos
MN2 n1 b GND nmos
.END
`

const patternLib = `
.GLOBAL VDD GND
.SUBCKT MYNAND A B Y
MP1 Y A VDD pmos
MP2 Y B VDD pmos
MN1 Y A n1 nmos
MN2 n1 B GND nmos
.ENDS
`

func writeTemp(t *testing.T, name, contents string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(contents), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// syncWriter serializes and captures the daemon's stdout so the test can
// read the bound address.
type syncWriter struct {
	mu sync.Mutex
	b  strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

// TestDaemonLifecycle boots the daemon on an ephemeral port, serves a
// match over real HTTP, and shuts it down via context cancellation (the
// signal path uses the same cancellation).
func TestDaemonLifecycle(t *testing.T) {
	ckt := writeTemp(t, "c.sp", circuitSrc)
	lib := writeTemp(t, "lib.sp", patternLib)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var out syncWriter
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-circuit", ckt,
			"-patterns", lib,
			"-globals", "VDD,GND",
		}, &out, os.Stderr)
	}()

	// Wait for the listener line to learn the bound address.
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its address; output:\n%s", out.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "listening on "); ok {
				addr = strings.TrimSpace(rest)
			}
		}
		select {
		case err := <-done:
			t.Fatalf("daemon exited early: %v\noutput:\n%s", err, out.String())
		case <-time.After(10 * time.Millisecond):
		}
	}

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, b.String()
	}

	if code, body := get("/healthz"); code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Errorf("healthz: %d %q", code, body)
	}

	// The preloaded pattern library serves by name.
	resp, err := http.Post("http://"+addr+"/v1/match", "application/json",
		strings.NewReader(`{"pattern": "MYNAND"}`))
	if err != nil {
		t.Fatal(err)
	}
	var body strings.Builder
	buf := make([]byte, 8192)
	for {
		n, rerr := resp.Body.Read(buf)
		body.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(body.String(), `"count": 1`) {
		t.Errorf("match: %d %s", resp.StatusCode, body.String())
	}

	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "subgeminid_match_runs_total 1") {
		t.Errorf("metrics: %d\n%s", code, body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not shut down within 5s")
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Errorf("missing shutdown line:\n%s", out.String())
	}
}

// TestDaemonFlagErrors: bad inputs fail fast instead of starting a broken
// daemon.
func TestDaemonFlagErrors(t *testing.T) {
	ctx := context.Background()
	var out strings.Builder
	cases := [][]string{
		{"-circuit", "/does/not/exist.sp"},
		{"-patterns", "/does/not/exist.sp"},
		{"-addr", "999.999.999.999:0"},
		{"-not-a-flag"},
	}
	for _, args := range cases {
		if err := run(ctx, args, &out, &out); err == nil {
			t.Errorf("args %v: expected an error", args)
		}
	}
	// A circuit file with no top-level cards is rejected at startup.
	lib := writeTemp(t, "lib.sp", patternLib)
	if err := run(ctx, []string{"-circuit", lib}, &out, &out); err == nil {
		t.Error("pattern-only netlist accepted as -circuit")
	}
}
