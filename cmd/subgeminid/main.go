// Subgeminid is the long-lived matching daemon: it keeps a main circuit
// and the pattern library resident in memory and serves match queries over
// HTTP/JSON, amortizing the parse/compile work the one-shot CLIs repeat on
// every invocation.
//
// Usage:
//
//	subgeminid -addr :8080 -circuit chip.sp -globals VDD,GND [flags]
//
// The daemon may also start empty and receive circuits over HTTP.  It
// holds many named circuits at once; matches select one with ?circuit= or
// the request's "circuit" field (default: the circuit named "default").
// Endpoints:
//
//	POST /v1/match               match one pattern against a stored circuit
//	POST /v1/match/batch         match many patterns in one request
//	PUT  /v1/circuits/{name}     store/replace a named circuit
//	PATCH /v1/circuits/{name}    apply an edit batch (JSON delta ops)
//	GET  /v1/circuits/{name}     describe a named circuit
//	GET  /v1/circuits/{name}/versions  the circuit's edit-version log
//	DEL  /v1/circuits/{name}     delete a named circuit (and its snapshot)
//	GET  /v1/circuits            list stored circuits
//	POST /v1/circuit             legacy: replace the "default" circuit
//	GET  /v1/circuit             legacy: describe the "default" circuit
//	POST /v1/jobs                submit an async match/batch/extract job
//	GET  /v1/jobs                list jobs
//	GET  /v1/jobs/{id}           poll a job (state, result when done)
//	DEL  /v1/jobs/{id}           cancel a queued or running job
//	GET  /v1/cells               list built-in cells and uploaded patterns
//	GET  /healthz                liveness probe (process is up)
//	GET  /readyz                 readiness probe (not draining, store healthy)
//	GET  /metrics                Prometheus-style metrics: counters, store
//	                             and job gauges, per-phase histograms,
//	                             per-pattern outcome counters
//	GET  /debug/requests         flight recorder: kept request timelines
//	GET  /debug/requests/{id}    one request's span timeline(s) by ID
//	GET  /debug/pprof/           Go runtime profiles (CPU, heap, ...)
//
// Flags:
//
//	-addr :8080          listen address
//	-circuit chip.sp     netlist whose top-level cards form the circuit
//	-patterns lib.sp     netlist whose .SUBCKTs preload the pattern cache
//	-globals VDD,GND     special signals applied to every match
//	-data-dir DIR        durable state: circuit snapshots, uploaded
//	                     patterns, and job records live here and are
//	                     reloaded on boot (empty = memory only)
//	-max-circuit-bytes N resident-circuit memory budget; over it, idle
//	                     snapshotted circuits are demoted to disk and
//	                     reloaded on demand (0 = unbounded)
//	-max-patterns N      compiled-pattern cache capacity (LRU; 0 = 256)
//	-job-workers N       async job worker pool size (0 = 2)
//	-job-queue N         async job queue depth (0 = 64)
//	-job-retention D     how long finished job records are kept (0 = 1h)
//	-timeout 30s         default per-request match deadline
//	-max-timeout 5m      upper bound on client-requested deadlines
//	-max-concurrent N    match slots (admission control; 0 = GOMAXPROCS)
//	-max-workers N       cap on per-request "workers" fan-out
//	-phase1-workers N    default Phase I relabeling fan-out for requests
//	                     that do not set "workers" (0 = sequential)
//	-max-body N          request body limit in bytes
//	-shed-inflight N     shed batch/sweep/job submissions (429+Retry-After)
//	                     while N matches are in flight; single matches
//	                     stay live (0 = off)
//	-shed-memory-bytes N same, while the Go heap in use is >= N (0 = off)
//	-retry-after D       Retry-After hint on shed responses (0 = 2s)
//	-faults SPEC         arm fault-injection points (testing only); also
//	                     settable via $SUBGEMINID_FAULTS
//	-log-format text     daemon log encoding: "text" or "json"
//	-log-level info      minimum log level: debug, info, warn, error
//	-slow-request D      requests over D log a slow-request line and are
//	                     always kept by the flight recorder (0 = 1s)
//	-flight-recorder N   flight-recorder ring capacity in timelines (0 = 256)
//	-flight-sample N     tail-sampling rate for unremarkable requests:
//	                     keep 1 in N (0 = 16; 1 keeps everything)
//	-no-preload          skip compiling the built-in library at startup
//	-noincremental       disable the incremental matcher and its versioned
//	                     result cache; every match and sweep runs the full
//	                     algorithm (results are bit-identical either way,
//	                     so this is purely a differential/debug switch)
//	-result-cache N      versioned result-cache capacity in (circuit,
//	                     pattern) entries (0 = 256)
//	-drain D             graceful-shutdown drain period
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: /readyz flips to
// not-ready, the listener stops accepting, in-flight requests get a drain
// period, running jobs are drained (queued ones are cancelled), and
// snapshots are flushed before the process exits.
//
// OPERATIONS.md is the operator runbook: every flag and endpoint, the
// overload and failure behavior, and the generated metrics reference.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"subgemini"
	"subgemini/internal/faults"
	"subgemini/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("subgeminid: ")
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// run configures and serves the daemon until ctx is cancelled; tests drive
// it directly with a cancellable context.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	flags := flag.NewFlagSet("subgeminid", flag.ContinueOnError)
	flags.SetOutput(stderr)
	var (
		addr        = flags.String("addr", ":8080", "listen address")
		circuitPath = flags.String("circuit", "", "netlist file with the main circuit (optional; may be uploaded later)")
		patternPath = flags.String("patterns", "", "netlist file whose .SUBCKTs preload the pattern cache")
		globalsCSV  = flags.String("globals", "", "comma-separated special-signal nets applied to every match")
		timeout     = flags.Duration("timeout", 30*time.Second, "default per-request match deadline")
		maxTimeout  = flags.Duration("max-timeout", 5*time.Minute, "upper bound on client-requested deadlines")
		maxConc     = flags.Int("max-concurrent", 0, "concurrent match slots (0 = GOMAXPROCS)")
		maxWorkers  = flags.Int("max-workers", 0, "cap on per-request workers fan-out (0 = GOMAXPROCS)")
		p1Workers   = flags.Int("phase1-workers", 0, "default Phase I relabeling fan-out when a request sets no workers (0 = sequential)")
		maxBody     = flags.Int64("max-body", 16<<20, "request body limit in bytes")
		noPreload   = flags.Bool("no-preload", false, "skip compiling the built-in cell library at startup")
		noInc       = flags.Bool("noincremental", false, "disable incremental matching and the versioned result cache (differential/debug switch; results are identical)")
		resultCache = flags.Int("result-cache", 0, "versioned result-cache capacity in (circuit, pattern) entries (0 = 256)")
		drain       = flags.Duration("drain", 10*time.Second, "graceful-shutdown drain period")
		dataDir     = flags.String("data-dir", "", "directory for durable state: circuit snapshots, uploaded patterns, job records (empty = memory only)")
		maxCktBytes = flags.Int64("max-circuit-bytes", 0, "resident-circuit memory budget in bytes; idle snapshotted circuits past it are demoted to disk (0 = unbounded)")
		maxPatterns = flags.Int("max-patterns", 0, "compiled-pattern cache capacity, LRU-evicted (0 = 256)")
		jobWorkers  = flags.Int("job-workers", 0, "async job worker pool size (0 = 2)")
		jobQueue    = flags.Int("job-queue", 0, "async job queue depth (0 = 64)")
		jobKeep     = flags.Duration("job-retention", 0, "how long finished job records are retained (0 = 1h)")
		shedIn      = flags.Int("shed-inflight", 0, "shed batch/sweep/job submissions while this many matches are in flight (0 = off)")
		shedMem     = flags.Int64("shed-memory-bytes", 0, "shed batch/sweep/job submissions while the Go heap in use is at or past this (0 = off)")
		retryAfter  = flags.Duration("retry-after", 0, "Retry-After hint on shed responses, rounded to whole seconds (0 = 2s)")
		faultSpec   = flags.String("faults", "", "arm fault-injection points, e.g. 'store.reload=error:1,jobs.run=panic' (testing only; overrides $SUBGEMINID_FAULTS)")
		logFormat   = flags.String("log-format", "text", `log encoding: "text" or "json"`)
		logLevel    = flags.String("log-level", "info", "minimum log level: debug, info, warn, error")
		slowReq     = flags.Duration("slow-request", 0, "requests over this duration log a slow-request line and are always kept by the flight recorder (0 = 1s)")
		flightSize  = flags.Int("flight-recorder", 0, "flight-recorder ring capacity in timelines (0 = 256)")
		flightN     = flags.Int("flight-sample", 0, "tail-sampling rate for unremarkable requests, keep 1 in N (0 = 16; 1 keeps everything)")
	)
	if err := flags.Parse(args); err != nil {
		return err
	}
	if *logFormat != "text" && *logFormat != "json" {
		return fmt.Errorf(`-log-format %q: want "text" or "json"`, *logFormat)
	}
	if !obs.ParseLevelOK(*logLevel) {
		return fmt.Errorf("-log-level %q: want debug, info, warn, or error", *logLevel)
	}
	if spec := *faultSpec; spec != "" || os.Getenv("SUBGEMINID_FAULTS") != "" {
		if spec == "" {
			spec = os.Getenv("SUBGEMINID_FAULTS")
		}
		n, err := faults.ArmString(spec)
		if err != nil {
			return fmt.Errorf("arming faults: %w", err)
		}
		fmt.Fprintf(stderr, "subgeminid: FAULT INJECTION ARMED: %d point(s) from %q\n", n, spec)
	}

	cfg := subgemini.ServerConfig{
		DefaultTimeout:     *timeout,
		MaxTimeout:         *maxTimeout,
		MaxConcurrent:      *maxConc,
		ShedInflight:       *shedIn,
		ShedMemoryBytes:    *shedMem,
		RetryAfter:         *retryAfter,
		MaxWorkers:         *maxWorkers,
		Phase1Workers:      *p1Workers,
		MaxBodyBytes:       *maxBody,
		PreloadBuiltins:    !*noPreload,
		DisableIncremental: *noInc,
		ResultCacheSize:    *resultCache,
		DataDir:            *dataDir,
		MaxStoreBytes:      *maxCktBytes,
		MaxPatterns:        *maxPatterns,
		JobWorkers:         *jobWorkers,
		JobQueue:           *jobQueue,
		JobRetention:       *jobKeep,
		Log:                obs.NewLogger(stderr, *logFormat, *logLevel),
		SlowRequest:        *slowReq,
		FlightRecorderSize: *flightSize,
		FlightSampleN:      *flightN,
	}
	if *globalsCSV != "" {
		cfg.Globals = strings.Split(*globalsCSV, ",")
	}
	if *circuitPath != "" {
		ckt, err := loadCircuit(*circuitPath)
		if err != nil {
			return err
		}
		cfg.Circuit = ckt
		fmt.Fprintf(stdout, "circuit %s: %d devices, %d nets\n", ckt.Name, ckt.NumDevices(), ckt.NumNets())
	}
	srv, err := subgemini.NewServer(cfg)
	if err != nil {
		return err
	}
	if *dataDir != "" {
		fmt.Fprintf(stdout, "data dir %s: %d circuit(s) loaded\n", *dataDir, srv.StoredCircuits())
	}
	if *patternPath != "" {
		n, err := preloadPatterns(srv, *patternPath)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "preloaded %d pattern(s) from %s\n", n, *patternPath)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "listening on %s\n", ln.Addr())

	httpSrv := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(stdout, "shutting down")
	// Flip readiness before the listener drains: load balancers watching
	// /readyz stop routing here while in-flight requests finish.
	srv.SetDraining(true)
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	// With the listener drained, close the server itself: running jobs get
	// the rest of the drain period, queued jobs are cancelled, snapshots
	// flush.
	if err := srv.Close(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// loadCircuit parses a netlist file and flattens its top level.
func loadCircuit(path string) (*subgemini.Circuit, error) {
	r, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	f, err := subgemini.ReadNetlist(r, path)
	if err != nil {
		return nil, err
	}
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return f.MainCircuit(strings.TrimSuffix(name, ".sp"))
}

// preloadPatterns compiles every .SUBCKT of a netlist file into the
// server's pattern cache.
func preloadPatterns(srv *subgemini.Server, path string) (int, error) {
	r, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer r.Close()
	f, err := subgemini.ReadNetlist(r, path)
	if err != nil {
		return 0, err
	}
	return srv.PreloadPatterns(f)
}
