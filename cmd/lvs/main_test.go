package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const netA = `
.GLOBAL VDD GND
MP1 y a VDD pmos
MN1 y a GND nmos
.END
`

// Same structure, different names and order.
const netB = `
.GLOBAL VDD GND
MNx out in GND nmos
MPx out in VDD pmos
.END
`

// Different structure: the nmos gate moved.
const netC = `
.GLOBAL VDD GND
MP1 y a VDD pmos
MN1 y y GND nmos
.END
`

func write(t *testing.T, name, contents string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(contents), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLVSIsomorphic(t *testing.T) {
	a, b := write(t, "a.sp", netA), write(t, "b.sp", netB)
	var out strings.Builder
	code, err := run([]string{"-a", a, "-b", b, "-globals", "VDD,GND"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "isomorphic") || !strings.Contains(out.String(), "witness:") {
		t.Errorf("output = %q", out.String())
	}
}

func TestLVSDifferent(t *testing.T) {
	a, c := write(t, "a.sp", netA), write(t, "c.sp", netC)
	var out strings.Builder
	code, err := run([]string{"-a", a, "-b", c, "-globals", "VDD,GND"}, &out)
	if err != nil || code != 1 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	if !strings.Contains(out.String(), "NOT isomorphic") {
		t.Errorf("output = %q", out.String())
	}
}

func TestLVSUsageErrors(t *testing.T) {
	var out strings.Builder
	if code, err := run([]string{"-a", "only"}, &out); code != 2 || err == nil {
		t.Errorf("missing -b: code=%d err=%v", code, err)
	}
	if code, err := run([]string{"-a", "/nope", "-b", "/nope"}, &out); code != 2 || err == nil {
		t.Errorf("missing files: code=%d err=%v", code, err)
	}
}

func TestLVSHierarchical(t *testing.T) {
	good := `
.GLOBAL VDD GND
.SUBCKT I A Y
MP Y A VDD pmos
MN Y A GND nmos
.ENDS
X1 a b I
.END
`
	bad := `
.GLOBAL VDD GND
.SUBCKT I A Y
MP Y A VDD pmos
MN Y Y GND nmos
.ENDS
X1 a b I
.END
`
	a, b := write(t, "a.sp", good), write(t, "b.sp", bad)
	var out strings.Builder
	code, err := run([]string{"-a", a, "-b", b, "-globals", "VDD,GND", "-hier"}, &out)
	if err != nil || code != 1 {
		t.Fatalf("code=%d err=%v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "I") || !strings.Contains(out.String(), "DIFFERS") {
		t.Errorf("summary missing localized mismatch:\n%s", out.String())
	}
	code, err = run([]string{"-a", a, "-b", a, "-globals", "VDD,GND", "-hier"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("self-compare: code=%d err=%v", code, err)
	}
}

func TestLVSPortsByName(t *testing.T) {
	// Two buffers whose port roles are swapped: structurally isomorphic,
	// distinguishable only when ports match by name.
	fwd := `
.GLOBAL VDD GND
MP1 m A VDD pmos
MN1 m A GND nmos
MP2 Y m VDD pmos
MN2 Y m GND nmos
.END
`
	rev := `
.GLOBAL VDD GND
MP1 m Y VDD pmos
MN1 m Y GND nmos
MP2 A m VDD pmos
MN2 A m GND nmos
.END
`
	a, b := write(t, "f.sp", fwd), write(t, "r.sp", rev)
	var out strings.Builder
	code, err := run([]string{"-a", a, "-b", b, "-globals", "VDD,GND", "-q"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("structural: code=%d err=%v\n%s", code, err, out.String())
	}
	// Port-name matching needs marked ports, which flat netlists lack, so
	// exercise the flag path for coverage on the isomorphic pair.
	code, err = run([]string{"-a", a, "-b", b, "-globals", "VDD,GND", "-ports", "-q"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("-ports on flat netlists: code=%d err=%v", code, err)
	}
}
