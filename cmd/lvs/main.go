// Lvs compares two netlists for graph isomorphism, Gemini-style (the
// wirelist-comparison heritage SubGemini builds on, paper refs [3,4]).
// Exit status 0 means the circuits are isomorphic; 1 means they differ;
// 2 means an input could not be read.
//
// Usage:
//
//	lvs -a layout.sp -b schematic.sp [-globals VDD,GND] [-ports]
//
// With -ports, equally named port nets are pre-matched by name — the usual
// mode when comparing two versions of one design.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"subgemini"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lvs: ")
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		log.Print(err)
	}
	os.Exit(code)
}

// run executes the comparison; it returns the process exit code so tests
// can drive the CLI in-process.
func run(args []string, stdout io.Writer) (int, error) {
	flag := flag.NewFlagSet("lvs", flag.ContinueOnError)
	var (
		aPath      = flag.String("a", "", "first netlist (required)")
		bPath      = flag.String("b", "", "second netlist (required)")
		globalsCSV = flag.String("globals", "", "comma-separated special-signal nets")
		byPorts    = flag.Bool("ports", false, "pre-match equally named ports")
		hier       = flag.Bool("hier", false, "compare shared .SUBCKT definitions cell-by-cell, localizing mismatches")
		quiet      = flag.Bool("q", false, "suppress the witness summary")
	)
	if err := flag.Parse(args); err != nil {
		return 2, err
	}
	if *aPath == "" || *bPath == "" {
		return 2, fmt.Errorf("-a and -b are required")
	}

	opts := subgemini.CompareOptions{PortsByName: *byPorts}
	if *globalsCSV != "" {
		opts.Globals = strings.Split(*globalsCSV, ",")
	}
	if *hier {
		fa, err := loadFile(*aPath)
		if err != nil {
			return 2, err
		}
		fb, err := loadFile(*bPath)
		if err != nil {
			return 2, err
		}
		rep, err := subgemini.CompareHierarchical(fa, fb, opts)
		if err != nil {
			return 2, err
		}
		fmt.Fprint(stdout, rep.Summary())
		if !rep.Isomorphic() {
			return 1, nil
		}
		return 0, nil
	}

	a, err := load(*aPath)
	if err != nil {
		return 2, err
	}
	b, err := load(*bPath)
	if err != nil {
		return 2, err
	}
	res, err := subgemini.Compare(a, b, opts)
	if err != nil {
		return 2, err
	}
	if !res.Isomorphic {
		fmt.Fprintf(stdout, "NOT isomorphic: %s\n", res.Reason)
		return 1, nil
	}
	fmt.Fprintln(stdout, "isomorphic")
	if !*quiet {
		fmt.Fprintf(stdout, "witness: %d device pairs, %d net pairs\n", len(res.DevMap), len(res.NetMap))
	}
	return 0, nil
}

func load(path string) (*subgemini.Circuit, error) {
	f, err := loadFile(path)
	if err != nil {
		return nil, err
	}
	return f.MainCircuit(path)
}

func loadFile(path string) (*subgemini.NetlistFile, error) {
	r, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return subgemini.ReadNetlist(r, path)
}
