// Tracefmt renders subgemini-trace/v1 JSONL event streams (written by
// subgemini -trace or any Options.Tracer sink) as human-readable tables:
// one Phase I relabeling table and one Phase II candidate table per run.
//
// Usage:
//
//	tracefmt run.jsonl
//	subgemini -circuit chip.sp -cell NAND2 -trace - | tracefmt
//
// With no argument (or "-") the stream is read from stdin.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"subgemini"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracefmt: ")
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes the renderer against the given argument list, so tests can
// drive it without spawning a process.
func run(args []string, stdin io.Reader, stdout io.Writer) error {
	if len(args) > 1 {
		return fmt.Errorf("usage: tracefmt [trace.jsonl]")
	}
	in := stdin
	if len(args) == 1 && args[0] != "-" {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	events, err := subgemini.ReadTraceJSONL(in)
	if err != nil {
		return err
	}
	return subgemini.RenderTrace(stdout, events)
}
