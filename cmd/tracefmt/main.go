// Tracefmt renders subgemini-trace/v1 JSONL event streams (written by
// subgemini -trace or any Options.Tracer sink) as human-readable tables:
// one Phase I relabeling table and one Phase II candidate table per run.
//
// It also renders subgeminid request-timeline JSON — the body of
// GET /debug/requests/{id} (or a single timeline object from the list
// endpoint) — as an indented span table, so forensics on a captured
// request is one pipe away:
//
//	curl -s localhost:8080/debug/requests/r-ab12-000003 | tracefmt
//
// Usage:
//
//	tracefmt run.jsonl
//	subgemini -circuit chip.sp -cell NAND2 -trace - | tracefmt
//
// With no argument (or "-") the stream is read from stdin.  The input
// format is detected from the payload itself: a JSON object with
// "timelines" or "spans" is a timeline; anything else is a trace stream.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"os"

	"subgemini"
	"subgemini/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracefmt: ")
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes the renderer against the given argument list, so tests can
// drive it without spawning a process.
func run(args []string, stdin io.Reader, stdout io.Writer) error {
	if len(args) > 1 {
		return fmt.Errorf("usage: tracefmt [trace.jsonl | timeline.json]")
	}
	in := stdin
	if len(args) == 1 && args[0] != "-" {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	src, err := io.ReadAll(in)
	if err != nil {
		return err
	}
	if tls, ok := parseTimelines(src); ok {
		for i, tl := range tls {
			if i > 0 {
				fmt.Fprintln(stdout)
			}
			obs.RenderTimeline(stdout, tl)
		}
		return nil
	}
	events, err := subgemini.ReadTraceJSONL(bytes.NewReader(src))
	if err != nil {
		return err
	}
	return subgemini.RenderTrace(stdout, events)
}

// parseTimelines recognizes the two timeline shapes the daemon serves: the
// GET /debug/requests/{id} envelope ({"request_id":..., "timelines":[...]})
// and a bare timeline object ({"request_id":..., "spans":[...]}).
func parseTimelines(src []byte) ([]obs.TimelineJSON, bool) {
	var probe struct {
		Timelines []obs.TimelineJSON `json:"timelines"`
		Spans     []obs.SpanJSON     `json:"spans"`
	}
	if err := json.Unmarshal(src, &probe); err != nil {
		return nil, false
	}
	if len(probe.Timelines) > 0 {
		return probe.Timelines, true
	}
	if probe.Spans != nil {
		var tl obs.TimelineJSON
		if err := json.Unmarshal(src, &tl); err != nil {
			return nil, false
		}
		return []obs.TimelineJSON{tl}, true
	}
	return nil, false
}
