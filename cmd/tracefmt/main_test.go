package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"subgemini"
)

// trace builds a real event stream by matching the NAND2 library cell
// against a small circuit with a JSONL tracer installed.
func traceJSONL(t *testing.T) string {
	t.Helper()
	f, err := subgemini.ParseNetlist(`
.GLOBAL VDD GND
MP1 y a VDD pmos
MP2 y b VDD pmos
MN1 y a n1 nmos
MN2 n1 b GND nmos
.END
`, "c.sp")
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := f.MainCircuit("chip")
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	sink := subgemini.NewJSONLTracer(&buf)
	if _, err := subgemini.Find(ckt, subgemini.Cell("NAND2").Pattern(),
		subgemini.Options{Tracer: sink}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestTracefmtFromFileAndStdin(t *testing.T) {
	jsonl := traceJSONL(t)
	path := filepath.Join(t.TempDir(), "run.jsonl")
	if err := os.WriteFile(path, []byte(jsonl), 0o644); err != nil {
		t.Fatal(err)
	}

	var fromFile, fromStdin strings.Builder
	if err := run([]string{path}, strings.NewReader(""), &fromFile); err != nil {
		t.Fatal(err)
	}
	if err := run(nil, strings.NewReader(jsonl), &fromStdin); err != nil {
		t.Fatal(err)
	}
	if fromFile.String() != fromStdin.String() {
		t.Error("file and stdin renderings differ")
	}
	out := fromFile.String()
	for _, want := range []string{
		"run: pattern NAND2 in circuit chip",
		"Phase I relabeling:",
		"Phase II candidates:",
		"MATCH",
		"run end: 1 instance(s)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestTracefmtErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader("not a trace\n"), &out); err == nil {
		t.Error("malformed stream accepted")
	}
	if err := run([]string{"a", "b"}, strings.NewReader(""), &out); err == nil {
		t.Error("two arguments accepted")
	}
	if err := run([]string{filepath.Join(t.TempDir(), "missing.jsonl")}, strings.NewReader(""), &out); err == nil {
		t.Error("missing file accepted")
	}
}
