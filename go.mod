module subgemini

go 1.22
