package faults

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisabledFastPath(t *testing.T) {
	t.Cleanup(Reset)
	Reset()
	if err := Fire("nonexistent"); err != nil {
		t.Fatalf("Fire with nothing armed = %v, want nil", err)
	}
	if Armed() != 0 {
		t.Fatalf("Armed() = %d, want 0", Armed())
	}
}

func TestErrorCountAndSelfDisarm(t *testing.T) {
	t.Cleanup(Reset)
	Reset()
	Arm("p", Spec{Mode: ModeError, Count: 2})
	for i := 0; i < 2; i++ {
		if err := Fire("p"); !errors.Is(err, ErrInjected) {
			t.Fatalf("firing %d = %v, want ErrInjected", i, err)
		}
	}
	if err := Fire("p"); err != nil {
		t.Fatalf("after count exhausted Fire = %v, want nil", err)
	}
	if Armed() != 0 {
		t.Fatalf("point did not self-disarm: Armed() = %d", Armed())
	}
	if Fired("p") != 2 {
		t.Fatalf("Fired = %d, want 2", Fired("p"))
	}
}

func TestSkip(t *testing.T) {
	t.Cleanup(Reset)
	Reset()
	Arm("p", Spec{Mode: ModeError, Count: 1, Skip: 2})
	if err := Fire("p"); err != nil {
		t.Fatalf("hit 1 (skipped) = %v", err)
	}
	if err := Fire("p"); err != nil {
		t.Fatalf("hit 2 (skipped) = %v", err)
	}
	if err := Fire("p"); err == nil {
		t.Fatal("hit 3 should fire")
	}
	if err := Fire("p"); err != nil {
		t.Fatalf("hit 4 (disarmed) = %v", err)
	}
}

func TestCustomError(t *testing.T) {
	t.Cleanup(Reset)
	Reset()
	sentinel := errors.New("disk on fire")
	Arm("p", Spec{Mode: ModeError, Count: 1, Err: sentinel})
	if err := Fire("p"); !errors.Is(err, sentinel) {
		t.Fatalf("Fire = %v, want wrapped sentinel", err)
	}
}

func TestPanicMode(t *testing.T) {
	t.Cleanup(Reset)
	Reset()
	Arm("p", Spec{Mode: ModePanic, Count: 1})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		if !strings.Contains(r.(string), `"p"`) {
			t.Fatalf("panic message %q does not name the point", r)
		}
	}()
	Fire("p")
}

func TestDelayMode(t *testing.T) {
	t.Cleanup(Reset)
	Reset()
	Arm("p", Spec{Mode: ModeDelay, Count: 1, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := Fire("p"); err != nil {
		t.Fatalf("delay Fire = %v, want nil", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("Fire returned after %v, want >= 20ms", d)
	}
}

func TestUnlimitedCount(t *testing.T) {
	t.Cleanup(Reset)
	Reset()
	Arm("p", Spec{Mode: ModeError, Count: 0})
	for i := 0; i < 10; i++ {
		if err := Fire("p"); err == nil {
			t.Fatalf("firing %d = nil, want error (unlimited count)", i)
		}
	}
	if Armed() != 1 {
		t.Fatalf("unlimited point disarmed itself: Armed() = %d", Armed())
	}
}

func TestRegisterAndList(t *testing.T) {
	t.Cleanup(Reset)
	Register("z.point", "last")
	Register("a.point", "first")
	pts := List()
	var names []string
	for _, p := range pts {
		names = append(names, p.Name)
	}
	// List is sorted; our two points appear in order among any others
	// registered by imported packages.
	ai, zi := -1, -1
	for i, n := range names {
		if n == "a.point" {
			ai = i
		}
		if n == "z.point" {
			zi = i
		}
	}
	if ai < 0 || zi < 0 || ai > zi {
		t.Fatalf("List() = %v, want a.point before z.point", names)
	}
}

func TestArmString(t *testing.T) {
	t.Cleanup(Reset)
	Reset()
	n, err := ArmString("a=error:2, b=panic, c=delay:15ms:inf, d=error:1:skip=3")
	if err != nil {
		t.Fatalf("ArmString: %v", err)
	}
	if n != 4 || Armed() != 4 {
		t.Fatalf("armed %d points (Armed=%d), want 4", n, Armed())
	}
	if err := Fire("a"); !errors.Is(err, ErrInjected) {
		t.Fatalf("a first fire = %v", err)
	}
	// d skips three hits.
	for i := 0; i < 3; i++ {
		if err := Fire("d"); err != nil {
			t.Fatalf("d skipped hit %d = %v", i, err)
		}
	}
	if err := Fire("d"); err == nil {
		t.Fatal("d fourth hit should fire")
	}
}

func TestArmStringErrors(t *testing.T) {
	t.Cleanup(Reset)
	for _, bad := range []string{
		"noequals",
		"p=",
		"p=frobnicate",
		"p=error:-1",
		"p=delay",          // delay without duration
		"p=error:skip=-2",  // negative skip
		"p=error:bogusarg", // neither count nor duration
	} {
		Reset()
		if _, err := ArmString(bad); err == nil {
			t.Errorf("ArmString(%q) succeeded, want error", bad)
		}
		if Armed() != 0 {
			t.Errorf("ArmString(%q) armed points despite error", bad)
		}
	}
	// Empty items are tolerated.
	if n, err := ArmString(" , ,"); err != nil || n != 0 {
		t.Fatalf("ArmString of empties = (%d, %v), want (0, nil)", n, err)
	}
}

// TestConcurrentFire exercises the armed slow path from many goroutines
// under -race: exactly Count firings must be observed in total.
func TestConcurrentFire(t *testing.T) {
	t.Cleanup(Reset)
	Reset()
	const count = 100
	Arm("p", Spec{Mode: ModeError, Count: count})
	var (
		wg   sync.WaitGroup
		hits = make([]int, 8)
	)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if Fire("p") != nil {
					hits[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	var total int
	for _, h := range hits {
		total += h
	}
	if total != count {
		t.Fatalf("total firings = %d, want %d", total, count)
	}
	if Fired("p") != count {
		t.Fatalf("Fired = %d, want %d", Fired("p"), count)
	}
}
