// Package faults is a deterministic fault-injection registry for proving
// that subgeminid's recovery paths actually work.  Packages declare named
// injection points (Register) and call Fire at the matching code site;
// operators and tests arm points with a spec — return an error, panic, or
// delay, a bounded number of times — through Arm, ArmString, or the
// SUBGEMINID_FAULTS environment variable wired up by cmd/subgeminid's
// -faults flag.
//
// The registry is built for production binaries: when nothing is armed,
// Fire is a single atomic load and returns nil — no map lookup, no lock,
// no allocation — so injection points can sit on persistence and handler
// paths permanently instead of living behind build tags.  Arming is
// explicit and deterministic: a spec fires on exact hit counts (skip the
// first N hits, then fire M times), so a chaos scenario that kills the
// second snapshot write does so on every run.
//
// Points are registered at package init time with a one-line description;
// cmd/docgen renders the registered set into OPERATIONS.md, so the
// runbook's fault matrix cannot drift from the code.  See OPERATIONS.md
// §"Fault injection" for the operator-facing view.
package faults

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the default error returned by an armed "error" point.
// Sites propagate it like any real failure; tests match it with errors.Is.
var ErrInjected = errors.New("injected fault")

// Mode selects what an armed point does when it fires.
type Mode string

const (
	// ModeError makes Fire return an error (Spec.Err or ErrInjected).
	ModeError Mode = "error"
	// ModePanic makes Fire panic, exercising recovery paths.
	ModePanic Mode = "panic"
	// ModeDelay makes Fire sleep for Spec.Delay and return nil, stretching
	// a normally instant operation so tests can observe in-between states.
	ModeDelay Mode = "delay"
)

// Spec describes one armed injection.
type Spec struct {
	Mode  Mode
	Skip  int           // hits to pass through before the first firing
	Count int           // firings before the point disarms itself; <=0 = unlimited
	Delay time.Duration // sleep for ModeDelay
	Err   error         // returned by ModeError; nil = ErrInjected
}

// Point is one registered injection point.
type Point struct {
	Name string
	Desc string
}

// armed is the live state of one armed point.
type armed struct {
	spec  Spec
	hits  int // Fire calls seen since arming
	fired int // firings so far
}

var (
	armedCount atomic.Int32 // fast-path gate: 0 = nothing armed anywhere

	mu       sync.Mutex
	active   = map[string]*armed{}
	fired    = map[string]int64{}
	register = map[string]string{}
)

// Register declares an injection point; call it from the owning package's
// init so the registry (and the generated runbook) always reflects the
// binary.  Re-registering a name overwrites its description.
func Register(name, desc string) {
	mu.Lock()
	defer mu.Unlock()
	register[name] = desc
}

// List returns every registered point sorted by name.
func List() []Point {
	mu.Lock()
	defer mu.Unlock()
	out := make([]Point, 0, len(register))
	for name, desc := range register {
		out = append(out, Point{Name: name, Desc: desc})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Arm installs a spec on a point, replacing any previous one.  The point
// need not be registered — tests may arm ad-hoc names — but production
// specs should stick to registered points so the runbook stays truthful.
func Arm(name string, spec Spec) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := active[name]; !ok {
		armedCount.Add(1)
	}
	active[name] = &armed{spec: spec}
}

// Disarm removes a point's spec; unknown names are a no-op.
func Disarm(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := active[name]; ok {
		delete(active, name)
		armedCount.Add(-1)
	}
}

// Reset disarms every point and zeroes the fired counters; tests call it
// in cleanup so armed faults never leak across cases.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armedCount.Add(int32(-len(active)))
	active = map[string]*armed{}
	fired = map[string]int64{}
}

// Armed returns how many points currently carry a spec.
func Armed() int { return int(armedCount.Load()) }

// Fired returns how many times the named point has fired since the last
// Reset.
func Fired(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	return fired[name]
}

// FiredTotal returns the total firings across all points since Reset.
func FiredTotal() int64 {
	mu.Lock()
	defer mu.Unlock()
	var n int64
	for _, v := range fired {
		n += v
	}
	return n
}

// Fire is the injection site call.  With nothing armed anywhere it costs
// one atomic load; with the named point armed it applies the spec: skip
// the first Skip hits, then fire Count times (error, panic, or delay),
// then disarm itself.
func Fire(name string) error {
	if armedCount.Load() == 0 {
		return nil
	}
	return fire(name)
}

// fire is the slow path, split out so Fire inlines.
func fire(name string) error {
	mu.Lock()
	a, ok := active[name]
	if !ok {
		mu.Unlock()
		return nil
	}
	a.hits++
	if a.hits <= a.spec.Skip {
		mu.Unlock()
		return nil
	}
	a.fired++
	fired[name]++
	spec := a.spec
	if spec.Count > 0 && a.fired >= spec.Count {
		delete(active, name)
		armedCount.Add(-1)
	}
	mu.Unlock()

	switch spec.Mode {
	case ModePanic:
		panic(fmt.Sprintf("faults: injected panic at %q", name))
	case ModeDelay:
		time.Sleep(spec.Delay)
		return nil
	default:
		if spec.Err != nil {
			return fmt.Errorf("%s: %w", name, spec.Err)
		}
		return fmt.Errorf("%s: %w", name, ErrInjected)
	}
}

// ArmString arms a comma-separated spec matrix, the format of the
// SUBGEMINID_FAULTS environment variable and the subgeminid -faults flag:
//
//	point=mode[:arg[:arg]] , ...
//
// where mode is error, panic, or delay and the optional colon-separated
// args are an integer count ("error:3" fires three times; default 1; 0 or
// "inf" = unlimited), a duration for delay ("delay:50ms:2"), and
// "skip=N" to pass the first N hits through ("error:1:skip=2" fires on
// the third hit only).  Examples:
//
//	store.write-snapshot=error:1
//	jobs.persist=error:2,sweep.worker=panic
//	store.reload=delay:250ms:inf
//
// It returns how many points were armed, or an error describing the first
// malformed entry (nothing is armed on error).
func ArmString(s string) (int, error) {
	type pending struct {
		name string
		spec Spec
	}
	var specs []pending
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, rest, ok := strings.Cut(item, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" || rest == "" {
			return 0, fmt.Errorf("faults: malformed spec %q (want point=mode[:args])", item)
		}
		parts := strings.Split(rest, ":")
		spec := Spec{Count: 1}
		switch Mode(parts[0]) {
		case ModeError:
			spec.Mode = ModeError
		case ModePanic:
			spec.Mode = ModePanic
		case ModeDelay:
			spec.Mode = ModeDelay
		default:
			return 0, fmt.Errorf("faults: spec %q: unknown mode %q (want error, panic, or delay)", item, parts[0])
		}
		for _, arg := range parts[1:] {
			switch {
			case arg == "inf":
				spec.Count = 0
			case strings.HasPrefix(arg, "skip="):
				n, err := strconv.Atoi(arg[len("skip="):])
				if err != nil || n < 0 {
					return 0, fmt.Errorf("faults: spec %q: bad skip %q", item, arg)
				}
				spec.Skip = n
			default:
				if n, err := strconv.Atoi(arg); err == nil {
					if n < 0 {
						return 0, fmt.Errorf("faults: spec %q: negative count", item)
					}
					spec.Count = n
					continue
				}
				d, err := time.ParseDuration(arg)
				if err != nil {
					return 0, fmt.Errorf("faults: spec %q: argument %q is neither a count, a duration, nor skip=N", item, arg)
				}
				spec.Delay = d
			}
		}
		if spec.Mode == ModeDelay && spec.Delay <= 0 {
			return 0, fmt.Errorf("faults: spec %q: delay mode needs a duration (delay:50ms)", item)
		}
		specs = append(specs, pending{name, spec})
	}
	for _, p := range specs {
		Arm(p.name, p.spec)
	}
	return len(specs), nil
}
