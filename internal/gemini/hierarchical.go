package gemini

import (
	"fmt"
	"sort"

	"subgemini/internal/netlist"
)

// CellReport is the comparison outcome for one .SUBCKT definition shared by
// the two netlists.
type CellReport struct {
	Name       string
	Isomorphic bool
	Reason     string
}

// HierReport is the outcome of a hierarchical netlist comparison.
type HierReport struct {
	// Cells holds per-subcircuit results, sorted by name.
	Cells []CellReport
	// OnlyInA and OnlyInB list subcircuit names defined in one netlist
	// only; these are reported, not compared (the flat top-level comparison
	// still covers their expanded contents).
	OnlyInA, OnlyInB []string
	// Top is the flat comparison of the fully expanded top-level circuits.
	Top *Result
}

// Isomorphic reports whether the designs match: the flattened tops are
// isomorphic and every shared subcircuit definition matches.
func (r *HierReport) Isomorphic() bool {
	if r.Top == nil || !r.Top.Isomorphic {
		return false
	}
	for _, c := range r.Cells {
		if !c.Isomorphic {
			return false
		}
	}
	return true
}

// Summary renders a short human-readable account.
func (r *HierReport) Summary() string {
	s := ""
	for _, c := range r.Cells {
		verdict := "ok"
		if !c.Isomorphic {
			verdict = "DIFFERS: " + c.Reason
		}
		s += fmt.Sprintf("subckt %-16s %s\n", c.Name, verdict)
	}
	for _, n := range r.OnlyInA {
		s += fmt.Sprintf("subckt %-16s only in first netlist\n", n)
	}
	for _, n := range r.OnlyInB {
		s += fmt.Sprintf("subckt %-16s only in second netlist\n", n)
	}
	if r.Top != nil {
		if r.Top.Isomorphic {
			s += "top level         ok\n"
		} else {
			s += "top level         DIFFERS: " + r.Top.Reason + "\n"
		}
	}
	return s
}

// CompareHierarchical compares two hierarchical netlists the way the paper's
// §I describes hierarchical matching: shared subcircuit definitions are
// compared cell-by-cell (with ports matched by name), which localizes a
// mismatch to the cell that causes it, and the expanded top levels are
// compared flat for overall equivalence.
func CompareHierarchical(a, b *netlist.File, opts Options) (*HierReport, error) {
	rep := &HierReport{}
	names := map[string]int{} // bit 0: in a, bit 1: in b
	for n := range a.Subckts {
		names[n] |= 1
	}
	for n := range b.Subckts {
		names[n] |= 2
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		switch names[n] {
		case 1:
			rep.OnlyInA = append(rep.OnlyInA, n)
		case 2:
			rep.OnlyInB = append(rep.OnlyInB, n)
		default:
			pa, err := a.Pattern(n)
			if err != nil {
				return nil, fmt.Errorf("gemini: first netlist, subckt %s: %w", n, err)
			}
			pb, err := b.Pattern(n)
			if err != nil {
				return nil, fmt.Errorf("gemini: second netlist, subckt %s: %w", n, err)
			}
			cellOpts := opts
			cellOpts.PortsByName = true // cell interfaces match by port name
			res, err := Compare(pa, pb, cellOpts)
			if err != nil {
				return nil, err
			}
			rep.Cells = append(rep.Cells, CellReport{Name: n, Isomorphic: res.Isomorphic, Reason: res.Reason})
		}
	}

	if len(a.Top) > 0 && len(b.Top) > 0 {
		ca, err := a.MainCircuit("a")
		if err != nil {
			return nil, err
		}
		cb, err := b.MainCircuit("b")
		if err != nil {
			return nil, err
		}
		res, err := Compare(ca, cb, opts)
		if err != nil {
			return nil, err
		}
		rep.Top = res
	}
	return rep, nil
}
