// Package gemini implements a Gemini-style graph-isomorphism checker for
// circuit graphs (Ebeling & Zajicek, "Validating VLSI Circuit Layout by
// Wirelist Comparison", the predecessor SubGemini builds on — paper refs
// [3,4]).  Two circuits are compared by iterative partition refinement: all
// vertices start with invariant labels (device type, net degree), labels are
// refined by the Fig. 3 relabeling function, and the partition census of the
// two graphs must stay identical.  When refinement stalls with ambiguous
// partitions (automorphisms), a vertex pair is individuated with a unique
// shared label and refinement resumes, backtracking if the guess fails.
//
// SubGemini uses this package in tests and in the extraction pipeline to
// prove that a rebuilt or round-tripped circuit is isomorphic to the
// original.
package gemini

import (
	"fmt"
	"sort"

	"subgemini/internal/graph"
	"subgemini/internal/label"
)

// Options configures a comparison.
type Options struct {
	// Globals lists special-signal nets matched by name.
	Globals []string
	// PortsByName also pre-matches equally named port nets, the usual mode
	// for wirelist comparison of two versions of one design.
	PortsByName bool
	// MaxGuessDepth bounds individuation recursion (0 = default 64).
	MaxGuessDepth int
	// Seed perturbs the unique-label stream.
	Seed uint64
}

func (o *Options) depth() int {
	if o.MaxGuessDepth <= 0 {
		return 64
	}
	return o.MaxGuessDepth
}

// Result reports the comparison outcome.  When Isomorphic is true, DevMap
// and NetMap give a witness mapping from circuit A onto circuit B; when
// false, Reason describes the first inconsistency found.
type Result struct {
	Isomorphic bool
	Reason     string
	DevMap     map[*graph.Device]*graph.Device
	NetMap     map[*graph.Net]*graph.Net
}

// Compare decides whether circuits a and b are isomorphic.
func Compare(a, b *graph.Circuit, opts Options) (*Result, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("gemini: nil circuit")
	}
	for _, g := range opts.Globals {
		a.MarkGlobal(g)
		b.MarkGlobal(g)
	}
	if a.NumDevices() != b.NumDevices() || a.NumNets() != b.NumNets() {
		return &Result{Reason: fmt.Sprintf("size mismatch: %d/%d devices, %d/%d nets",
			a.NumDevices(), b.NumDevices(), a.NumNets(), b.NumNets())}, nil
	}
	c := &comparer{
		a: label.NewSpace(a), b: label.NewSpace(b),
		opts: &opts,
		uniq: label.NewUniqueSource(opts.Seed),
	}
	c.la = make([]label.Value, c.a.Size())
	c.lb = make([]label.Value, c.b.Size())
	if reason := c.initLabels(); reason != "" {
		return &Result{Reason: reason}, nil
	}
	ok, reason := c.refineLoop(0)
	if !ok {
		return &Result{Reason: reason}, nil
	}
	return c.buildResult()
}

type comparer struct {
	a, b   *label.Space
	la, lb []label.Value
	opts   *Options
	uniq   *label.UniqueSource
}

// initLabels assigns the invariant labels and pre-matches globals (and
// optionally ports) by name.
func (c *comparer) initLabels() string {
	for _, d := range c.a.Circuit().Devices {
		c.la[c.a.DevVID(d)] = label.TypeLabel(d.Type)
	}
	for _, d := range c.b.Circuit().Devices {
		c.lb[c.b.DevVID(d)] = label.TypeLabel(d.Type)
	}
	byName := func(n *graph.Net) bool {
		return n.Global || (c.opts.PortsByName && n.Port)
	}
	for _, n := range c.a.Circuit().Nets {
		if byName(n) {
			c.la[c.a.NetVID(n)] = label.GlobalLabel(n.Name)
		} else {
			c.la[c.a.NetVID(n)] = label.DegreeLabel(n.Degree())
		}
	}
	for _, n := range c.b.Circuit().Nets {
		if byName(n) {
			other := c.a.Circuit().NetByName(n.Name)
			if other == nil || !byName(other) {
				return fmt.Sprintf("net %s is matched by name in B but has no counterpart in A", n.Name)
			}
			c.lb[c.b.NetVID(n)] = label.GlobalLabel(n.Name)
		} else {
			c.lb[c.b.NetVID(n)] = label.DegreeLabel(n.Degree())
		}
	}
	for _, n := range c.a.Circuit().Nets {
		if byName(n) && c.b.Circuit().NetByName(n.Name) == nil {
			return fmt.Sprintf("net %s is matched by name in A but has no counterpart in B", n.Name)
		}
	}
	return ""
}

// refineLoop relabels until the partitions are all singletons or stable,
// individuating on stalls.  It returns false with a reason when the two
// partition censuses diverge.
func (c *comparer) refineLoop(depth int) (bool, string) {
	maxRounds := c.a.Size() + 8
	var prevSig string
	for round := 0; round < maxRounds; round++ {
		if reason := c.census(); reason != "" {
			return false, reason
		}
		sig := c.signature()
		if sig == prevSig {
			break
		}
		prevSig = sig
		c.relabel()
	}
	if reason := c.census(); reason != "" {
		return false, reason
	}
	if c.allSingleton() {
		return true, ""
	}
	return c.individuate(depth)
}

// relabel applies one simultaneous Fig. 3 pass to both graphs: nets from
// device labels, then devices from the updated net labels.
func (c *comparer) relabel() {
	relabelNets := func(sp *label.Space, lab []label.Value) {
		out := make([]label.Value, len(lab))
		copy(out, lab)
		for _, n := range sp.Circuit().Nets {
			if n.Global || (c.opts.PortsByName && n.Port) {
				continue // name-matched nets keep fixed labels
			}
			v := sp.NetVID(n)
			acc := lab[v]
			for _, conn := range n.Conns {
				acc = label.Combine(acc, conn.Dev.Pins[conn.Pin].Class, lab[sp.DevVID(conn.Dev)])
			}
			out[v] = acc
		}
		copy(lab, out)
	}
	relabelDevs := func(sp *label.Space, lab []label.Value) {
		out := make([]label.Value, len(lab))
		copy(out, lab)
		for _, d := range sp.Circuit().Devices {
			v := sp.DevVID(d)
			acc := lab[v]
			for _, pin := range d.Pins {
				acc = label.Combine(acc, pin.Class, lab[sp.NetVID(pin.Net)])
			}
			out[v] = acc
		}
		copy(lab, out)
	}
	relabelNets(c.a, c.la)
	relabelNets(c.b, c.lb)
	relabelDevs(c.a, c.la)
	relabelDevs(c.b, c.lb)
}

// census verifies the two graphs have identical label multisets, split by
// vertex kind; a mismatch is a proof of non-isomorphism.
func (c *comparer) census() string {
	count := func(sp *label.Space, lab []label.Value, dev bool) map[label.Value]int {
		m := make(map[label.Value]int)
		for v := 0; v < sp.Size(); v++ {
			if sp.IsDevice(label.VID(v)) == dev {
				m[lab[v]]++
			}
		}
		return m
	}
	for _, dev := range []bool{true, false} {
		ca, cb := count(c.a, c.la, dev), count(c.b, c.lb, dev)
		for lab, n := range ca {
			if cb[lab] != n {
				kind := "net"
				if dev {
					kind = "device"
				}
				return fmt.Sprintf("%s partition census differs: a %s partition of size %d in A has size %d in B",
					kind, kind, n, cb[lab])
			}
		}
		if len(ca) != len(cb) {
			return "partition census differs in partition count"
		}
	}
	return ""
}

// signature canonically encodes A's partition structure for the stability
// check.
func (c *comparer) signature() string {
	ids := make(map[label.Value]int)
	sig := make([]byte, 0, c.a.Size()*2)
	for v := 0; v < c.a.Size(); v++ {
		id, ok := ids[c.la[v]]
		if !ok {
			id = len(ids)
			ids[c.la[v]] = id
		}
		sig = append(sig, byte(id), byte(id>>8))
	}
	return string(sig)
}

func (c *comparer) allSingleton() bool {
	seen := make(map[label.Value]bool, c.a.Size())
	for v := 0; v < c.a.Size(); v++ {
		if seen[c.la[v]] {
			return false
		}
		seen[c.la[v]] = true
	}
	return true
}

// individuate resolves automorphism ambiguity: choose the smallest
// non-singleton partition, pick its first vertex in A, and try pairing it
// with each same-label vertex of B (paper [4]; same role as SubGemini's
// Phase II guessing).
func (c *comparer) individuate(depth int) (bool, string) {
	if depth >= c.opts.depth() {
		return false, "individuation depth limit reached"
	}
	partsA := make(map[label.Value][]label.VID)
	for v := 0; v < c.a.Size(); v++ {
		partsA[c.la[v]] = append(partsA[c.la[v]], label.VID(v))
	}
	var pick label.Value
	best := 0
	for lab, vs := range partsA {
		if len(vs) > 1 && (best == 0 || len(vs) < best || (len(vs) == best && lab < pick)) {
			pick, best = lab, len(vs)
		}
	}
	av := partsA[pick][0]
	var bCands []label.VID
	for v := 0; v < c.b.Size(); v++ {
		if c.lb[v] == pick {
			bCands = append(bCands, label.VID(v))
		}
	}
	sort.Slice(bCands, func(i, j int) bool { return bCands[i] < bCands[j] })
	saveA := append([]label.Value(nil), c.la...)
	saveB := append([]label.Value(nil), c.lb...)
	var lastReason string
	for _, bv := range bCands {
		u := c.uniq.Next()
		c.la[av] = u
		c.lb[bv] = u
		ok, reason := c.refineLoop(depth + 1)
		if ok {
			return true, ""
		}
		lastReason = reason
		copy(c.la, saveA)
		copy(c.lb, saveB)
	}
	return false, "all individuations failed: " + lastReason
}

// buildResult converts singleton partitions into a witness mapping and
// verifies it edge-by-edge (labels are probabilistic; the verification makes
// the checker sound).
func (c *comparer) buildResult() (*Result, error) {
	byLabel := make(map[label.Value]label.VID, c.b.Size())
	for v := 0; v < c.b.Size(); v++ {
		byLabel[c.lb[v]] = label.VID(v)
	}
	res := &Result{
		Isomorphic: true,
		DevMap:     make(map[*graph.Device]*graph.Device),
		NetMap:     make(map[*graph.Net]*graph.Net),
	}
	for v := 0; v < c.a.Size(); v++ {
		bv, ok := byLabel[c.la[v]]
		if !ok || c.a.IsDevice(label.VID(v)) != c.b.IsDevice(bv) {
			return &Result{Reason: "witness construction failed (label collision)"}, nil
		}
		if c.a.IsDevice(label.VID(v)) {
			res.DevMap[c.a.Device(label.VID(v))] = c.b.Device(bv)
		} else {
			res.NetMap[c.a.Net(label.VID(v))] = c.b.Net(bv)
		}
	}
	if reason := verifyWitness(res); reason != "" {
		return &Result{Reason: reason}, nil
	}
	return res, nil
}

// verifyWitness checks the candidate isomorphism exactly.
func verifyWitness(res *Result) string {
	for ad, bd := range res.DevMap {
		if ad.Type != bd.Type || len(ad.Pins) != len(bd.Pins) {
			return fmt.Sprintf("device %s maps to %s of different type or arity", ad.Name, bd.Name)
		}
		aPins := make([]uint64, 0, len(ad.Pins))
		bPins := make([]uint64, 0, len(bd.Pins))
		for _, pin := range ad.Pins {
			img, ok := res.NetMap[pin.Net]
			if !ok {
				return fmt.Sprintf("net %s has no image", pin.Net.Name)
			}
			aPins = append(aPins, uint64(pin.Class)<<48|uint64(img.Index))
		}
		for _, pin := range bd.Pins {
			bPins = append(bPins, uint64(pin.Class)<<48|uint64(pin.Net.Index))
		}
		sort.Slice(aPins, func(i, j int) bool { return aPins[i] < aPins[j] })
		sort.Slice(bPins, func(i, j int) bool { return bPins[i] < bPins[j] })
		for i := range aPins {
			if aPins[i] != bPins[i] {
				return fmt.Sprintf("device %s connects differently than its image %s", ad.Name, bd.Name)
			}
		}
	}
	for an, bn := range res.NetMap {
		if an.Degree() != bn.Degree() {
			return fmt.Sprintf("net %s (degree %d) maps to %s (degree %d)", an.Name, an.Degree(), bn.Name, bn.Degree())
		}
		if an.Global != bn.Global || (an.Global && an.Name != bn.Name) {
			return fmt.Sprintf("net %s / %s disagree on global status", an.Name, bn.Name)
		}
	}
	return ""
}
