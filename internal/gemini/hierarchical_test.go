package gemini

import (
	"strings"
	"testing"

	"subgemini/internal/netlist"
)

const hierA = `
.GLOBAL VDD GND
.SUBCKT INVX A Y
MP Y A VDD pmos
MN Y A GND nmos
.ENDS
.SUBCKT NANDX A B Y
MP1 Y A VDD pmos
MP2 Y B VDD pmos
MN1 Y A n1 nmos
MN2 n1 B GND nmos
.ENDS
Xg1 a b w NANDX
Xg2 w y INVX
.END
`

// Same design, internal names and card order changed.
const hierB = `
.GLOBAL VDD GND
.SUBCKT NANDX A B Y
MN2 mid B GND nmos
MN1 Y A mid nmos
MP2 Y B VDD pmos
MP1 Y A VDD pmos
.ENDS
.SUBCKT INVX A Y
MN Y A GND nmos
MP Y A VDD pmos
.ENDS
Xu2 net1 out INVX
Xu1 in1 in2 net1 NANDX
.END
`

// NANDX broken: the pull-down stack order swapped so A drives the bottom
// transistor, which is a different circuit w.r.t. the named ports.
const hierC = `
.GLOBAL VDD GND
.SUBCKT NANDX A B Y
MP1 Y A VDD pmos
MP2 Y B VDD pmos
MN1 Y B n1 nmos
MN2 n1 A GND nmos
.ENDS
.SUBCKT INVX A Y
MP Y A VDD pmos
MN Y A GND nmos
.ENDS
Xg1 a b w NANDX
Xg2 w y INVX
.END
`

func parse(t *testing.T, src string) *netlist.File {
	t.Helper()
	f, err := netlist.ParseString(src, "h.sp")
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestHierarchicalEquivalent(t *testing.T) {
	rep, err := CompareHierarchical(parse(t, hierA), parse(t, hierB), Options{Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Isomorphic() {
		t.Fatalf("equivalent designs reported different:\n%s", rep.Summary())
	}
	if len(rep.Cells) != 2 {
		t.Errorf("%d cell reports, want 2", len(rep.Cells))
	}
	if !strings.Contains(rep.Summary(), "top level         ok") {
		t.Errorf("summary:\n%s", rep.Summary())
	}
}

// TestHierarchicalLocalizesError is the §I point: the mismatch is pinned to
// the NANDX cell, not just "the chips differ".
func TestHierarchicalLocalizesError(t *testing.T) {
	rep, err := CompareHierarchical(parse(t, hierA), parse(t, hierC), Options{Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Isomorphic() {
		t.Fatal("modified design reported equivalent")
	}
	var nand, inv *CellReport
	for i := range rep.Cells {
		switch rep.Cells[i].Name {
		case "NANDX":
			nand = &rep.Cells[i]
		case "INVX":
			inv = &rep.Cells[i]
		}
	}
	if nand == nil || nand.Isomorphic {
		t.Error("NANDX mismatch not localized")
	}
	if inv == nil || !inv.Isomorphic {
		t.Error("INVX wrongly implicated")
	}
	// The expanded top levels are still structurally isomorphic (the swap
	// is an automorphism of the flat graph once port names are ignored),
	// which is exactly why hierarchical comparison catches what a flat one
	// cannot.
	if rep.Top == nil || !rep.Top.Isomorphic {
		t.Error("flat top comparison expected to pass for this edit")
	}
}

func TestHierarchicalOneSidedCells(t *testing.T) {
	onlyA := `
.SUBCKT EXTRA X
MN1 X X GND nmos
.ENDS
` + hierA
	rep, err := CompareHierarchical(parse(t, onlyA), parse(t, hierB), Options{Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.OnlyInA) != 1 || rep.OnlyInA[0] != "EXTRA" {
		t.Errorf("OnlyInA = %v", rep.OnlyInA)
	}
	if !strings.Contains(rep.Summary(), "only in first netlist") {
		t.Errorf("summary:\n%s", rep.Summary())
	}
	// One-sided definitions do not make the comparison fail by themselves.
	if !rep.Isomorphic() {
		t.Errorf("one-sided unused cell failed the comparison:\n%s", rep.Summary())
	}
}
