package gemini

import (
	"math/rand"
	"testing"

	"subgemini/internal/gen"
	"subgemini/internal/graph"
)

var rails = []string{"VDD", "GND"}

func TestCompareIsomorphicShuffle(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		orig := gen.RandomLogic(40, 8, seed).C
		orig.MarkGlobal("VDD")
		orig.MarkGlobal("GND")
		perm := permuteCircuit(orig, seed*100)
		res, err := Compare(orig, perm, Options{Globals: rails})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Isomorphic {
			t.Fatalf("seed %d: shuffled copy reported non-isomorphic: %s", seed, res.Reason)
		}
		if len(res.DevMap) != orig.NumDevices() || len(res.NetMap) != orig.NumNets() {
			t.Errorf("seed %d: witness incomplete", seed)
		}
	}
}

func TestCompareDetectsEdits(t *testing.T) {
	orig := gen.RandomLogic(25, 6, 9).C
	orig.MarkGlobal("VDD")
	orig.MarkGlobal("GND")
	// Edit 1: change a device type.
	mod := permuteCircuit(orig, 5)
	mod.Devices[3].Type = flipType(mod.Devices[3].Type)
	res, err := Compare(orig, mod, Options{Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	if res.Isomorphic {
		t.Error("device-type edit not detected")
	}

	// Edit 2: rewire one pin to a different net.
	mod2 := permuteCircuit(orig, 6)
	d := mod2.Devices[1]
	old := d.Pins[0].Net
	var other *graph.Net
	for _, n := range mod2.Nets {
		if n != old && !n.Global {
			other = n
			break
		}
	}
	rewire(mod2, d, 0, other)
	if err := mod2.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err = Compare(orig, mod2, Options{Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	if res.Isomorphic {
		t.Error("rewired pin not detected")
	}

	// Edit 3: different sizes.
	small := gen.RandomLogic(24, 6, 9).C
	res, err = Compare(orig, small, Options{Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	if res.Isomorphic || res.Reason == "" {
		t.Error("size mismatch not reported")
	}
}

// TestCompareAutomorphic exercises individuation: a circuit of k identical
// disconnected-but-for-rails inverters is highly automorphic.
func TestCompareAutomorphic(t *testing.T) {
	build := func(prefix string) *graph.Circuit {
		c := graph.New(prefix)
		vdd, gnd := c.AddNet("VDD"), c.AddNet("GND")
		c.MarkGlobal("VDD")
		c.MarkGlobal("GND")
		cls := []graph.TermClass{graph.ClassDS, graph.ClassGate, graph.ClassDS}
		for i := 0; i < 6; i++ {
			in := c.AddNet(prefix + "in" + string(rune('a'+i)))
			out := c.AddNet(prefix + "out" + string(rune('a'+i)))
			c.MustAddDevice(prefix+"mp"+string(rune('a'+i)), "pmos", cls, []*graph.Net{out, in, vdd})
			c.MustAddDevice(prefix+"mn"+string(rune('a'+i)), "nmos", cls, []*graph.Net{out, in, gnd})
		}
		return c
	}
	res, err := Compare(build("x"), build("y"), Options{Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Isomorphic {
		t.Errorf("automorphic circuits reported different: %s", res.Reason)
	}
}

func TestComparePortsByName(t *testing.T) {
	build := func(swap bool) *graph.Circuit {
		c := graph.New("buf")
		vdd, gnd := c.AddNet("VDD"), c.AddNet("GND")
		c.MarkGlobal("VDD")
		c.MarkGlobal("GND")
		a, y, mid := c.AddNet("A"), c.AddNet("Y"), c.AddNet("mid")
		if err := c.MarkPort("A"); err != nil {
			t.Fatal(err)
		}
		if err := c.MarkPort("Y"); err != nil {
			t.Fatal(err)
		}
		cls := []graph.TermClass{graph.ClassDS, graph.ClassGate, graph.ClassDS}
		in, out := a, mid
		if swap {
			// Same structure but ports play swapped roles: A drives the
			// second stage instead of the first.
			in, out = y, mid
		}
		c.MustAddDevice("mp1", "pmos", cls, []*graph.Net{out, in, vdd})
		c.MustAddDevice("mn1", "nmos", cls, []*graph.Net{out, in, gnd})
		second := y
		if swap {
			second = a
		}
		c.MustAddDevice("mp2", "pmos", cls, []*graph.Net{second, mid, vdd})
		c.MustAddDevice("mn2", "nmos", cls, []*graph.Net{second, mid, gnd})
		return c
	}
	// Structurally the swapped circuit is isomorphic...
	res, err := Compare(build(false), build(true), Options{Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Isomorphic {
		t.Errorf("structural comparison failed: %s", res.Reason)
	}
	// ...but matching ports by name tells them apart.
	res, err = Compare(build(false), build(true), Options{Globals: rails, PortsByName: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Isomorphic {
		t.Error("port-name comparison missed the swapped roles")
	}
	// And identical circuits still match under PortsByName.
	res, err = Compare(build(false), build(false), Options{Globals: rails, PortsByName: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Isomorphic {
		t.Errorf("identical circuits with named ports failed: %s", res.Reason)
	}
}

func TestCompareNilCircuit(t *testing.T) {
	if _, err := Compare(nil, graph.New("x"), Options{}); err == nil {
		t.Error("nil circuit accepted")
	}
}

// permuteCircuit rebuilds c with randomized vertex order and renamed
// non-global nets and devices.
func permuteCircuit(c *graph.Circuit, seed int64) *graph.Circuit {
	rng := rand.New(rand.NewSource(seed))
	out := graph.New(c.Name + "_perm")
	rename := func(n *graph.Net) string {
		if n.Global {
			return n.Name
		}
		return "p_" + n.Name
	}
	for _, i := range rng.Perm(c.NumNets()) {
		n := c.Nets[i]
		nn := out.AddNet(rename(n))
		nn.Port = n.Port
		nn.Global = n.Global
	}
	for _, i := range rng.Perm(c.NumDevices()) {
		d := c.Devices[i]
		classes := make([]graph.TermClass, len(d.Pins))
		nets := make([]*graph.Net, len(d.Pins))
		for j, p := range d.Pins {
			classes[j] = p.Class
			nets[j] = out.AddNet(rename(p.Net))
		}
		out.MustAddDevice("p_"+d.Name, d.Type, classes, nets)
	}
	return out
}

func flipType(t string) string {
	if t == "nmos" {
		return "pmos"
	}
	return "nmos"
}

// rewire moves pin pi of device d onto net nn, fixing back-references.
func rewire(c *graph.Circuit, d *graph.Device, pi int, nn *graph.Net) {
	old := d.Pins[pi].Net
	for k, conn := range old.Conns {
		if conn.Dev == d && conn.Pin == pi {
			old.Conns = append(old.Conns[:k], old.Conns[k+1:]...)
			break
		}
	}
	d.Pins[pi].Net = nn
	nn.Conns = append(nn.Conns, graph.Conn{Dev: d, Pin: pi})
}
