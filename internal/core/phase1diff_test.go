package core_test

import (
	"testing"
	"testing/quick"

	"subgemini/internal/core"
	"subgemini/internal/gen"
	"subgemini/internal/label"
	"subgemini/internal/stdcell"
)

// This file holds the differential test between the three Phase I engine
// configurations: the legacy pointer-walking engine, the data-oriented CSR
// engine run sequentially, and the CSR engine with striped main-graph
// passes.  All three must produce the identical key vertex, candidate
// vector, Report partition counters, and instance set on arbitrary random
// circuits — the bit-identical contract Options.LegacyPhase1 exists to
// check.

type p1DiffResult struct {
	key    label.VID
	cv     []label.VID
	passes int
	pruned int
	abort  bool
	insts  map[string]bool
}

// runEngine generates the deterministic random design for seed, runs
// Phase I alone (for the key/CV/counters), then a full Find (for the
// instance set), under one engine configuration.
func runEngine(t *testing.T, seed int64, gates int, cell *stdcell.CellDef, opts core.Options) p1DiffResult {
	t.Helper()
	d := gen.RandomLogic(gates, 6, seed)
	m, err := core.NewMatcher(d.C, opts)
	if err != nil {
		t.Fatalf("NewMatcher: %v", err)
	}
	key, cv, rep, err := core.RunPhase1ForTest(m, cell.Pattern())
	if err != nil {
		t.Fatalf("phase1: %v", err)
	}
	res, err := m.Find(cell.Pattern())
	if err != nil {
		t.Fatalf("Find: %v", err)
	}
	insts := make(map[string]bool, len(res.Instances))
	for _, in := range res.Instances {
		insts[in.String()] = true
	}
	return p1DiffResult{key: key, cv: cv, passes: rep.Phase1Passes,
		pruned: rep.Phase1Pruned, abort: rep.EarlyAbort, insts: insts}
}

func diffEqual(a, b p1DiffResult) bool {
	if a.key != b.key || a.passes != b.passes || a.pruned != b.pruned ||
		a.abort != b.abort || len(a.cv) != len(b.cv) || len(a.insts) != len(b.insts) {
		return false
	}
	for i := range a.cv {
		if a.cv[i] != b.cv[i] {
			return false
		}
	}
	for sig := range a.insts {
		if !b.insts[sig] {
			return false
		}
	}
	return true
}

// TestPhase1Differential asserts the three engine configurations agree on
// random circuits.  The striping grain is forced to 1 so the parallel code
// paths run even on test-sized worklists.
func TestPhase1Differential(t *testing.T) {
	defer core.SetP1Grain(1)()

	cells := []*stdcell.CellDef{stdcell.INV, stdcell.NAND2, stdcell.FA, stdcell.DFF}
	prop := func(seed int64, gRaw, pick uint8) bool {
		gates := 10 + int(gRaw%40)
		cell := cells[int(pick)%len(cells)]

		want := runEngine(t, seed, gates, cell, core.Options{Globals: rails, LegacyPhase1: true})
		for name, opts := range map[string]core.Options{
			"csr-seq":  {Globals: rails},
			"csr-par4": {Globals: rails, Workers: 4},
			"csr-par7": {Globals: rails, Workers: 7},
		} {
			got := runEngine(t, seed, gates, cell, opts)
			if !diffEqual(want, got) {
				t.Logf("seed=%d gates=%d cell=%s: legacy(key=%d |cv|=%d passes=%d pruned=%d abort=%v insts=%d) vs %s(key=%d |cv|=%d passes=%d pruned=%d abort=%v insts=%d)",
					seed, gates, cell.Name,
					want.key, len(want.cv), want.passes, want.pruned, want.abort, len(want.insts),
					name, got.key, len(got.cv), got.passes, got.pruned, got.abort, len(got.insts))
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestPhase1DifferentialBind covers the pre-matched paths (globals plus a
// bound port) where main-graph vertices start out fixed and must stay off
// the worklists.
func TestPhase1DifferentialBind(t *testing.T) {
	defer core.SetP1Grain(1)()

	target := gen.RandomLogic(30, 5, 7).C.Nets[10].Name
	mk := func(opts core.Options) *core.Result {
		opts.Globals = rails
		opts.Bind = map[string]string{"A": target}
		res, err := core.Find(gen.RandomLogic(30, 5, 7).C, stdcell.INV.Pattern(), opts)
		if err != nil {
			t.Fatalf("Find: %v", err)
		}
		return res
	}
	want := mk(core.Options{LegacyPhase1: true})
	for name, opts := range map[string]core.Options{
		"csr-seq":  {},
		"csr-par3": {Workers: 3},
	} {
		got := mk(opts)
		if got.Report.Phase1Passes != want.Report.Phase1Passes ||
			got.Report.Phase1Pruned != want.Report.Phase1Pruned ||
			got.Report.CVSize != want.Report.CVSize ||
			got.Report.KeyVertex != want.Report.KeyVertex ||
			len(got.Instances) != len(want.Instances) {
			t.Errorf("%s: %s vs legacy %s", name, got.Report.String(), want.Report.String())
		}
	}
}
