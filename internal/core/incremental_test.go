package core_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"subgemini/internal/core"
	"subgemini/internal/delta"
	"subgemini/internal/gen"
	"subgemini/internal/graph"
	"subgemini/internal/stdcell"
)

// This file holds the differential test between the incremental matcher and
// the full matcher: after every randomized edit script, "edit then
// FindIncremental with the carried-forward capture" must produce the
// bit-identical instance list — same instances, same order — as "edit then
// run the LegacyIncremental oracle from scratch".  The contract holds for
// every worker count, for the region-replay path and the degradation path
// (forced via SetIncReplayCap), and across chained captures (the state a
// replay run produces feeds the next round).

// editCounter hands out process-unique suffixes for generated names.
type editCounter struct{ n int }

func (ec *editCounter) next() int { ec.n++; return ec.n }

// randomOp proposes one edit op valid against the current state of c, or
// ok=false when the roll found no applicable target.
func randomOp(rng *rand.Rand, c *graph.Circuit, ec *editCounter) (delta.Op, bool) {
	randNet := func() *graph.Net { return c.Nets[rng.Intn(len(c.Nets))] }
	switch rng.Intn(10) {
	case 0, 1, 2, 3: // rewire a random pin, sometimes onto a fresh net or a rail
		d := c.Devices[rng.Intn(len(c.Devices))]
		var target string
		switch rng.Intn(4) {
		case 0:
			target = fmt.Sprintf("xn%d", ec.next())
		default:
			target = randNet().Name
		}
		return delta.Op{Op: delta.OpRewirePin, Device: d.Name, Pin: rng.Intn(len(d.Pins)), Net: target}, true
	case 4, 5: // clone an existing device's shape onto random nets
		tmpl := c.Devices[rng.Intn(len(c.Devices))]
		classes := make([]int, len(tmpl.Pins))
		nets := make([]string, len(tmpl.Pins))
		for i, p := range tmpl.Pins {
			classes[i] = int(p.Class)
			if rng.Intn(5) == 0 {
				nets[i] = fmt.Sprintf("xn%d", ec.next())
			} else {
				nets[i] = randNet().Name
			}
		}
		return delta.Op{Op: delta.OpAddDevice, Name: fmt.Sprintf("xd%d", ec.next()),
			Type: tmpl.Type, Classes: classes, Nets: nets}, true
	case 6, 7: // remove a random device (keep the circuit non-trivial)
		if len(c.Devices) <= 8 {
			return delta.Op{}, false
		}
		d := c.Devices[rng.Intn(len(c.Devices))]
		return delta.Op{Op: delta.OpRemoveDevice, Name: d.Name}, true
	case 8: // rename a random non-global net
		n := randNet()
		if n.Global {
			return delta.Op{}, false
		}
		return delta.Op{Op: delta.OpRenameNet, Old: n.Name, New: fmt.Sprintf("xr%d", ec.next())}, true
	default: // add a floating net
		return delta.Op{Op: delta.OpAddNet, Name: fmt.Sprintf("xa%d", ec.next())}, true
	}
}

// randomBatch builds a 1-3 op batch, validating each op sequentially
// against a probe clone so the batch as a whole applies cleanly.
func randomBatch(rng *rand.Rand, c *graph.Circuit, ec *editCounter, version uint64) []delta.Op {
	probe := c.Clone()
	var ops []delta.Op
	want := 1 + rng.Intn(3)
	for attempts := 0; len(ops) < want && attempts < 20; attempts++ {
		op, ok := randomOp(rng, probe, ec)
		if !ok {
			continue
		}
		if _, err := delta.Apply(probe, version, []delta.Op{op}); err != nil {
			continue
		}
		ops = append(ops, op)
	}
	return ops
}

func instStrings(res *core.Result) []string {
	out := make([]string, len(res.Instances))
	for i, in := range res.Instances {
		out[i] = in.String()
	}
	return out
}

func sameInstances(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runIncDiff drives the differential property under the current replay cap
// and returns how many candidates were replayed from captures in total.
func runIncDiff(t *testing.T, maxCount int) (replayedTotal int) {
	t.Helper()
	defer core.SetP1Grain(1)()

	cells := []*stdcell.CellDef{stdcell.INV, stdcell.NAND2, stdcell.FA}
	prop := func(seed int64, pick, wRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var d *gen.Design
		switch rng.Intn(3) {
		case 0:
			d = gen.InverterChain(40 + rng.Intn(40))
		case 1:
			d = gen.NandMesh(4+rng.Intn(3), 6)
		default:
			d = gen.RandomLogic(30+rng.Intn(30), 6, seed)
		}
		c := d.C
		cell := cells[int(pick)%len(cells)]
		workers := []int{1, 4}[int(wRaw)%2]
		opts := core.Options{Globals: rails, Workers: workers, Seed: uint64(seed)}
		oracleOpts := opts
		oracleOpts.LegacyIncremental = true

		oracle := func() []string {
			om, err := core.NewMatcher(c, oracleOpts)
			if err != nil {
				t.Fatalf("oracle NewMatcher: %v", err)
			}
			res, st, err := om.FindIncremental(cell.Pattern(), nil, nil)
			if err != nil {
				t.Fatalf("oracle FindIncremental: %v", err)
			}
			if st != nil {
				t.Fatalf("oracle returned a capture")
			}
			if res.Report.IncrementalMode != "legacy" {
				t.Fatalf("oracle mode = %q", res.Report.IncrementalMode)
			}
			return instStrings(res)
		}

		// Version 0: first run captures.
		m0, err := core.NewMatcher(c, opts)
		if err != nil {
			t.Fatalf("NewMatcher: %v", err)
		}
		res, state, err := m0.FindIncremental(cell.Pattern(), nil, nil)
		if err != nil {
			t.Fatalf("FindIncremental: %v", err)
		}
		if res.Report.IncrementalMode != "full" {
			t.Errorf("first run mode = %q, want full", res.Report.IncrementalMode)
			return false
		}
		if !sameInstances(instStrings(res), oracle()) {
			t.Logf("seed=%d cell=%s w=%d: initial run diverged", seed, cell.Name, workers)
			return false
		}

		ec := &editCounter{}
		version := uint64(1)
		var steps []*delta.Step
		for round := 0; round < 4; round++ {
			// One or (30% of rounds) two batches before re-matching, so
			// Compose sees multi-step runs.
			batches := 1
			if rng.Intn(10) < 3 {
				batches = 2
			}
			for b := 0; b < batches; b++ {
				ops := randomBatch(rng, c, ec, version)
				if len(ops) == 0 {
					continue
				}
				st, err := delta.Apply(c, version, ops)
				if err != nil {
					t.Fatalf("Apply (validated batch): %v", err)
				}
				steps = append(steps, st)
				version++
			}
			if len(steps) == 0 {
				continue
			}
			ds, err := delta.Compose(steps)
			if err != nil {
				t.Fatalf("Compose: %v", err)
			}
			steps = steps[:0]

			im, err := core.NewMatcher(c, opts)
			if err != nil {
				t.Fatalf("NewMatcher (edited): %v", err)
			}
			ires, istate, err := im.FindIncremental(cell.Pattern(), state, ds)
			if err != nil {
				t.Fatalf("FindIncremental (edited): %v", err)
			}
			if istate == nil {
				t.Fatalf("incremental run returned no capture")
			}
			replayedTotal += ires.Report.Replayed
			if !sameInstances(instStrings(ires), oracle()) {
				t.Logf("seed=%d cell=%s w=%d round=%d mode=%s: %v vs oracle %v",
					seed, cell.Name, workers, round,
					ires.Report.IncrementalMode, instStrings(ires), oracle())
				return false
			}
			state = istate
		}
		return true
	}
	// Fixed source: the replay/recompute split is part of what the subtests
	// assert on, so the property inputs must reproduce across runs.
	cfg := &quick.Config{MaxCount: maxCount, Rand: rand.New(rand.NewSource(20260808))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
	return replayedTotal
}

// TestIncrementalDifferential asserts "edit then incremental re-match" is
// bit-identical (instances and order) to "edit then full re-match" across
// randomized edit scripts, worker counts, and both incremental paths.
func TestIncrementalDifferential(t *testing.T) {
	t.Run("region", func(t *testing.T) {
		// Cap 1.0: the region replay path runs whenever compatible.
		defer core.SetIncReplayCap(1.0)()
		if replayed := runIncDiff(t, 12); !t.Failed() && replayed == 0 {
			t.Error("region path never replayed a candidate")
		}
	})
	t.Run("degraded", func(t *testing.T) {
		// Cap 0: every replay degrades to full Phase I, exercising Phase II
		// outcome replay on top of a fresh labeling.
		defer core.SetIncReplayCap(0)()
		if replayed := runIncDiff(t, 8); !t.Failed() && replayed == 0 {
			t.Error("degraded path never replayed a candidate")
		}
	})
}

// TestIncrementalFallbacks pins the compatibility rules: a touched pattern
// global or bind target forces the full-capture path, and incompatible
// options force the legacy path with no capture.
func TestIncrementalFallbacks(t *testing.T) {
	d := gen.InverterChain(20)
	opts := core.Options{Globals: rails}

	m0, err := core.NewMatcher(d.C, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, state, err := m0.FindIncremental(stdcell.INV.Pattern(), nil, nil)
	if err != nil || state == nil {
		t.Fatalf("seed run: state=%v err=%v", state, err)
	}

	// An edit whose Touched names a pattern global must fall back to full.
	ds := &core.DirtySet{
		DevOld2New: identity(d.C.NumDevices()),
		NetOld2New: identity(d.C.NumNets()),
		Touched:    []string{"VDD"},
	}
	m1, err := core.NewMatcher(d.C, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := m1.FindIncremental(stdcell.INV.Pattern(), state, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.IncrementalMode != "full" {
		t.Errorf("touched global: mode = %q, want full", res.Report.IncrementalMode)
	}

	// A benign dirty set replays.
	ds.Touched = nil
	ds.DirtyDevs = []int32{0}
	defer core.SetIncReplayCap(1.0)()
	m2, err := core.NewMatcher(d.C, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, state2, err := m2.FindIncremental(stdcell.INV.Pattern(), state, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.IncrementalMode != "replay" {
		t.Errorf("benign edit: mode = %q, want replay", res.Report.IncrementalMode)
	}
	if state2 == nil || res.Report.Replayed == 0 {
		t.Errorf("benign edit: state=%v replayed=%d", state2, res.Report.Replayed)
	}

	// Incompatible options go legacy and capture nothing.
	legacy := opts
	legacy.Policy = core.NonOverlapping
	m3, err := core.NewMatcher(d.C, legacy)
	if err != nil {
		t.Fatal(err)
	}
	res, state3, err := m3.FindIncremental(stdcell.INV.Pattern(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.IncrementalMode != "legacy" || state3 != nil {
		t.Errorf("NonOverlapping: mode=%q state=%v", res.Report.IncrementalMode, state3)
	}
}

func identity(n int) []int32 {
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	return ids
}
