package core_test

import (
	"testing"

	"subgemini/internal/baseline"
	"subgemini/internal/core"
	"subgemini/internal/gen"
	"subgemini/internal/stdcell"
)

var rails = []string{"VDD", "GND"}

// patternsUnderTest are matched against every generated design.  Composite
// cells (BUF, AND2, OR2, HA) are excluded because combinations of prime
// gates can form them accidentally — an XOR2 and an AND2 sharing their
// inputs *are* a half adder — which the placed-cell census cannot predict.
var patternsUnderTest = []*stdcell.CellDef{
	stdcell.INV, stdcell.NAND2, stdcell.NAND3, stdcell.NAND4,
	stdcell.NOR2, stdcell.NOR3, stdcell.NOR4,
	stdcell.AOI21, stdcell.OAI21, stdcell.AOI22, stdcell.OAI22,
	stdcell.XOR2, stdcell.XNOR2, stdcell.MUX2, stdcell.TINV,
	stdcell.LATCH, stdcell.DFF, stdcell.SRAM6T, stdcell.FA,
}

// TestAccidentalHalfAdder pins the composite-cell effect down: the ALU
// slice places an XOR2 and an AND2 on the same inputs, which together form
// a structural HA instance per slice even though no HA was placed.
func TestAccidentalHalfAdder(t *testing.T) {
	d := gen.ALUDatapath(3)
	res, err := core.Find(d.C, stdcell.HA.Pattern(), core.Options{Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 3 {
		t.Errorf("found %d accidental half adders, want 3 (one per slice)", len(res.Instances))
	}
}

// TestCoreMatchesCensus verifies that SubGemini's instance counts equal the
// exact expected counts derived from the generator's placed-cell census and
// the baseline-computed containment table.
func TestCoreMatchesCensus(t *testing.T) {
	designs := []*gen.Design{
		gen.InverterChain(12),
		gen.RippleAdder(4),
		gen.ArrayMultiplier(3),
		gen.RippleCounter(4),
		gen.ShiftRegister(5),
		gen.SRAMArray(3, 4),
		gen.ALUDatapath(2),
		gen.RandomLogic(40, 8, 1),
		gen.RandomLogic(40, 8, 2),
	}
	for _, d := range designs {
		if err := d.C.Validate(); err != nil {
			t.Fatalf("%s: invalid generated circuit: %v", d.C.Name, err)
		}
		for _, pat := range patternsUnderTest {
			res, err := core.Find(d.C.Clone(), pat.Pattern(), core.Options{Globals: rails})
			if err != nil {
				t.Fatalf("%s in %s: %v", pat.Name, d.C.Name, err)
			}
			want := d.Expected(pat)
			if got := len(res.Instances); got != want {
				t.Errorf("%s in %s: core found %d instances, census expects %d (report: %s)",
					pat.Name, d.C.Name, got, want, res.Report.String())
			}
		}
	}
}

// TestCoreMatchesBaseline cross-checks SubGemini against the exhaustive DFS
// matcher instance-for-instance on small designs: both must report the same
// image device sets.
func TestCoreMatchesBaseline(t *testing.T) {
	designs := []*gen.Design{
		gen.InverterChain(6),
		gen.RippleAdder(2),
		gen.RippleCounter(2),
		gen.SRAMArray(2, 2),
		gen.RandomLogic(25, 6, 7),
	}
	for _, d := range designs {
		for _, pat := range patternsUnderTest {
			gc := d.C.Clone()
			coreRes, err := core.Find(gc, pat.Pattern(), core.Options{Globals: rails})
			if err != nil {
				t.Fatalf("core: %s in %s: %v", pat.Name, d.C.Name, err)
			}
			baseRes, err := baseline.Find(gc, pat.Pattern(), baseline.Options{Globals: rails})
			if err != nil {
				t.Fatalf("baseline: %s in %s: %v", pat.Name, d.C.Name, err)
			}
			coreSets := instanceSets(coreRes.Instances)
			baseSets := instanceSets(baseRes.Instances)
			if len(coreSets) != len(baseSets) {
				t.Errorf("%s in %s: core found %d instances, baseline %d",
					pat.Name, d.C.Name, len(coreSets), len(baseSets))
				continue
			}
			for sig := range baseSets {
				if !coreSets[sig] {
					t.Errorf("%s in %s: baseline instance %q missing from core results", pat.Name, d.C.Name, sig)
				}
			}
		}
	}
}

func instanceSets(instances []*core.Instance) map[string]bool {
	sets := make(map[string]bool, len(instances))
	for _, inst := range instances {
		key := ""
		for _, d := range inst.Devices() {
			key += d.Name + "|"
		}
		sets[key] = true
	}
	return sets
}

// TestContainmentTable pins the containment facts the documentation cites,
// which double as a regression test of the baseline matcher on every
// library cell.
func TestContainmentTable(t *testing.T) {
	cases := []struct {
		pattern, cell *stdcell.CellDef
		want          int
	}{
		{stdcell.INV, stdcell.INV, 1},
		{stdcell.INV, stdcell.BUF, 2},
		{stdcell.INV, stdcell.NAND2, 0}, // Fig. 7 with special signals
		{stdcell.INV, stdcell.XOR2, 2},  // the two input inverters
		{stdcell.INV, stdcell.FA, 2},    // the two output inverters
		{stdcell.INV, stdcell.DFF, 5},
		{stdcell.INV, stdcell.LATCH, 3},
		{stdcell.INV, stdcell.SRAM6T, 2}, // the cross-coupled pair
		{stdcell.INV, stdcell.MUX2, 1},
		{stdcell.NAND2, stdcell.AND2, 1},
		{stdcell.NAND2, stdcell.NAND3, 0}, // series stacks differ
		{stdcell.NOR2, stdcell.OR2, 1},
		{stdcell.NOR2, stdcell.NOR3, 0},
		{stdcell.MUX2, stdcell.LATCH, 1}, // input/feedback TG pair + enable inverter
		{stdcell.MUX2, stdcell.DFF, 0},   // ckb degree differs from the MUX2 internal node
		{stdcell.LATCH, stdcell.DFF, 0},  // likewise
		{stdcell.DFF, stdcell.DFF, 1},
		{stdcell.FA, stdcell.FA, 1},
	}
	for _, tc := range cases {
		if got := gen.Containment(tc.pattern, tc.cell); got != tc.want {
			t.Errorf("Containment(%s, %s) = %d, want %d", tc.pattern.Name, tc.cell.Name, got, tc.want)
		}
	}
}
