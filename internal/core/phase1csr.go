package core

import (
	"sync"
	"sync/atomic"

	"subgemini/internal/csr"
	"subgemini/internal/label"
)

// This file implements the data-oriented Phase I engine: relabeling and
// consistency passes over flat CSR views driven by compact active-vertex
// worklists, with the main-graph side optionally striped across
// Options.Workers goroutines.
//
// Determinism argument.  The relabeling function is a sum of per-edge
// products over wrapping uint64 arithmetic, so it commutes: the result does
// not depend on edge order, and equals the pointer walk's fold through
// label.Combine bit for bit.  The graph is bipartite (devices connect only
// to nets and vice versa), so a net pass reads only device labels plus the
// net's own old label — writing the new label in place cannot be observed
// by any other vertex of the pass, which removes the legacy engine's
// double-buffer commit and makes concurrent writers race-free: each striped
// goroutine writes only its own chunk's vertices and reads only labels no
// goroutine writes this pass.  Consistency pruning is per-vertex (a pure
// function of the vertex label and the shared pattern counts); striped
// chunks are contiguous slices of the worklist merged back in chunk order,
// so the surviving list, the partition counts, and the prune decisions are
// identical to the sequential engine's for every worker count.

// p1Grain is the minimum worklist slice handed to one goroutine; shorter
// lists run sequentially because the barrier would cost more than the work.
// It is a variable so the differential test can force striping on small
// circuits.
var p1Grain = 2048

// p1CancelBlock is how many worklist vertices one goroutine relabels
// between cancellation checks when Options.Cancel is set.  It is a
// variable so tests can force in-pass polling on small circuits.
var p1CancelBlock = 4096

// initCSR builds the flat views and the initial worklists.  The main-graph
// view is cached on the Matcher (structure never changes); the pattern view
// is rebuilt per run but is pattern-sized.
func (p *phase1) initCSR() {
	p.sCSR = csr.New(p.pat.s)
	p.gCSR = p.m.csrView()
	snd, sn := p.sSpace.NumDevices(), p.sSpace.Size()
	gnd, gn := p.gSpace.NumDevices(), p.gSpace.Size()
	// Each worklist pair shares one backing block, split at the device/net
	// boundary; compaction slides survivors down within its own segment.
	sBuf := make([]int32, sn)
	p.sActDev, p.sActNet = sBuf[:0:snd], sBuf[snd:snd:sn]
	gBuf := make([]int32, gn)
	p.gActDev, p.gActNet = gBuf[:0:gnd], gBuf[gnd:gnd:gn]
	for v := 0; v < snd; v++ {
		if p.sState[v] == p1Valid {
			p.sActDev = append(p.sActDev, int32(v))
		}
	}
	for v := snd; v < sn; v++ {
		if p.sState[v] == p1Valid {
			p.sActNet = append(p.sActNet, int32(v))
		}
	}
	for v := 0; v < gnd; v++ {
		if p.gState[v] == g1Active {
			p.gActDev = append(p.gActDev, int32(v))
		}
	}
	for v := gnd; v < gn; v++ {
		if p.gState[v] == g1Active {
			p.gActNet = append(p.gActNet, int32(v))
		}
	}
}

// chunkCount returns how many goroutines a worklist of length n is worth.
func (p *phase1) chunkCount(n int) int {
	w := p.workers
	if maxW := (n + p1Grain - 1) / p1Grain; w > maxW {
		w = maxW
	}
	if w < 1 {
		w = 1
	}
	return w
}

// relabelBatch relabels every worklist vertex in place over the flat
// arrays.  Hoisting the CSR fields into locals keeps the inner loop free
// of pointer loads; this is the hottest loop of Phase I.
func relabelBatch(g *csr.Graph, act []int32, lab []label.Value) {
	start, adj, mul := g.Start, g.Adj, g.Mul
	for _, v := range act {
		acc := lab[v]
		for e := start[v]; e < start[v+1]; e++ {
			acc += label.Value(mul[e] * uint64(lab[adj[e]]))
		}
		lab[v] = acc
	}
}

// relabelBatchBlocks relabels act in p1CancelBlock-sized blocks, calling
// stop between blocks and abandoning the rest of the slice when it returns
// true.  An abandoned pass leaves labels half-updated, which is fine: the
// only caller of a stopped pass is a cancelled run, whose labels are never
// read again.
func relabelBatchBlocks(g *csr.Graph, act []int32, lab []label.Value, stop func() bool) {
	for len(act) > 0 {
		n := len(act)
		if n > p1CancelBlock {
			n = p1CancelBlock
		}
		relabelBatch(g, act[:n], lab)
		act = act[n:]
		if len(act) > 0 && stop() {
			return
		}
	}
}

// pollCancel polls Options.Cancel, latching the first error in p.cancelErr.
// Only one goroutine per pass calls it (the coordinator); striped workers
// watch the shared stop flag instead, so a user hook written for the
// sequential engine is never invoked concurrently by Phase I itself.
func (p *phase1) pollCancel() bool {
	if p.cancelErr != nil {
		return true
	}
	if err := p.m.opts.cancelled(); err != nil {
		p.cancelErr = err
		return true
	}
	return false
}

// relabelCSR runs one relabeling pass: the pattern worklist sequentially
// (pattern graphs are tiny), the main-graph worklist striped when large
// enough.  Labels are written in place; see the determinism argument above.
// With Options.Cancel set, the pass polls between p1CancelBlock-sized
// blocks so a deadline holds mid-pass on huge worklists; cancellation never
// changes the labels a completed pass produces, so determinism is intact.
func (p *phase1) relabelCSR(sAct, gAct []int32) {
	relabelBatch(p.sCSR, sAct, p.sLab)
	n := len(gAct)
	chunks := p.chunkCount(n)
	if chunks == 1 {
		if p.m.opts.Cancel == nil {
			relabelBatch(p.gCSR, gAct, p.gLab)
		} else {
			relabelBatchBlocks(p.gCSR, gAct, p.gLab, p.pollCancel)
		}
		return
	}
	var wg sync.WaitGroup
	var stop atomic.Bool
	for k := 1; k < chunks; k++ {
		lo, hi := k*n/chunks, (k+1)*n/chunks
		wg.Add(1)
		go func(part []int32) {
			defer wg.Done()
			if p.m.opts.Cancel == nil {
				relabelBatch(p.gCSR, part, p.gLab)
			} else {
				relabelBatchBlocks(p.gCSR, part, p.gLab, stop.Load)
			}
		}(gAct[lo:hi])
	}
	if p.m.opts.Cancel == nil {
		relabelBatch(p.gCSR, gAct[:n/chunks], p.gLab)
	} else {
		// Chunk 0 runs on the calling goroutine and is the only poller of
		// the user hook; a latched error raises the workers' stop flag.
		relabelBatchBlocks(p.gCSR, gAct[:n/chunks], p.gLab, func() bool {
			if p.pollCancel() {
				stop.Store(true)
				return true
			}
			return false
		})
		if p.cancelErr != nil {
			stop.Store(true)
		}
	}
	wg.Wait()
}

// corruptCSR marks the worklist's pattern vertices corrupt when any
// neighbor is corrupt, and returns the compacted worklist of survivors.
func (p *phase1) corruptCSR(act []int32) []int32 {
	kept := act[:0]
	for _, v := range act {
		corrupt := false
		for e := p.sCSR.Start[v]; e < p.sCSR.Start[v+1]; e++ {
			if p.sState[p.sCSR.Adj[e]] == p1Corrupt {
				corrupt = true
				break
			}
		}
		if corrupt {
			p.sState[v] = p1Corrupt
		} else {
			kept = append(kept, v)
		}
	}
	return kept
}

// sortLabels is countDistinct's allocation-free shell sort, shared with
// the consistency-run builder.
func sortLabels(labs []label.Value) {
	for gap := len(labs) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(labs); i++ {
			v := labs[i]
			j := i
			for j >= gap && v < labs[j-gap] {
				labs[j] = labs[j-gap]
				j -= gap
			}
			labs[j] = v
		}
	}
}

// lookupLabel returns the index of x in the sorted keys, or -1.  Pattern
// partitions number in the tens at most, so binary search over a flat
// array beats hashing every active main-graph vertex through a map.
func lookupLabel(keys []label.Value, x label.Value) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(keys) && keys[lo] == x {
		return lo
	}
	return -1
}

// consistencyCSR is the worklist form of the legacy consistency check:
// count valid pattern labels, prune main-graph vertices whose label matches
// no pattern partition (compacting the worklist so they never cost again),
// and fail when a main-graph partition is smaller than its pattern twin.
// The pattern partitions live in sorted key/count arrays (sKeys/sCnt)
// instead of maps, so the per-vertex hot path does no hashing and the
// steady state allocates nothing.
func (p *phase1) consistencyCSR(devs bool) bool {
	sAct, gAct := p.sActNet, p.gActNet
	if devs {
		sAct, gAct = p.sActDev, p.gActDev
	}
	p.sKeys = p.sKeys[:0]
	for _, v := range sAct {
		p.sKeys = append(p.sKeys, p.sLab[v])
	}
	if len(p.sKeys) == 0 {
		// Nothing valid on this side: no constraints to apply, and the
		// main-graph side must be left untouched for contribution labels.
		return true
	}
	sortLabels(p.sKeys)
	p.sCnt = p.sCnt[:0]
	k := 0
	for i, lab := range p.sKeys {
		if i > 0 && lab == p.sKeys[k-1] {
			p.sCnt[k-1]++
			continue
		}
		p.sKeys[k] = lab
		p.sCnt = append(p.sCnt, 1)
		k++
	}
	p.sKeys = p.sKeys[:k]
	p.gCnt = p.gCnt[:0]
	for i := 0; i < k; i++ {
		p.gCnt = append(p.gCnt, 0)
	}
	kept := p.pruneActive(gAct)
	if devs {
		p.gActDev = kept
	} else {
		p.gActNet = kept
	}
	for i := range p.sKeys {
		if p.gCnt[i] < p.sCnt[i] {
			return false
		}
	}
	return true
}

// p1Par is the per-goroutine scratch of striped consistency checks: each
// chunk accumulates survivors, partition counts, and a prune tally locally,
// merged in chunk order after the barrier.
type p1Par struct {
	keep   [][]int32
	cnt    [][]int32
	pruned []int
}

func (pp *p1Par) grow(chunks int) {
	for len(pp.cnt) < chunks {
		pp.keep = append(pp.keep, nil)
		pp.cnt = append(pp.cnt, nil)
		pp.pruned = append(pp.pruned, 0)
	}
}

// pruneActive partitions the worklist into survivors (returned, counted
// into p.gCnt per pattern partition) and pruned vertices (marked, tallied
// in Phase1Pruned).
func (p *phase1) pruneActive(act []int32) []int32 {
	n := len(act)
	chunks := p.chunkCount(n)
	keys, gLab, gState := p.sKeys, p.gLab, p.gState
	if chunks == 1 {
		kept := act[:0]
		pruned := 0
		for _, v := range act {
			if i := lookupLabel(keys, gLab[v]); i >= 0 {
				p.gCnt[i]++
				kept = append(kept, v)
			} else {
				gState[v] = g1Pruned
				pruned++
			}
		}
		p.rep.Phase1Pruned += pruned
		return kept
	}
	if p.par == nil {
		p.par = &p1Par{}
	}
	p.par.grow(chunks)
	scan := func(c int, part []int32) {
		keep := p.par.keep[c][:0]
		cnt := p.par.cnt[c][:0]
		for range keys {
			cnt = append(cnt, 0)
		}
		pruned := 0
		for _, v := range part {
			if i := lookupLabel(keys, gLab[v]); i >= 0 {
				cnt[i]++
				keep = append(keep, v)
			} else {
				gState[v] = g1Pruned
				pruned++
			}
		}
		p.par.keep[c] = keep
		p.par.cnt[c] = cnt
		p.par.pruned[c] = pruned
	}
	var wg sync.WaitGroup
	for c := 1; c < chunks; c++ {
		lo, hi := c*n/chunks, (c+1)*n/chunks
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			scan(c, act[lo:hi])
		}(c, lo, hi)
	}
	scan(0, act[:n/chunks])
	wg.Wait()
	// Chunks are contiguous and merged in order, so the surviving list is
	// exactly what the sequential loop would have produced.
	kept := act[:0]
	for c := 0; c < chunks; c++ {
		kept = append(kept, p.par.keep[c]...)
		p.rep.Phase1Pruned += p.par.pruned[c]
		for i, cn := range p.par.cnt[c] {
			p.gCnt[i] += cn
		}
	}
	return kept
}
