package core

import (
	"testing"

	"subgemini/internal/graph"
	"subgemini/internal/stdcell"
)

// TestGlobalsBakedInPatternPropagate exercises the globals-union rule in
// the S→G direction: the pattern declares VDD/GND global (as a .GLOBAL
// netlist directive would) while the main circuit has plain nets of those
// names and the options carry no globals at all.
func TestGlobalsBakedInPatternPropagate(t *testing.T) {
	g := graph.New("g")
	vdd, gnd := g.AddNet("VDD"), g.AddNet("GND")
	a, y := g.AddNet("a"), g.AddNet("y")
	stdcell.INV.MustInstantiate(g, "u1", map[string]*graph.Net{"A": a, "Y": y, "VDD": vdd, "GND": gnd})

	s := stdcell.INV.Pattern()
	s.MarkGlobal("VDD")
	s.MarkGlobal("GND")

	res, err := Find(g, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 1 {
		t.Fatalf("found %d instances, want 1", len(res.Instances))
	}
	if !g.NetByName("VDD").Global {
		t.Error("pattern global did not propagate to the main circuit")
	}
}

// setupVerify runs one successful candidate verification and hands back the
// live phase2 state so the tests below can corrupt it and check that
// verifyMapping refuses.
func setupVerify(t *testing.T) (*phase2, *graph.Circuit, *graph.Circuit) {
	t.Helper()
	g := graph.New("g")
	vdd, gnd := g.AddNet("VDD"), g.AddNet("GND")
	nets := map[string]*graph.Net{
		"A": g.AddNet("a"), "B": g.AddNet("b"), "Y": g.AddNet("y"),
		"VDD": vdd, "GND": gnd,
	}
	stdcell.NAND2.MustInstantiate(g, "u1", nets)
	s := stdcell.NAND2.Pattern()

	m, err := NewMatcher(g, Options{Globals: []string{"VDD", "GND"}})
	if err != nil {
		t.Fatal(err)
	}
	s.MarkGlobal("VDD")
	s.MarkGlobal("GND")
	pat, err := newPattern(s, &m.opts)
	if err != nil {
		t.Fatal(err)
	}
	rep := &Result{}
	p1 := newPhase1(m, pat, &rep.Report)
	key, cv, _ := p1.run()
	if len(cv) == 0 {
		t.Fatal("no candidates")
	}
	p2, err := newPhase2(m, pat, &rep.Report)
	if err != nil {
		t.Fatal(err)
	}
	if inst := p2.verifyCandidate(key, cv[0]); inst == nil {
		t.Fatal("true candidate failed")
	}
	if !p2.verifyMapping() {
		t.Fatal("intact mapping rejected")
	}
	return p2, g, s
}

func TestVerifyMappingRejectsDuplicateImages(t *testing.T) {
	p2, _, s := setupVerify(t)
	// Point two pattern devices at the same image.
	v1 := p2.sSpace.DevVID(s.Devices[0])
	v2 := p2.sSpace.DevVID(s.Devices[1])
	p2.sMatch[v1] = p2.sMatch[v2]
	if p2.verifyMapping() {
		t.Error("duplicate device image accepted")
	}
}

func TestVerifyMappingRejectsTypeMismatch(t *testing.T) {
	p2, g, s := setupVerify(t)
	// Swap a pmos image for an nmos one.
	var pm, nm *graph.Device
	for _, d := range s.Devices {
		if d.Type == "pmos" && pm == nil {
			pm = d
		}
		if d.Type == "nmos" && nm == nil {
			nm = d
		}
	}
	_ = g
	vp, vn := p2.sSpace.DevVID(pm), p2.sSpace.DevVID(nm)
	p2.sMatch[vp], p2.sMatch[vn] = p2.sMatch[vn], p2.sMatch[vp]
	if p2.verifyMapping() {
		t.Error("type-mismatched mapping accepted")
	}
}

func TestVerifyMappingRejectsUnmatchedVertex(t *testing.T) {
	p2, _, s := setupVerify(t)
	p2.sMatch[p2.sSpace.DevVID(s.Devices[0])] = unmatched
	if p2.verifyMapping() {
		t.Error("mapping with an unmatched device accepted")
	}
	p2b, _, sb := setupVerify(t)
	var internal *graph.Net
	for _, n := range sb.Nets {
		if !n.Port && !n.Global {
			internal = n
		}
	}
	p2b.sMatch[p2b.sSpace.NetVID(internal)] = unmatched
	if p2b.verifyMapping() {
		t.Error("mapping with an unmatched net accepted")
	}
}

func TestVerifyMappingRejectsWrongNetImage(t *testing.T) {
	p2, g, s := setupVerify(t)
	// Re-point the internal net's image at an unrelated net: pin agreement
	// and the degree condition must catch it.
	var internal *graph.Net
	for _, n := range s.Nets {
		if !n.Port && !n.Global {
			internal = n
		}
	}
	p2.sMatch[p2.sSpace.NetVID(internal)] = p2.gSpace.NetVID(g.NetByName("a"))
	if p2.verifyMapping() {
		t.Error("wrong internal-net image accepted")
	}
}
