package core

import (
	"fmt"
	"io"
	"text/tabwriter"

	"subgemini/internal/label"
)

// phase1Tracer reproduces the presentation of the paper's Fig. 2 and
// Fig. 4: per-round labels for both graphs with corrupt pattern vertices
// shown as "xx" and pruned main-graph vertices as "-".  Labels are
// symbolized in order of first appearance, with net-degree initial labels
// rendered as the degree itself and device types as their names, matching
// the figures.
type phase1Tracer struct {
	p       *phase1
	rounds  []p1Snap
	symbols map[label.Value]string
	next    int
}

type p1Snap struct {
	title  string
	sLab   []label.Value
	sState []p1State
	gLab   []label.Value
	gState []g1State
}

func newPhase1Tracer(p *phase1) *phase1Tracer {
	t := &phase1Tracer{p: p, symbols: map[label.Value]string{}}
	// Pre-name the invariant labels so the rendering reads like Fig. 2:
	// degrees as numbers, device types as their names.
	for _, d := range p.m.g.Devices {
		t.symbols[p.m.typeLabel(d.Type)] = d.Type
	}
	for _, d := range p.pat.s.Devices {
		if d.Type != "*" {
			t.symbols[p.m.typeLabel(d.Type)] = d.Type
		}
	}
	for deg := 0; deg <= 64; deg++ {
		t.symbols[label.DegreeLabel(deg)] = fmt.Sprintf("%d", deg)
	}
	return t
}

func (t *phase1Tracer) snapshot(title string) {
	t.rounds = append(t.rounds, p1Snap{
		title:  title,
		sLab:   append([]label.Value(nil), t.p.sLab...),
		sState: append([]p1State(nil), t.p.sState...),
		gLab:   append([]label.Value(nil), t.p.gLab...),
		gState: append([]g1State(nil), t.p.gState...),
	})
}

func (t *phase1Tracer) symbol(v label.Value) string {
	if s, ok := t.symbols[v]; ok {
		return s
	}
	n := t.next
	t.next++
	s := ""
	for {
		s = string(rune('A'+n%26)) + s
		n = n/26 - 1
		if n < 0 {
			break
		}
	}
	t.symbols[v] = s
	return s
}

// render writes the Fig. 2/4-style table: pattern rows first ("xx" once
// corrupt), then main-graph rows ("-" once pruned by a consistency check).
func (t *phase1Tracer) render(w io.Writer, key string, cvSize int) {
	fmt.Fprintf(w, "Phase I trace (key vertex %s, |CV| = %d)\n", key, cvSize)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	header := "vertex"
	for _, r := range t.rounds {
		header += "\t" + r.title
	}
	fmt.Fprintf(tw, "-- pattern S --%s\n", dashes(len(t.rounds)))
	fmt.Fprintln(tw, header)
	for v := 0; v < t.p.sSpace.Size(); v++ {
		line := t.p.sSpace.Name(label.VID(v))
		for _, r := range t.rounds {
			switch r.sState[v] {
			case p1Corrupt:
				line += "\txx"
			case p1Global:
				line += "\t(" + t.p.sSpace.Name(label.VID(v)) + ")"
			default:
				line += "\t" + t.symbol(r.sLab[v])
			}
		}
		fmt.Fprintln(tw, line)
	}
	fmt.Fprintf(tw, "-- main graph G --%s\n", dashes(len(t.rounds)))
	fmt.Fprintln(tw, header)
	for v := 0; v < t.p.gSpace.Size(); v++ {
		line := t.p.gSpace.Name(label.VID(v))
		for _, r := range t.rounds {
			switch r.gState[v] {
			case g1Pruned:
				line += "\t-"
			case g1Global:
				line += "\t(" + t.p.gSpace.Name(label.VID(v)) + ")"
			default:
				line += "\t" + t.symbol(r.gLab[v])
			}
		}
		fmt.Fprintln(tw, line)
	}
	tw.Flush()
	fmt.Fprintln(w)
}
