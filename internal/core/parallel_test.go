package core_test

import (
	"testing"

	"subgemini/internal/core"
	"subgemini/internal/gen"
	"subgemini/internal/stdcell"
)

// TestFindParallelMatchesSequential: the parallel matcher must report
// exactly the sequential matcher's instance sets on every workload, for
// several worker counts.
func TestFindParallelMatchesSequential(t *testing.T) {
	designs := []*gen.Design{
		gen.RippleAdder(32),
		gen.SRAMArray(6, 6),
		gen.RandomLogic(200, 16, 5),
	}
	patterns := []*stdcell.CellDef{stdcell.FA, stdcell.SRAM6T, stdcell.NAND2, stdcell.INV}
	for _, d := range designs {
		for _, pat := range patterns {
			seq, err := core.Find(d.C.Clone(), pat.Pattern(), core.Options{Globals: rails})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4, 7} {
				m, err := core.NewMatcher(d.C.Clone(), core.Options{Globals: rails})
				if err != nil {
					t.Fatal(err)
				}
				par, err := m.FindParallel(pat.Pattern(), workers)
				if err != nil {
					t.Fatal(err)
				}
				ss, ps := instanceSets(seq.Instances), instanceSets(par.Instances)
				if len(ss) != len(ps) {
					t.Errorf("%s in %s (%d workers): parallel found %d, sequential %d",
						pat.Name, d.C.Name, workers, len(ps), len(ss))
					continue
				}
				for sig := range ss {
					if !ps[sig] {
						t.Errorf("%s in %s (%d workers): instance missing from parallel result", pat.Name, d.C.Name, workers)
					}
				}
			}
		}
	}
}

// TestFindParallelDeterministic: same inputs, same worker count, same
// ordered result.
func TestFindParallelDeterministic(t *testing.T) {
	d := gen.RippleAdder(64)
	runOnce := func() []string {
		m, err := core.NewMatcher(d.C.Clone(), core.Options{Globals: rails})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.FindParallel(stdcell.FA.Pattern(), 4)
		if err != nil {
			t.Fatal(err)
		}
		var names []string
		for _, inst := range res.Instances {
			names = append(names, inst.Devices()[0].Name)
		}
		return names
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatalf("different instance counts across runs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instance order differs at %d: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestFindParallelPolicyRestrictions(t *testing.T) {
	d := gen.InverterChain(4)
	m, err := core.NewMatcher(d.C, core.Options{Globals: rails, Policy: core.NonOverlapping})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.FindParallel(stdcell.INV.Pattern(), 4); err == nil {
		t.Error("NonOverlapping accepted by FindParallel")
	}
	m2, err := core.NewMatcher(d.C, core.Options{Globals: rails, MaxInstances: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.FindParallel(stdcell.INV.Pattern(), 4); err == nil {
		t.Error("MaxInstances accepted by FindParallel")
	}
}

func TestFindParallelEmptyAndSingleWorker(t *testing.T) {
	d := gen.InverterChain(5)
	m, err := core.NewMatcher(d.C.Clone(), core.Options{Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	// workers=1 falls back to the sequential path.
	res, err := m.FindParallel(stdcell.INV.Pattern(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 5 {
		t.Errorf("1 worker: found %d, want 5", len(res.Instances))
	}
	// A pattern with no instances parallelizes to an empty result.
	res, err = m.FindParallel(stdcell.FA.Pattern(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 0 {
		t.Errorf("found %d FAs in an inverter chain", len(res.Instances))
	}
}
