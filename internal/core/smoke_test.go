package core

import (
	"testing"

	"subgemini/internal/graph"
	"subgemini/internal/stdcell"
)

// chain builds an inverter chain of length k with shared rails.
func chain(t *testing.T, k int) *graph.Circuit {
	t.Helper()
	c := graph.New("chain")
	vdd, gnd := c.AddNet("VDD"), c.AddNet("GND")
	prev := c.AddNet("n0")
	for i := 0; i < k; i++ {
		next := c.AddNet("n" + string(rune('1'+i)))
		stdcell.INV.MustInstantiate(c, "inv"+string(rune('a'+i)), map[string]*graph.Net{
			"A": prev, "Y": next, "VDD": vdd, "GND": gnd,
		})
		prev = next
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestInverterChain(t *testing.T) {
	g := chain(t, 3)
	res, err := Find(g, stdcell.INV.Pattern(), Options{Globals: []string{"VDD", "GND"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Instances); got != 3 {
		t.Fatalf("found %d inverters, want 3 (report: %s)", got, res.Report.String())
	}
}

// TestInverterInNAND reproduces paper Fig. 7: without special signals the
// inverter pattern is found once inside a NAND2 (via the internal pull-down
// node standing in for GND); with VDD/GND special it is not found.
func TestInverterInNAND(t *testing.T) {
	build := func() *graph.Circuit {
		g := graph.New("nandckt")
		nets := map[string]*graph.Net{}
		for _, n := range []string{"A", "B", "Y", "VDD", "GND"} {
			nets[n] = g.AddNet(n)
		}
		stdcell.NAND2.MustInstantiate(g, "u1", nets)
		return g
	}

	res, err := Find(build(), stdcell.INV.Pattern(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Instances); got != 1 {
		t.Errorf("without globals: found %d inverter instances in NAND2, want 1 (Fig. 7)", got)
	}

	res, err = Find(build(), stdcell.INV.Pattern(), Options{Globals: []string{"VDD", "GND"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Instances); got != 0 {
		t.Errorf("with globals: found %d inverter instances in NAND2, want 0 (Fig. 7)", got)
	}
}

func TestNandInMixedCircuit(t *testing.T) {
	g := graph.New("mixed")
	vdd, gnd := g.AddNet("VDD"), g.AddNet("GND")
	a, b, c, y1, y2, y3 := g.AddNet("a"), g.AddNet("b"), g.AddNet("c"), g.AddNet("y1"), g.AddNet("y2"), g.AddNet("y3")
	stdcell.NAND2.MustInstantiate(g, "u1", map[string]*graph.Net{"A": a, "B": b, "Y": y1, "VDD": vdd, "GND": gnd})
	stdcell.NOR2.MustInstantiate(g, "u2", map[string]*graph.Net{"A": y1, "B": c, "Y": y2, "VDD": vdd, "GND": gnd})
	stdcell.NAND2.MustInstantiate(g, "u3", map[string]*graph.Net{"A": y2, "B": a, "Y": y3, "VDD": vdd, "GND": gnd})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}

	opts := Options{Globals: []string{"VDD", "GND"}}
	res, err := Find(g, stdcell.NAND2.Pattern(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Instances); got != 2 {
		t.Errorf("NAND2: found %d, want 2 (report: %s)", got, res.Report.String())
	}
	res, err = Find(g, stdcell.NOR2.Pattern(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Instances); got != 1 {
		t.Errorf("NOR2: found %d, want 1 (report: %s)", got, res.Report.String())
	}
	res, err = Find(g, stdcell.XOR2.Pattern(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Instances); got != 0 {
		t.Errorf("XOR2: found %d, want 0", got)
	}
}
