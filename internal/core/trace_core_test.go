package core

import (
	"errors"
	"testing"

	"subgemini/internal/graph"
	"subgemini/internal/trace"
)

// TestFindEmitsTraceEvents runs the paper's worked example with a collector
// installed and checks the event stream end to end: run boundaries, one
// event per Phase I relabeling pass, the candidate-vector selection, and
// one event per Phase II candidate with the N13 decoy rejected and the
// true image N14 matched.
func TestFindEmitsTraceEvents(t *testing.T) {
	g, s := paperMainGraph(), paperSubgraph()
	col := trace.NewCollector(0)
	res, err := Find(g, s, Options{Tracer: col})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 1 {
		t.Fatalf("found %d instances, want 1", len(res.Instances))
	}
	if res.Report.CandidatesMatched != 1 {
		t.Errorf("Report.CandidatesMatched = %d, want 1", res.Report.CandidatesMatched)
	}

	events := col.Events()
	if len(events) == 0 {
		t.Fatal("no events collected")
	}
	first, last := events[0], events[len(events)-1]
	if first.Kind != trace.KindRunStart || first.Circuit != "paperG" || first.Pattern != "paperS" ||
		first.Devices != 7 || first.Nets != 9 {
		t.Errorf("run_start = %+v, want paperS in paperG with 7 devices, 9 nets", first)
	}
	if last.Kind != trace.KindRunEnd || last.Instances != 1 || last.Candidates != 2 {
		t.Errorf("run_end = %+v, want 1 instance from 2 candidates", last)
	}

	var passes, cvs int
	candidates := map[string]bool{}
	for _, e := range events {
		switch e.Kind {
		case trace.KindPhase1Pass:
			passes++
			if e.Side != trace.SideNets && e.Side != trace.SideDevices {
				t.Errorf("phase1_pass with side %q", e.Side)
			}
			if e.PatternValid+e.PatternCorrupt == 0 {
				t.Errorf("phase1_pass %+v counted no pattern vertices", e)
			}
		case trace.KindCandidateVector:
			cvs++
			if e.KeyVertex != "N4" || e.KeyIsDevice || e.CVSize != 2 {
				t.Errorf("candidate_vector = %+v, want key N4 (net), |CV| = 2", e)
			}
		case trace.KindPhase2Candidate:
			candidates[e.Candidate] = e.Matched
			if e.Passes <= 0 {
				t.Errorf("candidate %s traced %d passes, want > 0", e.Candidate, e.Passes)
			}
			if e.DurationNS <= 0 {
				t.Errorf("candidate %s traced duration %d ns, want > 0", e.Candidate, e.DurationNS)
			}
		}
	}
	// Paper Fig. 2: nets pass 1 leaves only N4 valid, devices pass 1
	// corrupts everything, so relabeling stops after exactly two passes.
	if passes != 2 {
		t.Errorf("traced %d phase1_pass events, want 2", passes)
	}
	if cvs != 1 {
		t.Errorf("traced %d candidate_vector events, want 1", cvs)
	}
	if len(candidates) != 2 || candidates["N13"] || !candidates["N14"] {
		t.Errorf("candidate outcomes = %v, want N13 rejected and N14 matched", candidates)
	}
}

// TestFindParallelEmitsTraceEvents checks that the concurrent matcher
// produces the same run-level events and per-candidate outcomes as Find
// (candidate events may interleave in any order).
func TestFindParallelEmitsTraceEvents(t *testing.T) {
	g, s := paperMainGraph(), paperSubgraph()
	col := trace.NewCollector(0)
	m, err := NewMatcher(g, Options{Tracer: col})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.FindParallel(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 1 {
		t.Fatalf("found %d instances, want 1", len(res.Instances))
	}
	if res.Report.CandidatesMatched != 1 {
		t.Errorf("Report.CandidatesMatched = %d, want 1", res.Report.CandidatesMatched)
	}
	candidates := map[string]bool{}
	var ends int
	for _, e := range col.Events() {
		switch e.Kind {
		case trace.KindPhase2Candidate:
			candidates[e.Candidate] = e.Matched
		case trace.KindRunEnd:
			ends++
			if e.Instances != 1 || e.Candidates != 2 {
				t.Errorf("run_end = %+v, want 1 instance from 2 candidates", e)
			}
		}
	}
	if ends != 1 {
		t.Errorf("traced %d run_end events, want 1", ends)
	}
	if len(candidates) != 2 || candidates["N13"] || !candidates["N14"] {
		t.Errorf("candidate outcomes = %v, want N13 rejected and N14 matched", candidates)
	}
}

// TestNopTracerNoAllocs pins the overhead contract: with the no-op sink
// installed, the per-pass Phase I emission path performs zero allocations
// (the partition count reuses the scratch slice, and the flat Event struct
// never escapes to the heap).
func TestNopTracerNoAllocs(t *testing.T) {
	g, s := paperMainGraph(), paperSubgraph()
	m, err := NewMatcher(g, Options{Tracer: trace.Nop{}})
	if err != nil {
		t.Fatal(err)
	}
	pat, err := newPattern(s, &m.opts)
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	p1 := newPhase1(m, pat, &res.Report)
	if _, _, err := p1.run(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		p1.emitPass(trace.Nop{}, 1, trace.SideNets)
		p1.emitPass(trace.Nop{}, 1, trace.SideDevices)
	})
	if allocs != 0 {
		t.Errorf("emitPass with the no-op tracer allocates %.1f times per pass, want 0", allocs)
	}
}

// absentPattern builds a pattern whose device type does not occur in the
// paper's main graph, so Phase I's very first consistency check proves no
// instance exists and the candidate vector comes out empty.
func absentPattern() *graph.Circuit {
	s := graph.New("absent")
	a, b := s.AddNet("A"), s.AddNet("B")
	s.MustAddDevice("Q1", "bjt", mos3, []*graph.Net{a, b, a})
	return s
}

// TestFindCancelEmptyCV is the regression test for the Phase I polling fix:
// a run that aborts inside Phase I (empty candidate vector) must still
// honor Options.Cancel.  Before the fix the hook was only polled between
// Phase II candidates, so such a run returned a nil error even under an
// already-cancelled hook.
func TestFindCancelEmptyCV(t *testing.T) {
	errStop := errors.New("stop")
	_, err := Find(paperMainGraph(), absentPattern(), Options{
		Cancel: func() error { return errStop },
	})
	if !errors.Is(err, errStop) {
		t.Fatalf("Find returned %v, want %v (Cancel must be polled during Phase I)", err, errStop)
	}

	m, err := NewMatcher(paperMainGraph(), Options{Cancel: func() error { return errStop }})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.FindParallel(absentPattern(), 2); !errors.Is(err, errStop) {
		t.Fatalf("FindParallel returned %v, want %v", err, errStop)
	}
}

// TestFindCancelDuringPhase1 cancels on the second poll — the first
// relabeling round — and checks via the tracer that the run aborted before
// any Phase II candidate was examined.
func TestFindCancelDuringPhase1(t *testing.T) {
	errStop := errors.New("stop")
	col := trace.NewCollector(0)
	polls := 0
	_, err := Find(paperMainGraph(), paperSubgraph(), Options{
		Tracer: col,
		Cancel: func() error {
			polls++
			if polls >= 2 {
				return errStop
			}
			return nil
		},
	})
	if !errors.Is(err, errStop) {
		t.Fatalf("Find returned %v, want %v", err, errStop)
	}
	for _, e := range col.Events() {
		if e.Kind == trace.KindPhase2Candidate {
			t.Fatalf("candidate %s examined after a Phase I cancellation", e.Candidate)
		}
	}
}
