// Package core implements the SubGemini subgraph-isomorphism algorithm of
// Ohlrich, Ebeling, Ginting and Sather (DAC 1993): finding every instance of
// a subcircuit (the pattern S) inside a larger circuit (the main graph G).
//
// The algorithm runs in two phases.  Phase I applies partition refinement by
// relabeling to both graphs, tracking a valid/corrupt bit on pattern
// vertices so that labels of pattern vertices provably equal the labels of
// their images in the main graph (Label Invariant 1).  It selects a key
// vertex K in the pattern and a candidate vector CV of main-graph vertices
// that might be images of K.  Phase II examines each candidate c, postulates
// c = image(K), and spreads unique labels outward from the matched pair,
// using only labels proven "safe", matching singleton partitions as they
// emerge and guessing (with backtracking) when symmetry stalls progress
// (Label Invariant 2).  Every complete mapping is verified edge-by-edge
// before being reported, so label collisions can cost time but never
// correctness.
//
// Special signals (Vdd, GND, clocks) may be declared global: they are
// matched by name, never labeled, and never corrupt, which both constrains
// matching (an inverter is not reported inside every NAND gate, paper
// Fig. 7) and avoids labeling the highest-degree nets in the circuit.
package core

import (
	"fmt"
	"io"
	"sort"
	"time"

	"subgemini/internal/csr"
	"subgemini/internal/graph"
	"subgemini/internal/obs"
	"subgemini/internal/label"
	"subgemini/internal/stats"
	"subgemini/internal/trace"
)

// OverlapPolicy controls how instances sharing devices are reported.
type OverlapPolicy int

const (
	// MatchAll reports one instance per candidate-vector entry that
	// verifies, even when instances share devices (rule-checking semantics).
	MatchAll OverlapPolicy = iota
	// NonOverlapping consumes the devices of each reported instance, so no
	// device belongs to two instances (extraction semantics).  Candidates
	// are retried after a success, so several instances whose key images
	// coincide are still all found.
	NonOverlapping
)

// Options configures a matching run.
type Options struct {
	// Globals lists net names treated as special signals in both circuits
	// (paper §V.A).  A pattern net with one of these names only matches the
	// identically named main-graph net.
	Globals []string

	// Bind constrains pattern ports to specific main-graph nets by name:
	// Bind["CLK"] = "clk_phi1" makes the pattern's CLK port match only the
	// net clk_phi1.  This generalizes special signals (§V.A: "the user may
	// place further constraints on the subcircuit"): a bound port is
	// pre-matched like a global but keeps port degree semantics (the
	// target may have any number of extra connections).  Unlike globals,
	// bindings are per-run and the names need not agree.
	Bind map[string]string

	// Policy selects overlap semantics; the zero value is MatchAll.
	Policy OverlapPolicy

	// MaxInstances stops the search after this many instances (0 = no
	// limit).
	MaxInstances int

	// MaxGuessDepth bounds the Phase II guess recursion (0 = default 64).
	// The bound is a safety valve; circuits in practice need a handful of
	// nested guesses at most.
	MaxGuessDepth int

	// Seed perturbs the unique-label stream.  Runs with equal seeds are
	// bit-for-bit reproducible.
	Seed uint64

	// Workers stripes the main-graph side of each Phase I relabeling and
	// consistency pass across this many goroutines (0 or 1 = sequential).
	// Results are bit-identical for every worker count: the relabeling sum
	// commutes and striped chunks merge in deterministic order (see
	// phase1csr.go).  FindParallel defaults this to its own worker count
	// when unset.  Ignored by the legacy engine.
	Workers int

	// LegacyPhase1 selects the pointer-walking reference implementation of
	// Phase I instead of the data-oriented CSR engine.  Both produce
	// identical results; the reference engine exists for differential
	// testing and as executable documentation of the paper's formulation.
	LegacyPhase1 bool

	// LegacyPhase2 selects the whole-graph Phase II engine, which relabels
	// and partitions over every main-graph vertex, instead of the
	// region-localized engine that restricts each candidate's verification
	// to the ball of vertices within the pattern's key-vertex eccentricity
	// (see phase2region.go).  Both find identical instances in identical
	// order; the whole-graph engine exists for differential testing
	// (TestPhase2Differential) and as executable documentation of the
	// paper's formulation.  Runs with Options.TraceTable use the
	// whole-graph engine regardless, since the step-by-step table renders
	// whole-graph labeling state.
	LegacyPhase2 bool

	// LegacyIncremental makes FindIncremental ignore any previous state and
	// dirty set and run the full matcher instead, without capturing a new
	// state.  It is the incremental engine's differential oracle: results
	// must be bit-identical to the incremental path for every edit script
	// (TestIncrementalDifferential), mirroring how LegacyPhase1/LegacyPhase2
	// keep the reference engines selectable.
	LegacyIncremental bool

	// CSR, when non-nil, supplies a prebuilt flat view of the main circuit
	// (see NewCSR), letting long-lived callers like subgeminid build it
	// once per resident circuit and share it across matchers; the view is
	// immutable and safe for concurrent use.  It must describe the same
	// circuit passed to NewMatcher (vertex counts are checked; a mismatch
	// falls back to building a fresh view).  Nil means the Matcher builds
	// and caches its own on first use.
	CSR *CSR

	// Scratch, when non-nil, recycles the O(|G|) per-run Phase II state
	// across Find calls (see ScratchPool).  Sharing one pool across the
	// matchers of one resident circuit removes the dominant steady-state
	// allocation of a match request.
	Scratch *ScratchPool

	// InitLabels, when non-nil, supplies a precomputed initial Phase I
	// labeling of the main circuit (see NewInitLabels), letting a library
	// sweep label the main graph once and share the result read-only
	// across its per-pattern matchers.  It must describe the same circuit
	// with the same global marks (both are checked; a mismatch falls back
	// to computing the labeling as usual), and it is ignored under
	// AblateGlobalFold, whose device labels differ from the shared ones.
	InitLabels *InitLabels

	// Cancel, when non-nil, is polled at bounded intervals throughout the
	// run: between and *inside* Phase I relabeling passes (every few
	// thousand vertices of the main-graph worklist, so a deadline holds
	// even while one pass walks a huge circuit) and between and *inside*
	// Phase II candidates (every few dozen solve passes, so a single
	// pathological candidate with deep guess recursion cannot hold a
	// worker past its deadline).  The first non-nil return aborts the run;
	// Find/FindParallel then return that error together with a partial
	// Result whose Report.CancelledAt records which phase was cut.
	// Wiring a request context in is one line:
	//
	//	opts.Cancel = ctx.Err
	//
	// The hook must be safe for concurrent use (ctx.Err is): FindParallel
	// workers and striped Phase I passes poll it from several goroutines.
	Cancel func() error

	// Observe, when non-nil, receives span timelines for the run: one
	// phase1 span (attrs: passes, cv_size), one phase2 span (attrs:
	// candidates, instances — or replayed/recomputed on the incremental
	// path), and a csr-build span when the matcher has to construct its own
	// adjacency view.  Wiring a request timeline in is one line:
	//
	//	opts.Observe = obs.ScopeFromContext(ctx)
	//
	// Like Cancel, the hook must be safe for concurrent use: FindParallel
	// workers and sweep workers emit spans from several goroutines (the
	// Timeline behind a Scope is mutex-protected).  A nil Observe costs
	// nothing — the disabled path performs zero allocations, pinned by
	// TestObserveDisabledNoAllocs — and the field never affects results,
	// so delta.PatternKey deliberately excludes it.
	Observe *obs.Scope

	// Trace, when non-nil, receives a human-readable account of the run.
	Trace io.Writer

	// Tracer, when non-nil, receives one structured event per Phase I
	// relabeling pass, one for the candidate-vector selection, and one per
	// Phase II candidate examined (see internal/trace for the event
	// schema and the provided sinks).  A nil Tracer costs nothing; the
	// no-op sink costs no allocations.  FindParallel with a Tracer falls
	// back to the sequential matcher so the event stream keeps the
	// deterministic candidate order the sinks and docgen rely on.
	Tracer trace.Tracer

	// TraceTable, when non-nil, receives a Table-1-style rendering of every
	// Phase II candidate verification: one row per vertex, one column per
	// relabeling pass, with symbolic labels (KV, A, B, ...), '*' for safe
	// vertices and brackets for matched ones — the presentation the paper
	// uses to walk through its example.  Verbose; intended for small runs.
	TraceTable io.Writer

	// The Ablate* options disable individual design decisions so the
	// benchmark harness can measure their contribution (DESIGN.md §4).
	// They never change which instances are found, only how fast.

	// AblateDegreeCheck disables the Phase II match-time degree
	// feasibility check; false candidates in degree-uniform fabrics are
	// then refuted only by the final verification.
	AblateDegreeCheck bool

	// AblateGlobalFold disables folding global-net pins into the Phase I
	// initial device labels; rail-anchored patterns then start from
	// type-only partitions.
	AblateGlobalFold bool
}

// cancelled polls the Cancel hook; nil means "keep going".
func (o *Options) cancelled() error {
	if o.Cancel == nil {
		return nil
	}
	return o.Cancel()
}

func (o *Options) guessDepth() int {
	if o.MaxGuessDepth <= 0 {
		return 64
	}
	return o.MaxGuessDepth
}

func (o *Options) tracef(format string, args ...any) {
	if o.Trace != nil {
		fmt.Fprintf(o.Trace, format+"\n", args...)
	}
}

// Instance is one verified embedding of the pattern in the main graph.
type Instance struct {
	// DevMap maps each pattern device to its image.
	DevMap map[*graph.Device]*graph.Device
	// NetMap maps each pattern net (including globals) to its image.
	NetMap map[*graph.Net]*graph.Net
}

// Devices returns the image devices sorted by main-graph index.
func (in *Instance) Devices() []*graph.Device {
	ds := make([]*graph.Device, 0, len(in.DevMap))
	for _, g := range in.DevMap {
		ds = append(ds, g)
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].Index < ds[j].Index })
	return ds
}

// signature canonically identifies the instance by its image device set, for
// de-duplication when several pattern vertices share the key label.  buf is
// a reusable scratch slice (may be nil); the second return value hands it
// back to the caller.
func (in *Instance) signature(buf []int) (string, []int) {
	buf = buf[:0]
	for _, g := range in.DevMap {
		buf = append(buf, g.Index)
	}
	// Insertion sort: instances have tens of devices at most.
	for i := 1; i < len(buf); i++ {
		v := buf[i]
		j := i - 1
		for j >= 0 && buf[j] > v {
			buf[j+1] = buf[j]
			j--
		}
		buf[j+1] = v
	}
	// Big-endian bytes make the string order of signatures equal the
	// numeric order of device-index tuples, which FindParallel relies on
	// for its canonical instance order.
	sig := make([]byte, 0, len(buf)*4)
	for _, x := range buf {
		sig = append(sig, byte(x>>24), byte(x>>16), byte(x>>8), byte(x))
	}
	return string(sig), buf
}

// String renders the instance as its sorted image device list.
func (in *Instance) String() string {
	s := "{"
	for i, d := range in.Devices() {
		if i > 0 {
			s += " "
		}
		s += d.Name
	}
	return s + "}"
}

// Result is the outcome of a Find run.
type Result struct {
	Instances []*Instance
	Report    stats.Report
}

// Summary renders a one-line account of the run for logs and CLIs.
func (r *Result) Summary() string {
	return fmt.Sprintf("%d instance(s); %s", len(r.Instances), r.Report.String())
}

// Find locates instances of pattern s inside main circuit g.
//
// The pattern's port nets (its external nets) must be marked with
// graph.Net.Port before calling Find; internal pattern nets must not have
// connections outside the instance for a match to be reported (induced
// subgraph semantics, paper §II).  Find returns an error only for malformed
// inputs (e.g. a pattern that is disconnected once global nets are
// removed); "no instances" is a successful empty result.
func Find(g, s *graph.Circuit, opts Options) (*Result, error) {
	m, err := NewMatcher(g, opts)
	if err != nil {
		return nil, err
	}
	return m.Find(s)
}

// Matcher holds the main circuit and options so several patterns can be
// matched against the same circuit.  A Matcher is not safe for concurrent
// use.
type Matcher struct {
	g    *graph.Circuit
	opts Options

	gSpace *label.Space
	// consumed marks main-graph devices already claimed by an instance
	// under the NonOverlapping policy.  It persists across Find calls so
	// iterated extraction can run several patterns against one circuit.
	consumed []bool

	// typeLab caches type-name label hashes: circuits have a handful of
	// distinct device types but the labels are consulted per device in
	// every hot loop.
	typeLab map[string]label.Value

	// devLab caches the type label of every main-graph device, indexed by
	// device vid.  The region Phase II engine reads it on every device
	// relabel, where even the typeLab map lookup (a string hash) is
	// measurable; built lazily by deviceLabels.
	devLab []label.Value

	// devTID/devPins/netDeg cache flat structural facts about the main
	// graph for the region engine's compatibility checks: interned device
	// type ids and pin counts (indexed by device vid) and net degrees
	// (indexed by vid - numDevs).  Type ids are dense per-matcher
	// (typeIDs), so id equality is exactly type-string equality; built
	// lazily by vertexShape.
	devTID  []int32
	devPins []int32
	netDeg  []int32
	typeIDs map[string]int32

	// gInitLab caches the Phase I initial labels of the main graph, which
	// depend only on the circuit and its global marks — both fixed at
	// NewMatcher time — so repeated Find calls skip recomputing them.
	gInitLab []label.Value

	// gCSR caches the flat CSR view of the main graph for the
	// data-oriented Phase I engine.  Unlike gInitLab it survives global
	// re-marking: the view captures structure only.
	gCSR *csr.Graph
}

// CSR is a flat compressed-sparse-row view of a circuit, the representation
// the Phase I engine relabels over.  Build one with NewCSR to share across
// matchers of the same circuit via Options.CSR.
type CSR = csr.Graph

// NewCSR builds the flat view of a circuit.  The view captures structure
// only (connectivity and terminal classes), is immutable, and is safe to
// share between any number of concurrent matchers.
func NewCSR(g *graph.Circuit) *CSR { return csr.New(g) }

// csrView returns the cached CSR view of the main graph, adopting a
// caller-supplied prebuilt view when it matches the circuit.
func (m *Matcher) csrView() *csr.Graph {
	if m.gCSR == nil {
		if v := m.opts.CSR; v != nil && v.Fits(m.g) {
			m.gCSR = v
		} else {
			ref := obs.NoSpan
			if o := m.opts.Observe; o != nil {
				ref = o.Begin(obs.KindCSRBuild, m.g.Name)
			}
			m.gCSR = csr.New(m.g)
			if o := m.opts.Observe; o != nil {
				o.AttrInt(ref, "devices", int64(len(m.g.Devices)))
				o.AttrInt(ref, "nets", int64(len(m.g.Nets)))
				o.End(ref)
			}
		}
	}
	return m.gCSR
}

// deviceLabels returns the per-device type labels of the main graph,
// indexed by device vid.  Built once per matcher; FindParallel warms it
// before spawning workers so worker reads never race the lazy build.
func (m *Matcher) deviceLabels() []label.Value {
	if m.devLab == nil {
		labs := make([]label.Value, len(m.g.Devices))
		for i, d := range m.g.Devices {
			labs[i] = m.typeLabel(d.Type)
		}
		m.devLab = labs
	}
	return m.devLab
}

// vertexShape builds the flat per-vertex structural arrays the region
// engine's compatibility check reads: device type ids and pin counts, and
// net degrees.  Built once per matcher; FindParallel warms it before
// spawning workers.
func (m *Matcher) vertexShape() (devTID, devPins, netDeg []int32) {
	if m.devTID == nil {
		tids := make([]int32, len(m.g.Devices))
		pins := make([]int32, len(m.g.Devices))
		for i, d := range m.g.Devices {
			tids[i] = m.typeID(d.Type)
			pins[i] = int32(len(d.Pins))
		}
		deg := make([]int32, len(m.g.Nets))
		for i, n := range m.g.Nets {
			deg[i] = int32(n.Degree())
		}
		m.devTID, m.devPins, m.netDeg = tids, pins, deg
	}
	return m.devTID, m.devPins, m.netDeg
}

// typeID interns a device type string as a dense per-matcher id, so two
// ids compare equal exactly when the type strings do.
func (m *Matcher) typeID(typ string) int32 {
	if id, ok := m.typeIDs[typ]; ok {
		return id
	}
	id := int32(len(m.typeIDs))
	m.typeIDs[typ] = id
	return id
}

// typeLabel returns the cached label.TypeLabel of a device type.
func (m *Matcher) typeLabel(typ string) label.Value {
	if v, ok := m.typeLab[typ]; ok {
		return v
	}
	v := label.TypeLabel(typ)
	m.typeLab[typ] = v
	return v
}

// NewMatcher prepares a matcher for the main circuit g.  The circuit's nets
// named in opts.Globals are marked global.
func NewMatcher(g *graph.Circuit, opts Options) (*Matcher, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil main circuit")
	}
	for _, d := range g.Devices {
		if d.Type == graph.WildcardType {
			return nil, fmt.Errorf("core: main circuit %s contains a wildcard device (%s); wildcards are for patterns only", g.Name, d.Name)
		}
	}
	for _, name := range opts.Globals {
		g.MarkGlobal(name)
	}
	return &Matcher{
		g:        g,
		opts:     opts,
		gSpace:   label.NewSpace(g),
		consumed: make([]bool, g.NumDevices()),
		typeLab:  make(map[string]label.Value),
		typeIDs:  make(map[string]int32),
	}, nil
}

// markGlobal marks a main-graph net global by name, invalidating the
// cached Phase I initial labels (they fold in global marks).
func (m *Matcher) markGlobal(name string) {
	if n := m.g.NetByName(name); n != nil && !n.Global {
		n.Global = true
		m.gInitLab = nil
	}
}

// ResetConsumed forgets which devices previous NonOverlapping runs claimed.
func (m *Matcher) ResetConsumed() {
	for i := range m.consumed {
		m.consumed[i] = false
	}
}

// Find locates instances of the pattern in the matcher's main circuit.
//
// The effective set of special signals is the union of Options.Globals and
// the nets already marked global in either circuit (e.g. by a .GLOBAL
// netlist directive); the union is applied to both circuits by name, so a
// library pattern matched against a netlist with declared globals gets the
// consistent Fig. 7 semantics without repeating the names in Options.
func (m *Matcher) Find(s *graph.Circuit) (*Result, error) {
	if s == nil {
		return nil, fmt.Errorf("core: nil pattern")
	}
	for _, n := range s.Globals() {
		m.markGlobal(n.Name)
	}
	for _, n := range m.g.Globals() {
		s.MarkGlobal(n.Name)
	}
	pat, err := newPattern(s, &m.opts)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	tr := m.opts.Tracer
	if tr != nil {
		tr.Event(trace.Event{Kind: trace.KindRunStart, Circuit: m.g.Name, Pattern: pat.s.Name,
			Devices: m.g.NumDevices(), Nets: m.g.NumNets()})
	}

	// Phase I: choose the key vertex and candidate vector.
	t0 := time.Now()
	p1Ref := obs.NoSpan
	if o := m.opts.Observe; o != nil {
		p1Ref = o.Begin(obs.KindPhase1, pat.s.Name)
	}
	p1 := newPhase1(m, pat, &res.Report)
	key, cv, err := p1.run()
	res.Report.Phase1Duration = time.Since(t0)
	if o := m.opts.Observe; o != nil {
		o.AttrInt(p1Ref, "passes", int64(res.Report.Phase1Passes))
		o.AttrInt(p1Ref, "cv_size", int64(len(cv)))
		o.End(p1Ref)
	}
	if err != nil {
		// p1.run errors only when Options.Cancel fired; hand back the
		// partial report so callers can see where the run was cut.
		res.Report.CancelledAt = "phase1"
		return res, err
	}
	res.Report.CVSize = len(cv)
	if p1.tracer != nil {
		keyName := "(none)"
		if len(cv) > 0 {
			keyName = pat.space.Name(key)
		}
		p1.tracer.render(m.opts.TraceTable, keyName, len(cv))
	}
	if tr != nil {
		e := trace.Event{Kind: trace.KindCandidateVector, CVSize: len(cv)}
		if len(cv) > 0 {
			e.KeyVertex = pat.space.Name(key)
			e.KeyIsDevice = pat.space.IsDevice(key)
		}
		tr.Event(e)
	}
	if len(cv) == 0 {
		m.opts.tracef("phase1: empty candidate vector, no instances")
		if tr != nil {
			tr.Event(trace.Event{Kind: trace.KindRunEnd})
		}
		return res, nil
	}
	res.Report.KeyVertex = pat.space.Name(key)
	res.Report.KeyIsDevice = pat.space.IsDevice(key)
	m.opts.tracef("phase1: key=%s |CV|=%d passes=%d", res.Report.KeyVertex, len(cv), res.Report.Phase1Passes)

	// Phase II: verify each candidate.
	t1 := time.Now()
	p2Ref := obs.NoSpan
	if o := m.opts.Observe; o != nil {
		p2Ref = o.Begin(obs.KindPhase2, pat.s.Name)
	}
	p2, err := m.newPhase2Engine(pat, key, &res.Report)
	if err != nil {
		// The pattern references a global net absent from G: no instance
		// can exist.
		m.opts.tracef("phase2: %v", err)
		res.Report.Phase2Duration = time.Since(t1)
		if o := m.opts.Observe; o != nil {
			o.End(p2Ref)
		}
		if tr != nil {
			tr.Event(trace.Event{Kind: trace.KindRunEnd})
		}
		return res, nil
	}
	defer p2.close()
	seen := make(map[string]bool)
	var sigBuf []int
	for _, c := range cv {
		if m.opts.MaxInstances > 0 && len(res.Instances) >= m.opts.MaxInstances {
			break
		}
		if err := m.opts.cancelled(); err != nil {
			res.Report.CancelledAt = "phase2"
			res.Report.Phase2Duration = time.Since(t1)
			if o := m.opts.Observe; o != nil {
				o.AttrInt(p2Ref, "candidates", int64(res.Report.Candidates))
				o.End(p2Ref)
			}
			return res, err
		}
		res.Report.Candidates++
		for {
			inst := p2.verifyCandidate(key, c)
			if err := p2.cancelled(); err != nil {
				// Cancellation fired mid-candidate, deep inside the solve
				// recursion; the candidate's partial state was discarded.
				res.Report.CancelledAt = "phase2"
				res.Report.Phase2Duration = time.Since(t1)
				if o := m.opts.Observe; o != nil {
					o.AttrInt(p2Ref, "candidates", int64(res.Report.Candidates))
					o.End(p2Ref)
				}
				return res, err
			}
			if inst == nil {
				break
			}
			res.Report.CandidatesMatched++
			var sig string
			sig, sigBuf = inst.signature(sigBuf)
			if !seen[sig] {
				seen[sig] = true
				res.Instances = append(res.Instances, inst)
				res.Report.Instances++
				res.Report.MatchedDevices += len(inst.DevMap)
				m.opts.tracef("phase2: instance #%d at %s", len(res.Instances), m.gSpace.Name(c))
			}
			if m.opts.Policy == NonOverlapping {
				for _, gd := range inst.DevMap {
					m.consumed[gd.Index] = true
				}
			} else {
				// MatchAll reports at most one instance per candidate; the
				// candidate loop continues with the next c.
				break
			}
			if m.opts.MaxInstances > 0 && len(res.Instances) >= m.opts.MaxInstances {
				break
			}
			// NonOverlapping: retry the same candidate in case several
			// disjoint instances share the key image (possible when the key
			// is a shared net).
		}
	}
	res.Report.Phase2Duration = time.Since(t1)
	if o := m.opts.Observe; o != nil {
		o.AttrInt(p2Ref, "candidates", int64(res.Report.Candidates))
		o.AttrInt(p2Ref, "instances", int64(res.Report.Instances))
		o.End(p2Ref)
	}
	if tr != nil {
		tr.Event(trace.Event{Kind: trace.KindRunEnd,
			Instances: len(res.Instances), Candidates: res.Report.Candidates})
	}
	return res, nil
}

// phase2Engine is what the candidate loops of Find and FindParallel need
// from a Phase II implementation.  Two engines satisfy it: the whole-graph
// reference engine (phase2.go) and the region-localized engine
// (phase2region.go); both find identical instances in identical order.
type phase2Engine interface {
	// verifyCandidate postulates c = image(key) and runs the Phase II
	// search, returning a verified instance or nil.
	verifyCandidate(key, c label.VID) *Instance
	// cancelled reports the latched Options.Cancel error, if any fired
	// inside the engine.
	cancelled() error
	// close releases pooled scratch; must be called exactly once.
	close()
}

// newPhase2Engine picks the Phase II engine for this run: the
// region-localized engine unless the caller asked for the whole-graph one
// (Options.LegacyPhase2) or wants the step-by-step table (Options.TraceTable
// renders whole-graph labeling state and is wired into the whole-graph
// engine only).  key is the Phase I key vertex; the region engine derives
// its ball radius from the pattern's eccentricity at key.
func (m *Matcher) newPhase2Engine(pat *pattern, key label.VID, rep *stats.Report) (phase2Engine, error) {
	if m.opts.LegacyPhase2 || m.opts.TraceTable != nil {
		p2, err := newPhase2(m, pat, rep)
		if err != nil {
			return nil, err
		}
		return p2, nil
	}
	p2, err := newP2Region(m, pat, key, rep)
	if err != nil {
		return nil, err
	}
	return p2, nil
}
