//go:build race

package core_test

// raceEnabled reports whether this test binary was built with the race
// detector.  Race instrumentation allocates internally (shadow state,
// sync bookkeeping) in amounts that differ between code paths, so tests
// that assert relative allocation counts between engines skip under it;
// the plain `go test` run still enforces them.
const raceEnabled = true
