package core_test

import (
	"testing"

	"subgemini/internal/core"
	"subgemini/internal/gen"
	"subgemini/internal/stdcell"
)

// BenchmarkPhase1 times candidate generation alone on the E4 suite's
// largest circuit (rand1000: ~6.8k devices of random logic) for each
// engine configuration.  The legacy/csr pair quantifies the CSR+worklist
// win; the worker variants quantify striping (which needs real cores to
// show wall-clock gains — see EXPERIMENTS.md).
func BenchmarkPhase1(b *testing.B) {
	for _, cfg := range []struct {
		name string
		opts core.Options
	}{
		{"rand1000/legacy", core.Options{LegacyPhase1: true}},
		{"rand1000/csr", core.Options{}},
		{"rand1000/csr-w2", core.Options{Workers: 2}},
		{"rand1000/csr-w4", core.Options{Workers: 4}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			opts := cfg.opts
			opts.Globals = rails
			d := gen.RandomLogic(1000, 32, 11)
			m, err := core.NewMatcher(d.C, opts)
			if err != nil {
				b.Fatal(err)
			}
			s := stdcell.NAND2.Pattern()
			// Warm the matcher's per-circuit caches (initial labels, CSR
			// view) so iterations measure steady-state Phase I cost.
			if _, cv, _, err := core.RunPhase1ForTest(m, s); err != nil || len(cv) == 0 {
				b.Fatalf("warmup: |cv|=%d err=%v", len(cv), err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, cv, _, err := core.RunPhase1ForTest(m, s); err != nil || len(cv) == 0 {
					b.Fatalf("|cv|=%d err=%v", len(cv), err)
				}
			}
		})
	}
}
