package core

import (
	"fmt"
	"time"

	"subgemini/internal/graph"
	"subgemini/internal/label"
	"subgemini/internal/stats"
	"subgemini/internal/trace"
)

const unmatched label.VID = -1

// phase2 carries the state of candidate verification (paper §IV).  The
// pattern-side arrays are dense and reset wholesale between candidates; the
// main-graph arrays are dense but sparsely populated, with a touched list so
// only the region a candidate actually explored is reset.
type phase2 struct {
	m   *Matcher
	pat *pattern
	rep *stats.Report

	sSpace, gSpace *label.Space
	uniq           *label.UniqueSource

	// Per-candidate templates: label/safety/match state with only the
	// pre-matched global nets filled in.
	sInitLab   []label.Value
	sInitSafe  []bool
	sInitMatch []label.VID

	// Live pattern-side state.
	sLab   []label.Value
	sSafe  []bool
	sMatch []label.VID

	// Live main-graph state.  Entries for global nets are set once at
	// construction and are never in the touched list, so candidate resets
	// and backtracking leave them intact.
	gLab   []label.Value
	gSafe  []bool
	gMatch []label.VID

	touched   []label.VID // main-graph vertices with candidate-local state
	inTouched []bool

	// gSafeList holds safe, non-fixed main-graph vertices: the spreading
	// frontier whose neighbors are relabeled each pass.
	gSafeList []label.VID

	// fixedS and fixedG mark pre-matched vertices (global nets and bound
	// ports / their targets): they contribute labels but never trigger
	// relabeling, are never reset, and never enter partitions.  fixedGList
	// records the main-graph entries so close can undo them in O(fixed).
	fixedS     []bool
	fixedG     []bool
	fixedGList []label.VID

	// pool/scr are set when the main-graph arrays above came from an
	// Options.Scratch pool; close returns them.
	pool *ScratchPool
	scr  *gscratch

	matched int // pattern vertices matched so far (globals excluded)

	// Scratch for simultaneous relabeling.
	sPendV []label.VID
	sPendL []label.Value
	gPendV []label.VID
	gPendL []label.Value
	mark   []uint32 // round marker per main-graph vertex
	markID uint32

	// Scratch for partitioning: (label, vid) pairs, sorted by label then
	// vid, walked as runs.  Reused across passes to avoid the allocation
	// churn of per-pass maps, and sorted so runs are deterministic.
	sPairs []labVID
	gPairs []labVID

	// tracer, when non-nil, records per-pass state for the Table-1-style
	// rendering (Options.TraceTable).
	tracer *tableTracer

	// snapPool recycles backtracking snapshots: guesses save and restore
	// strictly LIFO, so the pool is a stack of reusable buffers indexed by
	// snapDepth.
	snapPool  []*snapshot
	snapDepth int

	// cancelErr latches the first non-nil Options.Cancel result observed
	// inside the solve recursion; once set, solve and guess unwind without
	// doing further work and the caller must abandon the run.
	cancelErr error
}

// p2CancelStride is how many solve passes run between Options.Cancel polls.
// A pass does at least O(pattern) work, so the stride bounds the work
// between polls without putting the callback on the per-pass hot path.
const p2CancelStride = 32

type labVID struct {
	lab label.Value
	vid label.VID
}

func newPhase2(m *Matcher, pat *pattern, rep *stats.Report) (*phase2, error) {
	p := &phase2{
		m: m, pat: pat, rep: rep,
		sSpace: pat.space,
		gSpace: m.gSpace,
		uniq:   label.NewUniqueSource(m.opts.Seed),
	}
	sn, gn := p.sSpace.Size(), p.gSpace.Size()
	p.sInitLab = make([]label.Value, sn)
	p.sInitSafe = make([]bool, sn)
	p.sInitMatch = make([]label.VID, sn)
	p.sLab = make([]label.Value, sn)
	p.sSafe = make([]bool, sn)
	p.sMatch = make([]label.VID, sn)
	p.fixedS = make([]bool, sn)
	for i := range p.sInitMatch {
		p.sInitMatch[i] = unmatched
	}
	if sp := m.opts.Scratch; sp != nil {
		// Adopt recycled main-graph arrays; the pool's clean-state
		// invariant stands in for the zeroing below.
		p.pool = sp
		p.scr = sp.get(gn)
		p.gLab = p.scr.gLab
		p.gSafe = p.scr.gSafe
		p.gMatch = p.scr.gMatch
		p.inTouched = p.scr.inTouched
		p.mark = p.scr.mark
		p.fixedG = p.scr.fixedG
		p.markID = p.scr.markID
		p.touched = p.scr.touched[:0]
		p.gSafeList = p.scr.gSafeList[:0]
		p.gPendV = p.scr.gPendV[:0]
		p.gPendL = p.scr.gPendL[:0]
		p.gPairs = p.scr.gPairs[:0]
	} else {
		p.gLab = make([]label.Value, gn)
		p.gSafe = make([]bool, gn)
		p.gMatch = make([]label.VID, gn)
		p.inTouched = make([]bool, gn)
		p.mark = make([]uint32, gn)
		p.fixedG = make([]bool, gn)
		for i := range p.gMatch {
			p.gMatch[i] = unmatched
		}
	}
	if err := p.initPrematch(); err != nil {
		p.close()
		return nil, err
	}
	return p, nil
}

// initPrematch pre-matches global nets by name (paper §V.A) and bound
// ports to their targets.  A pattern global or bind target with no
// counterpart in the main graph means no instance can exist.
func (p *phase2) initPrematch() error {
	m, pat := p.m, p.pat
	prematch := func(n *graph.Net, gn *graph.Net, lab label.Value) error {
		sv, gv := p.sSpace.NetVID(n), p.gSpace.NetVID(gn)
		if p.gMatch[gv] != unmatched {
			// Two pre-matched pattern nets demand the same image (e.g. a
			// port bound to a net that is also the pattern's global).  Net
			// maps are injective, so no instance can satisfy this.
			return fmt.Errorf("core: net %q would be the image of two pattern nets (%s and %s)",
				gn.Name, p.sSpace.Name(p.gMatch[gv]), n.Name)
		}
		p.sInitLab[sv] = lab
		p.sInitSafe[sv] = true
		p.sInitMatch[sv] = gv
		p.fixedS[sv] = true
		p.gLab[gv] = lab
		p.gSafe[gv] = true
		p.gMatch[gv] = sv
		p.fixedG[gv] = true
		p.fixedGList = append(p.fixedGList, gv)
		return nil
	}
	for _, n := range pat.s.Nets {
		switch {
		case n.Global:
			gn := m.g.NetByName(n.Name)
			if gn == nil {
				return fmt.Errorf("core: pattern global net %q absent from circuit %s", n.Name, m.g.Name)
			}
			if !gn.Global {
				return fmt.Errorf("core: net %q is global in the pattern but not in circuit %s", n.Name, m.g.Name)
			}
			if err := prematch(n, gn, label.GlobalLabel(n.Name)); err != nil {
				return err
			}
		case pat.bind[n] != "":
			target := pat.bind[n]
			gn := m.g.NetByName(target)
			if gn == nil {
				return fmt.Errorf("core: bind target net %q absent from circuit %s", target, m.g.Name)
			}
			if gn.Degree() < n.Degree() {
				return fmt.Errorf("core: bind target %q has degree %d, pattern port %q needs at least %d",
					target, gn.Degree(), n.Name, n.Degree())
			}
			if err := prematch(n, gn, label.BindLabel(target)); err != nil {
				return err
			}
		}
	}
	return nil
}

// close releases pooled scratch, restoring the pool's clean-state
// invariant in O(touched + fixed) time.  It is a no-op when the state was
// freshly allocated, and must be called once a pooled phase2 is done (Find
// and FindParallel defer it).
func (p *phase2) close() {
	if p.pool == nil {
		return
	}
	for _, v := range p.touched {
		p.gLab[v] = 0
		p.gSafe[v] = false
		p.gMatch[v] = unmatched
		p.inTouched[v] = false
	}
	for _, v := range p.fixedGList {
		p.gLab[v] = 0
		p.gSafe[v] = false
		p.gMatch[v] = unmatched
		p.fixedG[v] = false
	}
	p.scr.markID = p.markID
	p.scr.touched = p.touched[:0]
	p.scr.gSafeList = p.gSafeList[:0]
	p.scr.gPendV = p.gPendV[:0]
	p.scr.gPendL = p.gPendL[:0]
	p.scr.gPairs = p.gPairs[:0]
	p.pool.put(p.scr)
	p.pool, p.scr = nil, nil
}

// reset prepares the per-candidate state.
func (p *phase2) reset() {
	copy(p.sLab, p.sInitLab)
	copy(p.sSafe, p.sInitSafe)
	copy(p.sMatch, p.sInitMatch)
	for _, v := range p.touched {
		p.gLab[v] = 0
		p.gSafe[v] = false
		p.gMatch[v] = unmatched
		p.inTouched[v] = false
	}
	p.touched = p.touched[:0]
	p.gSafeList = p.gSafeList[:0]
	p.matched = 0
}

// touch registers candidate-local state on a main-graph vertex.
func (p *phase2) touch(v label.VID) {
	if !p.inTouched[v] {
		p.inTouched[v] = true
		p.touched = append(p.touched, v)
	}
}

// consumedDev reports whether a main-graph vertex is a device already
// claimed by a previous instance under the NonOverlapping policy.
func (p *phase2) consumedDev(v label.VID) bool {
	return p.gSpace.IsDevice(v) && p.m.consumed[v]
}

// match records s ↔ g as matched: both receive the same fresh unique label
// (the paper's "random, unique label"), become safe, and are frozen.
func (p *phase2) match(sv, gv label.VID) {
	lab := p.uniq.Next()
	p.sLab[sv] = lab
	p.sSafe[sv] = true
	p.sMatch[sv] = gv
	p.touch(gv)
	p.gLab[gv] = lab
	p.gSafe[gv] = true
	p.gMatch[gv] = sv
	if !p.fixedG[gv] {
		p.gSafeList = append(p.gSafeList, gv)
	}
	p.matched++
}

// verifyCandidate postulates c = image(key) and runs the Phase II search.
// It returns a verified instance, or nil when c is a false candidate.
// With a Tracer installed, every examined candidate emits one
// KindPhase2Candidate event carrying its outcome and cost; the untraced
// path pays nothing.
func (p *phase2) verifyCandidate(key, c label.VID) *Instance {
	etr := p.m.opts.Tracer
	if etr == nil {
		return p.verify(key, c)
	}
	start := time.Now()
	passes0, guesses0, backtracks0 := p.rep.Phase2Passes, p.rep.Guesses, p.rep.Backtracks
	inst := p.verify(key, c)
	etr.Event(trace.Event{
		Kind:       trace.KindPhase2Candidate,
		Candidate:  p.gSpace.Name(c),
		Matched:    inst != nil,
		Passes:     p.rep.Phase2Passes - passes0,
		Guesses:    p.rep.Guesses - guesses0,
		Backtracks: p.rep.Backtracks - backtracks0,
		DurationNS: time.Since(start).Nanoseconds(),
	})
	return inst
}

// cancelled exposes the solve-internal cancellation latch (phase2Engine).
func (p *phase2) cancelled() error { return p.cancelErr }

// verify is the untraced body of verifyCandidate.
func (p *phase2) verify(key, c label.VID) *Instance {
	if p.consumedDev(c) {
		return nil
	}
	if p.fixedG[c] {
		// A fixed vertex is pre-matched by name and can never be the image
		// of the (never-fixed) key; matching it here would corrupt its fixed
		// state on reset.  Phase I keeps fixed vertices out of the candidate
		// vector, so this guard is defensive.
		return nil
	}
	if p.sSpace.IsDevice(key) != p.gSpace.IsDevice(c) {
		return nil
	}
	if p.sSpace.IsDevice(key) && !p.compatible(key, c) {
		return nil
	}
	p.reset()
	if w := p.m.opts.TraceTable; w != nil {
		p.tracer = newTableTracer(p, p.gSpace.Name(c))
		defer func() {
			verdict := "no match"
			if p.matched == p.pat.required {
				verdict = "MATCH"
			}
			p.tracer.render(w, verdict)
			p.tracer = nil
		}()
	}
	p.match(key, c)
	if p.tracer != nil {
		p.tracer.snapshot()
	}
	if !p.solve(0) {
		return nil
	}
	return p.buildInstance()
}

// solve runs the relabel / check / mark-safe / match loop until every
// pattern vertex is matched, guessing on stalls (paper §IV algorithm
// VerifyImage).  Options.Cancel is polled every p2CancelStride passes, at
// any recursion depth, so even a single pathological candidate (deep
// symmetric guessing, the exponential-tail case) honors its deadline; a
// cancelled solve returns false with p.cancelErr set.
func (p *phase2) solve(depth int) bool {
	for {
		if p.cancelErr != nil {
			return false
		}
		p.rep.Phase2Passes++
		if p.rep.Phase2Passes%p2CancelStride == 0 && p.m.opts.Cancel != nil {
			if err := p.m.opts.Cancel(); err != nil {
				p.cancelErr = err
				return false
			}
		}
		p.relabelRound()
		progress, ok := p.partitionRound()
		if p.tracer != nil {
			p.tracer.snapshot()
		}
		if !ok {
			return false
		}
		if p.matched == p.pat.required {
			p.rep.VerifyCalls++
			return p.verifyMapping()
		}
		if !progress {
			return p.guess(depth)
		}
	}
}

// relabelRound simultaneously relabels, on both sides, every unmatched
// vertex adjacent to at least one safe non-global vertex, accumulating
// contributions from safe neighbors only (Label Invariant 2).  A device's
// first label folds in its type; image devices share types, so the fold is
// consistent across the two graphs.
func (p *phase2) relabelRound() {
	// Pattern side: the graph is small, iterate everything.
	p.sPendV = p.sPendV[:0]
	p.sPendL = p.sPendL[:0]
	for v := 0; v < p.sSpace.Size(); v++ {
		vid := label.VID(v)
		if p.sMatch[vid] != unmatched || p.fixedS[vid] {
			continue
		}
		newLab, triggered := p.relabelS(vid)
		if triggered {
			p.sPendV = append(p.sPendV, vid)
			p.sPendL = append(p.sPendL, newLab)
		}
	}
	// Main-graph side: visit only the neighbors of the safe frontier.  The
	// neighbor iteration is inlined (rather than using a callback) because
	// this is the hottest loop of Phase II.
	p.markID++
	p.gPendV = p.gPendV[:0]
	p.gPendL = p.gPendL[:0]
	visit := func(nv label.VID) {
		if p.mark[nv] == p.markID {
			return
		}
		p.mark[nv] = p.markID
		if p.gMatch[nv] != unmatched || p.fixedG[nv] || p.consumedDev(nv) {
			return
		}
		newLab, triggered := p.relabelG(nv)
		if triggered {
			p.gPendV = append(p.gPendV, nv)
			p.gPendL = append(p.gPendL, newLab)
		}
	}
	for _, sv := range p.gSafeList {
		if p.gSpace.IsDevice(sv) {
			for _, pin := range p.gSpace.Device(sv).Pins {
				visit(p.gSpace.NetVID(pin.Net))
			}
		} else {
			for _, conn := range p.gSpace.Net(sv).Conns {
				visit(p.gSpace.DevVID(conn.Dev))
			}
		}
	}
	for i, v := range p.sPendV {
		p.sLab[v] = p.sPendL[i]
	}
	for i, v := range p.gPendV {
		p.touch(v)
		p.gLab[v] = p.gPendL[i]
	}
}

// relabelS computes the would-be new label of pattern vertex v and whether
// it has a safe non-global neighbor (the trigger condition).
func (p *phase2) relabelS(v label.VID) (label.Value, bool) {
	acc := p.sLab[v]
	triggered := false
	if p.sSpace.IsDevice(v) {
		d := p.sSpace.Device(v)
		if acc == 0 && !p.pat.wildcards {
			acc = p.m.typeLabel(d.Type)
		}
		for _, pin := range d.Pins {
			nv := p.sSpace.NetVID(pin.Net)
			if !p.sSafe[nv] {
				continue
			}
			acc = label.Combine(acc, pin.Class, p.sLab[nv])
			if !p.fixedS[nv] {
				triggered = true
			}
		}
	} else {
		n := p.sSpace.Net(v)
		for _, conn := range n.Conns {
			dv := p.sSpace.DevVID(conn.Dev)
			if !p.sSafe[dv] {
				continue
			}
			acc = label.Combine(acc, conn.Dev.Pins[conn.Pin].Class, p.sLab[dv])
			triggered = true
		}
	}
	return acc, triggered
}

// relabelG is relabelS on the main-graph side; the two must apply the exact
// same rule for Invariant 2 to hold.
func (p *phase2) relabelG(v label.VID) (label.Value, bool) {
	acc := p.gLab[v]
	triggered := false
	if p.gSpace.IsDevice(v) {
		d := p.gSpace.Device(v)
		if acc == 0 && !p.pat.wildcards {
			acc = p.m.typeLabel(d.Type)
		}
		for _, pin := range d.Pins {
			nv := p.gSpace.NetVID(pin.Net)
			if !p.gSafe[nv] {
				continue
			}
			acc = label.Combine(acc, pin.Class, p.gLab[nv])
			if !p.fixedG[nv] {
				triggered = true
			}
		}
	} else {
		n := p.gSpace.Net(v)
		for _, conn := range n.Conns {
			dv := p.gSpace.DevVID(conn.Dev)
			if !p.gSafe[dv] {
				continue
			}
			acc = label.Combine(acc, conn.Dev.Pins[conn.Pin].Class, p.gLab[dv])
			triggered = true
		}
	}
	return acc, triggered
}

// partitionRound groups unmatched labeled vertices by label on both sides,
// fails the candidate when a main-graph partition is smaller than the
// same-label pattern partition, marks equal-sized partitions safe, and
// matches singleton pairs.  It reports whether anything progressed.
//
// Partitions are materialized as label-sorted (label, vid) pair lists
// walked in lockstep, which is allocation-free across passes and makes the
// iteration order (and therefore the whole run) deterministic.
func (p *phase2) partitionRound() (progress, ok bool) {
	p.collectPairs()
	si, gi := 0, 0
	for si < len(p.sPairs) {
		lab := p.sPairs[si].lab
		sEnd := si + 1
		for sEnd < len(p.sPairs) && p.sPairs[sEnd].lab == lab {
			sEnd++
		}
		// Advance the main-graph list to this label.
		for gi < len(p.gPairs) && p.gPairs[gi].lab < lab {
			gi++
		}
		gStart := gi
		for gi < len(p.gPairs) && p.gPairs[gi].lab == lab {
			gi++
		}
		cs, cg := sEnd-si, gi-gStart
		if cg < cs {
			return false, false
		}
		if cg == cs {
			// Equal-sized partitions are safe (paper §IV): assuming an
			// instance exists at this candidate, the main-graph partition
			// contains only images.  A wrong assumption at a false
			// candidate is caught later by a consistency failure or by
			// verifyMapping.
			for k := si; k < sEnd; k++ {
				if v := p.sPairs[k].vid; !p.sSafe[v] {
					p.sSafe[v] = true
					progress = true
				}
			}
			for k := gStart; k < gi; k++ {
				if v := p.gPairs[k].vid; !p.gSafe[v] {
					p.gSafe[v] = true
					p.gSafeList = append(p.gSafeList, v)
					progress = true
				}
			}
			if cs == 1 {
				sv, gv := p.sPairs[si].vid, p.gPairs[gStart].vid
				if !p.compatible(sv, gv) {
					// A structural impossibility surfaced by a label
					// collision: treat as a failed candidate.
					return false, false
				}
				p.match(sv, gv)
				progress = true
			}
		}
		si = sEnd
	}
	return progress, true
}

// collectPairs rebuilds the sorted (label, vid) pair lists for both sides.
func (p *phase2) collectPairs() {
	p.sPairs = p.sPairs[:0]
	for v := 0; v < p.sSpace.Size(); v++ {
		vid := label.VID(v)
		if p.sMatch[vid] == unmatched && p.sLab[vid] != 0 {
			p.sPairs = append(p.sPairs, labVID{p.sLab[vid], vid})
		}
	}
	p.gPairs = p.gPairs[:0]
	for _, vid := range p.touched {
		if p.gMatch[vid] == unmatched && p.gLab[vid] != 0 && !p.consumedDev(vid) {
			p.gPairs = append(p.gPairs, labVID{p.gLab[vid], vid})
		}
	}
	sortPairs(p.sPairs)
	sortPairs(p.gPairs)
}

// sortPairs orders by label, then vid.  Pair lists are small (on the order
// of the pattern size plus its boundary), so a binary-insertion-friendly
// shell sort beats the allocation cost of sort.Slice here.
func sortPairs(a []labVID) {
	for gap := len(a) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(a); i++ {
			v := a[i]
			j := i
			for j >= gap && less(v, a[j-gap]) {
				a[j] = a[j-gap]
				j -= gap
			}
			a[j] = v
		}
	}
}

// gRun returns the slice of gPairs carrying the given label, using binary
// search over the sorted list.  Valid until the next collectPairs.
func (p *phase2) gRun(lab label.Value) []labVID {
	lo, hi := 0, len(p.gPairs)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.gPairs[mid].lab < lab {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	start := lo
	for lo < len(p.gPairs) && p.gPairs[lo].lab == lab {
		lo++
	}
	return p.gPairs[start:lo]
}

func less(x, y labVID) bool {
	if x.lab != y.lab {
		return x.lab < y.lab
	}
	return x.vid < y.vid
}

// compatible reports whether matching sv to gv is structurally plausible:
// device types and arities must agree, and net degrees must satisfy the
// image conditions (equal for internal pattern nets — the induced-subgraph
// requirement — and at least as large for ports).  Phase II labels carry no
// degree information, so checking here prunes false paths that would
// otherwise be discovered only by the final verification; the check is
// sound because every true image satisfies it by definition.
func (p *phase2) compatible(sv, gv label.VID) bool {
	if p.sSpace.IsDevice(sv) != p.gSpace.IsDevice(gv) {
		return false
	}
	if p.sSpace.IsDevice(sv) {
		sd, gd := p.sSpace.Device(sv), p.gSpace.Device(gv)
		if len(sd.Pins) != len(gd.Pins) {
			return false
		}
		return sd.Type == gd.Type || sd.Type == graph.WildcardType
	}
	if p.m.opts.AblateDegreeCheck {
		return true
	}
	sn, gn := p.sSpace.Net(sv), p.gSpace.Net(gv)
	if sn.Port {
		return gn.Degree() >= sn.Degree()
	}
	return gn.Degree() == sn.Degree()
}

// guess resolves a stall (paper Fig. 5): pick the unmatched pattern vertex
// whose label has the smallest main-graph partition and try each member in
// turn, backtracking on failure.
func (p *phase2) guess(depth int) bool {
	if depth >= p.m.opts.guessDepth() {
		p.m.opts.tracef("phase2: guess depth limit %d reached", depth)
		return false
	}
	// The sorted pair lists from the stalled partitionRound are current;
	// pick the unmatched pattern vertex whose label has the smallest
	// main-graph run.
	var bestS label.VID = -1
	bestSize := 0
	for v := 0; v < p.sSpace.Size(); v++ {
		vid := label.VID(v)
		if p.sMatch[vid] != unmatched || p.sLab[vid] == 0 {
			continue
		}
		size := len(p.gRun(p.sLab[vid]))
		if size == 0 {
			return false // an unmatched pattern vertex with no possible image
		}
		if bestS < 0 || size < bestSize {
			bestS, bestSize = vid, size
		}
	}
	if bestS < 0 {
		// Nothing left to guess but not everything matched: the pattern has
		// unlabeled vertices, which cannot happen for connected patterns.
		return false
	}
	cands := append([]labVID(nil), p.gRun(p.sLab[bestS])...)
	for _, cand := range cands {
		gv := cand.vid
		if !p.compatible(bestS, gv) {
			continue
		}
		snap := p.save()
		p.rep.Guesses++
		p.match(bestS, gv)
		if p.solve(depth + 1) {
			p.release()
			return true
		}
		p.rep.Backtracks++
		p.restore(snap)
		p.release()
		if p.cancelErr != nil {
			// The failed solve was a cancellation, not a refutation: stop
			// trying alternatives and unwind the whole recursion.
			return false
		}
	}
	return false
}

// snapshot captures the candidate-local state for backtracking.
type snapshot struct {
	sLab    []label.Value
	sSafe   []bool
	sMatch  []label.VID
	touched []label.VID
	gLab    []label.Value
	gSafe   []bool
	gMatch  []label.VID
	safeLen int
	matched int
}

func (p *phase2) save() *snapshot {
	var sn *snapshot
	if p.snapDepth < len(p.snapPool) {
		sn = p.snapPool[p.snapDepth]
	} else {
		sn = &snapshot{}
		p.snapPool = append(p.snapPool, sn)
	}
	p.snapDepth++
	sn.sLab = append(sn.sLab[:0], p.sLab...)
	sn.sSafe = append(sn.sSafe[:0], p.sSafe...)
	sn.sMatch = append(sn.sMatch[:0], p.sMatch...)
	sn.touched = append(sn.touched[:0], p.touched...)
	sn.safeLen = len(p.gSafeList)
	sn.matched = p.matched
	sn.gLab = sn.gLab[:0]
	sn.gSafe = sn.gSafe[:0]
	sn.gMatch = sn.gMatch[:0]
	for _, v := range sn.touched {
		sn.gLab = append(sn.gLab, p.gLab[v])
		sn.gSafe = append(sn.gSafe, p.gSafe[v])
		sn.gMatch = append(sn.gMatch, p.gMatch[v])
	}
	return sn
}

// release returns the most recent snapshot to the pool; it must pair with
// save in LIFO order (which the guess recursion guarantees).
func (p *phase2) release() {
	p.snapDepth--
}

func (p *phase2) restore(sn *snapshot) {
	copy(p.sLab, sn.sLab)
	copy(p.sSafe, sn.sSafe)
	copy(p.sMatch, sn.sMatch)
	// Clear everything touched since the snapshot, then replay the
	// snapshot's values.
	for _, v := range p.touched {
		p.gLab[v] = 0
		p.gSafe[v] = false
		p.gMatch[v] = unmatched
		p.inTouched[v] = false
	}
	p.touched = p.touched[:0]
	for i, v := range sn.touched {
		p.inTouched[v] = true
		p.touched = append(p.touched, v)
		p.gLab[v] = sn.gLab[i]
		p.gSafe[v] = sn.gSafe[i]
		p.gMatch[v] = sn.gMatch[i]
	}
	p.gSafeList = p.gSafeList[:sn.safeLen]
	p.matched = sn.matched
}

// buildInstance converts the match arrays into an Instance.
func (p *phase2) buildInstance() *Instance {
	inst := &Instance{
		DevMap: make(map[*graph.Device]*graph.Device, p.pat.s.NumDevices()),
		NetMap: make(map[*graph.Net]*graph.Net, p.pat.s.NumNets()),
	}
	for _, d := range p.pat.s.Devices {
		gv := p.sMatch[p.sSpace.DevVID(d)]
		inst.DevMap[d] = p.gSpace.Device(gv)
	}
	for _, n := range p.pat.s.Nets {
		gv := p.sMatch[p.sSpace.NetVID(n)]
		inst.NetMap[n] = p.gSpace.Net(gv)
	}
	return inst
}
