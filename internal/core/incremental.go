package core

import (
	"fmt"
	"sort"
	"time"

	"subgemini/internal/csr"
	"subgemini/internal/graph"
	"subgemini/internal/label"
	"subgemini/internal/obs"
)

// This file implements incremental re-matching after circuit edits: given
// the captured state of a previous complete run and the dirty set of the
// edits applied since, FindIncremental re-runs Phase I labeling only over a
// bounded region around the dirty vertices and re-verifies only the Phase II
// candidates whose radius-r balls can intersect the dirty region, replaying
// every other candidate's outcome (including its unique-label draw count)
// from the capture.  Results are bit-identical to rebuilding and running the
// full matcher — TestIncrementalDifferential asserts instance-and-order
// equality against the Options.LegacyIncremental oracle.
//
// Why a bounded Phase I region suffices.  One relabeling pass propagates
// label information exactly one hop (a vertex's new label reads only its
// neighbors' labels), and global/bound vertices are barriers: their labels
// are name-derived and never relabeled, so no influence crosses them.  A
// complete previous run executed a pattern-determined sequence of E =
// prev.relabels passes — the sequence is determined by the pattern alone
// (main-graph data only ever *aborts* a run via consistency verdicts, and
// the previous run did not abort) — so a fresh full run on the edited
// circuit either executes the same E-pass sequence or aborts having proven
// zero instances.  By induction on passes, any vertex farther than E hops
// from every dirty vertex (through non-global paths) has the same label and
// prune-state trajectory as in the previous run.  The replay therefore:
//
//  1. seeds fresh initial labels inside the region ball(dirty, 2E+2) and
//     the previous run's *final* labels/states outside it;
//  2. re-runs the full pattern-driven pass sequence with main-graph work
//     restricted to the region worklists and consistency verdicts ignored
//     (a fresh-run verdict abort proves zero instances, which the exact
//     Phase II below reproduces by finding none);
//  3. observes that out-of-region staleness (final labels standing in for
//     stage-t labels) contaminates at most one hop inward per pass, so
//     after E passes the wrong values are confined to depths > E+2 while
//     the core (depth <= E+1) is exactly fresh;
//  4. restores vertices at depth >= E+2 to the previous finals — valid
//     because depth > E already implies fresh-final == previous-final —
//     leaving gLab/gState equal to the fresh run's completed-sequence
//     finals everywhere, from which the candidate vector is chosen.
//
// Why Phase II replay is sound.  A candidate c whose radius-r ball (the
// region engine's extraction, r = pattern eccentricity from the key) holds
// no dirty vertex sees a bit-identical ball: edits preserve the relative
// order of surviving pins and connections (graph.RemoveDevice and friends
// splice rather than rebuild), the index remap is monotone, and any changed
// or removed vertex on an old ball path would have left a surviving dirty
// vertex within distance r of c.  Identical balls drive identical
// relabel/partition/guess sequences, so the candidate draws the same number
// of unique labels and produces the same instance (remapped).  Replay skips
// the draws (label.UniqueSource.Skip) and rebuilds the instance from the
// captured image indices; candidates inside the dirty ball are re-verified
// for real, reading the same unique-label stream state a fresh run would.

// DirtySet describes the cumulative effect of the edits between two circuit
// versions, in terms the incremental matcher consumes.  internal/delta
// builds one per edit step and composes consecutive steps.
type DirtySet struct {
	// DevOld2New / NetOld2New map old vertex indices to new ones, -1 for
	// removed vertices.  Edits are monotone: adds append, removes compact
	// preserving order, so survivors never reorder.
	DevOld2New []int32
	NetOld2New []int32

	// DirtyDevs / DirtyNets list the new-space indices of every vertex
	// whose adjacency (or initial label) may differ from the old circuit:
	// added vertices, endpoints of added/removed/rewired edges, and nets
	// whose degree changed.
	DirtyDevs []int32
	DirtyNets []int32

	// Touched lists net names whose *identity* changed (added, removed, or
	// renamed nets).  Mere adjacency changes are not identity changes.  The
	// matcher falls back to a full run when a touched name is a pattern
	// global or a bind target, since those are matched by name.
	Touched []string
}

// candOutcome is the captured Phase II outcome of one candidate: how many
// unique labels its verification drew and, when it produced an instance,
// the image vertex indices per pattern device and net (pattern order).
type candOutcome struct {
	draws  uint64
	devIdx []int32 // nil when the candidate produced no instance
	netIdx []int32
}

// IncrementalState is the capture of one complete matching run against one
// circuit version, keyed externally by (circuit, version, pattern).  It is
// immutable after FindIncremental returns it and safe to share.
type IncrementalState struct {
	numDevs, numNets int
	globals          int // global net count at capture time (marks are monotone)
	complete         bool
	relabels         int // Phase I relabeling passes of the captured sequence
	gLab             []label.Value
	gState           []g1State
	keyVID           label.VID // -1 when the run had no key (empty CV)
	outcomes         map[int32]*candOutcome
}

// incReplayCap caps how large the Phase I replay region may grow relative
// to the whole graph before region bookkeeping stops paying for itself and
// the replay runs full Phase I instead (Phase II replay still applies).
// Variable so tests can force either path.
var incReplayCap = 0.5

// FindIncremental locates instances of pattern s like Find, reusing the
// previous capture prev and the dirty set ds when both are usable.  It
// returns the result plus a fresh capture for the next edit; the capture is
// nil when the run was cancelled or when options incompatible with capture
// were set (tracing, NonOverlapping, legacy engines, LegacyIncremental).
// prev/ds may be nil (first run against a circuit version): the run is then
// a full match that additionally captures.
func (m *Matcher) FindIncremental(s *graph.Circuit, prev *IncrementalState, ds *DirtySet) (*Result, *IncrementalState, error) {
	o := &m.opts
	if o.LegacyIncremental || o.LegacyPhase1 || o.LegacyPhase2 ||
		o.Policy == NonOverlapping || o.Tracer != nil || o.TraceTable != nil || o.Trace != nil {
		// Capture-incompatible options: NonOverlapping carries consumed
		// state across runs, the legacy engines bypass the region Phase II
		// whose draw accounting the capture needs, and tracing sinks expect
		// the plain event stream.  LegacyIncremental is the differential
		// oracle by definition.
		res, err := m.Find(s)
		if res != nil {
			res.Report.IncrementalMode = "legacy"
		}
		return res, nil, err
	}
	if s == nil {
		return nil, nil, fmt.Errorf("core: nil pattern")
	}
	// Same mutual global-marking preamble as Find, before compatibility is
	// judged: the global count below must reflect this run's marks.
	for _, n := range s.Globals() {
		m.markGlobal(n.Name)
	}
	for _, n := range m.g.Globals() {
		s.MarkGlobal(n.Name)
	}
	pat, err := newPattern(s, o)
	if err != nil {
		return nil, nil, err
	}
	if m.replayCompatible(pat, prev, ds) {
		return m.findReplay(pat, prev, ds)
	}
	return m.findCapture(pat)
}

// replayCompatible decides whether prev/ds support the replay path; any
// mismatch falls back to a full run with capture.
func (m *Matcher) replayCompatible(pat *pattern, prev *IncrementalState, ds *DirtySet) bool {
	if prev == nil || ds == nil || !prev.complete || prev.relabels <= 0 {
		return false
	}
	if prev.numDevs != len(ds.DevOld2New) || prev.numNets != len(ds.NetOld2New) {
		return false
	}
	if len(prev.gLab) != prev.numDevs+prev.numNets {
		return false
	}
	// Global marks are monotone and globals cannot be removed or renamed
	// (delta refuses both), so an equal count means the identical set; a
	// changed count means labels shifted in ways the capture cannot cover.
	globals := 0
	for _, n := range m.g.Nets {
		if n.Global {
			globals++
		}
	}
	if globals != prev.globals {
		return false
	}
	if len(ds.Touched) > 0 || len(pat.bind) > 0 {
		touched := make(map[string]bool, len(ds.Touched))
		for _, name := range ds.Touched {
			touched[name] = true
		}
		// Pattern globals and bind targets are matched by name; an identity
		// change of such a name invalidates name-derived labels.
		for _, n := range pat.s.Nets {
			if n.Global && touched[n.Name] {
				return false
			}
		}
		if len(pat.bind) > 0 {
			dirtyNet := make(map[int32]bool, len(ds.DirtyNets))
			for _, v := range ds.DirtyNets {
				dirtyNet[v] = true
			}
			for _, target := range pat.bind {
				if touched[target] {
					return false
				}
				// A dirty bind target changed degree or adjacency; the
				// bind degree checks and its Phase I barrier role depend
				// on both.
				if gn := m.g.NetByName(target); gn != nil && dirtyNet[int32(gn.Index)] {
					return false
				}
			}
		}
	}
	return true
}

// findCapture runs the full matcher like Find while recording the capture a
// later replay needs: the Phase I pass count and final labels/states, and
// per-candidate Phase II draw counts and instance images.  pat is already
// built and globals are already marked.
func (m *Matcher) findCapture(pat *pattern) (*Result, *IncrementalState, error) {
	res := &Result{}
	res.Report.IncrementalMode = "full"

	t0 := time.Now()
	p1Ref := obs.NoSpan
	if o := m.opts.Observe; o != nil {
		p1Ref = o.Begin(obs.KindPhase1, pat.s.Name)
	}
	p1 := newPhase1(m, pat, &res.Report)
	key, cv, err := p1.run()
	res.Report.Phase1Duration = time.Since(t0)
	if o := m.opts.Observe; o != nil {
		o.Attr(p1Ref, "mode", "full")
		o.AttrInt(p1Ref, "passes", int64(res.Report.Phase1Passes))
		o.AttrInt(p1Ref, "cv_size", int64(len(cv)))
		o.End(p1Ref)
	}
	if err != nil {
		res.Report.CancelledAt = "phase1"
		return res, nil, err
	}
	res.Report.CVSize = len(cv)
	return m.finishIncremental(pat, p1, key, cv, res, nil)
}

// replayCtx carries the Phase II replay inputs from findReplay into the
// shared candidate loop.
type replayCtx struct {
	prev     *IncrementalState
	ds       *DirtySet
	identity bool    // both remaps are identity: nothing removed, adds append
	devOldOf []int32 // new device index -> old, -1 when added (nil when identity)
	netOldOf []int32 // new net index -> old, -1 when added (nil when identity)
}

func isIdentityRemap(m []int32) bool {
	for i, v := range m {
		if v != int32(i) {
			return false
		}
	}
	return true
}

// newReplayCtx builds the inverse index maps of a dirty set.  The common
// edit shapes (rewires, pure adds) leave both remaps identity; the inverse
// maps are skipped entirely then.
func newReplayCtx(prev *IncrementalState, ds *DirtySet, nd, nn int) *replayCtx {
	rc := &replayCtx{prev: prev, ds: ds}
	if isIdentityRemap(ds.DevOld2New) && isIdentityRemap(ds.NetOld2New) {
		rc.identity = true
		return rc
	}
	rc.devOldOf = make([]int32, nd)
	rc.netOldOf = make([]int32, nn)
	for i := range rc.devOldOf {
		rc.devOldOf[i] = -1
	}
	for i := range rc.netOldOf {
		rc.netOldOf[i] = -1
	}
	for ov, nv := range ds.DevOld2New {
		if nv >= 0 {
			rc.devOldOf[nv] = int32(ov)
		}
	}
	for ov, nv := range ds.NetOld2New {
		if nv >= 0 {
			rc.netOldOf[nv] = int32(ov)
		}
	}
	return rc
}

// oldVID translates a new-space vid into the previous capture's vid space,
// or -1 for an added vertex.
func (rc *replayCtx) oldVID(c label.VID, nd int) int32 {
	if rc.identity {
		if int(c) < nd {
			if int(c) < rc.prev.numDevs {
				return int32(c)
			}
			return -1 // appended device
		}
		ni := int(c) - nd
		if ni >= rc.prev.numNets {
			return -1 // appended net
		}
		return int32(rc.prev.numDevs + ni)
	}
	if int(c) < nd {
		return rc.devOldOf[c]
	}
	ov := rc.netOldOf[int(c)-nd]
	if ov < 0 {
		return -1
	}
	return int32(rc.prev.numDevs) + ov
}

// remapped translates a captured outcome into the new vertex space.  With
// identity remaps the capture is shared as-is (outcomes are immutable);
// otherwise see remapOutcome.
func (rc *replayCtx) remapped(prev *candOutcome) *candOutcome {
	if rc.identity {
		return prev
	}
	return remapOutcome(prev, rc.ds)
}

// findReplay is the incremental path: region-scoped Phase I, then the
// candidate loop with Phase II outcome replay.
func (m *Matcher) findReplay(pat *pattern, prev *IncrementalState, ds *DirtySet) (*Result, *IncrementalState, error) {
	res := &Result{}
	res.Report.IncrementalMode = "replay"
	res.Report.DirtyVertices = len(ds.DirtyDevs) + len(ds.DirtyNets)

	nd, nn := m.g.NumDevices(), m.g.NumNets()
	rc := newReplayCtx(prev, ds, nd, nn)

	t0 := time.Now()
	p1Ref := obs.NoSpan
	if o := m.opts.Observe; o != nil {
		p1Ref = o.Begin(obs.KindPhase1, pat.s.Name)
		o.Attr(p1Ref, "mode", "replay")
		o.AttrInt(p1Ref, "dirty", int64(res.Report.DirtyVertices))
	}
	p1 := newPhase1(m, pat, &res.Report)
	gn := p1.gSpace.Size()

	// Previous finals translated into the new vertex space.  Added vertices
	// (no old counterpart) hold zero values that are never read: every
	// added vertex is dirty, hence in the region core, hence recomputed.
	prevLab := make([]label.Value, gn)
	prevState := make([]g1State, gn)
	if rc.identity {
		// Surviving vertices keep their indices; the old device and net
		// blocks land as two bulk copies (appended vertices past them are
		// dirty and recomputed, their zero values are never read).
		pd := prev.numDevs
		copy(prevLab[:pd], prev.gLab[:pd])
		copy(prevLab[nd:], prev.gLab[pd:])
		copy(prevState[:pd], prev.gState[:pd])
		copy(prevState[nd:], prev.gState[pd:])
	} else {
		for ov, nv := range ds.DevOld2New {
			if nv >= 0 {
				prevLab[nv] = prev.gLab[ov]
				prevState[nv] = prev.gState[ov]
			}
		}
		for ov, nv := range ds.NetOld2New {
			if nv >= 0 {
				prevLab[nd+int(nv)] = prev.gLab[prev.numDevs+ov]
				prevState[nd+int(nv)] = prev.gState[prev.numDevs+ov]
			}
		}
	}

	// The replay region: ball(dirty, 2E+2) through non-global vertices.
	e := prev.relabels
	depth, region := dirtyRegion(p1.gCSR, p1.gState, ds, nd, 2*e+2)
	var key label.VID
	var cv []label.VID
	if float64(len(region)) > incReplayCap*float64(gn) {
		// Degradation: the region covers most of the graph, so region
		// bookkeeping saves nothing.  Run full Phase I (exact, and the
		// capture falls out naturally); Phase II replay still applies.
		var err error
		key, cv, err = p1.run()
		res.Report.Phase1Duration = time.Since(t0)
		if o := m.opts.Observe; o != nil {
			o.Attr(p1Ref, "degraded", "true")
			o.AttrInt(p1Ref, "cv_size", int64(len(cv)))
			o.End(p1Ref)
		}
		if err != nil {
			res.Report.CancelledAt = "phase1"
			return res, nil, err
		}
	} else {
		// Out-of-region vertices hold the previous finals; region vertices
		// keep their fresh initial labels.  Worklists shrink to the region.
		for v := 0; v < gn; v++ {
			if depth[v] < 0 && p1.gState[v] != g1Global {
				p1.gLab[v] = prevLab[v]
				p1.gState[v] = prevState[v]
			}
		}
		regDev := make([]int32, 0, len(region))
		regNet := make([]int32, 0, len(region))
		for _, v := range region {
			if int(v) < nd {
				regDev = append(regDev, v)
			} else {
				regNet = append(regNet, v)
			}
		}
		sort.Slice(regDev, func(i, j int) bool { return regDev[i] < regDev[j] })
		sort.Slice(regNet, func(i, j int) bool { return regNet[i] < regNet[j] })
		p1.gActDev, p1.gActNet = regDev, regNet

		if err := p1.runRegion(); err != nil {
			res.Report.Phase1Duration = time.Since(t0)
			res.Report.CancelledAt = "phase1"
			if o := m.opts.Observe; o != nil {
				o.End(p1Ref)
			}
			return res, nil, err
		}
		// Depths beyond E+1 may be contaminated by the frozen boundary;
		// their fresh finals provably equal the previous finals, so restore
		// them.  Depths <= E+1 are exactly fresh.  gLab/gState now equal
		// the fresh full run's completed-sequence finals everywhere.
		for _, v := range region {
			if int(depth[v]) >= e+2 {
				p1.gLab[v] = prevLab[v]
				p1.gState[v] = prevState[v]
			}
		}
		// Candidate choice scans the full active sets.
		gnd := p1.gSpace.NumDevices()
		actDev := make([]int32, 0, gnd)
		actNet := make([]int32, 0, gn-gnd)
		for v := 0; v < gnd; v++ {
			if p1.gState[v] == g1Active {
				actDev = append(actDev, int32(v))
			}
		}
		for v := gnd; v < gn; v++ {
			if p1.gState[v] == g1Active {
				actNet = append(actNet, int32(v))
			}
		}
		p1.gActDev, p1.gActNet = actDev, actNet
		key, cv = p1.chooseCandidates()
		res.Report.Phase1Duration = time.Since(t0)
		if o := m.opts.Observe; o != nil {
			o.AttrInt(p1Ref, "region", int64(len(region)))
			o.AttrInt(p1Ref, "cv_size", int64(len(cv)))
			o.End(p1Ref)
		}
	}
	res.Report.CVSize = len(cv)
	return m.finishIncremental(pat, p1, key, cv, res, rc)
}

// runRegion executes the pattern-driven pass sequence of run() with two
// differences: consistency verdicts are ignored (the main-graph counts are
// region-local and meaningless; a fresh-run abort would only prove zero
// instances, which Phase II reproduces) and no tracing hooks fire (capture-
// compatible runs exclude them).  Main-graph work runs over whatever
// worklists the caller installed.
func (p *phase1) runRegion() error {
	p.rep.Phase1Workers = p.workers
	if err := p.m.opts.cancelled(); err != nil {
		return err
	}
	p.consistency(false)
	p.consistency(true)
	maxRounds := p.sSpace.Size() + 8
	prevSig := p.partitionSignature()
	for round := 0; round < maxRounds; round++ {
		if err := p.m.opts.cancelled(); err != nil {
			return err
		}
		p.rep.Phase1Passes++
		p.relabelNets()
		if p.cancelErr != nil {
			return p.cancelErr
		}
		p.corruptNets()
		p.consistency(false)
		if p.allCorrupt(false) {
			break
		}
		p.relabelDevices()
		if p.cancelErr != nil {
			return p.cancelErr
		}
		p.corruptDevices()
		p.consistency(true)
		if p.allCorrupt(true) {
			break
		}
		sig := p.partitionSignature()
		if sig == prevSig {
			break
		}
		prevSig = sig
	}
	p.seqComplete = true
	return nil
}

// dirtyRegion BFS-expands the dirty set to the given radius over the CSR
// view, treating global (and bound) vertices as barriers: their labels are
// fixed, so no label influence enters or crosses them.  It returns the
// depth array (-1 outside the region) and the region's vertices in
// discovery order.
func dirtyRegion(g *csr.Graph, gState []g1State, ds *DirtySet, nd, radius int) (depth []int32, region []int32) {
	depth = make([]int32, g.Size())
	for i := range depth {
		depth[i] = -1
	}
	region = make([]int32, 0, len(ds.DirtyDevs)+len(ds.DirtyNets))
	seed := func(v int32) {
		if depth[v] < 0 && gState[v] != g1Global {
			depth[v] = 0
			region = append(region, v)
		}
	}
	for _, v := range ds.DirtyDevs {
		seed(v)
	}
	for _, v := range ds.DirtyNets {
		seed(v + int32(nd))
	}
	for head := 0; head < len(region); head++ {
		v := region[head]
		if int(depth[v]) >= radius {
			continue
		}
		for e := g.Start[v]; e < g.Start[v+1]; e++ {
			nv := g.Adj[e]
			if depth[nv] >= 0 || gState[nv] == g1Global {
				continue
			}
			depth[nv] = depth[v] + 1
			region = append(region, nv)
		}
	}
	return depth, region
}

// finishIncremental runs the Phase II candidate loop — replaying captured
// outcomes where the replay context allows — and assembles the new capture.
// It mirrors Find's candidate loop exactly (MatchAll semantics; the other
// policies took the legacy path).
func (m *Matcher) finishIncremental(pat *pattern, p1 *phase1, key label.VID, cv []label.VID, res *Result, rc *replayCtx) (*Result, *IncrementalState, error) {
	nd := m.g.NumDevices()
	state := &IncrementalState{
		numDevs:  nd,
		numNets:  m.g.NumNets(),
		complete: p1.seqComplete,
		relabels: p1.relabelEvents,
		keyVID:   -1,
		outcomes: make(map[int32]*candOutcome, len(cv)),
	}
	for _, n := range m.g.Nets {
		if n.Global {
			state.globals++
		}
	}

	if len(cv) == 0 {
		state.gLab = append([]label.Value(nil), p1.gLab...)
		state.gState = append([]g1State(nil), p1.gState...)
		return res, state, nil
	}
	res.Report.KeyVertex = pat.space.Name(key)
	res.Report.KeyIsDevice = pat.space.IsDevice(key)
	state.keyVID = key

	t1 := time.Now()
	p2Ref := obs.NoSpan
	if o := m.opts.Observe; o != nil {
		p2Ref = o.Begin(obs.KindPhase2, pat.s.Name)
	}
	p2, err := m.newPhase2Engine(pat, key, &res.Report)
	if err != nil {
		// The pattern references a global net absent from G: no instance
		// can exist (same contract as Find).
		res.Report.Phase2Duration = time.Since(t1)
		if o := m.opts.Observe; o != nil {
			o.End(p2Ref)
		}
		state.gLab = append([]label.Value(nil), p1.gLab...)
		state.gState = append([]g1State(nil), p1.gState...)
		return res, state, nil
	}
	defer p2.close()
	reg := p2.(*p2region) // legacy options were excluded up front

	// The Phase II dirty ball: candidates within the pattern radius of a
	// dirty vertex must be re-verified, everything else replays.
	var inA []bool
	keySame := false
	if rc != nil {
		inA = phase2DirtyBall(reg.g, reg.fixedGvid, rc.ds, nd, reg.radius)
		// Pattern VIDs are index-derived, so a structurally identical
		// pattern yields the same key VID; a different key changes every
		// candidate's search even far from the edits.
		keySame = rc.prev.keyVID == key
	}

	seen := make(map[string]bool)
	var sigBuf []int
	for _, c := range cv {
		if m.opts.MaxInstances > 0 && len(res.Instances) >= m.opts.MaxInstances {
			break
		}
		if err := m.opts.cancelled(); err != nil {
			res.Report.CancelledAt = "phase2"
			res.Report.Phase2Duration = time.Since(t1)
			if o := m.opts.Observe; o != nil {
				o.End(p2Ref)
			}
			return res, nil, err
		}
		res.Report.Candidates++
		var inst *Instance
		var oc *candOutcome
		if keySame && !inA[c] {
			if ov := rc.oldVID(c, nd); ov >= 0 {
				if prevOC, ok := rc.prev.outcomes[ov]; ok {
					oc = rc.remapped(prevOC)
				}
			}
		}
		if oc != nil {
			// Replay: advance the unique-label stream exactly as the
			// verification would have and rebuild the instance from the
			// captured images.
			reg.uniq.Skip(oc.draws)
			res.Report.Replayed++
			inst = m.instanceFromOutcome(pat, oc)
		} else {
			d0 := reg.uniq.Draws()
			inst = p2.verifyCandidate(key, c)
			if err := p2.cancelled(); err != nil {
				res.Report.CancelledAt = "phase2"
				res.Report.Phase2Duration = time.Since(t1)
				if o := m.opts.Observe; o != nil {
					o.End(p2Ref)
				}
				return res, nil, err
			}
			res.Report.Recomputed++
			oc = m.outcomeFromInstance(pat, inst, reg.uniq.Draws()-d0)
		}
		state.outcomes[int32(c)] = oc
		if inst == nil {
			continue
		}
		res.Report.CandidatesMatched++
		var sig string
		sig, sigBuf = inst.signature(sigBuf)
		if !seen[sig] {
			seen[sig] = true
			res.Instances = append(res.Instances, inst)
			res.Report.Instances++
			res.Report.MatchedDevices += len(inst.DevMap)
		}
	}
	res.Report.Phase2Duration = time.Since(t1)
	if o := m.opts.Observe; o != nil {
		o.AttrInt(p2Ref, "candidates", int64(res.Report.Candidates))
		o.AttrInt(p2Ref, "replayed", int64(res.Report.Replayed))
		o.AttrInt(p2Ref, "recomputed", int64(res.Report.Recomputed))
		o.AttrInt(p2Ref, "instances", int64(res.Report.Instances))
		o.End(p2Ref)
	}
	state.gLab = append([]label.Value(nil), p1.gLab...)
	state.gState = append([]g1State(nil), p1.gState...)
	return res, state, nil
}

// phase2DirtyBall marks every vertex within radius hops of a dirty vertex,
// through paths that avoid the fixed (global/bound) vertices — the same
// traversal rule as the region engine's ball extraction, so a candidate
// outside the ball extracts a region that cannot contain a dirty vertex.
func phase2DirtyBall(g *csr.Graph, fixed []int32, ds *DirtySet, nd, radius int) []bool {
	inA := make([]bool, g.Size())
	isFixed := make([]bool, g.Size())
	for _, gv := range fixed {
		isFixed[gv] = true
	}
	depth := make([]int32, g.Size())
	queue := make([]int32, 0, len(ds.DirtyDevs)+len(ds.DirtyNets))
	seed := func(v int32) {
		if !inA[v] && !isFixed[v] {
			inA[v] = true
			depth[v] = 0
			queue = append(queue, v)
		}
	}
	for _, v := range ds.DirtyDevs {
		seed(v)
	}
	for _, v := range ds.DirtyNets {
		seed(v + int32(nd))
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		if int(depth[v]) >= radius {
			continue
		}
		for e := g.Start[v]; e < g.Start[v+1]; e++ {
			nv := g.Adj[e]
			if inA[nv] || isFixed[nv] {
				continue
			}
			inA[nv] = true
			depth[nv] = depth[v] + 1
			queue = append(queue, nv)
		}
	}
	return inA
}

// outcomeFromInstance captures a freshly verified candidate's outcome.
func (m *Matcher) outcomeFromInstance(pat *pattern, inst *Instance, draws uint64) *candOutcome {
	oc := &candOutcome{draws: draws}
	if inst == nil {
		return oc
	}
	oc.devIdx = make([]int32, len(pat.s.Devices))
	oc.netIdx = make([]int32, len(pat.s.Nets))
	for i, d := range pat.s.Devices {
		oc.devIdx[i] = int32(inst.DevMap[d].Index)
	}
	for i, n := range pat.s.Nets {
		oc.netIdx[i] = int32(inst.NetMap[n].Index)
	}
	return oc
}

// remapOutcome translates a captured outcome into the new vertex space, or
// returns nil when any image vertex was removed (the candidate must then be
// re-verified; with a clean ball this cannot happen, but the guard keeps a
// stale capture from resurrecting deleted vertices).
func remapOutcome(prev *candOutcome, ds *DirtySet) *candOutcome {
	if prev.devIdx == nil {
		return &candOutcome{draws: prev.draws}
	}
	oc := &candOutcome{
		draws:  prev.draws,
		devIdx: make([]int32, len(prev.devIdx)),
		netIdx: make([]int32, len(prev.netIdx)),
	}
	for i, ov := range prev.devIdx {
		nv := ds.DevOld2New[ov]
		if nv < 0 {
			return nil
		}
		oc.devIdx[i] = nv
	}
	for i, ov := range prev.netIdx {
		nv := ds.NetOld2New[ov]
		if nv < 0 {
			return nil
		}
		oc.netIdx[i] = nv
	}
	return oc
}

// instanceFromOutcome rebuilds the Instance a replayed candidate produced,
// against the current circuit.
func (m *Matcher) instanceFromOutcome(pat *pattern, oc *candOutcome) *Instance {
	if oc.devIdx == nil {
		return nil
	}
	inst := &Instance{
		DevMap: make(map[*graph.Device]*graph.Device, len(oc.devIdx)),
		NetMap: make(map[*graph.Net]*graph.Net, len(oc.netIdx)),
	}
	for i, d := range pat.s.Devices {
		inst.DevMap[d] = m.g.Devices[oc.devIdx[i]]
	}
	for i, n := range pat.s.Nets {
		inst.NetMap[n] = m.g.Nets[oc.netIdx[i]]
	}
	return inst
}
