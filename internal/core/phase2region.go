package core

import (
	"fmt"
	"time"

	"subgemini/internal/csr"
	"subgemini/internal/graph"
	"subgemini/internal/label"
	"subgemini/internal/stats"
	"subgemini/internal/trace"
)

// p2region is the region-localized Phase II engine.  Where the whole-graph
// engine (phase2.go) relabels and partitions over gSpace VIDs — touching,
// snapshotting, and resetting O(|G|)-indexed state — this engine first
// extracts, per candidate c, the ball of main-graph vertices within the
// pattern's key-vertex eccentricity r of c (pattern.ecc) and runs the whole
// relabel / partition / solve / verify machinery over dense region-local
// ids.  The localization is sound: an instance whose key image is c maps
// every pattern vertex along a non-fixed pattern path of length <= r from
// the key, and the image of that path is a same-length path from c through
// non-fixed, non-consumed main-graph vertices, so every possible image lies
// inside the ball.  Pre-matched fixed vertices (globals and bind targets)
// are seeded at the head of every ball so their labels stay visible to
// relabeling even though no label ever spreads through them.
//
// The payoff is per-candidate work bounded by the region, not the circuit:
// partition scans, guess snapshots, and resets all cost O(|ball|), the CSR
// edge walk replaces per-edge class hashing with a precomputed multiplier,
// and a candidate whose ball cannot hold the pattern is rejected before any
// relabeling.  The whole-graph engine stays selectable via
// Options.LegacyPhase2 as the differential oracle (TestPhase2Differential).
type p2region struct {
	m   *Matcher
	pat *pattern
	rep *stats.Report

	sSpace, gSpace *label.Space
	g              *csr.Graph
	uniq           *label.UniqueSource
	radius         int

	// devLab is the matcher's flat device-vid -> type-label array
	// (Matcher.deviceLabels); relabelL reads it instead of the string-keyed
	// type cache on every device relabel.
	devLab []label.Value

	// Flat structural arrays for compatible(): the main side comes from
	// Matcher.vertexShape, the pattern side is built once per engine.
	// Type ids are per-matcher interned strings, so comparing ids is
	// exactly the type-string comparison the whole-graph engine performs,
	// without chasing *Device/*Net pointers per check.
	devTID, devPins, gNetDeg []int32
	sTID, sPins, sNetDeg     []int32
	sWild, sPort             []bool
	sDevLab                  []label.Value
	ablateDeg                bool

	// Pattern-side state: identical layout to the whole-graph engine, but
	// match entries hold region-local ids (unmatchedL when unmatched).
	sInitLab   []label.Value
	sInitSafe  []bool
	sInitMatch []int32
	sLab       []label.Value
	sSafe      []bool
	sMatch     []int32
	fixedS     []bool

	// Fixed main-graph vertices (pre-matched globals and bind targets),
	// seeded at the head of every ball in this order so their local ids —
	// and therefore sInitMatch — are stable across candidates.
	fixedGvid []int32
	fixedLab  []label.Value
	fixedSvid []label.VID

	// Pooled O(|G|) translation state; local is -1 outside the current ball.
	local  []int32
	mark   []uint32
	markID uint32

	// The current candidate's ball (local id -> gvid) and its device count.
	ball     []int32
	ballDevs int

	// Region-local per-candidate state, all len(ball)-sized.
	lLab      []label.Value
	lSafe     []bool
	lFixed    []bool
	lMatch    []label.VID
	lSafeList []int32

	// lTouched lists the local ids whose labels were ever written this
	// candidate (the whole-graph engine's touched list): collectPairs scans
	// it instead of the full ball, so a candidate refuted after labeling a
	// ring pays for the ring, not the ball.  Like the whole-graph list it is
	// never truncated by restore — stale entries are filtered by the exactly
	// restored lLab/lMatch state.
	lTouched []int32
	lInT     []bool

	matched int

	// Scratch for simultaneous relabeling and partitioning.
	sPendV []label.VID
	sPendL []label.Value
	lPendV []int32
	lPendL []label.Value
	sPairs  []labVID
	gPairs  []labLocal
	sLabSet []label.Value

	pool *ScratchPool
	scr  *rscratch

	// snapPool / candsPool recycle backtracking snapshots and guess
	// candidate lists by recursion depth (guesses save and restore strictly
	// LIFO).
	snapPool  []*rsnapshot
	candsPool [][]labLocal
	snapDepth int

	cancelErr error
}

// unmatchedL marks an unmatched entry in the region-local match arrays.
const unmatchedL int32 = -1

// rCancelBlock is how many ball vertices a region BFS expands between
// Options.Cancel polls, so even extracting one huge region from a
// high-fanout circuit honors a deadline.  Variable for tests.
var rCancelBlock = 4096

// labLocal is the region-engine partition pair: a label, the local id of
// the vertex carrying it, and that vertex's global vid.  Pairs sort by
// (label, global vid) — see sortLocalPairs — so partition runs, and
// therefore the guess enumeration order and the first instance found at a
// candidate, are identical to the whole-graph engine's.  Carrying the gvid
// in the pair (it packs into the struct's padding) keeps the sort's
// tiebreak a field read instead of a ball indirection.
type labLocal struct {
	lab    label.Value
	lv, gv int32
}

func newP2Region(m *Matcher, pat *pattern, key label.VID, rep *stats.Report) (*p2region, error) {
	p := &p2region{
		m: m, pat: pat, rep: rep,
		sSpace: pat.space,
		gSpace: m.gSpace,
		g:      m.csrView(),
		uniq:   label.NewUniqueSource(m.opts.Seed),
		radius: pat.eccFrom(key),
		devLab: m.deviceLabels(),
	}
	rep.RegionRadius = p.radius
	sn := p.sSpace.Size()
	p.sInitLab = make([]label.Value, sn)
	p.sInitSafe = make([]bool, sn)
	p.sInitMatch = make([]int32, sn)
	p.sLab = make([]label.Value, sn)
	p.sSafe = make([]bool, sn)
	p.sMatch = make([]int32, sn)
	p.fixedS = make([]bool, sn)
	for i := range p.sInitMatch {
		p.sInitMatch[i] = unmatchedL
	}
	p.devTID, p.devPins, p.gNetDeg = m.vertexShape()
	p.ablateDeg = m.opts.AblateDegreeCheck
	p.sTID = make([]int32, sn)
	p.sPins = make([]int32, sn)
	p.sNetDeg = make([]int32, sn)
	p.sWild = make([]bool, sn)
	p.sPort = make([]bool, sn)
	p.sDevLab = make([]label.Value, sn)
	for v := 0; v < sn; v++ {
		vid := label.VID(v)
		if p.sSpace.IsDevice(vid) {
			d := p.sSpace.Device(vid)
			p.sTID[v] = m.typeID(d.Type)
			p.sPins[v] = int32(len(d.Pins))
			p.sWild[v] = d.Type == graph.WildcardType
			p.sDevLab[v] = m.typeLabel(d.Type)
		} else {
			n := p.sSpace.Net(vid)
			p.sNetDeg[v] = int32(n.Degree())
			p.sPort[v] = n.Port
		}
	}
	if sp := m.opts.Scratch; sp != nil {
		p.pool = sp
		p.scr = sp.getRegion(p.gSpace.Size())
		p.local = p.scr.local
		p.mark = p.scr.mark
		p.markID = p.scr.markID
		p.ball = p.scr.ball[:0]
		p.lLab = p.scr.lLab
		p.lSafe = p.scr.lSafe
		p.lFixed = p.scr.lFixed
		p.lMatch = p.scr.lMatch
		p.lSafeList = p.scr.lSafeList[:0]
		p.lTouched = p.scr.lTouched[:0]
		p.lInT = p.scr.lInT
		p.lPendV = p.scr.lPendV[:0]
		p.lPendL = p.scr.lPendL[:0]
		p.gPairs = p.scr.gPairs[:0]
		p.snapPool = p.scr.snaps
		p.candsPool = p.scr.cands
	} else {
		p.local = make([]int32, p.gSpace.Size())
		for i := range p.local {
			p.local[i] = -1
		}
		p.mark = make([]uint32, p.gSpace.Size())
	}
	if err := p.initPrematch(); err != nil {
		p.close()
		return nil, err
	}
	return p, nil
}

// initPrematch resolves the fixed vertex sets: the same name/degree
// validation as the whole-graph engine (phase2.initPrematch), but instead
// of writing main-graph state it records the fixed gvids, their labels, and
// their pattern counterparts for per-ball seeding.  The iteration order
// over pat.s.Nets fixes the seeds' local ids.
func (p *p2region) initPrematch() error {
	m, pat := p.m, p.pat
	prematch := func(n *graph.Net, gn *graph.Net, lab label.Value) error {
		sv, gv := p.sSpace.NetVID(n), p.gSpace.NetVID(gn)
		for i, prev := range p.fixedGvid {
			if prev == int32(gv) {
				// Two pre-matched pattern nets demand the same image; net
				// maps are injective, so no instance can satisfy this.
				return fmt.Errorf("core: net %q would be the image of two pattern nets (%s and %s)",
					gn.Name, p.sSpace.Name(p.fixedSvid[i]), n.Name)
			}
		}
		lv := int32(len(p.fixedGvid))
		p.sInitLab[sv] = lab
		p.sInitSafe[sv] = true
		p.sInitMatch[sv] = lv
		p.fixedS[sv] = true
		p.fixedGvid = append(p.fixedGvid, int32(gv))
		p.fixedLab = append(p.fixedLab, lab)
		p.fixedSvid = append(p.fixedSvid, sv)
		return nil
	}
	for _, n := range pat.s.Nets {
		switch {
		case n.Global:
			gn := m.g.NetByName(n.Name)
			if gn == nil {
				return fmt.Errorf("core: pattern global net %q absent from circuit %s", n.Name, m.g.Name)
			}
			if !gn.Global {
				return fmt.Errorf("core: net %q is global in the pattern but not in circuit %s", n.Name, m.g.Name)
			}
			if err := prematch(n, gn, label.GlobalLabel(n.Name)); err != nil {
				return err
			}
		case pat.bind[n] != "":
			target := pat.bind[n]
			gn := m.g.NetByName(target)
			if gn == nil {
				return fmt.Errorf("core: bind target net %q absent from circuit %s", target, m.g.Name)
			}
			if gn.Degree() < n.Degree() {
				return fmt.Errorf("core: bind target %q has degree %d, pattern port %q needs at least %d",
					target, gn.Degree(), n.Name, n.Degree())
			}
			if err := prematch(n, gn, label.BindLabel(target)); err != nil {
				return err
			}
		}
	}
	return nil
}

// close releases the pooled scratch, restoring the clean-state invariant:
// local entries back to -1 (O(|last ball|)), markID carried forward, grown
// capacities kept.
func (p *p2region) close() {
	if p.pool == nil {
		return
	}
	for _, gv := range p.ball {
		p.local[gv] = -1
	}
	p.scr.markID = p.markID
	p.scr.ball = p.ball[:0]
	p.scr.lLab = p.lLab
	p.scr.lSafe = p.lSafe
	p.scr.lFixed = p.lFixed
	p.scr.lMatch = p.lMatch
	p.scr.lSafeList = p.lSafeList[:0]
	p.scr.lTouched = p.lTouched[:0]
	p.scr.lInT = p.lInT
	p.scr.lPendV = p.lPendV[:0]
	p.scr.lPendL = p.lPendL[:0]
	p.scr.gPairs = p.gPairs[:0]
	p.scr.snaps = p.snapPool
	p.scr.cands = p.candsPool
	p.pool.putRegion(p.scr)
	p.pool, p.scr = nil, nil
}

// cancelled exposes the solve-internal cancellation latch (phase2Engine).
func (p *p2region) cancelled() error { return p.cancelErr }

// extract builds the radius-r ball around candidate c: the fixed seeds
// first (stable local ids), then a level-by-level BFS from c over the CSR
// view that never enters fixed or consumed vertices — exactly the vertices
// an instance rooted at c could touch.  It returns false when the run was
// cancelled mid-extraction.  The previous candidate's ball is dismantled
// here, so local is consistent at every return.
func (p *p2region) extract(c label.VID) bool {
	for _, gv := range p.ball {
		p.local[gv] = -1
	}
	p.ball = p.ball[:0]
	for i, gv := range p.fixedGvid {
		p.local[gv] = int32(i)
		p.ball = append(p.ball, gv)
	}
	head := len(p.ball) // c's own position: BFS never expands the seeds
	p.local[c] = int32(head)
	p.ball = append(p.ball, int32(c))
	p.ballDevs = 0
	if p.gSpace.IsDevice(c) {
		p.ballDevs = 1
	}
	g := p.g
	nd := int32(g.NumDevs)
	depth, levelEnd, expanded := 0, len(p.ball), 0
	for head < len(p.ball) && depth < p.radius {
		gv := p.ball[head]
		head++
		for e := g.Start[gv]; e < g.Start[gv+1]; e++ {
			nv := g.Adj[e]
			if p.local[nv] >= 0 {
				continue
			}
			if nv < nd {
				if p.m.consumed[nv] {
					continue
				}
				p.ballDevs++
			}
			p.local[nv] = int32(len(p.ball))
			p.ball = append(p.ball, nv)
		}
		expanded++
		if expanded%rCancelBlock == 0 && p.m.opts.Cancel != nil {
			if err := p.m.opts.Cancel(); err != nil {
				p.cancelErr = err
				return false
			}
		}
		if head == levelEnd {
			depth++
			levelEnd = len(p.ball)
		}
	}
	if n := len(p.ball); n > p.rep.RegionMaxSize {
		p.rep.RegionMaxSize = n
	}
	p.rep.RegionBallSum += len(p.ball)
	return true
}

// reset prepares the per-candidate state over the current ball: pattern
// arrays from their templates, region-local arrays zeroed with the fixed
// seeds re-established.  O(|ball|).
func (p *p2region) reset() {
	copy(p.sLab, p.sInitLab)
	copy(p.sSafe, p.sInitSafe)
	copy(p.sMatch, p.sInitMatch)
	n := len(p.ball)
	p.lLab = sizeLabels(p.lLab, n)
	p.lSafe = sizeBools(p.lSafe, n)
	p.lFixed = sizeBools(p.lFixed, n)
	p.lMatch = sizeVIDs(p.lMatch, n)
	p.lInT = sizeBools(p.lInT, n)
	clear(p.lLab)
	clear(p.lSafe)
	clear(p.lFixed)
	clear(p.lInT)
	p.lTouched = p.lTouched[:0]
	for i := range p.lMatch {
		p.lMatch[i] = unmatched
	}
	for i := range p.fixedGvid {
		p.lLab[i] = p.fixedLab[i]
		p.lSafe[i] = true
		p.lFixed[i] = true
		p.lMatch[i] = p.fixedSvid[i]
	}
	p.lSafeList = p.lSafeList[:0]
	p.matched = 0
}

func sizeLabels(s []label.Value, n int) []label.Value {
	if cap(s) < n {
		return make([]label.Value, n)
	}
	return s[:n]
}

func sizeBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func sizeVIDs(s []label.VID, n int) []label.VID {
	if cap(s) < n {
		return make([]label.VID, n)
	}
	return s[:n]
}

// consumedDev mirrors phase2.consumedDev.
func (p *p2region) consumedDev(v label.VID) bool {
	return p.gSpace.IsDevice(v) && p.m.consumed[v]
}

// touchL registers a label write on a region-local vertex.
func (p *p2region) touchL(lv int32) {
	if !p.lInT[lv] {
		p.lInT[lv] = true
		p.lTouched = append(p.lTouched, lv)
	}
}

// match records pattern vertex sv ↔ region-local vertex lv as matched.
func (p *p2region) match(sv label.VID, lv int32) {
	lab := p.uniq.Next()
	p.sLab[sv] = lab
	p.sSafe[sv] = true
	p.sMatch[sv] = lv
	p.touchL(lv)
	p.lLab[lv] = lab
	p.lSafe[lv] = true
	p.lMatch[lv] = sv
	if !p.lFixed[lv] {
		p.lSafeList = append(p.lSafeList, lv)
	}
	p.matched++
}

// verifyCandidate postulates c = image(key) and runs the region-local
// Phase II search (phase2Engine).  With a Tracer installed the candidate
// event additionally carries the extracted ball size.
func (p *p2region) verifyCandidate(key, c label.VID) *Instance {
	etr := p.m.opts.Tracer
	if etr == nil {
		return p.verify(key, c)
	}
	start := time.Now()
	passes0, guesses0, backtracks0 := p.rep.Phase2Passes, p.rep.Guesses, p.rep.Backtracks
	balls0 := p.rep.RegionBallSum
	inst := p.verify(key, c)
	etr.Event(trace.Event{
		Kind:       trace.KindPhase2Candidate,
		Candidate:  p.gSpace.Name(c),
		Matched:    inst != nil,
		Passes:     p.rep.Phase2Passes - passes0,
		Guesses:    p.rep.Guesses - guesses0,
		Backtracks: p.rep.Backtracks - backtracks0,
		BallSize:   p.rep.RegionBallSum - balls0,
		DurationNS: time.Since(start).Nanoseconds(),
	})
	return inst
}

// verify is the untraced body of verifyCandidate.
func (p *p2region) verify(key, c label.VID) *Instance {
	if p.consumedDev(c) {
		return nil
	}
	for _, gv := range p.fixedGvid {
		// A fixed vertex is pre-matched by name; it can never be the image
		// of the (never-fixed) key.  Phase I keeps fixed vertices out of the
		// candidate vector, so this guard is defensive.
		if gv == int32(c) {
			return nil
		}
	}
	if p.sSpace.IsDevice(key) != p.gSpace.IsDevice(c) {
		return nil
	}
	if p.sSpace.IsDevice(key) && !p.compatible(key, c) {
		return nil
	}
	if !p.extract(c) {
		return nil // cancelled mid-extraction
	}
	// Feasibility over the ball: an instance needs every pattern device and
	// p.pat.required non-fixed vertices inside the region.  A candidate in
	// a sparse corner fails here for the cost of its BFS alone.
	if p.ballDevs < p.pat.s.NumDevices() ||
		len(p.ball)-len(p.fixedGvid) < p.pat.required {
		return nil
	}
	p.reset()
	p.match(key, p.local[c])
	if !p.solve(0) {
		return nil
	}
	return p.buildInstance()
}

// solve runs the relabel / check / mark-safe / match loop over the region,
// guessing on stalls; the cancellation protocol matches phase2.solve.
func (p *p2region) solve(depth int) bool {
	for {
		if p.cancelErr != nil {
			return false
		}
		p.rep.Phase2Passes++
		if p.rep.Phase2Passes%p2CancelStride == 0 && p.m.opts.Cancel != nil {
			if err := p.m.opts.Cancel(); err != nil {
				p.cancelErr = err
				return false
			}
		}
		p.relabelRound()
		progress, ok := p.partitionRound()
		if !ok {
			return false
		}
		if p.matched == p.pat.required {
			p.rep.VerifyCalls++
			return p.verifyMapping()
		}
		if !progress {
			return p.guess(depth)
		}
	}
}

// relabelRound simultaneously relabels both sides: the pattern by a full
// scan (it is small), the region by walking the CSR edges of the safe
// frontier.  The accumulation acc += Mul[e]*lab is bit-identical to the
// whole-graph engine's label.Combine fold, with the per-edge class hash
// replaced by the precomputed multiplier.
func (p *p2region) relabelRound() {
	p.sPendV = p.sPendV[:0]
	p.sPendL = p.sPendL[:0]
	for v := 0; v < p.sSpace.Size(); v++ {
		vid := label.VID(v)
		if p.sMatch[vid] != unmatchedL || p.fixedS[vid] {
			continue
		}
		newLab, triggered := p.relabelS(vid)
		if triggered {
			p.sPendV = append(p.sPendV, vid)
			p.sPendL = append(p.sPendL, newLab)
		}
	}
	p.markID++
	p.lPendV = p.lPendV[:0]
	p.lPendL = p.lPendL[:0]
	g := p.g
	for _, sv := range p.lSafeList {
		gv := p.ball[sv]
		for e := g.Start[gv]; e < g.Start[gv+1]; e++ {
			ln := p.local[g.Adj[e]]
			if ln < 0 || p.mark[ln] == p.markID {
				continue
			}
			p.mark[ln] = p.markID
			if p.lMatch[ln] != unmatched || p.lFixed[ln] {
				continue
			}
			newLab, triggered := p.relabelL(ln)
			if triggered {
				p.lPendV = append(p.lPendV, ln)
				p.lPendL = append(p.lPendL, newLab)
			}
		}
	}
	for i, v := range p.sPendV {
		p.sLab[v] = p.sPendL[i]
	}
	for i, v := range p.lPendV {
		p.touchL(v)
		p.lLab[v] = p.lPendL[i]
	}
}

// relabelS mirrors phase2.relabelS over this engine's pattern arrays.
func (p *p2region) relabelS(v label.VID) (label.Value, bool) {
	acc := p.sLab[v]
	triggered := false
	if p.sSpace.IsDevice(v) {
		d := p.sSpace.Device(v)
		if acc == 0 && !p.pat.wildcards {
			acc = p.sDevLab[v]
		}
		for _, pin := range d.Pins {
			nv := p.sSpace.NetVID(pin.Net)
			if !p.sSafe[nv] {
				continue
			}
			acc = label.Combine(acc, pin.Class, p.sLab[nv])
			if !p.fixedS[nv] {
				triggered = true
			}
		}
	} else {
		n := p.sSpace.Net(v)
		for _, conn := range n.Conns {
			dv := p.sSpace.DevVID(conn.Dev)
			if !p.sSafe[dv] {
				continue
			}
			acc = label.Combine(acc, conn.Dev.Pins[conn.Pin].Class, p.sLab[dv])
			triggered = true
		}
	}
	return acc, triggered
}

// relabelL computes the would-be new label of region-local vertex lv and
// whether a safe non-fixed neighbor triggered it.  Devices and nets share
// one CSR edge loop; devices are never fixed, so the trigger rule
// !lFixed[ln] degenerates to the whole-graph engine's per-kind rules.
func (p *p2region) relabelL(lv int32) (label.Value, bool) {
	acc := p.lLab[lv]
	gv := p.ball[lv]
	g := p.g
	if int(gv) < g.NumDevs && acc == 0 && !p.pat.wildcards {
		acc = p.devLab[gv]
	}
	triggered := false
	for e := g.Start[gv]; e < g.Start[gv+1]; e++ {
		ln := p.local[g.Adj[e]]
		if ln < 0 || !p.lSafe[ln] {
			continue
		}
		acc += label.Value(g.Mul[e] * uint64(p.lLab[ln]))
		if !p.lFixed[ln] {
			triggered = true
		}
	}
	return acc, triggered
}

// partitionRound is the whole-graph engine's partition walk over region
// pairs: fail when a main partition is smaller than its pattern partition,
// safe-mark equal-sized partitions, match singletons.
func (p *p2region) partitionRound() (progress, ok bool) {
	p.collectPairs()
	si, gi := 0, 0
	for si < len(p.sPairs) {
		lab := p.sPairs[si].lab
		sEnd := si + 1
		for sEnd < len(p.sPairs) && p.sPairs[sEnd].lab == lab {
			sEnd++
		}
		for gi < len(p.gPairs) && p.gPairs[gi].lab < lab {
			gi++
		}
		gStart := gi
		for gi < len(p.gPairs) && p.gPairs[gi].lab == lab {
			gi++
		}
		cs, cg := sEnd-si, gi-gStart
		if cg < cs {
			return false, false
		}
		if cg == cs {
			for k := si; k < sEnd; k++ {
				if v := p.sPairs[k].vid; !p.sSafe[v] {
					p.sSafe[v] = true
					progress = true
				}
			}
			for k := gStart; k < gi; k++ {
				if v := p.gPairs[k].lv; !p.lSafe[v] {
					p.lSafe[v] = true
					p.lSafeList = append(p.lSafeList, v)
					progress = true
				}
			}
			if cs == 1 {
				sv, lv := p.sPairs[si].vid, p.gPairs[gStart].lv
				if !p.compatible(sv, label.VID(p.ball[lv])) {
					return false, false
				}
				p.match(sv, lv)
				progress = true
			}
		}
		si = sEnd
	}
	return progress, true
}

// collectPairs rebuilds the sorted (label, vertex) pair lists.  The region
// side iterates the touched list — every ever-labeled vertex is in it —
// keeps only pairs whose label also occurs on the pattern side, and sorts
// with the global-vid tiebreak so run order matches the whole-graph engine.
//
// The pattern-label filter is sound because no consumer ever looks at a
// g-only run: the partition merge walk skips past labels absent from
// sPairs, and gRun is only queried with the label of a live (unmatched,
// labeled) pattern vertex — exactly the sPairs membership predicate at the
// time of the last collect.  Dropping the dead pairs shrinks the per-pass
// sort from O(|ball|) to O(|pattern|)-ish.
func (p *p2region) collectPairs() {
	p.sPairs = p.sPairs[:0]
	for v := 0; v < p.sSpace.Size(); v++ {
		vid := label.VID(v)
		if p.sMatch[vid] == unmatchedL && p.sLab[vid] != 0 {
			p.sPairs = append(p.sPairs, labVID{p.sLab[vid], vid})
		}
	}
	sortPairs(p.sPairs)
	set := p.sLabSet[:0]
	for _, pr := range p.sPairs {
		if len(set) == 0 || set[len(set)-1] != pr.lab {
			set = append(set, pr.lab)
		}
	}
	p.sLabSet = set
	p.gPairs = p.gPairs[:0]
	for _, lv := range p.lTouched {
		if p.lMatch[lv] == unmatched && p.lLab[lv] != 0 && labIn(set, p.lLab[lv]) {
			p.gPairs = append(p.gPairs, labLocal{p.lLab[lv], lv, p.ball[lv]})
		}
	}
	sortLocalPairs(p.gPairs)
}

// labIn reports whether the sorted label set contains lab.  Pattern label
// sets are tiny (at most one entry per pattern vertex), so a branch-light
// binary search beats hashing.
func labIn(set []label.Value, lab label.Value) bool {
	lo, hi := 0, len(set)
	for lo < hi {
		mid := (lo + hi) / 2
		if set[mid] < lab {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(set) && set[lo] == lab
}

// sortLocalPairs shell-sorts region pairs by (label, global vid).  Local
// ids follow BFS discovery order, not vid order, so the tiebreak goes
// through the pair's gv field to reproduce the whole-graph engine's
// deterministic run order; the comparison is written out inline because
// this sort runs once per pass per candidate.
func sortLocalPairs(a []labLocal) {
	for gap := len(a) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(a); i++ {
			v := a[i]
			j := i
			for j >= gap && (v.lab < a[j-gap].lab ||
				(v.lab == a[j-gap].lab && v.gv < a[j-gap].gv)) {
				a[j] = a[j-gap]
				j -= gap
			}
			a[j] = v
		}
	}
}

// gRun returns the gPairs slice carrying the given label.
func (p *p2region) gRun(lab label.Value) []labLocal {
	lo, hi := 0, len(p.gPairs)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.gPairs[mid].lab < lab {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	start := lo
	for lo < len(p.gPairs) && p.gPairs[lo].lab == lab {
		lo++
	}
	return p.gPairs[start:lo]
}

// compatible mirrors phase2.compatible — structural plausibility of
// mapping pattern vertex sv to main-graph vertex gv — over the flat shape
// arrays instead of the vertex objects.
func (p *p2region) compatible(sv, gv label.VID) bool {
	if p.sSpace.IsDevice(sv) != p.gSpace.IsDevice(gv) {
		return false
	}
	if p.sSpace.IsDevice(sv) {
		if p.sPins[sv] != p.devPins[gv] {
			return false
		}
		return p.sWild[sv] || p.sTID[sv] == p.devTID[gv]
	}
	if p.ablateDeg {
		return true
	}
	gdeg := p.gNetDeg[int(gv)-p.g.NumDevs]
	if p.sPort[sv] {
		return gdeg >= p.sNetDeg[sv]
	}
	return gdeg == p.sNetDeg[sv]
}

// guess mirrors phase2.guess over region pairs, with the candidate list
// buffer recycled by depth so steady-state guessing does not allocate.
func (p *p2region) guess(depth int) bool {
	if depth >= p.m.opts.guessDepth() {
		p.m.opts.tracef("phase2: guess depth limit %d reached", depth)
		return false
	}
	var bestS label.VID = -1
	bestSize := 0
	for v := 0; v < p.sSpace.Size(); v++ {
		vid := label.VID(v)
		if p.sMatch[vid] != unmatchedL || p.sLab[vid] == 0 {
			continue
		}
		size := len(p.gRun(p.sLab[vid]))
		if size == 0 {
			return false
		}
		if bestS < 0 || size < bestSize {
			bestS, bestSize = vid, size
		}
	}
	if bestS < 0 {
		return false
	}
	for depth >= len(p.candsPool) {
		p.candsPool = append(p.candsPool, nil)
	}
	cands := append(p.candsPool[depth][:0], p.gRun(p.sLab[bestS])...)
	p.candsPool[depth] = cands
	for _, cand := range cands {
		lv := cand.lv
		if !p.compatible(bestS, label.VID(cand.gv)) {
			continue
		}
		snap := p.save()
		p.rep.Guesses++
		p.match(bestS, lv)
		if p.solve(depth + 1) {
			p.release()
			return true
		}
		p.rep.Backtracks++
		p.restore(snap)
		p.release()
		if p.cancelErr != nil {
			return false
		}
	}
	return false
}

// rsnapshot captures the candidate-local state for backtracking.  Every
// slice is ball-sized, so a save costs O(|ball|) regardless of |G| — the
// whole point of localizing the guess path.
type rsnapshot struct {
	sLab    []label.Value
	sSafe   []bool
	sMatch  []int32
	lLab    []label.Value
	lSafe   []bool
	lMatch  []label.VID
	safeLen int
	matched int
}

func (p *p2region) save() *rsnapshot {
	var sn *rsnapshot
	if p.snapDepth < len(p.snapPool) {
		sn = p.snapPool[p.snapDepth]
	} else {
		sn = &rsnapshot{}
		p.snapPool = append(p.snapPool, sn)
	}
	p.snapDepth++
	sn.sLab = append(sn.sLab[:0], p.sLab...)
	sn.sSafe = append(sn.sSafe[:0], p.sSafe...)
	sn.sMatch = append(sn.sMatch[:0], p.sMatch...)
	sn.lLab = append(sn.lLab[:0], p.lLab...)
	sn.lSafe = append(sn.lSafe[:0], p.lSafe...)
	sn.lMatch = append(sn.lMatch[:0], p.lMatch...)
	sn.safeLen = len(p.lSafeList)
	sn.matched = p.matched
	return sn
}

func (p *p2region) release() { p.snapDepth-- }

func (p *p2region) restore(sn *rsnapshot) {
	copy(p.sLab, sn.sLab)
	copy(p.sSafe, sn.sSafe)
	copy(p.sMatch, sn.sMatch)
	copy(p.lLab, sn.lLab)
	copy(p.lSafe, sn.lSafe)
	copy(p.lMatch, sn.lMatch)
	p.lSafeList = p.lSafeList[:sn.safeLen]
	p.matched = sn.matched
}

// verifyMapping checks the completed match edge-by-edge, in region-local
// terms; the rules are exactly verify.go's.
func (p *p2region) verifyMapping() bool {
	// Injectivity over local ids (each local id names one main-graph
	// vertex, so local injectivity is global injectivity).
	p.markID++
	for _, d := range p.pat.s.Devices {
		lv := p.sMatch[p.sSpace.DevVID(d)]
		if lv == unmatchedL || p.mark[lv] == p.markID {
			return false
		}
		p.mark[lv] = p.markID
	}
	for _, n := range p.pat.s.Nets {
		lv := p.sMatch[p.sSpace.NetVID(n)]
		if lv == unmatchedL || p.mark[lv] == p.markID {
			return false
		}
		p.mark[lv] = p.markID
	}

	// Device structure.
	for _, d := range p.pat.s.Devices {
		gd := p.gSpace.Device(label.VID(p.ball[p.sMatch[p.sSpace.DevVID(d)]]))
		if len(gd.Pins) != len(d.Pins) {
			return false
		}
		if gd.Type != d.Type && d.Type != graph.WildcardType {
			return false
		}
		if !p.pinsAgree(d, gd) {
			return false
		}
	}

	// Net structure.
	for _, n := range p.pat.s.Nets {
		gnet := p.gSpace.Net(label.VID(p.ball[p.sMatch[p.sSpace.NetVID(n)]]))
		switch {
		case n.Global:
			if !gnet.Global || gnet.Name != n.Name {
				return false
			}
		case n.Port:
			if gnet.Degree() < n.Degree() {
				return false
			}
		default:
			if gnet.Degree() != n.Degree() {
				return false
			}
		}
	}
	return true
}

// pinsAgree mirrors phase2.pinsAgree with the local-to-global translation.
func (p *p2region) pinsAgree(d, gd *graph.Device) bool {
	var sBuf, gBuf [16]uint64
	nPins := len(d.Pins)
	sPins, gPins := sBuf[:0], gBuf[:0]
	if nPins > len(sBuf) {
		sPins = make([]uint64, 0, nPins)
		gPins = make([]uint64, 0, nPins)
	}
	for _, pin := range d.Pins {
		lv := p.sMatch[p.sSpace.NetVID(pin.Net)]
		if lv == unmatchedL {
			return false
		}
		sPins = append(sPins, uint64(pin.Class)<<48|uint64(p.ball[lv]))
	}
	for _, pin := range gd.Pins {
		gPins = append(gPins, uint64(pin.Class)<<48|uint64(p.gSpace.NetVID(pin.Net)))
	}
	insertionSort(sPins)
	insertionSort(gPins)
	for i := range sPins {
		if sPins[i] != gPins[i] {
			return false
		}
	}
	return true
}

// buildInstance converts the local match arrays into an Instance.
func (p *p2region) buildInstance() *Instance {
	inst := &Instance{
		DevMap: make(map[*graph.Device]*graph.Device, p.pat.s.NumDevices()),
		NetMap: make(map[*graph.Net]*graph.Net, p.pat.s.NumNets()),
	}
	for _, d := range p.pat.s.Devices {
		lv := p.sMatch[p.sSpace.DevVID(d)]
		inst.DevMap[d] = p.gSpace.Device(label.VID(p.ball[lv]))
	}
	for _, n := range p.pat.s.Nets {
		lv := p.sMatch[p.sSpace.NetVID(n)]
		inst.NetMap[n] = p.gSpace.Net(label.VID(p.ball[lv]))
	}
	return inst
}
