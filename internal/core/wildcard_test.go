package core_test

import (
	"testing"

	"subgemini/internal/core"
	"subgemini/internal/gen"
	"subgemini/internal/graph"
	"subgemini/internal/stdcell"
)

var mosW = []graph.TermClass{graph.ClassDS, graph.ClassGate, graph.ClassDS}

// wildcardInverter is an inverter pattern where the pull-down device may be
// any 3-terminal device with MOS-style terminal classes: it matches both a
// true CMOS inverter and a pseudo-NMOS style inverter with a second pmos.
func wildcardInverter(t *testing.T) *graph.Circuit {
	t.Helper()
	s := graph.New("winv")
	a, y := s.AddNet("A"), s.AddNet("Y")
	vdd, gnd := s.AddNet("VDD"), s.AddNet("GND")
	s.MustAddDevice("MP", "pmos", mosW, []*graph.Net{y, a, vdd})
	s.MustAddDevice("MX", graph.WildcardType, mosW, []*graph.Net{y, a, gnd})
	for _, p := range []string{"A", "Y", "VDD", "GND"} {
		if err := s.MarkPort(p); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestWildcardMatchesAnyType(t *testing.T) {
	g := graph.New("g")
	vdd, gnd := g.AddNet("VDD"), g.AddNet("GND")
	// u1: normal CMOS inverter (nmos pull-down).
	a1, y1 := g.AddNet("a1"), g.AddNet("y1")
	g.MustAddDevice("u1p", "pmos", mosW, []*graph.Net{y1, a1, vdd})
	g.MustAddDevice("u1n", "nmos", mosW, []*graph.Net{y1, a1, gnd})
	// u2: "pmos pull-down" structure (would be a level-shifter oddity).
	a2, y2 := g.AddNet("a2"), g.AddNet("y2")
	g.MustAddDevice("u2p", "pmos", mosW, []*graph.Net{y2, a2, vdd})
	g.MustAddDevice("u2q", "pmos", mosW, []*graph.Net{y2, a2, gnd})

	res, err := core.Find(g.Clone(), wildcardInverter(t), core.Options{Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 2 {
		t.Fatalf("wildcard pattern found %d instances, want 2 (report: %s)", len(res.Instances), res.Report.String())
	}
	// The plain inverter pattern finds only the true one.
	res, err = core.Find(g.Clone(), stdcell.INV.Pattern(), core.Options{Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 1 {
		t.Errorf("typed pattern found %d instances, want 1", len(res.Instances))
	}
}

// TestWildcardCountsAgainstTyped: a wildcard-generalized NAND2 pull-down
// must find at least everything the typed pattern finds.
func TestWildcardCountsAgainstTyped(t *testing.T) {
	d := gen.RandomLogic(60, 8, 13)
	typed, err := core.Find(d.C.Clone(), stdcell.NAND2.Pattern(), core.Options{Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	// Same shape, top-of-stack nmos replaced by a wildcard.
	s := graph.New("wnand")
	a, b, y := s.AddNet("A"), s.AddNet("B"), s.AddNet("Y")
	n1 := s.AddNet("n1")
	vdd, gnd := s.AddNet("VDD"), s.AddNet("GND")
	s.MustAddDevice("MP1", "pmos", mosW, []*graph.Net{y, a, vdd})
	s.MustAddDevice("MP2", "pmos", mosW, []*graph.Net{y, b, vdd})
	s.MustAddDevice("MN1", graph.WildcardType, mosW, []*graph.Net{y, a, n1})
	s.MustAddDevice("MN2", "nmos", mosW, []*graph.Net{n1, b, gnd})
	for _, p := range []string{"A", "B", "Y", "VDD", "GND"} {
		if err := s.MarkPort(p); err != nil {
			t.Fatal(err)
		}
	}
	wild, err := core.Find(d.C.Clone(), s, core.Options{Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	if len(wild.Instances) < len(typed.Instances) {
		t.Errorf("wildcard found %d, typed found %d: wildcard must be a superset",
			len(wild.Instances), len(typed.Instances))
	}
	typedSets := instanceSets(typed.Instances)
	wildSets := instanceSets(wild.Instances)
	for sig := range typedSets {
		if !wildSets[sig] {
			t.Errorf("typed instance missing from wildcard results")
		}
	}
}

// TestAllWildcardPattern: even a pattern of nothing but wildcards works via
// the Phase I fallback (no filtering, still correct).
func TestAllWildcardPattern(t *testing.T) {
	// Pattern: any two 3-terminal devices sharing a common internal node in
	// a source/drain chain — in an inverter chain this matches nothing
	// (inverter outputs connect drain-to-gate, not drain-to-drain), while
	// in a pass-transistor chain every adjacent pair matches.
	s := graph.New("anychain")
	x, y, z := s.AddNet("x"), s.AddNet("y"), s.AddNet("z")
	g1, g2 := s.AddNet("g1"), s.AddNet("g2")
	s.MustAddDevice("W1", graph.WildcardType, mosW, []*graph.Net{x, g1, y})
	s.MustAddDevice("W2", graph.WildcardType, mosW, []*graph.Net{y, g2, z})
	for _, p := range []string{"x", "z", "g1", "g2"} {
		if err := s.MarkPort(p); err != nil {
			t.Fatal(err)
		}
	}

	grid := gen.SwitchGrid(3, 0) // 12 pass transistors; interior ds-chains
	res, err := core.Find(grid.C, s.Clone(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) == 0 {
		t.Error("all-wildcard chain found nothing in a switch grid")
	}
	// Verify count against the baseline... the baseline has no wildcard
	// support, but with an all-nmos grid the typed equivalent is exact.
	typed := graph.New("nchain")
	tx, ty, tz := typed.AddNet("x"), typed.AddNet("y"), typed.AddNet("z")
	tg1, tg2 := typed.AddNet("g1"), typed.AddNet("g2")
	typed.MustAddDevice("N1", "nmos", mosW, []*graph.Net{tx, tg1, ty})
	typed.MustAddDevice("N2", "nmos", mosW, []*graph.Net{ty, tg2, tz})
	for _, p := range []string{"x", "z", "g1", "g2"} {
		if err := typed.MarkPort(p); err != nil {
			t.Fatal(err)
		}
	}
	tres, err := core.Find(grid.C, typed, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != len(tres.Instances) {
		t.Errorf("wildcard found %d, typed equivalent found %d", len(res.Instances), len(tres.Instances))
	}
}

func TestWildcardRejectedInMainCircuit(t *testing.T) {
	g := graph.New("bad")
	n := g.AddNet("n")
	g.MustAddDevice("w", graph.WildcardType, mosW, []*graph.Net{n, n, n})
	if _, err := core.NewMatcher(g, core.Options{}); err == nil {
		t.Error("wildcard device in main circuit accepted")
	}
}
