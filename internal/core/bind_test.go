package core_test

import (
	"strings"
	"testing"

	"subgemini/internal/core"
	"subgemini/internal/gen"
	"subgemini/internal/graph"
	"subgemini/internal/stdcell"
)

var railOpts2 = []string{"VDD", "GND"}

// TestBindSelectsInstances: in a ripple counter every DFF has a different
// clock net (the previous stage's Q), so binding the CLK port selects
// exactly one stage.
func TestBindSelectsInstances(t *testing.T) {
	d := gen.RippleCounter(4)

	// Unbound: all four DFFs.
	res, err := core.Find(d.C.Clone(), stdcell.DFF.Pattern(), core.Options{Globals: railOpts2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 4 {
		t.Fatalf("unbound: %d DFFs, want 4", len(res.Instances))
	}

	// Bound to the primary clock: stage 0 only.
	res, err = core.Find(d.C.Clone(), stdcell.DFF.Pattern(), core.Options{
		Globals: railOpts2,
		Bind:    map[string]string{"CLK": "clk"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 1 {
		t.Fatalf("bound to clk: %d DFFs, want 1", len(res.Instances))
	}
	if dff := res.Instances[0].DevMap[stdcell.DFF.Pattern().Devices[0]]; dff != nil {
		// Mapping sanity is covered below by name prefix.
		_ = dff
	}
	for _, gd := range res.Instances[0].Devices() {
		if !strings.HasPrefix(gd.Name, "dff0.") {
			t.Errorf("bound instance includes %s, want only dff0.* devices", gd.Name)
		}
	}

	// Bound to stage 0's output (which clocks stage 1): stage 1 only.
	res, err = core.Find(d.C.Clone(), stdcell.DFF.Pattern(), core.Options{
		Globals: railOpts2,
		Bind:    map[string]string{"CLK": "q0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 1 {
		t.Fatalf("bound to q0: %d DFFs, want 1", len(res.Instances))
	}
	for _, gd := range res.Instances[0].Devices() {
		if !strings.HasPrefix(gd.Name, "dff1.") {
			t.Errorf("bound instance includes %s, want only dff1.* devices", gd.Name)
		}
	}
}

// TestBindToSignal selects cells by what drives them: of three inverters,
// two share the input net "en"; binding the A port to "en" finds exactly
// those two and excludes the third.
func TestBindToSignal(t *testing.T) {
	g := graph.New("bysignal")
	vdd, gnd := g.AddNet("VDD"), g.AddNet("GND")
	en, other := g.AddNet("en"), g.AddNet("other")
	y1, y2, y3 := g.AddNet("y1"), g.AddNet("y2"), g.AddNet("y3")
	stdcell.INV.MustInstantiate(g, "e1", map[string]*graph.Net{"A": en, "Y": y1, "VDD": vdd, "GND": gnd})
	stdcell.INV.MustInstantiate(g, "e2", map[string]*graph.Net{"A": en, "Y": y2, "VDD": vdd, "GND": gnd})
	stdcell.INV.MustInstantiate(g, "o1", map[string]*graph.Net{"A": other, "Y": y3, "VDD": vdd, "GND": gnd})

	res, err := core.Find(g.Clone(), stdcell.INV.Pattern(), core.Options{
		Globals: railOpts2,
		Bind:    map[string]string{"A": "en"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 2 {
		t.Fatalf("bound: %d inverters, want 2 (the en-driven ones)", len(res.Instances))
	}
	for _, inst := range res.Instances {
		for _, gd := range inst.Devices() {
			if !strings.HasPrefix(gd.Name, "e") {
				t.Errorf("bound instance includes %s, want e1.*/e2.*", gd.Name)
			}
		}
	}
}

// TestBindConflictWithGlobal: binding a port to a net that is also the
// pattern's global would need two pattern nets to share one image, which
// injective matching cannot express; the result is "no instances".
func TestBindConflictWithGlobal(t *testing.T) {
	g := graph.New("tied")
	vdd, gnd := g.AddNet("VDD"), g.AddNet("GND")
	y1 := g.AddNet("y1")
	stdcell.INV.MustInstantiate(g, "tied", map[string]*graph.Net{"A": gnd, "Y": y1, "VDD": vdd, "GND": gnd})
	res, err := core.Find(g, stdcell.INV.Pattern(), core.Options{
		Globals: railOpts2,
		Bind:    map[string]string{"A": "GND"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 0 {
		t.Errorf("found %d instances, want 0 (unsatisfiable alias constraint)", len(res.Instances))
	}
}

func TestBindErrors(t *testing.T) {
	g := gen.InverterChain(2)
	cases := []struct {
		name string
		bind map[string]string
	}{
		{"unknown port", map[string]string{"NOPE": "n1"}},
		{"not a port", map[string]string{"MISSING": "n1"}},
		{"empty target", map[string]string{"A": ""}},
	}
	for _, tc := range cases {
		_, err := core.Find(g.C.Clone(), stdcell.INV.Pattern(), core.Options{Globals: railOpts2, Bind: tc.bind})
		if err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	// Binding a global is rejected.
	_, err := core.Find(g.C.Clone(), stdcell.INV.Pattern(), core.Options{
		Globals: railOpts2,
		Bind:    map[string]string{"VDD": "n1"},
	})
	if err == nil {
		t.Error("binding a global accepted")
	}
}

// TestBindMissingTarget: binding to a net that does not exist is "no
// instances", not an error (the constraint is simply unsatisfiable).
func TestBindMissingTarget(t *testing.T) {
	g := gen.InverterChain(3)
	res, err := core.Find(g.C, stdcell.INV.Pattern(), core.Options{
		Globals: railOpts2,
		Bind:    map[string]string{"A": "no_such_net"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 0 {
		t.Errorf("found %d instances, want 0", len(res.Instances))
	}
}

// TestBindShrinksSearch: binding should shrink the candidate vector, not
// just filter results afterwards.
func TestBindShrinksSearch(t *testing.T) {
	d := gen.ShiftRegister(32)
	sin := "q10" // bind the D input to an interior stage output
	unbound, err := core.Find(d.C.Clone(), stdcell.DFF.Pattern(), core.Options{Globals: railOpts2})
	if err != nil {
		t.Fatal(err)
	}
	bound, err := core.Find(d.C.Clone(), stdcell.DFF.Pattern(), core.Options{
		Globals: railOpts2,
		Bind:    map[string]string{"D": sin},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(bound.Instances) != 1 {
		t.Fatalf("bound: %d instances, want 1", len(bound.Instances))
	}
	if bound.Report.Candidates >= unbound.Report.Candidates {
		t.Errorf("binding did not shrink the search: %d candidates vs %d unbound",
			bound.Report.Candidates, unbound.Report.Candidates)
	}
}
