package core_test

import (
	"testing"

	"subgemini/internal/core"
	"subgemini/internal/gen"
)

// TestBacktracking: the pass-transistor fabric forces wrong guesses that
// must be undone (the search still converges to the planted chain).
func TestBacktracking(t *testing.T) {
	d := gen.SwitchGrid(6, 6)
	res, err := core.Find(d.C, gen.PassChainPattern(6), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 1 {
		t.Fatalf("found %d instances, want 1 (report: %s)", len(res.Instances), res.Report.String())
	}
	if res.Report.Guesses == 0 {
		t.Error("expected guesses in the symmetric fabric")
	}
}

// TestMaxGuessDepth: an artificially tight guess budget makes deep
// symmetric searches fail soundly (no instances, no error, no hang).
func TestMaxGuessDepth(t *testing.T) {
	d := gen.SwitchGrid(6, 8)
	deep, err := core.Find(d.C.Clone(), gen.PassChainPattern(8), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(deep.Instances) != 1 {
		t.Fatalf("default depth found %d, want 1", len(deep.Instances))
	}
	shallow, err := core.Find(d.C.Clone(), gen.PassChainPattern(8), core.Options{MaxGuessDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(shallow.Instances) > len(deep.Instances) {
		t.Errorf("shallow depth found more instances (%d) than the full search (%d)",
			len(shallow.Instances), len(deep.Instances))
	}
}
