package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"subgemini/internal/graph"
	"subgemini/internal/obs"
	"subgemini/internal/stats"
	"subgemini/internal/trace"
)

// FindParallel is Find with Phase II candidates verified concurrently.
// Phase I is inherently sequential (one pass over both graphs) but cheap;
// Phase II examines each candidate independently, so the candidate vector
// is striped across workers, each with its own verification state.
//
// Only the MatchAll policy is supported: NonOverlapping serializes on the
// consumed-device set by design.  Results are identical to Find up to
// instance order, which is canonicalized (sorted by image device set), and
// the run remains deterministic for a fixed worker count.
//
// workers <= 0 selects GOMAXPROCS.  The per-worker memory cost is O(|G|),
// so very wide fan-out on very large graphs trades memory for latency.
func (m *Matcher) FindParallel(s *graph.Circuit, workers int) (*Result, error) {
	if m.opts.Policy != MatchAll {
		return nil, fmt.Errorf("core: FindParallel requires the MatchAll policy")
	}
	if m.opts.MaxInstances > 0 {
		return nil, fmt.Errorf("core: FindParallel does not support MaxInstances (the cutoff would be nondeterministic)")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || m.opts.Trace != nil || m.opts.Tracer != nil {
		// Tracing interleaves arbitrarily across workers; a traced run
		// falls back to the sequential matcher, which produces the same
		// instances with a deterministic, ordered trace (Phase I still
		// honors Options.Workers inside Find).
		return m.Find(s)
	}
	if s == nil {
		return nil, fmt.Errorf("core: nil pattern")
	}
	for _, n := range s.Globals() {
		m.markGlobal(n.Name)
	}
	for _, n := range m.g.Globals() {
		s.MarkGlobal(n.Name)
	}
	pat, err := newPattern(s, &m.opts)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	tr := m.opts.Tracer
	if tr != nil {
		tr.Event(trace.Event{Kind: trace.KindRunStart, Circuit: m.g.Name, Pattern: pat.s.Name,
			Devices: m.g.NumDevices(), Nets: m.g.NumNets()})
	}

	t0 := time.Now()
	p1Ref := obs.NoSpan
	if o := m.opts.Observe; o != nil {
		p1Ref = o.Begin(obs.KindPhase1, pat.s.Name)
	}
	p1 := newPhase1(m, pat, &res.Report)
	if m.opts.Workers == 0 && !m.opts.LegacyPhase1 {
		// Unless the caller pinned a Phase I worker count, reuse the
		// Phase II fan-out: Phase I striping is deterministic for any
		// count, so this only affects speed.
		p1.workers = workers
	}
	key, cv, err := p1.run()
	res.Report.Phase1Duration = time.Since(t0)
	if o := m.opts.Observe; o != nil {
		o.AttrInt(p1Ref, "passes", int64(res.Report.Phase1Passes))
		o.AttrInt(p1Ref, "cv_size", int64(len(cv)))
		o.End(p1Ref)
	}
	if err != nil {
		res.Report.CancelledAt = "phase1"
		return res, err
	}
	res.Report.CVSize = len(cv)
	if tr != nil {
		e := trace.Event{Kind: trace.KindCandidateVector, CVSize: len(cv)}
		if len(cv) > 0 {
			e.KeyVertex = pat.space.Name(key)
			e.KeyIsDevice = pat.space.IsDevice(key)
		}
		tr.Event(e)
	}
	if len(cv) == 0 {
		if tr != nil {
			tr.Event(trace.Event{Kind: trace.KindRunEnd})
		}
		return res, nil
	}
	res.Report.KeyVertex = pat.space.Name(key)
	res.Report.KeyIsDevice = pat.space.IsDevice(key)

	if workers > len(cv) {
		workers = len(cv)
	}
	// Pre-warm the shared caches the region engine reads — the type-label
	// map, the flat per-device label array, the vertex shape arrays, and
	// the type-id interning map — so workers only read them; none is
	// otherwise synchronized.
	m.deviceLabels()
	m.vertexShape()
	for _, d := range pat.s.Devices {
		m.typeLabel(d.Type)
		m.typeID(d.Type)
	}
	t1 := time.Now()
	p2Ref := obs.NoSpan
	if o := m.opts.Observe; o != nil {
		p2Ref = o.Begin(obs.KindPhase2, pat.s.Name)
	}
	type shard struct {
		instances []*Instance
		report    stats.Report
		err       error
		cancel    error // cancellation latched inside this worker's solve
	}
	shards := make([]shard, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := &shards[w]
			p2, err := m.newPhase2Engine(pat, key, &sh.report)
			if err != nil {
				sh.err = err
				return
			}
			defer p2.close()
			for i := w; i < len(cv); i += workers {
				if m.opts.cancelled() != nil {
					// The definitive error is re-polled after the join;
					// workers just stop claiming candidates.
					return
				}
				sh.report.Candidates++
				if inst := p2.verifyCandidate(key, cv[i]); inst != nil {
					sh.report.CandidatesMatched++
					sh.instances = append(sh.instances, inst)
				}
				if err := p2.cancelled(); err != nil {
					// Cancellation fired deep inside this worker's solve
					// recursion; record it and stop claiming candidates.
					sh.cancel = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	res.Report.Phase2Duration = time.Since(t1)
	if o := m.opts.Observe; o != nil {
		o.AttrInt(p2Ref, "workers", int64(workers))
		o.End(p2Ref)
	}
	// Cancellation is monotonic (a cancelled context stays cancelled), so
	// one poll after the join decides whether the run was cut short; the
	// per-shard latch catches a hook whose error was observed only inside a
	// worker's solve recursion.
	cancelErr := m.opts.cancelled()
	for w := range shards {
		if cancelErr == nil && shards[w].cancel != nil {
			cancelErr = shards[w].cancel
		}
	}
	if cancelErr != nil {
		res.Report.CancelledAt = "phase2"
		return res, cancelErr
	}

	// Engine construction errors mean a pre-match constraint is
	// unsatisfiable (a global or bind target missing): every worker reports
	// the same thing, and the result is simply "no instances".
	for w := range shards {
		if shards[w].err != nil {
			m.opts.tracef("phase2: %v", shards[w].err)
			return res, nil
		}
	}
	type keyed struct {
		sig  string
		inst *Instance
	}
	seen := make(map[string]bool)
	var all []keyed
	var sigBuf []int
	var sig string
	for w := range shards {
		res.Report.Phase2Passes += shards[w].report.Phase2Passes
		res.Report.Guesses += shards[w].report.Guesses
		res.Report.Backtracks += shards[w].report.Backtracks
		res.Report.VerifyCalls += shards[w].report.VerifyCalls
		res.Report.Candidates += shards[w].report.Candidates
		res.Report.CandidatesMatched += shards[w].report.CandidatesMatched
		res.Report.RegionBallSum += shards[w].report.RegionBallSum
		if shards[w].report.RegionMaxSize > res.Report.RegionMaxSize {
			res.Report.RegionMaxSize = shards[w].report.RegionMaxSize
		}
		if shards[w].report.RegionRadius > res.Report.RegionRadius {
			// Every shard that examined a candidate saw the same radius.
			res.Report.RegionRadius = shards[w].report.RegionRadius
		}
		for _, inst := range shards[w].instances {
			sig, sigBuf = inst.signature(sigBuf)
			if !seen[sig] {
				seen[sig] = true
				all = append(all, keyed{sig, inst})
			}
		}
	}
	// Canonical order: by image device set (the signature encodes the
	// sorted device indices, so sorting by it sorts by device set).
	sort.Slice(all, func(i, j int) bool { return all[i].sig < all[j].sig })
	res.Instances = make([]*Instance, len(all))
	for i, k := range all {
		res.Instances[i] = k.inst
		res.Report.MatchedDevices += len(k.inst.DevMap)
	}
	res.Report.Instances = len(res.Instances)
	if o := m.opts.Observe; o != nil {
		o.AttrInt(p2Ref, "candidates", int64(res.Report.Candidates))
		o.AttrInt(p2Ref, "instances", int64(res.Report.Instances))
	}
	if tr != nil {
		tr.Event(trace.Event{Kind: trace.KindRunEnd,
			Instances: len(res.Instances), Candidates: res.Report.Candidates})
	}
	return res, nil
}
