package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"subgemini/internal/baseline"
	"subgemini/internal/core"
	"subgemini/internal/gemini"
	"subgemini/internal/gen"
	"subgemini/internal/graph"
	"subgemini/internal/stdcell"
)

// TestQuickCoreEqualsBaseline is the central correctness property: on
// arbitrary random circuits, SubGemini and the exhaustive DFS matcher find
// exactly the same instance sets, for every prime pattern.
func TestQuickCoreEqualsBaseline(t *testing.T) {
	patterns := []*stdcell.CellDef{stdcell.INV, stdcell.NAND2, stdcell.NOR2, stdcell.XOR2, stdcell.AOI21, stdcell.MUX2}
	prop := func(seed int64, nGates uint8) bool {
		d := gen.RandomLogic(10+int(nGates%30), 5, seed)
		for _, pat := range patterns {
			c, err := core.Find(d.C.Clone(), pat.Pattern(), core.Options{Globals: rails})
			if err != nil {
				t.Logf("seed %d: core error: %v", seed, err)
				return false
			}
			b, err := baseline.Find(d.C.Clone(), pat.Pattern(), baseline.Options{Globals: rails})
			if err != nil {
				t.Logf("seed %d: baseline error: %v", seed, err)
				return false
			}
			cs, bs := instanceSets(c.Instances), instanceSets(b.Instances)
			if len(cs) != len(bs) {
				t.Logf("seed %d gates %d pattern %s: core %d vs baseline %d",
					seed, 10+int(nGates%30), pat.Name, len(cs), len(bs))
				return false
			}
			for sig := range bs {
				if !cs[sig] {
					t.Logf("seed %d pattern %s: missing instance", seed, pat.Name)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickPlantAndFind plants k disjoint copies of a pattern into random
// background logic and checks the matcher reports at least k instances and
// that every planted copy is among them.
func TestQuickPlantAndFind(t *testing.T) {
	prop := func(seed int64, kRaw, pick uint8) bool {
		k := 1 + int(kRaw%5)
		cells := []*stdcell.CellDef{stdcell.NAND3, stdcell.XOR2, stdcell.FA, stdcell.DFF}
		cell := cells[int(pick)%len(cells)]
		d := gen.RandomLogic(15, 6, seed)
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		vdd, gnd := d.C.NetByName("VDD"), d.C.NetByName("GND")
		planted := make([]map[string]bool, 0, k)
		// Inputs are tapped only from nets that existed before planting:
		// tapping another planted copy's internal net would add a load and
		// destroy that copy's induced-subgraph property.
		pool := append([]*graph.Net(nil), d.C.Nets...)
		for i := 0; i < k; i++ {
			conns := map[string]*graph.Net{"VDD": vdd, "GND": gnd}
			inst := "plant" + string(rune('0'+i))
			// Pattern port images must be injective, so each input port
			// needs a distinct driver net, and none may be a rail (a
			// tied-off cell is structurally a different cell).
			used := map[*graph.Net]bool{vdd: true, gnd: true}
			for _, port := range cell.Ports {
				switch port {
				case "VDD", "GND":
				case "Y", "Q", "S", "CO":
					conns[port] = d.C.AddNet(inst + "." + port + ".out")
				default:
					var n *graph.Net
					for tries := 0; tries < 50; tries++ {
						cand := pool[rng.Intn(len(pool))]
						if !used[cand] {
							n = cand
							break
						}
					}
					if n == nil {
						n = d.C.AddNet(inst + "." + port + ".in")
					}
					used[n] = true
					conns[port] = n
				}
			}
			cell.MustInstantiate(d.C, inst, conns)
			devs := map[string]bool{}
			for _, m := range cell.Mos {
				devs[inst+"."+m.Name] = true
			}
			planted = append(planted, devs)
		}
		if err := d.C.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		res, err := core.Find(d.C, cell.Pattern(), core.Options{Globals: rails})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		found := make([]map[string]bool, 0, len(res.Instances))
		for _, inst := range res.Instances {
			devs := map[string]bool{}
			for _, gd := range inst.DevMap {
				devs[gd.Name] = true
			}
			found = append(found, devs)
		}
		for i, want := range planted {
			ok := false
			for _, got := range found {
				if setsEqual(want, got) {
					ok = true
					break
				}
			}
			if !ok {
				t.Logf("seed %d: planted %s copy %d not found (%d found total)", seed, cell.Name, i, len(found))
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickPermutationInvariance: the instance count must not depend on
// device/net declaration order or names.
func TestQuickPermutationInvariance(t *testing.T) {
	prop := func(seed int64) bool {
		d := gen.RandomLogic(25, 6, seed)
		d.C.MarkGlobal("VDD")
		d.C.MarkGlobal("GND")
		perm := permute(d.C, seed*31+7)
		for _, pat := range []*stdcell.CellDef{stdcell.INV, stdcell.NAND2, stdcell.XOR2} {
			a, err := core.Find(d.C.Clone(), pat.Pattern(), core.Options{Globals: rails})
			if err != nil {
				return false
			}
			b, err := core.Find(perm.Clone(), pat.Pattern(), core.Options{Globals: rails})
			if err != nil {
				return false
			}
			if len(a.Instances) != len(b.Instances) {
				t.Logf("seed %d pattern %s: %d vs %d after permutation",
					seed, pat.Name, len(a.Instances), len(b.Instances))
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestQuickCloneIsomorphic: Clone must produce a Gemini-isomorphic circuit
// for arbitrary generated designs.
func TestQuickCloneIsomorphic(t *testing.T) {
	prop := func(seed int64) bool {
		d := gen.RandomLogic(20, 5, seed)
		res, err := gemini.Compare(d.C, d.C.Clone(), gemini.Options{Globals: rails})
		if err != nil {
			return false
		}
		return res.Isomorphic
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func setsEqual(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// permute rebuilds c with randomized vertex order and renamed non-global
// nets/devices.
func permute(c *graph.Circuit, seed int64) *graph.Circuit {
	rng := rand.New(rand.NewSource(seed))
	out := graph.New(c.Name + "_perm")
	rename := func(n *graph.Net) string {
		if n.Global {
			return n.Name
		}
		return "p_" + n.Name
	}
	for _, i := range rng.Perm(c.NumNets()) {
		n := c.Nets[i]
		nn := out.AddNet(rename(n))
		nn.Port = n.Port
		nn.Global = n.Global
	}
	for _, i := range rng.Perm(c.NumDevices()) {
		d := c.Devices[i]
		classes := make([]graph.TermClass, len(d.Pins))
		nets := make([]*graph.Net, len(d.Pins))
		for j, p := range d.Pins {
			classes[j] = p.Class
			nets[j] = out.AddNet(rename(p.Net))
		}
		out.MustAddDevice("p_"+d.Name, d.Type, classes, nets)
	}
	return out
}
