package core_test

import (
	"testing"

	"subgemini/internal/core"
	"subgemini/internal/gen/paperex"
	"subgemini/internal/obs"
)

// TestFindEmitsObserveSpans runs the paper's worked example with a timeline
// attached and checks the span stream: a csr-build span (the matcher had to
// construct its own view), a phase1 span with pass/CV attributes, and a
// phase2 span with candidate/instance attributes.
func TestFindEmitsObserveSpans(t *testing.T) {
	tl := obs.NewTimeline("r-test", "http", "POST", "/v1/match")
	res, err := core.Find(paperex.PaperMain(), paperex.PaperPattern(), core.Options{Observe: tl.Scope(obs.NoSpan)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 1 {
		t.Fatalf("found %d instances, want 1", len(res.Instances))
	}
	tl.Finish(200)
	js := tl.JSON()
	byKind := map[string]obs.SpanJSON{}
	for _, sp := range js.Spans {
		byKind[sp.Kind] = sp
	}
	if _, ok := byKind[obs.KindCSRBuild]; !ok {
		t.Errorf("no csr-build span in %+v", js.Spans)
	}
	p1, ok := byKind[obs.KindPhase1]
	if !ok {
		t.Fatalf("no phase1 span in %+v", js.Spans)
	}
	if p1.Name != "paperS" || p1.Attrs["cv_size"] != "2" || p1.Attrs["passes"] == "" {
		t.Errorf("phase1 span = %+v, want pattern paperS, cv_size 2, passes set", p1)
	}
	p2, ok := byKind[obs.KindPhase2]
	if !ok {
		t.Fatalf("no phase2 span in %+v", js.Spans)
	}
	if p2.Attrs["candidates"] != "2" || p2.Attrs["instances"] != "1" {
		t.Errorf("phase2 span = %+v, want 2 candidates, 1 instance", p2)
	}
	if p2.Open || p1.Open {
		t.Error("phase spans left open")
	}
}

// TestFindParallelEmitsObserveSpans checks the parallel path emits the same
// phase1/phase2 spans (it must not fall back to sequential just because a
// timeline is attached, unlike Trace/Tracer).
func TestFindParallelEmitsObserveSpans(t *testing.T) {
	tl := obs.NewTimeline("r-par", "http", "POST", "/v1/match")
	m, err := core.NewMatcher(paperex.PaperMain(), core.Options{Observe: tl.Scope(obs.NoSpan)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.FindParallel(paperex.PaperPattern(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 1 {
		t.Fatalf("found %d instances, want 1", len(res.Instances))
	}
	kinds := map[string]int{}
	for _, sp := range tl.JSON().Spans {
		kinds[sp.Kind]++
	}
	if kinds[obs.KindPhase1] != 1 || kinds[obs.KindPhase2] != 1 {
		t.Errorf("span kinds %v, want one phase1 and one phase2", kinds)
	}
}

// TestFindIncrementalEmitsObserveSpans checks the capture path tags its
// phase1 span mode=full and its phase2 span with replayed/recomputed.
func TestFindIncrementalEmitsObserveSpans(t *testing.T) {
	tl := obs.NewTimeline("r-inc", "http", "POST", "/v1/match")
	m, err := core.NewMatcher(paperex.PaperMain(), core.Options{Observe: tl.Scope(obs.NoSpan)})
	if err != nil {
		t.Fatal(err)
	}
	res, st, err := m.FindIncremental(paperex.PaperPattern(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st == nil || len(res.Instances) != 1 {
		t.Fatalf("capture run: %d instances, state %v", len(res.Instances), st != nil)
	}
	byKind := map[string]obs.SpanJSON{}
	for _, sp := range tl.JSON().Spans {
		byKind[sp.Kind] = sp
	}
	if byKind[obs.KindPhase1].Attrs["mode"] != "full" {
		t.Errorf("phase1 span = %+v, want mode=full", byKind[obs.KindPhase1])
	}
	if byKind[obs.KindPhase2].Attrs["recomputed"] != "2" {
		t.Errorf("phase2 span = %+v, want recomputed=2", byKind[obs.KindPhase2])
	}
}

// TestObserveDisabledNoAllocs pins the acceptance criterion that a nil
// Options.Observe adds zero allocations to the match path.  Two pins: the
// nil-scope operations core would invoke are exactly allocation-free (the
// mechanism — every emission site guards on Observe != nil and never
// renders attrs first), and a warmed matcher's Find does not allocate more
// with the nil hook than the same warmed matcher measured again (the
// end-to-end effect).
func TestObserveDisabledNoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun counts race-detector instrumentation allocations")
	}
	allocs := testing.AllocsPerRun(200, func() {
		var sc *obs.Scope
		ref := sc.Begin(obs.KindPhase1, "x")
		sc.Attr(ref, "k", "v")
		sc.AttrInt(ref, "n", 42)
		sc.End(ref)
	})
	if allocs != 0 {
		t.Errorf("nil scope operations allocate %.1f/run, want 0", allocs)
	}

	g, s := paperex.PaperMain(), paperex.PaperPattern()
	m, err := core.NewMatcher(g, core.Options{Scratch: &core.ScratchPool{}})
	if err != nil {
		t.Fatal(err)
	}
	// Warm every lazy cache (CSR view, labels, interning) with one run,
	// then check run-to-run stability: the guarded emissions contribute
	// nothing, so two measurements of the same warmed matcher agree.
	if _, err := m.Find(s); err != nil {
		t.Fatal(err)
	}
	base := testing.AllocsPerRun(100, func() { m.Find(s) })
	again := testing.AllocsPerRun(100, func() { m.Find(s) })
	if again > base {
		t.Errorf("nil Observe path allocates %.0f/run, baseline %.0f", again, base)
	}
}
