package core_test

import (
	"testing"
	"testing/quick"

	"subgemini/internal/core"
	"subgemini/internal/gen"
	"subgemini/internal/graph"
	"subgemini/internal/stdcell"
)

// This file holds the differential test between the two Phase II engines:
// the whole-graph reference engine (Options.LegacyPhase2) and the
// region-localized engine that restricts each candidate's verification to
// the ball of vertices within the pattern's key-vertex eccentricity.  The
// two must produce identical instances in identical order — the region
// engine's soundness argument (every possible image of a non-fixed pattern
// vertex lies inside the candidate's ball) plus its global-vid-tiebroken
// partition order are exactly what this checks.

// findOrdered runs Find and returns the instance strings in report order.
func findOrdered(t *testing.T, g, s *graph.Circuit, opts core.Options) []string {
	t.Helper()
	res, err := core.Find(g, s, opts)
	if err != nil {
		t.Fatalf("Find: %v", err)
	}
	out := make([]string, len(res.Instances))
	for i, in := range res.Instances {
		out[i] = in.String()
	}
	return out
}

func sameOrdered(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPhase2Differential asserts the engines agree — instances and their
// order — over a spread of fixed workloads covering global-seeded balls,
// guessing-heavy structures, port-only patterns, and the NonOverlapping
// consume path, then over random circuits.
func TestPhase2Differential(t *testing.T) {
	type workload struct {
		name string
		g    *graph.Circuit
		s    *graph.Circuit
		opts core.Options
	}
	cases := []workload{
		{"adder16-fa", gen.RippleAdder(16).C, stdcell.FA.Pattern(), core.Options{Globals: rails}},
		{"adder16-nand2", gen.RippleAdder(16).C, stdcell.NAND2.Pattern(), core.Options{Globals: rails}},
		{"mult4-fa", gen.ArrayMultiplier(4).C, stdcell.FA.Pattern(), core.Options{Globals: rails}},
		{"sram8x8-cell", gen.SRAMArray(8, 8).C, stdcell.SRAM6T.Pattern(), core.Options{Globals: rails}},
		{"shift8-dff", gen.ShiftRegister(8).C, stdcell.DFF.Pattern(), core.Options{Globals: rails}},
		{"rand400-nand2", gen.RandomLogic(400, 8, 11).C, stdcell.NAND2.Pattern(), core.Options{Globals: rails}},
		{"rand400-inv", gen.RandomLogic(400, 8, 11).C, stdcell.INV.Pattern(), core.Options{Globals: rails}},
		// No globals at all: the ball has no fixed seeds and every
		// candidate stalls into symmetric guessing.
		{"ring68-ring4", ring("g", 68), ring("s", 4), core.Options{}},
		// Port-only pattern against a switch grid: key on a device,
		// wildcard-free deep guessing.
		{"grid6-pass3", gen.SwitchGrid(6, 4).C, gen.PassChainPattern(3), core.Options{Globals: rails}},
		// NonOverlapping consumes devices between candidates, so later
		// balls must exclude them.
		{"adder16-fa-nonoverlap", gen.RippleAdder(16).C, stdcell.FA.Pattern(),
			core.Options{Globals: rails, Policy: core.NonOverlapping}},
		{"rand400-nand2-nonoverlap", gen.RandomLogic(400, 8, 11).C, stdcell.NAND2.Pattern(),
			core.Options{Globals: rails, Policy: core.NonOverlapping}},
	}
	for _, w := range cases {
		w := w
		t.Run(w.name, func(t *testing.T) {
			legacy := w.opts
			legacy.LegacyPhase2 = true
			want := findOrdered(t, w.g, w.s, legacy)
			got := findOrdered(t, w.g, w.s, w.opts)
			if !sameOrdered(want, got) {
				t.Errorf("legacy found %d instances, region %d (or order differs)\nlegacy: %v\nregion: %v",
					len(want), len(got), want, got)
			}
		})
	}

	t.Run("random", func(t *testing.T) {
		cells := []*stdcell.CellDef{stdcell.INV, stdcell.NAND2, stdcell.FA, stdcell.DFF}
		prop := func(seed int64, gRaw, pick uint8) bool {
			gates := 10 + int(gRaw%40)
			cell := cells[int(pick)%len(cells)]
			g := gen.RandomLogic(gates, 6, seed).C
			want := findOrdered(t, g, cell.Pattern(), core.Options{Globals: rails, LegacyPhase2: true})
			got := findOrdered(t, g, cell.Pattern(), core.Options{Globals: rails})
			if !sameOrdered(want, got) {
				t.Logf("seed=%d gates=%d cell=%s: legacy %d instances, region %d",
					seed, gates, cell.Name, len(want), len(got))
				return false
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
			t.Error(err)
		}
	})
}

// TestPhase2DifferentialParallel asserts engine agreement under FindParallel
// for several worker counts: per-worker region scratch, the shared
// type-label cache, and the canonical instance order must all behave
// identically across engines (exercised under -race in tier1).
func TestPhase2DifferentialParallel(t *testing.T) {
	g := gen.RandomLogic(600, 8, 23).C
	runPar := func(s *graph.Circuit, workers int, legacy bool) []string {
		t.Helper()
		var pool core.ScratchPool
		m, err := core.NewMatcher(g, core.Options{Globals: rails, LegacyPhase2: legacy, Scratch: &pool})
		if err != nil {
			t.Fatalf("NewMatcher: %v", err)
		}
		res, err := m.FindParallel(s, workers)
		if err != nil {
			t.Fatalf("FindParallel: %v", err)
		}
		out := make([]string, len(res.Instances))
		for i, in := range res.Instances {
			out[i] = in.String()
		}
		return out
	}
	for _, cell := range []*stdcell.CellDef{stdcell.NAND2, stdcell.FA} {
		want := runPar(cell.Pattern(), 1, true)
		for _, workers := range []int{1, 2, 4} {
			got := runPar(cell.Pattern(), workers, false)
			if !sameOrdered(want, got) {
				t.Errorf("%s workers=%d: legacy %d instances, region %d (or order differs)",
					cell.Name, workers, len(want), len(got))
			}
		}
	}
}

// TestPhase2DifferentialBind covers the pre-matched paths: bound ports and
// globals become fixed seeds at the head of every ball, and both engines
// must resolve them to the same instances.
func TestPhase2DifferentialBind(t *testing.T) {
	g := gen.RandomLogic(80, 5, 7).C
	var target string
	for _, n := range g.Nets {
		if !n.Global && n.Degree() >= 2 {
			target = n.Name
			break
		}
	}
	if target == "" {
		t.Fatal("no bindable net in the generated circuit")
	}
	opts := core.Options{Globals: rails, Bind: map[string]string{"A": target}}
	legacy := opts
	legacy.LegacyPhase2 = true
	want := findOrdered(t, g, stdcell.INV.Pattern(), legacy)
	got := findOrdered(t, g, stdcell.INV.Pattern(), opts)
	if !sameOrdered(want, got) {
		t.Errorf("bind: legacy %v, region %v", want, got)
	}
}
