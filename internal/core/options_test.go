package core

import (
	"strings"
	"testing"

	"subgemini/internal/graph"
	"subgemini/internal/stdcell"
)

func railNets(c *graph.Circuit) (vdd, gnd *graph.Net) {
	return c.AddNet("VDD"), c.AddNet("GND")
}

func TestNilAndEmptyInputs(t *testing.T) {
	if _, err := Find(nil, stdcell.INV.Pattern(), Options{}); err == nil {
		t.Error("nil main circuit accepted")
	}
	if _, err := Find(graph.New("g"), nil, Options{}); err == nil {
		t.Error("nil pattern accepted")
	}
	if _, err := Find(graph.New("g"), graph.New("s"), Options{}); err == nil {
		t.Error("device-less pattern accepted")
	}
}

func TestUnconnectedPatternNetRejected(t *testing.T) {
	s := stdcell.INV.Pattern()
	s.AddNet("floating")
	if _, err := Find(graph.New("g"), s, Options{}); err == nil {
		t.Error("pattern with unconnected net accepted")
	}
}

func TestDisconnectedPatternRejected(t *testing.T) {
	// Two inverters connected only through the rails: once VDD/GND are
	// global, the pattern has two components and must be rejected.
	build := func() *graph.Circuit {
		s := graph.New("twoinv")
		vdd, gnd := railNets(s)
		for _, suffix := range []string{"1", "2"} {
			a, y := s.AddNet("a"+suffix), s.AddNet("y"+suffix)
			stdcell.INV.MustInstantiate(s, "u"+suffix, map[string]*graph.Net{
				"A": a, "Y": y, "VDD": vdd, "GND": gnd,
			})
		}
		return s
	}
	g := graph.New("g")
	_, err := Find(g, build(), Options{Globals: []string{"VDD", "GND"}})
	if err == nil || !strings.Contains(err.Error(), "disconnected") {
		t.Errorf("disconnected pattern not rejected: %v", err)
	}
	// Without globals the rails are ordinary nets, the pattern is
	// connected, and matching must proceed (finding nothing in an empty
	// circuit is fine — but it must not error).
	g2 := graph.New("g2")
	if _, err := Find(g2, build(), Options{}); err != nil {
		t.Errorf("connected variant rejected: %v", err)
	}
}

func TestPatternGlobalMissingFromCircuit(t *testing.T) {
	// The circuit has no VDD net at all; the pattern requires it.  This is
	// "no instances", not an error.
	g := graph.New("g")
	gnd := g.AddNet("GND")
	a, y := g.AddNet("a"), g.AddNet("y")
	cls := []graph.TermClass{graph.ClassDS, graph.ClassGate, graph.ClassDS}
	g.MustAddDevice("m", "nmos", cls, []*graph.Net{a, y, gnd})
	res, err := Find(g, stdcell.INV.Pattern(), Options{Globals: []string{"VDD", "GND"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 0 {
		t.Errorf("found %d instances, want 0", len(res.Instances))
	}
}

func TestMaxInstancesOption(t *testing.T) {
	g := graph.New("chain")
	vdd, gnd := railNets(g)
	prev := g.AddNet("n0")
	for i := 0; i < 8; i++ {
		next := g.AddNet("n" + string(rune('1'+i)))
		stdcell.INV.MustInstantiate(g, "u"+string(rune('a'+i)), map[string]*graph.Net{
			"A": prev, "Y": next, "VDD": vdd, "GND": gnd,
		})
		prev = next
	}
	res, err := Find(g, stdcell.INV.Pattern(), Options{Globals: []string{"VDD", "GND"}, MaxInstances: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 3 {
		t.Errorf("found %d instances, want 3 (capped)", len(res.Instances))
	}
}

func TestNonOverlappingConsumesDevices(t *testing.T) {
	// A 4-stage inverter chain contains 3 overlapping BUF (double
	// inverter) instances; the non-overlapping policy must report at most
	// 2 disjoint ones, MatchAll all 3.
	build := func() *graph.Circuit {
		g := graph.New("chain")
		vdd, gnd := railNets(g)
		prev := g.AddNet("n0")
		for i := 0; i < 4; i++ {
			next := g.AddNet("n" + string(rune('1'+i)))
			stdcell.INV.MustInstantiate(g, "u"+string(rune('a'+i)), map[string]*graph.Net{
				"A": prev, "Y": next, "VDD": vdd, "GND": gnd,
			})
			prev = next
		}
		return g
	}
	opts := Options{Globals: []string{"VDD", "GND"}}
	all, err := Find(build(), stdcell.BUF.Pattern(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Instances) != 3 {
		t.Errorf("MatchAll found %d BUFs, want 3", len(all.Instances))
	}
	opts.Policy = NonOverlapping
	dis, err := Find(build(), stdcell.BUF.Pattern(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(dis.Instances) != 2 {
		t.Errorf("NonOverlapping found %d BUFs, want 2", len(dis.Instances))
	}
	// Disjointness.
	seen := map[string]bool{}
	for _, inst := range dis.Instances {
		for _, d := range inst.DevMap {
			if seen[d.Name] {
				t.Errorf("device %s in two non-overlapping instances", d.Name)
			}
			seen[d.Name] = true
		}
	}
}

func TestMatcherReuseAndResetConsumed(t *testing.T) {
	g := graph.New("chain")
	vdd, gnd := railNets(g)
	a, y := g.AddNet("a"), g.AddNet("y")
	stdcell.INV.MustInstantiate(g, "u1", map[string]*graph.Net{"A": a, "Y": y, "VDD": vdd, "GND": gnd})

	m, err := NewMatcher(g, Options{Globals: []string{"VDD", "GND"}, Policy: NonOverlapping})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Find(stdcell.INV.Pattern())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 1 {
		t.Fatalf("first pass found %d, want 1", len(res.Instances))
	}
	// Second pass: devices consumed.
	res, err = m.Find(stdcell.INV.Pattern())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 0 {
		t.Errorf("second pass found %d, want 0 (consumed)", len(res.Instances))
	}
	m.ResetConsumed()
	res, err = m.Find(stdcell.INV.Pattern())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 1 {
		t.Errorf("after reset found %d, want 1", len(res.Instances))
	}
}

func TestTraceOutput(t *testing.T) {
	g := graph.New("g")
	vdd, gnd := railNets(g)
	a, y := g.AddNet("a"), g.AddNet("y")
	stdcell.INV.MustInstantiate(g, "u1", map[string]*graph.Net{"A": a, "Y": y, "VDD": vdd, "GND": gnd})
	var buf strings.Builder
	res, err := Find(g, stdcell.INV.Pattern(), Options{Globals: []string{"VDD", "GND"}, Trace: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 1 {
		t.Fatalf("found %d, want 1", len(res.Instances))
	}
	out := buf.String()
	for _, want := range []string{"phase1:", "phase2:", "instance #1"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}

func TestSeedsProduceSameResult(t *testing.T) {
	g := func() *graph.Circuit {
		c := graph.New("g")
		vdd, gnd := railNets(c)
		nets := map[string]*graph.Net{
			"A": c.AddNet("a"), "B": c.AddNet("b"), "Y": c.AddNet("y"),
			"VDD": vdd, "GND": gnd,
		}
		stdcell.XOR2.MustInstantiate(c, "u1", nets)
		return c
	}
	for seed := uint64(0); seed < 5; seed++ {
		res, err := Find(g(), stdcell.XOR2.Pattern(), Options{Globals: []string{"VDD", "GND"}, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Instances) != 1 {
			t.Errorf("seed %d: found %d instances, want 1", seed, len(res.Instances))
		}
	}
}

func TestReportFields(t *testing.T) {
	g := graph.New("g")
	vdd, gnd := railNets(g)
	a, y := g.AddNet("a"), g.AddNet("y")
	stdcell.INV.MustInstantiate(g, "u1", map[string]*graph.Net{"A": a, "Y": y, "VDD": vdd, "GND": gnd})
	res, err := Find(g, stdcell.INV.Pattern(), Options{Globals: []string{"VDD", "GND"}})
	if err != nil {
		t.Fatal(err)
	}
	r := &res.Report
	if r.Instances != 1 || r.MatchedDevices != 2 {
		t.Errorf("Instances=%d MatchedDevices=%d, want 1, 2", r.Instances, r.MatchedDevices)
	}
	if r.CVSize < 1 || r.Candidates < 1 || r.KeyVertex == "" {
		t.Errorf("report incomplete: %s", r.String())
	}
	if r.Total() < r.Phase1Duration || r.Total() < r.Phase2Duration {
		t.Error("Total() smaller than a phase duration")
	}
	if !strings.Contains(r.String(), "instances=1") {
		t.Errorf("String() = %q", r.String())
	}
}

// TestPatternLargerThanCircuit: Phase I's consistency check must prove
// non-existence without Phase II work.
func TestPatternLargerThanCircuit(t *testing.T) {
	g := graph.New("tiny")
	vdd, gnd := railNets(g)
	a, y := g.AddNet("a"), g.AddNet("y")
	stdcell.INV.MustInstantiate(g, "u1", map[string]*graph.Net{"A": a, "Y": y, "VDD": vdd, "GND": gnd})
	res, err := Find(g, stdcell.FA.Pattern(), Options{Globals: []string{"VDD", "GND"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 0 {
		t.Errorf("found %d instances, want 0", len(res.Instances))
	}
	if !res.Report.EarlyAbort {
		t.Error("Phase I did not early-abort on an impossible pattern")
	}
	if res.Report.Candidates != 0 {
		t.Errorf("Phase II examined %d candidates, want 0", res.Report.Candidates)
	}
}

func TestSummaryAndString(t *testing.T) {
	g := graph.New("g")
	vdd, gnd := railNets(g)
	a, y := g.AddNet("a"), g.AddNet("y")
	stdcell.INV.MustInstantiate(g, "u1", map[string]*graph.Net{"A": a, "Y": y, "VDD": vdd, "GND": gnd})
	res, err := Find(g, stdcell.INV.Pattern(), Options{Globals: []string{"VDD", "GND"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Summary(), "1 instance(s)") {
		t.Errorf("Summary = %q", res.Summary())
	}
	if got := res.Instances[0].String(); got != "{u1.MP u1.MN}" {
		t.Errorf("Instance.String = %q", got)
	}
}
