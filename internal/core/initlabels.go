package core

import (
	"subgemini/internal/graph"
	"subgemini/internal/label"
)

// InitLabels is the initial Phase I labeling of a main circuit, computed
// once and shared read-only by any number of matchers over that circuit.
// Every label constructor is a pure hash of its inputs (type name, degree,
// global-net name), so the labeling is identical no matter which matcher
// computes it — precomputing it is safe as long as the circuit's structure
// and global marks do not change afterwards.
//
// This is what lets a library sweep pay the O(devices+nets) initial
// labeling cost once instead of once per pattern: each per-pattern matcher
// adopts the shared slice through Options.InitLabels and copies from it
// instead of rebuilding it.
type InitLabels struct {
	g       *graph.Circuit
	globals int
	lab     []label.Value
}

// NewInitLabels computes the initial labeling of g: devices get their type
// label folded with the fixed labels of global nets on their terminals,
// global nets get name-keyed labels, and every other net is labeled by its
// degree.  This mirrors exactly what a Matcher computes lazily on its
// first Find, minus the ablation switches (matchers running with
// AblateGlobalFold ignore shared labelings).
func NewInitLabels(g *graph.Circuit) *InitLabels {
	sp := label.NewSpace(g)
	lab := make([]label.Value, sp.Size())
	types := make(map[string]label.Value, 4)
	typeOf := func(typ string) label.Value {
		if v, ok := types[typ]; ok {
			return v
		}
		v := label.TypeLabel(typ)
		types[typ] = v
		return v
	}
	globals := 0
	for _, d := range g.Devices {
		lab[sp.DevVID(d)] = foldedDeviceLabel(typeOf, d)
	}
	for _, n := range g.Nets {
		v := sp.NetVID(n)
		if n.Global {
			lab[v] = label.GlobalLabel(n.Name)
			globals++
		} else {
			lab[v] = label.DegreeLabel(n.Degree())
		}
	}
	return &InitLabels{g: g, globals: globals, lab: lab}
}

// Fits reports whether the precomputed labeling applies to g as currently
// marked.  The circuit must be the same object and have the same number of
// global nets: global marks are monotonic (nothing ever clears them), so an
// equal count means the same set of globals and therefore the same labels.
func (il *InitLabels) Fits(g *graph.Circuit) bool {
	if il == nil || il.g != g {
		return false
	}
	globals := 0
	for _, n := range g.Nets {
		if n.Global {
			globals++
		}
	}
	return globals == il.globals
}

// foldedDeviceLabel is initialDeviceLabel without a Matcher: the device's
// type label folded with the fixed labels of global nets on its terminals.
func foldedDeviceLabel(typeOf func(string) label.Value, d *graph.Device) label.Value {
	acc := typeOf(d.Type)
	for _, pin := range d.Pins {
		if pin.Net.Global {
			acc = label.Combine(acc, pin.Class, label.GlobalLabel(pin.Net.Name))
		}
	}
	return acc
}
