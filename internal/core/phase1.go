package core

import (
	"fmt"
	"sort"

	"subgemini/internal/csr"
	"subgemini/internal/graph"
	"subgemini/internal/label"
	"subgemini/internal/stats"
	"subgemini/internal/trace"
)

// Vertex states used by Phase I.  Pattern vertices carry valid/corrupt bits
// (paper §III); main-graph vertices carry active/pruned bits implementing
// the "removed from consideration" consistency-check optimization (Fig. 4).
// Global nets on both sides hold fixed name-derived labels, are never
// relabeled, never corrupt, and never enter partitions or the candidate
// vector (paper §V.A).
type p1State uint8

const (
	p1Valid   p1State = iota // label provably equals the image's label
	p1Corrupt                // label may differ from the image's label
	p1Global                 // special signal: fixed label, outside the algorithm
)

type g1State uint8

const (
	g1Active g1State = iota // still a possible image of some valid pattern vertex
	g1Pruned                // label matched no valid pattern partition; keeps last label
	g1Global                // special signal
)

// phase1 carries the state of the candidate-vector generation phase.  Two
// interchangeable engines drive the relabeling passes: the default
// data-oriented engine walks a flat CSR view with compact active-vertex
// worklists (and can stripe the main-graph side across goroutines), while
// the legacy engine walks Device/Net pointers and re-scans every vertex
// each pass.  Both produce bit-identical labels, prune decisions, and
// candidate vectors; Options.LegacyPhase1 keeps the reference engine
// selectable for differential testing.
type phase1 struct {
	m   *Matcher
	pat *pattern
	rep *stats.Report

	sSpace, gSpace *label.Space
	sLab, gLab     []label.Value
	sNew, gNew     []label.Value // legacy double-buffers; nil in the CSR engine
	sState         []p1State
	gState         []g1State

	// legacy selects the pointer-walking reference engine.
	legacy bool
	// workers is the goroutine count for main-graph passes (>= 1).
	workers int

	// CSR engine state: flat views of both graphs plus the active-vertex
	// worklists.  The lists hold exactly the valid (pattern) or active
	// (main) non-global vertices of each kind, in ascending VID order, and
	// are compacted as vertices corrupt or prune, so a pruned vertex costs
	// nothing after the pass that pruned it.
	sCSR, gCSR       *csr.Graph
	sActDev, sActNet []int32
	gActDev, gActNet []int32

	// Reusable consistency-count maps of the legacy engine, cleared rather
	// than reallocated between passes.
	sCount, gCount map[label.Value]int

	// Consistency scratch of the CSR engine: the valid pattern labels of a
	// pass, sorted and run-length compressed into distinct keys with
	// pattern counts (sCnt) and main-graph counts (gCnt).  Flat arrays
	// instead of maps: the per-vertex prune test becomes a binary search.
	sKeys []label.Value
	sCnt  []int32
	gCnt  []int32

	// par holds the per-goroutine scratch for striped main-graph passes;
	// allocated lazily on the first striped consistency check.
	par *p1Par

	// cancelErr latches the first non-nil Options.Cancel result observed
	// inside a relabeling pass (the strided CSR path polls every
	// p1CancelBlock worklist vertices); run checks it after each pass.
	cancelErr error

	// relabelEvents counts relabeling passes executed (net and device passes
	// each count one); seqComplete records that run reached candidate
	// selection rather than aborting on a consistency verdict.  The
	// incremental engine (incremental.go) captures both: relabelEvents
	// bounds how far label influence can have traveled from an edit (one hop
	// per pass), and seqComplete tells a later replay whether the captured
	// final labels are the labels of the full pattern-driven pass sequence.
	relabelEvents int
	seqComplete   bool

	// tracer, when non-nil, records per-round state for the Fig. 2/4-style
	// rendering (Options.TraceTable).
	tracer *phase1Tracer

	// traceLabs is reusable scratch for the Options.Tracer pass events:
	// valid pattern labels are gathered and sorted here to count
	// partitions without allocating on the per-pass path (the no-op
	// tracer contract).  Allocated once, only when a Tracer is installed.
	traceLabs []label.Value
}

func newPhase1(m *Matcher, pat *pattern, rep *stats.Report) *phase1 {
	p := &phase1{
		m: m, pat: pat, rep: rep,
		sSpace: pat.space,
		gSpace: m.gSpace,
		legacy: m.opts.LegacyPhase1,
	}
	p.workers = m.opts.Workers
	if p.workers < 1 || p.legacy {
		p.workers = 1
	}
	p.sLab = make([]label.Value, p.sSpace.Size())
	p.sState = make([]p1State, p.sSpace.Size())
	p.gLab = make([]label.Value, p.gSpace.Size())
	p.gState = make([]g1State, p.gSpace.Size())
	if p.legacy {
		p.sNew = make([]label.Value, p.sSpace.Size())
		p.gNew = make([]label.Value, p.gSpace.Size())
	}

	for _, d := range pat.s.Devices {
		v := p.sSpace.DevVID(d)
		if d.Type == graph.WildcardType {
			// A wildcard's image may have any type, so its label carries no
			// usable information (paper Invariant 1 cannot hold for it).
			p.sState[v] = p1Corrupt
			continue
		}
		p.sLab[v] = initialDeviceLabel(m, d)
	}
	for _, n := range pat.s.Nets {
		v := p.sSpace.NetVID(n)
		switch {
		case n.Global:
			p.sLab[v] = label.GlobalLabel(n.Name)
			p.sState[v] = p1Global
		case pat.bind[n] != "":
			// Bound ports are pre-matched like specials; the label keys on
			// the target net's name so both sides agree (paper §V.A:
			// user-supplied constraints on the subcircuit).
			p.sLab[v] = label.BindLabel(pat.bind[n])
			p.sState[v] = p1Global
		case n.Port:
			// External nets have a different degree in the main graph, so
			// their labels are corrupt from the start (paper Fig. 2).
			p.sLab[v] = label.DegreeLabel(n.Degree())
			p.sState[v] = p1Corrupt
		default:
			p.sLab[v] = label.DegreeLabel(n.Degree())
		}
	}
	if m.gInitLab == nil {
		if il := m.opts.InitLabels; !m.opts.AblateGlobalFold && il.Fits(m.g) {
			// A precomputed labeling was supplied (library sweep): adopt the
			// shared slice read-only instead of rebuilding it per matcher.
			m.gInitLab = il.lab
		} else {
			m.gInitLab = make([]label.Value, p.gSpace.Size())
			for _, d := range m.g.Devices {
				m.gInitLab[p.gSpace.DevVID(d)] = initialDeviceLabel(m, d)
			}
			for _, n := range m.g.Nets {
				v := p.gSpace.NetVID(n)
				if n.Global {
					m.gInitLab[v] = label.GlobalLabel(n.Name)
				} else {
					m.gInitLab[v] = label.DegreeLabel(n.Degree())
				}
			}
		}
	}
	copy(p.gLab, m.gInitLab)
	for _, n := range m.g.Nets {
		if n.Global {
			p.gState[p.gSpace.NetVID(n)] = g1Global
		}
	}
	// Bind targets get the same fixed labels as their pattern ports,
	// overriding the cached initial label for this run only.
	for _, target := range pat.bind {
		if gn := m.g.NetByName(target); gn != nil {
			v := p.gSpace.NetVID(gn)
			p.gLab[v] = label.BindLabel(target)
			p.gState[v] = g1Global
		}
	}
	if p.legacy {
		p.sCount = make(map[label.Value]int)
		p.gCount = make(map[label.Value]int)
	} else {
		p.initCSR()
	}
	return p
}

// initialDeviceLabel is the vertex-invariant label of a device: its type,
// folded with the fixed labels of any global nets on its terminals.  Global
// nets match by name, so a device's rail connections are invariant across
// the pattern and the main graph; folding them in sharpens the initial
// partitioning (a transistor sourcing from VDD never shares a partition
// with one buried in a stack), which is what makes rail-anchored patterns
// cheap to locate.
func initialDeviceLabel(m *Matcher, d *graph.Device) label.Value {
	if m.opts.AblateGlobalFold {
		return m.typeLabel(d.Type)
	}
	return foldedDeviceLabel(m.typeLabel, d)
}

// run executes the optimized Phase I algorithm (paper §III) and returns the
// key vertex and candidate vector.  An empty candidate vector means Phase I
// proved no instance exists.  The error is non-nil only when Options.Cancel
// fired: cancellation is polled before every relabeling pass, and the CSR
// engine additionally polls inside each main-graph pass (every
// p1CancelBlock worklist vertices, with striped workers watching a shared
// stop flag), so a deadline holds even while one pass walks a huge circuit.
func (p *phase1) run() (key label.VID, cv []label.VID, err error) {
	p.rep.Phase1Workers = p.workers
	if p.m.opts.TraceTable != nil {
		p.tracer = newPhase1Tracer(p)
	}
	etr := p.m.opts.Tracer
	if etr != nil {
		p.traceLabs = make([]label.Value, 0, p.sSpace.Size())
	}
	if err := p.m.opts.cancelled(); err != nil {
		return 0, nil, err
	}
	// Consistency check on the initial labeling (paper Fig. 4 prunes after
	// the initial labeling).
	if !p.consistency(false) || !p.consistency(true) {
		p.rep.EarlyAbort = true
		return 0, nil, nil
	}
	if p.tracer != nil {
		p.tracer.snapshot("initial")
	}

	maxRounds := p.sSpace.Size() + 8
	prevSig := p.partitionSignature()
	for round := 0; round < maxRounds; round++ {
		if err := p.m.opts.cancelled(); err != nil {
			return 0, nil, err
		}
		p.rep.Phase1Passes++

		// Relabel all valid net vertices, then corrupt those with corrupt
		// device neighbors.  A cancellation latched inside the pass must be
		// reported before the consistency bool is interpreted, so a cut
		// pass is never misread as an early abort.
		p.relabelNets()
		if p.cancelErr != nil {
			return 0, nil, p.cancelErr
		}
		p.corruptNets()
		if !p.consistency(false) {
			p.rep.EarlyAbort = true
			return 0, nil, nil
		}
		if p.tracer != nil {
			p.tracer.snapshot(fmt.Sprintf("nets %d", round+1))
		}
		if etr != nil {
			p.emitPass(etr, round+1, trace.SideNets)
		}
		if p.allCorrupt(false) {
			break
		}

		// Relabel all valid device vertices, then corrupt those with
		// corrupt net neighbors.
		p.relabelDevices()
		if p.cancelErr != nil {
			return 0, nil, p.cancelErr
		}
		p.corruptDevices()
		if !p.consistency(true) {
			p.rep.EarlyAbort = true
			return 0, nil, nil
		}
		if p.tracer != nil {
			p.tracer.snapshot(fmt.Sprintf("devs %d", round+1))
		}
		if etr != nil {
			p.emitPass(etr, round+1, trace.SideDevices)
		}
		if p.allCorrupt(true) {
			break
		}

		// Stability guard: when the valid partition structure of the
		// pattern stops refining, further rounds cannot shrink the
		// candidate vector (needed for patterns with no external nets,
		// which never corrupt).
		sig := p.partitionSignature()
		if sig == prevSig {
			break
		}
		prevSig = sig
	}
	p.seqComplete = true
	key, cv = p.chooseCandidates()
	return key, cv, nil
}

// emitPass publishes one Phase I pass event: the pattern's valid/corrupt
// split and partition count for the relabeled vertex kind, and the main
// graph's active/pruned split after the consistency check.  The partition
// count reuses p.traceLabs, so the per-pass path performs no allocations
// whatever the installed sink does with the event.
func (p *phase1) emitPass(etr trace.Tracer, pass int, side trace.Side) {
	e := trace.Event{Kind: trace.KindPhase1Pass, Pass: pass, Side: side}
	p.traceLabs = p.traceLabs[:0]
	// Device and net vertices occupy contiguous VID ranges (devices first),
	// so one range scan per side replaces the per-vertex DevVID/NetVID
	// translation the pointer walk needed.
	var sLo, sHi, gLo, gHi int
	if side == trace.SideDevices {
		sHi, gHi = p.sSpace.NumDevices(), p.gSpace.NumDevices()
	} else {
		sLo, sHi = p.sSpace.NumDevices(), p.sSpace.Size()
		gLo, gHi = p.gSpace.NumDevices(), p.gSpace.Size()
	}
	for v := sLo; v < sHi; v++ {
		switch p.sState[v] {
		case p1Valid:
			e.PatternValid++
			p.traceLabs = append(p.traceLabs, p.sLab[v])
		case p1Corrupt:
			e.PatternCorrupt++
		}
	}
	for v := gLo; v < gHi; v++ {
		switch p.gState[v] {
		case g1Active:
			e.MainActive++
		case g1Pruned:
			e.MainPruned++
		}
	}
	e.PatternPartitions = countDistinct(p.traceLabs)
	etr.Event(e)
}

// countDistinct sorts labs in place (allocation-free shell sort; the slice
// is pattern-sized) and counts distinct values.
func countDistinct(labs []label.Value) int {
	for gap := len(labs) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(labs); i++ {
			v := labs[i]
			j := i
			for j >= gap && v < labs[j-gap] {
				labs[j] = labs[j-gap]
				j -= gap
			}
			labs[j] = v
		}
	}
	n := 0
	for i, v := range labs {
		if i == 0 || v != labs[i-1] {
			n++
		}
	}
	return n
}

// relabelNets applies the Fig. 3 relabeling function to every valid pattern
// net and every active main-graph net simultaneously.
func (p *phase1) relabelNets() {
	p.relabelEvents++
	if p.legacy {
		p.relabelNetsLegacy()
		return
	}
	p.relabelCSR(p.sActNet, p.gActNet)
}

// relabelDevices is the device-side counterpart of relabelNets.
func (p *phase1) relabelDevices() {
	p.relabelEvents++
	if p.legacy {
		p.relabelDevicesLegacy()
		return
	}
	p.relabelCSR(p.sActDev, p.gActDev)
}

func (p *phase1) relabelNetsLegacy() {
	for _, n := range p.pat.s.Nets {
		v := p.sSpace.NetVID(n)
		if p.sState[v] != p1Valid {
			continue
		}
		p.sNew[v] = p.relabelNetFrom(n, p.sSpace, p.sLab)
	}
	for _, n := range p.m.g.Nets {
		v := p.gSpace.NetVID(n)
		if p.gState[v] != g1Active {
			continue
		}
		p.gNew[v] = p.relabelNetFrom(n, p.gSpace, p.gLab)
	}
	p.commitNets()
}

func (p *phase1) relabelNetFrom(n *graph.Net, sp *label.Space, lab []label.Value) label.Value {
	acc := lab[sp.NetVID(n)]
	for _, conn := range n.Conns {
		class := conn.Dev.Pins[conn.Pin].Class
		acc = label.Combine(acc, class, lab[sp.DevVID(conn.Dev)])
	}
	return acc
}

func (p *phase1) relabelDevicesLegacy() {
	for _, d := range p.pat.s.Devices {
		v := p.sSpace.DevVID(d)
		if p.sState[v] != p1Valid {
			continue
		}
		p.sNew[v] = p.relabelDevFrom(d, p.sSpace, p.sLab)
	}
	for _, d := range p.m.g.Devices {
		v := p.gSpace.DevVID(d)
		if p.gState[v] != g1Active {
			continue
		}
		p.gNew[v] = p.relabelDevFrom(d, p.gSpace, p.gLab)
	}
	p.commitDevices()
}

func (p *phase1) relabelDevFrom(d *graph.Device, sp *label.Space, lab []label.Value) label.Value {
	acc := lab[sp.DevVID(d)]
	for _, pin := range d.Pins {
		acc = label.Combine(acc, pin.Class, lab[sp.NetVID(pin.Net)])
	}
	return acc
}

func (p *phase1) commitNets() {
	for _, n := range p.pat.s.Nets {
		v := p.sSpace.NetVID(n)
		if p.sState[v] == p1Valid {
			p.sLab[v] = p.sNew[v]
		}
	}
	for _, n := range p.m.g.Nets {
		v := p.gSpace.NetVID(n)
		if p.gState[v] == g1Active {
			p.gLab[v] = p.gNew[v]
		}
	}
}

func (p *phase1) commitDevices() {
	for _, d := range p.pat.s.Devices {
		v := p.sSpace.DevVID(d)
		if p.sState[v] == p1Valid {
			p.sLab[v] = p.sNew[v]
		}
	}
	for _, d := range p.m.g.Devices {
		v := p.gSpace.DevVID(d)
		if p.gState[v] == g1Active {
			p.gLab[v] = p.gNew[v]
		}
	}
}

// corruptNets marks valid pattern nets corrupt when any neighboring device
// is corrupt; its label may then differ from its image's label.
func (p *phase1) corruptNets() {
	if !p.legacy {
		p.sActNet = p.corruptCSR(p.sActNet)
		return
	}
	for _, n := range p.pat.s.Nets {
		v := p.sSpace.NetVID(n)
		if p.sState[v] != p1Valid {
			continue
		}
		for _, conn := range n.Conns {
			if p.sState[p.sSpace.DevVID(conn.Dev)] == p1Corrupt {
				p.sState[v] = p1Corrupt
				break
			}
		}
	}
}

// corruptDevices marks valid pattern devices corrupt when any neighboring
// net is corrupt.  Global nets never corrupt their neighbors.
func (p *phase1) corruptDevices() {
	if !p.legacy {
		p.sActDev = p.corruptCSR(p.sActDev)
		return
	}
	for _, d := range p.pat.s.Devices {
		v := p.sSpace.DevVID(d)
		if p.sState[v] != p1Valid {
			continue
		}
		for _, pin := range d.Pins {
			if p.sState[p.sSpace.NetVID(pin.Net)] == p1Corrupt {
				p.sState[v] = p1Corrupt
				break
			}
		}
	}
}

// allCorrupt reports whether every pattern vertex of the given kind (devices
// if devs, otherwise non-global nets) has been invalidated.
func (p *phase1) allCorrupt(devs bool) bool {
	if !p.legacy {
		// The worklists hold exactly the valid vertices of each kind.
		if devs {
			return len(p.sActDev) == 0
		}
		return len(p.sActNet) == 0
	}
	if devs {
		for _, d := range p.pat.s.Devices {
			if p.sState[p.sSpace.DevVID(d)] == p1Valid {
				return false
			}
		}
		return true
	}
	for _, n := range p.pat.s.Nets {
		if p.sState[p.sSpace.NetVID(n)] == p1Valid {
			return false
		}
	}
	return true
}

// consistency compares valid pattern partitions of one vertex kind against
// the active main-graph partitions with the same labels (paper §III).  It
// prunes main-graph vertices whose labels match no valid pattern partition
// and returns false when some main-graph partition is smaller than the
// same-label pattern partition, which proves that no instance exists.
func (p *phase1) consistency(devs bool) bool {
	if !p.legacy {
		return p.consistencyCSR(devs)
	}
	clear(p.sCount)
	if devs {
		for _, d := range p.pat.s.Devices {
			v := p.sSpace.DevVID(d)
			if p.sState[v] == p1Valid {
				p.sCount[p.sLab[v]]++
			}
		}
	} else {
		for _, n := range p.pat.s.Nets {
			v := p.sSpace.NetVID(n)
			if p.sState[v] == p1Valid {
				p.sCount[p.sLab[v]]++
			}
		}
	}
	if len(p.sCount) == 0 {
		// Nothing valid on this side: no constraints to apply, and the
		// main-graph side must be left untouched for contribution labels.
		return true
	}
	clear(p.gCount)
	prune := func(v label.VID) {
		if p.gState[v] != g1Active {
			return
		}
		if _, ok := p.sCount[p.gLab[v]]; !ok {
			p.gState[v] = g1Pruned
			p.rep.Phase1Pruned++
		} else {
			p.gCount[p.gLab[v]]++
		}
	}
	if devs {
		for _, d := range p.m.g.Devices {
			prune(p.gSpace.DevVID(d))
		}
	} else {
		for _, n := range p.m.g.Nets {
			prune(p.gSpace.NetVID(n))
		}
	}
	for lab, cs := range p.sCount {
		if p.gCount[lab] < cs {
			return false
		}
	}
	return true
}

// partitionSignature canonically encodes the valid partition structure of
// the pattern, used by the stability guard.  Two rounds with the same
// signature refine identically forever after.
func (p *phase1) partitionSignature() string {
	ids := make(map[label.Value]int)
	sig := make([]byte, 0, p.sSpace.Size()*2)
	for v := 0; v < p.sSpace.Size(); v++ {
		sig = append(sig, byte(p.sState[v]))
		if p.sState[v] != p1Valid {
			continue
		}
		id, ok := ids[p.sLab[v]]
		if !ok {
			id = len(ids)
			ids[p.sLab[v]] = id
		}
		sig = append(sig, byte(id), byte(id>>8))
	}
	return string(sig)
}

// chooseCandidates picks the smallest active main-graph partition whose
// label also labels valid pattern vertices; ties prefer smaller pattern
// partitions, then lower labels for determinism.  The first pattern vertex
// with the chosen label becomes the key vertex.
func (p *phase1) chooseCandidates() (label.VID, []label.VID) {
	type part struct {
		lab    label.Value
		dev    bool
		sFirst label.VID
		sCount int
	}
	sParts := make(map[label.Value]*part)
	order := make([]*part, 0)
	addS := func(v label.VID) {
		lab := p.sLab[v]
		pp, ok := sParts[lab]
		if !ok {
			pp = &part{lab: lab, dev: p.sSpace.IsDevice(v), sFirst: v}
			sParts[lab] = pp
			order = append(order, pp)
		}
		pp.sCount++
	}
	// The CSR worklists hold exactly the valid (resp. active) vertices in
	// ascending VID order, devices before nets — the same order as the
	// legacy full scan, so the sFirst tiebreak and the per-label candidate
	// order are identical between engines.
	if p.legacy {
		for v := 0; v < p.sSpace.Size(); v++ {
			if p.sState[v] == p1Valid {
				addS(label.VID(v))
			}
		}
	} else {
		for _, v := range p.sActDev {
			addS(label.VID(v))
		}
		for _, v := range p.sActNet {
			addS(label.VID(v))
		}
	}
	if len(order) == 0 {
		return p.fallbackCandidates()
	}
	// Group active main-graph vertices by label, split by vertex kind so a
	// cross-kind label collision cannot mix devices and nets.
	gDev := make(map[label.Value][]label.VID)
	gNet := make(map[label.Value][]label.VID)
	addG := func(v label.VID) {
		if _, ok := sParts[p.gLab[v]]; !ok {
			return
		}
		if p.gSpace.IsDevice(v) {
			gDev[p.gLab[v]] = append(gDev[p.gLab[v]], v)
		} else {
			gNet[p.gLab[v]] = append(gNet[p.gLab[v]], v)
		}
	}
	if p.legacy {
		for v := 0; v < p.gSpace.Size(); v++ {
			if p.gState[v] == g1Active {
				addG(label.VID(v))
			}
		}
	} else {
		for _, v := range p.gActDev {
			addG(label.VID(v))
		}
		for _, v := range p.gActNet {
			addG(label.VID(v))
		}
	}
	var best *part
	var bestCV []label.VID
	for _, pp := range order {
		var cands []label.VID
		if pp.dev {
			cands = gDev[pp.lab]
		} else {
			cands = gNet[pp.lab]
		}
		if len(cands) < pp.sCount {
			// A main-graph partition smaller than its pattern partition
			// proves no instance exists.
			p.rep.EarlyAbort = true
			return 0, nil
		}
		if best == nil ||
			len(cands) < len(bestCV) ||
			(len(cands) == len(bestCV) && pp.sCount < best.sCount) ||
			(len(cands) == len(bestCV) && pp.sCount == best.sCount && pp.lab < best.lab) {
			best = pp
			bestCV = cands
		}
	}
	if best == nil {
		return 0, nil
	}
	sort.Slice(bestCV, func(i, j int) bool { return bestCV[i] < bestCV[j] })
	return best.sFirst, bestCV
}

// fallbackCandidates handles patterns with no valid vertices at all (every
// device a wildcard and every net external): the key is the first pattern
// device and the candidate vector is every arity-compatible main-graph
// device.  Complete, but with no Phase I filtering.
func (p *phase1) fallbackCandidates() (label.VID, []label.VID) {
	key := p.pat.s.Devices[0]
	var cv []label.VID
	for _, d := range p.m.g.Devices {
		if len(d.Pins) != len(key.Pins) {
			continue
		}
		if key.Type != graph.WildcardType && d.Type != key.Type {
			continue
		}
		cv = append(cv, p.gSpace.DevVID(d))
	}
	return p.sSpace.DevVID(key), cv
}
