package core_test

import (
	"testing"

	"subgemini/internal/core"
	"subgemini/internal/gen"
	"subgemini/internal/stdcell"
)

// TestRegionGuessAllocsFlat pins the allocation behavior of the region
// engine's guess path: snapshots and guess candidate lists are recycled by
// depth through the ScratchPool, so once the pools are warm a
// backtrack-heavy run performs no per-guess allocations.  The whole-graph
// engine copies a fresh candidate list on every guess, so its warmed
// allocation count exceeds the region engine's by at least one per guess —
// asserting the gap proves the region guess path is allocation-free without
// pinning a brittle absolute count.
func TestRegionGuessAllocsFlat(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun counts race-detector instrumentation allocations; the gap assertion only holds without -race")
	}
	g, s := gen.SwitchGrid(16, 8).C, gen.PassChainPattern(8)
	var pool core.ScratchPool
	m, err := core.NewMatcher(g, core.Options{Scratch: &pool})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Find(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Guesses < 15 || res.Report.Backtracks < 14 {
		t.Fatalf("workload is not backtrack-heavy: guesses=%d backtracks=%d",
			res.Report.Guesses, res.Report.Backtracks)
	}
	region := testing.AllocsPerRun(5, func() {
		if _, err := m.Find(s); err != nil {
			t.Fatal(err)
		}
	})

	ml, err := core.NewMatcher(g, core.Options{LegacyPhase2: true, Scratch: &pool})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ml.Find(s); err != nil {
		t.Fatal(err)
	}
	legacy := testing.AllocsPerRun(5, func() {
		if _, err := ml.Find(s); err != nil {
			t.Fatal(err)
		}
	})

	// Both engines share the per-run overhead (pattern construction, result
	// assembly); the legacy engine adds at least one allocation per guess.
	if region+float64(res.Report.Guesses)/2 > legacy {
		t.Errorf("region engine allocates on the guess path: region=%.0f legacy=%.0f guesses=%d",
			region, legacy, res.Report.Guesses)
	}
	// Generous absolute ceiling so a regression that adds per-pass or
	// per-candidate allocations fails even if it hits both engines.
	if region > 250 {
		t.Errorf("warmed region run allocates %.0f times, want <= 250", region)
	}
}

// TestRegionReportMetrics checks the region engine's Report
// instrumentation: radius from the key vertex, per-candidate ball sizes
// accumulated, and all three fields zero when the whole-graph engine ran.
func TestRegionReportMetrics(t *testing.T) {
	g := gen.RippleAdder(16).C
	res, err := core.Find(g, stdcell.FA.Pattern(), core.Options{Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	rep := &res.Report
	if rep.RegionRadius <= 0 {
		t.Errorf("RegionRadius = %d, want > 0", rep.RegionRadius)
	}
	if rep.RegionMaxSize <= 0 || rep.RegionMaxSize > g.NumDevices()+g.NumNets() {
		t.Errorf("RegionMaxSize = %d, want in 1..|G|=%d", rep.RegionMaxSize, g.NumDevices()+g.NumNets())
	}
	if rep.RegionBallSum < rep.Candidates {
		t.Errorf("RegionBallSum = %d < Candidates = %d; every examined candidate extracts a non-empty ball",
			rep.RegionBallSum, rep.Candidates)
	}
	if avg := rep.RegionAvgSize(); avg <= 0 || avg > float64(rep.RegionMaxSize) {
		t.Errorf("RegionAvgSize() = %v, want in (0, %d]", avg, rep.RegionMaxSize)
	}

	legacy, err := core.Find(g, stdcell.FA.Pattern(), core.Options{Globals: rails, LegacyPhase2: true})
	if err != nil {
		t.Fatal(err)
	}
	lr := &legacy.Report
	if lr.RegionRadius != 0 || lr.RegionMaxSize != 0 || lr.RegionBallSum != 0 {
		t.Errorf("whole-graph run reports region metrics: radius=%d max=%d sum=%d",
			lr.RegionRadius, lr.RegionMaxSize, lr.RegionBallSum)
	}
}

// TestRegionScratchReuse runs many matches through one pool, interleaving
// circuits of different sizes so the pool's size check discards stale
// scratch, and confirms results stay correct throughout — the clean-state
// invariant (local all -1, mark <= markID) held after every close.
func TestRegionScratchReuse(t *testing.T) {
	var pool core.ScratchPool
	big, small := gen.RippleAdder(16).C, gen.RippleAdder(4).C
	wantBig, wantSmall := -1, -1
	for i := 0; i < 6; i++ {
		g := big
		want := &wantBig
		if i%2 == 1 {
			g = small
			want = &wantSmall
		}
		res, err := core.Find(g, stdcell.FA.Pattern(), core.Options{Globals: rails, Scratch: &pool})
		if err != nil {
			t.Fatal(err)
		}
		if *want < 0 {
			*want = len(res.Instances)
			if *want == 0 {
				t.Fatalf("iteration %d found no instances", i)
			}
		} else if len(res.Instances) != *want {
			t.Fatalf("iteration %d found %d instances, want %d (stale pooled scratch?)",
				i, len(res.Instances), *want)
		}
	}
}
