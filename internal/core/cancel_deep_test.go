package core_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"subgemini/internal/core"
	"subgemini/internal/graph"
)

// ring builds a closed ring of n identical 2-pin devices: net0 - dev0 -
// net1 - dev1 - ... - dev(n-1) - net0.  A ring has no ports and no globals,
// so Phase I never corrupts anything and stops on the stability guard, and
// its perfect symmetry is the pathological Phase II case: every candidate
// spreads symmetric size-2 partitions for ~n/2 passes before the
// wrap-around refutes it, so a single candidate does O(n²) work with no
// intermediate failure a between-candidate poll could catch.
func ring(name string, n int) *graph.Circuit {
	c := graph.New(name)
	cls := []graph.TermClass{0, 0}
	nets := make([]*graph.Net, n)
	for i := range nets {
		nets[i] = c.AddNet(fmt.Sprintf("n%d", i))
	}
	for i := 0; i < n; i++ {
		c.MustAddDevice(fmt.Sprintf("d%d", i), "res", cls, []*graph.Net{nets[i], nets[(i+1)%n]})
	}
	return c
}

// TestCancelInsideSolve is the deterministic regression test for polling
// Options.Cancel inside the phase2.solve recursion.  The hook fires on
// poll 40; with in-solve polling each candidate accounts for several polls
// (one between candidates plus one every p2CancelStride passes), so the
// run is cut a handful of candidates in.  The old between-candidates-only
// polling would have burned one poll per candidate and reported ~35
// examined candidates instead.
func TestCancelInsideSolve(t *testing.T) {
	errStop := errors.New("stop")
	g, s := ring("g", 516), ring("s", 512)
	polls := 0
	res, err := core.Find(g, s, core.Options{
		Cancel: func() error {
			polls++
			if polls >= 40 {
				return errStop
			}
			return nil
		},
	})
	if !errors.Is(err, errStop) {
		t.Fatalf("Find returned %v, want %v", err, errStop)
	}
	if res == nil {
		t.Fatal("cancelled Find returned a nil result; want a partial report")
	}
	if res.Report.CancelledAt != "phase2" {
		t.Errorf("Report.CancelledAt = %q, want \"phase2\"", res.Report.CancelledAt)
	}
	// Each ring candidate runs ~256 solve passes = ~8 in-solve polls, so a
	// 40-poll budget cannot outlive candidate 8; without in-solve polling
	// the budget lasts ~35 candidates.
	if res.Report.Candidates == 0 || res.Report.Candidates > 8 {
		t.Errorf("run was cut after %d candidates, want 1..8 (in-solve polling)", res.Report.Candidates)
	}
}

// TestCancelPathologicalDeadline: a deadline context cuts a ring match
// whose single first candidate alone takes far longer than the deadline.
// Before in-solve polling this returned only after that candidate finished.
// Both Phase II engines must honor the deadline: the ring pattern's
// eccentricity spans the whole main graph, so the region engine's balls
// degenerate to O(|G|) and its solve strides carry the polling.
func TestCancelPathologicalDeadline(t *testing.T) {
	for _, tc := range []struct {
		name   string
		legacy bool
	}{{"region", false}, {"legacy", true}} {
		t.Run(tc.name, func(t *testing.T) {
			g, s := ring("g", 4004), ring("s", 4000)
			const deadline = 40 * time.Millisecond
			ctx, cancel := context.WithTimeout(context.Background(), deadline)
			defer cancel()
			start := time.Now()
			res, err := core.Find(g, s, core.Options{Cancel: ctx.Err, LegacyPhase2: tc.legacy})
			elapsed := time.Since(start)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("Find returned %v, want context.DeadlineExceeded", err)
			}
			if res == nil || res.Report.CancelledAt == "" {
				t.Fatalf("cancelled Find returned res=%v, want a partial report with CancelledAt set", res)
			}
			// The generous bound absorbs CI noise; the point is that the run
			// does not outlive the deadline by a whole O(n²) candidate
			// (hundreds of ms).
			if elapsed > 10*deadline {
				t.Errorf("cancelled run returned after %v, want well under %v", elapsed, 10*deadline)
			}
		})
	}
}

// TestCancelInsideRegionExtract: with the extraction cancellation block
// forced down, a hook that fires only after more polls than a few
// candidates' solves could account for is still honored during the first
// candidate's ball extraction — proof that polling happens inside the
// region BFS, not just in solve strides.  The ring pattern's radius covers
// most of the main ring, so one extraction visits ~1600 vertices = ~200
// polls at block size 8, while solve polling alone would take several
// candidates to reach 60 polls.
func TestCancelInsideRegionExtract(t *testing.T) {
	restore := core.SetRegionCancelBlock(8)
	defer restore()
	errStop := errors.New("stop")
	g, s := ring("g", 1000), ring("s", 800)
	polls := 0
	res, err := core.Find(g, s, core.Options{
		Cancel: func() error {
			polls++
			if polls >= 60 {
				return errStop
			}
			return nil
		},
	})
	if !errors.Is(err, errStop) {
		t.Fatalf("Find returned %v, want %v", err, errStop)
	}
	if res == nil || res.Report.CancelledAt != "phase2" {
		t.Fatalf("cancelled Find returned res=%v, want CancelledAt=\"phase2\"", res)
	}
	if res.Report.Candidates == 0 || res.Report.Candidates > 2 {
		t.Errorf("run was cut after %d candidates, want 1..2 (in-extraction polling)", res.Report.Candidates)
	}
}

// TestCancelInsidePhase1Pass: with the cancellation block size forced down,
// a hook that fires only after more polls than Phase I has rounds is still
// honored during Phase I — proof that polling happens inside a relabeling
// pass, not just between passes.  The ring pattern stabilizes after ~2
// rounds, so without in-pass polling the hook would survive Phase I and
// the run would be cut in Phase II instead.
func TestCancelInsidePhase1Pass(t *testing.T) {
	restore := core.SetP1CancelBlock(64)
	defer restore()
	errStop := errors.New("stop")
	g, s := ring("g", 1000), ring("s", 64)
	polls := 0
	res, err := core.Find(g, s, core.Options{
		Cancel: func() error {
			polls++
			if polls >= 8 {
				return errStop
			}
			return nil
		},
	})
	if !errors.Is(err, errStop) {
		t.Fatalf("Find returned %v, want %v", err, errStop)
	}
	if res == nil || res.Report.CancelledAt != "phase1" {
		t.Fatalf("cancelled Find returned res=%v, want CancelledAt=\"phase1\" (in-pass polling)", res)
	}
}

// TestCancelInsidePhase1Striped: the same in-pass cut with the main-graph
// side striped across workers; the user hook is polled by the coordinator
// only and workers stop via the shared flag, so this stays race-clean
// under -race.
func TestCancelInsidePhase1Striped(t *testing.T) {
	restoreGrain := core.SetP1Grain(32)
	defer restoreGrain()
	restoreBlock := core.SetP1CancelBlock(16)
	defer restoreBlock()
	errStop := errors.New("stop")
	g, s := ring("g", 1000), ring("s", 64)
	polls := 0
	res, err := core.Find(g, s, core.Options{
		Workers: 4,
		Cancel: func() error {
			polls++
			if polls >= 8 {
				return errStop
			}
			return nil
		},
	})
	if !errors.Is(err, errStop) {
		t.Fatalf("Find returned %v, want %v", err, errStop)
	}
	if res == nil || res.Report.CancelledAt != "phase1" {
		t.Fatalf("cancelled Find returned res=%v, want CancelledAt=\"phase1\"", res)
	}
}

// TestCancelDeepFindParallel: a deadline cut inside a worker's solve
// recursion surfaces from FindParallel with the phase recorded, even
// though the between-candidate poll may never see the error.
func TestCancelDeepFindParallel(t *testing.T) {
	g, s := ring("g", 1004), ring("s", 1000)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	m, err := core.NewMatcher(g, core.Options{Cancel: ctx.Err})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.FindParallel(s, 4)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("FindParallel returned %v, want context.DeadlineExceeded", err)
	}
	if res == nil || res.Report.CancelledAt == "" {
		t.Fatalf("cancelled FindParallel returned res=%v, want a partial report with CancelledAt set", res)
	}
}

// TestRingUncancelled pins the ring workload itself: without a hook the
// search must terminate with no instances (the rings have different
// sizes), proving the pathological case is pathological only in cost.
func TestRingUncancelled(t *testing.T) {
	if testing.Short() {
		t.Skip("O(n³) symmetric-ring search")
	}
	g, s := ring("g", 68), ring("s", 64)
	res, err := core.Find(g, s, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 0 {
		t.Fatalf("found %d instances of a 64-ring in a 68-ring, want 0", len(res.Instances))
	}
	if res.Report.CancelledAt != "" {
		t.Fatalf("uncancelled run has CancelledAt=%q", res.Report.CancelledAt)
	}
}
