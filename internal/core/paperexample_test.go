package core

import (
	"testing"

	"subgemini/internal/graph"
)

var mos3 = []graph.TermClass{graph.ClassDS, graph.ClassGate, graph.ClassDS}

// paperSubgraph reconstructs the example subcircuit of paper Fig. 1/2 and
// Table 1: two p-devices D1, D2 and two n-devices D3, D4 around the single
// internal net N4 (the eventual key vertex).  All other nets are external.
//
//	D1 pmos: ds=N1, g=N3, ds=N2        D3 nmos: ds=N2, g=N3, ds=N4
//	D2 pmos: ds=N1, g=N5, ds=N2        D4 nmos: ds=N6, g=N5, ds=N4
func paperSubgraph() *graph.Circuit {
	s := graph.New("paperS")
	n := func(name string) *graph.Net { return s.AddNet(name) }
	n1, n2, n3, n4, n5, n6 := n("N1"), n("N2"), n("N3"), n("N4"), n("N5"), n("N6")
	s.MustAddDevice("D1", "pmos", mos3, []*graph.Net{n1, n3, n2})
	s.MustAddDevice("D2", "pmos", mos3, []*graph.Net{n1, n5, n2})
	s.MustAddDevice("D3", "nmos", mos3, []*graph.Net{n2, n3, n4})
	s.MustAddDevice("D4", "nmos", mos3, []*graph.Net{n6, n5, n4})
	for _, port := range []string{"N1", "N2", "N3", "N5", "N6"} {
		if err := s.MarkPort(port); err != nil {
			panic(err)
		}
	}
	return s
}

// paperMainGraph reconstructs the example main circuit: one true instance
// of the subgraph at {D6, D7, D9, D11} plus the decoy devices D5, D8, D10,
// arranged so the net N13 mimics the key vertex's Phase I label and lands
// in the candidate vector alongside the true image N14 (paper §III: "the
// two vertices in G marked A will become the candidate vector").
func paperMainGraph() *graph.Circuit {
	g := graph.New("paperG")
	n := func(name string) *graph.Net { return g.AddNet(name) }
	n7, n8, n9, n10, n11, n12 := n("N7"), n("N8"), n("N9"), n("N10"), n("N11"), n("N12")
	n13, n14, n15 := n("N13"), n("N14"), n("N15")
	g.MustAddDevice("D5", "pmos", mos3, []*graph.Net{n8, n12, n11})
	g.MustAddDevice("D6", "pmos", mos3, []*graph.Net{n7, n8, n10})
	g.MustAddDevice("D7", "pmos", mos3, []*graph.Net{n7, n9, n10})
	g.MustAddDevice("D8", "nmos", mos3, []*graph.Net{n9, n12, n13})
	g.MustAddDevice("D9", "nmos", mos3, []*graph.Net{n10, n8, n14})
	g.MustAddDevice("D10", "nmos", mos3, []*graph.Net{n13, n12, n10})
	g.MustAddDevice("D11", "nmos", mos3, []*graph.Net{n15, n9, n14})
	return g
}

// TestPaperExamplePhase1 checks the Phase I outcome the paper walks
// through: N4 is the key vertex (the only internal net survives
// relabeling) and the candidate vector is exactly {N13, N14}.
func TestPaperExamplePhase1(t *testing.T) {
	g, s := paperMainGraph(), paperSubgraph()
	m, err := NewMatcher(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pat, err := newPattern(s, &m.opts)
	if err != nil {
		t.Fatal(err)
	}
	var rep = &Result{}
	p1 := newPhase1(m, pat, &rep.Report)
	key, cv := p1.run()

	if got := pat.space.Name(key); got != "N4" {
		t.Errorf("key vertex = %s, want N4", got)
	}
	if len(cv) != 2 {
		t.Fatalf("|CV| = %d, want 2", len(cv))
	}
	names := map[string]bool{}
	for _, v := range cv {
		names[m.gSpace.Name(v)] = true
	}
	if !names["N13"] || !names["N14"] {
		t.Errorf("CV = %v, want {N13, N14}", names)
	}
}

// TestPaperExamplePhase2 checks the end-to-end result on the worked
// example: exactly one instance with the mapping Table 1 derives
// (D1→D6, D2→D7, D3→D9, D4→D11), found despite the false candidate N13.
func TestPaperExamplePhase2(t *testing.T) {
	g, s := paperMainGraph(), paperSubgraph()
	res, err := Find(g, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 1 {
		t.Fatalf("found %d instances, want 1 (report: %s)", len(res.Instances), res.Report.String())
	}
	want := map[string]string{"D1": "D6", "D2": "D7", "D3": "D9", "D4": "D11"}
	for sd, gd := range res.Instances[0].DevMap {
		if want[sd.Name] != gd.Name {
			t.Errorf("image(%s) = %s, want %s", sd.Name, gd.Name, want[sd.Name])
		}
	}
	wantNets := map[string]string{"N1": "N7", "N2": "N10", "N3": "N8", "N4": "N14", "N5": "N9", "N6": "N15"}
	for sn, gnet := range res.Instances[0].NetMap {
		if want, ok := wantNets[sn.Name]; ok && want != gnet.Name {
			t.Errorf("image(%s) = %s, want %s", sn.Name, gnet.Name, want)
		}
	}
	if res.Report.CVSize != 2 {
		t.Errorf("CV size = %d, want 2", res.Report.CVSize)
	}
	// The paper's Table 1 verifies N14 in 7 passes; allow slack for the
	// rejected candidate N13 but catch regressions toward brute force.
	if res.Report.Phase2Passes > 16 {
		t.Errorf("Phase II took %d passes across both candidates, want <= 16", res.Report.Phase2Passes)
	}
}

// TestFig5Symmetry reproduces paper Fig. 5: a symmetric parallel transistor
// pair forces Phase II to guess, but either choice is correct, so the match
// succeeds without backtracking.
func TestFig5Symmetry(t *testing.T) {
	build := func(name string) *graph.Circuit {
		c := graph.New(name)
		x, y := c.AddNet("X"), c.AddNet("Y")
		ga, gb := c.AddNet("GA"), c.AddNet("GB")
		c.MustAddDevice("MA", "nmos", mos3, []*graph.Net{x, ga, y})
		c.MustAddDevice("MB", "nmos", mos3, []*graph.Net{x, gb, y})
		return c
	}
	s := build("pairS")
	for _, p := range []string{"X", "GA", "GB"} {
		if err := s.MarkPort(p); err != nil {
			t.Fatal(err)
		}
	}
	// Y is internal: the pair plus its shared node must be found exactly.
	g := build("pairG")
	// Give the external nets some context so the main graph is bigger than
	// the pattern.
	load := g.AddNet("load")
	g.MustAddDevice("ML", "nmos", mos3, []*graph.Net{g.NetByName("X"), load, g.AddNet("Z")})

	res, err := Find(g, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 1 {
		t.Fatalf("found %d instances, want 1 (report: %s)", len(res.Instances), res.Report.String())
	}
	if res.Report.Guesses == 0 {
		t.Errorf("expected at least one guess for the symmetric pair, got none (report: %s)", res.Report.String())
	}
	if res.Report.Backtracks != 0 {
		t.Errorf("expected no backtracking (either guess is correct), got %d", res.Report.Backtracks)
	}
}
