package core

import (
	"testing"

	"subgemini/internal/gen/paperex"
	"subgemini/internal/graph"
)

var mos3 = []graph.TermClass{graph.ClassDS, graph.ClassGate, graph.ClassDS}

// paperSubgraph and paperMainGraph are the paper's Fig. 1 worked example —
// the pattern around the key vertex N4 and the main circuit with the decoy
// candidate N13.  They live in internal/gen/paperex so cmd/docgen can run
// the same circuits when regenerating ALGORITHM.md's tables.
func paperSubgraph() *graph.Circuit  { return paperex.PaperPattern() }
func paperMainGraph() *graph.Circuit { return paperex.PaperMain() }

// TestPaperExamplePhase1 checks the Phase I outcome the paper walks
// through: N4 is the key vertex (the only internal net survives
// relabeling) and the candidate vector is exactly {N13, N14}.
func TestPaperExamplePhase1(t *testing.T) {
	g, s := paperMainGraph(), paperSubgraph()
	m, err := NewMatcher(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pat, err := newPattern(s, &m.opts)
	if err != nil {
		t.Fatal(err)
	}
	var rep = &Result{}
	p1 := newPhase1(m, pat, &rep.Report)
	key, cv, _ := p1.run()

	if got := pat.space.Name(key); got != "N4" {
		t.Errorf("key vertex = %s, want N4", got)
	}
	if len(cv) != 2 {
		t.Fatalf("|CV| = %d, want 2", len(cv))
	}
	names := map[string]bool{}
	for _, v := range cv {
		names[m.gSpace.Name(v)] = true
	}
	if !names["N13"] || !names["N14"] {
		t.Errorf("CV = %v, want {N13, N14}", names)
	}
}

// TestPaperExamplePhase2 checks the end-to-end result on the worked
// example: exactly one instance with the mapping Table 1 derives
// (D1→D6, D2→D7, D3→D9, D4→D11), found despite the false candidate N13.
func TestPaperExamplePhase2(t *testing.T) {
	g, s := paperMainGraph(), paperSubgraph()
	res, err := Find(g, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 1 {
		t.Fatalf("found %d instances, want 1 (report: %s)", len(res.Instances), res.Report.String())
	}
	want := map[string]string{"D1": "D6", "D2": "D7", "D3": "D9", "D4": "D11"}
	for sd, gd := range res.Instances[0].DevMap {
		if want[sd.Name] != gd.Name {
			t.Errorf("image(%s) = %s, want %s", sd.Name, gd.Name, want[sd.Name])
		}
	}
	wantNets := map[string]string{"N1": "N7", "N2": "N10", "N3": "N8", "N4": "N14", "N5": "N9", "N6": "N15"}
	for sn, gnet := range res.Instances[0].NetMap {
		if want, ok := wantNets[sn.Name]; ok && want != gnet.Name {
			t.Errorf("image(%s) = %s, want %s", sn.Name, gnet.Name, want)
		}
	}
	if res.Report.CVSize != 2 {
		t.Errorf("CV size = %d, want 2", res.Report.CVSize)
	}
	// The paper's Table 1 verifies N14 in 7 passes; allow slack for the
	// rejected candidate N13 but catch regressions toward brute force.
	if res.Report.Phase2Passes > 16 {
		t.Errorf("Phase II took %d passes across both candidates, want <= 16", res.Report.Phase2Passes)
	}
}

// TestFig5Symmetry reproduces paper Fig. 5: a symmetric parallel transistor
// pair forces Phase II to guess, but either choice is correct, so the match
// succeeds without backtracking.
func TestFig5Symmetry(t *testing.T) {
	build := func(name string) *graph.Circuit {
		c := graph.New(name)
		x, y := c.AddNet("X"), c.AddNet("Y")
		ga, gb := c.AddNet("GA"), c.AddNet("GB")
		c.MustAddDevice("MA", "nmos", mos3, []*graph.Net{x, ga, y})
		c.MustAddDevice("MB", "nmos", mos3, []*graph.Net{x, gb, y})
		return c
	}
	s := build("pairS")
	for _, p := range []string{"X", "GA", "GB"} {
		if err := s.MarkPort(p); err != nil {
			t.Fatal(err)
		}
	}
	// Y is internal: the pair plus its shared node must be found exactly.
	g := build("pairG")
	// Give the external nets some context so the main graph is bigger than
	// the pattern.
	load := g.AddNet("load")
	g.MustAddDevice("ML", "nmos", mos3, []*graph.Net{g.NetByName("X"), load, g.AddNet("Z")})

	res, err := Find(g, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 1 {
		t.Fatalf("found %d instances, want 1 (report: %s)", len(res.Instances), res.Report.String())
	}
	if res.Report.Guesses == 0 {
		t.Errorf("expected at least one guess for the symmetric pair, got none (report: %s)", res.Report.String())
	}
	if res.Report.Backtracks != 0 {
		t.Errorf("expected no backtracking (either guess is correct), got %d", res.Report.Backtracks)
	}
}
