package core

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"subgemini/internal/label"
)

// tableTracer reproduces the presentation of the paper's Table 1: one row
// per vertex, one column per Phase II relabeling pass, cells showing
// symbolic labels (KV for the key pair's label, then A, B, C, ... in order
// of first appearance).  A '*' marks a safe vertex and brackets mark a
// matched one, mirroring the paper's boldface and boxes.
type tableTracer struct {
	p         *phase2
	candidate string

	passes  []passSnap
	gSeen   map[label.VID]bool
	gOrder  []label.VID
	symbols map[label.Value]string
}

type passSnap struct {
	sLab   []label.Value
	sSafe  []bool
	sMatch []bool
	gLab   map[label.VID]label.Value
	gSafe  map[label.VID]bool
	gMatch map[label.VID]bool
}

func newTableTracer(p *phase2, candidate string) *tableTracer {
	return &tableTracer{
		p:         p,
		candidate: candidate,
		gSeen:     map[label.VID]bool{},
		symbols:   map[label.Value]string{},
	}
}

// snapshot records the state after one relabel/partition pass.
func (t *tableTracer) snapshot() {
	p := t.p
	sn := passSnap{
		sLab:   append([]label.Value(nil), p.sLab...),
		sSafe:  append([]bool(nil), p.sSafe...),
		sMatch: make([]bool, len(p.sMatch)),
		gLab:   map[label.VID]label.Value{},
		gSafe:  map[label.VID]bool{},
		gMatch: map[label.VID]bool{},
	}
	for i, m := range p.sMatch {
		sn.sMatch[i] = m != unmatched
	}
	for _, v := range p.touched {
		if p.gLab[v] == 0 {
			continue
		}
		if !t.gSeen[v] {
			t.gSeen[v] = true
			t.gOrder = append(t.gOrder, v)
		}
		sn.gLab[v] = p.gLab[v]
		sn.gSafe[v] = p.gSafe[v]
		sn.gMatch[v] = p.gMatch[v] != unmatched
	}
	t.passes = append(t.passes, sn)
}

// symbol assigns stable single-letter names in order of first appearance;
// the first label observed (the key pair's) is called KV as in the paper.
func (t *tableTracer) symbol(v label.Value) string {
	if v == 0 {
		return ""
	}
	if s, ok := t.symbols[v]; ok {
		return s
	}
	var s string
	if len(t.symbols) == 0 {
		s = "KV"
	} else {
		n := len(t.symbols) - 1
		for {
			s = string(rune('A'+n%26)) + s
			n = n/26 - 1
			if n < 0 {
				break
			}
		}
	}
	t.symbols[v] = s
	return s
}

func (t *tableTracer) cell(lab label.Value, safe, matched bool) string {
	s := t.symbol(lab)
	if s == "" {
		return ""
	}
	if safe {
		s = "*" + s
	}
	if matched {
		s = "[" + s + "]"
	}
	return s
}

// render writes the two per-pass tables (pattern then main graph), in the
// style of the paper's Table 1.
func (t *tableTracer) render(w io.Writer, verdict string) {
	// Pre-assign symbols in pass/vertex order so naming is stable.
	for _, sn := range t.passes {
		for v := 0; v < len(sn.sLab); v++ {
			t.symbol(sn.sLab[v])
		}
	}
	fmt.Fprintf(w, "Phase II trace for candidate %s (%s, %d passes)\n", t.candidate, verdict, len(t.passes))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	header := "vertex"
	for i := range t.passes {
		header += fmt.Sprintf("\tpass %d", i+1)
	}
	writeSide := func(title string, rows []label.VID, sSide bool) {
		fmt.Fprintf(tw, "-- %s --%s\n", title, dashes(len(t.passes)))
		fmt.Fprintln(tw, header)
		for _, v := range rows {
			var name string
			if sSide {
				name = t.p.sSpace.Name(v)
			} else {
				name = t.p.gSpace.Name(v)
			}
			line := name
			for _, sn := range t.passes {
				if sSide {
					line += "\t" + t.cell(sn.sLab[v], sn.sSafe[v], sn.sMatch[v])
				} else {
					line += "\t" + t.cell(sn.gLab[v], sn.gSafe[v], sn.gMatch[v])
				}
			}
			fmt.Fprintln(tw, line)
		}
	}
	sRows := make([]label.VID, t.p.sSpace.Size())
	for i := range sRows {
		sRows[i] = label.VID(i)
	}
	writeSide("pattern S", sRows, true)
	gRows := append([]label.VID(nil), t.gOrder...)
	sort.Slice(gRows, func(i, j int) bool { return gRows[i] < gRows[j] })
	writeSide("main graph G (touched vertices)", gRows, false)
	tw.Flush()
	fmt.Fprintln(w)
}

func dashes(n int) string {
	s := ""
	for i := 0; i < n; i++ {
		s += "\t"
	}
	return s
}
