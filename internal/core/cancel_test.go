package core_test

import (
	"context"
	"errors"
	"testing"

	"subgemini/internal/core"
	"subgemini/internal/gen"
	"subgemini/internal/stdcell"
)

// TestFindCancelImmediate: a hook that is already cancelled aborts the run
// before the first candidate and surfaces the hook's error.
func TestFindCancelImmediate(t *testing.T) {
	errStop := errors.New("stop")
	d := gen.RippleAdder(16)
	_, err := core.Find(d.C, stdcell.FA.Pattern(), core.Options{
		Globals: rails,
		Cancel:  func() error { return errStop },
	})
	if !errors.Is(err, errStop) {
		t.Fatalf("Find returned %v, want %v", err, errStop)
	}
}

// TestFindCancelMidRun: cancelling after N candidates stops the scan early.
func TestFindCancelMidRun(t *testing.T) {
	errStop := errors.New("stop")
	d := gen.RippleAdder(64)
	polls := 0
	_, err := core.Find(d.C, stdcell.FA.Pattern(), core.Options{
		Globals: rails,
		Cancel: func() error {
			polls++
			if polls > 3 {
				return errStop
			}
			return nil
		},
	})
	if !errors.Is(err, errStop) {
		t.Fatalf("Find returned %v, want %v", err, errStop)
	}
	if polls != 4 {
		t.Errorf("hook polled %d times before aborting, want 4", polls)
	}
}

// TestFindCancelNilHookAndNoCancel: a nil hook and a never-firing hook both
// leave results identical to an unhooked run.
func TestFindCancelNilHookAndNoCancel(t *testing.T) {
	d := gen.RippleAdder(16)
	plain, err := core.Find(d.C.Clone(), stdcell.FA.Pattern(), core.Options{Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	hooked, err := core.Find(d.C.Clone(), stdcell.FA.Pattern(), core.Options{
		Globals: rails,
		Cancel:  func() error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hooked.Instances) != len(plain.Instances) {
		t.Errorf("hooked run found %d instances, unhooked %d", len(hooked.Instances), len(plain.Instances))
	}
}

// TestFindParallelCancel: FindParallel honors the hook across workers; a
// context's Err method is directly usable as the hook.
func TestFindParallelCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d := gen.RippleAdder(64)
	m, err := core.NewMatcher(d.C, core.Options{Globals: rails, Cancel: ctx.Err})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.FindParallel(stdcell.FA.Pattern(), 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("FindParallel returned %v, want context.Canceled", err)
	}
}
