package core

import (
	"testing"

	"subgemini/internal/graph"
	"subgemini/internal/label"
	"subgemini/internal/stdcell"
)

// TestPhase1LabelInvariant is a white-box check of Label Invariant (1):
// after every relabeling round, every pattern vertex still marked valid has
// exactly the same label as its image inside a known planted instance.
//
// The main circuit is a NAND2 instance surrounded by extra context; the
// known mapping is by construction.  The test replays Phase I round by
// round (the same sequence run() performs) and compares labels after each
// step.
func TestPhase1LabelInvariant(t *testing.T) {
	// Main circuit: one NAND2 plus context loading every port.
	g := graph.New("ctx")
	vdd, gnd := g.AddNet("VDD"), g.AddNet("GND")
	a, b, y := g.AddNet("a"), g.AddNet("b"), g.AddNet("y")
	stdcell.NAND2.MustInstantiate(g, "u1", map[string]*graph.Net{
		"A": a, "B": b, "Y": y, "VDD": vdd, "GND": gnd,
	})
	// Context: inverters driving a and b, and one loading y.
	stdcell.INV.MustInstantiate(g, "da", map[string]*graph.Net{"A": g.AddNet("pa"), "Y": a, "VDD": vdd, "GND": gnd})
	stdcell.INV.MustInstantiate(g, "db", map[string]*graph.Net{"A": g.AddNet("pb"), "Y": b, "VDD": vdd, "GND": gnd})
	stdcell.INV.MustInstantiate(g, "ly", map[string]*graph.Net{"A": y, "Y": g.AddNet("py"), "VDD": vdd, "GND": gnd})

	s := stdcell.NAND2.Pattern()

	m, err := NewMatcher(g, Options{Globals: []string{"VDD", "GND"}})
	if err != nil {
		t.Fatal(err)
	}
	s.MarkGlobal("VDD")
	s.MarkGlobal("GND")
	pat, err := newPattern(s, &m.opts)
	if err != nil {
		t.Fatal(err)
	}

	// The known instance mapping, by construction of the instantiation.
	imageDev := map[string]string{"MP1": "u1.MP1", "MP2": "u1.MP2", "MN1": "u1.MN1", "MN2": "u1.MN2"}
	imageNet := map[string]string{"A": "a", "B": "b", "Y": "y", "n1": "u1.n1"}

	rep := &Result{}
	p1 := newPhase1(m, pat, &rep.Report)

	check := func(stage string) {
		for _, sd := range s.Devices {
			sv := p1.sSpace.DevVID(sd)
			if p1.sState[sv] != p1Valid {
				continue
			}
			gd := g.DeviceByName(imageDev[sd.Name])
			gv := p1.gSpace.DevVID(gd)
			if p1.sLab[sv] != p1.gLab[gv] {
				t.Errorf("%s: valid device %s has label %x, image %s has %x",
					stage, sd.Name, p1.sLab[sv], gd.Name, p1.gLab[gv])
			}
		}
		for _, sn := range s.Nets {
			sv := p1.sSpace.NetVID(sn)
			if p1.sState[sv] != p1Valid {
				continue
			}
			gnet := g.NetByName(imageNet[sn.Name])
			gv := p1.gSpace.NetVID(gnet)
			if p1.sLab[sv] != p1.gLab[gv] {
				t.Errorf("%s: valid net %s has label %x, image %s has %x",
					stage, sn.Name, p1.sLab[sv], gnet.Name, p1.gLab[gv])
			}
		}
	}

	check("initial")
	for round := 0; round < 6; round++ {
		p1.relabelNets()
		p1.corruptNets()
		check("after net relabel")
		if !p1.consistency(false) {
			t.Fatal("consistency failed on a circuit with a planted instance")
		}
		check("after net consistency")
		if p1.allCorrupt(false) {
			break
		}
		p1.relabelDevices()
		p1.corruptDevices()
		check("after device relabel")
		if !p1.consistency(true) {
			t.Fatal("consistency failed on a circuit with a planted instance")
		}
		check("after device consistency")
		if p1.allCorrupt(true) {
			break
		}
	}

	// Also check that the image of the key vertex survives in the CV when
	// Phase I is run to completion (the guarantee below Invariant (1)).
	p1b := newPhase1(m, pat, &rep.Report)
	key, cv, _ := p1b.run()
	if len(cv) == 0 {
		t.Fatal("empty candidate vector for a circuit containing the pattern")
	}
	keyName := pat.space.Name(key)
	img := imageNet[keyName]
	if img == "" {
		img = imageDev[keyName]
	}
	found := false
	for _, v := range cv {
		if m.gSpace.Name(v) == img {
			found = true
		}
	}
	if !found {
		t.Errorf("image %s of key vertex %s missing from CV", img, keyName)
	}
}

// TestPhase1PrunesNonImages checks the consistency-check optimization
// (paper Fig. 4): main-graph device vertices whose type does not occur in
// the pattern are pruned by the very first check.
func TestPhase1PrunesNonImages(t *testing.T) {
	g := graph.New("g")
	x, y, zz := g.AddNet("x"), g.AddNet("y"), g.AddNet("z")
	cls2 := []graph.TermClass{0, 0}
	mos := []graph.TermClass{graph.ClassDS, graph.ClassGate, graph.ClassDS}
	g.MustAddDevice("m1", "nmos", mos, []*graph.Net{x, y, zz})
	g.MustAddDevice("r1", "res", cls2, []*graph.Net{x, y})

	s := graph.New("s")
	sx, sy, sz := s.AddNet("x"), s.AddNet("y"), s.AddNet("z")
	s.MustAddDevice("m", "nmos", mos, []*graph.Net{sx, sy, sz})
	for _, p := range []string{"x", "y", "z"} {
		if err := s.MarkPort(p); err != nil {
			t.Fatal(err)
		}
	}
	m, err := NewMatcher(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pat, err := newPattern(s, &m.opts)
	if err != nil {
		t.Fatal(err)
	}
	rep := &Result{}
	p1 := newPhase1(m, pat, &rep.Report)
	if !p1.consistency(true) {
		t.Fatal("device consistency failed")
	}
	rv := p1.gSpace.DevVID(g.DeviceByName("r1"))
	if p1.gState[rv] != g1Pruned {
		t.Error("resistor not pruned by the initial device consistency check")
	}
	mv := p1.gSpace.DevVID(g.DeviceByName("m1"))
	if p1.gState[mv] != g1Active {
		t.Error("matching transistor wrongly pruned")
	}
}

// TestUniqueLabelsPerSeed: two matchers with different seeds assign
// different unique labels but find identical results.
func TestUniqueLabelsPerSeed(t *testing.T) {
	u1 := label.NewUniqueSource(1)
	u2 := label.NewUniqueSource(2)
	if u1.Next() == u2.Next() {
		t.Error("different seeds produced equal first labels")
	}
}
