package core

import "subgemini/internal/graph"

// verifyMapping checks the completed match edge-by-edge (the paper's
// "verify the isomorphism mapping" step).  Labels only approximate exact
// partitions, so this check is what makes the matcher sound: it confirms
//
//   - the device and net maps are injective;
//   - every device maps to one of equal type with, per terminal class, the
//     exact multiset of image nets (source/drain interchange allowed within
//     a class, nothing else);
//   - every internal pattern net maps to a net of equal degree (induced
//     subgraph: internal nets may not connect outside the instance);
//   - every port maps to a net of at least its degree;
//   - every global maps to the identically named global.
func (p *phase2) verifyMapping() bool {
	// Injectivity, tracked with the reusable round-marker array (device and
	// net VIDs are disjoint, so one sweep covers both).
	p.markID++
	for _, d := range p.pat.s.Devices {
		gv := p.sMatch[p.sSpace.DevVID(d)]
		if gv == unmatched || p.mark[gv] == p.markID {
			return false
		}
		p.mark[gv] = p.markID
	}
	for _, n := range p.pat.s.Nets {
		gv := p.sMatch[p.sSpace.NetVID(n)]
		if gv == unmatched || p.mark[gv] == p.markID {
			return false
		}
		p.mark[gv] = p.markID
	}

	// Device structure.
	for _, d := range p.pat.s.Devices {
		gd := p.gSpace.Device(p.sMatch[p.sSpace.DevVID(d)])
		if len(gd.Pins) != len(d.Pins) {
			return false
		}
		if gd.Type != d.Type && d.Type != graph.WildcardType {
			return false
		}
		if !p.pinsAgree(d, gd) {
			return false
		}
	}

	// Net structure.
	for _, n := range p.pat.s.Nets {
		gnet := p.gSpace.Net(p.sMatch[p.sSpace.NetVID(n)])
		switch {
		case n.Global:
			if !gnet.Global || gnet.Name != n.Name {
				return false
			}
		case n.Port:
			if gnet.Degree() < n.Degree() {
				return false
			}
		default:
			if gnet.Degree() != n.Degree() {
				return false
			}
		}
	}
	return true
}

// pinsAgree checks that, for every terminal class, the multiset of image
// nets of d's pins equals the multiset of nets of gd's pins.  Devices have
// a handful of pins, so a stack-allocated insertion sort avoids the
// allocation and closure cost of sort.Slice in this hot path (it runs once
// per device per verified instance).
func (p *phase2) pinsAgree(d, gd *graph.Device) bool {
	var sBuf, gBuf [16]uint64
	nPins := len(d.Pins)
	sPins, gPins := sBuf[:0], gBuf[:0]
	if nPins > len(sBuf) {
		sPins = make([]uint64, 0, nPins)
		gPins = make([]uint64, 0, nPins)
	}
	for _, pin := range d.Pins {
		img := p.sMatch[p.sSpace.NetVID(pin.Net)]
		if img == unmatched {
			return false
		}
		sPins = append(sPins, uint64(pin.Class)<<48|uint64(img))
	}
	for _, pin := range gd.Pins {
		gPins = append(gPins, uint64(pin.Class)<<48|uint64(p.gSpace.NetVID(pin.Net)))
	}
	insertionSort(sPins)
	insertionSort(gPins)
	for i := range sPins {
		if sPins[i] != gPins[i] {
			return false
		}
	}
	return true
}

func insertionSort(a []uint64) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
