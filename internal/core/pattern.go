package core

import (
	"fmt"

	"subgemini/internal/graph"
	"subgemini/internal/label"
)

// pattern wraps a validated subcircuit with its vertex space and the
// precomputed sets Phase I/II need.
type pattern struct {
	s     *graph.Circuit
	space *label.Space

	// bind maps each bound pattern port to the name of its required image
	// (from Options.Bind), resolved and validated.
	bind map[*graph.Net]string

	// required is the number of vertices Phase II must match: every device
	// plus every net that is neither global nor bound.
	required int

	// wildcards reports whether any pattern device has graph.WildcardType.
	// Wildcard devices match any main-graph device with the same terminal
	// count and classes; their labels are unusable in Phase I (they start
	// corrupt) and Phase II drops the type fold from device base labels on
	// both sides so image labels still agree.
	wildcards bool

}

// fixed reports whether a pattern net is pre-matched (global or bound) and
// therefore outside the labeling machinery.
func (p *pattern) fixed(n *graph.Net) bool {
	if n.Global {
		return true
	}
	_, ok := p.bind[n]
	return ok
}

// newPattern validates the subcircuit:
//
//   - it must contain at least one device;
//   - nets named in opts.Globals are marked global;
//   - every net with zero connections is rejected (it could never be
//     matched by structure);
//   - the pattern must be connected once global nets are removed, because
//     Phase II spreads labels only through non-global nets — a pattern whose
//     components touch only at Vdd/GND would stall with unlabeled vertices.
func newPattern(s *graph.Circuit, opts *Options) (*pattern, error) {
	if s == nil {
		return nil, fmt.Errorf("core: nil pattern")
	}
	if s.NumDevices() == 0 {
		return nil, fmt.Errorf("core: pattern %s has no devices", s.Name)
	}
	for _, name := range opts.Globals {
		s.MarkGlobal(name)
	}
	for _, n := range s.Nets {
		if n.Degree() == 0 {
			return nil, fmt.Errorf("core: pattern %s: net %s has no connections", s.Name, n.Name)
		}
	}
	p := &pattern{s: s, space: label.NewSpace(s), bind: make(map[*graph.Net]string)}
	for _, d := range s.Devices {
		if d.Type == graph.WildcardType {
			p.wildcards = true
		}
	}
	for portName, target := range opts.Bind {
		if target == "" {
			return nil, fmt.Errorf("core: pattern %s: port %q bound to an empty net name", s.Name, portName)
		}
		n := s.NetByName(portName)
		if n == nil {
			return nil, fmt.Errorf("core: pattern %s: bound port %q does not exist", s.Name, portName)
		}
		if !n.Port {
			return nil, fmt.Errorf("core: pattern %s: bound net %q is not a port", s.Name, portName)
		}
		if n.Global {
			return nil, fmt.Errorf("core: pattern %s: net %q is global and cannot also be bound", s.Name, portName)
		}
		p.bind[n] = target
	}
	if err := checkConnected(p); err != nil {
		return nil, err
	}
	p.required = s.NumDevices()
	for _, n := range s.Nets {
		if !p.fixed(n) {
			p.required++
		}
	}
	return p, nil
}

// eccFrom returns the eccentricity of pattern vertex from over the
// traversal that ignores fixed (global or bound) nets: the largest hop
// distance from it to any device or non-fixed net.  The region-localized
// Phase II engine keys on eccFrom(key): any instance whose key image is c
// lies entirely within that many hops of c through non-fixed vertices,
// because every pattern vertex is that close to the key through non-fixed
// vertices (checkConnected guarantees reachability) and the image of such
// a path is a same-length path through non-fixed main-graph vertices.  One
// BFS over the pattern, O(V+E); callers must not pass a fixed net.
func (p *pattern) eccFrom(from label.VID) int {
	size := p.space.Size()
	dist := make([]int, size)
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]label.VID, 1, size)
	queue[0] = from
	dist[from] = 0
	far := 0
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		if dist[u] > far {
			far = dist[u]
		}
		if p.space.IsDevice(u) {
			for _, pin := range p.space.Device(u).Pins {
				if p.fixed(pin.Net) {
					continue
				}
				nv := p.space.NetVID(pin.Net)
				if dist[nv] < 0 {
					dist[nv] = dist[u] + 1
					queue = append(queue, nv)
				}
			}
		} else {
			for _, conn := range p.space.Net(u).Conns {
				dv := p.space.DevVID(conn.Dev)
				if dist[dv] < 0 {
					dist[dv] = dist[u] + 1
					queue = append(queue, dv)
				}
			}
		}
	}
	return far
}

// checkConnected verifies that all devices and non-fixed nets form a single
// connected component when edges through fixed (global or bound) nets are
// ignored — Phase II spreads labels only through unfixed nets, so a pattern
// whose components touch only at Vdd/GND or a bound clock would stall.
func checkConnected(p *pattern) error {
	s := p.s
	space := p.space
	visited := make([]bool, space.Size())
	// BFS from the first device.
	queue := []label.VID{space.DevVID(s.Devices[0])}
	visited[queue[0]] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if space.IsDevice(v) {
			d := space.Device(v)
			for _, pin := range d.Pins {
				if p.fixed(pin.Net) {
					continue
				}
				nv := space.NetVID(pin.Net)
				if !visited[nv] {
					visited[nv] = true
					queue = append(queue, nv)
				}
			}
		} else {
			n := space.Net(v)
			for _, conn := range n.Conns {
				dv := space.DevVID(conn.Dev)
				if !visited[dv] {
					visited[dv] = true
					queue = append(queue, dv)
				}
			}
		}
	}
	for _, d := range s.Devices {
		if !visited[space.DevVID(d)] {
			return fmt.Errorf("core: pattern %s is disconnected (device %s unreachable ignoring global and bound nets)", s.Name, d.Name)
		}
	}
	for _, n := range s.Nets {
		if !p.fixed(n) && !visited[space.NetVID(n)] {
			return fmt.Errorf("core: pattern %s is disconnected (net %s unreachable ignoring global and bound nets)", s.Name, n.Name)
		}
	}
	return nil
}
