package core

import (
	"sync"

	"subgemini/internal/label"
)

// ScratchPool recycles the O(|G|) main-graph arrays of Phase II
// verification state across matching runs.  Phase II already resets only
// the vertices a candidate touched; the pool extends that economy across
// runs, so a long-lived caller (subgeminid serving a resident circuit) no
// longer pays six main-graph-sized allocations per request.  The zero
// value is ready to use, and one pool may serve any number of concurrent
// matchers over the same circuit.  Install it via Options.Scratch.
type ScratchPool struct {
	pool sync.Pool
}

// gscratch bundles the main-graph-sized Phase II state.  A scratch in the
// pool is clean: gLab zero, gSafe/inTouched/fixedG false, gMatch all
// unmatched, and every mark entry <= markID.  phase2.close restores this
// invariant before returning a scratch, which costs O(touched), not O(|G|).
type gscratch struct {
	gLab      []label.Value
	gSafe     []bool
	gMatch    []label.VID
	inTouched []bool
	mark      []uint32
	fixedG    []bool
	markID    uint32

	// Dynamic per-run slices, kept for their grown capacity.
	touched   []label.VID
	gSafeList []label.VID
	gPendV    []label.VID
	gPendL    []label.Value
	gPairs    []labVID
}

// get returns a clean scratch for a main graph of gn vertices.  A pooled
// scratch of a different size (the resident circuit was swapped) is
// discarded and a fresh one allocated.
func (sp *ScratchPool) get(gn int) *gscratch {
	if v := sp.pool.Get(); v != nil {
		s := v.(*gscratch)
		if len(s.gLab) == gn {
			if s.markID >= 1<<31 {
				// Round marks rely on markID strictly increasing within
				// one scratch; restart well before uint32 wraps around.
				clear(s.mark)
				s.markID = 0
			}
			return s
		}
	}
	s := &gscratch{
		gLab:      make([]label.Value, gn),
		gSafe:     make([]bool, gn),
		gMatch:    make([]label.VID, gn),
		inTouched: make([]bool, gn),
		mark:      make([]uint32, gn),
		fixedG:    make([]bool, gn),
	}
	for i := range s.gMatch {
		s.gMatch[i] = unmatched
	}
	return s
}

func (sp *ScratchPool) put(s *gscratch) { sp.pool.Put(s) }
