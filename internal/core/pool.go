package core

import (
	"sync"

	"subgemini/internal/label"
)

// ScratchPool recycles the O(|G|) main-graph arrays of Phase II
// verification state across matching runs.  Phase II already resets only
// the vertices a candidate touched; the pool extends that economy across
// runs, so a long-lived caller (subgeminid serving a resident circuit) no
// longer pays six main-graph-sized allocations per request.  The zero
// value is ready to use, and one pool may serve any number of concurrent
// matchers over the same circuit.  Install it via Options.Scratch.
type ScratchPool struct {
	pool sync.Pool

	// rpool recycles the region-localized Phase II engine's state (see
	// phase2region.go): one O(|G|) translation array plus the ball-sized
	// per-candidate arrays, whose capacities grow to the largest region a
	// circuit produces and then stay flat.
	rpool sync.Pool
}

// gscratch bundles the main-graph-sized Phase II state.  A scratch in the
// pool is clean: gLab zero, gSafe/inTouched/fixedG false, gMatch all
// unmatched, and every mark entry <= markID.  phase2.close restores this
// invariant before returning a scratch, which costs O(touched), not O(|G|).
type gscratch struct {
	gLab      []label.Value
	gSafe     []bool
	gMatch    []label.VID
	inTouched []bool
	mark      []uint32
	fixedG    []bool
	markID    uint32

	// Dynamic per-run slices, kept for their grown capacity.
	touched   []label.VID
	gSafeList []label.VID
	gPendV    []label.VID
	gPendL    []label.Value
	gPairs    []labVID
}

// get returns a clean scratch for a main graph of gn vertices.  A pooled
// scratch of a different size (the resident circuit was swapped) is
// discarded and a fresh one allocated.
func (sp *ScratchPool) get(gn int) *gscratch {
	if v := sp.pool.Get(); v != nil {
		s := v.(*gscratch)
		if len(s.gLab) == gn {
			if s.markID >= 1<<31 {
				// Round marks rely on markID strictly increasing within
				// one scratch; restart well before uint32 wraps around.
				clear(s.mark)
				s.markID = 0
			}
			return s
		}
	}
	s := &gscratch{
		gLab:      make([]label.Value, gn),
		gSafe:     make([]bool, gn),
		gMatch:    make([]label.VID, gn),
		inTouched: make([]bool, gn),
		mark:      make([]uint32, gn),
		fixedG:    make([]bool, gn),
	}
	for i := range s.gMatch {
		s.gMatch[i] = unmatched
	}
	return s
}

func (sp *ScratchPool) put(s *gscratch) { sp.pool.Put(s) }

// rscratch bundles the region engine's reusable state.  A scratch in the
// pool is clean: every local entry is -1 and every mark entry <= markID.
// The ball-sized slices carry only their grown capacity between runs; the
// engine re-slices and reinitializes them per candidate in O(|ball|).
type rscratch struct {
	local  []int32 // gvid -> region-local id, -1 outside the current ball
	mark   []uint32
	markID uint32

	ball      []int32 // local id -> gvid; doubles as the BFS queue
	lLab      []label.Value
	lSafe     []bool
	lFixed    []bool
	lMatch    []label.VID
	lSafeList []int32
	lTouched  []int32
	lInT      []bool
	lPendV    []int32
	lPendL    []label.Value
	gPairs    []labLocal

	// Backtracking snapshots and guess candidate lists, indexed by guess
	// depth; kept across runs so a steady stream of backtrack-heavy
	// candidates stops allocating once the depth high-water mark is reached.
	snaps []*rsnapshot
	cands [][]labLocal
}

// getRegion returns a clean region scratch for a main graph of gn vertices.
func (sp *ScratchPool) getRegion(gn int) *rscratch {
	if v := sp.rpool.Get(); v != nil {
		s := v.(*rscratch)
		if len(s.local) == gn {
			if s.markID >= 1<<31 {
				clear(s.mark)
				s.markID = 0
			}
			return s
		}
	}
	s := &rscratch{
		local: make([]int32, gn),
		mark:  make([]uint32, gn),
	}
	for i := range s.local {
		s.local[i] = -1
	}
	return s
}

func (sp *ScratchPool) putRegion(s *rscratch) { sp.rpool.Put(s) }
