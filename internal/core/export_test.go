package core

import (
	"subgemini/internal/graph"
	"subgemini/internal/label"
	"subgemini/internal/stats"
)

// Test-only hooks for package-external tests (the differential tests live
// in core_test so they can use internal/gen, which depends on this
// package).

// SetP1Grain overrides the striping grain and returns a restore func, so
// differential tests can force the parallel code paths on small circuits.
func SetP1Grain(n int) (restore func()) {
	old := p1Grain
	p1Grain = n
	return func() { p1Grain = old }
}

// SetP1CancelBlock overrides the in-pass cancellation block size and
// returns a restore func, so cancellation tests can force mid-pass polling
// on small circuits.
func SetP1CancelBlock(n int) (restore func()) {
	old := p1CancelBlock
	p1CancelBlock = n
	return func() { p1CancelBlock = old }
}

// SetRegionCancelBlock overrides the region-extraction cancellation block
// size and returns a restore func, so cancellation tests can force mid-BFS
// polling on small circuits.
func SetRegionCancelBlock(n int) (restore func()) {
	old := rCancelBlock
	rCancelBlock = n
	return func() { rCancelBlock = old }
}

// SetIncReplayCap overrides the dirty-region degradation threshold and
// returns a restore func, so incremental tests can force both the
// region-replay path (cap 1.0) and the full-capture degradation path
// (cap 0) on the same circuits.
func SetIncReplayCap(f float64) (restore func()) {
	old := incReplayCap
	incReplayCap = f
	return func() { incReplayCap = old }
}

// RunPhase1ForTest runs candidate generation alone, mirroring Find's
// global cross-marking, and returns the key vertex, candidate vector, and
// the report counters Phase I filled in.
func RunPhase1ForTest(m *Matcher, s *graph.Circuit) (label.VID, []label.VID, stats.Report, error) {
	for _, n := range s.Globals() {
		m.markGlobal(n.Name)
	}
	for _, n := range m.g.Globals() {
		s.MarkGlobal(n.Name)
	}
	pat, err := newPattern(s, &m.opts)
	if err != nil {
		return 0, nil, stats.Report{}, err
	}
	var rep stats.Report
	p1 := newPhase1(m, pat, &rep)
	key, cv, err := p1.run()
	return key, cv, rep, err
}
