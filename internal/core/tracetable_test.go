package core

import (
	"strings"
	"testing"

	"subgemini/internal/label"
)

// TestTraceTablePaperExample renders the Table-1-style trace on the
// paper's worked example and checks its structure: both candidates appear,
// the key pair carries the KV symbol, symmetric device pairs share labels
// in early passes, and the true candidate ends in a match.
func TestTraceTablePaperExample(t *testing.T) {
	g, s := paperMainGraph(), paperSubgraph()
	var buf strings.Builder
	res, err := Find(g, s, Options{TraceTable: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 1 {
		t.Fatalf("found %d instances, want 1", len(res.Instances))
	}
	out := buf.String()
	t.Logf("\n%s", out)

	// One table per candidate: the false N13 and the true N14.
	if !strings.Contains(out, "candidate N13 (no match") {
		t.Error("missing the failed candidate N13 table")
	}
	if !strings.Contains(out, "candidate N14 (MATCH") {
		t.Error("missing the successful candidate N14 table")
	}
	for _, want := range []string{"-- pattern S --", "-- main graph G", "pass 1", "KV"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q", want)
		}
	}
	// The key vertex row must show the matched KV cell.
	if !strings.Contains(out, "[*KV]") && !strings.Contains(out, "[KV]") {
		t.Error("key vertex not shown as matched KV")
	}
	// Every pattern vertex appears as a row.
	for _, name := range []string{"D1", "D2", "D3", "D4", "N1", "N2", "N4", "N6"} {
		if !strings.Contains(out, "\n"+name) && !strings.Contains(out, name+"\t") {
			t.Errorf("vertex %s missing from trace", name)
		}
	}
}

// TestTraceTableSymbols checks the symbol assignment: KV first, then
// letters A..Z, then AA-style names, all stable per value.
func TestTraceTableSymbols(t *testing.T) {
	tr := newTableTracer(nil, "c")
	if got := tr.symbol(label.Value(0)); got != "" {
		t.Errorf("symbol(0) = %q, want empty", got)
	}
	if got := tr.symbol(label.Value(100)); got != "KV" {
		t.Errorf("first symbol = %q, want KV", got)
	}
	if got := tr.symbol(label.Value(101)); got != "A" {
		t.Errorf("second symbol = %q, want A", got)
	}
	if got := tr.symbol(label.Value(102)); got != "B" {
		t.Errorf("third symbol = %q, want B", got)
	}
	if got := tr.symbol(label.Value(100)); got != "KV" {
		t.Errorf("repeat lookup = %q, want KV", got)
	}
	// Past Z the names become two letters.
	for v := uint64(200); v < 200+30; v++ {
		tr.symbol(label.Value(v))
	}
	long := tr.symbol(label.Value(200 + 29))
	if len(long) < 2 {
		t.Errorf("expected a multi-letter symbol, got %q", long)
	}
}

// TestTracePhase1PaperExample renders the Fig. 2/4-style Phase I trace on
// the worked example: corrupt pattern vertices show as "xx", pruned
// main-graph vertices as "-", and the key vertex N4 keeps a live label.
func TestTracePhase1PaperExample(t *testing.T) {
	g, s := paperMainGraph(), paperSubgraph()
	var buf strings.Builder
	if _, err := Find(g, s, Options{TraceTable: &buf}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	t.Logf("\n%s", out)
	for _, want := range []string{
		"Phase I trace (key vertex N4, |CV| = 2)",
		"-- pattern S --", "-- main graph G --",
		"initial", "nets 1",
		"xx", // external nets corrupt
		"-",  // pruned main-graph vertices (Fig. 4's dashes)
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Phase I trace missing %q", want)
		}
	}
	// The paper's initial labels: device types and net degrees.
	for _, want := range []string{"pmos", "nmos", " 2 "} {
		if !strings.Contains(out, want) {
			t.Errorf("invariant label %q missing from trace", want)
		}
	}
}
