package core_test

import (
	"testing"

	"subgemini/internal/core"
	"subgemini/internal/gen"
	"subgemini/internal/stdcell"
)

// TestScratchPoolReuse asserts that a shared ScratchPool is invisible to
// results: repeated Finds that recycle Phase II scratch across different
// patterns (different prematch sets, different touched footprints) return
// exactly what fresh-allocating Finds return.  This exercises the
// clean-state invariant phase2.close() maintains — a stale gLab/gMatch/
// fixedG entry from a previous run would corrupt a later candidate walk.
func TestScratchPoolReuse(t *testing.T) {
	d := gen.RandomLogic(60, 7, 3)
	cells := []*stdcell.CellDef{stdcell.INV, stdcell.NAND2, stdcell.NOR2, stdcell.FA, stdcell.DFF}

	run := func(opts core.Options, cell *stdcell.CellDef) map[string]bool {
		opts.Globals = rails
		res, err := core.Find(d.C, cell.Pattern(), opts)
		if err != nil {
			t.Fatalf("Find(%s): %v", cell.Name, err)
		}
		insts := make(map[string]bool, len(res.Instances))
		for _, in := range res.Instances {
			insts[in.String()] = true
		}
		return insts
	}

	var pool core.ScratchPool
	// Interleave patterns and repeat the cycle so the pool serves scratch
	// dirtied by a different pattern on most get() calls.
	for round := 0; round < 3; round++ {
		for _, cell := range cells {
			want := run(core.Options{}, cell)
			got := run(core.Options{Scratch: &pool}, cell)
			if len(got) != len(want) {
				t.Fatalf("round %d %s: pooled found %d instances, fresh %d", round, cell.Name, len(got), len(want))
			}
			for sig := range want {
				if !got[sig] {
					t.Fatalf("round %d %s: pooled run missing instance %s", round, cell.Name, sig)
				}
			}
		}
	}

	// Bind forces the prematch path (fixedGList cleanup in close()).
	target := d.C.Nets[5].Name
	want := run(core.Options{Bind: map[string]string{"A": target}}, stdcell.INV)
	got := run(core.Options{Bind: map[string]string{"A": target}, Scratch: &pool}, stdcell.INV)
	if len(got) != len(want) {
		t.Fatalf("bind: pooled found %d instances, fresh %d", len(got), len(want))
	}
	for sig := range want {
		if !got[sig] {
			t.Fatalf("bind: pooled run missing instance %s", sig)
		}
	}
}

// BenchmarkFindScratch quantifies what Options.Scratch saves: the fresh
// variant allocates the O(|G|) Phase II arrays on every candidate batch,
// the pooled variant recycles them.  The delta in allocs/op is the
// daemon's steady-state win.
func BenchmarkFindScratch(b *testing.B) {
	d := gen.RandomLogic(400, 16, 5)
	pat := stdcell.NAND2.Pattern()

	for _, cfg := range []struct {
		name string
		mk   func() core.Options
	}{
		{"fresh", func() core.Options { return core.Options{Globals: rails} }},
		{"pooled", func() core.Options {
			var pool core.ScratchPool
			return core.Options{Globals: rails, Scratch: &pool}
		}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			opts := cfg.mk()
			m, err := core.NewMatcher(d.C, opts)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := m.Find(pat); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Find(pat); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
