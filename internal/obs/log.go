package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the daemon's process-wide structured logger: a slog
// TextHandler or JSONHandler (per format, "text" by default) at the given
// level ("info" by default), wrapped so that every record emitted with a
// request-scoped context automatically carries a request_id attribute.
func NewLogger(w io.Writer, format, level string) *slog.Logger {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "", "info":
		lv = slog.LevelInfo
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		lv = slog.LevelInfo
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	if strings.EqualFold(format, "json") {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return slog.New(ContextHandler(h))
}

// ParseLevelOK reports whether level is a recognized -log-level value.
func ParseLevelOK(level string) bool {
	switch strings.ToLower(level) {
	case "", "debug", "info", "warn", "warning", "error":
		return true
	}
	return false
}

// ContextHandler wraps h so records logged with a context carrying a
// Timeline gain a request_id attribute.  Handlers built by NewLogger
// already have it; use this directly when supplying a custom handler.
func ContextHandler(h slog.Handler) slog.Handler { return ctxHandler{h} }

type ctxHandler struct{ slog.Handler }

func (c ctxHandler) Handle(ctx context.Context, rec slog.Record) error {
	if id := RequestID(ctx); id != "" {
		rec.AddAttrs(slog.String("request_id", id))
	}
	return c.Handler.Handle(ctx, rec)
}

func (c ctxHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return ctxHandler{c.Handler.WithAttrs(attrs)}
}

func (c ctxHandler) WithGroup(name string) slog.Handler {
	return ctxHandler{c.Handler.WithGroup(name)}
}

// Discard returns a logger that drops everything — the default when no log
// sink is configured, so library code can call log methods unconditionally.
func Discard() *slog.Logger { return slog.New(discardHandler{}) }

type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// LogfLogger adapts a printf-style sink into a structured logger: each
// record renders as "msg key=value ..." and goes out as one logf call.
// It keeps the legacy server Config.Logf test hook working under slog.
func LogfLogger(logf func(format string, args ...any)) *slog.Logger {
	return slog.New(ContextHandler(logfHandler{logf: logf}))
}

type logfHandler struct {
	logf  func(format string, args ...any)
	attrs []slog.Attr
}

func (h logfHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h logfHandler) Handle(_ context.Context, rec slog.Record) error {
	var b strings.Builder
	b.WriteString(rec.Message)
	for _, a := range h.attrs {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value)
	}
	rec.Attrs(func(a slog.Attr) bool {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value)
		return true
	})
	h.logf("%s", b.String())
	return nil
}

func (h logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return logfHandler{logf: h.logf, attrs: append(append([]slog.Attr{}, h.attrs...), attrs...)}
}

func (h logfHandler) WithGroup(string) slog.Handler { return h }
