package obs

import (
	"fmt"
	"io"
	"sort"
)

// RenderTimeline writes one timeline as an indented span table: each span on
// a row with its start offset, duration, kind, name, and attributes, children
// indented under their parents.  This is what `tracefmt` prints for a
// /debug/requests/{id} payload.
func RenderTimeline(w io.Writer, t TimelineJSON) {
	fmt.Fprintf(w, "request %s  %s", t.RequestID, t.Scope)
	if t.Method != "" || t.Path != "" {
		fmt.Fprintf(w, "  %s %s", t.Method, t.Path)
	}
	fmt.Fprintf(w, "  status=%d  total=%s", t.Status, fmtUS(t.DurationUS))
	if t.Cancelled {
		fmt.Fprint(w, "  cancelled")
	}
	if t.KeepReason != "" {
		fmt.Fprintf(w, "  kept=%s", t.KeepReason)
	}
	fmt.Fprintln(w)

	// Children grouped under parents, siblings in start order.
	children := make(map[int32][]int)
	for i, sp := range t.Spans {
		children[sp.Parent] = append(children[sp.Parent], i)
	}
	for _, idxs := range children {
		sort.SliceStable(idxs, func(a, b int) bool {
			return t.Spans[idxs[a]].StartUS < t.Spans[idxs[b]].StartUS
		})
	}
	var walk func(parent int32, depth int)
	walk = func(parent int32, depth int) {
		for _, i := range children[parent] {
			sp := t.Spans[i]
			fmt.Fprintf(w, "  %9s  %9s  ", "+"+fmtUS(sp.StartUS), fmtUS(sp.DurUS))
			for d := 0; d < depth; d++ {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprint(w, sp.Kind)
			if sp.Name != "" {
				fmt.Fprintf(w, " (%s)", sp.Name)
			}
			if sp.Open {
				fmt.Fprint(w, " [open]")
			}
			if len(sp.Attrs) > 0 {
				keys := make([]string, 0, len(sp.Attrs))
				for k := range sp.Attrs {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					fmt.Fprintf(w, "  %s=%s", k, sp.Attrs[k])
				}
			}
			fmt.Fprintln(w)
			walk(int32(i), depth+1)
		}
	}
	walk(int32(NoSpan), 0)
}

// fmtUS renders a microsecond count compactly (µs below 1ms, ms below 1s,
// seconds above).
func fmtUS(us int64) string {
	switch {
	case us < 1_000:
		return fmt.Sprintf("%dµs", us)
	case us < 1_000_000:
		return fmt.Sprintf("%.2fms", float64(us)/1e3)
	default:
		return fmt.Sprintf("%.3fs", float64(us)/1e6)
	}
}
