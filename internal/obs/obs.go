// Package obs is the daemon's request-scoped telemetry layer: structured
// logging on log/slog, request IDs minted in HTTP middleware and threaded
// through jobs and the matcher core, span timelines (typed begin/end events
// accumulated into a per-request tree), and a tail-sampling flight recorder
// holding the last N interesting timelines for /debug/requests.
//
// The package is a stdlib-only leaf so that core, store, jobs, and sweep can
// all import it.  Every entry point is nil-safe: a nil *Timeline or nil
// *Scope swallows calls without allocating, which is what keeps the
// observer-disabled match path at zero extra allocations (pinned by
// TestObserveDisabledNoAllocs in internal/core).
package obs

import (
	"context"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Span kinds.  The set is closed on purpose: /metrics renders one
// subgeminid_request_spans_total{kind=...} series per entry of SpanKinds,
// so an unknown kind would be invisible there (it still shows up in the
// timeline itself).
const (
	KindQueueWait   = "queue-wait"   // admission semaphore / job queue wait
	KindShedCheck   = "shed-check"   // load-shed admission decision
	KindStoreGet    = "store-get"    // circuit store handle acquisition
	KindCSRBuild    = "csr-build"    // CSR adjacency construction
	KindPhase1      = "phase1"       // SubGemini Phase I relabeling
	KindPhase2      = "phase2"       // SubGemini Phase II verification
	KindCacheLookup = "cache-lookup" // pattern / result-cache lookup
	KindPersist     = "persist"      // store write (PUT, PATCH, pattern save)
)

// SpanKinds enumerates every span kind in the order /metrics renders them.
var SpanKinds = []string{
	KindQueueWait, KindShedCheck, KindStoreGet, KindCSRBuild,
	KindPhase1, KindPhase2, KindCacheLookup, KindPersist,
}

// SpanRef identifies a span inside one Timeline.  NoSpan is the nil value:
// Begin on a nil timeline returns it, and End/Attr on it are no-ops, so
// callers never need to branch.
type SpanRef int32

// NoSpan is the SpanRef returned when no timeline is recording.
const NoSpan SpanRef = -1

// Attr is one key/value annotation on a span.  Values are pre-rendered
// strings: rendering happens only when a timeline is actually recording,
// never on the disabled path.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed event inside a timeline.  Start and End are nanosecond
// offsets from the timeline start; End == 0 means the span never ended
// (the request finished first — rendered with its duration open).
type Span struct {
	Kind    string
	Name    string
	Parent  SpanRef
	StartNS int64
	EndNS   int64
	Attrs   []Attr
}

// Timeline accumulates the spans of one request (HTTP or job).  All methods
// are safe for concurrent use — sweep workers append spans from many
// goroutines — and safe on a nil receiver.
type Timeline struct {
	mu        sync.Mutex
	id        string
	scope     string // "http" or "job:<kind>"
	method    string
	path      string
	start     time.Time
	startWall time.Time
	status    int
	cancelled bool
	reason    string
	durNS     int64
	done      bool
	spans     []Span
}

// NewTimeline starts a timeline for one request.  scope is "http" for
// handler-driven work and "job:<kind>" for async job execution; method and
// path describe the triggering call ("POST /v1/match", or the job kind).
func NewTimeline(id, scope, method, path string) *Timeline {
	now := time.Now()
	return &Timeline{id: id, scope: scope, method: method, path: path, start: now, startWall: now}
}

// ID returns the request ID the timeline was minted with ("" on nil).
func (t *Timeline) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Begin opens a span under parent (NoSpan for a root span) and returns its
// reference.  On a nil timeline it returns NoSpan without allocating.
func (t *Timeline) Begin(parent SpanRef, kind, name string) SpanRef {
	if t == nil {
		return NoSpan
	}
	t.mu.Lock()
	ref := SpanRef(len(t.spans))
	t.spans = append(t.spans, Span{Kind: kind, Name: name, Parent: parent, StartNS: int64(time.Since(t.start))})
	t.mu.Unlock()
	return ref
}

// End closes the span.  No-op on a nil timeline or NoSpan.
func (t *Timeline) End(ref SpanRef) {
	if t == nil || ref < 0 {
		return
	}
	t.mu.Lock()
	if int(ref) < len(t.spans) && t.spans[ref].EndNS == 0 {
		t.spans[ref].EndNS = int64(time.Since(t.start))
	}
	t.mu.Unlock()
}

// Attr annotates the span with a string value.
func (t *Timeline) Attr(ref SpanRef, key, value string) {
	if t == nil || ref < 0 {
		return
	}
	t.mu.Lock()
	if int(ref) < len(t.spans) {
		t.spans[ref].Attrs = append(t.spans[ref].Attrs, Attr{Key: key, Value: value})
	}
	t.mu.Unlock()
}

// AttrInt annotates the span with an integer value.  The strconv render
// happens only here — i.e. only when a timeline is recording.
func (t *Timeline) AttrInt(ref SpanRef, key string, value int64) {
	if t == nil || ref < 0 {
		return
	}
	t.Attr(ref, key, strconv.FormatInt(value, 10))
}

// SetCancelled marks the request as cancelled (deadline or client gone);
// the tail sampler always keeps cancelled timelines.
func (t *Timeline) SetCancelled() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.cancelled = true
	t.mu.Unlock()
}

// Finish seals the timeline with the final status code and total duration.
// Idempotent; later calls keep the first outcome.
func (t *Timeline) Finish(status int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.done {
		t.done = true
		t.status = status
		t.durNS = int64(time.Since(t.start))
	}
	t.mu.Unlock()
}

// Scope returns a span scope rooted at parent, the form core.Options.Observe
// takes.  A nil timeline yields a nil scope, on which every method is a
// no-op.
func (t *Timeline) Scope(parent SpanRef) *Scope {
	if t == nil {
		return nil
	}
	return &Scope{tl: t, parent: parent}
}

// Scope is a (timeline, parent span) pair handed into lower layers — the
// matcher core, the sweep engine — so they can hang spans off the request
// without knowing about HTTP.  Nil-safe throughout.
type Scope struct {
	tl     *Timeline
	parent SpanRef
}

// Begin opens a child span of the scope's parent.
func (s *Scope) Begin(kind, name string) SpanRef {
	if s == nil {
		return NoSpan
	}
	return s.tl.Begin(s.parent, kind, name)
}

// End closes the span.
func (s *Scope) End(ref SpanRef) {
	if s == nil {
		return
	}
	s.tl.End(ref)
}

// Attr annotates the span with a string value.
func (s *Scope) Attr(ref SpanRef, key, value string) {
	if s == nil {
		return
	}
	s.tl.Attr(ref, key, value)
}

// AttrInt annotates the span with an integer value.
func (s *Scope) AttrInt(ref SpanRef, key string, value int64) {
	if s == nil {
		return
	}
	s.tl.AttrInt(ref, key, value)
}

// Timeline returns the underlying timeline (nil on a nil scope).
func (s *Scope) Timeline() *Timeline {
	if s == nil {
		return nil
	}
	return s.tl
}

// ---------------------------------------------------------------------------
// Context plumbing

type ctxKey struct{}

// NewContext returns ctx carrying the timeline.
func NewContext(ctx context.Context, t *Timeline) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the timeline carried by ctx, or nil.
func FromContext(ctx context.Context) *Timeline {
	t, _ := ctx.Value(ctxKey{}).(*Timeline)
	return t
}

// RequestID returns the request ID carried by ctx ("" when none).
func RequestID(ctx context.Context) string {
	return FromContext(ctx).ID()
}

// ScopeFromContext returns a root-level span scope for the timeline in ctx,
// or nil when none is recording.
func ScopeFromContext(ctx context.Context) *Scope {
	return FromContext(ctx).Scope(NoSpan)
}

// ---------------------------------------------------------------------------
// JSON snapshot

// SpanJSON is the wire form of one span in /debug/requests/{id}.
type SpanJSON struct {
	Kind    string            `json:"kind"`
	Name    string            `json:"name,omitempty"`
	Parent  int32             `json:"parent"`
	StartUS int64             `json:"start_us"`
	DurUS   int64             `json:"dur_us"`
	Open    bool              `json:"open,omitempty"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// TimelineJSON is the wire form of one timeline.
type TimelineJSON struct {
	RequestID   string     `json:"request_id"`
	Scope       string     `json:"scope"`
	Method      string     `json:"method,omitempty"`
	Path        string     `json:"path,omitempty"`
	Status      int        `json:"status"`
	Cancelled   bool       `json:"cancelled,omitempty"`
	KeepReason  string     `json:"keep_reason,omitempty"`
	StartUnixMS int64      `json:"start_unix_ms"`
	DurationUS  int64      `json:"duration_us"`
	Spans       []SpanJSON `json:"spans"`
}

// JSON snapshots the timeline.  Safe while spans are still being appended
// (the snapshot is taken under the timeline lock).
func (t *Timeline) JSON() TimelineJSON {
	if t == nil {
		return TimelineJSON{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := TimelineJSON{
		RequestID:   t.id,
		Scope:       t.scope,
		Method:      t.method,
		Path:        t.path,
		Status:      t.status,
		Cancelled:   t.cancelled,
		KeepReason:  t.reason,
		StartUnixMS: t.startWall.UnixMilli(),
		DurationUS:  t.durNS / 1e3,
		Spans:       make([]SpanJSON, len(t.spans)),
	}
	for i, sp := range t.spans {
		sj := SpanJSON{
			Kind:    sp.Kind,
			Name:    sp.Name,
			Parent:  int32(sp.Parent),
			StartUS: sp.StartNS / 1e3,
		}
		if sp.EndNS > 0 {
			sj.DurUS = (sp.EndNS - sp.StartNS) / 1e3
		} else {
			sj.Open = true
			sj.DurUS = (t.durNS - sp.StartNS) / 1e3
			if sj.DurUS < 0 {
				sj.DurUS = 0
			}
		}
		if len(sp.Attrs) > 0 {
			sj.Attrs = make(map[string]string, len(sp.Attrs))
			for _, a := range sp.Attrs {
				sj.Attrs[a.Key] = a.Value
			}
		}
		out.Spans[i] = sj
	}
	return out
}

// TopSpans returns the n longest closed spans, longest first — the inline
// payload of the slow-request log line.
func (t *Timeline) TopSpans(n int) []SpanJSON {
	if t == nil {
		return nil
	}
	js := t.JSON()
	sort.SliceStable(js.Spans, func(i, j int) bool { return js.Spans[i].DurUS > js.Spans[j].DurUS })
	if len(js.Spans) > n {
		js.Spans = js.Spans[:n]
	}
	return js.Spans
}
