package obs

import (
	"strings"
	"sync"
	"time"
)

// Keep reasons, in classification precedence order: a shed beats a cancel
// beats an error beats slow beats the probabilistic sample.  /metrics
// renders one subgeminid_flight_recorder_kept_total{reason=...} series per
// entry of KeepReasons.
const (
	KeepShed    = "shed"    // 429: load-shed before any work happened
	KeepCancel  = "cancel"  // deadline exceeded or client went away
	KeepError   = "error"   // 5xx outcome
	KeepSlow    = "slow"    // total duration over the -slow-request threshold
	KeepSampled = "sampled" // ordinary request kept by 1-in-N tail sampling
)

// KeepReasons enumerates every keep reason in the order /metrics renders
// them.
var KeepReasons = []string{KeepShed, KeepCancel, KeepError, KeepSlow, KeepSampled}

// Recorder is the tail-sampling flight recorder: a fixed-size ring of
// completed timelines.  Interesting requests (sheds, cancellations, errors,
// slow ones) are always kept; the rest are kept one-in-N so the ring keeps
// a background of normal traffic to compare against.  Sampling is a
// deterministic counter, not a PRNG, so tests can predict exactly which
// requests survive.
type Recorder struct {
	mu       sync.Mutex
	ring     []*Timeline
	next     int
	sampleN  uint64
	slow     time.Duration
	tick     uint64
	spans    map[string]uint64
	kept     map[string]uint64
	slowSeen uint64
}

// Defaults applied when NewRecorder gets zero values.
const (
	DefaultRecorderSize = 256
	DefaultSampleN      = 16
	DefaultSlowRequest  = time.Second
)

// NewRecorder builds a recorder holding size timelines, keeping 1-in-sampleN
// uninteresting requests, with slow as the always-keep latency threshold.
// Zero values take the defaults above; the recorder is always on.
func NewRecorder(size, sampleN int, slow time.Duration) *Recorder {
	if size <= 0 {
		size = DefaultRecorderSize
	}
	if sampleN <= 0 {
		sampleN = DefaultSampleN
	}
	if slow <= 0 {
		slow = DefaultSlowRequest
	}
	return &Recorder{
		ring:    make([]*Timeline, 0, size),
		sampleN: uint64(sampleN),
		slow:    slow,
		spans:   make(map[string]uint64),
		kept:    make(map[string]uint64),
	}
}

// SlowThreshold returns the always-keep latency threshold.
func (r *Recorder) SlowThreshold() time.Duration { return r.slow }

// Classify returns the keep reason for a finished timeline, or "" to drop
// it.  Exposed for tests; Observe applies it.
func (r *Recorder) Classify(t *Timeline) string {
	t.mu.Lock()
	status, cancelled, dur := t.status, t.cancelled, time.Duration(t.durNS)
	t.mu.Unlock()
	switch {
	case status == 429:
		return KeepShed
	case cancelled:
		return KeepCancel
	case status >= 500:
		return KeepError
	case dur >= r.slow:
		return KeepSlow
	}
	r.mu.Lock()
	r.tick++
	hit := r.tick%r.sampleN == 1 || r.sampleN == 1
	r.mu.Unlock()
	if hit {
		return KeepSampled
	}
	return ""
}

// Observe classifies a finished timeline, tallies its spans, and — when the
// sampler keeps it — inserts it into the ring.  Returns the keep reason
// ("" when dropped) and whether the timeline is slow (for the caller's
// slow-request log line, which fires whether or not the ring kept it).
func (r *Recorder) Observe(t *Timeline) (reason string, slow bool) {
	if r == nil || t == nil {
		return "", false
	}
	reason = r.Classify(t)
	t.mu.Lock()
	t.reason = reason
	slow = time.Duration(t.durNS) >= r.slow
	kinds := make([]string, len(t.spans))
	for i := range t.spans {
		kinds[i] = t.spans[i].Kind
	}
	t.mu.Unlock()
	r.mu.Lock()
	for _, k := range kinds {
		r.spans[k]++
	}
	if slow {
		r.slowSeen++
	}
	if reason == "" {
		r.mu.Unlock()
		return "", slow
	}
	r.kept[reason]++
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, t)
	} else {
		r.ring[r.next] = t
		r.next = (r.next + 1) % len(r.ring)
	}
	r.mu.Unlock()
	return reason, slow
}

// snapshot returns the kept timelines newest-first.
func (r *Recorder) snapshot() []*Timeline {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.ring)
	out := make([]*Timeline, 0, n)
	if n < cap(r.ring) {
		// Ring not yet full: appends go to the tail, so the tail is newest.
		for i := n - 1; i >= 0; i-- {
			out = append(out, r.ring[i])
		}
		return out
	}
	// Full ring: next points at the oldest slot (the one about to be
	// overwritten), so next-1 is the newest.
	for i := 0; i < n; i++ {
		out = append(out, r.ring[(r.next+2*n-1-i)%n])
	}
	return out
}

// Filter selects timelines out of the recorder.  Zero values match
// everything.
type Filter struct {
	Outcome string        // keep reason: shed, cancel, error, slow, sampled
	Path    string        // substring of the request path
	MinDur  time.Duration // minimum total duration
	Limit   int           // max results (0 = 50)
}

// List returns JSON snapshots of kept timelines matching f, newest first.
func (r *Recorder) List(f Filter) []TimelineJSON {
	if r == nil {
		return nil
	}
	limit := f.Limit
	if limit <= 0 {
		limit = 50
	}
	out := []TimelineJSON{}
	for _, t := range r.snapshot() {
		js := t.JSON()
		if f.Outcome != "" && js.KeepReason != f.Outcome {
			continue
		}
		if f.Path != "" && !strings.Contains(js.Path, f.Path) {
			continue
		}
		if f.MinDur > 0 && time.Duration(js.DurationUS)*time.Microsecond < f.MinDur {
			continue
		}
		out = append(out, js)
		if len(out) >= limit {
			break
		}
	}
	return out
}

// Find returns every kept timeline carrying the request ID, oldest first —
// an HTTP submit and the job it spawned share one ID and both show up.
func (r *Recorder) Find(id string) []TimelineJSON {
	if r == nil || id == "" {
		return nil
	}
	var out []TimelineJSON
	all := r.snapshot()
	for i := len(all) - 1; i >= 0; i-- {
		if all[i].ID() == id {
			out = append(out, all[i].JSON())
		}
	}
	return out
}

// Counters is a consistent snapshot of the recorder's /metrics state.
type Counters struct {
	Spans map[string]uint64 // per span kind
	Kept  map[string]uint64 // per keep reason
	Slow  uint64            // requests over the slow threshold
}

// CountersSnapshot returns copies of the recorder's counters.
func (r *Recorder) CountersSnapshot() Counters {
	if r == nil {
		return Counters{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := Counters{
		Spans: make(map[string]uint64, len(r.spans)),
		Kept:  make(map[string]uint64, len(r.kept)),
		Slow:  r.slowSeen,
	}
	for k, v := range r.spans {
		c.Spans[k] = v
	}
	for k, v := range r.kept {
		c.Kept[k] = v
	}
	return c
}
