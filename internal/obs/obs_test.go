package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func finished(id string, status int, dur time.Duration, cancelled bool) *Timeline {
	t := NewTimeline(id, "http", "POST", "/v1/match")
	if cancelled {
		t.SetCancelled()
	}
	t.Finish(status)
	t.durNS = int64(dur) // pin the duration; wall clock is too coarse for tests
	return t
}

func TestTimelineSpansAndJSON(t *testing.T) {
	tl := NewTimeline("r-1", "http", "POST", "/v1/match")
	root := tl.Begin(NoSpan, KindStoreGet, "ring")
	tl.Attr(root, "circuit", "ring")
	tl.AttrInt(root, "version", 7)
	child := tl.Begin(root, KindPhase1, "")
	tl.End(child)
	tl.End(root)
	open := tl.Begin(NoSpan, KindPhase2, "")
	_ = open // never ended: request finished first
	tl.Finish(200)

	js := tl.JSON()
	if js.RequestID != "r-1" || js.Scope != "http" || js.Status != 200 {
		t.Fatalf("header wrong: %+v", js)
	}
	if len(js.Spans) != 3 {
		t.Fatalf("want 3 spans, got %d", len(js.Spans))
	}
	if js.Spans[0].Attrs["circuit"] != "ring" || js.Spans[0].Attrs["version"] != "7" {
		t.Errorf("attrs wrong: %v", js.Spans[0].Attrs)
	}
	if js.Spans[1].Parent != int32(root) {
		t.Errorf("child parent = %d, want %d", js.Spans[1].Parent, root)
	}
	if !js.Spans[2].Open {
		t.Error("unfinished span not marked open")
	}
	if _, err := json.Marshal(js); err != nil {
		t.Fatalf("marshal: %v", err)
	}
}

func TestNilSafety(t *testing.T) {
	var tl *Timeline
	ref := tl.Begin(NoSpan, KindPhase1, "x")
	if ref != NoSpan {
		t.Fatalf("nil Begin = %d, want NoSpan", ref)
	}
	tl.End(ref)
	tl.Attr(ref, "k", "v")
	tl.AttrInt(ref, "k", 1)
	tl.SetCancelled()
	tl.Finish(200)
	if tl.ID() != "" {
		t.Error("nil ID not empty")
	}
	var sc *Scope
	if sc = tl.Scope(NoSpan); sc != nil {
		t.Fatal("nil timeline yielded non-nil scope")
	}
	if r := sc.Begin(KindPhase1, ""); r != NoSpan {
		t.Fatalf("nil scope Begin = %d", r)
	}
	sc.End(NoSpan)
	sc.Attr(NoSpan, "k", "v")
	sc.AttrInt(NoSpan, "k", 1)
	if sc.Timeline() != nil {
		t.Error("nil scope Timeline not nil")
	}
	var rec *Recorder
	if reason, _ := rec.Observe(tl); reason != "" {
		t.Error("nil recorder kept something")
	}
	if rec.List(Filter{}) != nil || rec.Find("x") != nil {
		t.Error("nil recorder listed something")
	}
}

func TestContextRoundTrip(t *testing.T) {
	tl := NewTimeline("r-ctx", "http", "GET", "/x")
	ctx := NewContext(context.Background(), tl)
	if FromContext(ctx) != tl {
		t.Fatal("timeline lost in context")
	}
	if RequestID(ctx) != "r-ctx" {
		t.Fatalf("RequestID = %q", RequestID(ctx))
	}
	if got := ScopeFromContext(ctx); got == nil || got.Timeline() != tl {
		t.Fatal("scope from context wrong")
	}
	if RequestID(context.Background()) != "" {
		t.Error("empty context has an ID")
	}
	if ScopeFromContext(context.Background()) != nil {
		t.Error("empty context has a scope")
	}
}

func TestClassifyPrecedence(t *testing.T) {
	r := NewRecorder(8, 1000, 50*time.Millisecond)
	cases := []struct {
		name   string
		tl     *Timeline
		reason string
	}{
		{"shed beats everything", finished("a", 429, time.Second, true), KeepShed},
		{"cancel beats error", finished("b", 503, time.Second, true), KeepCancel},
		{"error beats slow", finished("c", 500, time.Second, false), KeepError},
		{"slow", finished("d", 200, time.Second, false), KeepSlow},
		{"fast 4xx drops", finished("e", 404, time.Millisecond, false), ""},
	}
	for _, c := range cases {
		// Skip the sampled case: with sampleN=1000 the first tick would hit.
		if c.reason == "" {
			r.mu.Lock()
			r.tick = 5 // not ≡1 mod 1000
			r.mu.Unlock()
		}
		if got := r.Classify(c.tl); got != c.reason {
			t.Errorf("%s: reason %q, want %q", c.name, got, c.reason)
		}
	}
}

func TestTailSamplingDeterministic(t *testing.T) {
	r := NewRecorder(64, 4, time.Hour)
	kept := 0
	for i := 0; i < 40; i++ {
		reason, slow := r.Observe(finished("r", 200, time.Millisecond, false))
		if slow {
			t.Fatal("fast request marked slow")
		}
		if reason == KeepSampled {
			kept++
		} else if reason != "" {
			t.Fatalf("unexpected reason %q", reason)
		}
	}
	if kept != 10 {
		t.Errorf("1-in-4 sampling kept %d of 40, want 10", kept)
	}
	c := r.CountersSnapshot()
	if c.Kept[KeepSampled] != 10 {
		t.Errorf("kept counter %d, want 10", c.Kept[KeepSampled])
	}
}

func TestRecorderRingEviction(t *testing.T) {
	r := NewRecorder(4, 1, time.Hour) // keep everything, ring of 4
	for i := 0; i < 7; i++ {
		tl := NewTimeline(string(rune('a'+i)), "http", "GET", "/x")
		tl.Finish(200)
		r.Observe(tl)
	}
	got := r.List(Filter{})
	if len(got) != 4 {
		t.Fatalf("ring holds %d, want 4", len(got))
	}
	// Newest first: g f e d.
	want := []string{"g", "f", "e", "d"}
	for i, w := range want {
		if got[i].RequestID != w {
			t.Errorf("list[%d] = %q, want %q", i, got[i].RequestID, w)
		}
	}
	if found := r.Find("c"); found != nil {
		t.Error("evicted timeline still findable")
	}
	if found := r.Find("f"); len(found) != 1 {
		t.Errorf("Find(f) = %d results", len(found))
	}
}

func TestListFilters(t *testing.T) {
	r := NewRecorder(16, 1, 100*time.Millisecond)
	r.Observe(finished("slow1", 200, 200*time.Millisecond, false))
	r.Observe(finished("err1", 500, time.Millisecond, false))
	sweep := NewTimeline("sweep1", "http", "POST", "/v1/sweep")
	sweep.Finish(200)
	r.Observe(sweep)

	if got := r.List(Filter{Outcome: KeepError}); len(got) != 1 || got[0].RequestID != "err1" {
		t.Errorf("outcome filter: %+v", got)
	}
	if got := r.List(Filter{Path: "sweep"}); len(got) != 1 || got[0].RequestID != "sweep1" {
		t.Errorf("path filter: %+v", got)
	}
	if got := r.List(Filter{MinDur: 150 * time.Millisecond}); len(got) != 1 || got[0].RequestID != "slow1" {
		t.Errorf("min-dur filter: %+v", got)
	}
	if got := r.List(Filter{Limit: 2}); len(got) != 2 {
		t.Errorf("limit filter: %d results", len(got))
	}
}

func TestObserveSlowAndCounters(t *testing.T) {
	r := NewRecorder(8, 1, 10*time.Millisecond)
	tl := NewTimeline("s", "http", "POST", "/v1/match")
	ref := tl.Begin(NoSpan, KindPhase1, "")
	tl.End(ref)
	tl.Begin(NoSpan, KindPhase2, "")
	tl.Finish(200)
	tl.durNS = int64(20 * time.Millisecond)
	reason, slow := r.Observe(tl)
	if reason != KeepSlow || !slow {
		t.Fatalf("reason=%q slow=%v, want slow/true", reason, slow)
	}
	c := r.CountersSnapshot()
	if c.Slow != 1 || c.Spans[KindPhase1] != 1 || c.Spans[KindPhase2] != 1 {
		t.Errorf("counters: %+v", c)
	}
}

func TestConcurrentSpanAppends(t *testing.T) {
	tl := NewTimeline("r-conc", "http", "POST", "/v1/sweep")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := tl.Scope(NoSpan)
			for i := 0; i < 50; i++ {
				ref := sc.Begin(KindPhase2, "p")
				sc.AttrInt(ref, "i", int64(i))
				sc.End(ref)
				_ = tl.JSON() // concurrent snapshot while appending
			}
		}()
	}
	wg.Wait()
	tl.Finish(200)
	if n := len(tl.JSON().Spans); n != 400 {
		t.Fatalf("spans = %d, want 400", n)
	}
}

func TestTopSpans(t *testing.T) {
	tl := NewTimeline("r", "http", "GET", "/x")
	a := tl.Begin(NoSpan, KindPhase1, "")
	tl.spans[a].EndNS = tl.spans[a].StartNS + int64(5*time.Millisecond)
	b := tl.Begin(NoSpan, KindPhase2, "")
	tl.spans[b].EndNS = tl.spans[b].StartNS + int64(50*time.Millisecond)
	c := tl.Begin(NoSpan, KindStoreGet, "")
	tl.spans[c].EndNS = tl.spans[c].StartNS + int64(1*time.Millisecond)
	tl.Finish(200)
	top := tl.TopSpans(2)
	if len(top) != 2 || top[0].Kind != KindPhase2 || top[1].Kind != KindPhase1 {
		t.Fatalf("top spans: %+v", top)
	}
}

func TestContextHandlerInjectsRequestID(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, "json", "info")
	tl := NewTimeline("r-log", "http", "GET", "/x")
	log.InfoContext(NewContext(context.Background(), tl), "hello", "k", "v")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not json: %v (%s)", err, buf.String())
	}
	if rec["request_id"] != "r-log" || rec["k"] != "v" || rec["msg"] != "hello" {
		t.Errorf("record: %v", rec)
	}

	buf.Reset()
	log = NewLogger(&buf, "text", "warn")
	log.Info("dropped")
	log.Warn("kept")
	if strings.Contains(buf.String(), "dropped") || !strings.Contains(buf.String(), "kept") {
		t.Errorf("level filter: %q", buf.String())
	}
}

func TestLogfLogger(t *testing.T) {
	var lines []string
	log := LogfLogger(func(format string, args ...any) {
		lines = append(lines, strings.TrimSpace(strings.ReplaceAll(format, "%s", args[0].(string))))
	})
	log = log.With("component", "store")
	log.Info("evicted circuit", "name", "ring")
	if len(lines) != 1 || !strings.Contains(lines[0], "evicted circuit") ||
		!strings.Contains(lines[0], "component=store") || !strings.Contains(lines[0], "name=ring") {
		t.Fatalf("lines: %v", lines)
	}
}

func TestDiscardLogger(t *testing.T) {
	log := Discard()
	if log.Enabled(context.Background(), slog.LevelError) {
		t.Error("discard logger claims enabled")
	}
	log.Error("goes nowhere") // must not panic
}

func TestRenderTimeline(t *testing.T) {
	tl := NewTimeline("r-42", "http", "POST", "/v1/match")
	root := tl.Begin(NoSpan, KindStoreGet, "ring")
	tl.Attr(root, "version", "3")
	child := tl.Begin(root, KindPhase1, "")
	tl.End(child)
	tl.End(root)
	tl.Finish(200)
	var buf bytes.Buffer
	RenderTimeline(&buf, tl.JSON())
	out := buf.String()
	for _, want := range []string{"r-42", "POST /v1/match", "status=200", "store-get (ring)", "version=3", "phase1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// The child is indented deeper than its parent.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 lines, got %d:\n%s", len(lines), out)
	}
	if strings.Index(lines[2], "phase1") <= strings.Index(lines[1], "store-get") {
		t.Errorf("child not indented:\n%s", out)
	}
}

func TestFmtUS(t *testing.T) {
	for us, want := range map[int64]string{500: "500µs", 2_500: "2.50ms", 3_200_000: "3.200s"} {
		if got := fmtUS(us); got != want {
			t.Errorf("fmtUS(%d) = %q, want %q", us, got, want)
		}
	}
}
