package gen

import (
	"sync"

	"subgemini/internal/baseline"
	"subgemini/internal/graph"
	"subgemini/internal/stdcell"
)

// Containment returns how many instances of pattern exist inside a single
// placed copy of cell, with VDD and GND treated as special signals (an FA
// contains two INVs — its output inverters; a DFF contains one LATCH — its
// slave; and every cell contains itself exactly once).
//
// The counts are computed with the independent baseline matcher on a
// single-cell circuit and memoized; they are exact for this library because
// every pattern instance inside a cell keeps its internal nets on
// cell-internal nodes, so embedding the cell in a larger circuit neither
// creates nor destroys such instances.
func Containment(pattern, cell *stdcell.CellDef) int {
	key := [2]string{pattern.Name, cell.Name}
	containMu.Lock()
	if n, ok := containMemo[key]; ok {
		containMu.Unlock()
		return n
	}
	containMu.Unlock()

	ckt := graph.New("one_" + cell.Name)
	vdd, gnd := ckt.AddNet("VDD"), ckt.AddNet("GND")
	conns := map[string]*graph.Net{}
	for _, p := range cell.Ports {
		switch p {
		case "VDD":
			conns[p] = vdd
		case "GND":
			conns[p] = gnd
		default:
			conns[p] = ckt.AddNet(p)
		}
	}
	cell.MustInstantiate(ckt, "u", conns)
	res, err := baseline.Find(ckt, pattern.Pattern(), baseline.Options{Globals: []string{"VDD", "GND"}})
	if err != nil {
		panic(err) // library cells are valid patterns; unreachable
	}
	n := len(res.Instances)

	containMu.Lock()
	containMemo[key] = n
	containMu.Unlock()
	return n
}

var (
	containMu   sync.Mutex
	containMemo = map[[2]string]int{}
)

// Expected returns the number of instances of pattern the matcher should
// find in the design under MatchAll semantics with VDD/GND special: the
// placed-cell census folded through the containment table.
func (d *Design) Expected(pattern *stdcell.CellDef) int {
	total := 0
	for cellName, count := range d.Placed {
		cell := stdcell.Get(cellName)
		if cell == nil {
			continue
		}
		total += count * Containment(pattern, cell)
	}
	return total
}

// TransistorCount returns the number of MOS devices in the design.
func (d *Design) TransistorCount() int {
	n := 0
	for _, dev := range d.C.Devices {
		if dev.Type == "nmos" || dev.Type == "pmos" {
			n++
		}
	}
	return n
}
