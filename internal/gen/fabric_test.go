package gen

import (
	"testing"

	"subgemini/internal/baseline"
	"subgemini/internal/stdcell"
)

func TestInverterTree(t *testing.T) {
	d := InverterTree(4, 0)
	if err := d.C.Validate(); err != nil {
		t.Fatal(err)
	}
	// A complete binary tree of depth 4 has 2^4 - 1 = 15 inverters.
	if got := d.Placed["INV"]; got != 15 {
		t.Errorf("placed %d inverters, want 15", got)
	}
	withChain := InverterTree(4, 3)
	if got := withChain.Placed["INV"]; got != 18 {
		t.Errorf("with chain: placed %d inverters, want 18", got)
	}
}

func TestChainPatternShape(t *testing.T) {
	p := ChainPattern(4)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumDevices() != 8 {
		t.Errorf("%d devices, want 8", p.NumDevices())
	}
	ports := p.Ports()
	if len(ports) != 2 {
		t.Errorf("%d ports, want 2 (in, out)", len(ports))
	}
	// Intermediate nets are internal with degree 4.
	for _, name := range []string{"m1", "m2", "m3"} {
		n := p.NetByName(name)
		if n == nil || n.Port {
			t.Errorf("net %s missing or wrongly a port", name)
			continue
		}
		if n.Degree() != 4 {
			t.Errorf("net %s degree %d, want 4", name, n.Degree())
		}
	}
}

func TestChainPlantedInTreeIsFound(t *testing.T) {
	d := InverterTree(5, 4)
	res, err := baseline.Find(d.C, ChainPattern(4), baseline.Options{Globals: []string{"VDD", "GND"}})
	if err != nil {
		t.Fatal(err)
	}
	// Two windows qualify: the planted chain itself, and the window
	// shifted one stage up through the leaf inverter that feeds it (the
	// leaf's output net gains the chain's gate loads and reaches exactly
	// the internal degree 4).
	if len(res.Instances) != 2 {
		t.Errorf("found %d chain windows, want 2", len(res.Instances))
	}
	// Without the planted chain there is none: every tree-internal net has
	// degree 6.
	d0 := InverterTree(5, 0)
	res, err = baseline.Find(d0.C, ChainPattern(4), baseline.Options{Globals: []string{"VDD", "GND"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 0 {
		t.Errorf("found %d chains in a bare tree, want 0", len(res.Instances))
	}
}

func TestNandMesh(t *testing.T) {
	d := NandMesh(4, 0)
	if err := d.C.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := d.Placed["NAND2"]; got != 16 {
		t.Errorf("placed %d NAND2s, want 16", got)
	}
	// Interior outputs drive two neighbors: 3 own pins + 2+2 gate pins.
	if got := d.C.NetByName("y_1_1").Degree(); got != 7 {
		t.Errorf("interior output degree %d, want 7", got)
	}
	// The corner output drives nothing further in a bare mesh.
	if got := d.C.NetByName("y_3_3").Degree(); got != 3 {
		t.Errorf("corner output degree %d, want 3", got)
	}
}

func TestNandChainPattern(t *testing.T) {
	p := NandChainPattern(3)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumDevices() != 12 {
		t.Errorf("%d devices, want 12", p.NumDevices())
	}
	// in, out, and one side input per stage.
	if got := len(p.Ports()); got != 5 {
		t.Errorf("%d ports, want 5", got)
	}
}

func TestSwitchGrid(t *testing.T) {
	d := SwitchGrid(4, 0)
	if err := d.C.Validate(); err != nil {
		t.Fatal(err)
	}
	// 2·m·(m−1) edges for an m×m grid.
	if got := d.C.NumDevices(); got != 24 {
		t.Errorf("%d pass transistors, want 24", got)
	}
	// Interior node degree 4, corner degree 2.
	if got := d.C.NetByName("n_1_1").Degree(); got != 4 {
		t.Errorf("interior node degree %d, want 4", got)
	}
	if got := d.C.NetByName("n_0_0").Degree(); got != 2 {
		t.Errorf("corner degree %d, want 2", got)
	}
}

func TestPassChainPlantedInGridIsFound(t *testing.T) {
	d := SwitchGrid(5, 5)
	res, err := baseline.Find(d.C, PassChainPattern(5), baseline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 1 {
		t.Errorf("found %d planted pass chains, want 1", len(res.Instances))
	}
	d0 := SwitchGrid(5, 0)
	res, err = baseline.Find(d0.C, PassChainPattern(5), baseline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != 0 {
		t.Errorf("found %d chains in a bare grid, want 0", len(res.Instances))
	}
}

// TestFabricPatternsAgreeWithCore: the adversarial fabrics must give
// identical counts under SubGemini and the baseline.
func TestFabricPatternsAgreeWithCore(t *testing.T) {
	// Imported lazily to avoid an import cycle through truth.go: the core
	// matcher is exercised on these fabrics in internal/core and in the
	// bench harness; here the baseline self-consistency (plain vs pruned)
	// is the check.
	d := SwitchGrid(6, 6)
	pruned, err := baseline.Find(d.C.Clone(), PassChainPattern(6), baseline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := baseline.Find(d.C.Clone(), PassChainPattern(6), baseline.Options{Plain: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned.Instances) != len(plain.Instances) {
		t.Errorf("pruned found %d, plain found %d", len(pruned.Instances), len(plain.Instances))
	}
	if plain.Steps <= pruned.Steps {
		t.Errorf("plain DFS took %d steps, pruned %d: expected plain to work much harder", plain.Steps, pruned.Steps)
	}
	_ = stdcell.INV // keep the import for the placed-census assertions above
}
