// Package gen builds parametric transistor-level CMOS circuits for tests
// and benchmarks: ripple-carry adders, array multipliers, ripple counters,
// shift registers, SRAM arrays, and random standard-cell logic.
//
// These generators substitute for the proprietary University of Washington
// netlists the paper's evaluation ran on.  The matcher sees only the
// bipartite device/net graph, so a generated 64-bit datapath exercises the
// same code paths as a production netlist: repeated cell tiling, shared
// power rails of very high degree, long carry chains, and buses.  Every
// Design records which cells were placed, and the truth tables in truth.go
// turn that census into exact expected instance counts for any library
// pattern, which tests verify against the independent baseline matcher.
package gen

import (
	"fmt"
	"math/rand"

	"subgemini/internal/graph"
	"subgemini/internal/stdcell"
)

// Design is a generated circuit plus the census of cells placed in it.
type Design struct {
	C *graph.Circuit
	// Placed counts top-level cell instantiations by cell name.  It does
	// not count cells contained inside other cells (an FA's two output
	// inverters are not two placed INVs); Expected folds containment in.
	Placed map[string]int
}

func newDesign(name string) (*Design, *graph.Net, *graph.Net) {
	c := graph.New(name)
	return &Design{C: c, Placed: map[string]int{}}, c.AddNet("VDD"), c.AddNet("GND")
}

func (d *Design) place(cell *stdcell.CellDef, inst string, conns map[string]*graph.Net) {
	cell.MustInstantiate(d.C, inst, conns)
	d.Placed[cell.Name]++
}

// InverterChain builds a chain of n inverters.
func InverterChain(n int) *Design {
	d, vdd, gnd := newDesign(fmt.Sprintf("invchain%d", n))
	prev := d.C.AddNet("in")
	for i := 0; i < n; i++ {
		next := d.C.AddNet(fmt.Sprintf("n%d", i+1))
		d.place(stdcell.INV, fmt.Sprintf("inv%d", i), map[string]*graph.Net{
			"A": prev, "Y": next, "VDD": vdd, "GND": gnd,
		})
		prev = next
	}
	return d
}

// InverterTree builds a complete binary tree of inverters of the given
// depth (2^depth − 1 inverters): the root is driven by a primary input and
// every inverter output drives two child inverters.  Optionally a chain of
// chainLen extra inverters is planted below the leftmost leaf.
//
// This is the adversarial workload for exhaustive DFS matchers: when
// searching for an inverter *chain* pattern, every root-to-descendant path
// is a partial match that plain depth-first search abandons only at the
// end (every tree-internal net has degree 6, the chain pattern's internal
// nets have degree 4), while SubGemini's Phase I consistency check refutes
// or localizes the pattern immediately.
func InverterTree(depth, chainLen int) *Design {
	d, vdd, gnd := newDesign(fmt.Sprintf("invtree%d", depth))
	root := d.C.AddNet("in")
	type node struct {
		in  *graph.Net
		lvl int
	}
	queue := []node{{root, 0}}
	serial := 0
	var lastOut *graph.Net
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n.lvl >= depth {
			continue
		}
		out := d.C.AddNet(fmt.Sprintf("t%d", serial))
		d.place(stdcell.INV, fmt.Sprintf("ti%d", serial), map[string]*graph.Net{
			"A": n.in, "Y": out, "VDD": vdd, "GND": gnd,
		})
		serial++
		lastOut = out
		queue = append(queue, node{out, n.lvl + 1}, node{out, n.lvl + 1})
	}
	for i := 0; i < chainLen; i++ {
		out := d.C.AddNet(fmt.Sprintf("c%d", i))
		d.place(stdcell.INV, fmt.Sprintf("ci%d", i), map[string]*graph.Net{
			"A": lastOut, "Y": out, "VDD": vdd, "GND": gnd,
		})
		lastOut = out
	}
	return d
}

// NandMesh builds an m×m DAG mesh of NAND2 gates with reconvergent fanout:
// the gate at (i, j) takes the outputs of its north and west neighbors
// (primary inputs on the top and left edges) and drives both the south and
// east neighbors.  The number of distinct directed paths of length L
// through the mesh grows like 2^L from every interior node, so an
// exhaustive DFS searching for a NAND chain pattern blows up
// combinatorially, while SubGemini's Phase I refutes the pattern from net
// degrees alone.  A chain of chainLen NAND2s can be planted at the
// (m−1, m−1) corner.
func NandMesh(m, chainLen int) *Design {
	d, vdd, gnd := newDesign(fmt.Sprintf("nandmesh%d", m))
	out := make([][]*graph.Net, m)
	for i := range out {
		out[i] = make([]*graph.Net, m)
	}
	netAt := func(i, j int, side string) *graph.Net {
		if i < 0 || j < 0 {
			return d.C.AddNet(fmt.Sprintf("pi_%s_%d_%d", side, i+1, j+1))
		}
		return out[i][j]
	}
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			out[i][j] = d.C.AddNet(fmt.Sprintf("y_%d_%d", i, j))
			d.place(stdcell.NAND2, fmt.Sprintf("g_%d_%d", i, j), map[string]*graph.Net{
				"A": netAt(i-1, j, "n"), "B": netAt(i, j-1, "w"),
				"Y": out[i][j], "VDD": vdd, "GND": gnd,
			})
		}
	}
	cur := out[m-1][m-1]
	for i := 0; i < chainLen; i++ {
		next := d.C.AddNet(fmt.Sprintf("c%d", i))
		d.place(stdcell.NAND2, fmt.Sprintf("cg%d", i), map[string]*graph.Net{
			"A": cur, "B": d.C.AddNet(fmt.Sprintf("cb%d", i)),
			"Y": next, "VDD": vdd, "GND": gnd,
		})
		cur = next
	}
	return d
}

// NandChainPattern builds a pattern of k series NAND2 gates: each stage's
// output drives one input of the next, the other input and the first
// stage's inputs are external, and the k−1 intermediate nets are internal.
func NandChainPattern(k int) *graph.Circuit {
	p := graph.New(fmt.Sprintf("nandchain%d", k))
	p.AddNet("VDD")
	p.AddNet("GND")
	cur := p.AddNet("in")
	ports := []string{"in"}
	for i := 0; i < k; i++ {
		var next *graph.Net
		if i == k-1 {
			next = p.AddNet("out")
			ports = append(ports, "out")
		} else {
			next = p.AddNet(fmt.Sprintf("m%d", i+1))
		}
		side := p.AddNet(fmt.Sprintf("b%d", i))
		ports = append(ports, side.Name)
		stdcell.NAND2.MustInstantiate(p, fmt.Sprintf("s%d", i), map[string]*graph.Net{
			"A": cur, "B": side, "Y": next,
			"VDD": p.NetByName("VDD"), "GND": p.NetByName("GND"),
		})
		cur = next
	}
	for _, port := range ports {
		if err := p.MarkPort(port); err != nil {
			panic(err)
		}
	}
	return p
}

// SwitchGrid builds an m×m pass-transistor switch fabric (an FPGA-style
// routing grid or analog crossbar): one net per grid node, one n-type pass
// transistor per grid edge, each with a private gate control net.  This is
// the kind of structure the paper's introduction says gate-oriented
// extraction heuristics cannot handle, and it is adversarial for
// exhaustive DFS: a source/drain path search branches three ways at every
// interior node, so partial matches multiply as 3^length, while every
// interior node has degree 3–4 and therefore refutes a degree-2 chain
// net immediately under Phase I labeling or degree pruning.  A chain of
// chainLen extra pass transistors can be planted at the (m−1, m−1) corner.
func SwitchGrid(m, chainLen int) *Design {
	d, _, _ := newDesign(fmt.Sprintf("switchgrid%d", m))
	mosCls := []graph.TermClass{graph.ClassDS, graph.ClassGate, graph.ClassDS}
	node := make([][]*graph.Net, m)
	for i := range node {
		node[i] = make([]*graph.Net, m)
		for j := range node[i] {
			node[i][j] = d.C.AddNet(fmt.Sprintf("n_%d_%d", i, j))
		}
	}
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if j+1 < m {
				g := d.C.AddNet(fmt.Sprintf("ch_%d_%d", i, j))
				d.C.MustAddDevice(fmt.Sprintf("mh_%d_%d", i, j), "nmos", mosCls,
					[]*graph.Net{node[i][j], g, node[i][j+1]})
			}
			if i+1 < m {
				g := d.C.AddNet(fmt.Sprintf("cv_%d_%d", i, j))
				d.C.MustAddDevice(fmt.Sprintf("mv_%d_%d", i, j), "nmos", mosCls,
					[]*graph.Net{node[i][j], g, node[i+1][j]})
			}
		}
	}
	cur := node[m-1][m-1]
	for i := 0; i < chainLen; i++ {
		next := d.C.AddNet(fmt.Sprintf("p%d", i))
		g := d.C.AddNet(fmt.Sprintf("cp%d", i))
		d.C.MustAddDevice(fmt.Sprintf("mp%d", i), "nmos", mosCls, []*graph.Net{cur, g, next})
		cur = next
	}
	return d
}

// PassChainPattern builds a pattern of k series pass transistors: a
// source/drain chain whose k−1 intermediate nets are internal and whose
// ends and gate nets are external.
func PassChainPattern(k int) *graph.Circuit {
	p := graph.New(fmt.Sprintf("passchain%d", k))
	mosCls := []graph.TermClass{graph.ClassDS, graph.ClassGate, graph.ClassDS}
	cur := p.AddNet("in")
	ports := []string{"in"}
	for i := 0; i < k; i++ {
		var next *graph.Net
		if i == k-1 {
			next = p.AddNet("out")
			ports = append(ports, "out")
		} else {
			next = p.AddNet(fmt.Sprintf("p%d", i+1))
		}
		g := p.AddNet(fmt.Sprintf("g%d", i))
		ports = append(ports, g.Name)
		p.MustAddDevice(fmt.Sprintf("m%d", i), "nmos", mosCls, []*graph.Net{cur, g, next})
		cur = next
	}
	for _, port := range ports {
		if err := p.MarkPort(port); err != nil {
			panic(err)
		}
	}
	return p
}

// ChainPattern builds a pattern of k series inverters with only the first
// input and last output external; the k−1 intermediate nets are internal.
func ChainPattern(k int) *graph.Circuit {
	p := graph.New(fmt.Sprintf("chain%d", k))
	p.AddNet("VDD")
	p.AddNet("GND")
	in := p.AddNet("in")
	cur := in
	for i := 0; i < k; i++ {
		var next *graph.Net
		if i == k-1 {
			next = p.AddNet("out")
		} else {
			next = p.AddNet(fmt.Sprintf("m%d", i+1))
		}
		stdcell.INV.MustInstantiate(p, fmt.Sprintf("s%d", i), map[string]*graph.Net{
			"A": cur, "Y": next, "VDD": p.NetByName("VDD"), "GND": p.NetByName("GND"),
		})
		cur = next
	}
	for _, port := range []string{"in", "out"} {
		if err := p.MarkPort(port); err != nil {
			panic(err)
		}
	}
	return p
}

// RippleAdder builds a bits-wide ripple-carry adder from mirror full
// adders: FA_i adds a_i, b_i and the previous carry.
func RippleAdder(bits int) *Design {
	d, vdd, gnd := newDesign(fmt.Sprintf("adder%d", bits))
	carry := d.C.AddNet("cin")
	for i := 0; i < bits; i++ {
		next := d.C.AddNet(fmt.Sprintf("c%d", i+1))
		d.place(stdcell.FA, fmt.Sprintf("fa%d", i), map[string]*graph.Net{
			"A":   d.C.AddNet(fmt.Sprintf("a%d", i)),
			"B":   d.C.AddNet(fmt.Sprintf("b%d", i)),
			"CI":  carry,
			"S":   d.C.AddNet(fmt.Sprintf("s%d", i)),
			"CO":  next,
			"VDD": vdd, "GND": gnd,
		})
		carry = next
	}
	return d
}

// ArrayMultiplier builds an n×n array multiplier: n² AND2 partial-product
// gates and n·(n-1) full adders arranged in carry-propagate rows.  Each
// row's carry-in is a primary input so no cell port is tied to a rail
// (tied-off cells are structurally different cells and would perturb the
// instance census).
func ArrayMultiplier(n int) *Design {
	d, vdd, gnd := newDesign(fmt.Sprintf("mult%d", n))
	a := make([]*graph.Net, n)
	b := make([]*graph.Net, n)
	for i := 0; i < n; i++ {
		a[i] = d.C.AddNet(fmt.Sprintf("a%d", i))
		b[i] = d.C.AddNet(fmt.Sprintf("b%d", i))
	}
	pp := make([][]*graph.Net, n)
	for i := 0; i < n; i++ {
		pp[i] = make([]*graph.Net, n)
		for j := 0; j < n; j++ {
			pp[i][j] = d.C.AddNet(fmt.Sprintf("pp_%d_%d", i, j))
			d.place(stdcell.AND2, fmt.Sprintf("and_%d_%d", i, j), map[string]*graph.Net{
				"A": a[i], "B": b[j], "Y": pp[i][j], "VDD": vdd, "GND": gnd,
			})
		}
	}
	// Row 0 sums are the partial products themselves; each later row adds
	// its partial products to the previous row's sums.
	sums := pp[0]
	for i := 1; i < n; i++ {
		carry := d.C.AddNet(fmt.Sprintf("rci%d", i))
		next := make([]*graph.Net, n)
		for j := 0; j < n; j++ {
			next[j] = d.C.AddNet(fmt.Sprintf("s_%d_%d", i, j))
			co := d.C.AddNet(fmt.Sprintf("co_%d_%d", i, j))
			d.place(stdcell.FA, fmt.Sprintf("fa_%d_%d", i, j), map[string]*graph.Net{
				"A": pp[i][j], "B": sums[j], "CI": carry,
				"S": next[j], "CO": co,
				"VDD": vdd, "GND": gnd,
			})
			carry = co
		}
		sums = next
	}
	return d
}

// RippleCounter builds a bits-wide asynchronous (ripple) counter: each
// stage is a DFF whose D input is its inverted output and whose Q clocks
// the next stage.
func RippleCounter(bits int) *Design {
	d, vdd, gnd := newDesign(fmt.Sprintf("counter%d", bits))
	clk := d.C.AddNet("clk")
	for i := 0; i < bits; i++ {
		q := d.C.AddNet(fmt.Sprintf("q%d", i))
		db := d.C.AddNet(fmt.Sprintf("d%d", i))
		d.place(stdcell.INV, fmt.Sprintf("inv%d", i), map[string]*graph.Net{
			"A": q, "Y": db, "VDD": vdd, "GND": gnd,
		})
		d.place(stdcell.DFF, fmt.Sprintf("dff%d", i), map[string]*graph.Net{
			"D": db, "CLK": clk, "Q": q, "VDD": vdd, "GND": gnd,
		})
		clk = q
	}
	return d
}

// ShiftRegister builds a bits-long shift register: a DFF chain on a common
// clock.
func ShiftRegister(bits int) *Design {
	d, vdd, gnd := newDesign(fmt.Sprintf("shiftreg%d", bits))
	clk := d.C.AddNet("clk")
	data := d.C.AddNet("sin")
	for i := 0; i < bits; i++ {
		q := d.C.AddNet(fmt.Sprintf("q%d", i))
		d.place(stdcell.DFF, fmt.Sprintf("dff%d", i), map[string]*graph.Net{
			"D": data, "CLK": clk, "Q": q, "VDD": vdd, "GND": gnd,
		})
		data = q
	}
	return d
}

// ALUDatapath builds an n-bit accumulator datapath: per bit-slice, an
// XOR2/AND2/OR2 logic block, a pair of MUX2s selecting the operation, a
// full adder for the arithmetic path, a DFF accumulator register, and an
// inverter buffering the XOR output.  This is the "datapath" workload
// class of the paper's evaluation era: heterogeneous cells, wide shared
// control nets (opcode and clock fan out to every slice), and a carry
// chain coupling the slices.
func ALUDatapath(bits int) *Design {
	d, vdd, gnd := newDesign(fmt.Sprintf("alu%d", bits))
	clk := d.C.AddNet("clk")
	op0, op1 := d.C.AddNet("op0"), d.C.AddNet("op1")
	carry := d.C.AddNet("cin")
	for i := 0; i < bits; i++ {
		b := d.C.AddNet(fmt.Sprintf("b%d", i))
		acc := d.C.AddNet(fmt.Sprintf("acc%d", i)) // register output, feeds back
		xo := d.C.AddNet(fmt.Sprintf("xo%d", i))
		an := d.C.AddNet(fmt.Sprintf("an%d", i))
		orr := d.C.AddNet(fmt.Sprintf("or%d", i))
		sum := d.C.AddNet(fmt.Sprintf("sum%d", i))
		co := d.C.AddNet(fmt.Sprintf("co%d", i))
		logicSel := d.C.AddNet(fmt.Sprintf("lsel%d", i))
		next := d.C.AddNet(fmt.Sprintf("next%d", i))

		d.place(stdcell.XOR2, fmt.Sprintf("xor%d", i), map[string]*graph.Net{
			"A": acc, "B": b, "Y": xo, "VDD": vdd, "GND": gnd,
		})
		d.place(stdcell.AND2, fmt.Sprintf("and%d", i), map[string]*graph.Net{
			"A": acc, "B": b, "Y": an, "VDD": vdd, "GND": gnd,
		})
		d.place(stdcell.OR2, fmt.Sprintf("or%d", i), map[string]*graph.Net{
			"A": acc, "B": b, "Y": orr, "VDD": vdd, "GND": gnd,
		})
		d.place(stdcell.FA, fmt.Sprintf("fa%d", i), map[string]*graph.Net{
			"A": acc, "B": b, "CI": carry, "S": sum, "CO": co,
			"VDD": vdd, "GND": gnd,
		})
		// Operation select: logic = op0 ? AND : OR; result = op1 ? logic : sum.
		d.place(stdcell.MUX2, fmt.Sprintf("muxl%d", i), map[string]*graph.Net{
			"A": orr, "B": an, "S": op0, "Y": logicSel, "VDD": vdd, "GND": gnd,
		})
		d.place(stdcell.MUX2, fmt.Sprintf("muxo%d", i), map[string]*graph.Net{
			"A": sum, "B": logicSel, "S": op1, "Y": next, "VDD": vdd, "GND": gnd,
		})
		d.place(stdcell.DFF, fmt.Sprintf("reg%d", i), map[string]*graph.Net{
			"D": next, "CLK": clk, "Q": acc, "VDD": vdd, "GND": gnd,
		})
		// Buffer the XOR output so it has a load like the other blocks.
		d.place(stdcell.INV, fmt.Sprintf("xinv%d", i), map[string]*graph.Net{
			"A": xo, "Y": d.C.AddNet(fmt.Sprintf("xob%d", i)), "VDD": vdd, "GND": gnd,
		})
		carry = co
	}
	return d
}

// SRAMArray builds a rows×cols static RAM core: 6T bit cells on shared
// word lines and bit lines, a word-line buffer per row, and two bare
// precharge transistors per column (devices outside any library cell, as a
// realistic netlist would have).
func SRAMArray(rows, cols int) *Design {
	d, vdd, gnd := newDesign(fmt.Sprintf("sram%dx%d", rows, cols))
	pre := d.C.AddNet("preb")
	bl := make([]*graph.Net, cols)
	blb := make([]*graph.Net, cols)
	mosCls := []graph.TermClass{graph.ClassDS, graph.ClassGate, graph.ClassDS}
	for c := 0; c < cols; c++ {
		bl[c] = d.C.AddNet(fmt.Sprintf("bl%d", c))
		blb[c] = d.C.AddNet(fmt.Sprintf("blb%d", c))
		d.C.MustAddDevice(fmt.Sprintf("mpre%d", c), "pmos", mosCls, []*graph.Net{bl[c], pre, vdd})
		d.C.MustAddDevice(fmt.Sprintf("mpreb%d", c), "pmos", mosCls, []*graph.Net{blb[c], pre, vdd})
	}
	for r := 0; r < rows; r++ {
		wl := d.C.AddNet(fmt.Sprintf("wl%d", r))
		d.place(stdcell.BUF, fmt.Sprintf("wldrv%d", r), map[string]*graph.Net{
			"A": d.C.AddNet(fmt.Sprintf("rsel%d", r)), "Y": wl, "VDD": vdd, "GND": gnd,
		})
		for c := 0; c < cols; c++ {
			d.place(stdcell.SRAM6T, fmt.Sprintf("bit_%d_%d", r, c), map[string]*graph.Net{
				"BL": bl[c], "BLB": blb[c], "WL": wl, "VDD": vdd, "GND": gnd,
			})
		}
	}
	return d
}

// Decoder builds a 2^n-output address decoder from input inverters and
// NAND/INV output stages: each output k is the AND (NAND + INV) of the n
// address lines or their complements according to k's bits.  n must be
// between 2 and 4 (NAND2..NAND4 stages).
func Decoder(n int) *Design {
	if n < 2 || n > 4 {
		panic(fmt.Sprintf("gen: Decoder supports 2..4 address bits, got %d", n))
	}
	d, vdd, gnd := newDesign(fmt.Sprintf("decoder%d", n))
	addr := make([]*graph.Net, n)
	addrB := make([]*graph.Net, n)
	for i := 0; i < n; i++ {
		addr[i] = d.C.AddNet(fmt.Sprintf("a%d", i))
		addrB[i] = d.C.AddNet(fmt.Sprintf("ab%d", i))
		d.place(stdcell.INV, fmt.Sprintf("ai%d", i), map[string]*graph.Net{
			"A": addr[i], "Y": addrB[i], "VDD": vdd, "GND": gnd,
		})
	}
	nand := map[int]*stdcell.CellDef{2: stdcell.NAND2, 3: stdcell.NAND3, 4: stdcell.NAND4}[n]
	ports := []string{"A", "B", "C", "D"}[:n]
	for k := 0; k < 1<<n; k++ {
		yb := d.C.AddNet(fmt.Sprintf("yb%d", k))
		y := d.C.AddNet(fmt.Sprintf("y%d", k))
		conns := map[string]*graph.Net{"Y": yb, "VDD": vdd, "GND": gnd}
		for i := 0; i < n; i++ {
			if k&(1<<i) != 0 {
				conns[ports[i]] = addr[i]
			} else {
				conns[ports[i]] = addrB[i]
			}
		}
		d.place(nand, fmt.Sprintf("nd%d", k), conns)
		d.place(stdcell.INV, fmt.Sprintf("oi%d", k), map[string]*graph.Net{
			"A": yb, "Y": y, "VDD": vdd, "GND": gnd,
		})
	}
	return d
}

// RegisterFile builds a words×bits register file: each bit cell is a DFF
// with a write multiplexer (hold Q or take the write bus, selected by the
// word's write line) and a tristate read driver onto the bit's shared read
// line.  The workload has the memory-array shape of the paper's RAM-heavy
// evaluation circuits but is built purely from library cells, so the
// instance census is exact.
func RegisterFile(words, bits int) *Design {
	d, vdd, gnd := newDesign(fmt.Sprintf("regfile%dx%d", words, bits))
	clk := d.C.AddNet("clk")
	wsel := make([]*graph.Net, words)
	rsel := make([]*graph.Net, words)
	for w := 0; w < words; w++ {
		wsel[w] = d.C.AddNet(fmt.Sprintf("wsel%d", w))
		rsel[w] = d.C.AddNet(fmt.Sprintf("rsel%d", w))
	}
	for b := 0; b < bits; b++ {
		wdata := d.C.AddNet(fmt.Sprintf("wdata%d", b))
		rline := d.C.AddNet(fmt.Sprintf("rline%d", b))
		for w := 0; w < words; w++ {
			q := d.C.AddNet(fmt.Sprintf("q_%d_%d", w, b))
			dIn := d.C.AddNet(fmt.Sprintf("d_%d_%d", w, b))
			d.place(stdcell.MUX2, fmt.Sprintf("wm_%d_%d", w, b), map[string]*graph.Net{
				"A": q, "B": wdata, "S": wsel[w], "Y": dIn, "VDD": vdd, "GND": gnd,
			})
			d.place(stdcell.DFF, fmt.Sprintf("ff_%d_%d", w, b), map[string]*graph.Net{
				"D": dIn, "CLK": clk, "Q": q, "VDD": vdd, "GND": gnd,
			})
			d.place(stdcell.TINV, fmt.Sprintf("rd_%d_%d", w, b), map[string]*graph.Net{
				"A": q, "EN": rsel[w], "Y": rline, "VDD": vdd, "GND": gnd,
			})
		}
	}
	return d
}

// randomCellSet is the palette RandomLogic draws from: prime cells only, so
// the expected-instance arithmetic in truth.go stays exact (composite cells
// like BUF or AND2 can arise accidentally from chains of prime gates, which
// would make the census undercount them).
var randomCellSet = []*stdcell.CellDef{
	stdcell.INV, stdcell.NAND2, stdcell.NAND3, stdcell.NAND4,
	stdcell.NOR2, stdcell.NOR3, stdcell.NOR4,
	stdcell.AOI21, stdcell.OAI21, stdcell.AOI22, stdcell.OAI22,
	stdcell.XOR2, stdcell.XNOR2, stdcell.MUX2, stdcell.TINV,
}

// RandomLogic builds a random combinational DAG of gates standard cells:
// every gate draws distinct inputs from the primary inputs and earlier gate
// outputs and drives a fresh output net.  The same seed reproduces the same
// circuit.
func RandomLogic(gates, inputs int, seed int64) *Design {
	if inputs < 4 {
		inputs = 4
	}
	d, vdd, gnd := newDesign(fmt.Sprintf("rand%d", gates))
	rng := rand.New(rand.NewSource(seed))
	pool := make([]*graph.Net, 0, inputs+gates)
	for i := 0; i < inputs; i++ {
		pool = append(pool, d.C.AddNet(fmt.Sprintf("in%d", i)))
	}
	for g := 0; g < gates; g++ {
		cell := randomCellSet[rng.Intn(len(randomCellSet))]
		conns := map[string]*graph.Net{"VDD": vdd, "GND": gnd}
		out := d.C.AddNet(fmt.Sprintf("w%d", g))
		picked := map[int]bool{}
		for _, port := range cell.Ports {
			switch port {
			case "VDD", "GND":
			case "Y":
				conns[port] = out
			default:
				// Distinct random driver for each input port.
				idx := rng.Intn(len(pool))
				for picked[idx] {
					idx = rng.Intn(len(pool))
				}
				picked[idx] = true
				conns[port] = pool[idx]
			}
		}
		d.place(cell, fmt.Sprintf("g%d", g), conns)
		pool = append(pool, out)
	}
	return d
}
