package gen

import (
	"testing"

	"subgemini/internal/gemini"
	"subgemini/internal/stdcell"
)

func TestGeneratorsProduceValidCircuits(t *testing.T) {
	designs := []*Design{
		InverterChain(8),
		ALUDatapath(3),
		RegisterFile(3, 3),
		Decoder(2),
		Decoder(4),
		RippleAdder(4),
		ArrayMultiplier(3),
		RippleCounter(4),
		ShiftRegister(6),
		SRAMArray(3, 5),
		RandomLogic(50, 8, 3),
	}
	for _, d := range designs {
		if err := d.C.Validate(); err != nil {
			t.Errorf("%s: %v", d.C.Name, err)
		}
		if d.C.NetByName("VDD") == nil || d.C.NetByName("GND") == nil {
			t.Errorf("%s: rails missing", d.C.Name)
		}
	}
}

func TestGeneratorSizes(t *testing.T) {
	cases := []struct {
		d       *Design
		devices int
		placed  map[string]int
	}{
		{InverterChain(10), 20, map[string]int{"INV": 10}},
		{RippleAdder(8), 8 * 28, map[string]int{"FA": 8}},
		{ArrayMultiplier(4), 16*6 + 12*28, map[string]int{"AND2": 16, "FA": 12}},
		{RippleCounter(5), 5 * (2 + 18), map[string]int{"INV": 5, "DFF": 5}},
		{ShiftRegister(7), 7 * 18, map[string]int{"DFF": 7}},
		{SRAMArray(4, 8), 4*8*6 + 4*4 + 8*2, map[string]int{"SRAM6T": 32, "BUF": 4}},
		{ALUDatapath(4), 4 * (12 + 6 + 6 + 28 + 6 + 6 + 18 + 2),
			map[string]int{"XOR2": 4, "AND2": 4, "OR2": 4, "FA": 4, "MUX2": 8, "DFF": 4, "INV": 4}},
		{RegisterFile(4, 3), 4 * 3 * (6 + 18 + 6),
			map[string]int{"MUX2": 12, "DFF": 12, "TINV": 12}},
		{Decoder(3), 3*2 + 8*(6+2), map[string]int{"INV": 11, "NAND3": 8}},
	}
	for _, tc := range cases {
		if got := tc.d.C.NumDevices(); got != tc.devices {
			t.Errorf("%s: %d devices, want %d", tc.d.C.Name, got, tc.devices)
		}
		for cell, want := range tc.placed {
			if got := tc.d.Placed[cell]; got != want {
				t.Errorf("%s: placed[%s] = %d, want %d", tc.d.C.Name, cell, got, want)
			}
		}
	}
}

func TestTransistorCount(t *testing.T) {
	d := SRAMArray(2, 2)
	// 4 cells * 6 + 2 BUFs * 4 + 4 precharge pmos = 36, all MOS.
	if got := d.TransistorCount(); got != 36 {
		t.Errorf("TransistorCount = %d, want 36", got)
	}
	if got := d.C.NumDevices(); got != 36 {
		t.Errorf("NumDevices = %d, want 36", got)
	}
}

func TestRandomLogicDeterministic(t *testing.T) {
	a := RandomLogic(30, 6, 42)
	b := RandomLogic(30, 6, 42)
	res, err := gemini.Compare(a.C, b.C, gemini.Options{Globals: []string{"VDD", "GND"}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Isomorphic {
		t.Errorf("same seed produced non-isomorphic circuits: %s", res.Reason)
	}
	c := RandomLogic(30, 6, 43)
	res, err = gemini.Compare(a.C, c.C, gemini.Options{Globals: []string{"VDD", "GND"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Isomorphic {
		t.Error("different seeds produced isomorphic circuits (suspicious)")
	}
	if got := a.C.NumDevices(); got < 30*2 {
		t.Errorf("random logic too small: %d devices", got)
	}
	total := 0
	for _, n := range a.Placed {
		total += n
	}
	if total != 30 {
		t.Errorf("placed %d gates, want 30", total)
	}
}

func TestContainmentBasics(t *testing.T) {
	// Every cell contains itself exactly once.
	for _, c := range stdcell.All() {
		if got := Containment(c, c); got != 1 {
			t.Errorf("Containment(%s, %s) = %d, want 1", c.Name, c.Name, got)
		}
	}
	// Memoization returns the same answer on repeat.
	a := Containment(stdcell.INV, stdcell.DFF)
	b := Containment(stdcell.INV, stdcell.DFF)
	if a != b {
		t.Errorf("memoized containment differs: %d vs %d", a, b)
	}
}

func TestExpected(t *testing.T) {
	d := RippleCounter(3)
	// 3 placed INVs plus 5 contained in each of 3 DFFs.
	if got, want := d.Expected(stdcell.INV), 3+3*5; got != want {
		t.Errorf("Expected(INV) = %d, want %d", got, want)
	}
	if got := d.Expected(stdcell.DFF); got != 3 {
		t.Errorf("Expected(DFF) = %d, want 3", got)
	}
	if got := d.Expected(stdcell.FA); got != 0 {
		t.Errorf("Expected(FA) = %d, want 0", got)
	}
}

func TestDecoderBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Decoder(5) did not panic")
		}
	}()
	Decoder(5)
}

func TestDecoderOutputsDistinct(t *testing.T) {
	d := Decoder(2)
	// Each NAND must see a distinct input combination: nd0 ab0/ab1,
	// nd3 a0/a1.
	nd0 := d.C.DeviceByName("nd0.MP1")
	nd3 := d.C.DeviceByName("nd3.MP1")
	if nd0 == nil || nd3 == nil {
		t.Fatal("decoder gates missing")
	}
	if nd0.Pins[1].Net == nd3.Pins[1].Net {
		t.Error("decoder rows share an address phase")
	}
}
