// Package paperex builds the worked example of the paper's Fig. 1/2 and
// Table 1: the four-transistor pattern around key vertex N4 and the
// seven-transistor main circuit with the decoy candidate N13.  It is a leaf
// package (graph only) so both the matcher's white-box tests and cmd/docgen
// can run the identical circuits — the generated tables in ALGORITHM.md and
// the assertions in internal/core's tests come from the same source.
package paperex

import "subgemini/internal/graph"

// mos3 is the three-terminal MOS pin signature (interchangeable
// drain/source around a gate) used by the paper-example builders.
var mos3 = []graph.TermClass{graph.ClassDS, graph.ClassGate, graph.ClassDS}

// PaperPattern reconstructs the example subcircuit of paper Fig. 1/2 and
// Table 1: two p-devices D1, D2 and two n-devices D3, D4 around the single
// internal net N4 (the eventual key vertex).  All other nets are external
// ports.
//
//	D1 pmos: ds=N1, g=N3, ds=N2        D3 nmos: ds=N2, g=N3, ds=N4
//	D2 pmos: ds=N1, g=N5, ds=N2        D4 nmos: ds=N6, g=N5, ds=N4
//
// Together with PaperMain it is the worked example that ALGORITHM.md's
// generated tables and the core trace tests run on.
func PaperPattern() *graph.Circuit {
	s := graph.New("paperS")
	n := func(name string) *graph.Net { return s.AddNet(name) }
	n1, n2, n3, n4, n5, n6 := n("N1"), n("N2"), n("N3"), n("N4"), n("N5"), n("N6")
	s.MustAddDevice("D1", "pmos", mos3, []*graph.Net{n1, n3, n2})
	s.MustAddDevice("D2", "pmos", mos3, []*graph.Net{n1, n5, n2})
	s.MustAddDevice("D3", "nmos", mos3, []*graph.Net{n2, n3, n4})
	s.MustAddDevice("D4", "nmos", mos3, []*graph.Net{n6, n5, n4})
	for _, port := range []string{"N1", "N2", "N3", "N5", "N6"} {
		if err := s.MarkPort(port); err != nil {
			panic(err)
		}
	}
	return s
}

// PaperMain reconstructs the example main circuit of paper Fig. 1: one true
// instance of the pattern at {D6, D7, D9, D11} plus the decoy devices D5,
// D8, D10, arranged so the net N13 mimics the key vertex's Phase I label
// and lands in the candidate vector alongside the true image N14 (paper
// §III: "the two vertices in G marked A will become the candidate vector").
func PaperMain() *graph.Circuit {
	g := graph.New("paperG")
	n := func(name string) *graph.Net { return g.AddNet(name) }
	n7, n8, n9, n10, n11, n12 := n("N7"), n("N8"), n("N9"), n("N10"), n("N11"), n("N12")
	n13, n14, n15 := n("N13"), n("N14"), n("N15")
	g.MustAddDevice("D5", "pmos", mos3, []*graph.Net{n8, n12, n11})
	g.MustAddDevice("D6", "pmos", mos3, []*graph.Net{n7, n8, n10})
	g.MustAddDevice("D7", "pmos", mos3, []*graph.Net{n7, n9, n10})
	g.MustAddDevice("D8", "nmos", mos3, []*graph.Net{n9, n12, n13})
	g.MustAddDevice("D9", "nmos", mos3, []*graph.Net{n10, n8, n14})
	g.MustAddDevice("D10", "nmos", mos3, []*graph.Net{n13, n12, n10})
	g.MustAddDevice("D11", "nmos", mos3, []*graph.Net{n15, n9, n14})
	return g
}
