package csr

import (
	"fmt"
	"testing"

	"subgemini/internal/graph"
)

// editState tracks the pointer snapshot and per-op dirty marks an edit
// script accumulates, mirroring what internal/delta does for real edits.
type editState struct {
	c        *graph.Circuit
	oldDevs  []*graph.Device
	oldNets  []*graph.Net
	dirtyDev map[*graph.Device]bool
	dirtyNet map[*graph.Net]bool
}

func newEditState(c *graph.Circuit) *editState {
	return &editState{
		c:        c,
		oldDevs:  append([]*graph.Device(nil), c.Devices...),
		oldNets:  append([]*graph.Net(nil), c.Nets...),
		dirtyDev: map[*graph.Device]bool{},
		dirtyNet: map[*graph.Net]bool{},
	}
}

// finish computes the Remap and the new-index dirty sets from the pointer
// snapshot: a vertex still present keeps its (possibly shifted) index, a
// removed one maps to -1.  Dirty marks on removed vertices are dropped.
func (s *editState) finish() (Remap, []int32, []int32) {
	rm := Remap{
		Dev: make([]int32, len(s.oldDevs)),
		Net: make([]int32, len(s.oldNets)),
	}
	for i, d := range s.oldDevs {
		rm.Dev[i] = -1
		if d.Index < len(s.c.Devices) && s.c.Devices[d.Index] == d {
			rm.Dev[i] = int32(d.Index)
		}
	}
	for i, n := range s.oldNets {
		rm.Net[i] = -1
		if n.Index < len(s.c.Nets) && s.c.Nets[n.Index] == n {
			rm.Net[i] = int32(n.Index)
		}
	}
	var dd, dn []int32
	for d := range s.dirtyDev {
		if d.Index < len(s.c.Devices) && s.c.Devices[d.Index] == d {
			dd = append(dd, int32(d.Index))
		}
	}
	for n := range s.dirtyNet {
		if n.Index < len(s.c.Nets) && s.c.Nets[n.Index] == n {
			dn = append(dn, int32(n.Index))
		}
	}
	return rm, dd, dn
}

func sameGraph(t *testing.T, got, want *Graph, what string) {
	t.Helper()
	if got.NumDevs != want.NumDevs || got.NumNets != want.NumNets {
		t.Fatalf("%s: dims (%d,%d), want (%d,%d)", what, got.NumDevs, got.NumNets, want.NumDevs, want.NumNets)
	}
	if len(got.Start) != len(want.Start) || len(got.Adj) != len(want.Adj) || len(got.Mul) != len(want.Mul) {
		t.Fatalf("%s: array lengths differ", what)
	}
	for i := range want.Start {
		if got.Start[i] != want.Start[i] {
			t.Fatalf("%s: Start[%d] = %d, want %d", what, i, got.Start[i], want.Start[i])
		}
	}
	for i := range want.Adj {
		if got.Adj[i] != want.Adj[i] {
			t.Fatalf("%s: Adj[%d] = %d, want %d", what, i, got.Adj[i], want.Adj[i])
		}
		if got.Mul[i] != want.Mul[i] {
			t.Fatalf("%s: Mul[%d] = %#x, want %#x", what, i, got.Mul[i], want.Mul[i])
		}
	}
}

// TestPatchIdentical applies a fixed edit script covering every op kind and
// checks the spliced view is bit-identical to a from-scratch build.
func TestPatchIdentical(t *testing.T) {
	c := chain(80)
	old := New(c)
	s := newEditState(c)

	// Add a device on one fresh and two existing nets.
	fresh := c.AddNet("fresh0")
	d, err := c.AddDevice("mx0", "nmos", mosCls, []*graph.Net{c.Nets[4], fresh, c.Nets[9]})
	if err != nil {
		t.Fatalf("AddDevice: %v", err)
	}
	s.dirtyDev[d] = true
	for _, p := range d.Pins {
		s.dirtyNet[p.Net] = true
	}

	// Remove a device; its nets survive with spliced conns.
	victim := c.Devices[10]
	for _, p := range victim.Pins {
		s.dirtyNet[p.Net] = true
	}
	if err := c.RemoveDevice(victim.Name); err != nil {
		t.Fatalf("RemoveDevice: %v", err)
	}

	// Rewire a pin between two nets.
	rd := c.Devices[30]
	s.dirtyDev[rd] = true
	s.dirtyNet[rd.Pins[1].Net] = true
	s.dirtyNet[c.Nets[2]] = true
	if err := c.RewirePin(rd.Name, 1, c.Nets[2]); err != nil {
		t.Fatalf("RewirePin: %v", err)
	}

	// Rename touches no structure, removing a floating net shifts indices.
	if err := c.RenameNet("n5", "renamed5"); err != nil {
		t.Fatalf("RenameNet: %v", err)
	}
	float := c.AddNet("floating")
	_ = float
	if err := c.RemoveNet("floating"); err != nil {
		t.Fatalf("RemoveNet: %v", err)
	}

	if err := c.Validate(); err != nil {
		t.Fatalf("Validate after edits: %v", err)
	}
	rm, dd, dn := s.finish()
	got, rebuilt := Patch(old, c, rm, dd, dn)
	if rebuilt {
		t.Fatalf("Patch rebuilt despite a small edit (%d+%d dirty of %d)", len(dd), len(dn), c.NumDevices()+c.NumNets())
	}
	sameGraph(t, got, New(c), "patched")
}

// TestPatchRandomScript chains randomized edit rounds, patching from the
// previous patched view each time, and compares every round to New.
func TestPatchRandomScript(t *testing.T) {
	c := chain(120)
	cur := New(c)
	rnd := uint64(99)
	next := func(m int) int {
		rnd = rnd*6364136223846793005 + 1442695040888963407
		return int(rnd>>33) % m
	}
	serial := 0
	for round := 0; round < 20; round++ {
		s := newEditState(c)
		for op := 0; op < 3; op++ {
			switch next(3) {
			case 0:
				n1 := c.Nets[next(len(c.Nets))]
				n2 := c.AddNet(fmt.Sprintf("add%d", serial))
				n3 := c.Nets[next(len(c.Nets))]
				d, err := c.AddDevice(fmt.Sprintf("madd%d", serial), "nmos", mosCls, []*graph.Net{n1, n2, n3})
				serial++
				if err != nil {
					t.Fatalf("round %d: AddDevice: %v", round, err)
				}
				s.dirtyDev[d] = true
				for _, p := range d.Pins {
					s.dirtyNet[p.Net] = true
				}
			case 1:
				if len(c.Devices) < 10 {
					continue
				}
				v := c.Devices[next(len(c.Devices))]
				for _, p := range v.Pins {
					s.dirtyNet[p.Net] = true
				}
				if err := c.RemoveDevice(v.Name); err != nil {
					t.Fatalf("round %d: RemoveDevice: %v", round, err)
				}
			case 2:
				d := c.Devices[next(len(c.Devices))]
				pin := next(len(d.Pins))
				tgt := c.Nets[next(len(c.Nets))]
				s.dirtyDev[d] = true
				s.dirtyNet[d.Pins[pin].Net] = true
				s.dirtyNet[tgt] = true
				if err := c.RewirePin(d.Name, pin, tgt); err != nil {
					t.Fatalf("round %d: RewirePin: %v", round, err)
				}
			}
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("round %d: Validate: %v", round, err)
		}
		rm, dd, dn := s.finish()
		got, _ := Patch(cur, c, rm, dd, dn)
		sameGraph(t, got, New(c), fmt.Sprintf("round %d", round))
		cur = got
	}
}

// TestPatchRebuildThreshold forces the degradation fallback and checks the
// rebuilt flag plus correctness of the full build.
func TestPatchRebuildThreshold(t *testing.T) {
	defer func(f float64) { RebuildFraction = f }(RebuildFraction)
	RebuildFraction = 0.0

	c := chain(40)
	old := New(c)
	s := newEditState(c)
	d := c.Devices[5]
	s.dirtyDev[d] = true
	s.dirtyNet[c.Nets[1]] = true
	s.dirtyNet[d.Pins[0].Net] = true
	if err := c.RewirePin(d.Name, 0, c.Nets[1]); err != nil {
		t.Fatalf("RewirePin: %v", err)
	}
	rm, dd, dn := s.finish()
	got, rebuilt := Patch(old, c, rm, dd, dn)
	if !rebuilt {
		t.Fatalf("Patch did not rebuild with RebuildFraction=0")
	}
	sameGraph(t, got, New(c), "rebuilt")

	// A nil previous view always rebuilds.
	if _, rb := Patch(nil, c, Remap{}, nil, nil); !rb {
		t.Fatalf("Patch(nil, ...) did not report rebuilt")
	}
}
