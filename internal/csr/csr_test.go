package csr

import (
	"fmt"
	"testing"

	"subgemini/internal/graph"
	"subgemini/internal/label"
)

var mosCls = []graph.TermClass{graph.ClassDS, graph.ClassGate, graph.ClassDS}

// chain builds a deterministic pseudo-random transistor mesh exercising
// varied degrees and terminal classes.  (The gen package cannot be used
// here: it depends on internal/core, which imports this package.)
func chain(n int) *graph.Circuit {
	c := graph.New("chain")
	nets := make([]*graph.Net, n+3)
	for i := range nets {
		nets[i] = c.AddNet(fmt.Sprintf("n%d", i))
	}
	rnd := uint64(12345)
	next := func(m int) int {
		rnd = rnd*6364136223846793005 + 1442695040888963407
		return int(rnd>>33) % m
	}
	for i := 0; i < n; i++ {
		typ := "nmos"
		if i%3 == 0 {
			typ = "pmos"
		}
		c.MustAddDevice(fmt.Sprintf("m%d", i), typ, mosCls,
			[]*graph.Net{nets[i], nets[next(len(nets))], nets[i+3]})
	}
	return c
}

// TestRelabelMatchesPointerWalk checks the CSR relabeling kernel against
// the definitional pointer-walking fold through label.Combine.
func TestRelabelMatchesPointerWalk(t *testing.T) {
	c := chain(120)
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	g := New(c)
	sp := label.NewSpace(c)
	if !g.Fits(c) {
		t.Fatalf("Fits = false for the graph's own circuit")
	}
	if g.Size() != sp.Size() {
		t.Fatalf("Size = %d, want %d", g.Size(), sp.Size())
	}
	if g.NumEdges() != 2*c.NumPins() {
		t.Fatalf("NumEdges = %d, want %d", g.NumEdges(), 2*c.NumPins())
	}

	// Arbitrary deterministic labels per vertex.
	lab := make([]label.Value, sp.Size())
	for v := range lab {
		lab[v] = label.DegreeLabel(v + 7)
	}

	for _, dev := range c.Devices {
		v := sp.DevVID(dev)
		want := lab[v]
		for _, pin := range dev.Pins {
			want = label.Combine(want, pin.Class, lab[sp.NetVID(pin.Net)])
		}
		if got := g.Relabel(int32(v), lab); got != want {
			t.Fatalf("device %s: Relabel = %#x, want %#x", dev.Name, got, want)
		}
	}
	for _, n := range c.Nets {
		v := sp.NetVID(n)
		want := lab[v]
		for _, conn := range n.Conns {
			want = label.Combine(want, conn.Dev.Pins[conn.Pin].Class, lab[sp.DevVID(conn.Dev)])
		}
		if got := g.Relabel(int32(v), lab); got != want {
			t.Fatalf("net %s: Relabel = %#x, want %#x", n.Name, got, want)
		}
	}
}

func TestFitsRejectsDifferentCircuit(t *testing.T) {
	a := graph.New("a")
	n := a.AddNet("x")
	a.MustAddDevice("r1", "res", []graph.TermClass{0, 0}, []*graph.Net{n, a.AddNet("y")})
	b := graph.New("b")
	b.AddNet("x")
	g := New(a)
	if g.Fits(b) {
		t.Fatalf("Fits accepted a circuit with different vertex counts")
	}
}

func TestEmptyCircuit(t *testing.T) {
	g := New(graph.New("empty"))
	if g.Size() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty circuit: Size=%d NumEdges=%d", g.Size(), g.NumEdges())
	}
}
