package csr

import (
	"subgemini/internal/graph"
	"subgemini/internal/label"
)

// RebuildFraction is the degradation threshold of Patch: when more than
// this fraction of the new circuit's vertices are dirty, splicing rows one
// by one stops paying for itself and Patch falls back to a full New build.
// Variable so tests and benchmarks can force either path.
var RebuildFraction = 0.25

// Remap describes how the vertices of an edited circuit moved: old index to
// new index for devices and nets separately, with -1 marking a removed
// vertex.  Edits are monotone (adds append, removes compact preserving
// order), so a remap never reorders survivors.
type Remap struct {
	Dev []int32 // old device index -> new device index, -1 = removed
	Net []int32 // old net index -> new net index, -1 = removed
}

// Patch builds the CSR view of the edited circuit c, splicing the adjacency
// rows of unedited vertices from the previous view instead of re-walking
// their pins and rehashing their terminal classes.  dirtyDevs/dirtyNets
// list the new-index devices and nets whose adjacency may differ from the
// old view (including every added vertex); every other surviving vertex
// must have its pin/connection list unchanged up to the index remap.
//
// The result is bit-identical to New(c): a spliced row holds the same
// neighbor indices (remapped) and the same multipliers in the same order,
// because circuit edits preserve the relative order of surviving pins and
// connections.  rebuilt reports whether the degradation threshold forced a
// full New build instead (the caller feeds it into the csr-rebuild metric).
func Patch(old *Graph, c *graph.Circuit, rm Remap, dirtyDevs, dirtyNets []int32) (g *Graph, rebuilt bool) {
	nd, nn := c.NumDevices(), c.NumNets()
	if old == nil || len(rm.Dev) != old.NumDevs || len(rm.Net) != old.NumNets {
		return New(c), true
	}
	if float64(len(dirtyDevs)+len(dirtyNets)) > RebuildFraction*float64(nd+nn) {
		return New(c), true
	}

	dirty := make([]bool, nd+nn)
	for _, v := range dirtyDevs {
		dirty[v] = true
	}
	for _, v := range dirtyNets {
		dirty[nd+int(v)] = true
	}
	// oldRow[v] = old vertex id of clean new vertex v, -1 when the row must
	// be rebuilt from the circuit (dirty or added).
	oldRow := make([]int32, nd+nn)
	for i := range oldRow {
		oldRow[i] = -1
	}
	for ov, nv := range rm.Dev {
		if nv >= 0 && !dirty[nv] {
			oldRow[nv] = int32(ov)
		}
	}
	for ov, nv := range rm.Net {
		if nv >= 0 && !dirty[nd+int(nv)] {
			oldRow[nd+int(nv)] = int32(old.NumDevs + ov)
		}
	}

	size := nd + nn
	g = &Graph{NumDevs: nd, NumNets: nn, Start: make([]int32, size+1)}
	for _, d := range c.Devices {
		g.Start[d.Index+1] = int32(len(d.Pins))
	}
	for _, n := range c.Nets {
		g.Start[nd+n.Index+1] = int32(len(n.Conns))
	}
	for v := 0; v < size; v++ {
		g.Start[v+1] += g.Start[v]
	}
	total := g.Start[size]
	g.Adj = make([]int32, total)
	g.Mul = make([]uint64, total)

	var muls [256]uint64
	mulOf := func(class graph.TermClass) uint64 {
		if muls[class] == 0 {
			muls[class] = label.ClassMul(class)
		}
		return muls[class]
	}

	// Old adjacency values are old vids; translate them to new vids once via
	// a flat table instead of chasing pointers per edge.
	vidMap := make([]int32, old.Size())
	for ov, nv := range rm.Dev {
		vidMap[ov] = nv
	}
	for ov, nv := range rm.Net {
		if nv < 0 {
			vidMap[old.NumDevs+ov] = -1
		} else {
			vidMap[old.NumDevs+ov] = int32(nd) + nv
		}
	}

	for v := 0; v < size; v++ {
		e := g.Start[v]
		if ov := oldRow[v]; ov >= 0 {
			lo, hi := old.Start[ov], old.Start[ov+1]
			copy(g.Mul[e:], old.Mul[lo:hi])
			for k := lo; k < hi; k++ {
				g.Adj[e] = vidMap[old.Adj[k]]
				e++
			}
			continue
		}
		if v < nd {
			for _, pin := range c.Devices[v].Pins {
				g.Adj[e] = int32(nd + pin.Net.Index)
				g.Mul[e] = mulOf(pin.Class)
				e++
			}
		} else {
			for _, conn := range c.Nets[v-nd].Conns {
				g.Adj[e] = int32(conn.Dev.Index)
				g.Mul[e] = mulOf(conn.Dev.Pins[conn.Pin].Class)
				e++
			}
		}
	}
	return g, false
}
