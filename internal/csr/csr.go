// Package csr provides a flat compressed-sparse-row view of a circuit for
// the data-oriented Phase I engine: integer vertex ids, one contiguous
// adjacency array, and the per-edge class multipliers precomputed, so the
// relabeling hot loop touches three flat arrays instead of chasing
// Device/Net/Pin/Conn pointers and rehashing terminal classes.
//
// Vertices use the same dense VID space as label.Space: devices occupy
// [0, NumDevs) and nets occupy [NumDevs, NumDevs+NumNets), each in circuit
// index order, so a label slice indexed by VID works unchanged against both
// representations.  The view is structure-only — it captures connectivity
// and terminal classes, not labels, global marks, or any other mutable
// state — and is immutable once built, so one view may be shared by any
// number of concurrent readers.
package csr

import (
	"subgemini/internal/graph"
	"subgemini/internal/label"
)

// Graph is the CSR view of one circuit.  Edges are stored in both
// directions: a device row lists its pin nets in pin order, and a net row
// lists its connected devices in connection order.  Mul[e] is the
// label.ClassMul of the terminal class the edge passes through; the class
// belongs to the pin, so the multiplier is the same in both directions.
type Graph struct {
	NumDevs int
	NumNets int

	// Start[v]..Start[v+1] index the edge arrays for vertex v.
	Start []int32
	// Adj[e] is the neighbor VID of edge e.
	Adj []int32
	// Mul[e] is the precomputed label.ClassMul for edge e.
	Mul []uint64
}

// New builds the CSR view of c.  Devices and nets must have their Index
// fields dense and in slice order (graph.Circuit.Validate checks this), as
// label.Space assumes the same.
func New(c *graph.Circuit) *Graph {
	nd, nn := c.NumDevices(), c.NumNets()
	size := nd + nn
	g := &Graph{NumDevs: nd, NumNets: nn, Start: make([]int32, size+1)}
	for _, d := range c.Devices {
		g.Start[d.Index+1] = int32(len(d.Pins))
	}
	for _, n := range c.Nets {
		g.Start[nd+n.Index+1] = int32(len(n.Conns))
	}
	for v := 0; v < size; v++ {
		g.Start[v+1] += g.Start[v]
	}
	total := g.Start[size]
	g.Adj = make([]int32, total)
	g.Mul = make([]uint64, total)

	// Terminal classes are tiny (uint8) and few; memoize their multipliers
	// during the build.  ClassMul is forced odd, so 0 can mark "unset".
	var muls [256]uint64
	mulOf := func(class graph.TermClass) uint64 {
		if muls[class] == 0 {
			muls[class] = label.ClassMul(class)
		}
		return muls[class]
	}

	e := int32(0)
	for _, d := range c.Devices {
		for _, pin := range d.Pins {
			g.Adj[e] = int32(nd + pin.Net.Index)
			g.Mul[e] = mulOf(pin.Class)
			e++
		}
	}
	for _, n := range c.Nets {
		for _, conn := range n.Conns {
			g.Adj[e] = int32(conn.Dev.Index)
			g.Mul[e] = mulOf(conn.Dev.Pins[conn.Pin].Class)
			e++
		}
	}
	return g
}

// Size returns the total number of vertices.
func (g *Graph) Size() int { return g.NumDevs + g.NumNets }

// NumEdges returns the number of stored (directed) edges: twice the number
// of device pins.
func (g *Graph) NumEdges() int { return len(g.Adj) }

// Fits reports whether the view's vertex counts match c, the cheap sanity
// check for a caller-supplied prebuilt view.
func (g *Graph) Fits(c *graph.Circuit) bool {
	return g.NumDevs == c.NumDevices() && g.NumNets == c.NumNets()
}

// Relabel returns the Fig. 3 relabeling of vertex v over the label slice
// lab: old(v) + Σ classMul(e)·lab(neighbor(e)).  Addition and
// multiplication wrap mod 2^64 and addition is commutative, so the result
// is independent of edge order and bit-identical to folding the same
// neighbors through label.Combine.
func (g *Graph) Relabel(v int32, lab []label.Value) label.Value {
	acc := lab[v]
	for e := g.Start[v]; e < g.Start[v+1]; e++ {
		acc += label.Value(g.Mul[e] * uint64(lab[g.Adj[e]]))
	}
	return acc
}
