// Package verilog reads and writes a structural Verilog subset, the
// natural interchange format for the gate-level netlists that extraction
// produces and technology mapping consumes.
//
// Supported constructs:
//
//	module NAME (port, ...); ... endmodule
//	input / output / inout / wire declarations (scalar, comma lists)
//	switch-level primitives:  nmos (drain, source, gate);
//	                          pmos (drain, source, gate);
//	cell instances by name:   NAND2 u1 (.A(n1), .B(n2), .Y(n3), ...);
//
// Cell instances resolve their port-to-terminal mapping through the
// built-in standard-cell library when the cell name is known there
// (keeping terminal classes consistent with the matcher); unknown cell
// types are accepted as opaque devices with one terminal class per port,
// which matches how extraction synthesizes replacement devices.
package verilog

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"subgemini/internal/graph"
	"subgemini/internal/stdcell"
)

// Module is a parsed structural module.
type Module struct {
	Name    string
	Ports   []string
	Inputs  map[string]bool
	Outputs map[string]bool
	Circuit *graph.Circuit
}

// mosVerilogClasses maps the Verilog switch-primitive terminal order
// (drain, source, gate) onto the graph terminal classes.
var mosVerilogClasses = []graph.TermClass{graph.ClassDS, graph.ClassDS, graph.ClassGate}

// Parse reads one structural module.  name is used in error messages.
func Parse(r io.Reader, name string) (*Module, error) {
	toks, err := tokenize(r, name)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: name}
	return p.module()
}

// ParseString parses a module held in a string.
func ParseString(src, name string) (*Module, error) {
	return Parse(strings.NewReader(src), name)
}

type token struct {
	text string
	line int
}

// tokenize splits the input into identifiers, punctuation, and keywords,
// stripping // line comments and /* */ block comments.
func tokenize(r io.Reader, src string) ([]token, error) {
	br := bufio.NewReader(r)
	var toks []token
	line := 1
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, token{cur.String(), line})
			cur.Reset()
		}
	}
	inLineComment := false
	inBlockComment := false
	var prev byte
	for {
		b, err := br.ReadByte()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", src, err)
		}
		if b == '\n' {
			inLineComment = false
		}
		switch {
		case inLineComment:
		case inBlockComment:
			if prev == '*' && b == '/' {
				inBlockComment = false
				b = 0 // do not let '/' start a new comment
			}
		case b == '/':
			next, err := br.ReadByte()
			if err == nil {
				switch next {
				case '/':
					flush()
					inLineComment = true
				case '*':
					flush()
					inBlockComment = true
				default:
					return nil, fmt.Errorf("%s:%d: unexpected '/'", src, line)
				}
			}
		case b == ' ' || b == '\t' || b == '\r' || b == '\n':
			flush()
		case strings.IndexByte("(),;.=", b) >= 0:
			flush()
			toks = append(toks, token{string(b), line})
		default:
			cur.WriteByte(b)
		}
		if b == '\n' {
			line++
		}
		prev = b
	}
	if inBlockComment {
		return nil, fmt.Errorf("%s: unterminated block comment", src)
	}
	flush()
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
	src  string
}

func (p *parser) peek() (token, bool) {
	if p.pos < len(p.toks) {
		return p.toks[p.pos], true
	}
	return token{}, false
}

func (p *parser) next() (token, error) {
	if t, ok := p.peek(); ok {
		p.pos++
		return t, nil
	}
	return token{}, fmt.Errorf("%s: unexpected end of input", p.src)
}

func (p *parser) expect(text string) error {
	t, err := p.next()
	if err != nil {
		return err
	}
	if t.text != text {
		return fmt.Errorf("%s:%d: expected %q, got %q", p.src, t.line, text, t.text)
	}
	return nil
}

func (p *parser) ident() (token, error) {
	t, err := p.next()
	if err != nil {
		return t, err
	}
	if strings.ContainsAny(t.text, "(),;.=") || t.text == "" {
		return t, fmt.Errorf("%s:%d: expected identifier, got %q", p.src, t.line, t.text)
	}
	return t, nil
}

func (p *parser) module() (*Module, error) {
	if err := p.expect("module"); err != nil {
		return nil, err
	}
	nameTok, err := p.ident()
	if err != nil {
		return nil, err
	}
	m := &Module{
		Name:    nameTok.text,
		Inputs:  map[string]bool{},
		Outputs: map[string]bool{},
		Circuit: graph.New(nameTok.text),
	}
	// Port list.
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for {
		t, ok := p.peek()
		if !ok {
			return nil, fmt.Errorf("%s: unterminated port list", p.src)
		}
		if t.text == ")" {
			p.pos++
			break
		}
		port, err := p.ident()
		if err != nil {
			return nil, err
		}
		m.Ports = append(m.Ports, port.text)
		if t, ok := p.peek(); ok && t.text == "," {
			p.pos++
		}
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}

	serial := 0
	for {
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		switch t.text {
		case "endmodule":
			return p.finish(m)
		case "input", "output", "inout", "wire":
			names, err := p.nameList()
			if err != nil {
				return nil, err
			}
			for _, n := range names {
				m.Circuit.AddNet(n)
				switch t.text {
				case "input":
					m.Inputs[n] = true
				case "output":
					m.Outputs[n] = true
				case "inout":
					m.Inputs[n] = true
					m.Outputs[n] = true
				}
			}
		case "nmos", "pmos":
			if err := p.switchPrimitive(m, t.text, &serial); err != nil {
				return nil, err
			}
		default:
			if err := p.instance(m, t); err != nil {
				return nil, err
			}
		}
	}
}

// nameList parses "a, b, c ;".
func (p *parser) nameList() ([]string, error) {
	var names []string
	for {
		n, err := p.ident()
		if err != nil {
			return nil, err
		}
		names = append(names, n.text)
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		if t.text == ";" {
			return names, nil
		}
		if t.text != "," {
			return nil, fmt.Errorf("%s:%d: expected ',' or ';', got %q", p.src, t.line, t.text)
		}
	}
}

// switchPrimitive parses "nmos [name] (d, s, g);".
func (p *parser) switchPrimitive(m *Module, typ string, serial *int) error {
	name := fmt.Sprintf("m%d_%s", *serial, typ)
	*serial++
	if t, ok := p.peek(); ok && t.text != "(" {
		n, err := p.ident()
		if err != nil {
			return err
		}
		name = n.text
	}
	if err := p.expect("("); err != nil {
		return err
	}
	var nets []*graph.Net
	for i := 0; i < 3; i++ {
		n, err := p.ident()
		if err != nil {
			return err
		}
		nets = append(nets, m.Circuit.AddNet(n.text))
		if i < 2 {
			if err := p.expect(","); err != nil {
				return err
			}
		}
	}
	if err := p.expect(")"); err != nil {
		return err
	}
	if err := p.expect(";"); err != nil {
		return err
	}
	_, err := m.Circuit.AddDevice(name, typ, mosVerilogClasses, nets)
	return err
}

// instance parses "CELL name (.PORT(net), ...);".
func (p *parser) instance(m *Module, cellTok token) error {
	cellName := cellTok.text
	instTok, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expect("("); err != nil {
		return err
	}
	conns := map[string]*graph.Net{}
	var order []string
	for {
		t, err := p.next()
		if err != nil {
			return err
		}
		if t.text == ")" {
			break
		}
		if t.text == "," {
			continue
		}
		if t.text != "." {
			return fmt.Errorf("%s:%d: expected named connection, got %q (positional connections are not supported)", p.src, t.line, t.text)
		}
		port, err := p.ident()
		if err != nil {
			return err
		}
		if err := p.expect("("); err != nil {
			return err
		}
		net, err := p.ident()
		if err != nil {
			return err
		}
		if err := p.expect(")"); err != nil {
			return err
		}
		if _, dup := conns[port.text]; dup {
			return fmt.Errorf("%s:%d: port %s connected twice", p.src, port.line, port.text)
		}
		conns[port.text] = m.Circuit.AddNet(net.text)
		order = append(order, port.text)
	}
	if err := p.expect(";"); err != nil {
		return err
	}

	// Known library cells get their canonical port order and a single
	// gate-level device (matching what extraction produces); unknown cells
	// are opaque devices in connection order.
	var portNames []string
	if cell := stdcell.Get(cellName); cell != nil {
		for _, port := range cell.Ports {
			if _, ok := conns[port]; !ok {
				return fmt.Errorf("%s:%d: instance %s of %s leaves port %s unconnected",
					p.src, instTok.line, instTok.text, cellName, port)
			}
		}
		if len(conns) != len(cell.Ports) {
			return fmt.Errorf("%s:%d: instance %s connects %d ports; %s has %d",
				p.src, instTok.line, instTok.text, len(conns), cellName, len(cell.Ports))
		}
		portNames = cell.Ports
	} else {
		portNames = order
	}
	classes := make([]graph.TermClass, len(portNames))
	nets := make([]*graph.Net, len(portNames))
	for i, port := range portNames {
		classes[i] = graph.TermClass(i)
		nets[i] = conns[port]
	}
	_, err = m.Circuit.AddDevice(instTok.text, cellName, classes, nets)
	return err
}

// finish marks ports and validates.
func (p *parser) finish(m *Module) (*Module, error) {
	for _, port := range m.Ports {
		if m.Circuit.NetByName(port) == nil {
			m.Circuit.AddNet(port)
		}
		if err := m.Circuit.MarkPort(port); err != nil {
			return nil, err
		}
	}
	if err := m.Circuit.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", p.src, err)
	}
	return m, nil
}

// Write emits a circuit as one structural module.  Nets named in globals
// plus the circuit's port nets form the module port list (globals as
// inout, others as inout too — structural netlists do not track
// direction); remaining nets are declared as wires.  MOS devices become
// switch primitives; every other device type becomes a named-connection
// instance, with port names from the standard-cell library when known and
// p0, p1, ... otherwise.
func Write(w io.Writer, c *graph.Circuit, moduleName string) error {
	bw := bufio.NewWriter(w)
	var ports []string
	seen := map[string]bool{}
	for _, n := range c.Nets {
		if n.Port || n.Global {
			if !seen[n.Name] {
				ports = append(ports, n.Name)
				seen[n.Name] = true
			}
		}
	}
	fmt.Fprintf(bw, "// generated by subgemini from circuit %s\n", c.Name)
	fmt.Fprintf(bw, "module %s (%s);\n", moduleName, strings.Join(ports, ", "))
	for _, p := range ports {
		fmt.Fprintf(bw, "  inout %s;\n", p)
	}
	var wires []string
	for _, n := range c.Nets {
		if !seen[n.Name] {
			wires = append(wires, n.Name)
		}
	}
	sort.Strings(wires)
	for _, n := range wires {
		fmt.Fprintf(bw, "  wire %s;\n", n)
	}
	for _, d := range c.Devices {
		switch d.Type {
		case "nmos", "pmos":
			// Graph order is (ds, gate, ds); Verilog switch order is
			// (drain, source, gate).
			var ds []*graph.Net
			var gate *graph.Net
			for _, pin := range d.Pins {
				if pin.Class == graph.ClassGate {
					gate = pin.Net
				} else if pin.Class == graph.ClassDS {
					ds = append(ds, pin.Net)
				}
			}
			if len(ds) != 2 || gate == nil {
				return fmt.Errorf("verilog: device %s is not a 3-terminal MOS", d.Name)
			}
			fmt.Fprintf(bw, "  %s %s (%s, %s, %s);\n", d.Type, sanitize(d.Name), ds[0].Name, ds[1].Name, gate.Name)
		case "res", "cap", "diode":
			return fmt.Errorf("verilog: passive device %s (%s) has no structural Verilog form", d.Name, d.Type)
		default:
			names := portNamesFor(d)
			fmt.Fprintf(bw, "  %s %s (", d.Type, sanitize(d.Name))
			for i, pin := range d.Pins {
				if i > 0 {
					fmt.Fprint(bw, ", ")
				}
				fmt.Fprintf(bw, ".%s(%s)", names[i], pin.Net.Name)
			}
			fmt.Fprintln(bw, ");")
		}
	}
	fmt.Fprintln(bw, "endmodule")
	return bw.Flush()
}

// portNamesFor resolves a gate device's pin names via the cell library,
// falling back to positional names.
func portNamesFor(d *graph.Device) []string {
	if cell := stdcell.Get(d.Type); cell != nil && len(cell.Ports) == len(d.Pins) {
		return cell.Ports
	}
	names := make([]string, len(d.Pins))
	for i := range names {
		names[i] = fmt.Sprintf("p%d", i)
	}
	return names
}

// sanitize replaces characters that are not legal in simple Verilog
// identifiers.
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '$':
			return r
		default:
			return '_'
		}
	}, name)
}
