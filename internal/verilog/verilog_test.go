package verilog

import (
	"strings"
	"testing"

	"subgemini/internal/extract"
	"subgemini/internal/gemini"
	"subgemini/internal/gen"
	"subgemini/internal/graph"
	"subgemini/internal/stdcell"
)

const gateSrc = `
// y = NAND(a, b); z = NOT(y)
module top (a, b, z, VDD, GND);
  inout a, b, z, VDD, GND;
  wire y;
  NAND2 u1 (.A(a), .B(b), .Y(y), .VDD(VDD), .GND(GND));
  INV u2 (.A(y), .Y(z), .VDD(VDD), .GND(GND));
endmodule
`

func TestParseGateLevel(t *testing.T) {
	m, err := ParseString(gateSrc, "top.v")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "top" || len(m.Ports) != 5 {
		t.Fatalf("module %s with %d ports", m.Name, len(m.Ports))
	}
	if m.Circuit.NumDevices() != 2 {
		t.Fatalf("%d devices, want 2", m.Circuit.NumDevices())
	}
	u1 := m.Circuit.DeviceByName("u1")
	if u1 == nil || u1.Type != "NAND2" || len(u1.Pins) != 5 {
		t.Fatalf("u1 = %+v", u1)
	}
	// Library port order: A, B, Y, VDD, GND.
	if u1.Pins[2].Net.Name != "y" {
		t.Errorf("u1.Y connected to %s, want y", u1.Pins[2].Net.Name)
	}
	if !m.Circuit.NetByName("a").Port {
		t.Error("port a not marked")
	}
	if !m.Inputs["a"] || !m.Outputs["a"] {
		t.Error("inout direction not recorded")
	}
}

func TestParseSwitchLevel(t *testing.T) {
	src := `
module inv (a, y);
  inout a, y;
  wire VDD, GND;
  pmos mp (y, VDD, a);
  nmos (y, GND, a); // anonymous instance
endmodule
`
	m, err := ParseString(src, "inv.v")
	if err != nil {
		t.Fatal(err)
	}
	if m.Circuit.NumDevices() != 2 {
		t.Fatalf("%d devices, want 2", m.Circuit.NumDevices())
	}
	mp := m.Circuit.DeviceByName("mp")
	if mp == nil || mp.Type != "pmos" {
		t.Fatalf("mp = %+v", mp)
	}
	// Drain and source share the ds class; gate is separate.
	if mp.Pins[0].Class != graph.ClassDS || mp.Pins[2].Class != graph.ClassGate {
		t.Error("switch terminal classes wrong")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no module":        "wire x;",
		"unterminated":     "module m (a);\n  wire a;",
		"positional conns": "module m (a);\n  NAND2 u (a, a, a, a, a);\nendmodule",
		"double port":      "module m (a);\n  INV u (.A(a), .A(a), .Y(a), .VDD(a), .GND(a));\nendmodule",
		"missing port":     "module m (a);\n  INV u (.A(a), .Y(a));\nendmodule",
		"bad switch":       "module m (a);\n  nmos (a, a);\nendmodule",
		"block comment":    "module m (a); /* never closed",
	}
	for name, src := range cases {
		if _, err := ParseString(src, "e.v"); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseComments(t *testing.T) {
	src := "// header\nmodule m (a, y); /* mid\nspanning */ inout a, y;\n wire VDD; wire GND;\n INV u (.A(a), .Y(y), .VDD(VDD), .GND(GND)); // trailing\nendmodule\n"
	m, err := ParseString(src, "c.v")
	if err != nil {
		t.Fatal(err)
	}
	if m.Circuit.NumDevices() != 1 {
		t.Errorf("%d devices, want 1", m.Circuit.NumDevices())
	}
}

func TestUnknownCellOpaque(t *testing.T) {
	src := "module m (a, b);\n inout a, b;\n MYSTERY u (.P(a), .Q(b));\nendmodule\n"
	m, err := ParseString(src, "u.v")
	if err != nil {
		t.Fatal(err)
	}
	d := m.Circuit.DeviceByName("u")
	if d == nil || d.Type != "MYSTERY" || len(d.Pins) != 2 {
		t.Fatalf("opaque device wrong: %+v", d)
	}
	if d.Pins[0].Class == d.Pins[1].Class {
		t.Error("opaque device ports must have distinct classes")
	}
}

// TestWriteReadRoundTrip: extract a counter to gates, emit Verilog, parse
// it back, and verify isomorphism with the Gemini checker.
func TestWriteReadRoundTrip(t *testing.T) {
	d := gen.RippleCounter(3)
	if _, err := extract.Cells(d.C, []*stdcell.CellDef{stdcell.DFF, stdcell.INV},
		extract.Options{Globals: []string{"VDD", "GND"}}); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := Write(&buf, d.C, "counter3"); err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", buf.String())
	m, err := ParseString(buf.String(), "counter3.v")
	if err != nil {
		t.Fatal(err)
	}
	res, err := gemini.Compare(d.C, m.Circuit, gemini.Options{Globals: []string{"VDD", "GND"}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Isomorphic {
		t.Errorf("round trip not isomorphic: %s", res.Reason)
	}
}

// TestWriteSwitchLevelRoundTrip: a transistor-level circuit round-trips
// through switch primitives.
func TestWriteSwitchLevelRoundTrip(t *testing.T) {
	d := gen.InverterChain(4)
	d.C.MarkGlobal("VDD")
	d.C.MarkGlobal("GND")
	var buf strings.Builder
	if err := Write(&buf, d.C, "chain4"); err != nil {
		t.Fatal(err)
	}
	m, err := ParseString(buf.String(), "chain4.v")
	if err != nil {
		t.Fatal(err)
	}
	m.Circuit.MarkGlobal("VDD")
	m.Circuit.MarkGlobal("GND")
	res, err := gemini.Compare(d.C, m.Circuit, gemini.Options{Globals: []string{"VDD", "GND"}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Isomorphic {
		t.Errorf("switch-level round trip not isomorphic: %s", res.Reason)
	}
}

func TestWriteRejectsPassives(t *testing.T) {
	c := graph.New("rc")
	c.MustAddDevice("r1", "res", []graph.TermClass{0, 0}, []*graph.Net{c.AddNet("a"), c.AddNet("b")})
	var buf strings.Builder
	if err := Write(&buf, c, "rc"); err == nil {
		t.Error("passive device accepted")
	}
}

func TestSanitize(t *testing.T) {
	for in, want := range map[string]string{
		"u1_NAND2":  "u1_NAND2",
		"fa0.MP1":   "fa0_MP1",
		"a/b/c":     "a_b_c",
		"ok$name_9": "ok$name_9",
	} {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
