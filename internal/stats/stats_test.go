package stats

import (
	"strings"
	"testing"
	"time"
)

func TestTotal(t *testing.T) {
	r := Report{Phase1Duration: 3 * time.Millisecond, Phase2Duration: 5 * time.Millisecond}
	if got := r.Total(); got != 8*time.Millisecond {
		t.Errorf("Total = %v, want 8ms", got)
	}
}

func TestString(t *testing.T) {
	r := Report{
		Instances: 7, MatchedDevices: 28, CVSize: 9, KeyVertex: "N4",
		Phase1Passes: 3, Phase2Passes: 21, Guesses: 2, Backtracks: 1,
		Phase1Duration: time.Millisecond, Phase2Duration: 2 * time.Millisecond,
	}
	s := r.String()
	for _, want := range []string{
		"instances=7", "matchedDevs=28", "cv=9", "key=N4",
		"p1passes=3", "p2passes=21", "guesses=2", "backtracks=1",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
