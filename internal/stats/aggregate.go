package stats

import (
	"sort"
	"sync"
)

// Aggregate accumulates Reports across many matching runs.  It is safe for
// concurrent use: the serving daemon feeds it from every request handler,
// and the benchmark harness uses it to total a table.
//
// Counters and durations are summed; the per-run identification fields
// (KeyVertex, KeyIsDevice, Phase1Workers) do not aggregate and stay zero,
// and EarlyAbort becomes a count in Snapshot.EarlyAborts.
//
// Reports added with AddPattern additionally keep per-pattern totals, so
// merged streams — a library sweep interleaving reports from many patterns
// — do not lose attribution: Snapshot still answers "how much work in
// total", Patterns answers "which pattern cost what".
type Aggregate struct {
	mu          sync.Mutex
	runs        int
	earlyAborts int
	sum         Report
	byPattern   map[string]*patternTotals
}

type patternTotals struct {
	runs        int
	earlyAborts int
	sum         Report
}

func (t *patternTotals) add(r *Report) {
	t.runs++
	if r.EarlyAbort {
		t.earlyAborts++
	}
	t.sum.Phase1Passes += r.Phase1Passes
	t.sum.Phase1Pruned += r.Phase1Pruned
	t.sum.Phase1Duration += r.Phase1Duration
	t.sum.CVSize += r.CVSize
	t.sum.Candidates += r.Candidates
	t.sum.CandidatesMatched += r.CandidatesMatched
	t.sum.Phase2Passes += r.Phase2Passes
	t.sum.Guesses += r.Guesses
	t.sum.Backtracks += r.Backtracks
	t.sum.VerifyCalls += r.VerifyCalls
	t.sum.Phase2Duration += r.Phase2Duration
	t.sum.Instances += r.Instances
	t.sum.MatchedDevices += r.MatchedDevices
	t.sum.RegionBallSum += r.RegionBallSum
	if r.RegionMaxSize > t.sum.RegionMaxSize {
		t.sum.RegionMaxSize = r.RegionMaxSize
	}
}

// Add folds one run's report into the totals, without pattern attribution.
func (a *Aggregate) Add(r *Report) { a.AddPattern("", r) }

// AddPattern folds one run's report into the totals and, when pattern is
// non-empty, into that pattern's own totals.
func (a *Aggregate) AddPattern(pattern string, r *Report) {
	if r == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.runs++
	if r.EarlyAbort {
		a.earlyAborts++
	}
	a.sum.Phase1Passes += r.Phase1Passes
	a.sum.Phase1Pruned += r.Phase1Pruned
	a.sum.Phase1Duration += r.Phase1Duration
	a.sum.CVSize += r.CVSize
	a.sum.Candidates += r.Candidates
	a.sum.CandidatesMatched += r.CandidatesMatched
	a.sum.Phase2Passes += r.Phase2Passes
	a.sum.Guesses += r.Guesses
	a.sum.Backtracks += r.Backtracks
	a.sum.VerifyCalls += r.VerifyCalls
	a.sum.Phase2Duration += r.Phase2Duration
	a.sum.Instances += r.Instances
	a.sum.MatchedDevices += r.MatchedDevices
	a.sum.RegionBallSum += r.RegionBallSum
	if r.RegionMaxSize > a.sum.RegionMaxSize {
		a.sum.RegionMaxSize = r.RegionMaxSize
	}
	if pattern == "" {
		return
	}
	if a.byPattern == nil {
		a.byPattern = make(map[string]*patternTotals)
	}
	t := a.byPattern[pattern]
	if t == nil {
		t = &patternTotals{}
		a.byPattern[pattern] = t
	}
	t.add(r)
}

// Snapshot is a point-in-time copy of an Aggregate.
type Snapshot struct {
	// Runs is the number of reports folded in.
	Runs int
	// EarlyAborts counts runs whose Phase I proved no instance can exist.
	EarlyAborts int
	// Sum holds the summed counters and durations (identification fields
	// zero).
	Sum Report
}

// Snapshot returns a consistent copy of the totals so far.
func (a *Aggregate) Snapshot() Snapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Snapshot{Runs: a.runs, EarlyAborts: a.earlyAborts, Sum: a.sum}
}

// PatternSnapshot is one pattern's share of an Aggregate.
type PatternSnapshot struct {
	Pattern     string
	Runs        int
	EarlyAborts int
	Sum         Report
}

// Patterns returns per-pattern totals sorted by pattern name.  Only
// reports folded in through AddPattern with a non-empty name appear; their
// work is also included in Snapshot's grand totals.
func (a *Aggregate) Patterns() []PatternSnapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]PatternSnapshot, 0, len(a.byPattern))
	for name, t := range a.byPattern {
		out = append(out, PatternSnapshot{Pattern: name, Runs: t.runs, EarlyAborts: t.earlyAborts, Sum: t.sum})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pattern < out[j].Pattern })
	return out
}

// Reset zeroes the aggregate, including per-pattern totals.
func (a *Aggregate) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.runs, a.earlyAborts, a.sum = 0, 0, Report{}
	a.byPattern = nil
}
