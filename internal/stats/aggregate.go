package stats

import "sync"

// Aggregate accumulates Reports across many matching runs.  It is safe for
// concurrent use: the serving daemon feeds it from every request handler,
// and the benchmark harness uses it to total a table.
//
// Counters and durations are summed; the per-run identification fields
// (KeyVertex, KeyIsDevice, Phase1Workers) do not aggregate and stay zero,
// and EarlyAbort becomes a count in Snapshot.EarlyAborts.
type Aggregate struct {
	mu          sync.Mutex
	runs        int
	earlyAborts int
	sum         Report
}

// Add folds one run's report into the aggregate.
func (a *Aggregate) Add(r *Report) {
	if r == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.runs++
	if r.EarlyAbort {
		a.earlyAborts++
	}
	a.sum.Phase1Passes += r.Phase1Passes
	a.sum.Phase1Pruned += r.Phase1Pruned
	a.sum.Phase1Duration += r.Phase1Duration
	a.sum.CVSize += r.CVSize
	a.sum.Candidates += r.Candidates
	a.sum.CandidatesMatched += r.CandidatesMatched
	a.sum.Phase2Passes += r.Phase2Passes
	a.sum.Guesses += r.Guesses
	a.sum.Backtracks += r.Backtracks
	a.sum.VerifyCalls += r.VerifyCalls
	a.sum.Phase2Duration += r.Phase2Duration
	a.sum.Instances += r.Instances
	a.sum.MatchedDevices += r.MatchedDevices
}

// Snapshot is a point-in-time copy of an Aggregate.
type Snapshot struct {
	// Runs is the number of reports folded in.
	Runs int
	// EarlyAborts counts runs whose Phase I proved no instance can exist.
	EarlyAborts int
	// Sum holds the summed counters and durations (identification fields
	// zero).
	Sum Report
}

// Snapshot returns a consistent copy of the totals so far.
func (a *Aggregate) Snapshot() Snapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Snapshot{Runs: a.runs, EarlyAborts: a.earlyAborts, Sum: a.sum}
}

// Reset zeroes the aggregate.
func (a *Aggregate) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.runs, a.earlyAborts, a.sum = 0, 0, Report{}
}
