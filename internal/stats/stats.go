// Package stats collects the instrumentation counters and timings that the
// experiment harness reports: Phase I pass counts and candidate-vector
// sizes, Phase II pass counts, guesses, and backtracks, plus wall-clock
// durations.  The counters correspond to the quantities the paper discusses
// when arguing that SubGemini runs in time roughly linear in the total
// number of devices inside the matched subcircuits.
//
// A Report summarizes one run; an Aggregate folds many Reports together
// for long-lived consumers (the subgeminid /metrics endpoint, the benchtab
// tables).  For per-event rather than per-run visibility, see the
// internal/trace package.
package stats

import (
	"fmt"
	"time"
)

// Report accumulates the measurements of one matching run.
type Report struct {
	// Phase I.
	Phase1Passes   int           // full net+device relabeling rounds
	Phase1Pruned   int           // main-graph vertices pruned by consistency checks
	Phase1Workers  int           // goroutines used for main-graph relabeling passes
	Phase1Duration time.Duration // wall-clock spent in Phase I
	CVSize         int           // size of the candidate vector
	KeyVertex      string        // name of the chosen key vertex
	KeyIsDevice    bool          // whether the key vertex is a device
	EarlyAbort     bool          // Phase I proved no instance can exist

	// Phase II.
	Candidates        int           // candidate vertices examined
	CandidatesMatched int           // candidates whose verification produced an instance (pre-dedup)
	Phase2Passes      int           // relabeling passes across all candidates
	Guesses           int           // ambiguity resolutions attempted
	Backtracks        int           // guesses that failed and were undone
	VerifyCalls       int           // full mapping verifications performed
	Phase2Duration    time.Duration // wall-clock spent in Phase II

	// Region-localized Phase II engine (zero when the whole-graph engine
	// ran).  RegionBallSum accumulates the extracted ball sizes across all
	// candidates, so RegionBallSum/Candidates approximates the average
	// per-candidate working set; RegionMaxSize is the largest single ball.
	RegionRadius  int // pattern eccentricity from the key vertex
	RegionMaxSize int // largest candidate ball extracted
	RegionBallSum int // total ball vertices across all candidates

	// Incremental matching (zero/empty for plain Find runs).
	// IncrementalMode records which path FindIncremental took: "replay"
	// (region-scoped Phase I + cached Phase II outcomes), "full" (a capture
	// run over the whole graph), or "legacy" (Options.LegacyIncremental
	// forced the oracle).  Replayed counts candidates whose outcome was
	// replayed from the previous state; Recomputed counts candidates
	// verified afresh; DirtyVertices is the size of the dirty set the run
	// started from.
	IncrementalMode string
	Replayed        int
	Recomputed      int
	DirtyVertices   int

	// Outcome.
	Instances      int // instances found
	MatchedDevices int // total devices inside matched instances

	// CancelledAt records where Options.Cancel cut the run short: "phase1"
	// (during candidate generation) or "phase2" (during candidate
	// verification).  Empty for runs that completed.  A cancelled run's
	// other counters cover the work done up to the cut.
	CancelledAt string
}

// Total returns the combined Phase I + Phase II duration.
func (r *Report) Total() time.Duration { return r.Phase1Duration + r.Phase2Duration }

// RegionAvgSize returns the mean candidate ball size of the run, or zero
// when the region engine did not run.
func (r *Report) RegionAvgSize() float64 {
	if r.RegionBallSum == 0 || r.Candidates == 0 {
		return 0
	}
	return float64(r.RegionBallSum) / float64(r.Candidates)
}

// String formats the report for logs and the benchtab tool.
func (r *Report) String() string {
	s := fmt.Sprintf(
		"instances=%d matchedDevs=%d cv=%d key=%s p1passes=%d p2passes=%d guesses=%d backtracks=%d t1=%v t2=%v",
		r.Instances, r.MatchedDevices, r.CVSize, r.KeyVertex,
		r.Phase1Passes, r.Phase2Passes, r.Guesses, r.Backtracks,
		r.Phase1Duration.Round(time.Microsecond), r.Phase2Duration.Round(time.Microsecond))
	if r.RegionBallSum > 0 {
		s += fmt.Sprintf(" regionR=%d regionAvg=%.0f regionMax=%d",
			r.RegionRadius, r.RegionAvgSize(), r.RegionMaxSize)
	}
	if r.IncrementalMode != "" {
		s += fmt.Sprintf(" inc=%s replayed=%d recomputed=%d dirty=%d",
			r.IncrementalMode, r.Replayed, r.Recomputed, r.DirtyVertices)
	}
	if r.CancelledAt != "" {
		s += " cancelled=" + r.CancelledAt
	}
	return s
}
