package stats

import (
	"sync"
	"testing"
	"time"
)

func TestAggregateSums(t *testing.T) {
	var a Aggregate
	a.Add(&Report{
		Phase1Passes: 3, Phase1Duration: 2 * time.Millisecond, CVSize: 5,
		Candidates: 5, Phase2Passes: 7, Guesses: 2, Backtracks: 1,
		VerifyCalls: 4, Phase2Duration: 3 * time.Millisecond,
		Instances: 4, MatchedDevices: 16,
		KeyVertex: "n1", EarlyAbort: false,
	})
	a.Add(&Report{
		Phase1Passes: 1, Phase1Duration: 1 * time.Millisecond, CVSize: 0,
		EarlyAbort: true,
	})
	s := a.Snapshot()
	if s.Runs != 2 {
		t.Errorf("Runs = %d, want 2", s.Runs)
	}
	if s.EarlyAborts != 1 {
		t.Errorf("EarlyAborts = %d, want 1", s.EarlyAborts)
	}
	if s.Sum.Phase1Passes != 4 || s.Sum.Phase2Passes != 7 || s.Sum.Guesses != 2 ||
		s.Sum.Backtracks != 1 || s.Sum.VerifyCalls != 4 || s.Sum.Candidates != 5 ||
		s.Sum.CVSize != 5 || s.Sum.Instances != 4 || s.Sum.MatchedDevices != 16 {
		t.Errorf("bad counter sums: %+v", s.Sum)
	}
	if s.Sum.Phase1Duration != 3*time.Millisecond || s.Sum.Phase2Duration != 3*time.Millisecond {
		t.Errorf("bad duration sums: t1=%v t2=%v", s.Sum.Phase1Duration, s.Sum.Phase2Duration)
	}
	if s.Sum.Total() != 6*time.Millisecond {
		t.Errorf("Total = %v, want 6ms", s.Sum.Total())
	}
	// Identification fields do not aggregate.
	if s.Sum.KeyVertex != "" || s.Sum.KeyIsDevice || s.Sum.EarlyAbort {
		t.Errorf("identification fields leaked into the sum: %+v", s.Sum)
	}
}

func TestAggregateNilAndReset(t *testing.T) {
	var a Aggregate
	a.Add(nil)
	if s := a.Snapshot(); s.Runs != 0 {
		t.Errorf("nil Add counted as a run: %+v", s)
	}
	a.Add(&Report{Instances: 1})
	a.Reset()
	if s := a.Snapshot(); s.Runs != 0 || s.Sum.Instances != 0 {
		t.Errorf("Reset left state behind: %+v", s)
	}
}

// TestAggregatePatternDimension: AddPattern keeps per-pattern attribution
// while still feeding the grand totals, so merged report streams (library
// sweeps) remain attributable.
func TestAggregatePatternDimension(t *testing.T) {
	var a Aggregate
	a.AddPattern("NAND2", &Report{Instances: 3, Candidates: 5})
	a.AddPattern("NAND2", &Report{Instances: 1, Candidates: 2, EarlyAbort: true})
	a.AddPattern("INV", &Report{Instances: 7, Candidates: 9})
	a.Add(&Report{Instances: 100}) // anonymous: totals only

	s := a.Snapshot()
	if s.Runs != 4 || s.Sum.Instances != 111 || s.Sum.Candidates != 16 {
		t.Errorf("grand totals wrong: %+v", s)
	}
	ps := a.Patterns()
	if len(ps) != 2 || ps[0].Pattern != "INV" || ps[1].Pattern != "NAND2" {
		t.Fatalf("Patterns() = %+v, want INV then NAND2", ps)
	}
	if ps[0].Runs != 1 || ps[0].Sum.Instances != 7 {
		t.Errorf("INV totals wrong: %+v", ps[0])
	}
	if ps[1].Runs != 2 || ps[1].Sum.Instances != 4 || ps[1].EarlyAborts != 1 {
		t.Errorf("NAND2 totals wrong: %+v", ps[1])
	}

	a.Reset()
	if len(a.Patterns()) != 0 {
		t.Error("Reset left per-pattern totals behind")
	}
}

// TestAggregateConcurrent exercises the lock under the race detector.
func TestAggregateConcurrent(t *testing.T) {
	var a Aggregate
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				a.Add(&Report{Instances: 1, MatchedDevices: 2})
				_ = a.Snapshot()
			}
		}()
	}
	wg.Wait()
	s := a.Snapshot()
	if s.Runs != 800 || s.Sum.Instances != 800 || s.Sum.MatchedDevices != 1600 {
		t.Errorf("concurrent totals wrong: %+v", s)
	}
}
