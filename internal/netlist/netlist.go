// Package netlist reads and writes circuits in a SPICE-like netlist format
// and flattens hierarchical descriptions into the flat circuit graphs the
// matcher operates on.
//
// Supported syntax (a pragmatic SPICE subset):
//
//   - comment                     full-line comment ('*' or ';')
//     .GLOBAL VDD GND               declare special-signal nets
//     .SUBCKT NAME P1 P2 ...        begin a subcircuit definition
//     .ENDS [NAME]                  end a subcircuit definition
//     Mname D G S [B] model         MOS transistor (3- or 4-terminal)
//     Rname A B [value]             resistor
//     Cname A B [value]             capacitor
//     Dname A C [model]             diode
//     Xname n1 n2 ... SUBNAME       subcircuit instance (ports positional)
//   - ...                         continuation of the previous card
//
// Keywords and element letters are case-insensitive; net, device, and
// subcircuit names are case-sensitive.  MOS model names containing "p"
// ("pmos", "pfet", "p") map to device type pmos, otherwise nmos; other
// element values are accepted and ignored (the graph model is unweighted).
package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Card is one parsed element or instance line.
type Card struct {
	// Line is the 1-based source line for diagnostics.
	Line int
	// Kind is the element letter, upper-cased: 'M', 'R', 'C', 'D', or 'X'.
	Kind byte
	// Name is the full element name, e.g. "M1" or "Xadd0".
	Name string
	// Nets lists the positional net connections.
	Nets []string
	// Ref is the model (for 'M'/'D') or subcircuit name (for 'X'); empty
	// when the card had no trailing name.
	Ref string
}

// Subckt is a parsed .SUBCKT definition.
type Subckt struct {
	Name  string
	Ports []string
	Cards []Card
}

// File is a parsed netlist: subcircuit definitions, top-level cards, and
// global net declarations.
type File struct {
	Subckts map[string]*Subckt
	Top     []Card
	Globals []string
}

// Parse reads a netlist.  name is used in error messages.
func Parse(r io.Reader, name string) (*File, error) {
	f := &File{Subckts: make(map[string]*Subckt)}
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	var cur *Subckt
	var lines []string // logical lines after continuation joining
	var lineNos []int
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		raw := scanner.Text()
		if i := strings.IndexByte(raw, ';'); i >= 0 {
			raw = raw[:i]
		}
		line := strings.TrimSpace(raw)
		if line == "" || line[0] == '*' {
			continue
		}
		if line[0] == '+' {
			if len(lines) == 0 {
				return nil, fmt.Errorf("%s:%d: continuation with no preceding card", name, lineNo)
			}
			lines[len(lines)-1] += " " + strings.TrimSpace(line[1:])
			continue
		}
		lines = append(lines, line)
		lineNos = append(lineNos, lineNo)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}

	for i, line := range lines {
		ln := lineNos[i]
		fields := strings.Fields(line)
		head := strings.ToUpper(fields[0])
		switch {
		case head == ".GLOBAL":
			f.Globals = append(f.Globals, fields[1:]...)
		case head == ".SUBCKT":
			if cur != nil {
				return nil, fmt.Errorf("%s:%d: nested .SUBCKT", name, ln)
			}
			if len(fields) < 2 {
				return nil, fmt.Errorf("%s:%d: .SUBCKT needs a name", name, ln)
			}
			if _, dup := f.Subckts[fields[1]]; dup {
				return nil, fmt.Errorf("%s:%d: duplicate .SUBCKT %s", name, ln, fields[1])
			}
			cur = &Subckt{Name: fields[1], Ports: fields[2:]}
		case head == ".ENDS":
			if cur == nil {
				return nil, fmt.Errorf("%s:%d: .ENDS outside .SUBCKT", name, ln)
			}
			if len(fields) > 1 && fields[1] != cur.Name {
				return nil, fmt.Errorf("%s:%d: .ENDS %s does not close .SUBCKT %s", name, ln, fields[1], cur.Name)
			}
			f.Subckts[cur.Name] = cur
			cur = nil
		case head == ".END":
			// Accepted and ignored.
		case head[0] == '.':
			return nil, fmt.Errorf("%s:%d: unsupported directive %s", name, ln, fields[0])
		default:
			card, err := parseCard(fields, ln, name)
			if err != nil {
				return nil, err
			}
			if cur != nil {
				cur.Cards = append(cur.Cards, card)
			} else {
				f.Top = append(f.Top, card)
			}
		}
	}
	if cur != nil {
		return nil, fmt.Errorf("%s: .SUBCKT %s not closed by .ENDS", name, cur.Name)
	}
	return f, nil
}

// ParseString parses a netlist held in a string.
func ParseString(src, name string) (*File, error) {
	return Parse(strings.NewReader(src), name)
}

func parseCard(fields []string, ln int, src string) (Card, error) {
	kind := upperByte(fields[0][0])
	c := Card{Line: ln, Kind: kind, Name: fields[0]}
	args := fields[1:]
	switch kind {
	case 'M':
		// Mname D G S [B] model — the model is mandatory so we can tell the
		// 3- and 4-terminal forms apart.
		switch len(args) {
		case 4:
			c.Nets, c.Ref = args[:3], args[3]
		case 5:
			c.Nets, c.Ref = args[:4], args[4]
		default:
			return c, fmt.Errorf("%s:%d: %s: MOS card needs 3 or 4 nets plus a model", src, ln, fields[0])
		}
	case 'R', 'C':
		if len(args) < 2 || len(args) > 3 {
			return c, fmt.Errorf("%s:%d: %s: needs 2 nets and an optional value", src, ln, fields[0])
		}
		c.Nets = args[:2]
	case 'D':
		if len(args) < 2 || len(args) > 3 {
			return c, fmt.Errorf("%s:%d: %s: needs 2 nets and an optional model", src, ln, fields[0])
		}
		c.Nets = args[:2]
		if len(args) == 3 {
			c.Ref = args[2]
		}
	case 'X':
		if len(args) < 2 {
			return c, fmt.Errorf("%s:%d: %s: instance needs nets and a subcircuit name", src, ln, fields[0])
		}
		c.Nets, c.Ref = args[:len(args)-1], args[len(args)-1]
	default:
		return c, fmt.Errorf("%s:%d: unsupported element %q", src, ln, fields[0])
	}
	return c, nil
}

func upperByte(b byte) byte {
	if 'a' <= b && b <= 'z' {
		return b - 'a' + 'A'
	}
	return b
}

// MOSType maps a SPICE MOS model name to the graph device type: models
// whose lower-cased name starts with 'p' become "pmos", everything else
// "nmos".
func MOSType(model string) string {
	if m := strings.ToLower(model); strings.HasPrefix(m, "p") {
		return "pmos"
	}
	return "nmos"
}
