package netlist_test

import (
	"strings"
	"testing"

	"subgemini/internal/gemini"
	"subgemini/internal/netlist"
)

// TestWriteCircuitRoundTrip writes a flattened circuit back out, reparses
// it, and proves the result isomorphic to the original with the Gemini
// checker (names may gain element-letter prefixes; structure must not
// change).
const nandSrcExt = `
* two-input NAND and an inverter on its output
.GLOBAL VDD GND
.SUBCKT NAND2 A B Y
MP1 Y A VDD pmos
MP2 Y B VDD pmos
MN1 Y A n1 nmos
MN2 n1 B GND nmos
.ENDS NAND2
.SUBCKT INV A Y
MP Y A VDD pmos
MN Y A GND nmos
.ENDS
Xg1 a b w NAND2
Xg2 w y INV
.END
`

func TestWriteCircuitRoundTrip(t *testing.T) {
	f, err := netlist.ParseString(nandSrcExt, "nand.sp")
	if err != nil {
		t.Fatal(err)
	}
	orig, err := f.MainCircuit("top")
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := netlist.WriteCircuit(&buf, orig); err != nil {
		t.Fatal(err)
	}
	t.Logf("emitted:\n%s", buf.String())
	f2, err := netlist.ParseString(buf.String(), "roundtrip.sp")
	if err != nil {
		t.Fatalf("reparse failed: %v", err)
	}
	back, err := f2.MainCircuit("top2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := gemini.Compare(orig, back, gemini.Options{Globals: []string{"VDD", "GND"}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Isomorphic {
		t.Errorf("round-tripped circuit not isomorphic: %s", res.Reason)
	}
}

func TestWriteSubcktRoundTrip(t *testing.T) {
	f, err := netlist.ParseString(nandSrcExt, "nand.sp")
	if err != nil {
		t.Fatal(err)
	}
	pat, err := f.Pattern("NAND2")
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := netlist.WriteSubckt(&buf, pat); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{".SUBCKT NAND2", ".ENDS NAND2", ".GLOBAL"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	f2, err := netlist.ParseString(out, "pat.sp")
	if err != nil {
		t.Fatal(err)
	}
	back, err := f2.Pattern("NAND2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := gemini.Compare(pat, back, gemini.Options{Globals: []string{"VDD", "GND"}, PortsByName: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Isomorphic {
		t.Errorf("round-tripped pattern not isomorphic: %s", res.Reason)
	}
}

func TestElementNamePrefixing(t *testing.T) {
	if got := netlist.ElementNameForTest('M', "M1"); got != "M1" {
		t.Errorf("elementName kept-prefix: %q", got)
	}
	if got := netlist.ElementNameForTest('M', "inv.MP"); got != "Minv.MP" {
		t.Errorf("elementName add-prefix: %q", got)
	}
	if got := netlist.ElementNameForTest('X', "u1_NAND2"); got != "Xu1_NAND2" {
		t.Errorf("elementName X: %q", got)
	}
}
