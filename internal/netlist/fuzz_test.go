package netlist

import (
	"strings"
	"testing"
)

// FuzzParse checks that the parser never panics and that anything it
// accepts can be built into a valid circuit or is rejected with an error —
// never a silent corruption.  `go test` runs the seed corpus; `go test
// -fuzz=FuzzParse` explores further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		nandSrc,
		"",
		"*",
		"+ dangling",
		".GLOBAL\n",
		".SUBCKT X a\nM1 a a a nmos\n.ENDS\nX1 w X\n",
		"M1 a b c nmos\nM1 a b c nmos\n", // duplicate names
		"R1 a a\n",                       // self-loop resistor
		"M1 a b c d e f g nmos\n",
		".suBcKt weird P\nC1 P x\n.ends\nXw q weird\n",
		strings.Repeat("M1 a b c nmos\n", 3),
		"X1 a b c MISSING\n.SUBCKT MISSING x\n.ENDS\n", // arity mismatch
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		file, err := ParseString(src, "fuzz.sp")
		if err != nil {
			return // rejected inputs are fine
		}
		// Anything parsed must either build into a structurally valid
		// circuit or fail with an error.
		if len(file.Top) > 0 {
			c, err := file.MainCircuit("fuzz")
			if err != nil {
				return
			}
			if err := c.Validate(); err != nil {
				t.Fatalf("parser accepted input producing an invalid circuit: %v\ninput: %q", err, src)
			}
		}
		for name := range file.Subckts {
			p, err := file.Pattern(name)
			if err != nil {
				continue
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("pattern %s invalid: %v\ninput: %q", name, err, src)
			}
		}
	})
}
