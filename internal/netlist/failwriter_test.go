package netlist_test

import (
	"errors"
	"strings"
	"testing"

	"subgemini/internal/netlist"
)

// failAfter returns write errors once n bytes have been accepted, to
// exercise every error-propagation path in the writers.
type failAfter struct {
	n       int
	written int
}

var errInjected = errors.New("injected write failure")

func (f *failAfter) Write(p []byte) (int, error) {
	if f.written+len(p) > f.n {
		return 0, errInjected
	}
	f.written += len(p)
	return len(p), nil
}

func TestWriteCircuitPropagatesWriterErrors(t *testing.T) {
	f, err := netlist.ParseString(nandSrcExt, "nand.sp")
	if err != nil {
		t.Fatal(err)
	}
	c, err := f.MainCircuit("top")
	if err != nil {
		t.Fatal(err)
	}
	// Sweep the failure point across the whole output so header, global,
	// device, and trailer writes all hit the error at least once.
	var full strings.Builder
	if err := netlist.WriteCircuit(&full, c); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < full.Len(); n += 17 {
		if err := netlist.WriteCircuit(&failAfter{n: n}, c); !errors.Is(err, errInjected) {
			t.Fatalf("failure at byte %d not propagated: %v", n, err)
		}
	}
	// A writer that accepts everything succeeds.
	if err := netlist.WriteCircuit(&failAfter{n: full.Len()}, c); err != nil {
		t.Fatalf("full-size writer failed: %v", err)
	}
}

func TestWriteSubcktPropagatesWriterErrors(t *testing.T) {
	f, err := netlist.ParseString(nandSrcExt, "nand.sp")
	if err != nil {
		t.Fatal(err)
	}
	p, err := f.Pattern("NAND2")
	if err != nil {
		t.Fatal(err)
	}
	if err := netlist.WriteSubckt(&failAfter{n: 3}, p); !errors.Is(err, errInjected) {
		t.Fatalf("subckt write failure not propagated: %v", err)
	}
}

// TestFourTerminalRoundTrip: 4-terminal MOS cards survive write + reparse
// with bulk intact.
func TestFourTerminalRoundTrip(t *testing.T) {
	f, err := netlist.ParseString("M1 d g s b nmos\nM2 x y z w pmos\n", "m4.sp")
	if err != nil {
		t.Fatal(err)
	}
	c, err := f.MainCircuit("m4")
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := netlist.WriteCircuit(&buf, c); err != nil {
		t.Fatal(err)
	}
	f2, err := netlist.ParseString(buf.String(), "rt.sp")
	if err != nil {
		t.Fatal(err)
	}
	back, err := f2.MainCircuit("rt")
	if err != nil {
		t.Fatal(err)
	}
	m1 := back.DeviceByName("M1")
	if m1 == nil || len(m1.Pins) != 4 {
		t.Fatalf("M1 after round trip: %+v", m1)
	}
	if m1.Pins[3].Net.Name != "b" {
		t.Errorf("bulk net = %s, want b", m1.Pins[3].Net.Name)
	}
}
