package netlist

import (
	"fmt"
	"io"
	"strings"

	"subgemini/internal/graph"
)

// WriteCircuit emits a flat circuit as top-level netlist cards, preceded by
// a .GLOBAL line for its global nets.  Devices of the primitive types
// (nmos, pmos, res, cap, diode) map back to their element cards; any other
// device type — e.g. a gate produced by extraction — is written as an X
// instance card referencing the type name.
func WriteCircuit(w io.Writer, c *graph.Circuit) error {
	bw := &errWriter{w: w}
	bw.printf("* circuit %s: %d devices, %d nets\n", c.Name, c.NumDevices(), c.NumNets())
	if globals := c.Globals(); len(globals) > 0 {
		names := make([]string, len(globals))
		for i, g := range globals {
			names[i] = g.Name
		}
		bw.printf(".GLOBAL %s\n", strings.Join(names, " "))
	}
	for _, d := range c.Devices {
		writeDevice(bw, d)
	}
	bw.printf(".END\n")
	return bw.err
}

// WriteSubckt emits a pattern circuit as a .SUBCKT definition whose ports
// are the circuit's port nets in index order.
func WriteSubckt(w io.Writer, c *graph.Circuit) error {
	bw := &errWriter{w: w}
	ports := c.Ports()
	names := make([]string, len(ports))
	for i, p := range ports {
		names[i] = p.Name
	}
	if globals := c.Globals(); len(globals) > 0 {
		gnames := make([]string, len(globals))
		for i, g := range globals {
			gnames[i] = g.Name
		}
		bw.printf(".GLOBAL %s\n", strings.Join(gnames, " "))
	}
	bw.printf(".SUBCKT %s %s\n", c.Name, strings.Join(names, " "))
	for _, d := range c.Devices {
		writeDevice(bw, d)
	}
	bw.printf(".ENDS %s\n", c.Name)
	return bw.err
}

func writeDevice(bw *errWriter, d *graph.Device) {
	nets := make([]string, len(d.Pins))
	for i, p := range d.Pins {
		nets[i] = p.Net.Name
	}
	joined := strings.Join(nets, " ")
	switch d.Type {
	case "nmos", "pmos":
		bw.printf("%s %s %s\n", elementName('M', d.Name), joined, d.Type)
	case "res":
		bw.printf("%s %s\n", elementName('R', d.Name), joined)
	case "cap":
		bw.printf("%s %s\n", elementName('C', d.Name), joined)
	case "diode":
		bw.printf("%s %s\n", elementName('D', d.Name), joined)
	default:
		bw.printf("%s %s %s\n", elementName('X', d.Name), joined, d.Type)
	}
}

// elementName ensures the device name carries the right SPICE element
// letter, prefixing one when the stored name does not already start with it.
func elementName(kind byte, name string) string {
	if len(name) > 0 && upperByte(name[0]) == kind {
		return name
	}
	return string(kind) + name
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
