package netlist

import (
	"strings"
	"testing"
)

const nandSrc = `
* two-input NAND and an inverter on its output
.GLOBAL VDD GND
.SUBCKT NAND2 A B Y
MP1 Y A VDD pmos
MP2 Y B VDD pmos
MN1 Y A n1 nmos
MN2 n1 B GND nmos
.ENDS NAND2
.SUBCKT INV A Y
MP Y A VDD pmos
MN Y A GND nmos
.ENDS
Xg1 a b w NAND2
Xg2 w y INV
.END
`

func TestParseBasics(t *testing.T) {
	f, err := ParseString(nandSrc, "nand.sp")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Subckts) != 2 {
		t.Fatalf("parsed %d subckts, want 2", len(f.Subckts))
	}
	nand := f.Subckts["NAND2"]
	if nand == nil || len(nand.Ports) != 3 || len(nand.Cards) != 4 {
		t.Fatalf("NAND2 parsed wrong: %+v", nand)
	}
	if len(f.Top) != 2 {
		t.Fatalf("parsed %d top cards, want 2", len(f.Top))
	}
	if f.Top[0].Kind != 'X' || f.Top[0].Ref != "NAND2" {
		t.Errorf("top card 0 = %+v", f.Top[0])
	}
	if len(f.Globals) != 2 {
		t.Errorf("globals = %v", f.Globals)
	}
}

func TestParseContinuationAndComments(t *testing.T) {
	src := "* header\nMP1 Y A\n+ VDD pmos  ; trailing comment\n; full comment\nMN1 Y A GND nmos\n"
	f, err := ParseString(src, "t.sp")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Top) != 2 {
		t.Fatalf("got %d cards, want 2", len(f.Top))
	}
	if got := f.Top[0].Nets; len(got) != 3 || got[2] != "VDD" {
		t.Errorf("continuation not joined: %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"continuation first":  "+ M1 a b c nmos\n",
		"nested subckt":       ".SUBCKT A x\n.SUBCKT B y\n.ENDS\n.ENDS\n",
		"unterminated subckt": ".SUBCKT A x\nMN1 a b c nmos\n",
		"stray ends":          ".ENDS\n",
		"mismatched ends":     ".SUBCKT A x\nMN1 a b c nmos\n.ENDS B\n",
		"subckt without name": ".SUBCKT\n",
		"duplicate subckt":    ".SUBCKT A x\n.ENDS\n.SUBCKT A x\n.ENDS\n",
		"unknown directive":   ".OPTIONS foo\n",
		"mos with 2 nets":     "M1 a b nmos\n",
		"mos with 6 fields":   "M1 a b c d e nmos\n",
		"resistor with 1 net": "R1 a\n",
		"instance with 1 arg": "X1 SUB\n",
		"unsupported element": "Q1 a b c npn\n",
	}
	for name, src := range cases {
		if _, err := ParseString(src, "e.sp"); err == nil {
			t.Errorf("%s: error expected, got none", name)
		}
	}
}

func TestMOSType(t *testing.T) {
	for model, want := range map[string]string{
		"pmos": "pmos", "PMOS": "pmos", "pfet": "pmos", "p": "pmos",
		"nmos": "nmos", "NMOS": "nmos", "nfet": "nmos", "n": "nmos", "mosfet": "nmos",
	} {
		if got := MOSType(model); got != want {
			t.Errorf("MOSType(%q) = %q, want %q", model, got, want)
		}
	}
}

func TestMainCircuitFlattening(t *testing.T) {
	f, err := ParseString(nandSrc, "nand.sp")
	if err != nil {
		t.Fatal(err)
	}
	c, err := f.MainCircuit("top")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumDevices() != 6 {
		t.Fatalf("flattened to %d devices, want 6", c.NumDevices())
	}
	// Hierarchical names for internal devices and nets.
	if c.DeviceByName("Xg1/MP1") == nil {
		t.Error("instance device Xg1/MP1 missing")
	}
	if c.NetByName("Xg1/n1") == nil {
		t.Error("instance-local net Xg1/n1 missing")
	}
	// Ports bind to top nets; globals are shared, not prefixed.
	if c.NetByName("w") == nil || c.NetByName("VDD") == nil {
		t.Error("top net or global missing")
	}
	if !c.NetByName("VDD").Global {
		t.Error("VDD not marked global")
	}
	if c.NetByName("Xg1/VDD") != nil {
		t.Error("global was instance-prefixed")
	}
	// w is the NAND output and INV input: MP1.D, MP2.D, MN1.D + MP.G, MN.G.
	if got := c.NetByName("w").Degree(); got != 5 {
		t.Errorf("degree(w) = %d, want 5", got)
	}
}

func TestPattern(t *testing.T) {
	f, err := ParseString(nandSrc, "nand.sp")
	if err != nil {
		t.Fatal(err)
	}
	p, err := f.Pattern("NAND2")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumDevices() != 4 {
		t.Fatalf("pattern has %d devices, want 4", p.NumDevices())
	}
	for _, port := range []string{"A", "B", "Y"} {
		n := p.NetByName(port)
		if n == nil || !n.Port {
			t.Errorf("port %s missing or unmarked", port)
		}
	}
	if !p.NetByName("VDD").Global {
		t.Error("VDD not global in pattern")
	}
	if p.NetByName("n1").Port {
		t.Error("internal net n1 marked as port")
	}
	if _, err := f.Pattern("NOPE"); err == nil {
		t.Error("unknown subckt accepted")
	}
}

func TestRecursiveInstantiationRejected(t *testing.T) {
	src := ".SUBCKT A x\nXa x A\n.ENDS\nXtop y A\n"
	f, err := ParseString(src, "rec.sp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.MainCircuit("top"); err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Errorf("recursive instantiation not rejected: %v", err)
	}
}

func TestInstanceArityChecked(t *testing.T) {
	src := ".SUBCKT A x y\nMN1 x y GND nmos\n.ENDS\nXtop a A\n"
	f, err := ParseString(src, "arity.sp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.MainCircuit("top"); err == nil {
		t.Error("arity mismatch not rejected")
	}
}

func TestUnknownSubcktRejected(t *testing.T) {
	f, err := ParseString("X1 a b NOPE\n", "u.sp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.MainCircuit("top"); err == nil {
		t.Error("unknown subcircuit reference not rejected")
	}
}

func TestFourTerminalMOSAndPassives(t *testing.T) {
	src := ".GLOBAL VDD\nM1 d g s b nmos\nR1 a b 100\nC1 a b 1p\nD1 a b dio\n"
	f, err := ParseString(src, "m4.sp")
	if err != nil {
		t.Fatal(err)
	}
	c, err := f.MainCircuit("top")
	if err != nil {
		t.Fatal(err)
	}
	m := c.DeviceByName("M1")
	if len(m.Pins) != 4 {
		t.Fatalf("M1 has %d pins, want 4", len(m.Pins))
	}
	if m.Pins[0].Class != m.Pins[2].Class {
		t.Error("drain and source classes differ")
	}
	if m.Pins[3].Class == m.Pins[0].Class {
		t.Error("bulk shares the source/drain class")
	}
	for name, typ := range map[string]string{"R1": "res", "C1": "cap", "D1": "diode"} {
		if d := c.DeviceByName(name); d == nil || d.Type != typ {
			t.Errorf("%s: got %+v, want type %s", name, d, typ)
		}
	}
}
