package netlist

// ElementNameForTest exposes elementName to the external test package.
func ElementNameForTest(kind byte, name string) string { return elementName(kind, name) }
