package netlist

import (
	"fmt"

	"subgemini/internal/graph"
)

// Terminal-class vectors for the primitive elements; MOS classes follow
// paper §II (interchangeable source/drain, distinct gate, distinct bulk).
var (
	mos3Classes = []graph.TermClass{graph.ClassDS, graph.ClassGate, graph.ClassDS}
	mos4Classes = []graph.TermClass{graph.ClassDS, graph.ClassGate, graph.ClassDS, graph.ClassBulk}
	twoSym      = []graph.TermClass{0, 0}
	diodeCls    = []graph.TermClass{0, 1}
)

// Pattern builds the named .SUBCKT as a pattern circuit: its ports become
// external nets and nets listed in .GLOBAL are marked global.  Instance
// cards inside the subcircuit are flattened recursively.
func (f *File) Pattern(name string) (*graph.Circuit, error) {
	sub, ok := f.Subckts[name]
	if !ok {
		return nil, fmt.Errorf("netlist: no .SUBCKT named %q", name)
	}
	ckt := graph.New(name)
	bound := make(map[string]*graph.Net, len(sub.Ports))
	for _, p := range sub.Ports {
		bound[p] = ckt.AddNet(p)
	}
	if err := f.expand(ckt, sub, "", bound, nil); err != nil {
		return nil, err
	}
	for _, p := range sub.Ports {
		if err := ckt.MarkPort(p); err != nil {
			return nil, err
		}
	}
	for _, g := range f.Globals {
		ckt.MarkGlobal(g)
	}
	return ckt, nil
}

// MainCircuit builds the flat main circuit from the file's top-level cards,
// flattening every subcircuit instance.  name becomes the circuit name.
func (f *File) MainCircuit(name string) (*graph.Circuit, error) {
	if len(f.Top) == 0 {
		return nil, fmt.Errorf("netlist: no top-level cards in %s", name)
	}
	ckt := graph.New(name)
	top := &Subckt{Name: name, Cards: f.Top}
	if err := f.expand(ckt, top, "", nil, nil); err != nil {
		return nil, err
	}
	for _, g := range f.Globals {
		ckt.MarkGlobal(g)
	}
	return ckt, nil
}

// expand adds the cards of sub to ckt.  prefix qualifies device and local
// net names ("x1/"); bound maps the subcircuit's port and global names to
// existing nets of ckt; stack detects recursive instantiation.
func (f *File) expand(ckt *graph.Circuit, sub *Subckt, prefix string, bound map[string]*graph.Net, stack []string) error {
	for _, s := range stack {
		if s == sub.Name {
			return fmt.Errorf("netlist: recursive instantiation of %s (via %v)", sub.Name, stack)
		}
	}
	stack = append(stack, sub.Name)

	resolve := func(netName string) *graph.Net {
		if n, ok := bound[netName]; ok {
			return n
		}
		if isGlobal(f.Globals, netName) {
			return ckt.AddNet(netName) // globals are shared across levels
		}
		return ckt.AddNet(prefix + netName)
	}

	for _, card := range sub.Cards {
		switch card.Kind {
		case 'M':
			typ := MOSType(card.Ref)
			nets := resolveAll(resolve, card.Nets)
			classes := mos3Classes
			if len(nets) == 4 {
				classes = mos4Classes
			}
			if _, err := ckt.AddDevice(prefix+card.Name, typ, classes, nets); err != nil {
				return fmt.Errorf("netlist: line %d: %w", card.Line, err)
			}
		case 'R', 'C':
			typ := "res"
			if card.Kind == 'C' {
				typ = "cap"
			}
			if _, err := ckt.AddDevice(prefix+card.Name, typ, twoSym, resolveAll(resolve, card.Nets)); err != nil {
				return fmt.Errorf("netlist: line %d: %w", card.Line, err)
			}
		case 'D':
			if _, err := ckt.AddDevice(prefix+card.Name, "diode", diodeCls, resolveAll(resolve, card.Nets)); err != nil {
				return fmt.Errorf("netlist: line %d: %w", card.Line, err)
			}
		case 'X':
			inner, ok := f.Subckts[card.Ref]
			if !ok {
				return fmt.Errorf("netlist: line %d: instance %s references unknown subcircuit %q", card.Line, card.Name, card.Ref)
			}
			if len(card.Nets) != len(inner.Ports) {
				return fmt.Errorf("netlist: line %d: instance %s connects %d nets to %s which has %d ports",
					card.Line, card.Name, len(card.Nets), inner.Name, len(inner.Ports))
			}
			innerBound := make(map[string]*graph.Net, len(inner.Ports))
			for i, p := range inner.Ports {
				innerBound[p] = resolve(card.Nets[i])
			}
			if err := f.expand(ckt, inner, prefix+card.Name+"/", innerBound, stack); err != nil {
				return err
			}
		default:
			return fmt.Errorf("netlist: line %d: unhandled card kind %c", card.Line, card.Kind)
		}
	}
	return nil
}

func resolveAll(resolve func(string) *graph.Net, names []string) []*graph.Net {
	nets := make([]*graph.Net, len(names))
	for i, n := range names {
		nets[i] = resolve(n)
	}
	return nets
}

func isGlobal(globals []string, name string) bool {
	for _, g := range globals {
		if g == name {
			return true
		}
	}
	return false
}
