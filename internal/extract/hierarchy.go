package extract

import (
	"fmt"
	"io"
	"sort"

	"subgemini/internal/graph"
	"subgemini/internal/netlist"
	"subgemini/internal/stdcell"
)

// WriteHierarchical emits an extracted circuit as a hierarchical netlist:
// one .SUBCKT definition (at transistor level) for every library cell type
// used by the circuit's devices, followed by the circuit's own cards, in
// which extracted gates appear as X instance lines.  Reparsing and
// flattening the output reconstructs a circuit isomorphic to the original
// transistor netlist, which is how the paper's reference [6] builds a
// hierarchical representation from a flat one.
func WriteHierarchical(w io.Writer, c *graph.Circuit) error {
	// Collect the non-primitive device types in deterministic order.
	used := map[string]bool{}
	for _, d := range c.Devices {
		switch d.Type {
		case "nmos", "pmos", "res", "cap", "diode":
		default:
			used[d.Type] = true
		}
	}
	types := make([]string, 0, len(used))
	for t := range used {
		types = append(types, t)
	}
	sort.Strings(types)
	for _, t := range types {
		cell := stdcell.Get(t)
		if cell == nil {
			return fmt.Errorf("extract: circuit %s uses device type %q with no library definition", c.Name, t)
		}
		if err := netlist.WriteSubckt(w, cell.Pattern()); err != nil {
			return err
		}
	}
	return netlist.WriteCircuit(w, c)
}
