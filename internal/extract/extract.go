// Package extract implements the applications the paper's introduction
// motivates on top of the SubGemini matcher:
//
//   - converting a transistor netlist into a gate netlist by finding each
//     library cell's subcircuits and replacing them with a single
//     higher-level device;
//   - building a hierarchical representation of a flat circuit;
//   - reviewing circuits for questionable constructs described as pattern
//     circuits in an extensible rule library (paper §I).
//
// Extraction follows the partial order the paper describes in §V.A: cells
// are matched from largest to smallest so that, e.g., every NAND gate is
// claimed before the inverter pattern could claim its output stage.
package extract

import (
	"fmt"
	"sort"
	"sync"

	"subgemini/internal/core"
	"subgemini/internal/graph"
	"subgemini/internal/netlist"
	"subgemini/internal/stdcell"
)

// Extraction reports one cell's extraction round.
type Extraction struct {
	Cell  string
	Count int
}

// Options configures extraction.
type Options struct {
	// Globals lists the special-signal nets (normally the supply rails);
	// extraction without special rails would find inverters inside every
	// NAND (paper Fig. 7), so an empty list is almost always a mistake —
	// but it is allowed, for experiments.
	Globals []string
	// Prefix names replacement devices ("u" by default).
	Prefix string
	// Seed is passed through to the matcher.
	Seed uint64
	// Cancel, when non-nil, is passed through to every per-cell matcher
	// (see core.Options.Cancel); the first non-nil return aborts the
	// extraction.  Long extractions driven by subgeminid jobs wire the job
	// context in here so a cancelled job frees its worker promptly.
	Cancel func() error
}

func (o *Options) prefix() string {
	if o.Prefix == "" {
		return "u"
	}
	return o.Prefix
}

// Spec describes one library pattern for extraction: a subcircuit with its
// port order, independent of where it came from (the built-in cell library,
// a user netlist, or a hand-built graph).
type Spec struct {
	// Name becomes the device type of the replacement component.
	Name string
	// Ports orders the replacement component's terminals; every name must
	// be a port net of Pattern.
	Ports []string
	// Pattern is the subcircuit to search for, with its port nets marked.
	Pattern *graph.Circuit
}

// Size is the number of devices in the pattern, which drives the
// largest-first extraction order.
func (s *Spec) Size() int { return s.Pattern.NumDevices() }

// cellTemplates memoizes CellDef.Pattern() per cell definition, so repeated
// extractions (every Cells call, every daemon extract job) stop recompiling
// the same library cells.  The map is keyed by definition pointer and the
// registry is fixed at init, so it is naturally bounded; cached templates
// are never handed out directly — callers get clones.
var cellTemplates sync.Map // *stdcell.CellDef -> *graph.Circuit

// SpecFromCell adapts a built-in library cell.  The cell's pattern circuit
// is compiled once and cloned per call.
func SpecFromCell(cell *stdcell.CellDef) Spec {
	if t, ok := cellTemplates.Load(cell); ok {
		return Spec{Name: cell.Name, Ports: cell.Ports, Pattern: t.(*graph.Circuit).Clone()}
	}
	t := cell.Pattern()
	cellTemplates.Store(cell, t.Clone())
	return Spec{Name: cell.Name, Ports: cell.Ports, Pattern: t}
}

// SpecsFromNetlist turns every .SUBCKT of a parsed netlist into an
// extraction spec, so users extend the extraction library by writing
// subcircuits — "circuits in a library which can be easily extended as
// necessary" (paper §I).
func SpecsFromNetlist(f *netlist.File) ([]Spec, error) {
	names := make([]string, 0, len(f.Subckts))
	for name := range f.Subckts {
		names = append(names, name)
	}
	sort.Strings(names)
	specs := make([]Spec, 0, len(names))
	for _, name := range names {
		pat, err := f.Pattern(name)
		if err != nil {
			return nil, err
		}
		specs = append(specs, Spec{Name: name, Ports: f.Subckts[name].Ports, Pattern: pat})
	}
	return specs, nil
}

// Cells extracts every given cell from the circuit, in decreasing
// transistor-count order (ties broken by name for determinism), replacing
// each found instance's devices with a single device whose type is the cell
// name and whose pins are the images of the cell's ports.  The circuit is
// modified in place.  It returns the per-cell extraction counts in the
// order processed.
func Cells(c *graph.Circuit, cells []*stdcell.CellDef, opts Options) ([]Extraction, error) {
	specs := make([]Spec, len(cells))
	for i, cell := range cells {
		specs[i] = SpecFromCell(cell)
	}
	return Specs(c, specs, opts)
}

// Specs is Cells for arbitrary pattern specs.
//
// Unlike rule checking, the spec loop cannot delegate to a library sweep:
// each round that extracts instances mutates the circuit, and under the
// paper's induced-subgraph semantics removing devices can create instances
// of a later cell that did not exist before (an extra load on an internal
// net blocks a match until the loading device is itself extracted), so no
// cell's result — not even a zero count — can be precomputed on the
// unmutated circuit.  What can be amortized safely is amortized: one
// Phase II scratch pool serves every round (it re-checks sizes, so the
// shrinking circuit is fine), and one matcher — with its cached CSR view
// and initial labeling — is reused across consecutive rounds that extract
// nothing and therefore leave the circuit untouched.
func Specs(c *graph.Circuit, specs []Spec, opts Options) ([]Extraction, error) {
	ordered := append([]Spec(nil), specs...)
	sort.Slice(ordered, func(i, j int) bool {
		if a, b := ordered[i].Size(), ordered[j].Size(); a != b {
			return a > b
		}
		return ordered[i].Name < ordered[j].Name
	})
	var result []Extraction
	serial := 0
	scratch := &core.ScratchPool{}
	var m *core.Matcher
	for _, spec := range ordered {
		if m == nil {
			var err error
			if m, err = extractMatcher(c, &opts, scratch); err != nil {
				return result, fmt.Errorf("extract: %s: %w", spec.Name, err)
			}
		}
		count, err := one(c, spec, &opts, &serial, m)
		if err != nil {
			return result, fmt.Errorf("extract: %s: %w", spec.Name, err)
		}
		if count > 0 {
			// The circuit changed shape; the matcher's cached views are
			// stale and its consumed marks refer to removed devices.
			m = nil
		}
		result = append(result, Extraction{Cell: spec.Name, Count: count})
	}
	return result, nil
}

// extractMatcher builds the NonOverlapping matcher one() drives.
func extractMatcher(c *graph.Circuit, opts *Options, scratch *core.ScratchPool) (*core.Matcher, error) {
	return core.NewMatcher(c, core.Options{
		Globals: opts.Globals,
		Policy:  core.NonOverlapping,
		Seed:    opts.Seed,
		Cancel:  opts.Cancel,
		Scratch: scratch,
	})
}

// One extracts a single cell from the circuit in place and returns how many
// instances were replaced.
func One(c *graph.Circuit, cell *stdcell.CellDef, opts Options) (int, error) {
	serial := 0
	m, err := extractMatcher(c, &opts, nil)
	if err != nil {
		return 0, err
	}
	return one(c, SpecFromCell(cell), &opts, &serial, m)
}

func one(c *graph.Circuit, cell Spec, opts *Options, serial *int, m *core.Matcher) (int, error) {
	pat := cell.Pattern
	res, err := m.Find(pat)
	if err != nil {
		return 0, err
	}
	if len(res.Instances) == 0 {
		return 0, nil
	}
	// Replace each instance: delete its devices, add one cell-typed device
	// connected to the port images.  Each port gets its own terminal class;
	// symmetry between cell ports (NAND2's A and B) is not encoded in the
	// replacement because extraction must preserve, not equate, the two
	// connections.
	classes := make([]graph.TermClass, len(cell.Ports))
	for i := range classes {
		classes[i] = graph.TermClass(i)
	}
	doomed := make(map[*graph.Device]bool)
	type replacement struct {
		name string
		nets []*graph.Net
	}
	var reps []replacement
	for _, inst := range res.Instances {
		for _, gd := range inst.DevMap {
			doomed[gd] = true
		}
		nets := make([]*graph.Net, len(cell.Ports))
		for i, port := range cell.Ports {
			pn := pat.NetByName(port)
			img := inst.NetMap[pn]
			if img == nil {
				return 0, fmt.Errorf("instance of %s has no image for port %s", cell.Name, port)
			}
			nets[i] = img
		}
		*serial++
		reps = append(reps, replacement{
			name: fmt.Sprintf("%s%d_%s", opts.prefix(), *serial, cell.Name),
			nets: nets,
		})
	}
	c.RemoveDevices(doomed)
	for _, r := range reps {
		// Port images can have been dropped by RemoveDevices if the
		// instance was the net's only load; re-adding by name resurrects
		// them.
		nets := make([]*graph.Net, len(r.nets))
		for i, n := range r.nets {
			nets[i] = c.AddNet(n.Name)
			nets[i].Global = nets[i].Global || n.Global
		}
		if _, err := c.AddDevice(r.name, cell.Name, classes, nets); err != nil {
			return 0, err
		}
	}
	return len(res.Instances), nil
}
