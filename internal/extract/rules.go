package extract

import (
	"fmt"

	"subgemini/internal/core"
	"subgemini/internal/graph"
	"subgemini/internal/sweep"
)

// Rule is a questionable circuit construct described as a pattern circuit,
// the library-based alternative to hard-coded rule checkers the paper
// proposes in §I.  Patterns may use the global nets VDD and GND to anchor a
// construct to the rails.
type Rule struct {
	Name        string
	Description string
	Pattern     *graph.Circuit
}

// Violation is one occurrence of a rule's construct.
type Violation struct {
	Rule     *Rule
	Instance *core.Instance
}

// Describe summarizes the violation using the image devices.
func (v *Violation) Describe() string {
	s := v.Rule.Name + ":"
	for _, d := range v.Instance.Devices() {
		s += " " + d.Name
	}
	return s
}

// Check matches every rule pattern against the circuit and returns all
// occurrences, overlapping ones included (a device may participate in
// several violations).  Rule checking never mutates the circuit, so the
// whole library goes through one sweep.Run: the main graph's CSR view and
// initial Phase I labeling are built once and shared across all rules, and
// structurally identical rule patterns collapse onto a single match.
// Violations come back in rule order, then instance order within a rule —
// the same order the sequential loop produced.
func Check(c *graph.Circuit, rules []*Rule, globals []string) ([]Violation, error) {
	if len(rules) == 0 {
		return nil, nil
	}
	lib := make([]sweep.Pattern, len(rules))
	for i, r := range rules {
		lib[i] = sweep.Pattern{Name: r.Name, Template: r.Pattern}
	}
	rep, err := sweep.Run(c, lib, sweep.Options{Globals: globals})
	if err != nil {
		return nil, fmt.Errorf("extract: rules: %w", err)
	}
	var out []Violation
	for i := range rep.Results {
		for _, inst := range rep.Results[i].Instances {
			out = append(out, Violation{Rule: rules[i], Instance: inst})
		}
	}
	return out, nil
}

var mos3 = []graph.TermClass{graph.ClassDS, graph.ClassGate, graph.ClassDS}

// singleMOSRule builds a one-transistor rule pattern with one source/drain
// terminal tied to a named global rail.
func singleMOSRule(name, desc, mosType, rail string) *Rule {
	p := graph.New(name)
	railNet := p.AddNet(rail)
	other := p.AddNet("x")
	gate := p.AddNet("g")
	p.MustAddDevice("M", mosType, mos3, []*graph.Net{railNet, gate, other})
	for _, n := range []string{"x", "g"} {
		if err := p.MarkPort(n); err != nil {
			panic(err)
		}
	}
	return &Rule{Name: name, Description: desc, Pattern: p}
}

// StandardRules returns the built-in rule library:
//
//	nmos-pullup:    an n-transistor sourcing from VDD (degraded high level)
//	pmos-pulldown:  a p-transistor sinking to GND (degraded low level)
//	gate-on-vdd:    a transistor gate hardwired to VDD
//	gate-on-gnd:    a transistor gate hardwired to GND
//
// Callers can extend the slice with their own patterns; the rule checker is
// entirely data-driven.
func StandardRules() []*Rule {
	gateOn := func(name, desc, mosType, rail string) *Rule {
		p := graph.New(name)
		railNet := p.AddNet(rail)
		a := p.AddNet("a")
		b := p.AddNet("b")
		p.MustAddDevice("M", mosType, mos3, []*graph.Net{a, railNet, b})
		for _, n := range []string{"a", "b"} {
			if err := p.MarkPort(n); err != nil {
				panic(err)
			}
		}
		return &Rule{Name: name, Description: desc, Pattern: p}
	}
	return []*Rule{
		singleMOSRule("nmos-pullup", "n-transistor passes a degraded high level from VDD", "nmos", "VDD"),
		singleMOSRule("pmos-pulldown", "p-transistor passes a degraded low level to GND", "pmos", "GND"),
		gateOn("gate-on-vdd", "transistor gate tied to VDD", "nmos", "VDD"),
		gateOn("gate-on-gnd", "transistor gate tied to GND", "pmos", "GND"),
		railShortRule(),
	}
}

// railShortRule matches any transistor whose channel directly bridges VDD
// and GND — a short regardless of device type, expressed with a wildcard
// device so one rule covers nmos and pmos alike.
func railShortRule() *Rule {
	p := graph.New("rail-short")
	vdd, gnd := p.AddNet("VDD"), p.AddNet("GND")
	gate := p.AddNet("g")
	p.MustAddDevice("M", graph.WildcardType, mos3, []*graph.Net{vdd, gate, gnd})
	if err := p.MarkPort("g"); err != nil {
		panic(err)
	}
	return &Rule{
		Name:        "rail-short",
		Description: "transistor channel connects VDD directly to GND",
		Pattern:     p,
	}
}
