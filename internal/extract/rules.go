package extract

import (
	"fmt"

	"subgemini/internal/core"
	"subgemini/internal/graph"
)

// Rule is a questionable circuit construct described as a pattern circuit,
// the library-based alternative to hard-coded rule checkers the paper
// proposes in §I.  Patterns may use the global nets VDD and GND to anchor a
// construct to the rails.
type Rule struct {
	Name        string
	Description string
	Pattern     *graph.Circuit
}

// Violation is one occurrence of a rule's construct.
type Violation struct {
	Rule     *Rule
	Instance *core.Instance
}

// Describe summarizes the violation using the image devices.
func (v *Violation) Describe() string {
	s := v.Rule.Name + ":"
	for _, d := range v.Instance.Devices() {
		s += " " + d.Name
	}
	return s
}

// Check matches every rule pattern against the circuit and returns all
// occurrences, overlapping ones included (a device may participate in
// several violations).
func Check(c *graph.Circuit, rules []*Rule, globals []string) ([]Violation, error) {
	m, err := core.NewMatcher(c, core.Options{Globals: globals, Policy: core.MatchAll})
	if err != nil {
		return nil, err
	}
	var out []Violation
	for _, r := range rules {
		res, err := m.Find(r.Pattern)
		if err != nil {
			return out, fmt.Errorf("extract: rule %s: %w", r.Name, err)
		}
		for _, inst := range res.Instances {
			out = append(out, Violation{Rule: r, Instance: inst})
		}
	}
	return out, nil
}

var mos3 = []graph.TermClass{graph.ClassDS, graph.ClassGate, graph.ClassDS}

// singleMOSRule builds a one-transistor rule pattern with one source/drain
// terminal tied to a named global rail.
func singleMOSRule(name, desc, mosType, rail string) *Rule {
	p := graph.New(name)
	railNet := p.AddNet(rail)
	other := p.AddNet("x")
	gate := p.AddNet("g")
	p.MustAddDevice("M", mosType, mos3, []*graph.Net{railNet, gate, other})
	for _, n := range []string{"x", "g"} {
		if err := p.MarkPort(n); err != nil {
			panic(err)
		}
	}
	return &Rule{Name: name, Description: desc, Pattern: p}
}

// StandardRules returns the built-in rule library:
//
//	nmos-pullup:    an n-transistor sourcing from VDD (degraded high level)
//	pmos-pulldown:  a p-transistor sinking to GND (degraded low level)
//	gate-on-vdd:    a transistor gate hardwired to VDD
//	gate-on-gnd:    a transistor gate hardwired to GND
//
// Callers can extend the slice with their own patterns; the rule checker is
// entirely data-driven.
func StandardRules() []*Rule {
	gateOn := func(name, desc, mosType, rail string) *Rule {
		p := graph.New(name)
		railNet := p.AddNet(rail)
		a := p.AddNet("a")
		b := p.AddNet("b")
		p.MustAddDevice("M", mosType, mos3, []*graph.Net{a, railNet, b})
		for _, n := range []string{"a", "b"} {
			if err := p.MarkPort(n); err != nil {
				panic(err)
			}
		}
		return &Rule{Name: name, Description: desc, Pattern: p}
	}
	return []*Rule{
		singleMOSRule("nmos-pullup", "n-transistor passes a degraded high level from VDD", "nmos", "VDD"),
		singleMOSRule("pmos-pulldown", "p-transistor passes a degraded low level to GND", "pmos", "GND"),
		gateOn("gate-on-vdd", "transistor gate tied to VDD", "nmos", "VDD"),
		gateOn("gate-on-gnd", "transistor gate tied to GND", "pmos", "GND"),
		railShortRule(),
	}
}

// railShortRule matches any transistor whose channel directly bridges VDD
// and GND — a short regardless of device type, expressed with a wildcard
// device so one rule covers nmos and pmos alike.
func railShortRule() *Rule {
	p := graph.New("rail-short")
	vdd, gnd := p.AddNet("VDD"), p.AddNet("GND")
	gate := p.AddNet("g")
	p.MustAddDevice("M", graph.WildcardType, mos3, []*graph.Net{vdd, gate, gnd})
	if err := p.MarkPort("g"); err != nil {
		panic(err)
	}
	return &Rule{
		Name:        "rail-short",
		Description: "transistor channel connects VDD directly to GND",
		Pattern:     p,
	}
}
