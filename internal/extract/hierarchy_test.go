package extract

import (
	"strings"
	"testing"

	"subgemini/internal/gemini"
	"subgemini/internal/gen"
	"subgemini/internal/netlist"
	"subgemini/internal/stdcell"
)

// TestHierarchyRoundTrip is the end-to-end check of the paper's
// hierarchical-representation application: flatten → extract → write
// hierarchical netlist → reparse → flatten again must yield a circuit
// isomorphic to the original transistor netlist.
func TestHierarchyRoundTrip(t *testing.T) {
	designs := []*gen.Design{
		gen.RippleCounter(3),
		gen.RippleAdder(2),
		gen.SRAMArray(2, 3),
	}
	lib := []*stdcell.CellDef{
		stdcell.DFF, stdcell.FA, stdcell.SRAM6T, stdcell.BUF, stdcell.INV,
	}
	for _, d := range designs {
		original := d.C.Clone()
		if _, err := Cells(d.C, lib, Options{Globals: rails}); err != nil {
			t.Fatalf("%s: extract: %v", d.C.Name, err)
		}
		var buf strings.Builder
		if err := WriteHierarchical(&buf, d.C); err != nil {
			t.Fatalf("%s: write: %v", d.C.Name, err)
		}
		f, err := netlist.ParseString(buf.String(), d.C.Name+".sp")
		if err != nil {
			t.Fatalf("%s: reparse: %v\n%s", d.C.Name, err, buf.String())
		}
		flat, err := f.MainCircuit(d.C.Name + "_reflat")
		if err != nil {
			t.Fatalf("%s: flatten: %v", d.C.Name, err)
		}
		res, err := gemini.Compare(original, flat, gemini.Options{Globals: rails})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Isomorphic {
			t.Errorf("%s: round-trip not isomorphic: %s", d.C.Name, res.Reason)
		}
	}
}

// TestHierarchyRejectsUnknownTypes: a circuit with gate devices the library
// does not define cannot be written hierarchically.
func TestHierarchyRejectsUnknownTypes(t *testing.T) {
	d := gen.InverterChain(2)
	if _, err := One(d.C, stdcell.INV, Options{Globals: rails}); err != nil {
		t.Fatal(err)
	}
	// Rename the extracted type to something the library lacks.
	d.C.Devices[0].Type = "MYSTERY"
	var buf strings.Builder
	if err := WriteHierarchical(&buf, d.C); err == nil {
		t.Error("unknown device type accepted")
	}
}

// TestHierarchyMixedLevels: devices the library does not cover stay at
// transistor level alongside extracted gates.
func TestHierarchyMixedLevels(t *testing.T) {
	d := gen.SRAMArray(2, 2) // has bare precharge transistors
	if _, err := Cells(d.C, []*stdcell.CellDef{stdcell.SRAM6T, stdcell.BUF}, Options{Globals: rails}); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteHierarchical(&buf, d.C); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{".SUBCKT SRAM6T", ".SUBCKT BUF", "pmos"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// The precharge transistors survive as M cards at top level.
	if !strings.Contains(out, "Mmpre0") && !strings.Contains(out, "mpre0") {
		t.Errorf("precharge transistor missing from:\n%s", out)
	}
}

// TestHierarchyRoundTripRandom: the extract → write → reparse → flatten
// loop preserves structure on random standard-cell designs across seeds.
func TestHierarchyRoundTripRandom(t *testing.T) {
	lib := stdcell.All()
	for seed := int64(1); seed <= 5; seed++ {
		d := gen.RandomLogic(30, 6, seed)
		original := d.C.Clone()
		if _, err := Cells(d.C, lib, Options{Globals: rails}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var buf strings.Builder
		if err := WriteHierarchical(&buf, d.C); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		f, err := netlist.ParseString(buf.String(), "rt.sp")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		flat, err := f.MainCircuit("rt")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := gemini.Compare(original, flat, gemini.Options{Globals: rails})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Isomorphic {
			t.Errorf("seed %d: round trip differs: %s", seed, res.Reason)
		}
	}
}
