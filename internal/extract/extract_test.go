package extract

import (
	"strings"
	"testing"

	"subgemini/internal/gen"
	"subgemini/internal/graph"
	"subgemini/internal/netlist"
	"subgemini/internal/stdcell"
)

var rails = []string{"VDD", "GND"}

func TestExtractOneCell(t *testing.T) {
	d := gen.InverterChain(4)
	count, err := One(d.C, stdcell.INV, Options{Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	if count != 4 {
		t.Fatalf("extracted %d inverters, want 4", count)
	}
	if err := d.C.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := d.C.NumDevices(); got != 4 {
		t.Fatalf("%d devices after extraction, want 4 gate devices", got)
	}
	for _, dev := range d.C.Devices {
		if dev.Type != "INV" {
			t.Errorf("device %s has type %s, want INV", dev.Name, dev.Type)
		}
		if len(dev.Pins) != 4 { // A, Y, VDD, GND
			t.Errorf("device %s has %d pins, want 4", dev.Name, len(dev.Pins))
		}
	}
	// The chain topology must survive: each INV output feeds the next input.
	if d.C.NetByName("n1") == nil {
		t.Error("intermediate net lost")
	}
}

// TestExtractPartialOrder is the paper's §V.A scenario: extracting DFF
// before INV (largest first) leaves the counter's explicit inverters, and
// the DFF's five internal inverters are consumed by the DFF extraction.
func TestExtractPartialOrder(t *testing.T) {
	d := gen.RippleCounter(3)
	res, err := Cells(d.C, []*stdcell.CellDef{stdcell.INV, stdcell.DFF}, Options{Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, e := range res {
		counts[e.Cell] = e.Count
	}
	if counts["DFF"] != 3 {
		t.Errorf("extracted %d DFFs, want 3", counts["DFF"])
	}
	if counts["INV"] != 3 {
		t.Errorf("extracted %d INVs, want 3 (the explicit ones only)", counts["INV"])
	}
	// Order must be DFF (18T) before INV (2T).
	if res[0].Cell != "DFF" || res[1].Cell != "INV" {
		t.Errorf("extraction order = %v, want DFF then INV", res)
	}
	if got := d.C.NumDevices(); got != 6 {
		t.Errorf("%d devices remain, want 6 (3 DFF + 3 INV)", got)
	}
	if err := d.C.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestExtractWrongOrderEatsGates shows why the partial order matters:
// extracting INV first destroys every DFF (their internal inverters are
// consumed), mirroring the paper's warning.
func TestExtractWrongOrderEatsGates(t *testing.T) {
	d := gen.RippleCounter(3)
	if _, err := One(d.C, stdcell.INV, Options{Globals: rails}); err != nil {
		t.Fatal(err)
	}
	count, err := One(d.C, stdcell.DFF, Options{Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Errorf("extracted %d DFFs after INV pass, want 0 (inverters already consumed)", count)
	}
}

func TestExtractFullLibraryOnMixedDesign(t *testing.T) {
	d := gen.ArrayMultiplier(3)
	res, err := Cells(d.C, []*stdcell.CellDef{stdcell.FA, stdcell.AND2, stdcell.NAND2, stdcell.INV}, Options{Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, e := range res {
		counts[e.Cell] = e.Count
	}
	if counts["FA"] != 6 { // n(n-1) = 3*2
		t.Errorf("FA = %d, want 6", counts["FA"])
	}
	if counts["AND2"] != 9 {
		t.Errorf("AND2 = %d, want 9", counts["AND2"])
	}
	// AND2 ran before NAND2 (6T vs 4T), so no bare NAND2s remain; the FA's
	// inverters went with the FA.
	if counts["NAND2"] != 0 || counts["INV"] != 0 {
		t.Errorf("NAND2 = %d INV = %d, want 0/0", counts["NAND2"], counts["INV"])
	}
	if got := d.C.NumDevices(); got != 15 {
		t.Errorf("%d devices remain, want 15 gates", got)
	}
}

func TestRuleCheck(t *testing.T) {
	c := graph.New("bad")
	vdd, gnd := c.AddNet("VDD"), c.AddNet("GND")
	x, y, en := c.AddNet("x"), c.AddNet("y"), c.AddNet("en")
	cls := []graph.TermClass{graph.ClassDS, graph.ClassGate, graph.ClassDS}
	// An nmos pull-up (violation), a pmos pull-down (violation), and an
	// innocent pass transistor.
	c.MustAddDevice("m1", "nmos", cls, []*graph.Net{x, en, vdd})
	c.MustAddDevice("m2", "pmos", cls, []*graph.Net{y, en, gnd})
	c.MustAddDevice("m3", "nmos", cls, []*graph.Net{x, en, y})

	vios, err := Check(c, StandardRules(), rails)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, v := range vios {
		got[v.Rule.Name]++
		if v.Describe() == "" {
			t.Error("empty violation description")
		}
	}
	if got["nmos-pullup"] != 1 {
		t.Errorf("nmos-pullup: %d violations, want 1", got["nmos-pullup"])
	}
	if got["pmos-pulldown"] != 1 {
		t.Errorf("pmos-pulldown: %d violations, want 1", got["pmos-pulldown"])
	}
	if got["gate-on-vdd"] != 0 || got["gate-on-gnd"] != 0 {
		t.Errorf("gate rules fired unexpectedly: %v", got)
	}
	// Identify the offending device by name.
	for _, v := range vios {
		if v.Rule.Name == "nmos-pullup" && !strings.Contains(v.Describe(), "m1") {
			t.Errorf("violation names %q, want m1", v.Describe())
		}
	}
}

func TestRuleCheckGateTies(t *testing.T) {
	c := graph.New("ties")
	vdd, gnd := c.AddNet("VDD"), c.AddNet("GND")
	a, b := c.AddNet("a"), c.AddNet("b")
	cls := []graph.TermClass{graph.ClassDS, graph.ClassGate, graph.ClassDS}
	c.MustAddDevice("m1", "nmos", cls, []*graph.Net{a, vdd, b}) // gate on VDD
	c.MustAddDevice("m2", "pmos", cls, []*graph.Net{a, gnd, b}) // gate on GND
	vios, err := Check(c, StandardRules(), rails)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, v := range vios {
		got[v.Rule.Name]++
	}
	if got["gate-on-vdd"] != 1 || got["gate-on-gnd"] != 1 {
		t.Errorf("gate-tie rules: %v, want one each", got)
	}
}

func TestCleanDesignHasNoViolations(t *testing.T) {
	d := gen.RippleAdder(2)
	vios, err := Check(d.C, StandardRules(), rails)
	if err != nil {
		t.Fatal(err)
	}
	if len(vios) != 0 {
		for _, v := range vios {
			t.Logf("unexpected: %s", v.Describe())
		}
		t.Errorf("clean CMOS design reported %d violations", len(vios))
	}
}

func TestRailShortRule(t *testing.T) {
	c := graph.New("short")
	vdd, gnd := c.AddNet("VDD"), c.AddNet("GND")
	en := c.AddNet("en")
	cls := []graph.TermClass{graph.ClassDS, graph.ClassGate, graph.ClassDS}
	// A pmos shorting the rails and an innocent inverter pair.
	c.MustAddDevice("mshort", "pmos", cls, []*graph.Net{vdd, en, gnd})
	y := c.AddNet("y")
	c.MustAddDevice("mp", "pmos", cls, []*graph.Net{y, en, vdd})
	c.MustAddDevice("mn", "nmos", cls, []*graph.Net{y, en, gnd})

	vios, err := Check(c, StandardRules(), rails)
	if err != nil {
		t.Fatal(err)
	}
	shorts := 0
	for _, v := range vios {
		if v.Rule.Name == "rail-short" {
			shorts++
			if !strings.Contains(v.Describe(), "mshort") {
				t.Errorf("rail-short names %q, want mshort", v.Describe())
			}
		}
	}
	if shorts != 1 {
		t.Errorf("rail-short fired %d times, want 1", shorts)
	}
}

// TestSpecsFromNetlist extracts with a user-defined library written as
// .SUBCKT definitions — no code changes needed to extend the library.
func TestSpecsFromNetlist(t *testing.T) {
	const lib = `
.GLOBAL VDD GND
.SUBCKT MYINV IN OUT
MP OUT IN VDD pmos
MN OUT IN GND nmos
.ENDS
.SUBCKT MYNAND A B Y
MP1 Y A VDD pmos
MP2 Y B VDD pmos
MN1 Y A n1 nmos
MN2 n1 B GND nmos
.ENDS
`
	f, err := netlist.ParseString(lib, "lib.sp")
	if err != nil {
		t.Fatal(err)
	}
	specs, err := SpecsFromNetlist(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("%d specs, want 2", len(specs))
	}

	d := gen.InverterChain(3)
	res, err := Specs(d.C, specs, Options{Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, e := range res {
		counts[e.Cell] = e.Count
	}
	if counts["MYINV"] != 3 || counts["MYNAND"] != 0 {
		t.Errorf("counts = %v, want MYINV=3 MYNAND=0", counts)
	}
	// The replacement devices carry the user's cell name and port count.
	for _, dev := range d.C.Devices {
		if dev.Type != "MYINV" {
			t.Errorf("device %s has type %s, want MYINV", dev.Name, dev.Type)
		}
		if len(dev.Pins) != 2 { // IN, OUT — rails are global, not ports
			t.Errorf("device %s has %d pins, want 2", dev.Name, len(dev.Pins))
		}
	}
}

func TestExtractPrefixOption(t *testing.T) {
	d := gen.InverterChain(2)
	if _, err := One(d.C, stdcell.INV, Options{Globals: rails, Prefix: "cellX"}); err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, dev := range d.C.Devices {
		if strings.HasPrefix(dev.Name, "cellX") {
			found++
		}
	}
	if found != 2 {
		t.Errorf("%d devices carry the custom prefix, want 2", found)
	}
}
