package graph

import "testing"

func TestTypeTableBuiltins(t *testing.T) {
	tbl := NewTypeTable()
	for _, name := range []string{"nmos", "pmos", "res", "cap", "diode"} {
		def := tbl.Lookup(name)
		if def == nil {
			t.Fatalf("builtin type %s missing", name)
		}
		if def.NumPins() != len(def.Classes) {
			t.Errorf("%s: %d pins, %d classes", name, def.NumPins(), len(def.Classes))
		}
	}
	mos := tbl.Lookup("nmos")
	if mos.PinIndex("G") != 1 || mos.PinIndex("nope") != -1 {
		t.Errorf("PinIndex wrong: G=%d nope=%d", mos.PinIndex("G"), mos.PinIndex("nope"))
	}
	// Source and drain share a class; gate does not.
	if mos.Classes[0] != mos.Classes[2] {
		t.Error("drain and source must share a terminal class")
	}
	if mos.Classes[1] == mos.Classes[0] {
		t.Error("gate must not share the source/drain class")
	}
}

func TestTypeTableDefineErrors(t *testing.T) {
	tbl := NewTypeTable()
	if err := tbl.Define(&TypeDef{Name: ""}); err == nil {
		t.Error("empty name accepted")
	}
	if err := tbl.Define(&TypeDef{Name: "x", PinNames: []string{"A"}, Classes: nil}); err == nil {
		t.Error("mismatched pins/classes accepted")
	}
	if err := tbl.Define(&TypeDef{Name: "nmos", PinNames: []string{"A"}, Classes: []TermClass{0}}); err == nil {
		t.Error("duplicate definition accepted")
	}
	if err := tbl.Define(&TypeDef{Name: "adder", PinNames: []string{"A", "B"}, Classes: []TermClass{0, 1}}); err != nil {
		t.Errorf("valid definition rejected: %v", err)
	}
	if tbl.Lookup("adder") == nil {
		t.Error("defined type not found")
	}
}

func TestMustDefinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustDefine did not panic on invalid definition")
		}
	}()
	NewTypeTable().MustDefine(&TypeDef{Name: ""})
}
