package graph_test

import (
	"strings"
	"testing"

	"subgemini/internal/gemini"
	"subgemini/internal/gen"
	"subgemini/internal/graph"
)

func TestJSONRoundTrip(t *testing.T) {
	d := gen.RippleCounter(2)
	d.C.MarkGlobal("VDD")
	d.C.MarkGlobal("GND")
	var buf strings.Builder
	if err := graph.EncodeJSON(&buf, d.C); err != nil {
		t.Fatal(err)
	}
	back, err := graph.DecodeJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != d.C.Name {
		t.Errorf("name = %q, want %q", back.Name, d.C.Name)
	}
	if !back.NetByName("VDD").Global {
		t.Error("global flag lost")
	}
	res, err := gemini.Compare(d.C, back, gemini.Options{Globals: []string{"VDD", "GND"}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Isomorphic {
		t.Errorf("round trip not isomorphic: %s", res.Reason)
	}
	// Names must round-trip exactly, not just structure.
	for _, dev := range d.C.Devices {
		b := back.DeviceByName(dev.Name)
		if b == nil || b.Type != dev.Type || len(b.Pins) != len(dev.Pins) {
			t.Errorf("device %s lost or changed", dev.Name)
		}
	}
}

func TestJSONPortFlagsRoundTrip(t *testing.T) {
	p := gen.ChainPattern(3)
	var buf strings.Builder
	if err := graph.EncodeJSON(&buf, p); err != nil {
		t.Fatal(err)
	}
	back, err := graph.DecodeJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Ports()) != len(p.Ports()) {
		t.Errorf("ports = %d, want %d", len(back.Ports()), len(p.Ports()))
	}
}

func TestJSONDecodeErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":        "not json",
		"unknown field":  `{"name":"x","bogus":1}`,
		"empty net name": `{"name":"x","nets":[{"name":""}]}`,
		"undeclared net": `{"name":"x","nets":[{"name":"a"}],"devices":[{"name":"d","type":"res","pins":[{"class":0,"net":"zzz"}]}]}`,
		"no pins":        `{"name":"x","nets":[{"name":"a"}],"devices":[{"name":"d","type":"res","pins":[]}]}`,
		"dup device":     `{"name":"x","nets":[{"name":"a"}],"devices":[{"name":"d","type":"res","pins":[{"class":0,"net":"a"},{"class":0,"net":"a"}]},{"name":"d","type":"res","pins":[{"class":0,"net":"a"},{"class":0,"net":"a"}]}]}`,
	}
	for name, src := range cases {
		if _, err := graph.DecodeJSON(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
