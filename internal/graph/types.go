package graph

import "fmt"

// TypeDef describes a device type: its terminal names in card order and the
// terminal equivalence class of each terminal.  Terminals with equal class
// values are interchangeable (paper §II: "nets connected to the source/drain
// terminals may be interchanged without affecting the circuit's function").
type TypeDef struct {
	Name     string
	PinNames []string
	Classes  []TermClass
}

// NumPins returns the number of terminals of the type.
func (t *TypeDef) NumPins() int { return len(t.PinNames) }

// PinIndex returns the index of the named terminal, or -1 if absent.
func (t *TypeDef) PinIndex(name string) int {
	for i, p := range t.PinNames {
		if p == name {
			return i
		}
	}
	return -1
}

// TypeTable maps device type names to their definitions.  A table is
// consulted by the netlist parser to assign terminal classes and by
// extraction to synthesize pins for replacement components.
type TypeTable struct {
	defs map[string]*TypeDef
}

// NewTypeTable returns a table preloaded with the primitive CMOS device
// types:
//
//	nmos, pmos:  D G S B  — D and S share a class, G and B have their own
//	res, cap:    A B      — both terminals share a class
//	diode:       A C      — distinct classes
//
// MOS transistors are modeled with an explicit bulk terminal because the
// generators tie bulk to the rails; parsers accept 3-terminal MOS cards and
// default bulk to the source net.
func NewTypeTable() *TypeTable {
	t := &TypeTable{defs: make(map[string]*TypeDef)}
	for _, mos := range []string{"nmos", "pmos"} {
		t.MustDefine(&TypeDef{
			Name:     mos,
			PinNames: []string{"D", "G", "S", "B"},
			Classes:  []TermClass{ClassDS, ClassGate, ClassDS, ClassBulk},
		})
	}
	t.MustDefine(&TypeDef{Name: "res", PinNames: []string{"A", "B"}, Classes: []TermClass{0, 0}})
	t.MustDefine(&TypeDef{Name: "cap", PinNames: []string{"A", "B"}, Classes: []TermClass{0, 0}})
	t.MustDefine(&TypeDef{Name: "diode", PinNames: []string{"A", "C"}, Classes: []TermClass{0, 1}})
	return t
}

// Terminal classes for MOS transistors.
const (
	ClassDS   TermClass = 0 // source/drain (interchangeable)
	ClassGate TermClass = 1
	ClassBulk TermClass = 2
)

// Define registers a type definition, rejecting duplicates and malformed
// definitions.
func (t *TypeTable) Define(def *TypeDef) error {
	if def.Name == "" {
		return fmt.Errorf("graph: type definition with empty name")
	}
	if len(def.PinNames) == 0 || len(def.PinNames) != len(def.Classes) {
		return fmt.Errorf("graph: type %s: %d pin names, %d classes", def.Name, len(def.PinNames), len(def.Classes))
	}
	if _, dup := t.defs[def.Name]; dup {
		return fmt.Errorf("graph: duplicate type definition %q", def.Name)
	}
	t.defs[def.Name] = def
	return nil
}

// MustDefine is Define that panics on error.
func (t *TypeTable) MustDefine(def *TypeDef) {
	if err := t.Define(def); err != nil {
		panic(err)
	}
}

// Lookup returns the definition for a type name, or nil if unknown.
func (t *TypeTable) Lookup(name string) *TypeDef { return t.defs[name] }
