// Package graph implements the bipartite circuit-graph model used by
// SubGemini and Gemini (Ohlrich et al., DAC 1993, §II).
//
// A circuit graph is an undirected bipartite graph: device vertices
// (transistors, gates, or arbitrary higher-level components) on one side and
// net vertices (wires) on the other.  A device connects to nets through
// terminals (pins); each terminal belongs to a terminal equivalence class
// that captures interchangeability of connections — e.g. the two
// source/drain terminals of a MOS transistor share one class while the gate
// terminal has its own.  Representing nets as explicit vertices keeps the
// edge count linear in the number of terminals and exposes circuit structure
// to the partitioning algorithm.
package graph

import (
	"fmt"
	"sort"
)

// TermClass identifies a terminal equivalence class within a device type.
// Two pins of the same device type with the same TermClass may be swapped
// without changing the circuit (paper §II).  Class values are small integers
// assigned by the device-type definition; they are compared only between
// devices of the same type.
type TermClass uint8

// Pin is one terminal of a device: the class it belongs to and the net it
// connects to.
type Pin struct {
	Class TermClass
	Net   *Net
}

// WildcardType is the device type that, in a pattern, matches a device of
// any type with the same terminal count and classes.  It never appears in
// main circuits.
const WildcardType = "*"

// Device is a device vertex.  Type distinguishes devices by function
// ("nmos", "pmos", or any higher-level component name); in a pattern it
// may be WildcardType.  Pins are the device's terminals in declaration
// order.
type Device struct {
	// Index is the position of the device in Circuit.Devices.  It is
	// maintained by the Circuit mutators and used as a dense array key by
	// the labeling machinery.
	Index int
	Name  string
	Type  string
	Pins  []Pin
}

// Conn is a back-reference from a net to one device terminal attached to it.
type Conn struct {
	Dev *Device
	// Pin is the index into Dev.Pins of the terminal on this net.
	Pin int
}

// Net is a net (wire) vertex.  Conns lists every device terminal attached to
// the net; its length is the net's degree.  Note that two terminals of the
// same device on one net contribute two entries (the degree counts pins, not
// distinct devices — the finer invariant, applied consistently to both the
// pattern and the main graph).
type Net struct {
	// Index is the position of the net in Circuit.Nets, maintained by the
	// Circuit mutators.
	Index int
	Name  string
	Conns []Conn

	// Port marks the net as part of the circuit's external interface.  In a
	// pattern (subcircuit) graph, port nets are the external nets of the
	// paper: they may connect to arbitrary additional devices in the main
	// graph, so their labels start corrupt in Phase I.
	Port bool

	// Global marks the net as a special signal (Vdd, GND, clk, ...).  Global
	// nets are matched by name rather than by structure and are never
	// labeled (paper §V.A).
	Global bool
}

// Degree returns the number of device terminals attached to the net.
func (n *Net) Degree() int { return len(n.Conns) }

// Circuit is a circuit graph: a named collection of device and net vertices.
// The zero value is not ready for use; call New.
type Circuit struct {
	Name    string
	Devices []*Device
	Nets    []*Net

	netByName map[string]*Net
	devByName map[string]*Device
}

// New returns an empty circuit with the given name.
func New(name string) *Circuit {
	return &Circuit{
		Name:      name,
		netByName: make(map[string]*Net),
		devByName: make(map[string]*Device),
	}
}

// AddNet creates a net with the given name and returns it.  Adding a name
// that already exists returns the existing net, so builders may freely call
// AddNet to mean "ensure net".
func (c *Circuit) AddNet(name string) *Net {
	if n, ok := c.netByName[name]; ok {
		return n
	}
	n := &Net{Index: len(c.Nets), Name: name}
	c.Nets = append(c.Nets, n)
	c.netByName[name] = n
	return n
}

// NetByName returns the net with the given name, or nil if absent.
func (c *Circuit) NetByName(name string) *Net { return c.netByName[name] }

// DeviceByName returns the device with the given name, or nil if absent.
func (c *Circuit) DeviceByName(name string) *Device { return c.devByName[name] }

// AddDevice creates a device of the given type whose i'th terminal has class
// classes[i] and connects to nets[i].  The two slices must have equal,
// nonzero length and the device name must be unique within the circuit.
func (c *Circuit) AddDevice(name, typ string, classes []TermClass, nets []*Net) (*Device, error) {
	if len(classes) != len(nets) {
		return nil, fmt.Errorf("graph: device %s: %d classes but %d nets", name, len(classes), len(nets))
	}
	if len(nets) == 0 {
		return nil, fmt.Errorf("graph: device %s: no terminals", name)
	}
	if _, dup := c.devByName[name]; dup {
		return nil, fmt.Errorf("graph: duplicate device name %q", name)
	}
	d := &Device{Index: len(c.Devices), Name: name, Type: typ, Pins: make([]Pin, len(nets))}
	for i, n := range nets {
		if n == nil {
			return nil, fmt.Errorf("graph: device %s: terminal %d has nil net", name, i)
		}
		d.Pins[i] = Pin{Class: classes[i], Net: n}
		n.Conns = append(n.Conns, Conn{Dev: d, Pin: i})
	}
	c.Devices = append(c.Devices, d)
	c.devByName[name] = d
	return d, nil
}

// MustAddDevice is AddDevice that panics on error; intended for
// programmatically generated circuits where the inputs are known valid.
func (c *Circuit) MustAddDevice(name, typ string, classes []TermClass, nets []*Net) *Device {
	d, err := c.AddDevice(name, typ, classes, nets)
	if err != nil {
		panic(err)
	}
	return d
}

// MarkPort flags the named net as a port (external net).  It returns an
// error if the net does not exist.
func (c *Circuit) MarkPort(name string) error {
	n := c.netByName[name]
	if n == nil {
		return fmt.Errorf("graph: port %q: no such net in %s", name, c.Name)
	}
	n.Port = true
	return nil
}

// MarkGlobal flags the named net as a special signal.  Unlike MarkPort it is
// a no-op when the net does not exist, because a circuit need not use every
// declared global.
func (c *Circuit) MarkGlobal(name string) {
	if n := c.netByName[name]; n != nil {
		n.Global = true
	}
}

// Ports returns the port nets in index order.
func (c *Circuit) Ports() []*Net {
	var ps []*Net
	for _, n := range c.Nets {
		if n.Port {
			ps = append(ps, n)
		}
	}
	return ps
}

// Globals returns the global (special-signal) nets in index order.
func (c *Circuit) Globals() []*Net {
	var gs []*Net
	for _, n := range c.Nets {
		if n.Global {
			gs = append(gs, n)
		}
	}
	return gs
}

// NumDevices returns the number of device vertices.
func (c *Circuit) NumDevices() int { return len(c.Devices) }

// NumNets returns the number of net vertices.
func (c *Circuit) NumNets() int { return len(c.Nets) }

// NumPins returns the total number of device terminals, which equals the
// number of edges in the bipartite graph.
func (c *Circuit) NumPins() int {
	total := 0
	for _, d := range c.Devices {
		total += len(d.Pins)
	}
	return total
}

// DeviceCounts returns a map from device type to the number of devices of
// that type.
func (c *Circuit) DeviceCounts() map[string]int {
	m := make(map[string]int)
	for _, d := range c.Devices {
		m[d.Type]++
	}
	return m
}

// String summarizes the circuit.
func (c *Circuit) String() string {
	counts := c.DeviceCounts()
	types := make([]string, 0, len(counts))
	for t := range counts {
		types = append(types, t)
	}
	sort.Strings(types)
	s := fmt.Sprintf("%s: %d devices, %d nets", c.Name, len(c.Devices), len(c.Nets))
	for _, t := range types {
		s += fmt.Sprintf(", %s=%d", t, counts[t])
	}
	return s
}

// Validate checks structural invariants: index fields agree with slice
// positions, net back-references match device pins, no device has zero pins,
// and names are consistent with the lookup maps.  Generators and the parser
// call Validate in tests; it is O(devices + pins).
func (c *Circuit) Validate() error {
	for i, d := range c.Devices {
		if d.Index != i {
			return fmt.Errorf("graph: device %s has index %d, want %d", d.Name, d.Index, i)
		}
		if len(d.Pins) == 0 {
			return fmt.Errorf("graph: device %s has no pins", d.Name)
		}
		if c.devByName[d.Name] != d {
			return fmt.Errorf("graph: device %s not in name map", d.Name)
		}
		for pi, p := range d.Pins {
			if p.Net == nil {
				return fmt.Errorf("graph: device %s pin %d has nil net", d.Name, pi)
			}
			found := false
			for _, conn := range p.Net.Conns {
				if conn.Dev == d && conn.Pin == pi {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("graph: device %s pin %d missing back-reference on net %s", d.Name, pi, p.Net.Name)
			}
		}
	}
	for i, n := range c.Nets {
		if n.Index != i {
			return fmt.Errorf("graph: net %s has index %d, want %d", n.Name, n.Index, i)
		}
		if c.netByName[n.Name] != n {
			return fmt.Errorf("graph: net %s not in name map", n.Name)
		}
		for _, conn := range n.Conns {
			if conn.Pin < 0 || conn.Pin >= len(conn.Dev.Pins) {
				return fmt.Errorf("graph: net %s references pin %d of device %s (out of range)", n.Name, conn.Pin, conn.Dev.Name)
			}
			if conn.Dev.Pins[conn.Pin].Net != n {
				return fmt.Errorf("graph: net %s back-reference to %s pin %d does not point back", n.Name, conn.Dev.Name, conn.Pin)
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the circuit.  The copy shares no vertices
// with the original, so callers may mutate either independently.
func (c *Circuit) Clone() *Circuit {
	cp := New(c.Name)
	for _, n := range c.Nets {
		nn := cp.AddNet(n.Name)
		nn.Port = n.Port
		nn.Global = n.Global
	}
	for _, d := range c.Devices {
		classes := make([]TermClass, len(d.Pins))
		nets := make([]*Net, len(d.Pins))
		for i, p := range d.Pins {
			classes[i] = p.Class
			nets[i] = cp.Nets[p.Net.Index]
		}
		cp.MustAddDevice(d.Name, d.Type, classes, nets)
	}
	return cp
}

// spliceConn removes the back-reference to device d's pin pi from net n,
// preserving the order of the remaining connections.  Order preservation is
// what lets the incremental CSR patcher splice the rows of unedited nets
// verbatim: an edit never reorders the connections it does not touch.
func spliceConn(n *Net, d *Device, pi int) {
	for i, conn := range n.Conns {
		if conn.Dev == d && conn.Pin == pi {
			n.Conns = append(n.Conns[:i], n.Conns[i+1:]...)
			return
		}
	}
}

// RemoveDevice deletes the named device, splicing its back-references out
// of the attached nets (preserving the order of every other connection) and
// dropping any net left with no connections unless it is a port or global.
// Surviving devices and nets keep their relative order and are reindexed.
// It returns an error when the device does not exist.
func (c *Circuit) RemoveDevice(name string) error {
	d := c.devByName[name]
	if d == nil {
		return fmt.Errorf("graph: remove device %q: no such device in %s", name, c.Name)
	}
	for pi, p := range d.Pins {
		spliceConn(p.Net, d, pi)
	}
	delete(c.devByName, name)
	c.Devices = append(c.Devices[:d.Index], c.Devices[d.Index+1:]...)
	for i := d.Index; i < len(c.Devices); i++ {
		c.Devices[i].Index = i
	}
	keptNets := c.Nets[:0]
	for _, n := range c.Nets {
		if len(n.Conns) == 0 && !n.Port && !n.Global {
			delete(c.netByName, n.Name)
			continue
		}
		keptNets = append(keptNets, n)
	}
	c.Nets = keptNets
	for i, n := range c.Nets {
		n.Index = i
	}
	return nil
}

// RemoveNet deletes the named net.  Only a net with no connections can be
// removed; nets with attached terminals must first have their devices
// removed or rewired.  Surviving nets keep their relative order.
func (c *Circuit) RemoveNet(name string) error {
	n := c.netByName[name]
	if n == nil {
		return fmt.Errorf("graph: remove net %q: no such net in %s", name, c.Name)
	}
	if len(n.Conns) > 0 {
		return fmt.Errorf("graph: remove net %q: still has %d connections", name, len(n.Conns))
	}
	delete(c.netByName, name)
	c.Nets = append(c.Nets[:n.Index], c.Nets[n.Index+1:]...)
	for i := n.Index; i < len(c.Nets); i++ {
		c.Nets[i].Index = i
	}
	return nil
}

// RenameNet changes a net's name.  The structure is untouched; only the
// name and the lookup map change.  The new name must not be in use.
func (c *Circuit) RenameNet(oldName, newName string) error {
	n := c.netByName[oldName]
	if n == nil {
		return fmt.Errorf("graph: rename net %q: no such net in %s", oldName, c.Name)
	}
	if newName == "" {
		return fmt.Errorf("graph: rename net %q: empty new name", oldName)
	}
	if _, dup := c.netByName[newName]; dup {
		return fmt.Errorf("graph: rename net %q: name %q already in use", oldName, newName)
	}
	delete(c.netByName, oldName)
	n.Name = newName
	c.netByName[newName] = n
	return nil
}

// RewirePin reconnects one terminal of the named device to a different net:
// the old net's back-reference is spliced out (preserving the order of its
// other connections) and a new back-reference is appended to the target.
func (c *Circuit) RewirePin(devName string, pin int, target *Net) error {
	d := c.devByName[devName]
	if d == nil {
		return fmt.Errorf("graph: rewire %q: no such device in %s", devName, c.Name)
	}
	if pin < 0 || pin >= len(d.Pins) {
		return fmt.Errorf("graph: rewire %s: pin %d out of range (device has %d)", devName, pin, len(d.Pins))
	}
	if target == nil {
		return fmt.Errorf("graph: rewire %s pin %d: nil target net", devName, pin)
	}
	old := d.Pins[pin].Net
	if old == target {
		return nil
	}
	spliceConn(old, d, pin)
	d.Pins[pin].Net = target
	target.Conns = append(target.Conns, Conn{Dev: d, Pin: pin})
	return nil
}

// RemoveDevices deletes the given devices (identified by pointer) and any
// nets left with no connections, then reindexes.  It is used by iterated
// extraction, which consumes matched devices and replaces them with a
// higher-level component.  Devices not present in the circuit are ignored.
func (c *Circuit) RemoveDevices(doomed map[*Device]bool) {
	if len(doomed) == 0 {
		return
	}
	keep := c.Devices[:0]
	for _, d := range c.Devices {
		if doomed[d] {
			delete(c.devByName, d.Name)
			continue
		}
		keep = append(keep, d)
	}
	c.Devices = keep
	for i, d := range c.Devices {
		d.Index = i
	}
	// Rebuild net connection lists from the surviving devices.
	for _, n := range c.Nets {
		n.Conns = n.Conns[:0]
	}
	for _, d := range c.Devices {
		for pi, p := range d.Pins {
			p.Net.Conns = append(p.Net.Conns, Conn{Dev: d, Pin: pi})
		}
	}
	// Drop isolated nets (but keep ports and globals: they are part of the
	// circuit's declared interface even when momentarily unconnected).
	keptNets := c.Nets[:0]
	for _, n := range c.Nets {
		if len(n.Conns) == 0 && !n.Port && !n.Global {
			delete(c.netByName, n.Name)
			continue
		}
		keptNets = append(keptNets, n)
	}
	c.Nets = keptNets
	for i, n := range c.Nets {
		n.Index = i
	}
}
