package graph

import (
	"encoding/json"
	"fmt"
	"io"
)

// The JSON interchange format: a stable, explicit wire representation for
// tooling that wants circuits without parsing SPICE or Verilog.
//
//	{
//	  "name": "chip",
//	  "nets": [{"name": "y", "port": false, "global": false}, ...],
//	  "devices": [
//	    {"name": "MP1", "type": "pmos",
//	     "pins": [{"class": 0, "net": "y"}, ...]},
//	    ...
//	  ]
//	}
type jsonCircuit struct {
	Name    string       `json:"name"`
	Nets    []jsonNet    `json:"nets"`
	Devices []jsonDevice `json:"devices"`
}

type jsonNet struct {
	Name   string `json:"name"`
	Port   bool   `json:"port,omitempty"`
	Global bool   `json:"global,omitempty"`
}

type jsonDevice struct {
	Name string    `json:"name"`
	Type string    `json:"type"`
	Pins []jsonPin `json:"pins"`
}

type jsonPin struct {
	Class TermClass `json:"class"`
	Net   string    `json:"net"`
}

// EncodeJSON writes the circuit in the JSON interchange format.
func EncodeJSON(w io.Writer, c *Circuit) error {
	jc := jsonCircuit{Name: c.Name}
	for _, n := range c.Nets {
		jc.Nets = append(jc.Nets, jsonNet{Name: n.Name, Port: n.Port, Global: n.Global})
	}
	for _, d := range c.Devices {
		jd := jsonDevice{Name: d.Name, Type: d.Type}
		for _, p := range d.Pins {
			jd.Pins = append(jd.Pins, jsonPin{Class: p.Class, Net: p.Net.Name})
		}
		jc.Devices = append(jc.Devices, jd)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jc)
}

// DecodeJSON reads a circuit in the JSON interchange format, validating the
// structure as it builds.
func DecodeJSON(r io.Reader) (*Circuit, error) {
	var jc jsonCircuit
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jc); err != nil {
		return nil, fmt.Errorf("graph: decoding circuit JSON: %w", err)
	}
	c := New(jc.Name)
	for _, jn := range jc.Nets {
		if jn.Name == "" {
			return nil, fmt.Errorf("graph: JSON net with empty name")
		}
		n := c.AddNet(jn.Name)
		n.Port = jn.Port
		n.Global = jn.Global
	}
	for _, jd := range jc.Devices {
		classes := make([]TermClass, len(jd.Pins))
		nets := make([]*Net, len(jd.Pins))
		for i, jp := range jd.Pins {
			classes[i] = jp.Class
			n := c.NetByName(jp.Net)
			if n == nil {
				return nil, fmt.Errorf("graph: device %s references undeclared net %q", jd.Name, jp.Net)
			}
			nets[i] = n
		}
		if _, err := c.AddDevice(jd.Name, jd.Type, classes, nets); err != nil {
			return nil, err
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}
