package graph

import (
	"strings"
	"testing"
)

var mos3 = []TermClass{ClassDS, ClassGate, ClassDS}

func inverter(t *testing.T) *Circuit {
	t.Helper()
	c := New("inv")
	in, out := c.AddNet("IN"), c.AddNet("OUT")
	vdd, gnd := c.AddNet("VDD"), c.AddNet("GND")
	c.MustAddDevice("MP", "pmos", mos3, []*Net{out, in, vdd})
	c.MustAddDevice("MN", "nmos", mos3, []*Net{out, in, gnd})
	return c
}

func TestAddNetDedupes(t *testing.T) {
	c := New("t")
	a := c.AddNet("x")
	b := c.AddNet("x")
	if a != b {
		t.Error("AddNet returned distinct nets for one name")
	}
	if c.NumNets() != 1 {
		t.Errorf("NumNets = %d, want 1", c.NumNets())
	}
}

func TestAddDeviceErrors(t *testing.T) {
	c := New("t")
	n := c.AddNet("n")
	if _, err := c.AddDevice("d", "nmos", mos3, []*Net{n, n}); err == nil {
		t.Error("mismatched classes/nets accepted")
	}
	if _, err := c.AddDevice("d", "nmos", nil, nil); err == nil {
		t.Error("zero-terminal device accepted")
	}
	if _, err := c.AddDevice("d", "nmos", mos3, []*Net{n, n, n}); err != nil {
		t.Fatalf("valid device rejected: %v", err)
	}
	if _, err := c.AddDevice("d", "nmos", mos3, []*Net{n, n, n}); err == nil {
		t.Error("duplicate device name accepted")
	}
	if _, err := c.AddDevice("d2", "nmos", mos3, []*Net{n, nil, n}); err == nil {
		t.Error("nil net accepted")
	}
}

func TestValidate(t *testing.T) {
	c := inverter(t)
	if err := c.Validate(); err != nil {
		t.Fatalf("valid circuit rejected: %v", err)
	}
	// Corrupt an index and check Validate notices.
	c.Devices[0].Index = 5
	if err := c.Validate(); err == nil {
		t.Error("corrupt device index accepted")
	}
	c.Devices[0].Index = 0

	c.Nets[1].Index = 9
	if err := c.Validate(); err == nil {
		t.Error("corrupt net index accepted")
	}
	c.Nets[1].Index = 1

	// Break a back-reference.
	saved := c.Nets[0].Conns
	c.Nets[0].Conns = nil
	if err := c.Validate(); err == nil {
		t.Error("missing back-reference accepted")
	}
	c.Nets[0].Conns = saved
	if err := c.Validate(); err != nil {
		t.Fatalf("restored circuit rejected: %v", err)
	}
}

func TestDegreeCountsPins(t *testing.T) {
	c := New("t")
	x, g := c.AddNet("x"), c.AddNet("g")
	// Both source/drain terminals on one net: degree counts pins, so 2.
	c.MustAddDevice("m", "nmos", mos3, []*Net{x, g, x})
	if d := x.Degree(); d != 2 {
		t.Errorf("degree = %d, want 2 (pins, not devices)", d)
	}
}

func TestPortsAndGlobals(t *testing.T) {
	c := inverter(t)
	if err := c.MarkPort("IN"); err != nil {
		t.Fatal(err)
	}
	if err := c.MarkPort("nope"); err == nil {
		t.Error("marking a missing port succeeded")
	}
	c.MarkGlobal("VDD")
	c.MarkGlobal("missing") // must be a no-op
	if got := len(c.Ports()); got != 1 {
		t.Errorf("len(Ports) = %d, want 1", got)
	}
	if got := len(c.Globals()); got != 1 {
		t.Errorf("len(Globals) = %d, want 1", got)
	}
}

func TestCountsAndString(t *testing.T) {
	c := inverter(t)
	if c.NumDevices() != 2 || c.NumNets() != 4 || c.NumPins() != 6 {
		t.Errorf("counts = %d devices, %d nets, %d pins; want 2, 4, 6",
			c.NumDevices(), c.NumNets(), c.NumPins())
	}
	counts := c.DeviceCounts()
	if counts["nmos"] != 1 || counts["pmos"] != 1 {
		t.Errorf("DeviceCounts = %v", counts)
	}
	s := c.String()
	for _, want := range []string{"inv", "2 devices", "4 nets", "nmos=1", "pmos=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestClone(t *testing.T) {
	c := inverter(t)
	if err := c.MarkPort("IN"); err != nil {
		t.Fatal(err)
	}
	c.MarkGlobal("VDD")
	cp := c.Clone()
	if err := cp.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
	if cp.NumDevices() != c.NumDevices() || cp.NumNets() != c.NumNets() {
		t.Fatal("clone sizes differ")
	}
	if !cp.NetByName("IN").Port || !cp.NetByName("VDD").Global {
		t.Error("clone lost port/global flags")
	}
	for i := range c.Devices {
		if cp.Devices[i] == c.Devices[i] {
			t.Error("clone shares device pointers with original")
		}
	}
	// Mutating the clone must not affect the original.
	cp.AddNet("extra")
	cp.MustAddDevice("m3", "nmos", mos3, []*Net{cp.Nets[0], cp.Nets[1], cp.Nets[2]})
	if c.NumDevices() != 2 || c.NumNets() != 4 {
		t.Error("mutating clone changed original")
	}
}

func TestRemoveDevices(t *testing.T) {
	c := inverter(t)
	c.MarkGlobal("VDD")
	mp := c.DeviceByName("MP")
	c.RemoveDevices(map[*Device]bool{mp: true})
	if err := c.Validate(); err != nil {
		t.Fatalf("invalid after removal: %v", err)
	}
	if c.NumDevices() != 1 {
		t.Fatalf("NumDevices = %d, want 1", c.NumDevices())
	}
	if c.DeviceByName("MP") != nil {
		t.Error("removed device still resolvable by name")
	}
	// VDD lost its only connection but is global, so it must survive.
	if c.NetByName("VDD") == nil {
		t.Error("global net dropped despite being part of the interface")
	}
	// OUT still has the nmos attached.
	if got := c.NetByName("OUT").Degree(); got != 1 {
		t.Errorf("OUT degree = %d, want 1", got)
	}
	// Removing nothing is a no-op.
	before := c.NumDevices()
	c.RemoveDevices(nil)
	if c.NumDevices() != before {
		t.Error("RemoveDevices(nil) changed the circuit")
	}
}

func TestRemoveDevicesDropsIsolatedNets(t *testing.T) {
	c := inverter(t)
	c.RemoveDevices(map[*Device]bool{c.DeviceByName("MP"): true, c.DeviceByName("MN"): true})
	if c.NumDevices() != 0 {
		t.Fatalf("NumDevices = %d, want 0", c.NumDevices())
	}
	if c.NumNets() != 0 {
		t.Errorf("NumNets = %d, want 0 (no ports or globals marked)", c.NumNets())
	}
}
