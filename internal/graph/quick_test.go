package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickRandomConstruction: arbitrary sequences of construction
// operations always leave the circuit structurally valid, and Clone always
// produces an equally valid copy with identical census.
func TestQuickRandomConstruction(t *testing.T) {
	types := []string{"nmos", "pmos", "res", "cap", "gateX"}
	prop := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := 5 + int(opsRaw%60)
		c := New("rand")
		c.AddNet("n0")
		for i := 0; i < ops; i++ {
			switch rng.Intn(4) {
			case 0: // new net
				c.AddNet(randName(rng, "n"))
			case 1, 2: // new device on random nets
				if len(c.Nets) == 0 {
					c.AddNet(randName(rng, "n"))
				}
				nPins := 2 + rng.Intn(3)
				classes := make([]TermClass, nPins)
				nets := make([]*Net, nPins)
				for p := 0; p < nPins; p++ {
					classes[p] = TermClass(rng.Intn(3))
					nets[p] = c.Nets[rng.Intn(len(c.Nets))]
				}
				name := randName(rng, "d")
				if c.DeviceByName(name) != nil {
					continue
				}
				if _, err := c.AddDevice(name, types[rng.Intn(len(types))], classes, nets); err != nil {
					t.Logf("seed %d: AddDevice: %v", seed, err)
					return false
				}
			case 3: // remove a random device
				if len(c.Devices) > 0 {
					d := c.Devices[rng.Intn(len(c.Devices))]
					c.RemoveDevices(map[*Device]bool{d: true})
				}
			}
		}
		if err := c.Validate(); err != nil {
			t.Logf("seed %d: invalid after ops: %v", seed, err)
			return false
		}
		cp := c.Clone()
		if err := cp.Validate(); err != nil {
			t.Logf("seed %d: invalid clone: %v", seed, err)
			return false
		}
		if cp.NumDevices() != c.NumDevices() || cp.NumNets() != c.NumNets() || cp.NumPins() != c.NumPins() {
			t.Logf("seed %d: clone census differs", seed)
			return false
		}
		a, b := c.DeviceCounts(), cp.DeviceCounts()
		for k, v := range a {
			if b[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func randName(rng *rand.Rand, prefix string) string {
	return prefix + string(rune('a'+rng.Intn(26))) + string(rune('a'+rng.Intn(26))) + string(rune('0'+rng.Intn(10)))
}

// TestQuickRemoveAllDevices: removing every device in random order always
// empties the circuit cleanly.
func TestQuickRemoveAllDevices(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New("r")
		mos := []TermClass{ClassDS, ClassGate, ClassDS}
		for i := 0; i < 12; i++ {
			a := c.AddNet(randName(rng, "x"))
			b := c.AddNet(randName(rng, "y"))
			g := c.AddNet(randName(rng, "g"))
			name := randName(rng, "m")
			if c.DeviceByName(name) != nil {
				continue
			}
			c.MustAddDevice(name, "nmos", mos, []*Net{a, g, b})
		}
		for c.NumDevices() > 0 {
			d := c.Devices[rng.Intn(len(c.Devices))]
			c.RemoveDevices(map[*Device]bool{d: true})
			if err := c.Validate(); err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
		}
		return c.NumNets() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
