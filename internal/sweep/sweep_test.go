package sweep_test

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"subgemini/internal/core"
	"subgemini/internal/delta"
	"subgemini/internal/gen"
	"subgemini/internal/graph"
	"subgemini/internal/stdcell"
	"subgemini/internal/sweep"
)

var rails = []string{"VDD", "GND"}

// testLibrary is a ≥8-pattern slice of the standard-cell library, mixing
// cells the multiplier workload contains many of, a few of, and none of.
func testLibrary() []sweep.Pattern {
	cells := []*stdcell.CellDef{
		stdcell.INV, stdcell.BUF, stdcell.NAND2, stdcell.NAND3,
		stdcell.NOR2, stdcell.AND2, stdcell.XOR2, stdcell.MUX2,
		stdcell.FA, stdcell.DFF,
	}
	lib := make([]sweep.Pattern, len(cells))
	for i, c := range cells {
		lib[i] = sweep.Pattern{Name: c.Name, Template: c.Pattern()}
	}
	return lib
}

// render serializes instances order-sensitively: the differential test
// demands bit-identical instance lists, not merely equal sets.
func render(insts []*core.Instance) string {
	var b strings.Builder
	for _, in := range insts {
		parts := make([]string, 0, len(in.DevMap)+len(in.NetMap))
		for pd, gd := range in.DevMap {
			parts = append(parts, pd.Name+"="+gd.Name)
		}
		for pn, gn := range in.NetMap {
			parts = append(parts, pn.Name+"->"+gn.Name)
		}
		sort.Strings(parts)
		b.WriteString(strings.Join(parts, " "))
		b.WriteByte('\n')
	}
	return b.String()
}

// sequentialFind is the loop sweep replaces: one fresh matcher per
// pattern, nothing shared.
func sequentialFind(t testing.TB, g *graph.Circuit, lib []sweep.Pattern, seed uint64) []*core.Result {
	t.Helper()
	out := make([]*core.Result, len(lib))
	for i, p := range lib {
		m, err := core.NewMatcher(g, core.Options{Globals: rails, Seed: seed})
		if err != nil {
			t.Fatalf("sequential matcher %s: %v", p.Name, err)
		}
		res, err := m.Find(p.Template.Clone())
		if err != nil {
			t.Fatalf("sequential find %s: %v", p.Name, err)
		}
		out[i] = res
	}
	return out
}

// TestSweepDifferential: sweep.Run returns bit-identical instances to the
// sequential per-pattern Find loop, for several sweep worker counts and
// with Phase I striping on.  Run under -race this also proves the shared
// CSR/init-label/scratch state is read safely across the pool.
func TestSweepDifferential(t *testing.T) {
	g := gen.ArrayMultiplier(4).C
	lib := testLibrary()
	const seed = 7
	want := sequentialFind(t, g, lib, seed)

	for _, workers := range []int{1, 2, 3, 8} {
		for _, p1w := range []int{0, 2} {
			t.Run(fmt.Sprintf("workers=%d/p1w=%d", workers, p1w), func(t *testing.T) {
				rep, err := sweep.Run(g, lib, sweep.Options{
					Globals: rails, Workers: workers, Phase1Workers: p1w, Seed: seed,
				})
				if err != nil {
					t.Fatal(err)
				}
				if len(rep.Results) != len(lib) {
					t.Fatalf("got %d results, want %d", len(rep.Results), len(lib))
				}
				total := 0
				for i, pr := range rep.Results {
					if pr.Name != lib[i].Name {
						t.Fatalf("result %d is %q, want %q (order must be input order)", i, pr.Name, lib[i].Name)
					}
					got, ref := render(pr.Instances), render(want[i].Instances)
					if got != ref {
						t.Errorf("%s: sweep instances differ from sequential Find\nsweep:\n%s\nsequential:\n%s", pr.Name, got, ref)
					}
					total += len(pr.Instances)
				}
				if total == 0 {
					t.Fatal("sweep found nothing; workload is broken")
				}
				if rep.Runs+rep.Deduped != len(lib) {
					t.Errorf("Runs=%d + Deduped=%d != %d patterns", rep.Runs, rep.Deduped, len(lib))
				}
			})
		}
	}
}

// TestSweepDedup: structurally identical patterns collapse onto one run,
// and the twins' instances are keyed by their own templates yet identical
// in content and order to the representative's.
func TestSweepDedup(t *testing.T) {
	g := gen.ArrayMultiplier(2).C

	renamed := stdcell.NAND2.Pattern().Clone()
	renamed.Name = "NAND2_COPY"
	for _, d := range renamed.Devices {
		d.Name = "x" + d.Name
	}
	lib := []sweep.Pattern{
		{Name: "N1", Template: stdcell.NAND2.Pattern()},
		{Name: "N2", Template: stdcell.NAND2.Pattern()},
		{Name: "N3", Template: renamed},
	}
	rep, err := sweep.Run(g, lib, sweep.Options{Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs != 1 || rep.Deduped != 2 {
		t.Fatalf("Runs=%d Deduped=%d, want 1 and 2", rep.Runs, rep.Deduped)
	}
	if a := rep.Results[1].Alias; a != "N1" {
		t.Errorf("N2 alias = %q, want N1", a)
	}
	if a := rep.Results[2].Alias; a != "N1" {
		t.Errorf("N3 alias = %q, want N1", a)
	}
	n1 := rep.Results[0]
	if n1.Alias != "" || len(n1.Instances) == 0 {
		t.Fatalf("representative N1: alias=%q instances=%d", n1.Alias, len(n1.Instances))
	}
	// Same image devices in the same order, keyed by each twin's template.
	imgs := func(insts []*core.Instance) string {
		var b strings.Builder
		for _, in := range insts {
			ds := in.Devices()
			names := make([]string, len(ds))
			for i, d := range ds {
				names[i] = d.Name
			}
			b.WriteString(strings.Join(names, ","))
			b.WriteByte('\n')
		}
		return b.String()
	}
	for i := 1; i < 3; i++ {
		if got, want := imgs(rep.Results[i].Instances), imgs(n1.Instances); got != want {
			t.Errorf("%s image devices differ from representative:\n%s\nvs\n%s", rep.Results[i].Name, got, want)
		}
		for _, in := range rep.Results[i].Instances {
			for pd := range in.DevMap {
				if lib[i].Template.Devices[pd.Index] != pd {
					t.Fatalf("%s instance keyed by foreign device %s", rep.Results[i].Name, pd.Name)
				}
			}
		}
	}

	// A differing port mark breaks structural identity: the matcher treats
	// ports and internal nets differently, so such patterns must not share
	// a run.
	extraPort := stdcell.NAND2.Pattern()
	if err := extraPort.MarkPort("n1"); err != nil {
		t.Fatal(err)
	}
	rep, err = sweep.Run(g, []sweep.Pattern{
		{Name: "N1", Template: stdcell.NAND2.Pattern()},
		{Name: "NP", Template: extraPort},
	}, sweep.Options{Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Deduped != 0 || rep.Results[1].Alias != "" {
		t.Errorf("port-marked twin deduped (alias %q); port flags must participate in the structural key", rep.Results[1].Alias)
	}
}

// memInc is an in-memory sweep.Incremental: states keyed by pattern
// structure, one dirty set covering "the cached version to now" (nil =
// cold, every run full).  The daemon's real implementation adds version
// bookkeeping; the sweep engine only needs this contract.
type memInc struct {
	mu     sync.Mutex
	states map[string]*core.IncrementalState
	ds     *core.DirtySet
	hits   int
}

func (c *memInc) Lookup(pat *graph.Circuit, opts core.Options) (*core.IncrementalState, *core.DirtySet, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.states[delta.PatternKey(pat, opts)]
	if !ok || c.ds == nil {
		return nil, nil, false
	}
	c.hits++
	return st, c.ds, true
}

func (c *memInc) Store(pat *graph.Circuit, opts core.Options, st *core.IncrementalState) {
	if st == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.states[delta.PatternKey(pat, opts)] = st
}

// TestSweepIncremental: a sweep with an Incremental hook populates it on
// the cold run, and after an edit the warm run replays candidates yet
// returns instances bit-identical to a from-scratch sweep of the edited
// circuit.  Workers > 1 plus -race exercises concurrent hook access.
func TestSweepIncremental(t *testing.T) {
	g := gen.ArrayMultiplier(2).C
	lib := testLibrary()
	cache := &memInc{states: map[string]*core.IncrementalState{}}
	opts := sweep.Options{Globals: rails, Workers: 4, Seed: 3, Incremental: cache}

	cold, err := sweep.Run(g, lib, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Replayed != 0 {
		t.Errorf("cold sweep replayed %d candidates", cold.Replayed)
	}
	if len(cache.states) != cold.Runs {
		t.Errorf("cache holds %d states after %d runs", len(cache.states), cold.Runs)
	}

	// Edit the circuit and hand the hook the resulting dirty set.
	step, err := delta.Apply(g, 2, []delta.Op{
		{Op: delta.OpRewirePin, Device: g.Devices[0].Name, Pin: 0, Net: "zz_spare"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := delta.Compose([]*delta.Step{step})
	if err != nil {
		t.Fatal(err)
	}
	cache.ds = ds

	warm, err := sweep.Run(g, lib, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Replayed == 0 {
		t.Error("warm sweep replayed nothing; incremental path inert")
	}
	if cache.hits == 0 {
		t.Error("hook Lookup never hit")
	}

	fresh, err := sweep.Run(g, lib, sweep.Options{Globals: rails, Workers: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range lib {
		if got, want := render(warm.Results[i].Instances), render(fresh.Results[i].Instances); got != want {
			t.Errorf("%s: incremental sweep diverges from full sweep\nincremental:\n%s\nfull:\n%s",
				lib[i].Name, got, want)
		}
	}
}

// TestSweepCancel: a firing Cancel hook aborts the sweep with its error.
func TestSweepCancel(t *testing.T) {
	g := gen.ArrayMultiplier(2).C
	stop := errors.New("deadline hit")
	_, err := sweep.Run(g, testLibrary(), sweep.Options{
		Globals: rails,
		Cancel:  func() error { return stop },
	})
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v, want wrapped %v", err, stop)
	}
}

func TestSweepArgumentErrors(t *testing.T) {
	g := gen.InverterChain(4).C
	if _, err := sweep.Run(nil, testLibrary(), sweep.Options{}); err == nil {
		t.Error("nil circuit accepted")
	}
	if _, err := sweep.Run(g, nil, sweep.Options{}); err == nil {
		t.Error("empty library accepted")
	}
	if _, err := sweep.Run(g, []sweep.Pattern{{Name: "x"}}, sweep.Options{}); err == nil {
		t.Error("nil template accepted")
	}
}
