// Package sweep is the library-sweep engine: it matches a named set of
// patterns against one main circuit in a single run, amortizing the work
// that a sequential per-pattern Find loop repeats per pattern.
//
// The headline SubGemini workload (paper §VI) is not one pattern against
// one circuit — it is an entire cell library swept over a netlist.  A
// naive loop pays three per-pattern costs that do not depend on the
// pattern at all: building the main graph's CSR view, computing its
// initial Phase I labeling, and allocating Phase II scratch state.  Run
// pays each exactly once — the CSR view and initial labeling are computed
// up front and shared read-only (core.Options.CSR / core.Options.InitLabels),
// and one core.ScratchPool recycles Phase II state across all per-pattern
// matchers — then schedules the per-pattern Phase I refinement + Phase II
// over a bounded worker pool.
//
// Patterns that are structurally identical (same devices, terminal
// classes, connectivity, port and global marks — only names differing) are
// deduplicated: one representative is matched and the others' instances
// are derived from its result by the index correspondence, so a library
// holding the same cell under three names pays for one match.
//
// Results are deterministic: each per-pattern run is bit-for-bit
// reproducible (fixed Seed, striped Phase I), runs are independent, and
// the report lists patterns in input order — worker count and scheduling
// never change the output.
//
// Sweeps always use MatchAll semantics.  NonOverlapping consumes matched
// devices run by run, so its result depends on pattern order; across a
// concurrently matched library there is no principled order, and callers
// that need consumption (iterated extraction) must sequence mutations
// themselves — see internal/extract.
package sweep

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"subgemini/internal/core"
	"subgemini/internal/faults"
	"subgemini/internal/graph"
	"subgemini/internal/obs"
	"subgemini/internal/stats"
)

func init() {
	faults.Register("sweep.worker", "per-pattern match inside a sweep worker (error fails that pattern and the sweep)")
}

// Pattern names one library entry.  Template is never mutated: Run clones
// it, so a shared template (e.g. from a compiled-pattern cache) may back
// any number of concurrent sweeps.
type Pattern struct {
	Name     string
	Template *graph.Circuit
}

// Options configures a sweep.
type Options struct {
	// Globals lists net names treated as special signals (paper §V.A).
	// The effective set is the union of this list, the main circuit's
	// marked globals, and every pattern's marked globals, applied to all
	// circuits by name before any matching starts.
	Globals []string

	// Workers bounds how many patterns are matched concurrently
	// (0 = GOMAXPROCS, 1 = sequential).  Output is identical for every
	// value.
	Workers int

	// Phase1Workers stripes each pattern's Phase I passes over the main
	// graph (see core.Options.Workers); 0 or 1 = sequential.
	Phase1Workers int

	// MaxInstances stops each pattern's search after this many instances
	// (0 = no limit).
	MaxInstances int

	// Seed perturbs the unique-label stream of every per-pattern run.
	Seed uint64

	// Cancel, when non-nil, is polled by every per-pattern run between
	// Phase I passes and Phase II candidates; the first non-nil return
	// aborts the whole sweep and Run returns that error.
	Cancel func() error

	// CSR, when non-nil, supplies a prebuilt flat view of the main
	// circuit (see core.NewCSR); nil means Run builds one for the sweep.
	CSR *core.CSR

	// Scratch, when non-nil, recycles Phase II state across the sweep's
	// matchers and across sweeps (see core.ScratchPool); nil means Run
	// uses a pool private to the sweep.
	Scratch *core.ScratchPool

	// LegacyPhase2 runs every per-pattern match on the whole-graph Phase II
	// engine instead of the region-localized one (see
	// core.Options.LegacyPhase2); results are identical either way.
	LegacyPhase2 bool

	// Incremental, when non-nil, lets per-pattern runs reuse match state
	// captured against an earlier version of the main circuit (see
	// core.FindIncremental).  Instances are identical with or without it.
	Incremental Incremental

	// Observe, when non-nil, receives span timelines from every per-pattern
	// run (see core.Options.Observe).  The timeline behind the scope is
	// mutex-protected, so concurrent sweep workers may share one; each
	// pattern's phase spans carry the pattern name, which keeps the
	// interleaved spans attributable.  Nil costs nothing.
	Observe *obs.Scope
}

// Incremental supplies and collects per-pattern incremental match state.
// Lookup is called once per executed run with the pattern clone (global
// marks applied) and the exact core options of the run; it returns the
// capture from a previous run of an equivalent pattern plus the dirty set
// leading from that capture's circuit version to the current one, or
// ok=false to force a full (but still capturing) run.  Store is called
// with the fresh capture after the run; a nil capture means the run could
// not capture and any prior entry should be left alone.
//
// The interface decouples the sweep engine from cache policy: the daemon
// backs it with a versioned result cache keyed by circuit, version, and
// pattern structure (internal/delta), while tests substitute fakes.
// Implementations must be safe for concurrent use — workers call them in
// parallel.
type Incremental interface {
	Lookup(pat *graph.Circuit, opts core.Options) (prev *core.IncrementalState, ds *core.DirtySet, ok bool)
	Store(pat *graph.Circuit, opts core.Options, state *core.IncrementalState)
}

// PatternResult is one pattern's share of a sweep report.
type PatternResult struct {
	// Name echoes the input pattern name.
	Name string

	// Alias, when non-empty, names the structurally identical earlier
	// pattern whose run answered this one; Report then describes that
	// shared run (aggregate it once, keyed by the alias, not per copy).
	Alias string

	// Instances are the verified embeddings, keyed by the devices and
	// nets of the input Template (not of Run's internal clone).
	Instances []*core.Instance

	// Report carries the run's Phase I / Phase II statistics.
	Report stats.Report
}

// Report is the merged outcome of a sweep.
type Report struct {
	// Results holds one entry per input pattern, in input order.
	Results []PatternResult

	// Runs counts the matches actually executed; Deduped counts the
	// patterns answered from a structural twin's run (Runs + Deduped =
	// len(Results)).
	Runs    int
	Deduped int

	// Replayed / Recomputed total the Phase II candidate outcomes answered
	// from a prior capture vs verified fresh, summed over executed runs.
	// Both stay zero without Options.Incremental.
	Replayed   int
	Recomputed int

	// Duration is the sweep's wall-clock time.
	Duration time.Duration
}

// Instances returns the total instance count across all patterns.
func (r *Report) Instances() int {
	n := 0
	for i := range r.Results {
		n += len(r.Results[i].Instances)
	}
	return n
}

// Run sweeps the pattern library over g and returns the merged report.
// The patterns' matched instances are identical to what a sequential
// per-pattern core.Find loop with the same options would produce.
//
// Run marks the union of special signals on g by name before matching
// (nets already marked are left untouched), and from then on only reads
// g — the same discipline core.Find follows, so a long-lived caller can
// serialize the marking and run sweeps concurrently with other matches
// over the same resident circuit.
func Run(g *graph.Circuit, patterns []Pattern, opts Options) (*Report, error) {
	start := time.Now()
	if g == nil {
		return nil, fmt.Errorf("sweep: nil main circuit")
	}
	if len(patterns) == 0 {
		return nil, fmt.Errorf("sweep: empty pattern library")
	}
	clones := make([]*graph.Circuit, len(patterns))
	for i := range patterns {
		if patterns[i].Template == nil {
			return nil, fmt.Errorf("sweep: pattern %d (%s): nil template", i, patterns[i].Name)
		}
		clones[i] = patterns[i].Template.Clone()
	}

	// Apply the union of special signals to every circuit by name (the
	// Fig. 7 semantics core.Find applies pairwise), so all per-pattern
	// runs agree on the set and no matcher ever writes to shared state.
	union := map[string]bool{}
	for _, name := range opts.Globals {
		union[name] = true
	}
	for _, n := range g.Globals() {
		union[n.Name] = true
	}
	for _, c := range clones {
		for _, n := range c.Globals() {
			union[n.Name] = true
		}
	}
	names := make([]string, 0, len(union))
	for name := range union {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		// Check-first on the main graph: marks are monotonic, and writing
		// an already-set flag would race with concurrent readers.
		if n := g.NetByName(name); n != nil && !n.Global {
			n.Global = true
		}
		for _, c := range clones {
			c.MarkGlobal(name)
		}
	}

	// Deduplicate structurally identical patterns: the first of each
	// equivalence class runs, later twins reuse its result.  The key is
	// computed after global marking — a mark changes matching semantics,
	// so two copies may only collapse when their marks agree too.
	rep := make([]int, len(patterns))
	byKey := map[string]int{}
	var order []int // representative indices, input order
	deduped := 0
	for i, c := range clones {
		k := structKey(c)
		if j, ok := byKey[k]; ok {
			rep[i] = j
			deduped++
		} else {
			byKey[k] = i
			rep[i] = i
			order = append(order, i)
		}
	}

	// Shared main-graph state, built once for the whole sweep.
	view := opts.CSR
	if view == nil {
		view = core.NewCSR(g)
	}
	scratch := opts.Scratch
	if scratch == nil {
		scratch = &core.ScratchPool{}
	}
	init := core.NewInitLabels(g)

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(order) {
		workers = len(order)
	}
	results := make([]*core.Result, len(patterns))
	errs := make([]error, len(patterns))
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				results[i], errs[i] = runOne(g, clones[i], view, scratch, init, &opts)
			}
		}()
	}
	for _, i := range order {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, i := range order {
		if errs[i] != nil {
			return nil, fmt.Errorf("sweep: pattern %s: %w", patterns[i].Name, errs[i])
		}
	}

	out := &Report{
		Results: make([]PatternResult, len(patterns)),
		Runs:    len(order),
		Deduped: deduped,
	}
	for _, i := range order {
		out.Replayed += results[i].Report.Replayed
		out.Recomputed += results[i].Report.Recomputed
	}
	for i := range patterns {
		r := rep[i]
		pr := PatternResult{Name: patterns[i].Name, Report: results[r].Report}
		if r != i {
			pr.Alias = patterns[r].Name
		}
		// Twins are index-identical by construction of structKey, so the
		// representative's instances translate by position — and instances
		// over the caller's own template translate from the clone the same
		// way (Clone preserves indices).
		pr.Instances = remap(results[r].Instances, patterns[i].Template)
		out.Results[i] = pr
	}
	out.Duration = time.Since(start)
	return out, nil
}

// runOne matches a single pattern clone using the sweep's shared state.
func runOne(g, pat *graph.Circuit, view *core.CSR, scratch *core.ScratchPool, init *core.InitLabels, opts *Options) (*core.Result, error) {
	if err := faults.Fire("sweep.worker"); err != nil {
		return nil, err
	}
	copts := core.Options{
		Policy:       core.MatchAll,
		MaxInstances: opts.MaxInstances,
		Seed:         opts.Seed,
		Workers:      opts.Phase1Workers,
		Cancel:       opts.Cancel,
		CSR:          view,
		Scratch:      scratch,
		InitLabels:   init,
		LegacyPhase2: opts.LegacyPhase2,
		Observe:      opts.Observe,
	}
	m, err := core.NewMatcher(g, copts)
	if err != nil {
		return nil, err
	}
	if opts.Incremental == nil {
		return m.Find(pat)
	}
	prev, ds, ok := opts.Incremental.Lookup(pat, copts)
	if !ok {
		prev, ds = nil, nil // full run, but still capture for next time
	}
	res, next, err := m.FindIncremental(pat, prev, ds)
	if err != nil {
		return nil, err
	}
	opts.Incremental.Store(pat, copts, next)
	return res, nil
}

// remap rekeys instances from Run's internal clone onto the circuit the
// caller knows (the input template, or an alias's template), using the
// index correspondence.  Image devices and nets are main-graph objects and
// pass through unchanged.
func remap(insts []*core.Instance, to *graph.Circuit) []*core.Instance {
	out := make([]*core.Instance, len(insts))
	for k, in := range insts {
		ni := &core.Instance{
			DevMap: make(map[*graph.Device]*graph.Device, len(in.DevMap)),
			NetMap: make(map[*graph.Net]*graph.Net, len(in.NetMap)),
		}
		for pd, gd := range in.DevMap {
			ni.DevMap[to.Devices[pd.Index]] = gd
		}
		for pn, gn := range in.NetMap {
			ni.NetMap[to.Nets[pn.Index]] = gn
		}
		out[k] = ni
	}
	return out
}

// structKey canonically encodes a pattern's matching-relevant structure:
// device types, terminal classes and connectivity in index order, plus
// each net's port flag and (name-keyed) global mark.  Two patterns with
// equal keys are indistinguishable to the matcher except for vertex names,
// which never enter Phase I labels or Phase II verification — so they
// produce bit-identical instance lists and either can answer for both.
// Isomorphic patterns whose vertex orders differ hash apart and simply
// run separately; dedup is an optimization, never a requirement.
func structKey(c *graph.Circuit) string {
	var b strings.Builder
	b.Grow(16 * (len(c.Devices) + len(c.Nets)))
	for _, d := range c.Devices {
		b.WriteString("d ")
		b.WriteString(d.Type)
		for _, p := range d.Pins {
			b.WriteByte(' ')
			b.WriteString(strconv.Itoa(int(p.Class)))
			b.WriteByte(':')
			b.WriteString(strconv.Itoa(p.Net.Index))
		}
		b.WriteByte('\n')
	}
	for _, n := range c.Nets {
		b.WriteByte('n')
		if n.Port {
			b.WriteString(" port")
		}
		if n.Global {
			b.WriteString(" global ")
			b.WriteString(n.Name)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
