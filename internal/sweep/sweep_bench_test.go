package sweep_test

import (
	"testing"

	"subgemini/internal/core"
	"subgemini/internal/gen"
	"subgemini/internal/sweep"
)

// BenchmarkSweep and BenchmarkSweepSequential answer the acceptance
// question for the library-sweep engine: sweeping a ≥8-pattern stdcell
// library over one circuit versus the sequential per-pattern Find loop it
// replaces.  Compare with:
//
//	go test ./internal/sweep -bench 'BenchmarkSweep' -benchtime 5x
func BenchmarkSweep(b *testing.B) {
	g := gen.ArrayMultiplier(8).C
	lib := testLibrary()
	opts := sweep.Options{Globals: rails, Seed: 1}
	if _, err := sweep.Run(g, lib, opts); err != nil { // warm global marks
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := sweep.Run(g, lib, opts)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Instances() == 0 {
			b.Fatal("no instances")
		}
	}
}

func BenchmarkSweepSequential(b *testing.B) {
	g := gen.ArrayMultiplier(8).C
	lib := testLibrary()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, p := range lib {
			m, err := core.NewMatcher(g, core.Options{Globals: rails, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			res, err := m.Find(p.Template.Clone())
			if err != nil {
				b.Fatal(err)
			}
			total += len(res.Instances)
		}
		if total == 0 {
			b.Fatal("no instances")
		}
	}
}
