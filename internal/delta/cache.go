package delta

import (
	"sync"

	"subgemini/internal/core"
)

// ResultCache maps (circuit name, pattern key) to the incremental state
// captured by the last complete run and the circuit version it describes.
// The daemon keeps one cache across requests: a match or sweep against an
// edited circuit looks up the prior state, asks the store for the steps
// between the cached and current versions, and hands both to
// core.FindIncremental; on success the refreshed state is stored back.
//
// Entries are invalidated when a circuit is replaced or deleted outright
// (PUT/DELETE) — edits (PATCH) intentionally do NOT invalidate, since the
// versioned steps are exactly what lets a stale entry be carried forward.
// The cache is bounded; when full, the oldest entry is evicted (FIFO).
type ResultCache struct {
	mu      sync.Mutex
	max     int
	entries map[cacheKey]*cacheEntry
	order   []cacheKey

	hits          uint64
	misses        uint64
	invalidations uint64
}

type cacheKey struct {
	circuit string
	pattern string
}

type cacheEntry struct {
	version uint64
	state   *core.IncrementalState
}

// NewResultCache returns a cache bounded to max entries (<=0 means a
// default of 256).
func NewResultCache(max int) *ResultCache {
	if max <= 0 {
		max = 256
	}
	return &ResultCache{max: max, entries: make(map[cacheKey]*cacheEntry)}
}

// Lookup returns the cached state and the circuit version it was captured
// at, or ok=false on a miss.
func (rc *ResultCache) Lookup(circuit, patternKey string) (version uint64, state *core.IncrementalState, ok bool) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	e := rc.entries[cacheKey{circuit, patternKey}]
	if e == nil {
		rc.misses++
		return 0, nil, false
	}
	rc.hits++
	return e.version, e.state, true
}

// Store records the state captured by a complete run at the given circuit
// version.  Nil states (legacy or cancelled runs) are ignored.
func (rc *ResultCache) Store(circuit, patternKey string, version uint64, state *core.IncrementalState) {
	if state == nil {
		return
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	k := cacheKey{circuit, patternKey}
	if e := rc.entries[k]; e != nil {
		e.version, e.state = version, state
		return
	}
	for len(rc.entries) >= rc.max && len(rc.order) > 0 {
		victim := rc.order[0]
		rc.order = rc.order[1:]
		if _, live := rc.entries[victim]; live {
			delete(rc.entries, victim)
		}
	}
	rc.entries[k] = &cacheEntry{version: version, state: state}
	rc.order = append(rc.order, k)
}

// Invalidate drops every entry for the named circuit and returns how many
// were dropped.
func (rc *ResultCache) Invalidate(circuit string) int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	n := 0
	for k := range rc.entries {
		if k.circuit == circuit {
			delete(rc.entries, k)
			n++
		}
	}
	rc.invalidations += uint64(n)
	return n
}

// Counters returns the lifetime hit, miss, and invalidation counts.
func (rc *ResultCache) Counters() (hits, misses, invalidations uint64) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.hits, rc.misses, rc.invalidations
}

// Len returns the number of live entries.
func (rc *ResultCache) Len() int {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return len(rc.entries)
}
