package delta

import (
	"encoding/json"
	"reflect"
	"testing"

	"subgemini/internal/core"
	"subgemini/internal/csr"
	"subgemini/internal/gen"
	"subgemini/internal/graph"
	"subgemini/internal/stdcell"
)

func inv(t *testing.T) *graph.Circuit {
	t.Helper()
	c := gen.InverterChain(6).C
	for _, g := range []string{"VDD", "GND"} {
		c.MarkGlobal(g)
	}
	return c
}

func TestApplyBasicOps(t *testing.T) {
	c := inv(t)
	nd, nn := c.NumDevices(), c.NumNets()
	dev0 := c.Devices[0].Name
	ops := []Op{
		{Op: OpAddNet, Name: "scratch"},
		{Op: OpRewirePin, Device: dev0, Pin: 1, Net: "scratch"},
		{Op: OpAddDevice, Name: "extra", Type: "nmos", Classes: []int{1, 2, 2},
			Nets: []string{"scratch", "fresh", "GND"}},
	}
	st, err := Apply(c, 7, ops)
	if err != nil {
		t.Fatal(err)
	}
	if st.Version != 7 || st.NewDevs != nd+1 || st.NewNets != nn+2 {
		t.Errorf("step dims: version=%d devs=%d nets=%d", st.Version, st.NewDevs, st.NewNets)
	}
	if len(st.DevOld2New) != nd || len(st.NetOld2New) != nn {
		t.Errorf("remap lengths %d/%d", len(st.DevOld2New), len(st.NetOld2New))
	}
	// No removals: remaps are identity.
	for i, v := range st.DevOld2New {
		if int(v) != i {
			t.Fatalf("dev remap[%d]=%d", i, v)
		}
	}
	wantTouched := []string{"fresh", "scratch"}
	if !reflect.DeepEqual(st.Touched, wantTouched) {
		t.Errorf("Touched = %v, want %v", st.Touched, wantTouched)
	}
	if c.DeviceByName("extra") == nil || c.NetByName("fresh") == nil {
		t.Error("ops not applied")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("edited circuit invalid: %v", err)
	}
}

func TestApplyRefusals(t *testing.T) {
	for _, tc := range []struct {
		name string
		op   Op
	}{
		{"rename global", Op{Op: OpRenameNet, Old: "VDD", New: "VCC"}},
		{"remove global", Op{Op: OpRemoveNet, Name: "VDD"}},
		{"remove connected net", Op{Op: OpRemoveNet, Name: "n1"}},
		{"wildcard device", Op{Op: OpAddDevice, Name: "w", Type: graph.WildcardType,
			Classes: []int{1}, Nets: []string{"n1"}}},
		{"duplicate net", Op{Op: OpAddNet, Name: "n1"}},
		{"unknown device", Op{Op: OpRemoveDevice, Name: "nope"}},
		{"unknown op", Op{Op: "frobnicate"}},
		{"bad pin", Op{Op: OpRewirePin, Device: "inv0_p", Pin: 99, Net: "n1"}},
	} {
		c := inv(t)
		if c.NetByName("n1") == nil {
			// Generator naming changed; pick any connected non-global net.
			t.Fatalf("fixture: no net n1 (nets: %v)", len(c.Nets))
		}
		if _, err := Apply(c, 1, []Op{tc.op}); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

func TestRemoveDeviceTouchesFloatingNets(t *testing.T) {
	c := graph.New("t")
	a, b := c.AddNet("a"), c.AddNet("b")
	c.MustAddDevice("d1", "nmos", []graph.TermClass{1, 2}, []*graph.Net{a, b})
	c.MustAddDevice("d2", "nmos", []graph.TermClass{1, 2}, []*graph.Net{a, a})
	st, err := Apply(c, 1, []Op{{Op: OpRemoveDevice, Name: "d2"}})
	if err != nil {
		t.Fatal(err)
	}
	// d2's only net "a" stays (d1 uses it); no identity change.
	if len(st.Touched) != 0 {
		t.Errorf("Touched = %v, want none", st.Touched)
	}
	st, err = Apply(c, 2, []Op{{Op: OpRemoveDevice, Name: "d1"}})
	if err != nil {
		t.Fatal(err)
	}
	// Both nets float and are removed with d1.
	want := []string{"a", "b"}
	if !reflect.DeepEqual(st.Touched, want) {
		t.Errorf("Touched = %v, want %v", st.Touched, want)
	}
	if st.NewNets != 0 || st.NetOld2New[0] != -1 || st.NetOld2New[1] != -1 {
		t.Errorf("net remap = %v newNets=%d", st.NetOld2New, st.NewNets)
	}
}

// TestStepFeedsCSRPatch asserts a Step's remap and dirty lists are exactly
// what csr.Patch needs: the patched view must be bit-identical to a rebuild.
func TestStepFeedsCSRPatch(t *testing.T) {
	c := gen.NandMesh(4, 5).C
	old := csr.New(c)
	dev := c.Devices[3].Name
	ops := []Op{
		{Op: OpRewirePin, Device: dev, Pin: 0, Net: c.Nets[8].Name},
		{Op: OpRemoveDevice, Name: c.Devices[10].Name},
		{Op: OpAddDevice, Name: "xtra", Type: "nmos", Classes: []int{1, 2, 2},
			Nets: []string{c.Nets[1].Name, c.Nets[2].Name, "newnet"}},
	}
	st, err := Apply(c, 1, ops)
	if err != nil {
		t.Fatal(err)
	}
	patched, rebuilt := csr.Patch(old, c, csr.Remap{Dev: st.DevOld2New, Net: st.NetOld2New},
		st.DirtyDevs, st.DirtyNets)
	if rebuilt {
		t.Fatalf("patch degenerated to rebuild on a %d-vertex graph", old.Size())
	}
	fresh := csr.New(c)
	if !reflect.DeepEqual(patched.Start, fresh.Start) ||
		!reflect.DeepEqual(patched.Adj, fresh.Adj) {
		t.Error("patched CSR differs from rebuild")
	}
}

func TestComposeChainsRemapsAndDirt(t *testing.T) {
	c := gen.InverterChain(8).C
	s1, err := Apply(c, 1, []Op{{Op: OpRemoveDevice, Name: c.Devices[2].Name}})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Apply(c, 2, []Op{{Op: OpRemoveDevice, Name: c.Devices[0].Name}})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Compose([]*Step{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.DevOld2New) != len(s1.DevOld2New) {
		t.Fatalf("composed remap length %d", len(ds.DevOld2New))
	}
	// Both removed devices map to -1; survivors map to their final index.
	removed := 0
	for old, nv := range ds.DevOld2New {
		if nv < 0 {
			removed++
			continue
		}
		if c.Devices[nv].Index != int(nv) {
			t.Errorf("dev %d: stale index", old)
		}
	}
	if removed != 2 {
		t.Errorf("removed = %d, want 2", removed)
	}
	for _, v := range ds.DirtyDevs {
		if int(v) >= c.NumDevices() {
			t.Errorf("dirty dev %d out of range", v)
		}
	}
	for _, v := range ds.DirtyNets {
		if int(v) >= c.NumNets() {
			t.Errorf("dirty net %d out of range", v)
		}
	}
	if _, err := Compose([]*Step{s2, s1}); err == nil {
		t.Error("out-of-order compose accepted")
	}
	if _, err := Compose(nil); err == nil {
		t.Error("empty compose accepted")
	}
}

func TestOpJSONRoundTrip(t *testing.T) {
	in := []Op{
		{Op: OpAddDevice, Name: "m1", Type: "pmos", Classes: []int{1, 2, 2}, Nets: []string{"a", "b", "VDD"}},
		{Op: OpRenameNet, Old: "a", New: "a2"},
		{Op: OpRewirePin, Device: "m1", Pin: 2, Net: "GND"},
	}
	blob, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out []Op
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip: %+v vs %+v", in, out)
	}
}

func TestPatternKey(t *testing.T) {
	opts := core.Options{Globals: []string{"VDD", "GND"}}
	k1 := PatternKey(stdcell.NAND2.Pattern(), opts)
	k2 := PatternKey(stdcell.NAND2.Pattern(), opts)
	if k1 != k2 {
		t.Error("key not deterministic")
	}
	if PatternKey(stdcell.INV.Pattern(), opts) == k1 {
		t.Error("different cells share a key")
	}
	seeded := opts
	seeded.Seed = 9
	if PatternKey(stdcell.NAND2.Pattern(), seeded) == k1 {
		t.Error("seed not in key")
	}
	bound := opts
	bound.Bind = map[string]string{"A": "n17"}
	if PatternKey(stdcell.NAND2.Pattern(), bound) == k1 {
		t.Error("bind not in key")
	}
}

func TestResultCache(t *testing.T) {
	rc := NewResultCache(2)
	if _, _, ok := rc.Lookup("c", "k1"); ok {
		t.Error("hit on empty cache")
	}
	st := &core.IncrementalState{}
	rc.Store("c", "k1", 3, st)
	rc.Store("c", "k1", 4, st) // update in place
	if v, got, ok := rc.Lookup("c", "k1"); !ok || v != 4 || got != st {
		t.Errorf("lookup: v=%d ok=%v", v, ok)
	}
	rc.Store("c", "k2", 1, st)
	rc.Store("c2", "k1", 1, st) // evicts the oldest ("c","k1")
	if rc.Len() != 2 {
		t.Errorf("len = %d, want 2", rc.Len())
	}
	if _, _, ok := rc.Lookup("c", "k1"); ok {
		t.Error("evicted entry still present")
	}
	rc.Store("c", "nil", 1, nil)
	if _, _, ok := rc.Lookup("c", "nil"); ok {
		t.Error("nil state cached")
	}
	if n := rc.Invalidate("c"); n != 1 {
		t.Errorf("invalidate dropped %d, want 1", n)
	}
	hits, misses, inv := rc.Counters()
	if hits == 0 || misses == 0 || inv != 1 {
		t.Errorf("counters: %d/%d/%d", hits, misses, inv)
	}
}
