package delta

import (
	"fmt"
	"sort"

	"subgemini/internal/core"
	"subgemini/internal/graph"
)

// Step records the effect of one edit batch on a circuit: the new version,
// the ops that produced it, how every pre-edit vertex index moved (or -1
// for removed vertices), which post-edit vertices the batch dirtied, and
// which net names changed identity.  A Step is exactly what csr.Patch needs
// to splice the flattened graph and, composed across versions, what
// core.FindIncremental needs to replay a cached run.
type Step struct {
	Version uint64 `json:"version"`
	Ops     []Op   `json:"ops"`

	// Old-index → new-index remaps; -1 marks a removed vertex.  Lengths are
	// the pre-edit device and net counts.
	DevOld2New []int32 `json:"dev_remap"`
	NetOld2New []int32 `json:"net_remap"`

	// NewDevs and NewNets are the post-edit vertex counts, so consecutive
	// steps can be validated and composed without the circuit at hand.
	NewDevs int `json:"new_devs"`
	NewNets int `json:"new_nets"`

	// Dirty vertices in post-edit index space, ascending.
	DirtyDevs []int32 `json:"dirty_devs"`
	DirtyNets []int32 `json:"dirty_nets"`

	// Touched lists net names whose identity changed (created, removed, or
	// either side of a rename), sorted.  The matcher falls back to a full
	// run when a pattern global or bind target appears here.
	Touched []string `json:"touched,omitempty"`
}

// Apply applies ops to the circuit in order and returns the Step describing
// the batch.  On error the circuit may have absorbed a prefix of the batch,
// so callers must apply to a discardable clone.
func Apply(c *graph.Circuit, version uint64, ops []Op) (*Step, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("delta: empty edit batch")
	}
	e := newEditor(c)
	for i, op := range ops {
		if err := e.apply(op); err != nil {
			return nil, fmt.Errorf("op %d: %w", i, err)
		}
	}
	return e.finish(version, ops), nil
}

// finish converts the editor's pointer snapshot into index remaps and dirty
// lists.  A snapshot pointer survives iff it still sits in the circuit's
// slice at its (possibly shifted) Index — the mutators keep Index fields
// current, so one bounds-checked comparison suffices.
func (e *editor) finish(version uint64, ops []Op) *Step {
	st := &Step{
		Version:    version,
		Ops:        ops,
		DevOld2New: make([]int32, len(e.oldDevs)),
		NetOld2New: make([]int32, len(e.oldNets)),
		NewDevs:    len(e.c.Devices),
		NewNets:    len(e.c.Nets),
	}
	for i, d := range e.oldDevs {
		if d.Index < len(e.c.Devices) && e.c.Devices[d.Index] == d {
			st.DevOld2New[i] = int32(d.Index)
		} else {
			st.DevOld2New[i] = -1
		}
	}
	for i, n := range e.oldNets {
		if n.Index < len(e.c.Nets) && e.c.Nets[n.Index] == n {
			st.NetOld2New[i] = int32(n.Index)
		} else {
			st.NetOld2New[i] = -1
		}
	}
	for d := range e.dirtyDev {
		if d.Index < len(e.c.Devices) && e.c.Devices[d.Index] == d {
			st.DirtyDevs = append(st.DirtyDevs, int32(d.Index))
		}
	}
	for n := range e.dirtyNet {
		if n.Index < len(e.c.Nets) && e.c.Nets[n.Index] == n {
			st.DirtyNets = append(st.DirtyNets, int32(n.Index))
		}
	}
	sort.Slice(st.DirtyDevs, func(i, j int) bool { return st.DirtyDevs[i] < st.DirtyDevs[j] })
	sort.Slice(st.DirtyNets, func(i, j int) bool { return st.DirtyNets[i] < st.DirtyNets[j] })
	for name := range e.touched {
		st.Touched = append(st.Touched, name)
	}
	sort.Strings(st.Touched)
	return st
}

// Compose folds consecutive steps into the DirtySet that carries a matcher
// state captured before steps[0] forward to the circuit after the last
// step.  Remaps chain (a vertex removed at any step stays removed), dirty
// vertices from every step are mapped forward to final index space, and
// Touched names accumulate.  Steps must be consecutive versions with
// matching dimensions.
func Compose(steps []*Step) (*core.DirtySet, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("delta: no steps to compose")
	}
	for i := 1; i < len(steps); i++ {
		prev, next := steps[i-1], steps[i]
		if next.Version != prev.Version+1 {
			return nil, fmt.Errorf("delta: non-consecutive steps: version %d follows %d", next.Version, prev.Version)
		}
		if len(next.DevOld2New) != prev.NewDevs || len(next.NetOld2New) != prev.NewNets {
			return nil, fmt.Errorf("delta: step %d dimensions %dx%d do not match prior step's %dx%d",
				next.Version, len(next.DevOld2New), len(next.NetOld2New), prev.NewDevs, prev.NewNets)
		}
	}

	ds := &core.DirtySet{
		DevOld2New: append([]int32(nil), steps[0].DevOld2New...),
		NetOld2New: append([]int32(nil), steps[0].NetOld2New...),
	}
	dirtyDev := make(map[int32]bool)
	dirtyNet := make(map[int32]bool)
	touched := make(map[string]bool)
	addDirty := func(m map[int32]bool, vs []int32) {
		for _, v := range vs {
			m[v] = true
		}
	}
	addDirty(dirtyDev, steps[0].DirtyDevs)
	addDirty(dirtyNet, steps[0].DirtyNets)
	for _, name := range steps[0].Touched {
		touched[name] = true
	}
	for _, st := range steps[1:] {
		forward := func(remap []int32, m map[int32]bool, base []int32) {
			for i, v := range base {
				if v >= 0 {
					base[i] = remap[v]
				}
			}
			moved := make(map[int32]bool, len(m))
			for v := range m {
				if nv := remap[v]; nv >= 0 {
					moved[nv] = true
				}
			}
			for k := range m {
				delete(m, k)
			}
			for k := range moved {
				m[k] = true
			}
		}
		forward(st.DevOld2New, dirtyDev, ds.DevOld2New)
		forward(st.NetOld2New, dirtyNet, ds.NetOld2New)
		addDirty(dirtyDev, st.DirtyDevs)
		addDirty(dirtyNet, st.DirtyNets)
		for _, name := range st.Touched {
			touched[name] = true
		}
	}
	for v := range dirtyDev {
		ds.DirtyDevs = append(ds.DirtyDevs, v)
	}
	for v := range dirtyNet {
		ds.DirtyNets = append(ds.DirtyNets, v)
	}
	sort.Slice(ds.DirtyDevs, func(i, j int) bool { return ds.DirtyDevs[i] < ds.DirtyDevs[j] })
	sort.Slice(ds.DirtyNets, func(i, j int) bool { return ds.DirtyNets[i] < ds.DirtyNets[j] })
	for name := range touched {
		ds.Touched = append(ds.Touched, name)
	}
	sort.Strings(ds.Touched)
	return ds, nil
}
