// Package delta implements the circuit mutation subsystem: a JSON edit-op
// vocabulary over stored circuits (add/remove device, add/remove/rename
// net, rewire pin), per-edit Steps that record how vertex indices moved and
// which vertices an edit dirtied, composition of consecutive steps into the
// core.DirtySet the incremental matcher consumes, a canonical pattern key,
// and a versioned result cache mapping (circuit, pattern) to the captured
// state of the last complete run.
//
// Edits apply to a clone of the stored circuit (the store's job), so a
// failed validation aborts the whole edit batch with the original circuit
// untouched, and in-flight matches against the old entry keep a consistent
// view (snapshot isolation).  All mutators preserve the relative order of
// surviving pins and connections — the property the incremental CSR patcher
// (csr.Patch) and Phase II outcome replay both rely on.
package delta

import (
	"fmt"

	"subgemini/internal/graph"
)

// Op kinds.
const (
	OpAddDevice    = "add_device"
	OpRemoveDevice = "remove_device"
	OpAddNet       = "add_net"
	OpRemoveNet    = "remove_net"
	OpRenameNet    = "rename_net"
	OpRewirePin    = "rewire_pin"
)

// Op is one JSON edit operation.  Fields are per-kind:
//
//	add_device:    name, type, classes (terminal class per pin), nets (net
//	               name per pin; absent nets are created)
//	remove_device: name (floating non-port, non-global nets are removed too)
//	add_net:       name, port, global
//	remove_net:    name (must have no connections; globals are refused)
//	rename_net:    old, new (globals are refused — they match by name)
//	rewire_pin:    device, pin, net (absent target nets are created)
type Op struct {
	Op      string   `json:"op"`
	Name    string   `json:"name,omitempty"`
	Type    string   `json:"type,omitempty"`
	Classes []int    `json:"classes,omitempty"`
	Nets    []string `json:"nets,omitempty"`
	Port    bool     `json:"port,omitempty"`
	Global  bool     `json:"global,omitempty"`
	Old     string   `json:"old,omitempty"`
	New     string   `json:"new,omitempty"`
	Device  string   `json:"device,omitempty"`
	Pin     int      `json:"pin,omitempty"`
	Net     string   `json:"net,omitempty"`
}

// editor accumulates the pointer snapshot and dirty marks of one Apply.
type editor struct {
	c        *graph.Circuit
	oldDevs  []*graph.Device
	oldNets  []*graph.Net
	dirtyDev map[*graph.Device]bool
	dirtyNet map[*graph.Net]bool
	touched  map[string]bool
}

func newEditor(c *graph.Circuit) *editor {
	return &editor{
		c:        c,
		oldDevs:  append([]*graph.Device(nil), c.Devices...),
		oldNets:  append([]*graph.Net(nil), c.Nets...),
		dirtyDev: make(map[*graph.Device]bool),
		dirtyNet: make(map[*graph.Net]bool),
		touched:  make(map[string]bool),
	}
}

// ensureNet resolves a net by name, creating (and marking as
// identity-touched) one when absent.  Created or not, the net is dirty:
// either it is new or a pin lands on it.
func (e *editor) ensureNet(name string) (*graph.Net, error) {
	if name == "" {
		return nil, fmt.Errorf("delta: empty net name")
	}
	n := e.c.NetByName(name)
	if n == nil {
		n = e.c.AddNet(name)
		e.touched[name] = true
	}
	e.dirtyNet[n] = true
	return n, nil
}

func (e *editor) apply(op Op) error {
	switch op.Op {
	case OpAddDevice:
		if op.Name == "" || op.Type == "" {
			return fmt.Errorf("delta: add_device needs name and type")
		}
		if op.Type == graph.WildcardType {
			return fmt.Errorf("delta: add_device %s: wildcard devices are for patterns only", op.Name)
		}
		if len(op.Classes) != len(op.Nets) || len(op.Nets) == 0 {
			return fmt.Errorf("delta: add_device %s: classes and nets must be non-empty and equal length", op.Name)
		}
		nets := make([]*graph.Net, len(op.Nets))
		classes := make([]graph.TermClass, len(op.Classes))
		for i, name := range op.Nets {
			n, err := e.ensureNet(name)
			if err != nil {
				return err
			}
			nets[i] = n
			if op.Classes[i] < 0 || op.Classes[i] > 255 {
				return fmt.Errorf("delta: add_device %s: terminal class %d out of range", op.Name, op.Classes[i])
			}
			classes[i] = graph.TermClass(op.Classes[i])
		}
		d, err := e.c.AddDevice(op.Name, op.Type, classes, nets)
		if err != nil {
			return fmt.Errorf("delta: %w", err)
		}
		e.dirtyDev[d] = true
		return nil

	case OpRemoveDevice:
		d := e.c.DeviceByName(op.Name)
		if d == nil {
			return fmt.Errorf("delta: remove_device: no device %q", op.Name)
		}
		// Nets left floating by this removal are themselves removed (unless
		// port or global); their identity changes, so record them touched.
		for _, p := range d.Pins {
			external := 0
			for _, conn := range p.Net.Conns {
				if conn.Dev != d {
					external++
				}
			}
			if external == 0 && !p.Net.Port && !p.Net.Global {
				e.touched[p.Net.Name] = true
			} else {
				e.dirtyNet[p.Net] = true
			}
		}
		if err := e.c.RemoveDevice(op.Name); err != nil {
			return fmt.Errorf("delta: %w", err)
		}
		return nil

	case OpAddNet:
		if op.Name == "" {
			return fmt.Errorf("delta: add_net needs a name")
		}
		if e.c.NetByName(op.Name) != nil {
			return fmt.Errorf("delta: add_net: net %q already exists", op.Name)
		}
		n := e.c.AddNet(op.Name)
		n.Port = op.Port
		if op.Global {
			e.c.MarkGlobal(op.Name)
		}
		e.touched[op.Name] = true
		e.dirtyNet[n] = true
		return nil

	case OpRemoveNet:
		n := e.c.NetByName(op.Name)
		if n == nil {
			return fmt.Errorf("delta: remove_net: no net %q", op.Name)
		}
		if n.Global {
			// Globals are matched by name across every pattern; removing one
			// is a semantic change that warrants a re-upload, not an edit.
			return fmt.Errorf("delta: remove_net: %q is global", op.Name)
		}
		if err := e.c.RemoveNet(op.Name); err != nil {
			return fmt.Errorf("delta: %w", err)
		}
		e.touched[op.Name] = true
		return nil

	case OpRenameNet:
		n := e.c.NetByName(op.Old)
		if n == nil {
			return fmt.Errorf("delta: rename_net: no net %q", op.Old)
		}
		if n.Global {
			return fmt.Errorf("delta: rename_net: %q is global", op.Old)
		}
		if err := e.c.RenameNet(op.Old, op.New); err != nil {
			return fmt.Errorf("delta: %w", err)
		}
		// Renames change identity only: no label in either phase depends on
		// a non-global net's name, so nothing is dirty — but bind targets
		// resolve by name, which Touched lets the matcher check.
		e.touched[op.Old] = true
		e.touched[op.New] = true
		return nil

	case OpRewirePin:
		d := e.c.DeviceByName(op.Device)
		if d == nil {
			return fmt.Errorf("delta: rewire_pin: no device %q", op.Device)
		}
		if op.Pin < 0 || op.Pin >= len(d.Pins) {
			return fmt.Errorf("delta: rewire_pin: device %q has no pin %d", op.Device, op.Pin)
		}
		target, err := e.ensureNet(op.Net)
		if err != nil {
			return err
		}
		old := d.Pins[op.Pin].Net
		if old == target {
			return nil
		}
		e.dirtyNet[old] = true
		e.dirtyDev[d] = true
		if err := e.c.RewirePin(op.Device, op.Pin, target); err != nil {
			return fmt.Errorf("delta: %w", err)
		}
		return nil

	default:
		return fmt.Errorf("delta: unknown op %q", op.Op)
	}
}
