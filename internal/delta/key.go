package delta

import (
	"fmt"
	"sort"
	"strings"

	"subgemini/internal/core"
	"subgemini/internal/graph"
)

// PatternKey returns a canonical encoding of everything that determines a
// match result besides the main circuit itself: the pattern's structure
// (types, terminal classes, adjacency by index), its port/global/bound
// nets, and the result-relevant matcher options.  Two runs with equal keys
// against the same circuit version produce bit-identical results, so the
// key addresses the versioned result cache.
//
// Net and device names are deliberately excluded except where matching
// itself is name-based: global nets (matched by name) and bind-target
// ports (resolved by name).  Workers and MaxInstances are excluded —
// worker count never changes results, and a cached state from a truncated
// run replays correctly under any limit because outcomes are per-candidate
// truths independent of where the instance cap cut the scan.
func PatternKey(pat *graph.Circuit, opts core.Options) string {
	var b strings.Builder
	for _, d := range pat.Devices {
		b.WriteString("d ")
		b.WriteString(d.Type)
		for _, p := range d.Pins {
			fmt.Fprintf(&b, " %d:%d", p.Class, p.Net.Index)
		}
		b.WriteByte('\n')
	}
	bound := make(map[string]string)
	for port, target := range opts.Bind {
		bound[port] = target
	}
	for _, n := range pat.Nets {
		b.WriteString("n")
		if n.Port {
			b.WriteString(" port")
		}
		if n.Global {
			fmt.Fprintf(&b, " global %q", n.Name)
		}
		if target, ok := bound[n.Name]; ok {
			fmt.Fprintf(&b, " bind %q=%q", n.Name, target)
		}
		b.WriteByte('\n')
	}
	globals := append([]string(nil), opts.Globals...)
	sort.Strings(globals)
	fmt.Fprintf(&b, "o globals=%q seed=%d depth=%d policy=%d ablate=%v,%v\n",
		globals, opts.Seed, opts.MaxGuessDepth, opts.Policy,
		opts.AblateDegreeCheck, opts.AblateGlobalFold)
	return b.String()
}
