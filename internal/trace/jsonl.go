package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// SchemaV1 identifies the JSON Lines trace format this package writes: the
// first line of a trace file is a header object {"schema": SchemaV1}, and
// every following line is one Event in emission order.  The schema id is
// versioned so readers (cmd/tracefmt, external tooling) can reject formats
// they do not understand; see EXPERIMENTS.md "Tracing & profiling" for the
// field-by-field description.
const SchemaV1 = "subgemini-trace/v1"

// header is the first line of a JSONL trace stream.
type header struct {
	Schema string `json:"schema"`
}

// JSONLWriter streams events as JSON Lines (one compact JSON object per
// line) prefixed by a schema header.  It is safe for concurrent use; write
// errors are sticky and reported by Err rather than panicking mid-match.
type JSONLWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONLWriter wraps w and immediately writes the SchemaV1 header line.
// The caller owns w; call Flush (or check Err) before closing it.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	bw := bufio.NewWriter(w)
	j := &JSONLWriter{bw: bw, enc: json.NewEncoder(bw)}
	j.err = j.enc.Encode(header{Schema: SchemaV1})
	return j
}

// Event appends e as one JSON line.  After the first write error the
// writer goes silent; the error is available from Err.
func (j *JSONLWriter) Event(e Event) {
	j.mu.Lock()
	if j.err == nil {
		j.err = j.enc.Encode(e)
	}
	j.mu.Unlock()
}

// Flush drains the internal buffer to the underlying writer and returns
// the first error observed, if any.
func (j *JSONLWriter) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err == nil {
		j.err = j.bw.Flush()
	}
	return j.err
}

// Err returns the first write or encode error, without flushing.
func (j *JSONLWriter) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// ReadJSONL parses a JSONL trace stream produced by JSONLWriter: it
// validates the schema header and returns the events in file order.
// Unknown fields are ignored so a v1 reader tolerates additive growth.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("trace: empty stream (no schema header)")
	}
	var h header
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return nil, fmt.Errorf("trace: malformed header line: %w", err)
	}
	if h.Schema != SchemaV1 {
		return nil, fmt.Errorf("trace: unsupported schema %q (want %q)", h.Schema, SchemaV1)
	}
	var events []Event
	line := 1
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}
