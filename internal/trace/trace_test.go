package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestCollectorRing(t *testing.T) {
	c := NewCollector(3)
	for i := 1; i <= 5; i++ {
		c.Event(Event{Kind: KindPhase1Pass, Pass: i})
	}
	got := c.Events()
	if len(got) != 3 {
		t.Fatalf("retained %d events, want 3", len(got))
	}
	for i, want := range []int{3, 4, 5} {
		if got[i].Pass != want {
			t.Errorf("event %d has pass %d, want %d (oldest-first order)", i, got[i].Pass, want)
		}
	}
	if c.Total() != 5 {
		t.Errorf("Total = %d, want 5", c.Total())
	}
	if c.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", c.Dropped())
	}
	c.Reset()
	if len(c.Events()) != 0 || c.Total() != 0 {
		t.Error("Reset did not clear the collector")
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Event(Event{Kind: KindPhase2Candidate})
			}
		}()
	}
	wg.Wait()
	if c.Total() != 800 {
		t.Errorf("Total = %d, want 800", c.Total())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf strings.Builder
	w := NewJSONLWriter(&buf)
	in := []Event{
		{Kind: KindRunStart, Circuit: "chip", Pattern: "NAND2", Devices: 100, Nets: 40},
		{Kind: KindPhase1Pass, Pass: 1, Side: SideNets, PatternValid: 3, PatternCorrupt: 2,
			PatternPartitions: 2, MainActive: 30, MainPruned: 10},
		{Kind: KindCandidateVector, KeyVertex: "N4", CVSize: 2},
		{Kind: KindPhase2Candidate, Candidate: "N13", Passes: 4, Backtracks: 1, DurationNS: 1500},
		{Kind: KindPhase2Candidate, Candidate: "N14", Matched: true, Passes: 7, DurationNS: 2500},
		{Kind: KindRunEnd, Instances: 1, Candidates: 2},
	}
	for _, e := range in {
		w.Event(e)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), `{"schema":"subgemini-trace/v1"}`) {
		t.Errorf("stream does not start with the schema header: %q", buf.String()[:40])
	}
	out, err := ReadJSONL(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round-tripped %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("event %d round-tripped as %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestReadJSONLRejectsBadSchema(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader(`{"schema":"other/v9"}` + "\n")); err == nil {
		t.Error("unknown schema accepted")
	}
	if _, err := ReadJSONL(strings.NewReader("")); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Error("malformed header accepted")
	}
}

func TestMulti(t *testing.T) {
	a, b := NewCollector(8), NewCollector(8)
	m := Multi(a, nil, b)
	m.Event(Event{Kind: KindRunStart})
	if a.Total() != 1 || b.Total() != 1 {
		t.Errorf("Multi delivered to (%d, %d) sinks, want (1, 1)", a.Total(), b.Total())
	}
}

func TestNopEventNoAllocs(t *testing.T) {
	var tr Tracer = Nop{}
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Event(Event{Kind: KindPhase2Candidate, Candidate: "N14", Matched: true, Passes: 7, DurationNS: 1})
	})
	if allocs != 0 {
		t.Errorf("Nop.Event allocates %.1f times per event, want 0", allocs)
	}
}

func TestRenderTables(t *testing.T) {
	var buf strings.Builder
	events := []Event{
		{Kind: KindRunStart, Circuit: "paperG", Pattern: "paperS", Devices: 7, Nets: 9},
		{Kind: KindPhase1Pass, Pass: 1, Side: SideNets, PatternValid: 1, PatternCorrupt: 5,
			PatternPartitions: 1, MainActive: 2, MainPruned: 7},
		{Kind: KindPhase1Pass, Pass: 1, Side: SideDevices, PatternValid: 0, PatternCorrupt: 4,
			PatternPartitions: 0, MainActive: 7, MainPruned: 0},
		{Kind: KindCandidateVector, KeyVertex: "N4", CVSize: 2},
		{Kind: KindPhase2Candidate, Candidate: "N13", Passes: 4},
		{Kind: KindPhase2Candidate, Candidate: "N14", Matched: true, Passes: 7, Guesses: 1, DurationNS: 3000},
		{Kind: KindRunEnd, Instances: 1, Candidates: 2},
	}
	if err := Render(&buf, events); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"run: pattern paperS in circuit paperG (7 devices, 9 nets)",
		"Phase I relabeling:",
		"S valid", "S partitions", "G pruned",
		"key vertex N4 (net), |CV| = 2",
		"Phase II candidates:",
		"N13", "no match", "N14", "MATCH",
		"run end: 1 instance(s) from 2 candidate(s)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestRenderEmptyCV(t *testing.T) {
	var buf strings.Builder
	if err := Render(&buf, []Event{{Kind: KindCandidateVector}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty candidate vector") {
		t.Errorf("empty-CV rendering wrong: %q", buf.String())
	}
}
