package trace

import "sync"

// Collector is an in-memory ring-buffered sink: it keeps the newest
// Capacity events and counts the rest as dropped, so a long-running match
// can stay traced with bounded memory.  It is safe for concurrent use
// (FindParallel workers emit concurrently).
type Collector struct {
	mu    sync.Mutex
	buf   []Event
	next  int    // ring write position once the buffer is full
	total uint64 // events ever observed
}

// NewCollector returns a Collector retaining the newest capacity events;
// capacity <= 0 selects 4096.
func NewCollector(capacity int) *Collector {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Collector{buf: make([]Event, 0, capacity)}
}

// Event records e, evicting the oldest event when the ring is full.
func (c *Collector) Event(e Event) {
	c.mu.Lock()
	c.total++
	if len(c.buf) < cap(c.buf) {
		c.buf = append(c.buf, e)
	} else {
		c.buf[c.next] = e
		c.next = (c.next + 1) % len(c.buf)
	}
	c.mu.Unlock()
}

// Events returns a copy of the retained events, oldest first.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, 0, len(c.buf))
	out = append(out, c.buf[c.next:]...)
	out = append(out, c.buf[:c.next]...)
	return out
}

// Total returns how many events were observed, including dropped ones.
func (c *Collector) Total() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Dropped returns how many events were evicted from the ring.
func (c *Collector) Dropped() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total - uint64(len(c.buf))
}

// Reset discards all retained events and zeroes the counters.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.buf = c.buf[:0]
	c.next = 0
	c.total = 0
	c.mu.Unlock()
}
