// Package trace is the matcher's structured observability layer: a
// low-overhead, pluggable event sink that internal/core emits into at the
// algorithm's phase boundaries.  Where internal/stats answers "how much did
// the whole run cost", trace answers "what happened, in order": one event
// per Phase I relabeling pass (which side relabeled, how many pattern
// vertices stayed valid, how many partitions they form, how much of the
// main graph survives the consistency prune), one event for the
// candidate-vector selection (key vertex, |CV|), and one event per Phase II
// candidate (matched or failed, relabeling passes, guesses, backtracks,
// wall time) — exactly the per-stage data the paper's worked example
// (Fig. 2/4 and Table 1) walks through.
//
// The zero-cost contract: a nil core.Options.Tracer emits nothing and adds
// no work to the hot loops, and the no-op Nop sink adds zero allocations
// per event (events are plain structs passed by value; asserted by
// TestNopTracerNoAllocs in internal/core).  Sinks provided here:
//
//   - Nop: discards events; the explicit form of "tracing off".
//   - Collector: a fixed-capacity ring buffer keeping the newest events in
//     memory, for tests, tools, and embedding.
//   - JSONLWriter: streams events as JSON Lines under the versioned schema
//     SchemaV1 ("subgemini-trace/v1"), the on-disk format written by
//     `subgemini -trace out.jsonl` and read back by `tracefmt`.
//   - Multi: fans one event stream out to several sinks.
//
// Render turns an event sequence back into the human-readable pass/
// candidate tables that cmd/tracefmt prints and ALGORITHM.md embeds.
//
// Concurrency: core.Find emits from a single goroutine, but FindParallel
// emits candidate events from every worker, so a Tracer shared with a
// parallel run must be safe for concurrent use.  Collector and JSONLWriter
// are; Nop trivially is.
package trace

// Kind discriminates the event variants.  Every Event carries exactly one
// kind; the other fields are meaningful only for the kinds documented on
// each constant.
type Kind string

const (
	// KindRunStart opens a matching run: Circuit and Pattern name the two
	// graphs, Devices/Nets give the main graph's size.
	KindRunStart Kind = "run_start"
	// KindPhase1Pass records one Phase I relabeling pass over one vertex
	// side: Pass (1-based iteration), Side, the pattern's valid/corrupt
	// split and valid-partition count, and the main graph's active/pruned
	// split after the consistency check.
	KindPhase1Pass Kind = "phase1_pass"
	// KindCandidateVector records the Phase I outcome: KeyVertex (empty
	// when no candidates survive), KeyIsDevice, and CVSize.
	KindCandidateVector Kind = "candidate_vector"
	// KindPhase2Candidate records one Phase II candidate verification:
	// Candidate names the postulated image of the key vertex, Matched says
	// whether a verified instance was built, and Passes/Guesses/Backtracks/
	// DurationNS give the effort the candidate cost.
	KindPhase2Candidate Kind = "phase2_candidate"
	// KindRunEnd closes a run: Instances found and Candidates examined.
	KindRunEnd Kind = "run_end"
)

// Side tells which vertex kind a Phase I pass relabeled.
type Side string

const (
	SideNets    Side = "nets"
	SideDevices Side = "devices"
)

// Event is one trace record.  It is a single flat struct rather than a
// per-kind type so emission never allocates (values are passed on the
// stack) and so the JSONL encoding stays a one-line-per-event format;
// fields not used by an event's Kind are zero and omitted from JSON.
type Event struct {
	Kind Kind `json:"kind"`

	// KindRunStart / KindRunEnd.
	Circuit string `json:"circuit,omitempty"`
	Pattern string `json:"pattern,omitempty"`
	Devices int    `json:"devices,omitempty"`
	Nets    int    `json:"nets,omitempty"`

	// KindPhase1Pass.
	Pass              int  `json:"pass,omitempty"`
	Side              Side `json:"side,omitempty"`
	PatternValid      int  `json:"pattern_valid,omitempty"`
	PatternCorrupt    int  `json:"pattern_corrupt,omitempty"`
	PatternPartitions int  `json:"pattern_partitions,omitempty"`
	MainActive        int  `json:"main_active,omitempty"`
	MainPruned        int  `json:"main_pruned,omitempty"`

	// KindCandidateVector.
	KeyVertex   string `json:"key_vertex,omitempty"`
	KeyIsDevice bool   `json:"key_is_device,omitempty"`
	CVSize      int    `json:"cv_size,omitempty"`

	// KindPhase2Candidate.
	Candidate  string `json:"candidate,omitempty"`
	Matched    bool   `json:"matched,omitempty"`
	Passes     int    `json:"passes,omitempty"`
	Guesses    int    `json:"guesses,omitempty"`
	Backtracks int    `json:"backtracks,omitempty"`
	BallSize   int    `json:"ball_size,omitempty"` // region engine: extracted ball vertices
	DurationNS int64  `json:"duration_ns,omitempty"`

	// KindRunEnd.
	Instances  int `json:"instances,omitempty"`
	Candidates int `json:"candidates,omitempty"`
}

// Tracer is the pluggable sink the matcher emits into.  Implementations
// must not retain the Event past the call (copy it if needed — Collector
// does), must not panic, and should return quickly: Event is called from
// inside the matching loops.
type Tracer interface {
	Event(Event)
}

// Nop is the no-op sink: every event is discarded.  It exists so callers
// can thread an always-non-nil Tracer through their plumbing and so the
// overhead tests have an explicit "tracing enabled but free" baseline.
type Nop struct{}

// Event discards e.
func (Nop) Event(Event) {}

// Multi fans events out to every sink in order.  A nil entry is skipped.
// Multi itself adds no synchronization: it is as concurrency-safe as its
// least safe element.
func Multi(sinks ...Tracer) Tracer {
	filtered := make([]Tracer, 0, len(sinks))
	for _, t := range sinks {
		if t != nil {
			filtered = append(filtered, t)
		}
	}
	return multi(filtered)
}

type multi []Tracer

func (m multi) Event(e Event) {
	for _, t := range m {
		t.Event(e)
	}
}
