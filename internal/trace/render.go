package trace

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"
)

// Render formats an event sequence as the per-run tables cmd/tracefmt
// prints and ALGORITHM.md embeds: a Phase I relabeling table (one row per
// pass, the paper's Fig. 2/4 viewed as counts), the candidate-vector
// selection line, and a Phase II candidate table (one row per candidate,
// the outcome summary of the paper's Table 1 walkthrough).  Events from
// several runs render as consecutive sections.
func Render(w io.Writer, events []Event) error {
	r := renderer{w: w}
	for _, e := range events {
		switch e.Kind {
		case KindRunStart:
			r.flush()
			fmt.Fprintf(w, "run: pattern %s in circuit %s (%d devices, %d nets)\n",
				e.Pattern, e.Circuit, e.Devices, e.Nets)
		case KindPhase1Pass:
			r.passes = append(r.passes, e)
		case KindCandidateVector:
			r.flushPhase1()
			if e.CVSize == 0 {
				fmt.Fprintf(w, "phase1: empty candidate vector — no instance can exist\n")
			} else {
				kind := "net"
				if e.KeyIsDevice {
					kind = "device"
				}
				fmt.Fprintf(w, "phase1: key vertex %s (%s), |CV| = %d\n", e.KeyVertex, kind, e.CVSize)
			}
		case KindPhase2Candidate:
			r.cands = append(r.cands, e)
		case KindRunEnd:
			r.flush()
			fmt.Fprintf(w, "run end: %d instance(s) from %d candidate(s)\n\n", e.Instances, e.Candidates)
		}
	}
	r.flush()
	if wr, ok := w.(interface{ Err() error }); ok {
		return wr.Err()
	}
	return nil
}

// renderer buffers pass and candidate events so each table is emitted
// complete, whatever order sections arrive in.
type renderer struct {
	w      io.Writer
	passes []Event
	cands  []Event
}

func (r *renderer) flush() {
	r.flushPhase1()
	r.flushPhase2()
}

func (r *renderer) flushPhase1() {
	if len(r.passes) == 0 {
		return
	}
	fmt.Fprintln(r.w, "Phase I relabeling:")
	tw := tabwriter.NewWriter(r.w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "pass\tside\tS valid\tS corrupt\tS partitions\tG active\tG pruned")
	for _, e := range r.passes {
		fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%d\t%d\t%d\n",
			e.Pass, e.Side, e.PatternValid, e.PatternCorrupt, e.PatternPartitions,
			e.MainActive, e.MainPruned)
	}
	tw.Flush()
	r.passes = r.passes[:0]
}

func (r *renderer) flushPhase2() {
	if len(r.cands) == 0 {
		return
	}
	fmt.Fprintln(r.w, "Phase II candidates:")
	tw := tabwriter.NewWriter(r.w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "candidate\toutcome\tpasses\tguesses\tbacktracks\ttime")
	for _, e := range r.cands {
		outcome := "no match"
		if e.Matched {
			outcome = "MATCH"
		}
		// Durations are "-" when absent — docgen strips them so generated
		// documentation tables stay byte-for-byte reproducible.
		dur := "-"
		if e.DurationNS > 0 {
			dur = time.Duration(e.DurationNS).Round(time.Microsecond).String()
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%s\n",
			e.Candidate, outcome, e.Passes, e.Guesses, e.Backtracks, dur)
	}
	tw.Flush()
	r.cands = r.cands[:0]
}
