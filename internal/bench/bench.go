// Package bench implements the experiment harness that regenerates the
// paper's evaluation artifacts (DESIGN.md experiments E4–E9).  Each
// experiment returns typed rows; cmd/benchtab formats them as the text
// tables recorded in EXPERIMENTS.md, and the module-root benchmarks drive
// the same functions under testing.B.
package bench

import (
	"fmt"
	"time"

	"subgemini/internal/baseline"
	"subgemini/internal/core"
	"subgemini/internal/extract"
	"subgemini/internal/gen"
	"subgemini/internal/graph"
	"subgemini/internal/sprecog"
	"subgemini/internal/stats"
	"subgemini/internal/stdcell"
)

// Rails are the special signals used by every experiment.
var Rails = []string{"VDD", "GND"}

// Workload is one (circuit, pattern) pair of the evaluation suite.
type Workload struct {
	Name    string
	Build   func() *gen.Design
	Pattern *stdcell.CellDef
}

// Row is one line of the E4 results table.
type Row struct {
	Circuit   string
	Devices   int
	Nets      int
	Pattern   string
	Expected  int
	Found     int
	CVSize    int
	Matched   int // total devices inside matched instances
	P1        time.Duration
	P2        time.Duration
	Total     time.Duration
	PerDevice time.Duration // Total / max(Matched, 1)
	Report    stats.Report
}

// Suite returns the E4 evaluation suite.  scale 1 is the paper-comparable
// configuration; smaller scales are used by -quick runs and tests.
func Suite(scale int) []Workload {
	if scale < 1 {
		scale = 1
	}
	s := scale
	return []Workload{
		{fmt.Sprintf("adder%d", 16*s), func() *gen.Design { return gen.RippleAdder(16 * s) }, stdcell.FA},
		{fmt.Sprintf("adder%d", 64*s), func() *gen.Design { return gen.RippleAdder(64 * s) }, stdcell.FA},
		{fmt.Sprintf("adder%d/INV", 64*s), func() *gen.Design { return gen.RippleAdder(64 * s) }, stdcell.INV},
		{fmt.Sprintf("mult%d", 8*s), func() *gen.Design { return gen.ArrayMultiplier(8 * s) }, stdcell.FA},
		{fmt.Sprintf("mult%d/AND2", 8*s), func() *gen.Design { return gen.ArrayMultiplier(8 * s) }, stdcell.AND2},
		{fmt.Sprintf("counter%d", 32*s), func() *gen.Design { return gen.RippleCounter(32 * s) }, stdcell.DFF},
		{fmt.Sprintf("shiftreg%d", 64*s), func() *gen.Design { return gen.ShiftRegister(64 * s) }, stdcell.DFF},
		{fmt.Sprintf("sram%dx%d", 16*s, 16*s), func() *gen.Design { return gen.SRAMArray(16*s, 16*s) }, stdcell.SRAM6T},
		{fmt.Sprintf("alu%d", 16*s), func() *gen.Design { return gen.ALUDatapath(16 * s) }, stdcell.MUX2},
		{fmt.Sprintf("alu%d/DFF", 16*s), func() *gen.Design { return gen.ALUDatapath(16 * s) }, stdcell.DFF},
		{fmt.Sprintf("regfile%dx%d", 8*s, 8*s), func() *gen.Design { return gen.RegisterFile(8*s, 8*s) }, stdcell.TINV},
		{fmt.Sprintf("rand%d/NAND2", 1000*s), func() *gen.Design { return gen.RandomLogic(1000*s, 32, 11) }, stdcell.NAND2},
		{fmt.Sprintf("rand%d/XOR2", 1000*s), func() *gen.Design { return gen.RandomLogic(1000*s, 32, 11) }, stdcell.XOR2},
	}
}

// Run executes one workload and returns its results-table row.
func Run(w Workload) (Row, error) {
	d := w.Build()
	expected := d.Expected(w.Pattern)
	res, err := core.Find(d.C, w.Pattern.Pattern(), core.Options{Globals: Rails})
	if err != nil {
		return Row{}, fmt.Errorf("bench: %s: %w", w.Name, err)
	}
	matched := res.Report.MatchedDevices
	per := time.Duration(0)
	if matched > 0 {
		per = res.Report.Total() / time.Duration(matched)
	}
	return Row{
		Circuit:   w.Name,
		Devices:   d.C.NumDevices(),
		Nets:      d.C.NumNets(),
		Pattern:   w.Pattern.Name,
		Expected:  expected,
		Found:     len(res.Instances),
		CVSize:    res.Report.CVSize,
		Matched:   matched,
		P1:        res.Report.Phase1Duration,
		P2:        res.Report.Phase2Duration,
		Total:     res.Report.Total(),
		PerDevice: per,
		Report:    res.Report,
	}, nil
}

// ResultsTable runs the whole E4 suite.
func ResultsTable(scale int) ([]Row, error) {
	var rows []Row
	for _, w := range Suite(scale) {
		row, err := Run(w)
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ScalePoint is one point of the E5 linearity figure.
type ScalePoint struct {
	Series    string
	Param     int // generator parameter (bits, gates, rows)
	Devices   int // main-circuit size
	Matched   int // total devices inside matched instances
	Instances int
	Total     time.Duration
	PerDevice float64 // microseconds per matched device
}

// ScalingSeries runs the E5 sweep: the same pattern matched in growing
// circuits.  The paper's claim is that Total grows linearly with Matched,
// i.e. PerDevice stays flat.  quick truncates each sweep to its three
// smallest sizes.
func ScalingSeries(quick bool) ([]ScalePoint, error) {
	type series struct {
		name    string
		pattern *stdcell.CellDef
		build   func(n int) *gen.Design
		params  []int
	}
	sweeps := []series{
		{"FA-in-adder", stdcell.FA, gen.RippleAdder, []int{64, 128, 256, 512, 1024, 2048}},
		{"NAND2-in-rand", stdcell.NAND2, func(n int) *gen.Design { return gen.RandomLogic(n, 32, 11) }, []int{250, 500, 1000, 2000, 4000}},
		{"6T-in-sram", stdcell.SRAM6T, func(n int) *gen.Design { return gen.SRAMArray(n, n) }, []int{8, 16, 32, 64}},
	}
	var pts []ScalePoint
	for _, sw := range sweeps {
		params := sw.params
		if quick && len(params) > 3 {
			params = params[:3]
		}
		for _, param := range params {
			d := sw.build(param)
			res, err := core.Find(d.C, sw.pattern.Pattern(), core.Options{Globals: Rails})
			if err != nil {
				return pts, err
			}
			matched := res.Report.MatchedDevices
			per := 0.0
			if matched > 0 {
				per = float64(res.Report.Total().Microseconds()) / float64(matched)
			}
			pts = append(pts, ScalePoint{
				Series:    sw.name,
				Param:     param,
				Devices:   d.C.NumDevices(),
				Matched:   matched,
				Instances: len(res.Instances),
				Total:     res.Report.Total(),
				PerDevice: per,
			})
		}
	}
	return pts, nil
}

// BaselineRow is one line of the E6 comparison: SubGemini vs the
// reference [6]-style exhaustive DFS ("plain") and vs a modern DFS with
// degree-feasibility pruning ("pruned").
type BaselineRow struct {
	Circuit      string
	Devices      int
	Pattern      string
	Instances    int
	SubGemini    time.Duration
	Pruned       time.Duration
	Plain        time.Duration
	PlainSteps   int
	PlainAborted bool // plain DFS hit its step budget and was cut off
	Speedup      float64
}

// plainStepBudget bounds the exhaustive DFS so pathological rows terminate;
// an aborted row is reported as a lower bound.
const plainStepBudget = 50_000_000

// BaselineComparison runs E6.  The regular workloads show all three
// matchers agreeing; the inverter-tree rows are the adversarial case the
// paper describes in §IV ("one wrong guess early on can cause much wasted
// time"): a chain pattern in a fanout tree, where exhaustive DFS attempts
// every tree path and SubGemini's Phase I filter answers almost instantly.
func BaselineComparison(scale int) ([]BaselineRow, error) {
	if scale < 1 {
		scale = 1
	}
	type tcase struct {
		name    string
		build   func() *gen.Design
		pattern func() *graph.Circuit
	}
	cell := func(c *stdcell.CellDef) func() *graph.Circuit {
		return func() *graph.Circuit { return c.Pattern() }
	}
	cases := []tcase{
		{"adder16", func() *gen.Design { return gen.RippleAdder(16) }, cell(stdcell.FA)},
		{"counter8", func() *gen.Design { return gen.RippleCounter(8) }, cell(stdcell.DFF)},
		{"sram8x8", func() *gen.Design { return gen.SRAMArray(8, 8) }, cell(stdcell.SRAM6T)},
		{"rand1000", func() *gen.Design { return gen.RandomLogic(1000, 32, 11) }, cell(stdcell.NAND2)},
		{"invtree10+chain", func() *gen.Design { return gen.InverterTree(10, 6) }, func() *graph.Circuit { return gen.ChainPattern(6) }},
		{"nandmesh16+chain", func() *gen.Design { return gen.NandMesh(16, 14) }, func() *graph.Circuit { return gen.NandChainPattern(14) }},
		{"switchgrid12", func() *gen.Design { return gen.SwitchGrid(12, 0) }, func() *graph.Circuit { return gen.PassChainPattern(12) }},
		{"switchgrid12+chain", func() *gen.Design { return gen.SwitchGrid(12, 12) }, func() *graph.Circuit { return gen.PassChainPattern(12) }},
	}
	var rows []BaselineRow
	for _, c := range cases {
		d := c.build()
		t0 := time.Now()
		res, err := core.Find(d.C.Clone(), c.pattern(), core.Options{Globals: Rails})
		if err != nil {
			return rows, err
		}
		subT := time.Since(t0)

		t0 = time.Now()
		pruned, err := baseline.Find(d.C.Clone(), c.pattern(), baseline.Options{Globals: Rails})
		if err != nil {
			return rows, err
		}
		prunedT := time.Since(t0)

		t0 = time.Now()
		plain, err := baseline.Find(d.C.Clone(), c.pattern(), baseline.Options{Globals: Rails, Plain: true, MaxSteps: plainStepBudget})
		if err != nil {
			return rows, err
		}
		plainT := time.Since(t0)

		if len(pruned.Instances) != len(res.Instances) {
			return rows, fmt.Errorf("bench: %s: core found %d, pruned DFS %d", c.name, len(res.Instances), len(pruned.Instances))
		}
		if !plain.Aborted && len(plain.Instances) != len(res.Instances) {
			return rows, fmt.Errorf("bench: %s: core found %d, plain DFS %d", c.name, len(res.Instances), len(plain.Instances))
		}
		speed := 0.0
		if subT > 0 {
			speed = float64(plainT) / float64(subT)
		}
		rows = append(rows, BaselineRow{
			Circuit:      c.name,
			Devices:      d.C.NumDevices(),
			Pattern:      c.pattern().Name,
			Instances:    len(res.Instances),
			SubGemini:    subT,
			Pruned:       prunedT,
			Plain:        plainT,
			PlainSteps:   plain.Steps,
			PlainAborted: plain.Aborted,
			Speedup:      speed,
		})
	}
	return rows, nil
}

// CoverageRow is one line of the E9 comparison between the classical ad
// hoc gate recognizer (channel graphs + series-parallel analysis,
// paper §I refs [1,5,7]) and SubGemini library extraction.
type CoverageRow struct {
	Circuit     string
	Devices     int
	AdhocGates  int     // gates the recognizer identified
	AdhocNamed  int     // of those, standard-named (INV/NANDx/AOI/...)
	AdhocCover  float64 // fraction of MOS devices inside recognized gates
	SubgCells   int     // cells SubGemini extraction claimed
	SubgCover   float64 // fraction of devices claimed by extraction
	AdhocTime   time.Duration
	SubgTime    time.Duration
	Description string
}

// ExtractionCoverage runs E9: both methods attempt to structure the same
// transistor netlists.  The paper's §I argument is that ad hoc methods
// "do not generalize to different subcircuit structures": they do well on
// static combinational logic and collapse on pass-transistor circuits,
// while library matching handles both with one algorithm.
func ExtractionCoverage() ([]CoverageRow, error) {
	lib := stdcell.All()
	cases := []struct {
		name  string
		build func() *gen.Design
		desc  string
	}{
		{"mult4", func() *gen.Design { return gen.ArrayMultiplier(4) }, "static combinational (AND2 + FA)"},
		{"counter16", func() *gen.Design { return gen.RippleCounter(16) }, "sequential (DFF + INV)"},
		{"shiftreg16", func() *gen.Design { return gen.ShiftRegister(16) }, "sequential (DFF chain)"},
		{"sram8x8", func() *gen.Design { return gen.SRAMArray(8, 8) }, "memory (6T cells + periphery)"},
		{"switchgrid8", func() *gen.Design { return gen.SwitchGrid(8, 0) }, "pass-transistor fabric"},
	}
	var rows []CoverageRow
	for _, c := range cases {
		d := c.build()
		mosTotal := d.TransistorCount()

		t0 := time.Now()
		rec, err := sprecog.Recognize(d.C.Clone(), "VDD", "GND")
		adhocTime := time.Since(t0)
		adhocGates, adhocNamed, adhocCovered := 0, 0, 0
		if err == nil {
			adhocGates = len(rec.Gates)
			adhocCovered = rec.RecognizedDevices()
			for _, g := range rec.Gates {
				if g.Kind != "CMOS" {
					adhocNamed++
				}
			}
		} else {
			return rows, fmt.Errorf("bench: %s: %w", c.name, err)
		}

		work := d.C.Clone()
		t0 = time.Now()
		extracted, err := extract.Cells(work, lib, extract.Options{Globals: Rails})
		subgTime := time.Since(t0)
		if err != nil {
			return rows, fmt.Errorf("bench: %s: %w", c.name, err)
		}
		cells, claimed := 0, 0
		for _, e := range extracted {
			cells += e.Count
			if cell := stdcell.Get(e.Cell); cell != nil {
				claimed += e.Count * cell.NumTransistors()
			}
		}
		rows = append(rows, CoverageRow{
			Circuit:     c.name,
			Devices:     mosTotal,
			AdhocGates:  adhocGates,
			AdhocNamed:  adhocNamed,
			AdhocCover:  float64(adhocCovered) / float64(mosTotal),
			SubgCells:   cells,
			SubgCover:   float64(claimed) / float64(mosTotal),
			AdhocTime:   adhocTime,
			SubgTime:    subgTime,
			Description: c.desc,
		})
	}
	return rows, nil
}

// AblationRow is one line of the E7/E8 ablation table.
type AblationRow struct {
	Case      string
	CVSize    int
	Instances int
	Total     time.Duration
	Note      string
}

// Ablation runs E7 (special signals on/off) and E8 (early abort on an
// impossible pattern).
func Ablation() ([]AblationRow, error) {
	var rows []AblationRow

	// E7: DFF in a shift register, with and without special rails.
	d := gen.ShiftRegister(64)
	res, err := core.Find(d.C.Clone(), stdcell.DFF.Pattern(), core.Options{Globals: Rails})
	if err != nil {
		return rows, err
	}
	rows = append(rows, AblationRow{
		Case: "DFF/shiftreg64 rails special", CVSize: res.Report.CVSize,
		Instances: len(res.Instances), Total: res.Report.Total(),
		Note: "rails pre-matched by name, never labeled",
	})
	res, err = core.Find(d.C.Clone(), stdcell.DFF.Pattern(), core.Options{})
	if err != nil {
		return rows, err
	}
	rows = append(rows, AblationRow{
		Case: "DFF/shiftreg64 rails ordinary", CVSize: res.Report.CVSize,
		Instances: len(res.Instances), Total: res.Report.Total(),
		Note: "rails labeled like any net (Fig. 7 regime)",
	})

	// E7b: INV in a multiplier — the pattern most affected by Fig. 7.
	m := gen.ArrayMultiplier(6)
	res, err = core.Find(m.C.Clone(), stdcell.INV.Pattern(), core.Options{Globals: Rails})
	if err != nil {
		return rows, err
	}
	rows = append(rows, AblationRow{
		Case: "INV/mult6 rails special", CVSize: res.Report.CVSize,
		Instances: len(res.Instances), Total: res.Report.Total(),
		Note: "true inverters only",
	})
	res, err = core.Find(m.C.Clone(), stdcell.INV.Pattern(), core.Options{})
	if err != nil {
		return rows, err
	}
	rows = append(rows, AblationRow{
		Case: "INV/mult6 rails ordinary", CVSize: res.Report.CVSize,
		Instances: len(res.Instances), Total: res.Report.Total(),
		Note: "includes Fig. 7 false inverters inside gates",
	})

	// Design ablations (DESIGN.md §4): the Phase II match-time degree
	// check, measured where it matters most (false candidates in a
	// degree-uniform pass-transistor fabric) ...
	sg := gen.SwitchGrid(12, 12)
	pass := gen.PassChainPattern(12)
	res, err = core.Find(sg.C.Clone(), pass, core.Options{Globals: Rails})
	if err != nil {
		return rows, err
	}
	rows = append(rows, AblationRow{
		Case: "passchain12/switchgrid12 degree check on", CVSize: res.Report.CVSize,
		Instances: len(res.Instances), Total: res.Report.Total(),
		Note: fmt.Sprintf("%d guesses, %d backtracks", res.Report.Guesses, res.Report.Backtracks),
	})
	res, err = core.Find(sg.C.Clone(), pass, core.Options{Globals: Rails, AblateDegreeCheck: true})
	if err != nil {
		return rows, err
	}
	rows = append(rows, AblationRow{
		Case: "passchain12/switchgrid12 degree check off", CVSize: res.Report.CVSize,
		Instances: len(res.Instances), Total: res.Report.Total(),
		Note: fmt.Sprintf("%d guesses, %d backtracks", res.Report.Guesses, res.Report.Backtracks),
	})

	// ... and the global-fold of Phase I initial device labels, measured on
	// a rail-anchored single-transistor rule pattern with two planted
	// violations in a large adder.
	big := gen.RippleAdder(256)
	mosCls := []graph.TermClass{graph.ClassDS, graph.ClassGate, graph.ClassDS}
	vddNet := big.C.NetByName("VDD")
	big.C.MustAddDevice("bad1", "nmos", mosCls, []*graph.Net{vddNet, big.C.AddNet("en1"), big.C.AddNet("x1")})
	big.C.MustAddDevice("bad2", "nmos", mosCls, []*graph.Net{vddNet, big.C.AddNet("en2"), big.C.AddNet("x2")})
	pullup := extract.StandardRules()[0].Pattern
	res, err = core.Find(big.C.Clone(), pullup.Clone(), core.Options{Globals: Rails})
	if err != nil {
		return rows, err
	}
	rows = append(rows, AblationRow{
		Case: "nmos-pullup/adder256 global fold on", CVSize: res.Report.CVSize,
		Instances: len(res.Instances), Total: res.Report.Total(),
		Note: "rail pins folded into initial device labels",
	})
	res, err = core.Find(big.C.Clone(), pullup.Clone(), core.Options{Globals: Rails, AblateGlobalFold: true})
	if err != nil {
		return rows, err
	}
	rows = append(rows, AblationRow{
		Case: "nmos-pullup/adder256 global fold off", CVSize: res.Report.CVSize,
		Instances: len(res.Instances), Total: res.Report.Total(),
		Note: "type-only initial device labels",
	})

	// E8: impossible pattern — Phase I must abort without Phase II work.
	a := gen.RippleAdder(256)
	res, err = core.Find(a.C, stdcell.SRAM6T.Pattern(), core.Options{Globals: Rails})
	if err != nil {
		return rows, err
	}
	note := "early abort"
	if !res.Report.EarlyAbort && res.Report.Candidates > 0 {
		note = fmt.Sprintf("examined %d candidates", res.Report.Candidates)
	}
	rows = append(rows, AblationRow{
		Case: "SRAM6T/adder256 (absent)", CVSize: res.Report.CVSize,
		Instances: len(res.Instances), Total: res.Report.Total(),
		Note: note,
	})
	return rows, nil
}

// Phase1Row is one line of the Phase I engine table: one engine
// configuration run over one workload, keeping the fastest Phase I time of
// several iterations (candidate generation is deterministic, so min is the
// noise-robust statistic).
type Phase1Row struct {
	Circuit string
	Devices int
	Pattern string
	Engine  string // "legacy" or "csr"
	Workers int
	Passes  int
	Pruned  int
	CVSize  int
	Found   int
	P1      time.Duration
}

// Phase1Scaling measures the Phase I engines against each other: the
// pointer-walking legacy engine, the data-oriented CSR engine, and the CSR
// engine striped over growing worker counts, across circuit sizes.  All
// configurations must agree on passes, prunes, |CV|, and instances — the
// table doubles as a coarse differential check.  quick truncates to the
// smallest circuit and a single iteration.
func Phase1Scaling(quick bool) ([]Phase1Row, error) {
	sizes := []int{250, 1000, 4000}
	iters := 5
	if quick {
		sizes = sizes[:1]
		iters = 1
	}
	configs := []struct {
		engine  string
		workers int
		opts    core.Options
	}{
		{"legacy", 1, core.Options{LegacyPhase1: true}},
		{"csr", 1, core.Options{}},
		{"csr", 2, core.Options{Workers: 2}},
		{"csr", 4, core.Options{Workers: 4}},
	}
	var rows []Phase1Row
	for _, n := range sizes {
		d := gen.RandomLogic(n, 32, 11)
		var ref *Phase1Row
		for _, cfg := range configs {
			opts := cfg.opts
			opts.Globals = Rails
			m, err := core.NewMatcher(d.C, opts)
			if err != nil {
				return rows, err
			}
			row := Phase1Row{
				Circuit: fmt.Sprintf("rand%d", n),
				Devices: d.C.NumDevices(),
				Pattern: stdcell.NAND2.Name,
				Engine:  cfg.engine,
				Workers: cfg.workers,
			}
			for it := 0; it < iters; it++ {
				res, err := m.Find(stdcell.NAND2.Pattern())
				if err != nil {
					return rows, err
				}
				if it == 0 {
					row.Passes = res.Report.Phase1Passes
					row.Pruned = res.Report.Phase1Pruned
					row.CVSize = res.Report.CVSize
					row.Found = len(res.Instances)
					row.P1 = res.Report.Phase1Duration
				} else if res.Report.Phase1Duration < row.P1 {
					row.P1 = res.Report.Phase1Duration
				}
			}
			if ref == nil {
				r := row
				ref = &r
			} else if row.Passes != ref.Passes || row.Pruned != ref.Pruned ||
				row.CVSize != ref.CVSize || row.Found != ref.Found {
				return rows, fmt.Errorf("bench: rand%d: %s/w%d disagrees with %s/w%d (passes %d/%d pruned %d/%d |CV| %d/%d found %d/%d)",
					n, row.Engine, row.Workers, ref.Engine, ref.Workers,
					row.Passes, ref.Passes, row.Pruned, ref.Pruned,
					row.CVSize, ref.CVSize, row.Found, ref.Found)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
