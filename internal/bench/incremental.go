package bench

import (
	"fmt"
	"sync"
	"time"

	"subgemini/internal/core"
	"subgemini/internal/delta"
	"subgemini/internal/gen"
	"subgemini/internal/graph"
	"subgemini/internal/sweep"
)

// IncrementalRow is one line of the incremental-matching table: after an
// edit batch of a given size, how refreshing results through the delta
// engine compares against recomputing from scratch, at both granularities
// the daemon serves — a single-pattern re-match (the interactive operation
// after PATCH) and a whole-library re-sweep.  Per-pattern instance counts
// of the replaying and from-scratch sweeps must agree exactly, so the
// table doubles as a differential check of the incremental engine.
type IncrementalRow struct {
	Circuit  string
	Devices  int
	Patterns int
	EditDevs int // devices rewired by the edit batch

	Instances  int
	Replayed   int // Phase II outcomes answered from the capture
	Recomputed int // Phase II outcomes verified fresh (the blast radius)

	Pattern     string        // the re-match probe pattern
	ReMatch     time.Duration // incremental re-match of Pattern after the edit
	ReMatchFull time.Duration // full re-match of Pattern, from scratch
	IncResweep  time.Duration // whole-library re-sweep replaying from the cache
	FullResweep time.Duration // whole-library re-sweep from scratch

	// Speedup is the acceptance ratio FullResweep / ReMatch: refreshing a
	// pattern's result after a small edit against the pre-delta way of
	// getting any fresh result, a full library re-sweep.
	Speedup float64
}

// benchCache is the minimal sweep.Incremental: states keyed by the
// structural pattern key, one shared dirty set installed after the edit.
type benchCache struct {
	mu     sync.Mutex
	states map[string]*core.IncrementalState
	ds     *core.DirtySet
}

func (c *benchCache) Lookup(pat *graph.Circuit, opts core.Options) (*core.IncrementalState, *core.DirtySet, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.states[delta.PatternKey(pat, opts)]
	if st == nil || c.ds == nil {
		return nil, nil, false
	}
	return st, c.ds, true
}

func (c *benchCache) Store(pat *graph.Circuit, opts core.Options, st *core.IncrementalState) {
	if st == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.states[delta.PatternKey(pat, opts)] = st
}

// reset restores the version-1 capture before a timed run: a warm run
// stores fresh post-edit states, and replaying those through the same
// dirty set again would be a different (cheaper) workload.
func (c *benchCache) reset(captured map[string]*core.IncrementalState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.states = make(map[string]*core.IncrementalState, len(captured))
	for key, st := range captured {
		c.states[key] = st
	}
}

// IncrementalScaling measures edit-size against re-match cost: capture a
// full library sweep, rewire k devices through the delta engine, then time
// refreshing results with and without the capture.  The CSR view and
// scratch pool are shared across runs exactly as the daemon's store shares
// them across requests; the post-edit view is built once per edit batch,
// mirroring the store's CSR patch on PATCH.  quick truncates to a small
// circuit, one edit size, and a single iteration.
func IncrementalScaling(quick bool) ([]IncrementalRow, error) {
	gates := 4000
	editSizes := []int{1, 2, 4, 8}
	iters := 5
	if quick {
		gates = 400
		editSizes = []int{2}
		iters = 1
	}
	const probe = "NAND2"
	lib := sweepLibrary()
	var probeLib []sweep.Pattern
	for _, p := range lib {
		if p.Name == probe {
			probeLib = []sweep.Pattern{p}
		}
	}
	var rows []IncrementalRow
	for _, k := range editSizes {
		// A fresh circuit per edit size: Apply mutates in place, and each
		// row's edit batch must land on the pristine version-1 graph.
		d := gen.RandomLogic(gates, 32, 11)
		c := d.C
		scratch := &core.ScratchPool{}

		cache := &benchCache{states: make(map[string]*core.IncrementalState)}
		view := core.NewCSR(c)
		if _, err := sweep.Run(c, lib, sweep.Options{Globals: Rails, CSR: view, Scratch: scratch, Incremental: cache}); err != nil {
			return rows, err
		}
		captured := make(map[string]*core.IncrementalState, len(cache.states))
		for key, st := range cache.states {
			captured[key] = st
		}

		ops := make([]delta.Op, k)
		for i := range ops {
			dev := c.Devices[(i*997+13)%len(c.Devices)]
			ops[i] = delta.Op{Op: delta.OpRewirePin, Device: dev.Name, Pin: 0, Net: fmt.Sprintf("eco%d", i)}
		}
		step, err := delta.Apply(c, 2, ops)
		if err != nil {
			return rows, err
		}
		ds, err := delta.Compose([]*delta.Step{step})
		if err != nil {
			return rows, err
		}
		cache.ds = ds
		view = core.NewCSR(c) // the store patches its view on PATCH; not part of re-match time

		row := IncrementalRow{
			Circuit:  c.Name,
			Devices:  c.NumDevices(),
			Patterns: len(lib),
			EditDevs: k,
			Pattern:  probe,
		}
		measure := func(patterns []sweep.Pattern, incremental bool) (*sweep.Report, time.Duration, error) {
			var best time.Duration
			var first *sweep.Report
			for it := 0; it < iters; it++ {
				opts := sweep.Options{Globals: Rails, CSR: view, Scratch: scratch}
				if incremental {
					cache.reset(captured)
					opts.Incremental = cache
				}
				start := time.Now()
				rep, err := sweep.Run(c, patterns, opts)
				if err != nil {
					return nil, 0, err
				}
				el := time.Since(start)
				if it == 0 {
					first, best = rep, el
				} else if el < best {
					best = el
				}
			}
			return first, best, nil
		}

		warm, incDur, err := measure(lib, true)
		if err != nil {
			return rows, err
		}
		if warm.Replayed == 0 {
			return rows, fmt.Errorf("bench: %s/k%d: incremental sweep replayed nothing; engine inert", c.Name, k)
		}
		row.IncResweep = incDur
		row.Instances = warm.Instances()
		row.Replayed = warm.Replayed
		row.Recomputed = warm.Recomputed

		full, fullDur, err := measure(lib, false)
		if err != nil {
			return rows, err
		}
		row.FullResweep = fullDur
		for i := range full.Results {
			if got, want := len(warm.Results[i].Instances), len(full.Results[i].Instances); got != want {
				return rows, fmt.Errorf("bench: %s/k%d: incremental found %d %s instances, full found %d",
					c.Name, k, got, full.Results[i].Name, want)
			}
		}

		if _, row.ReMatch, err = measure(probeLib, true); err != nil {
			return rows, err
		}
		if _, row.ReMatchFull, err = measure(probeLib, false); err != nil {
			return rows, err
		}
		if row.ReMatch > 0 {
			row.Speedup = float64(row.FullResweep) / float64(row.ReMatch)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
