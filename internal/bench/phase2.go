package bench

import (
	"fmt"
	"time"

	"subgemini/internal/core"
	"subgemini/internal/gen"
	"subgemini/internal/stdcell"
)

// Phase2Row is one line of the Phase II engine table: one engine run over
// one workload, keeping the fastest Phase II time of several iterations
// (candidate verification is deterministic, so min is the noise-robust
// statistic).
type Phase2Row struct {
	Circuit    string
	Devices    int
	Pattern    string
	Engine     string // "legacy" or "region"
	Candidates int
	Found      int
	Radius     int     // region engine: pattern eccentricity from the key vertex
	AvgBall    float64 // region engine: mean extracted-region size, vertices
	MaxBall    int     // region engine: largest extracted region, vertices
	P2         time.Duration
}

// Phase2Regions measures the Phase II engines against each other: the
// whole-graph legacy engine versus the region-localized engine that
// extracts a radius-bounded ball around each candidate and solves inside
// it.  Both engines must agree on candidates and instances — the table
// doubles as a coarse differential check (the bit-exact one is
// TestPhase2Differential).  The per-candidate win grows with the ratio of
// circuit size to region size, so the rand4000 row is where the paper-style
// locality argument shows up.  quick truncates to the smallest workload and
// a single iteration.
func Phase2Regions(quick bool) ([]Phase2Row, error) {
	type workload struct {
		name    string
		build   func() *gen.Design
		pattern *stdcell.CellDef
	}
	workloads := []workload{
		{"adder64", func() *gen.Design { return gen.RippleAdder(64) }, stdcell.FA},
		{"mult8", func() *gen.Design { return gen.ArrayMultiplier(8) }, stdcell.FA},
		{"rand1000", func() *gen.Design { return gen.RandomLogic(1000, 32, 11) }, stdcell.NAND2},
		{"rand4000", func() *gen.Design { return gen.RandomLogic(4000, 32, 11) }, stdcell.NAND2},
	}
	iters := 5
	if quick {
		workloads = workloads[:1]
		iters = 1
	}
	engines := []struct {
		name string
		opts core.Options
	}{
		{"legacy", core.Options{LegacyPhase2: true}},
		{"region", core.Options{}},
	}
	var rows []Phase2Row
	for _, w := range workloads {
		d := w.build()
		var ref *Phase2Row
		for _, eng := range engines {
			opts := eng.opts
			opts.Globals = Rails
			m, err := core.NewMatcher(d.C, opts)
			if err != nil {
				return rows, err
			}
			row := Phase2Row{
				Circuit: w.name,
				Devices: d.C.NumDevices(),
				Pattern: w.pattern.Name,
				Engine:  eng.name,
			}
			for it := 0; it < iters; it++ {
				res, err := m.Find(w.pattern.Pattern())
				if err != nil {
					return rows, err
				}
				if it == 0 {
					row.Candidates = res.Report.Candidates
					row.Found = len(res.Instances)
					row.Radius = res.Report.RegionRadius
					row.AvgBall = res.Report.RegionAvgSize()
					row.MaxBall = res.Report.RegionMaxSize
					row.P2 = res.Report.Phase2Duration
				} else if res.Report.Phase2Duration < row.P2 {
					row.P2 = res.Report.Phase2Duration
				}
			}
			if ref == nil {
				r := row
				ref = &r
			} else if row.Candidates != ref.Candidates || row.Found != ref.Found {
				return rows, fmt.Errorf("bench: %s: %s disagrees with %s (candidates %d/%d found %d/%d)",
					w.name, row.Engine, ref.Engine,
					row.Candidates, ref.Candidates, row.Found, ref.Found)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
