package bench

import (
	"fmt"
	"time"

	"subgemini/internal/core"
	"subgemini/internal/gen"
	"subgemini/internal/stdcell"
	"subgemini/internal/sweep"
)

// SweepRow is one line of the library-sweep table: a standard-cell library
// matched against one circuit, sequentially (a fresh matcher per pattern)
// and as one sweep over a given worker count, keeping the fastest time of
// several iterations.
type SweepRow struct {
	Circuit    string
	Devices    int
	Patterns   int
	Workers    int
	Instances  int
	Deduped    int
	Sequential time.Duration
	Sweep      time.Duration
	Speedup    float64
}

// sweepLibrary is the benchmark pattern set: a broad slice of the built-in
// library, small cells through the full adder and flip-flop.
func sweepLibrary() []sweep.Pattern {
	cells := []*stdcell.CellDef{
		stdcell.INV, stdcell.BUF, stdcell.NAND2, stdcell.NAND3,
		stdcell.NOR2, stdcell.AND2, stdcell.XOR2, stdcell.MUX2,
		stdcell.FA, stdcell.DFF,
	}
	lib := make([]sweep.Pattern, len(cells))
	for i, c := range cells {
		lib[i] = sweep.Pattern{Name: c.Name, Template: c.Pattern()}
	}
	return lib
}

// SweepScaling measures the library-sweep engine against the sequential
// loop it replaces, across circuit sizes and sweep worker counts.  The
// sequential and swept per-pattern instance counts must agree exactly, so
// the table doubles as a coarse differential check.  quick truncates to
// the smallest circuit and a single iteration.
func SweepScaling(quick bool) ([]SweepRow, error) {
	sizes := []int{4, 6, 8} // ArrayMultiplier width: devices grow quadratically
	iters := 3
	if quick {
		sizes = sizes[:1]
		iters = 1
	}
	workerCounts := []int{1, 2, 4}
	lib := sweepLibrary()
	var rows []SweepRow
	for _, n := range sizes {
		d := gen.ArrayMultiplier(n)

		// Sequential reference: a fresh matcher (and circuit view) per
		// pattern, exactly what a caller without the sweep engine writes.
		var seqDur time.Duration
		seqCounts := make([]int, len(lib))
		for it := 0; it < iters; it++ {
			start := time.Now()
			for i, p := range lib {
				m, err := core.NewMatcher(d.C, core.Options{Globals: Rails})
				if err != nil {
					return rows, err
				}
				res, err := m.Find(p.Template.Clone())
				if err != nil {
					return rows, err
				}
				seqCounts[i] = len(res.Instances)
			}
			if el := time.Since(start); it == 0 || el < seqDur {
				seqDur = el
			}
		}

		for _, w := range workerCounts {
			row := SweepRow{
				Circuit:    fmt.Sprintf("mult%d", n),
				Devices:    d.C.NumDevices(),
				Patterns:   len(lib),
				Workers:    w,
				Sequential: seqDur,
			}
			for it := 0; it < iters; it++ {
				start := time.Now()
				rep, err := sweep.Run(d.C, lib, sweep.Options{Globals: Rails, Workers: w})
				if err != nil {
					return rows, err
				}
				el := time.Since(start)
				if it == 0 {
					row.Instances = rep.Instances()
					row.Deduped = rep.Deduped
					row.Sweep = el
					for i := range rep.Results {
						if got := len(rep.Results[i].Instances); got != seqCounts[i] {
							return rows, fmt.Errorf("bench: mult%d/w%d: sweep found %d %s instances, sequential found %d",
								n, w, got, rep.Results[i].Name, seqCounts[i])
						}
					}
				} else if el < row.Sweep {
					row.Sweep = el
				}
			}
			if row.Sweep > 0 {
				row.Speedup = float64(row.Sequential) / float64(row.Sweep)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
