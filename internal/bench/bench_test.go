package bench

import "testing"

// The harness tests run every experiment at reduced scale and assert the
// structural properties EXPERIMENTS.md relies on, so a regression in the
// harness itself (not just the matcher) fails CI.

func TestResultsTableCountsExact(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in short mode")
	}
	rows, err := ResultsTable(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Suite(1)) {
		t.Fatalf("%d rows, want %d", len(rows), len(Suite(1)))
	}
	for _, r := range rows {
		if r.Found != r.Expected {
			t.Errorf("%s/%s: found %d, expected %d", r.Circuit, r.Pattern, r.Found, r.Expected)
		}
		if r.Found > 0 && r.CVSize < r.Found {
			t.Errorf("%s/%s: |CV| %d smaller than instance count %d (filter unsound)",
				r.Circuit, r.Pattern, r.CVSize, r.Found)
		}
		if r.Devices <= 0 || r.Nets <= 0 {
			t.Errorf("%s: degenerate workload", r.Circuit)
		}
	}
}

func TestScalingSeriesShape(t *testing.T) {
	pts, err := ScalingSeries(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no scaling points")
	}
	bySeries := map[string][]ScalePoint{}
	for _, p := range pts {
		bySeries[p.Series] = append(bySeries[p.Series], p)
		if p.Instances <= 0 || p.Matched <= 0 {
			t.Errorf("%s/%d: no instances matched", p.Series, p.Param)
		}
	}
	for name, series := range bySeries {
		if len(series) < 2 {
			t.Errorf("series %s has %d points, want >= 2", name, len(series))
			continue
		}
		for i := 1; i < len(series); i++ {
			if series[i].Matched <= series[i-1].Matched {
				t.Errorf("series %s not growing at point %d", name, i)
			}
		}
	}
}

func TestIncrementalScalingShape(t *testing.T) {
	rows, err := IncrementalScaling(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows in quick mode, want 1", len(rows))
	}
	r := rows[0]
	if r.Replayed == 0 {
		t.Error("incremental sweep replayed nothing; engine inert")
	}
	if r.Instances <= 0 {
		t.Errorf("no instances matched on %s", r.Circuit)
	}
	if r.ReMatch <= 0 || r.ReMatchFull <= 0 || r.IncResweep <= 0 || r.FullResweep <= 0 {
		t.Errorf("zero timing: %+v", r)
	}
	if r.Speedup <= 0 {
		t.Errorf("speedup %.2f, want > 0", r.Speedup)
	}
}

func TestAblationShape(t *testing.T) {
	rows, err := Ablation()
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) *AblationRow {
		for i := range rows {
			if rows[i].Case == name {
				return &rows[i]
			}
		}
		t.Fatalf("row %q missing", name)
		return nil
	}
	// Special signals shrink the false-instance count (Fig. 7).
	special := get("INV/mult6 rails special")
	ordinary := get("INV/mult6 rails ordinary")
	if ordinary.Instances <= special.Instances {
		t.Errorf("rails-ordinary found %d instances, special %d: expected more false hits without specials",
			ordinary.Instances, special.Instances)
	}
	// The degree check never changes counts, only effort.
	on := get("passchain12/switchgrid12 degree check on")
	off := get("passchain12/switchgrid12 degree check off")
	if on.Instances != off.Instances {
		t.Errorf("degree-check ablation changed the result: %d vs %d", on.Instances, off.Instances)
	}
	// The global fold shrinks the candidate vector dramatically.
	foldOn := get("nmos-pullup/adder256 global fold on")
	foldOff := get("nmos-pullup/adder256 global fold off")
	if foldOn.Instances != foldOff.Instances {
		t.Errorf("global-fold ablation changed the result: %d vs %d", foldOn.Instances, foldOff.Instances)
	}
	if foldOn.CVSize >= foldOff.CVSize {
		t.Errorf("global fold did not shrink CV: %d vs %d", foldOn.CVSize, foldOff.CVSize)
	}
	// E8: early abort examines nothing.
	abort := get("SRAM6T/adder256 (absent)")
	if abort.Instances != 0 || abort.CVSize != 0 {
		t.Errorf("early-abort row wrong: %+v", abort)
	}
}

func TestExtractionCoverageShape(t *testing.T) {
	rows, err := ExtractionCoverage()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]CoverageRow{}
	for _, r := range rows {
		byName[r.Circuit] = r
	}
	// Static logic: both methods cover everything.
	if r := byName["mult4"]; r.AdhocCover < 0.999 || r.SubgCover < 0.999 {
		t.Errorf("mult4 coverage: adhoc %.2f subg %.2f, want both 1.0", r.AdhocCover, r.SubgCover)
	}
	// Sequential and memory: the ad hoc method collapses, SubGemini holds.
	for _, name := range []string{"counter16", "shiftreg16", "sram8x8"} {
		r := byName[name]
		if r.AdhocCover > 0.5 {
			t.Errorf("%s: adhoc coverage %.2f, expected < 0.5 (pass structures defeat it)", name, r.AdhocCover)
		}
		if r.SubgCover < 0.9 {
			t.Errorf("%s: subgemini coverage %.2f, want >= 0.9", name, r.SubgCover)
		}
	}
	if r := byName["switchgrid8"]; r.AdhocGates != 0 {
		t.Errorf("switchgrid8: adhoc recognized %d gates, want 0", r.AdhocGates)
	}
}

func TestBaselineComparisonShape(t *testing.T) {
	if testing.Short() {
		t.Skip("plain-DFS rows take seconds")
	}
	rows, err := BaselineComparison(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 6 {
		t.Fatalf("%d rows, want >= 6", len(rows))
	}
	var grid *BaselineRow
	for i := range rows {
		if rows[i].Circuit == "switchgrid12" {
			grid = &rows[i]
		}
		if rows[i].SubGemini <= 0 || rows[i].Pruned <= 0 || rows[i].Plain <= 0 {
			t.Errorf("%s: zero timing", rows[i].Circuit)
		}
	}
	if grid == nil {
		t.Fatal("switchgrid12 row missing")
	}
	if grid.Instances != 0 {
		t.Errorf("switchgrid12 instances = %d, want 0", grid.Instances)
	}
	if grid.Speedup < 100 {
		t.Errorf("switchgrid12 speedup vs plain DFS = %.0fx, want >= 100x", grid.Speedup)
	}
	if grid.PlainSteps < 1_000_000 {
		t.Errorf("plain DFS steps = %d, expected millions on the fabric", grid.PlainSteps)
	}
}
