package store

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"subgemini/internal/delta"
	"subgemini/internal/faults"
	"subgemini/internal/gen"
)

// editOps is a benign single-op batch: move a device's pin 0 onto the
// named net (created if absent).  Always valid, always bumps the version.
func editOps(dev, net string) []delta.Op {
	return []delta.Op{{Op: delta.OpRewirePin, Device: dev, Pin: 0, Net: net}}
}

func TestApplyEditsVersionsAndIsolation(t *testing.T) {
	st, err := Open(Config{Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Put("chip", parseMain(t, nandSrc, "chip")); err != nil {
		t.Fatal(err)
	}

	// A handle acquired before the edit keeps seeing the old circuit.
	h, err := st.Acquire("chip")
	if err != nil {
		t.Fatal(err)
	}
	before := h.Circuit()

	dev := before.Devices[0].Name
	info, err := st.ApplyEdits("chip", editOps(dev, "spare1"))
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 2 {
		t.Errorf("version = %d, want 2", info.Version)
	}
	if before.NetByName("spare1") != nil {
		t.Error("edit mutated the old entry's circuit")
	}
	h.Release()

	h2, err := st.Acquire("chip")
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Release()
	after := h2.Circuit()
	if after == before {
		t.Error("edit did not install a fresh entry")
	}
	if after.NetByName("spare1") == nil {
		t.Error("edit missing from the new entry")
	}
	if got := after.Devices[0].Pins[0].Net.Name; got != "spare1" {
		t.Errorf("pin 0 on %q, want spare1", got)
	}
	// The patched CSR must describe the edited circuit.
	if h2.CSR().NumDevs != after.NumDevices() || h2.CSR().NumNets != after.NumNets() {
		t.Error("CSR view out of sync with edited circuit")
	}

	// Invalid batches leave the circuit and version untouched.
	if _, err := st.ApplyEdits("chip", []delta.Op{{Op: delta.OpRemoveDevice, Name: "nope"}}); err == nil {
		t.Fatal("invalid batch accepted")
	}
	if got, _ := st.Get("chip"); got.Version != 2 {
		t.Errorf("version after failed edit = %d, want 2", got.Version)
	}

	if _, err := st.ApplyEdits("ghost", editOps("x", "y")); err == nil {
		t.Error("edit of unknown circuit accepted")
	}
}

func TestStepsSince(t *testing.T) {
	st, err := Open(Config{Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	c := parseMain(t, nandSrc, "chip")
	dev := c.Devices[0].Name
	if _, err := st.Put("chip", c); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := st.ApplyEdits("chip", editOps(dev, "sp"+strings.Repeat("x", i+1))); err != nil {
			t.Fatal(err)
		}
	}
	steps, cur, ok := st.StepsSince("chip", 1)
	if !ok || cur != 4 || len(steps) != 3 {
		t.Fatalf("StepsSince(1): ok=%v cur=%d steps=%d", ok, cur, len(steps))
	}
	if steps[0].Version != 2 || steps[2].Version != 4 {
		t.Errorf("step versions %d..%d", steps[0].Version, steps[2].Version)
	}
	if _, cur, ok := st.StepsSince("chip", 4); !ok || cur != 4 {
		t.Errorf("StepsSince(current): ok=%v cur=%d", ok, cur)
	}
	if _, _, ok := st.StepsSince("chip", 9); ok {
		t.Error("StepsSince(future) ok")
	}
	if _, _, ok := st.StepsSince("ghost", 1); ok {
		t.Error("StepsSince(unknown) ok")
	}
	vl, err := st.Versions("chip")
	if err != nil || vl.Version != 4 || vl.SnapVersion != 1 || len(vl.Steps) != 3 {
		t.Errorf("Versions: %+v err=%v", vl, err)
	}
}

func TestEditLogRecoveryAndTornTail(t *testing.T) {
	defer faults.Reset()
	dir := t.TempDir()
	st, err := Open(Config{Dir: dir, Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	c := parseMain(t, nandSrc, "chip")
	dev := c.Devices[0].Name
	if _, err := st.Put("chip", c); err != nil {
		t.Fatal(err)
	}
	for _, net := range []string{"spareA", "spareB"} {
		if _, err := st.ApplyEdits("chip", editOps(dev, net)); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a kill: do NOT Close/Flush — recovery must come from the
	// snapshot plus the edit log alone.
	logPath := filepath.Join(dir, "circuits", "chip.log")
	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatalf("edit log missing: %v", err)
	}

	st2, err := Open(Config{Dir: dir, Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	info, _ := st2.Get("chip")
	if info.Version != 3 {
		t.Fatalf("recovered version = %d, want 3", info.Version)
	}
	h, err := st2.Acquire("chip")
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Circuit().Devices[0].Pins[0].Net.Name; got != "spareB" {
		t.Errorf("recovered pin net %q, want spareB", got)
	}
	h.Release()
	// Recovery also rebuilds the steps window.
	if steps, cur, ok := st2.StepsSince("chip", 1); !ok || cur != 3 || len(steps) != 2 {
		t.Errorf("recovered StepsSince: ok=%v cur=%d steps=%d", ok, cur, len(steps))
	}
	// Kill st2 too (no Close): Close would compact the log into the
	// snapshot, and the remaining cases need the uncompacted layout.

	// Tear the final record mid-line (kill during append): boot recovers
	// through the last complete record.
	if err := os.WriteFile(logPath, raw[:len(raw)-17], 0o644); err != nil {
		t.Fatal(err)
	}
	st3, err := Open(Config{Dir: dir, Globals: rails})
	if err != nil {
		t.Fatalf("boot with torn log tail: %v", err)
	}
	info, _ = st3.Get("chip")
	if info.Version != 2 {
		t.Errorf("torn-tail version = %d, want 2", info.Version)
	}
	st3.Close()

	// A corrupt record in the middle is not a torn tail: boot must refuse.
	lines := strings.SplitN(string(raw), "\n", 2)
	if err := os.WriteFile(logPath, []byte("garbage\n"+lines[1]), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir, Globals: rails}); err == nil {
		t.Error("boot accepted a corrupt mid-log record")
	}
}

func TestCompactionFoldsLog(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Config{Dir: dir, Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	c := parseMain(t, nandSrc, "chip")
	dev := c.Devices[0].Name
	if _, err := st.Put("chip", c); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < compactEvery; i++ {
		net := "sp" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		if _, err := st.ApplyEdits("chip", editOps(dev, net)); err != nil {
			t.Fatal(err)
		}
	}
	vl, err := st.Versions("chip")
	if err != nil {
		t.Fatal(err)
	}
	if vl.SnapVersion != vl.Version {
		t.Errorf("snapVersion=%d version=%d after compaction", vl.SnapVersion, vl.Version)
	}
	if _, err := os.Stat(filepath.Join(dir, "circuits", "chip.log")); !os.IsNotExist(err) {
		t.Errorf("edit log survives compaction: %v", err)
	}
	// Reboot sees the compacted state directly.
	st.Close()
	st2, err := Open(Config{Dir: dir, Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if info, _ := st2.Get("chip"); info.Version != vl.Version {
		t.Errorf("rebooted version = %d, want %d", info.Version, vl.Version)
	}
}

// TestFlushSkipsCleanEntries is the regression test for the snapshot write
// path: flushing must not re-serialize circuits whose snapshot already
// covers their version.  The write-snapshot fault point (armed in benign
// delay mode with unlimited count) counts the serializations.
func TestFlushSkipsCleanEntries(t *testing.T) {
	defer faults.Reset()
	dir := t.TempDir()
	st, err := Open(Config{Dir: dir, Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put("clean", parseMain(t, nandSrc, "clean")); err != nil {
		t.Fatal(err)
	}
	edited := parseMain(t, nandSrc, "edited")
	dev := edited.Devices[0].Name
	if _, err := st.Put("edited", edited); err != nil {
		t.Fatal(err)
	}

	if _, err := faults.ArmString("store.write-snapshot=delay:1ns:inf"); err != nil {
		t.Fatal(err)
	}
	base := faults.Fired("store.write-snapshot")

	// Flush with nothing dirty: zero snapshot writes.
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := faults.Fired("store.write-snapshot") - base; n != 0 {
		t.Errorf("clean flush wrote %d snapshot(s), want 0", n)
	}

	// One edit dirties one entry: exactly one snapshot write, and a second
	// flush is clean again.
	if _, err := st.ApplyEdits("edited", editOps(dev, "spare")); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := faults.Fired("store.write-snapshot") - base; n != 1 {
		t.Errorf("dirty flush wrote %d snapshot(s), want 1", n)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := faults.Fired("store.write-snapshot") - base; n != 1 {
		t.Errorf("second flush wrote again (total %d)", n)
	}
	if s := st.Stats(); s.Edits != 1 {
		t.Errorf("Stats.Edits = %d, want 1", s.Edits)
	}
}

func TestAppendLogFaultFailsEdit(t *testing.T) {
	defer faults.Reset()
	dir := t.TempDir()
	st, err := Open(Config{Dir: dir, Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	c := parseMain(t, nandSrc, "chip")
	dev := c.Devices[0].Name
	if _, err := st.Put("chip", c); err != nil {
		t.Fatal(err)
	}
	if _, err := faults.ArmString("store.append-log=error:1"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ApplyEdits("chip", editOps(dev, "spare")); err == nil {
		t.Fatal("edit succeeded despite log append fault")
	}
	if st.Healthy() {
		t.Error("store healthy after failed log append")
	}
	if info, _ := st.Get("chip"); info.Version != 1 {
		t.Errorf("version advanced to %d on failed edit", info.Version)
	}
	// The next edit (fault disarmed) succeeds and restores health.
	if _, err := st.ApplyEdits("chip", editOps(dev, "spare")); err != nil {
		t.Fatal(err)
	}
	if !st.Healthy() {
		t.Error("store unhealthy after successful edit")
	}
}

// TestConcurrentEditsAndMatches races PATCH-style edits against in-flight
// matches; run under -race, it pins the snapshot-isolation contract (a
// match sees one consistent circuit for its whole run).
func TestConcurrentEditsAndMatches(t *testing.T) {
	st, err := Open(Config{Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	d := gen.NandMesh(5, 6)
	if _, err := st.Put("mesh", d.C); err != nil {
		t.Fatal(err)
	}
	dev := d.C.Devices[0].Name

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				h, err := st.Acquire("mesh")
				if err != nil {
					t.Error(err)
					return
				}
				if n := match(t, h, "NAND2"); n == 0 {
					t.Error("match found nothing")
				}
				h.Release()
			}
		}()
	}
	for i := 0; i < 25; i++ {
		net := "cc" + string(rune('a'+i%26))
		if _, err := st.ApplyEdits("mesh", editOps(dev, net)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if info, _ := st.Get("mesh"); info.Version != 26 {
		t.Errorf("final version = %d, want 26", info.Version)
	}
}
