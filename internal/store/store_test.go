package store

import (
	"strings"
	"testing"

	"subgemini/internal/core"
	"subgemini/internal/gen"
	"subgemini/internal/graph"
	"subgemini/internal/netlist"
	"subgemini/internal/stdcell"
)

var rails = []string{"VDD", "GND"}

const nandSrc = `
.GLOBAL VDD GND
MP1 y a VDD pmos
MP2 y b VDD pmos
MN1 y a n1 nmos
MN2 n1 b GND nmos
MP3 z y VDD pmos
MN3 z y GND nmos
.END
`

func parseMain(t *testing.T, src, name string) *graph.Circuit {
	t.Helper()
	f, err := netlist.ParseString(src, name)
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := f.MainCircuit(name)
	if err != nil {
		t.Fatal(err)
	}
	return ckt
}

// match runs one FA (or given cell) match through a handle the way the
// server does: globals pre-marked via the entry lock, shared CSR and
// scratch pool.
func match(t *testing.T, h *Handle, cell string) int {
	t.Helper()
	pat := stdcell.Get(cell).Pattern()
	for _, g := range rails {
		pat.MarkGlobal(g)
	}
	h.RLockWithGlobals(rails)
	defer h.RUnlock()
	m, err := core.NewMatcher(h.Circuit(), core.Options{CSR: h.CSR(), Scratch: h.Scratch()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Find(pat)
	if err != nil {
		t.Fatal(err)
	}
	return len(res.Instances)
}

func TestPutAcquireDelete(t *testing.T) {
	st, err := Open(Config{Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	d := gen.RippleAdder(4)
	if _, err := st.Put("adder", d.C); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put("chip", parseMain(t, nandSrc, "chip")); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 2 {
		t.Fatalf("Len = %d, want 2", st.Len())
	}

	h, err := st.Acquire("adder")
	if err != nil {
		t.Fatal(err)
	}
	want := d.Expected(stdcell.FA)
	if got := match(t, h, "FA"); got != want {
		t.Errorf("FA matches = %d, want %d", got, want)
	}
	h.Release()
	h.Release() // double release is a no-op

	if _, err := st.Acquire("nope"); err == nil || !strings.Contains(err.Error(), "no such circuit") {
		t.Errorf("Acquire(nope) = %v, want not-found", err)
	}

	infos := st.List()
	if len(infos) != 2 || infos[0].Name != "adder" || infos[1].Name != "chip" {
		t.Fatalf("List = %+v", infos)
	}
	if infos[1].Devices != 6 || !infos[1].Resident || infos[1].Snapshot {
		t.Errorf("chip info = %+v, want 6 devices, resident, no snapshot", infos[1])
	}

	if err := st.Delete("chip"); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete("chip"); err == nil {
		t.Error("second delete succeeded")
	}
	if _, ok := st.Get("chip"); ok {
		t.Error("deleted entry still listed")
	}
}

func TestPutReplacementKeepsInFlightHandles(t *testing.T) {
	st, err := Open(Config{Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put("c", parseMain(t, nandSrc, "v1")); err != nil {
		t.Fatal(err)
	}
	h, err := st.Acquire("c")
	if err != nil {
		t.Fatal(err)
	}
	old := h.Circuit()
	if _, err := st.Put("c", gen.RippleAdder(2).C); err != nil {
		t.Fatal(err)
	}
	if h.Circuit() != old {
		t.Error("in-flight handle was retargeted by a replacement Put")
	}
	if got := match(t, h, "NAND2"); got != 1 {
		t.Errorf("match through old handle = %d, want 1", got)
	}
	h.Release()

	h2, err := st.Acquire("c")
	if err != nil {
		t.Fatal(err)
	}
	if h2.Circuit() == old {
		t.Error("new handle still sees the replaced circuit")
	}
	h2.Release()
}

func TestInvalidNames(t *testing.T) {
	st, _ := Open(Config{})
	for _, name := range []string{"", ".hidden", "-flag", "a/b", "a b", strings.Repeat("x", 65)} {
		if _, err := st.Put(name, parseMain(t, nandSrc, "c")); err == nil {
			t.Errorf("Put(%q) accepted an invalid name", name)
		}
	}
	for _, name := range []string{"a", "chip-2.final_v3", "X"} {
		if !ValidName(name) {
			t.Errorf("ValidName(%q) = false", name)
		}
	}
}

// TestEvictionAndReload: a budget that fits one adder demotes the colder
// entry once both are stored, and the demoted entry transparently reloads
// from its snapshot on the next Acquire with globals and matches intact.
func TestEvictionAndReload(t *testing.T) {
	dir := t.TempDir()
	budget := estimateBytes(gen.RippleAdder(4).C) * 3 / 2
	st, err := Open(Config{Dir: dir, MaxBytes: budget, Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	a := gen.RippleAdder(4)
	if _, err := st.Put("a", a.C); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put("b", gen.RippleAdder(4).C); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.Evictions != 1 || stats.Resident != 1 {
		t.Fatalf("after second Put: %+v, want 1 eviction, 1 resident", stats)
	}
	infoA, _ := st.Get("a")
	if infoA.Resident {
		t.Error("LRU entry a still resident under budget")
	}

	h, err := st.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	want := a.Expected(stdcell.FA)
	if got := match(t, h, "FA"); got != want {
		t.Errorf("reloaded circuit: FA matches = %d, want %d", got, want)
	}
	h.Release()
	if st.Stats().Reloads != 1 {
		t.Errorf("reloads = %d, want 1", st.Stats().Reloads)
	}
}

// TestEvictionSkipsReferencedAndMemoryOnly: entries pinned by a handle or
// without a snapshot are never demoted, even far over budget.
func TestEvictionSkipsReferencedAndMemoryOnly(t *testing.T) {
	// Memory-only store: budget exceeded but nothing evictable.
	st, _ := Open(Config{MaxBytes: 1, Globals: rails})
	if _, err := st.Put("a", parseMain(t, nandSrc, "a")); err != nil {
		t.Fatal(err)
	}
	if s := st.Stats(); s.Evictions != 0 || s.Resident != 1 {
		t.Errorf("memory-only store evicted: %+v", s)
	}

	// Durable store: a referenced entry is pinned.
	st2, err := Open(Config{Dir: t.TempDir(), MaxBytes: 1, Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Put("a", parseMain(t, nandSrc, "a")); err != nil {
		t.Fatal(err)
	}
	h, err := st2.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Put("b", parseMain(t, nandSrc, "b")); err != nil {
		t.Fatal(err)
	}
	infoA, _ := st2.Get("a")
	if !infoA.Resident {
		t.Error("referenced entry was demoted")
	}
	h.Release()
	// Releasing the pin lets the over-budget store demote it.
	infoA, _ = st2.Get("a")
	if infoA.Resident {
		t.Error("idle entry stayed resident over budget after release")
	}
}
