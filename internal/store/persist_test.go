package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"subgemini/internal/gen"
	"subgemini/internal/graph"
	"subgemini/internal/netlist"
	"subgemini/internal/stdcell"
)

const invSubckt = `
.GLOBAL VDD GND
.SUBCKT MYINV A Y
MP1 Y A VDD pmos
MN1 Y A GND nmos
.ENDS
`

// TestSnapshotRoundTrip: Put two circuits and a pattern, reopen the store
// on the same directory, and verify everything reloads — shapes, globals,
// display names, and matchability.
func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Config{Dir: dir, Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	a := gen.RippleAdder(4)
	if _, err := st.Put("adder", a.C); err != nil {
		t.Fatal(err)
	}
	chip := parseMain(t, nandSrc, "chip_v2")
	chip.MarkGlobal("y") // a mark made after parse; must survive via the manifest
	if _, err := st.Put("chip", chip); err != nil {
		t.Fatal(err)
	}
	f, err := netlist.ParseString(invSubckt, "lib")
	if err != nil {
		t.Fatal(err)
	}
	tpl, err := f.Pattern("MYINV")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SavePattern("MYINV", tpl); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(Config{Dir: dir, Globals: rails})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	infos := st2.List()
	if len(infos) != 2 {
		t.Fatalf("reloaded %d circuits, want 2: %+v", len(infos), infos)
	}
	ci, ok := st2.Get("chip")
	if !ok || ci.Display != "chip_v2" || ci.Devices != 6 {
		t.Errorf("chip info after reload = %+v (ok=%v)", ci, ok)
	}
	wantGlobals := map[string]bool{"VDD": true, "GND": true, "y": true}
	for _, g := range ci.Globals {
		delete(wantGlobals, g)
	}
	if len(wantGlobals) != 0 {
		t.Errorf("chip globals missing after reload: %v (have %v)", wantGlobals, ci.Globals)
	}

	h, err := st2.Acquire("adder")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := match(t, h, "FA"), a.Expected(stdcell.FA); got != want {
		t.Errorf("reloaded adder: FA matches = %d, want %d", got, want)
	}
	h.Release()

	pats := st2.Patterns()
	if pats["MYINV"] == nil || pats["MYINV"].NumDevices() != 2 {
		t.Errorf("pattern did not survive restart: %v", pats)
	}
}

// TestGateLevelSnapshotRoundTrip: a circuit with non-primitive device
// types (the shape extraction produces) cannot round-trip through the
// netlist writer, so it snapshots as graph JSON — and must reload with
// its typed devices intact.  Replacing it with a transistor-level circuit
// switches the snapshot back to .sp without leaving the .json behind.
func TestGateLevelSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Config{Dir: dir, Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New("gates")
	nets := []*graph.Net{g.AddNet("a"), g.AddNet("b"), g.AddNet("y")}
	if _, err := g.AddDevice("u1", "NAND2", []graph.TermClass{0, 1, 2}, nets); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put("gates", g); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, circuitsDir, "gates.json")); err != nil {
		t.Fatalf("gate-level circuit did not snapshot as JSON: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(Config{Dir: dir, Globals: rails})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	h, err := st2.Acquire("gates")
	if err != nil {
		t.Fatal(err)
	}
	if h.Circuit().NumDevices() != 1 || h.Circuit().Devices[0].Type != "NAND2" {
		t.Errorf("reloaded gate circuit = %d devices, type %q; want one NAND2",
			h.Circuit().NumDevices(), h.Circuit().Devices[0].Type)
	}
	h.Release()

	// Replacing with a transistor-level circuit switches formats cleanly.
	if _, err := st2.Put("gates", parseMain(t, nandSrc, "chip")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, circuitsDir, "gates.sp")); err != nil {
		t.Errorf("replacement did not snapshot as netlist: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, circuitsDir, "gates.json")); !os.IsNotExist(err) {
		t.Errorf("stale JSON snapshot survived the format switch: %v", err)
	}
}

// TestDeleteRemovesSnapshot: a deleted circuit does not reappear on reboot
// and its snapshot file is gone.
func TestDeleteRemovesSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Config{Dir: dir, Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put("chip", parseMain(t, nandSrc, "chip")); err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(dir, circuitsDir, "chip.sp")
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	if err := st.Delete("chip"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(snap); !os.IsNotExist(err) {
		t.Errorf("snapshot still on disk after delete: %v", err)
	}
	st2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != 0 {
		t.Errorf("deleted circuit reappeared after reboot: %+v", st2.List())
	}
}

// TestManifestCorruption: a mangled manifest is a clear boot error, not a
// silent empty store.
func TestManifestCorruption(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Config{Dir: dir, Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put("chip", parseMain(t, nandSrc, "chip")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(Config{Dir: dir})
	if err == nil {
		t.Fatal("corrupt manifest booted without error")
	}
	if !strings.Contains(err.Error(), "manifest") || !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("corruption error not descriptive: %v", err)
	}

	// A missing snapshot referenced by a healthy manifest is equally fatal.
	st, err = Open(Config{Dir: dir2(t), Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put("chip", parseMain(t, nandSrc, "chip")); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(st.dir, circuitsDir, "chip.sp")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: st.dir}); err == nil {
		t.Error("missing snapshot booted without error")
	}
}

func dir2(t *testing.T) string {
	t.Helper()
	return t.TempDir()
}

// TestUnsupportedManifestVersion guards the schema gate.
func TestUnsupportedManifestVersion(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(`{"version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir}); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future manifest version accepted: %v", err)
	}
}
