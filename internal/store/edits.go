package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"subgemini/internal/csr"
	"subgemini/internal/delta"
	"subgemini/internal/faults"
	"subgemini/internal/graph"
)

// Circuit edits.  Each ApplyEdits applies one batch of delta ops to a clone
// of the entry's circuit, patches the CSR view incrementally, and installs
// the result as a fresh entry with the next version number — in-flight
// matches keep the old entry alive through their handles, so a PATCH never
// disturbs a running match (snapshot isolation by construction).
//
// Durability mirrors a write-ahead log: the batch is appended to
// <dir>/circuits/<name>.log (fsynced JSONL, one record per version) before
// the new entry becomes visible, and boot replays every log record past the
// snapshot's version.  Snapshot compaction folds the log back into the
// snapshot once it grows past compactEvery records, and Flush compacts
// every dirty entry at shutdown.  A torn trailing log line (crash
// mid-append) is tolerated: the write was never acknowledged.

const (
	// compactEvery bounds the edit log: once a circuit accumulates this
	// many log records, the next edit rewrites the snapshot and empties the
	// log, so boot replay cost stays bounded.
	compactEvery = 64

	// stepsKeep bounds the in-memory Steps retained per entry for
	// StepsSince; incremental match states older than this many versions
	// behind fall back to a full run.
	stepsKeep = 64
)

func init() {
	faults.Register("store.append-log", "edit-log append during ApplyEdits (error fails the edit and marks the store unhealthy)")
}

// ApplyEdits applies one batch of edit ops to the named circuit, bumping
// its version.  A validation error leaves the stored circuit untouched.
func (st *Store) ApplyEdits(name string, ops []delta.Op) (Info, error) {
	st.editMu.Lock()
	defer st.editMu.Unlock()

	h, err := st.Acquire(name)
	if err != nil {
		return Info{}, err
	}
	defer h.Release()
	old := h.e

	h.RLock()
	clone := old.ckt.Clone()
	h.RUnlock()

	version := old.version + 1
	step, err := delta.Apply(clone, version, ops)
	if err != nil {
		return Info{}, err
	}
	view, rebuilt := csr.Patch(old.view, clone,
		csr.Remap{Dev: step.DevOld2New, Net: step.NetOld2New},
		step.DirtyDevs, step.DirtyNets)

	e := &Entry{
		name:        old.name,
		display:     old.display,
		file:        old.file,
		saved:       old.saved,
		ckt:         clone,
		view:        view,
		bytes:       estimateBytes(clone),
		resident:    true,
		devices:     clone.NumDevices(),
		nets:        clone.NumNets(),
		version:     version,
		snapVersion: old.snapVersion,
		logCount:    old.logCount + 1,
	}
	for _, n := range clone.Globals() {
		e.globals = append(e.globals, n.Name)
	}
	e.steps = append(append([]*delta.Step(nil), old.steps...), step)
	if len(e.steps) > stepsKeep {
		e.steps = e.steps[len(e.steps)-stepsKeep:]
	}

	// Log before install: the record is the authority boot replays, so an
	// edit must never be visible without it.
	if st.dir != "" && e.file != "" {
		if err := st.appendEditLog(name, version, ops); err != nil {
			return Info{}, err
		}
	}

	st.mu.Lock()
	if cur, ok := st.entries[name]; !ok || cur != old {
		// Replaced or deleted while we edited the clone; the log record we
		// appended belongs to a lineage that no longer exists, and Put/
		// Delete already removed the log file.
		st.mu.Unlock()
		return Info{}, fmt.Errorf("circuit %q was replaced during the edit; retry", name)
	} else {
		st.dropLocked(cur)
	}
	st.entries[name] = e
	e.elem = st.lru.PushFront(e)
	st.residentBytes += e.bytes
	st.edits++
	if rebuilt {
		st.csrRebuilds++
	}
	st.evictLocked()
	info := st.infoLocked(e)
	st.mu.Unlock()

	if st.dir != "" && e.file != "" {
		if e.logCount >= compactEvery {
			st.compactEntry(e)
		}
		if err := st.writeManifest(); err != nil {
			return info, err
		}
	}
	return info, nil
}

// StepsSince returns the Steps leading from the given version to the
// circuit's current version (empty when already current), plus the current
// version.  ok=false when the circuit is unknown, the version is ahead of
// the store, or the steps have aged out of the retained window — callers
// then fall back to a full re-match.
func (st *Store) StepsSince(name string, since uint64) (steps []*delta.Step, current uint64, ok bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, found := st.entries[name]
	if !found {
		return nil, 0, false
	}
	if since == e.version {
		return nil, e.version, true
	}
	if since > e.version {
		return nil, e.version, false
	}
	need := e.version - since
	if uint64(len(e.steps)) < need {
		return nil, e.version, false
	}
	tail := e.steps[uint64(len(e.steps))-need:]
	if tail[0].Version != since+1 {
		return nil, e.version, false
	}
	return append([]*delta.Step(nil), tail...), e.version, true
}

// VersionStep summarizes one retained edit step for the versions listing.
type VersionStep struct {
	Version uint64 `json:"version"`
	Ops     int    `json:"ops"`
}

// VersionLog describes a circuit's edit history for API responses.
type VersionLog struct {
	Name        string        `json:"name"`
	Version     uint64        `json:"version"`
	SnapVersion uint64        `json:"snap_version"`
	Steps       []VersionStep `json:"steps,omitempty"`
}

// Versions returns the named circuit's version state and retained steps.
func (st *Store) Versions(name string) (VersionLog, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.entries[name]
	if !ok {
		return VersionLog{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	vl := VersionLog{Name: name, Version: e.version, SnapVersion: e.snapVersion}
	for _, s := range e.steps {
		vl.Steps = append(vl.Steps, VersionStep{Version: s.Version, Ops: len(s.Ops)})
	}
	return vl, nil
}

// Flush writes snapshots for entries whose version is ahead of the on-disk
// snapshot, folds their edit logs, and rewrites the manifest.  Entries
// whose snapshot already covers the current version are skipped: a
// snapshot write is a full serialization plus fsync, so re-writing clean
// circuits would turn every manifest flush into O(store) disk traffic
// (TestFlushSkipsCleanEntries pins this).
func (st *Store) Flush() error {
	if st.dir == "" {
		return nil
	}
	st.editMu.Lock()
	defer st.editMu.Unlock()
	st.mu.Lock()
	var dirty []*Entry
	for _, e := range st.entries {
		if e.file != "" && e.resident && e.version != e.snapVersion {
			dirty = append(dirty, e)
		}
	}
	st.mu.Unlock()
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].name < dirty[j].name })
	var firstErr error
	for _, e := range dirty {
		if err := st.compactEntry(e); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := st.writeManifest(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// compactEntry folds an entry's edit log into a fresh snapshot.  The entry
// stays valid on failure (the log still holds the tail); the error feeds
// Healthy via the snapshot writer.
func (st *Store) compactEntry(e *Entry) error {
	e.markMu.RLock()
	file, err := st.writeSnapshot(e.name, e.ckt)
	e.markMu.RUnlock()
	if err != nil {
		st.log.Warn("circuit compaction failed", "circuit", e.name, "err", err)
		return err
	}
	if err := os.Remove(st.editLogPath(e.name)); err != nil && !os.IsNotExist(err) {
		st.log.Warn("removing folded edit log failed", "circuit", e.name, "err", err)
		return err
	}
	st.mu.Lock()
	e.file = file
	e.snapVersion = e.version
	e.logCount = 0
	e.saved = time.Now()
	st.mu.Unlock()
	st.log.Info("compacted circuit", "circuit", e.name, "version", e.version)
	return nil
}

// editLogRec is one JSONL record of a circuit's edit log.
type editLogRec struct {
	Version uint64     `json:"version"`
	Ops     []delta.Op `json:"ops"`
}

func (st *Store) editLogPath(name string) string {
	return filepath.Join(st.dir, circuitsDir, name+".log")
}

// appendEditLog durably appends one edit record.
func (st *Store) appendEditLog(name string, version uint64, ops []delta.Op) error {
	err := faults.Fire("store.append-log")
	if err == nil {
		blob, merr := json.Marshal(editLogRec{Version: version, Ops: ops})
		if merr != nil {
			err = merr
		} else {
			var f *os.File
			f, err = os.OpenFile(st.editLogPath(name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err == nil {
				_, err = f.Write(append(blob, '\n'))
				if serr := f.Sync(); err == nil {
					err = serr
				}
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
		}
	}
	st.noteIO(err)
	if err != nil {
		return fmt.Errorf("appending edit log for %q: %w", name, err)
	}
	return nil
}

// removeEditLog discards a circuit's edit log (replacement and deletion).
func (st *Store) removeEditLog(name string) {
	if st.dir == "" {
		return
	}
	os.Remove(st.editLogPath(name))
}

// replayEditLog applies the named circuit's edit log records past
// snapVersion to a freshly parsed snapshot, returning the resulting
// version, the replayed steps, and the record count.  A trailing line that
// fails to decode is tolerated (a crash mid-append tore it; the write was
// never acknowledged); a version gap or a record that fails to apply is
// corruption and a boot error.
func (st *Store) replayEditLog(name string, ckt *graph.Circuit, snapVersion uint64) (version uint64, steps []*delta.Step, logCount int, err error) {
	version = snapVersion
	raw, err := os.ReadFile(st.editLogPath(name))
	if os.IsNotExist(err) {
		return version, nil, 0, nil
	}
	if err != nil {
		return 0, nil, 0, err
	}
	lines := bytes.Split(raw, []byte("\n"))
	for i, line := range lines {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec editLogRec
		if derr := json.Unmarshal(line, &rec); derr != nil {
			rest := bytes.TrimSpace(bytes.Join(lines[i+1:], []byte("\n")))
			if len(rest) == 0 {
				st.log.Warn("edit log ends in a torn record; recovered", "circuit", name, "through_version", version)
				break
			}
			return 0, nil, 0, fmt.Errorf("edit log record %d is corrupt: %v", i+1, derr)
		}
		logCount++
		if rec.Version <= snapVersion {
			continue // already folded into the snapshot
		}
		if rec.Version != version+1 {
			return 0, nil, 0, fmt.Errorf("edit log gap: record %d has version %d, want %d", i+1, rec.Version, version+1)
		}
		step, aerr := delta.Apply(ckt, rec.Version, rec.Ops)
		if aerr != nil {
			return 0, nil, 0, fmt.Errorf("replaying edit log version %d: %w", rec.Version, aerr)
		}
		steps = append(steps, step)
		version = rec.Version
	}
	if len(steps) > stepsKeep {
		steps = steps[len(steps)-stepsKeep:]
	}
	return version, steps, logCount, nil
}
