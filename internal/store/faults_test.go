package store

import (
	"strings"
	"testing"

	"subgemini/internal/faults"
	"subgemini/internal/gen"
	"subgemini/internal/stdcell"
)

// TestHealthTracksPersistenceIO: Healthy() reflects the outcome of the most
// recent persistence operation — an injected snapshot-write failure flips it
// false, the next clean write flips it back.
func TestHealthTracksPersistenceIO(t *testing.T) {
	defer faults.Reset()
	st, err := Open(Config{Dir: t.TempDir(), Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Healthy() {
		t.Fatal("fresh store not healthy")
	}

	faults.Arm("store.write-snapshot", faults.Spec{Mode: faults.ModeError, Count: 1})
	if _, err := st.Put("a", parseMain(t, nandSrc, "a")); err == nil {
		t.Fatal("Put succeeded despite injected snapshot-write failure")
	}
	if st.Healthy() {
		t.Error("store healthy right after a failed snapshot write")
	}

	if _, err := st.Put("a", parseMain(t, nandSrc, "a")); err != nil {
		t.Fatal(err)
	}
	if !st.Healthy() {
		t.Error("store still unhealthy after a clean write")
	}
}

// TestHealthTracksReload: an injected reload failure makes the demoted
// entry's Acquire fail and the store unhealthy; the next Acquire reloads
// cleanly and recovers both.
func TestHealthTracksReload(t *testing.T) {
	defer faults.Reset()
	budget := estimateBytes(gen.RippleAdder(4).C) * 3 / 2
	st, err := Open(Config{Dir: t.TempDir(), MaxBytes: budget, Globals: rails})
	if err != nil {
		t.Fatal(err)
	}
	a := gen.RippleAdder(4)
	if _, err := st.Put("a", a.C); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put("b", gen.RippleAdder(4).C); err != nil {
		t.Fatal(err)
	}
	if info, _ := st.Get("a"); info.Resident {
		t.Fatal("entry a still resident; eviction precondition failed")
	}

	faults.Arm("store.reload", faults.Spec{Mode: faults.ModeError, Count: 1})
	if _, err := st.Acquire("a"); err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("Acquire = %v, want injected reload failure", err)
	}
	if st.Healthy() {
		t.Error("store healthy right after a failed reload")
	}

	h, err := st.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := match(t, h, "FA"), a.Expected(stdcell.FA); got != want {
		t.Errorf("reloaded circuit: FA matches = %d, want %d", got, want)
	}
	h.Release()
	if !st.Healthy() {
		t.Error("store still unhealthy after a clean reload")
	}
}
