// Package store implements subgeminid's multi-circuit memory: a named,
// ref-counted store of resident circuits, each entry owning the circuit
// graph, its shared flat CSR view, and a Phase II scratch pool sized to it.
//
// The store exists because the paper's motivating workloads (§I:
// library-cell identification, hierarchy extraction, LVS) are long-lived,
// many-query sessions over a few large netlists.  One daemon hosting many
// named circuits amortizes flattening and CSR construction across every
// query against a circuit, while an LRU policy under a configurable byte
// budget keeps the resident set bounded: entries whose snapshot is on disk
// are demoted to non-resident when the budget is exceeded and transparently
// reloaded on next use.
//
// Durability: with a data directory configured, every Put writes the
// circuit through internal/netlist.WriteCircuit to
// <dir>/circuits/<name>.sp (temp file + rename, so a crash never leaves a
// torn snapshot) and then rewrites <dir>/manifest.json the same way.  On
// boot, Open replays the manifest, reloading every snapshotted circuit and
// re-marking its globals.  Uploaded pattern templates are persisted
// alongside under <dir>/patterns/ so a restarted daemon keeps its compiled
// pattern library warm.
//
// Concurrency: the store has one mutex for the name table, LRU list, and
// ref counts.  Each entry additionally carries its own RWMutex guarding
// the monotonic global-net marks on its circuit, preserving the server's
// invariant that a match only ever reads the shared circuit (globals are
// pre-marked under the entry write lock before matching begins).  An entry
// is never mutated structurally after creation — replacing a name installs
// a fresh entry, and in-flight matches keep the old one alive through
// their handles.
//
// Health: the store tracks whether its most recent persistence operation
// (snapshot write, manifest write, snapshot reload) succeeded, exposed
// lock-free through Healthy for the daemon's /readyz endpoint — a store
// whose disk is failing keeps serving resident circuits but reports
// not-ready so load balancers stop routing new work at it.  The
// "store.write-snapshot", "store.write-manifest", and "store.reload"
// fault-injection points (see internal/faults) let tests and the chaos
// driver force those failures deterministically.
package store

import (
	"container/list"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"subgemini/internal/core"
	"subgemini/internal/delta"
	"subgemini/internal/graph"
	"subgemini/internal/obs"
)

// ErrNotFound reports a name with no store entry.
var ErrNotFound = errors.New("no such circuit")

// Config parameterizes Open.
type Config struct {
	// Dir is the data directory for durable snapshots; "" keeps the store
	// memory-only (no persistence, and no LRU demotion — an entry without
	// a snapshot cannot be reloaded, so it is never evicted).
	Dir string

	// MaxBytes bounds the estimated bytes of resident circuits; 0 means
	// unlimited.  When an insert pushes the total over the budget,
	// least-recently-used idle entries with snapshots are demoted until
	// the total fits (or nothing more is evictable).
	MaxBytes int64

	// Globals lists net names marked global on every stored circuit (the
	// daemon-level special signals).
	Globals []string

	// Log, when non-nil, receives one structured record per eviction,
	// reload, compaction, and boot-time recovery event; nil discards them.
	Log *slog.Logger
}

// Store is the named circuit table.  Create one with Open.
type Store struct {
	dir      string
	maxBytes int64 // MaxBytes; named to discourage direct use, see overLocked
	globals  []string
	log      *slog.Logger

	// editMu serializes ApplyEdits and Flush: an edit clones, patches, and
	// installs against one consistent predecessor entry.
	editMu sync.Mutex

	mu            sync.Mutex
	entries       map[string]*Entry
	lru           *list.List // of *Entry; front = most recently used
	patterns      map[string]*graph.Circuit
	libraries     map[string][]string // library name -> ordered pattern names
	residentBytes int64
	evictions     int64
	reloads       int64
	edits         int64
	csrRebuilds   int64 // edits whose CSR patch degraded to a full rebuild

	// unhealthy is set while the last persistence operation failed; it is
	// an atomic (not st.mu state) so Healthy can be read from the /readyz
	// path without contending with a slow reload holding the store lock.
	unhealthy atomic.Bool
}

// Healthy reports whether the store's most recent persistence operation
// (snapshot write, manifest write, or snapshot reload) succeeded.  A
// memory-only store is always healthy.  The read is lock-free.
func (st *Store) Healthy() bool { return !st.unhealthy.Load() }

// noteIO records the outcome of a persistence operation for Healthy.
func (st *Store) noteIO(err error) {
	st.unhealthy.Store(err != nil)
}

// Entry is one named circuit.  The circuit pointer, CSR view, and scratch
// pool are fixed for the entry's lifetime while resident; only the global
// marks on the circuit change, under markMu.
type Entry struct {
	name    string // store key
	display string // circuit's own name (may differ from the key)
	file    string // snapshot filename under dir/circuits, "" = memory-only
	globals []string
	saved   time.Time

	elem *list.Element
	refs int

	// markMu guards the monotonic global-net marks: matches hold RLock for
	// their whole run, markers take Lock.  See Handle.RLockWithGlobals.
	markMu   sync.RWMutex
	ckt      *graph.Circuit
	view     *core.CSR
	scratch  core.ScratchPool
	bytes    int64
	resident bool

	// version numbers the circuit's edit history (1 at Put, +1 per
	// ApplyEdits batch); snapVersion is the version the on-disk snapshot
	// covers (they differ while the edit log holds unfolded records, see
	// edits.go).  steps retains the last stepsKeep edit Steps for
	// StepsSince; logCount counts records in the on-disk edit log.
	version     uint64
	snapVersion uint64
	steps       []*delta.Step
	logCount    int

	// devices/nets cache the shape so Info works on demoted entries.
	devices, nets int
}

// Info describes one entry for listings and API responses.
type Info struct {
	Name     string   `json:"name"`
	Display  string   `json:"display,omitempty"`
	Devices  int      `json:"devices"`
	Nets     int      `json:"nets"`
	Globals  []string `json:"globals,omitempty"`
	Resident bool     `json:"resident"`
	Snapshot bool     `json:"snapshot"`
	Bytes    int64    `json:"bytes"`
	Version  uint64   `json:"version"`
}

// Stats is the store-level gauge set for /metrics.
type Stats struct {
	Circuits      int
	Resident      int
	ResidentBytes int64
	Evictions     int64
	Reloads       int64
	Edits         int64
	CSRRebuilds   int64
}

// Open builds a Store and, when cfg.Dir is set, creates the directory
// layout and reloads every circuit and pattern recorded in the manifest.
// A corrupt manifest or missing snapshot is a boot error: a daemon that
// silently dropped circuits would violate the durability contract.
func Open(cfg Config) (*Store, error) {
	st := &Store{
		dir:       cfg.Dir,
		maxBytes:  cfg.MaxBytes,
		globals:   append([]string(nil), cfg.Globals...),
		log:       cfg.Log,
		entries:   make(map[string]*Entry),
		lru:       list.New(),
		patterns:  make(map[string]*graph.Circuit),
		libraries: make(map[string][]string),
	}
	if st.log == nil {
		st.log = obs.Discard()
	}
	if cfg.Dir != "" {
		if err := st.loadDir(); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// ValidName reports whether name is usable as a store key (and hence a
// snapshot filename component): 1–64 characters from [A-Za-z0-9._-], not
// starting with a dot or dash.
func ValidName(name string) bool {
	if len(name) == 0 || len(name) > 64 || name[0] == '.' || name[0] == '-' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// estimateBytes approximates the resident footprint of a circuit plus its
// CSR view and scratch pool.  The constants cover the graph structs, name
// strings, adjacency slices, and the CSR's flat arrays; the estimate only
// needs to be proportional, since the budget it feeds is itself a knob.
func estimateBytes(c *graph.Circuit) int64 {
	return int64(c.NumDevices())*160 + int64(c.NumNets())*120 + int64(c.NumPins())*96
}

// Put installs (or replaces) the named entry, marking the store-level
// globals on the circuit, building its CSR view, and — with a data
// directory — writing its snapshot and the updated manifest before the
// entry becomes visible.  In-flight matches against a replaced entry keep
// running against the old circuit through their handles.
func (st *Store) Put(name string, ckt *graph.Circuit) (Info, error) {
	if !ValidName(name) {
		return Info{}, fmt.Errorf("invalid circuit name %q (want 1-64 chars of [A-Za-z0-9._-], not starting with '.' or '-')", name)
	}
	for _, g := range st.globals {
		ckt.MarkGlobal(g)
	}
	e := &Entry{
		name:        name,
		display:     ckt.Name,
		ckt:         ckt,
		view:        core.NewCSR(ckt),
		bytes:       estimateBytes(ckt),
		resident:    true,
		devices:     ckt.NumDevices(),
		nets:        ckt.NumNets(),
		saved:       time.Now(),
		version:     1,
		snapVersion: 1,
	}
	for _, n := range ckt.Globals() {
		e.globals = append(e.globals, n.Name)
	}
	if st.dir != "" {
		file, err := st.writeSnapshot(name, ckt)
		if err != nil {
			return Info{}, err
		}
		e.file = file
	}

	st.mu.Lock()
	var staleFile string
	if old, ok := st.entries[name]; ok {
		st.dropLocked(old)
		// A replace can switch snapshot formats (chip.sp → chip.json);
		// drop the out-of-format file so only the manifest's survives.
		if old.file != "" && old.file != e.file {
			staleFile = old.file
		}
	}
	st.entries[name] = e
	e.elem = st.lru.PushFront(e)
	st.residentBytes += e.bytes
	st.evictLocked()
	info := st.infoLocked(e)
	st.mu.Unlock()

	if st.dir != "" {
		st.removeSnapshot(staleFile)
		// A replace starts a fresh version lineage; any edit log of the old
		// lineage is now meaningless.
		st.removeEditLog(name)
		if err := st.writeManifest(); err != nil {
			return info, err
		}
	}
	return info, nil
}

// Acquire returns a ref-counted handle on the named entry, reloading a
// demoted entry from its snapshot first.  Callers must Release the handle
// when their match completes; the ref count pins the entry's resident
// state against eviction.
func (st *Store) Acquire(name string) (*Handle, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.entries[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if !e.resident {
		if err := st.reloadLocked(e); err != nil {
			return nil, fmt.Errorf("reloading circuit %q from snapshot: %w", name, err)
		}
	}
	e.refs++
	st.lru.MoveToFront(e.elem)
	return &Handle{st: st, e: e}, nil
}

// Delete removes the named entry and its snapshot.  Handles already
// acquired stay valid; the entry's memory is reclaimed when they release.
func (st *Store) Delete(name string) error {
	st.mu.Lock()
	e, ok := st.entries[name]
	if ok {
		delete(st.entries, name)
		st.dropLocked(e)
	}
	st.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if st.dir != "" {
		st.removeSnapshot(e.file)
		st.removeEditLog(name)
		return st.writeManifest()
	}
	return nil
}

// Get returns the Info for one entry.
func (st *Store) Get(name string) (Info, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.entries[name]
	if !ok {
		return Info{}, false
	}
	return st.infoLocked(e), true
}

// List returns every entry's Info, sorted by name.
func (st *Store) List() []Info {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]Info, 0, len(st.entries))
	for _, e := range st.entries {
		out = append(out, st.infoLocked(e))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of named entries.
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.entries)
}

// Stats returns the gauge snapshot for /metrics.
func (st *Store) Stats() Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := Stats{
		Circuits:      len(st.entries),
		ResidentBytes: st.residentBytes,
		Evictions:     st.evictions,
		Reloads:       st.reloads,
		Edits:         st.edits,
		CSRRebuilds:   st.csrRebuilds,
	}
	for _, e := range st.entries {
		if e.resident {
			s.Resident++
		}
	}
	return s
}

// Close flushes dirty entries and the manifest.  Clean entries' snapshots
// were written at Put or compaction time, so Flush skips them (see
// edits.go); only circuits with unfolded edit-log records re-serialize.
func (st *Store) Close() error {
	return st.Flush()
}

// infoLocked builds an Info under st.mu.
func (st *Store) infoLocked(e *Entry) Info {
	return Info{
		Name:     e.name,
		Display:  e.display,
		Devices:  e.devices,
		Nets:     e.nets,
		Globals:  append([]string(nil), e.globals...),
		Resident: e.resident,
		Snapshot: e.file != "",
		Bytes:    e.bytes,
		Version:  e.version,
	}
}

// dropLocked detaches an entry from the LRU accounting (replacement and
// deletion paths).
func (st *Store) dropLocked(e *Entry) {
	if e.elem != nil {
		st.lru.Remove(e.elem)
		e.elem = nil
	}
	if e.resident {
		st.residentBytes -= e.bytes
	}
}

// evictLocked demotes least-recently-used idle snapshotted entries until
// the resident total fits the budget.  Entries that are referenced, not
// resident, or have no snapshot to reload from are skipped — a memory-only
// entry is never silently dropped.
func (st *Store) evictLocked() {
	if st.maxBytes <= 0 {
		return
	}
	for el := st.lru.Back(); el != nil && st.residentBytes > st.maxBytes; {
		e := el.Value.(*Entry)
		el = el.Prev()
		if e.refs > 0 || !e.resident || e.file == "" || e.version != e.snapVersion {
			// The last clause keeps edited-but-uncompacted entries resident:
			// their snapshot alone cannot reproduce the current circuit.
			continue
		}
		e.ckt = nil
		e.view = nil
		e.scratch = core.ScratchPool{}
		e.resident = false
		st.residentBytes -= e.bytes
		st.evictions++
		st.log.Info("evicted circuit under memory budget", "circuit", e.name, "bytes_est", e.bytes, "budget_bytes", st.maxBytes)
	}
}

// release drops one handle reference.
func (st *Store) release(e *Entry) {
	st.mu.Lock()
	e.refs--
	st.evictLocked()
	st.mu.Unlock()
}

// Handle is a ref-counted lease on an entry.  It exposes the shared
// circuit state a match needs and the entry-level lock protocol.
type Handle struct {
	st       *Store
	e        *Entry
	released bool
}

// Name returns the store key.
func (h *Handle) Name() string { return h.e.name }

// Circuit returns the shared circuit.  Callers must follow the lock
// protocol: hold RLockWithGlobals (or RLock) while reading it.
func (h *Handle) Circuit() *graph.Circuit { return h.e.ckt }

// CSR returns the entry's prebuilt flat view, shareable across matchers.
func (h *Handle) CSR() *core.CSR { return h.e.view }

// Scratch returns the entry's Phase II scratch pool.
func (h *Handle) Scratch() *core.ScratchPool { return &h.e.scratch }

// Globals returns the names marked global on the entry's circuit at Put
// time (store-level globals plus the netlist's own .GLOBAL nets).
func (h *Handle) Globals() []string { return h.e.globals }

// Version returns the edit version of the entry this handle leases.  It is
// fixed for the handle's lifetime: edits install fresh entries, so a
// concurrent PATCH never changes what an acquired handle sees.
func (h *Handle) Version() uint64 { return h.e.version }

// Release returns the lease.  Releasing twice is a no-op.
func (h *Handle) Release() {
	if h.released {
		return
	}
	h.released = true
	h.st.release(h.e)
}

// RLock takes the entry read lock without marking anything; use it for
// read-only access (cloning, shape queries) that tolerates current marks.
func (h *Handle) RLock() { h.e.markMu.RLock() }

// RUnlock releases the entry read lock.
func (h *Handle) RUnlock() { h.e.markMu.RUnlock() }

// RLockWithGlobals acquires the entry read lock with every given net name
// already marked global on the circuit.  Marking needs the write lock, so
// the fast path checks under RLock and upgrades only when a mark is
// missing; marks are monotonic and the entry's circuit pointer never
// changes, so one upgrade round suffices.  Once this returns, the
// matcher's own global marking finds every mark already set and the match
// reads the shared circuit strictly read-only.
func (h *Handle) RLockWithGlobals(names []string) {
	e := h.e
	e.markMu.RLock()
	missing := false
	for _, name := range names {
		if n := e.ckt.NetByName(name); n != nil && !n.Global {
			missing = true
			break
		}
	}
	if !missing {
		return
	}
	e.markMu.RUnlock()
	e.markMu.Lock()
	for _, name := range names {
		e.ckt.MarkGlobal(name)
	}
	e.markMu.Unlock()
	e.markMu.RLock()
}
