package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"subgemini/internal/core"
	"subgemini/internal/faults"
	"subgemini/internal/graph"
	"subgemini/internal/netlist"
)

func init() {
	faults.Register("store.write-snapshot", "circuit snapshot write during Put (error fails the upload and marks the store unhealthy)")
	faults.Register("store.write-manifest", "manifest index rewrite after any durable mutation")
	faults.Register("store.reload", "demoted-circuit reload from snapshot during Acquire (delay holds the store lock; error flips /readyz)")
}

// Data-directory layout.  The manifest is the index; circuit and pattern
// snapshots are plain netlists when the circuit's device types all map to
// netlist element cards, so a user can inspect (or seed) the data
// directory with ordinary tools.  Circuits with non-primitive devices —
// gate-level results of extraction, whose typed devices an X instance card
// could not round-trip without its .SUBCKT definition — snapshot in the
// graph JSON interchange format instead; the file extension selects the
// parser on reload.
const (
	manifestName = "manifest.json"
	circuitsDir  = "circuits"
	patternsDir  = "patterns"
)

// netlistRoundTrips reports whether every device of the circuit has a
// primitive type the netlist writer can emit as an element card that
// parses back to the same device.
func netlistRoundTrips(c *graph.Circuit) bool {
	for _, d := range c.Devices {
		switch d.Type {
		case "nmos", "pmos", "res", "cap", "diode":
		default:
			return false
		}
	}
	return true
}

// manifest is the on-disk index, always written whole via an atomic
// rename so readers never observe a torn file.
type manifest struct {
	Version   int          `json:"version"`
	Circuits  []circuitRec `json:"circuits"`
	Patterns  []patternRec `json:"patterns,omitempty"`
	Libraries []libraryRec `json:"libraries,omitempty"`
}

type circuitRec struct {
	Name      string   `json:"name"`
	Display   string   `json:"display,omitempty"`
	File      string   `json:"file"`
	Globals   []string `json:"globals,omitempty"`
	Devices   int      `json:"devices"`
	Nets      int      `json:"nets"`
	SavedUnix int64    `json:"saved_unix"`

	// Version is the circuit's edit version at manifest-write time;
	// SnapVersion is the version the snapshot file covers.  Boot replays
	// the edit log past SnapVersion, so the log (not Version) is the
	// authority for the current version — a crash between log append and
	// manifest rewrite leaves Version stale by design.  Zero values (a
	// pre-edit-log manifest) read as version 1.
	Version     uint64 `json:"edit_version,omitempty"`
	SnapVersion uint64 `json:"snap_version,omitempty"`
}

type patternRec struct {
	Name string `json:"name"`
	File string `json:"file"`
}

// libraryRec is a named ordered list of pattern names: the unit a library
// sweep matches.  Libraries are small (names only), so they live inside
// the manifest itself rather than as separate snapshot files.
type libraryRec struct {
	Name     string   `json:"name"`
	Patterns []string `json:"patterns"`
}

// writeAtomic writes data to path via a temp file in the same directory
// plus rename, so a crash mid-write never leaves a torn file behind.
func writeAtomic(path string, write func(f *os.File) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// loadDir creates the directory layout and replays the manifest: every
// recorded circuit is reloaded from its snapshot (globals re-marked, CSR
// rebuilt) and every pattern template is recompiled.  Errors here are boot
// errors by design — see Open.
func (st *Store) loadDir() error {
	for _, d := range []string{st.dir, filepath.Join(st.dir, circuitsDir), filepath.Join(st.dir, patternsDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return err
		}
	}
	path := filepath.Join(st.dir, manifestName)
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil // fresh data directory
	}
	if err != nil {
		return fmt.Errorf("reading store manifest %s: %w", path, err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return fmt.Errorf("store manifest %s is corrupt (%v); move it aside or restore a backup to boot", path, err)
	}
	if m.Version != 1 {
		return fmt.Errorf("store manifest %s has unsupported version %d (want 1)", path, m.Version)
	}
	for _, rec := range m.Circuits {
		e, err := st.loadCircuitRec(rec)
		if err != nil {
			return fmt.Errorf("reloading circuit %q from %s: %w", rec.Name, rec.File, err)
		}
		st.entries[rec.Name] = e
		e.elem = st.lru.PushBack(e) // boot order is not usage order; all equally cold
		st.residentBytes += e.bytes
	}
	for _, rec := range m.Patterns {
		tpl, err := st.loadPatternRec(rec)
		if err != nil {
			return fmt.Errorf("reloading pattern %q from %s: %w", rec.Name, rec.File, err)
		}
		st.patterns[rec.Name] = tpl
	}
	for _, rec := range m.Libraries {
		st.libraries[rec.Name] = append([]string(nil), rec.Patterns...)
	}
	if len(m.Circuits)+len(m.Patterns)+len(m.Libraries) > 0 {
		st.log.Info("reloaded store", "circuits", len(m.Circuits),
			"patterns", len(m.Patterns), "libraries", len(m.Libraries), "dir", st.dir)
	}
	st.mu.Lock()
	st.evictLocked()
	st.mu.Unlock()
	return nil
}

// loadCircuitRec parses one snapshot back into a resident entry, replaying
// any edit-log records past the snapshot's version (see edits.go).
func (st *Store) loadCircuitRec(rec circuitRec) (*Entry, error) {
	ckt, err := st.parseSnapshot(rec.File, rec.Display, rec.Globals)
	if err != nil {
		return nil, err
	}
	snapVersion := rec.SnapVersion
	if snapVersion == 0 {
		snapVersion = 1 // pre-edit-log manifest
	}
	version, steps, logCount, err := st.replayEditLog(rec.Name, ckt, snapVersion)
	if err != nil {
		return nil, fmt.Errorf("edit log %s.log: %w", rec.Name, err)
	}
	if version > snapVersion {
		st.log.Info("replayed edit versions", "circuit", rec.Name,
			"versions", version-snapVersion, "from", snapVersion, "to", version)
	}
	e := &Entry{
		name:        rec.Name,
		display:     ckt.Name,
		file:        rec.File,
		ckt:         ckt,
		view:        core.NewCSR(ckt),
		bytes:       estimateBytes(ckt),
		resident:    true,
		devices:     ckt.NumDevices(),
		nets:        ckt.NumNets(),
		saved:       time.Unix(rec.SavedUnix, 0),
		version:     version,
		snapVersion: snapVersion,
		steps:       steps,
		logCount:    logCount,
	}
	for _, n := range ckt.Globals() {
		e.globals = append(e.globals, n.Name)
	}
	return e, nil
}

// parseSnapshot reads a circuit snapshot (netlist or, for gate-level
// circuits, graph JSON — dispatched on the extension) and re-marks its
// globals: the snapshot's own marks, the manifest record's globals
// (covering marks made after the snapshot was written), and the
// store-level globals.
func (st *Store) parseSnapshot(file, display string, globals []string) (*graph.Circuit, error) {
	path := filepath.Join(st.dir, circuitsDir, file)
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var ckt *graph.Circuit
	if strings.HasSuffix(file, ".json") {
		ckt, err = graph.DecodeJSON(f)
		if err != nil {
			return nil, err
		}
		if display != "" {
			ckt.Name = display
		}
	} else {
		nf, err := netlist.Parse(f, path)
		if err != nil {
			return nil, err
		}
		name := display
		if name == "" {
			name = file
		}
		ckt, err = nf.MainCircuit(name)
		if err != nil {
			return nil, err
		}
	}
	for _, g := range globals {
		ckt.MarkGlobal(g)
	}
	for _, g := range st.globals {
		ckt.MarkGlobal(g)
	}
	return ckt, nil
}

// loadPatternRec recompiles one persisted pattern template.
func (st *Store) loadPatternRec(rec patternRec) (*graph.Circuit, error) {
	path := filepath.Join(st.dir, patternsDir, rec.File)
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	nf, err := netlist.Parse(f, path)
	if err != nil {
		return nil, err
	}
	return nf.Pattern(rec.Name)
}

// writeSnapshot writes one circuit snapshot and returns its filename:
// a .sp netlist for primitive-device circuits, graph JSON otherwise.
func (st *Store) writeSnapshot(name string, ckt *graph.Circuit) (string, error) {
	file := name + ".sp"
	write := func(f *os.File) error { return netlist.WriteCircuit(f, ckt) }
	if !netlistRoundTrips(ckt) {
		file = name + ".json"
		write = func(f *os.File) error { return graph.EncodeJSON(f, ckt) }
	}
	path := filepath.Join(st.dir, circuitsDir, file)
	err := faults.Fire("store.write-snapshot")
	if err == nil {
		err = writeAtomic(path, write)
	}
	st.noteIO(err)
	if err != nil {
		return "", fmt.Errorf("writing circuit snapshot %s: %w", path, err)
	}
	return file, nil
}

func (st *Store) removeSnapshot(file string) {
	if file == "" {
		return
	}
	os.Remove(filepath.Join(st.dir, circuitsDir, file))
}

// writeManifest rewrites the index from the current table.
func (st *Store) writeManifest() error {
	st.mu.Lock()
	m := manifest{Version: 1}
	for _, e := range st.entries {
		if e.file == "" {
			continue
		}
		m.Circuits = append(m.Circuits, circuitRec{
			Name:        e.name,
			Display:     e.display,
			File:        e.file,
			Globals:     append([]string(nil), e.globals...),
			Devices:     e.devices,
			Nets:        e.nets,
			SavedUnix:   e.saved.Unix(),
			Version:     e.version,
			SnapVersion: e.snapVersion,
		})
	}
	for name := range st.patterns {
		m.Patterns = append(m.Patterns, patternRec{Name: name, File: patternFile(name)})
	}
	for name, pats := range st.libraries {
		m.Libraries = append(m.Libraries, libraryRec{Name: name, Patterns: append([]string(nil), pats...)})
	}
	st.mu.Unlock()
	sort.Slice(m.Circuits, func(i, j int) bool { return m.Circuits[i].Name < m.Circuits[j].Name })
	sort.Slice(m.Patterns, func(i, j int) bool { return m.Patterns[i].Name < m.Patterns[j].Name })
	sort.Slice(m.Libraries, func(i, j int) bool { return m.Libraries[i].Name < m.Libraries[j].Name })

	path := filepath.Join(st.dir, manifestName)
	err := faults.Fire("store.write-manifest")
	if err == nil {
		err = writeAtomic(path, func(f *os.File) error {
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			return enc.Encode(&m)
		})
	}
	st.noteIO(err)
	return err
}

// reloadLocked re-parses a demoted entry's snapshot and rebuilds its CSR
// view; called with st.mu held, from Acquire.  The outcome feeds Healthy:
// a store that cannot reload its own snapshots must stop reporting ready.
func (st *Store) reloadLocked(e *Entry) error {
	err := faults.Fire("store.reload")
	if err == nil {
		var ckt *graph.Circuit
		ckt, err = st.parseSnapshot(e.file, e.display, e.globals)
		if err == nil {
			st.adoptReloaded(e, ckt)
		}
	}
	st.noteIO(err)
	return err
}

// adoptReloaded installs a freshly parsed snapshot on a demoted entry.
func (st *Store) adoptReloaded(e *Entry, ckt *graph.Circuit) {
	e.ckt = ckt
	e.view = core.NewCSR(ckt)
	e.scratch = core.ScratchPool{}
	e.bytes = estimateBytes(ckt)
	e.resident = true
	st.residentBytes += e.bytes
	st.reloads++
	st.log.Info("reloaded circuit from snapshot", "circuit", e.name)
}

// patternFile maps a pattern name to its snapshot filename.  Pattern names
// come from .SUBCKT identifiers; characters outside the snapshot-safe set
// are hex-escaped so distinct names stay distinct.
func patternFile(name string) string {
	safe := make([]byte, 0, len(name)+4)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9', c == '.', c == '_', c == '-':
			safe = append(safe, c)
		default:
			safe = append(safe, fmt.Sprintf("%%%02x", c)...)
		}
	}
	return string(safe) + ".subckt.sp"
}

// SavePattern persists one uploaded pattern template so it survives a
// daemon restart; a store without a data directory accepts and ignores the
// call.  The template is written as a .SUBCKT definition and re-listed in
// the manifest.
func (st *Store) SavePattern(name string, template *graph.Circuit) error {
	if st.dir == "" {
		return nil
	}
	path := filepath.Join(st.dir, patternsDir, patternFile(name))
	err := writeAtomic(path, func(f *os.File) error {
		return netlist.WriteSubckt(f, template)
	})
	if err != nil {
		return fmt.Errorf("writing pattern snapshot %s: %w", path, err)
	}
	st.mu.Lock()
	st.patterns[name] = template
	st.mu.Unlock()
	return st.writeManifest()
}

// Patterns returns the persisted pattern templates loaded at boot (plus
// any saved since); the caller must clone before mutating a template.
func (st *Store) Patterns() map[string]*graph.Circuit {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make(map[string]*graph.Circuit, len(st.patterns))
	for k, v := range st.patterns {
		out[k] = v
	}
	return out
}

// SaveLibrary records a named ordered list of pattern names — the unit a
// library sweep matches — replacing any previous definition, and persists
// it in the manifest so it survives a restart.  The store does not resolve
// the names; the serving layer validates them against its pattern sources.
func (st *Store) SaveLibrary(name string, patterns []string) error {
	if !ValidName(name) {
		return fmt.Errorf("invalid library name %q", name)
	}
	st.mu.Lock()
	st.libraries[name] = append([]string(nil), patterns...)
	st.mu.Unlock()
	if st.dir == "" {
		return nil
	}
	return st.writeManifest()
}

// Library returns the named library's pattern list.
func (st *Store) Library(name string) ([]string, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	pats, ok := st.libraries[name]
	if !ok {
		return nil, false
	}
	return append([]string(nil), pats...), true
}

// Libraries returns all library definitions, a copy keyed by name.
func (st *Store) Libraries() map[string][]string {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make(map[string][]string, len(st.libraries))
	for k, v := range st.libraries {
		out[k] = append([]string(nil), v...)
	}
	return out
}

// DeleteLibrary removes the named library; ErrNotFound if absent.
func (st *Store) DeleteLibrary(name string) error {
	st.mu.Lock()
	_, ok := st.libraries[name]
	delete(st.libraries, name)
	st.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: library %q", ErrNotFound, name)
	}
	if st.dir == "" {
		return nil
	}
	return st.writeManifest()
}
