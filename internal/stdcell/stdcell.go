// Package stdcell provides a transistor-level CMOS standard-cell library:
// the subcircuit patterns SubGemini searches for and the building blocks the
// workload generators tile into large main circuits.  Cells follow the
// paper's circuit model: three-terminal MOS devices (gate plus two
// interchangeable source/drain terminals) wired between explicit VDD and
// GND rails.
package stdcell

import (
	"fmt"
	"sort"

	"subgemini/internal/graph"
)

// MOS describes one transistor of a cell: D and S are interchangeable
// source/drain nets, G is the gate net.  Net names refer to cell ports or
// cell-local internal nets.
type MOS struct {
	Name string
	Type string // "nmos" or "pmos"
	D    string
	G    string
	S    string
}

// CellDef is a transistor-level cell.  Ports lists the externally visible
// nets in declaration order; every net referenced by a transistor but not
// listed in Ports is internal to the cell.
type CellDef struct {
	Name  string
	Ports []string
	Mos   []MOS
}

// NumTransistors returns the cell's transistor count.
func (c *CellDef) NumTransistors() int { return len(c.Mos) }

// mosClasses is the terminal-class vector of a three-terminal MOS device:
// drain and source share a class, the gate has its own (paper §II).
var mosClasses = []graph.TermClass{graph.ClassDS, graph.ClassGate, graph.ClassDS}

// Pattern builds the cell as a standalone pattern circuit with its ports
// marked external, ready to hand to the matcher.
func (c *CellDef) Pattern() *graph.Circuit {
	ckt := graph.New(c.Name)
	for _, p := range c.Ports {
		ckt.AddNet(p)
	}
	for _, m := range c.Mos {
		nets := []*graph.Net{ckt.AddNet(m.D), ckt.AddNet(m.G), ckt.AddNet(m.S)}
		ckt.MustAddDevice(m.Name, m.Type, mosClasses, nets)
	}
	for _, p := range c.Ports {
		if err := ckt.MarkPort(p); err != nil {
			panic(err) // ports were added above; unreachable
		}
	}
	return ckt
}

// Instantiate adds one copy of the cell to circuit ckt.  inst prefixes the
// names of the cell's transistors and internal nets; conns maps every cell
// port to a net of ckt.  Missing or extra port connections are an error.
func (c *CellDef) Instantiate(ckt *graph.Circuit, inst string, conns map[string]*graph.Net) error {
	if len(conns) != len(c.Ports) {
		return fmt.Errorf("stdcell: %s %s: got %d connections, want %d", c.Name, inst, len(conns), len(c.Ports))
	}
	resolve := func(name string) (*graph.Net, error) {
		if n, ok := conns[name]; ok {
			if n == nil {
				return nil, fmt.Errorf("stdcell: %s %s: nil net for port %s", c.Name, inst, name)
			}
			return n, nil
		}
		if c.isPort(name) {
			return nil, fmt.Errorf("stdcell: %s %s: port %s not connected", c.Name, inst, name)
		}
		return ckt.AddNet(inst + "." + name), nil
	}
	for port := range conns {
		if !c.isPort(port) {
			return fmt.Errorf("stdcell: %s %s: unknown port %s", c.Name, inst, port)
		}
	}
	for _, m := range c.Mos {
		d, err := resolve(m.D)
		if err != nil {
			return err
		}
		g, err := resolve(m.G)
		if err != nil {
			return err
		}
		s, err := resolve(m.S)
		if err != nil {
			return err
		}
		if _, err := ckt.AddDevice(inst+"."+m.Name, m.Type, mosClasses, []*graph.Net{d, g, s}); err != nil {
			return err
		}
	}
	return nil
}

// MustInstantiate is Instantiate that panics on error, for generators whose
// wiring is known correct.
func (c *CellDef) MustInstantiate(ckt *graph.Circuit, inst string, conns map[string]*graph.Net) {
	if err := c.Instantiate(ckt, inst, conns); err != nil {
		panic(err)
	}
}

func (c *CellDef) isPort(name string) bool {
	for _, p := range c.Ports {
		if p == name {
			return true
		}
	}
	return false
}

// Validate checks a cell definition for internal consistency: port and
// transistor names unique, transistor types known, every port used.
func (c *CellDef) Validate() error {
	seenPort := map[string]bool{}
	for _, p := range c.Ports {
		if seenPort[p] {
			return fmt.Errorf("stdcell: %s: duplicate port %s", c.Name, p)
		}
		seenPort[p] = true
	}
	used := map[string]bool{}
	seenMos := map[string]bool{}
	for _, m := range c.Mos {
		if seenMos[m.Name] {
			return fmt.Errorf("stdcell: %s: duplicate transistor %s", c.Name, m.Name)
		}
		seenMos[m.Name] = true
		if m.Type != "nmos" && m.Type != "pmos" {
			return fmt.Errorf("stdcell: %s: transistor %s has type %s", c.Name, m.Name, m.Type)
		}
		used[m.D], used[m.G], used[m.S] = true, true, true
	}
	for _, p := range c.Ports {
		if !used[p] {
			return fmt.Errorf("stdcell: %s: port %s unused", c.Name, p)
		}
	}
	return nil
}

var registry = map[string]*CellDef{}

// register adds a cell to the library, panicking on duplicate or invalid
// definitions (library bugs should fail at init).
func register(c *CellDef) *CellDef {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	if _, dup := registry[c.Name]; dup {
		panic("stdcell: duplicate cell " + c.Name)
	}
	registry[c.Name] = c
	return c
}

// Get returns the named cell, or nil if the library has no such cell.
func Get(name string) *CellDef { return registry[name] }

// Names returns the names of all library cells, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns all library cells sorted by name.
func All() []*CellDef {
	cells := make([]*CellDef, 0, len(registry))
	for _, n := range Names() {
		cells = append(cells, registry[n])
	}
	return cells
}
