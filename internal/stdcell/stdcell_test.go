package stdcell

import (
	"testing"

	"subgemini/internal/graph"
)

func TestAllCellsValid(t *testing.T) {
	cells := All()
	if len(cells) < 23 {
		t.Fatalf("library has %d cells, want at least 23", len(cells))
	}
	for _, c := range cells {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
		if Get(c.Name) != c {
			t.Errorf("%s: registry lookup broken", c.Name)
		}
		pat := c.Pattern()
		if err := pat.Validate(); err != nil {
			t.Errorf("%s pattern: %v", c.Name, err)
		}
		if pat.NumDevices() != c.NumTransistors() {
			t.Errorf("%s: pattern has %d devices, cell lists %d", c.Name, pat.NumDevices(), c.NumTransistors())
		}
		if got := len(pat.Ports()); got != len(c.Ports) {
			t.Errorf("%s: pattern has %d ports, want %d", c.Name, got, len(c.Ports))
		}
		// CMOS sanity: every cell must touch both rails.
		for _, rail := range []string{"VDD", "GND"} {
			n := pat.NetByName(rail)
			if n == nil || n.Degree() == 0 {
				t.Errorf("%s: rail %s missing or unconnected", c.Name, rail)
			}
		}
	}
}

func TestTransistorCounts(t *testing.T) {
	want := map[string]int{
		"INV": 2, "BUF": 4, "NAND2": 4, "NAND3": 6, "NAND4": 8, "NOR2": 4,
		"NOR3": 6, "NOR4": 8, "AND2": 6, "OR2": 6, "AOI21": 6, "OAI21": 6,
		"AOI22": 8, "OAI22": 8, "XOR2": 12, "XNOR2": 12, "MUX2": 6, "TINV": 6,
		"HA": 18, "LATCH": 10, "DFF": 18, "SRAM6T": 6, "FA": 28,
	}
	for name, n := range want {
		c := Get(name)
		if c == nil {
			t.Errorf("cell %s missing", name)
			continue
		}
		if c.NumTransistors() != n {
			t.Errorf("%s: %d transistors, want %d", name, c.NumTransistors(), n)
		}
	}
}

func TestCMOSDuality(t *testing.T) {
	// Every combinational cell must have equal pull-up and pull-down
	// transistor counts (fully complementary static CMOS).
	for _, c := range All() {
		n, p := 0, 0
		for _, m := range c.Mos {
			switch m.Type {
			case "nmos":
				n++
			case "pmos":
				p++
			}
		}
		if c.Name == "SRAM6T" {
			// 4+2 by design: two n-type access transistors.
			if n != 4 || p != 2 {
				t.Errorf("SRAM6T: n=%d p=%d, want 4/2", n, p)
			}
			continue
		}
		if n != p {
			t.Errorf("%s: %d nmos vs %d pmos", c.Name, n, p)
		}
	}
}

func TestInstantiate(t *testing.T) {
	ckt := graph.New("top")
	vdd, gnd := ckt.AddNet("VDD"), ckt.AddNet("GND")
	a, y := ckt.AddNet("a"), ckt.AddNet("y")
	conns := map[string]*graph.Net{"A": a, "B": a, "Y": y, "VDD": vdd, "GND": gnd}
	if err := NAND2.Instantiate(ckt, "u1", conns); err != nil {
		t.Fatal(err)
	}
	if err := ckt.Validate(); err != nil {
		t.Fatal(err)
	}
	if ckt.NumDevices() != 4 {
		t.Fatalf("instantiated %d devices, want 4", ckt.NumDevices())
	}
	if ckt.DeviceByName("u1.MP1") == nil {
		t.Error("prefixed transistor name missing")
	}
	if ckt.NetByName("u1.n1") == nil {
		t.Error("prefixed internal net missing")
	}
	// Duplicate instance name must fail on the duplicate transistor.
	if err := NAND2.Instantiate(ckt, "u1", conns); err == nil {
		t.Error("duplicate instance accepted")
	}
}

func TestInstantiateErrors(t *testing.T) {
	ckt := graph.New("top")
	vdd, gnd := ckt.AddNet("VDD"), ckt.AddNet("GND")
	a, y := ckt.AddNet("a"), ckt.AddNet("y")

	// Missing port.
	err := INV.Instantiate(ckt, "u1", map[string]*graph.Net{"A": a, "VDD": vdd, "GND": gnd})
	if err == nil {
		t.Error("missing port accepted")
	}
	// Extra/unknown port.
	err = INV.Instantiate(ckt, "u2", map[string]*graph.Net{"A": a, "Y": y, "Z": a, "VDD": vdd, "GND": gnd})
	if err == nil {
		t.Error("unknown port accepted")
	}
	// Nil net.
	err = INV.Instantiate(ckt, "u3", map[string]*graph.Net{"A": a, "Y": nil, "VDD": vdd, "GND": gnd})
	if err == nil {
		t.Error("nil net accepted")
	}
}

func TestCellDefValidateErrors(t *testing.T) {
	bad := []*CellDef{
		{Name: "dupport", Ports: []string{"A", "A"}, Mos: []MOS{{"M", "nmos", "A", "A", "A"}}},
		{Name: "dupmos", Ports: []string{"A"}, Mos: []MOS{{"M", "nmos", "A", "A", "A"}, {"M", "pmos", "A", "A", "A"}}},
		{Name: "badtype", Ports: []string{"A"}, Mos: []MOS{{"M", "npn", "A", "A", "A"}}},
		{Name: "unusedport", Ports: []string{"A", "B"}, Mos: []MOS{{"M", "nmos", "A", "A", "A"}}},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%s: invalid cell accepted", c.Name)
		}
	}
}

func TestNames(t *testing.T) {
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
	if Get("NOPE") != nil {
		t.Error("Get returned a cell for an unknown name")
	}
}

func TestMustInstantiatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustInstantiate did not panic on bad connections")
		}
	}()
	INV.MustInstantiate(graph.New("x"), "u", nil)
}

func TestRegisterRejectsDuplicatesAndInvalid(t *testing.T) {
	recoverPanics := func(fn func()) (panicked bool) {
		defer func() { panicked = recover() != nil }()
		fn()
		return
	}
	if !recoverPanics(func() {
		register(&CellDef{Name: "INV", Ports: []string{"A"}, Mos: []MOS{{"M", "nmos", "A", "A", "A"}}})
	}) {
		t.Error("duplicate cell name accepted")
	}
	if !recoverPanics(func() {
		register(&CellDef{Name: "BROKEN", Ports: []string{"A", "A"}, Mos: []MOS{{"M", "nmos", "A", "A", "A"}}})
	}) {
		t.Error("invalid cell accepted")
	}
}
