package stdcell

// The library cells.  Each definition lists its pull-up and pull-down
// networks transistor by transistor; internal node names (n1, p1, ...) are
// local to the cell.  All cells expose VDD and GND ports so they can be
// matched either with or without special-signal treatment of the rails.
var (
	// INV is a static CMOS inverter (2T).
	INV = register(&CellDef{
		Name:  "INV",
		Ports: []string{"A", "Y", "VDD", "GND"},
		Mos: []MOS{
			{"MP", "pmos", "Y", "A", "VDD"},
			{"MN", "nmos", "Y", "A", "GND"},
		},
	})

	// BUF is two cascaded inverters (4T).
	BUF = register(&CellDef{
		Name:  "BUF",
		Ports: []string{"A", "Y", "VDD", "GND"},
		Mos: []MOS{
			{"MP1", "pmos", "x", "A", "VDD"},
			{"MN1", "nmos", "x", "A", "GND"},
			{"MP2", "pmos", "Y", "x", "VDD"},
			{"MN2", "nmos", "Y", "x", "GND"},
		},
	})

	// NAND2 is a two-input NAND (4T).
	NAND2 = register(&CellDef{
		Name:  "NAND2",
		Ports: []string{"A", "B", "Y", "VDD", "GND"},
		Mos: []MOS{
			{"MP1", "pmos", "Y", "A", "VDD"},
			{"MP2", "pmos", "Y", "B", "VDD"},
			{"MN1", "nmos", "Y", "A", "n1"},
			{"MN2", "nmos", "n1", "B", "GND"},
		},
	})

	// NAND3 is a three-input NAND (6T).
	NAND3 = register(&CellDef{
		Name:  "NAND3",
		Ports: []string{"A", "B", "C", "Y", "VDD", "GND"},
		Mos: []MOS{
			{"MP1", "pmos", "Y", "A", "VDD"},
			{"MP2", "pmos", "Y", "B", "VDD"},
			{"MP3", "pmos", "Y", "C", "VDD"},
			{"MN1", "nmos", "Y", "A", "n1"},
			{"MN2", "nmos", "n1", "B", "n2"},
			{"MN3", "nmos", "n2", "C", "GND"},
		},
	})

	// NAND4 is a four-input NAND (8T).
	NAND4 = register(&CellDef{
		Name:  "NAND4",
		Ports: []string{"A", "B", "C", "D", "Y", "VDD", "GND"},
		Mos: []MOS{
			{"MP1", "pmos", "Y", "A", "VDD"},
			{"MP2", "pmos", "Y", "B", "VDD"},
			{"MP3", "pmos", "Y", "C", "VDD"},
			{"MP4", "pmos", "Y", "D", "VDD"},
			{"MN1", "nmos", "Y", "A", "n1"},
			{"MN2", "nmos", "n1", "B", "n2"},
			{"MN3", "nmos", "n2", "C", "n3"},
			{"MN4", "nmos", "n3", "D", "GND"},
		},
	})

	// NOR2 is a two-input NOR (4T).
	NOR2 = register(&CellDef{
		Name:  "NOR2",
		Ports: []string{"A", "B", "Y", "VDD", "GND"},
		Mos: []MOS{
			{"MP1", "pmos", "p1", "A", "VDD"},
			{"MP2", "pmos", "Y", "B", "p1"},
			{"MN1", "nmos", "Y", "A", "GND"},
			{"MN2", "nmos", "Y", "B", "GND"},
		},
	})

	// NOR3 is a three-input NOR (6T).
	NOR3 = register(&CellDef{
		Name:  "NOR3",
		Ports: []string{"A", "B", "C", "Y", "VDD", "GND"},
		Mos: []MOS{
			{"MP1", "pmos", "p1", "A", "VDD"},
			{"MP2", "pmos", "p2", "B", "p1"},
			{"MP3", "pmos", "Y", "C", "p2"},
			{"MN1", "nmos", "Y", "A", "GND"},
			{"MN2", "nmos", "Y", "B", "GND"},
			{"MN3", "nmos", "Y", "C", "GND"},
		},
	})

	// NOR4 is a four-input NOR (8T).
	NOR4 = register(&CellDef{
		Name:  "NOR4",
		Ports: []string{"A", "B", "C", "D", "Y", "VDD", "GND"},
		Mos: []MOS{
			{"MP1", "pmos", "p1", "A", "VDD"},
			{"MP2", "pmos", "p2", "B", "p1"},
			{"MP3", "pmos", "p3", "C", "p2"},
			{"MP4", "pmos", "Y", "D", "p3"},
			{"MN1", "nmos", "Y", "A", "GND"},
			{"MN2", "nmos", "Y", "B", "GND"},
			{"MN3", "nmos", "Y", "C", "GND"},
			{"MN4", "nmos", "Y", "D", "GND"},
		},
	})

	// AND2 is NAND2 followed by an inverter (6T).
	AND2 = register(&CellDef{
		Name:  "AND2",
		Ports: []string{"A", "B", "Y", "VDD", "GND"},
		Mos: []MOS{
			{"MP1", "pmos", "yb", "A", "VDD"},
			{"MP2", "pmos", "yb", "B", "VDD"},
			{"MN1", "nmos", "yb", "A", "n1"},
			{"MN2", "nmos", "n1", "B", "GND"},
			{"MP3", "pmos", "Y", "yb", "VDD"},
			{"MN3", "nmos", "Y", "yb", "GND"},
		},
	})

	// OR2 is NOR2 followed by an inverter (6T).
	OR2 = register(&CellDef{
		Name:  "OR2",
		Ports: []string{"A", "B", "Y", "VDD", "GND"},
		Mos: []MOS{
			{"MP1", "pmos", "p1", "A", "VDD"},
			{"MP2", "pmos", "yb", "B", "p1"},
			{"MN1", "nmos", "yb", "A", "GND"},
			{"MN2", "nmos", "yb", "B", "GND"},
			{"MP3", "pmos", "Y", "yb", "VDD"},
			{"MN3", "nmos", "Y", "yb", "GND"},
		},
	})

	// AOI21 computes Y = !(A·B + C) (6T).
	AOI21 = register(&CellDef{
		Name:  "AOI21",
		Ports: []string{"A", "B", "C", "Y", "VDD", "GND"},
		Mos: []MOS{
			{"MP1", "pmos", "p1", "A", "VDD"},
			{"MP2", "pmos", "p1", "B", "VDD"},
			{"MP3", "pmos", "Y", "C", "p1"},
			{"MN1", "nmos", "Y", "A", "n1"},
			{"MN2", "nmos", "n1", "B", "GND"},
			{"MN3", "nmos", "Y", "C", "GND"},
		},
	})

	// OAI21 computes Y = !((A+B)·C) (6T).
	OAI21 = register(&CellDef{
		Name:  "OAI21",
		Ports: []string{"A", "B", "C", "Y", "VDD", "GND"},
		Mos: []MOS{
			{"MP1", "pmos", "p1", "A", "VDD"},
			{"MP2", "pmos", "Y", "B", "p1"},
			{"MP3", "pmos", "Y", "C", "VDD"},
			{"MN1", "nmos", "Y", "C", "n1"},
			{"MN2", "nmos", "n1", "A", "GND"},
			{"MN3", "nmos", "n1", "B", "GND"},
		},
	})

	// AOI22 computes Y = !(A·B + C·D) (8T).
	AOI22 = register(&CellDef{
		Name:  "AOI22",
		Ports: []string{"A", "B", "C", "D", "Y", "VDD", "GND"},
		Mos: []MOS{
			{"MP1", "pmos", "p1", "A", "VDD"},
			{"MP2", "pmos", "p1", "B", "VDD"},
			{"MP3", "pmos", "Y", "C", "p1"},
			{"MP4", "pmos", "Y", "D", "p1"},
			{"MN1", "nmos", "Y", "A", "n1"},
			{"MN2", "nmos", "n1", "B", "GND"},
			{"MN3", "nmos", "Y", "C", "n2"},
			{"MN4", "nmos", "n2", "D", "GND"},
		},
	})

	// OAI22 computes Y = !((A+B)·(C+D)) (8T).
	OAI22 = register(&CellDef{
		Name:  "OAI22",
		Ports: []string{"A", "B", "C", "D", "Y", "VDD", "GND"},
		Mos: []MOS{
			{"MP1", "pmos", "p1", "A", "VDD"},
			{"MP2", "pmos", "Y", "B", "p1"},
			{"MP3", "pmos", "p2", "C", "VDD"},
			{"MP4", "pmos", "Y", "D", "p2"},
			{"MN1", "nmos", "Y", "A", "n1"},
			{"MN2", "nmos", "Y", "B", "n1"},
			{"MN3", "nmos", "n1", "C", "GND"},
			{"MN4", "nmos", "n1", "D", "GND"},
		},
	})

	// XOR2 is a static-CMOS exclusive-or: two input inverters feeding an
	// AOI22 computing Y = !(A·B + Ab·Bb) (12T).
	XOR2 = register(&CellDef{
		Name:  "XOR2",
		Ports: []string{"A", "B", "Y", "VDD", "GND"},
		Mos: []MOS{
			{"MPA", "pmos", "ab", "A", "VDD"},
			{"MNA", "nmos", "ab", "A", "GND"},
			{"MPB", "pmos", "bb", "B", "VDD"},
			{"MNB", "nmos", "bb", "B", "GND"},
			{"MP1", "pmos", "p1", "A", "VDD"},
			{"MP2", "pmos", "p1", "B", "VDD"},
			{"MP3", "pmos", "Y", "ab", "p1"},
			{"MP4", "pmos", "Y", "bb", "p1"},
			{"MN1", "nmos", "Y", "A", "n1"},
			{"MN2", "nmos", "n1", "B", "GND"},
			{"MN3", "nmos", "Y", "ab", "n2"},
			{"MN4", "nmos", "n2", "bb", "GND"},
		},
	})

	// XNOR2 is XOR2 with the output stack roles swapped: two input
	// inverters feeding an AOI22 computing Y = !(A·Bb + Ab·B) (12T).
	XNOR2 = register(&CellDef{
		Name:  "XNOR2",
		Ports: []string{"A", "B", "Y", "VDD", "GND"},
		Mos: []MOS{
			{"MPA", "pmos", "ab", "A", "VDD"},
			{"MNA", "nmos", "ab", "A", "GND"},
			{"MPB", "pmos", "bb", "B", "VDD"},
			{"MNB", "nmos", "bb", "B", "GND"},
			{"MP1", "pmos", "p1", "A", "VDD"},
			{"MP2", "pmos", "p1", "bb", "VDD"},
			{"MP3", "pmos", "Y", "ab", "p1"},
			{"MP4", "pmos", "Y", "B", "p1"},
			{"MN1", "nmos", "Y", "A", "n1"},
			{"MN2", "nmos", "n1", "bb", "GND"},
			{"MN3", "nmos", "Y", "ab", "n2"},
			{"MN4", "nmos", "n2", "B", "GND"},
		},
	})

	// HA is a half adder: S = A xor B via an XOR2 structure, C = A·B via
	// an AND2 structure (18T —
	// the two blocks are kept structurally independent so the cell can be
	// tiled without sharing internal nodes).
	HA = register(&CellDef{
		Name:  "HA",
		Ports: []string{"A", "B", "S", "C", "VDD", "GND"},
		Mos: []MOS{
			// XOR block.
			{"MPA", "pmos", "ab", "A", "VDD"},
			{"MNA", "nmos", "ab", "A", "GND"},
			{"MPB", "pmos", "bb", "B", "VDD"},
			{"MNB", "nmos", "bb", "B", "GND"},
			{"MP1", "pmos", "p1", "A", "VDD"},
			{"MP2", "pmos", "p1", "B", "VDD"},
			{"MP3", "pmos", "S", "ab", "p1"},
			{"MP4", "pmos", "S", "bb", "p1"},
			{"MN1", "nmos", "S", "A", "n1"},
			{"MN2", "nmos", "n1", "B", "GND"},
			{"MN3", "nmos", "S", "ab", "n2"},
			{"MN4", "nmos", "n2", "bb", "GND"},
			// AND block.
			{"MP5", "pmos", "cb", "A", "VDD"},
			{"MP6", "pmos", "cb", "B", "VDD"},
			{"MN5", "nmos", "cb", "A", "n3"},
			{"MN6", "nmos", "n3", "B", "GND"},
			{"MP7", "pmos", "C", "cb", "VDD"},
			{"MN7", "nmos", "C", "cb", "GND"},
		},
	})

	// TINV is a tristate (clocked) inverter: Y = !A while EN is high,
	// high-impedance otherwise (6T: the classic four-transistor stack plus
	// an enable inverter).
	TINV = register(&CellDef{
		Name:  "TINV",
		Ports: []string{"A", "EN", "Y", "VDD", "GND"},
		Mos: []MOS{
			{"MPE", "pmos", "enb", "EN", "VDD"},
			{"MNE", "nmos", "enb", "EN", "GND"},
			{"MP1", "pmos", "px", "A", "VDD"},
			{"MP2", "pmos", "Y", "enb", "px"},
			{"MN2", "nmos", "Y", "EN", "nx"},
			{"MN1", "nmos", "nx", "A", "GND"},
		},
	})

	// MUX2 is a transmission-gate 2:1 multiplexer: Y = S ? B : A (6T).
	MUX2 = register(&CellDef{
		Name:  "MUX2",
		Ports: []string{"A", "B", "S", "Y", "VDD", "GND"},
		Mos: []MOS{
			{"MPS", "pmos", "sb", "S", "VDD"},
			{"MNS", "nmos", "sb", "S", "GND"},
			{"MNA", "nmos", "A", "sb", "Y"},
			{"MPA", "pmos", "A", "S", "Y"},
			{"MNB", "nmos", "B", "S", "Y"},
			{"MPB", "pmos", "B", "sb", "Y"},
		},
	})

	// LATCH is a transparent D latch with transmission-gate input and
	// feedback (10T).
	LATCH = register(&CellDef{
		Name:  "LATCH",
		Ports: []string{"D", "EN", "Q", "VDD", "GND"},
		Mos: []MOS{
			{"MPE", "pmos", "enb", "EN", "VDD"},
			{"MNE", "nmos", "enb", "EN", "GND"},
			{"MNI", "nmos", "D", "EN", "x"},
			{"MPI", "pmos", "D", "enb", "x"},
			{"MPQ", "pmos", "Q", "x", "VDD"},
			{"MNQ", "nmos", "Q", "x", "GND"},
			{"MPF", "pmos", "fb", "Q", "VDD"},
			{"MNF", "nmos", "fb", "Q", "GND"},
			{"MNH", "nmos", "fb", "enb", "x"},
			{"MPH", "pmos", "fb", "EN", "x"},
		},
	})

	// DFF is a master-slave D flip-flop built from two transmission-gate
	// latches sharing one clock inverter (18T).
	DFF = register(&CellDef{
		Name:  "DFF",
		Ports: []string{"D", "CLK", "Q", "VDD", "GND"},
		Mos: []MOS{
			// Clock inverter.
			{"MPC", "pmos", "ckb", "CLK", "VDD"},
			{"MNC", "nmos", "ckb", "CLK", "GND"},
			// Master: transparent while CLK is low.
			{"MNI1", "nmos", "D", "ckb", "m1"},
			{"MPI1", "pmos", "D", "CLK", "m1"},
			{"MPM", "pmos", "m2", "m1", "VDD"},
			{"MNM", "nmos", "m2", "m1", "GND"},
			{"MPMF", "pmos", "mf", "m2", "VDD"},
			{"MNMF", "nmos", "mf", "m2", "GND"},
			{"MNH1", "nmos", "mf", "CLK", "m1"},
			{"MPH1", "pmos", "mf", "ckb", "m1"},
			// Slave: transparent while CLK is high.
			{"MNI2", "nmos", "m2", "CLK", "s1"},
			{"MPI2", "pmos", "m2", "ckb", "s1"},
			{"MPS", "pmos", "Q", "s1", "VDD"},
			{"MNS", "nmos", "Q", "s1", "GND"},
			{"MPSF", "pmos", "sf", "Q", "VDD"},
			{"MNSF", "nmos", "sf", "Q", "GND"},
			{"MNH2", "nmos", "sf", "ckb", "s1"},
			{"MPH2", "pmos", "sf", "CLK", "s1"},
		},
	})

	// SRAM6T is the classic six-transistor static RAM bit cell:
	// cross-coupled inverters plus two n-type access transistors.
	SRAM6T = register(&CellDef{
		Name:  "SRAM6T",
		Ports: []string{"BL", "BLB", "WL", "VDD", "GND"},
		Mos: []MOS{
			{"MPL", "pmos", "q", "qb", "VDD"},
			{"MNL", "nmos", "q", "qb", "GND"},
			{"MPR", "pmos", "qb", "q", "VDD"},
			{"MNR", "nmos", "qb", "q", "GND"},
			{"MAL", "nmos", "BL", "WL", "q"},
			{"MAR", "nmos", "BLB", "WL", "qb"},
		},
	})

	// FA is a 28-transistor static CMOS mirror full adder.  cob and sb are
	// the inverted carry and sum nodes; CO and S are driven by output
	// inverters, as in the textbook mirror-adder topology.
	FA = register(&CellDef{
		Name:  "FA",
		Ports: []string{"A", "B", "CI", "S", "CO", "VDD", "GND"},
		Mos: []MOS{
			// Carry: cob = !(A·B + CI·(A+B)).
			{"MP1", "pmos", "pa", "A", "VDD"},
			{"MP2", "pmos", "pa", "B", "VDD"},
			{"MP3", "pmos", "cob", "CI", "pa"},
			{"MP4", "pmos", "pb", "A", "VDD"},
			{"MP5", "pmos", "cob", "B", "pb"},
			{"MN1", "nmos", "cob", "CI", "na"},
			{"MN2", "nmos", "na", "A", "GND"},
			{"MN3", "nmos", "na", "B", "GND"},
			{"MN4", "nmos", "cob", "A", "nb"},
			{"MN5", "nmos", "nb", "B", "GND"},
			// Sum: sb = !(A·B·CI + cob·(A+B+CI)).
			{"MP6", "pmos", "p3", "A", "VDD"},
			{"MP7", "pmos", "p4", "B", "p3"},
			{"MP8", "pmos", "sb", "CI", "p4"},
			{"MP9", "pmos", "p5", "A", "VDD"},
			{"MP10", "pmos", "p5", "B", "VDD"},
			{"MP11", "pmos", "p5", "CI", "VDD"},
			{"MP12", "pmos", "sb", "cob", "p5"},
			{"MN6", "nmos", "sb", "A", "n3"},
			{"MN7", "nmos", "n3", "B", "n4"},
			{"MN8", "nmos", "n4", "CI", "GND"},
			{"MN9", "nmos", "sb", "cob", "n5"},
			{"MN10", "nmos", "n5", "A", "GND"},
			{"MN11", "nmos", "n5", "B", "GND"},
			{"MN12", "nmos", "n5", "CI", "GND"},
			// Output inverters.
			{"MPCO", "pmos", "CO", "cob", "VDD"},
			{"MNCO", "nmos", "CO", "cob", "GND"},
			{"MPS", "pmos", "S", "sb", "VDD"},
			{"MNS", "nmos", "S", "sb", "GND"},
		},
	})
)
