// Package sprecog implements a classical ad hoc CMOS gate recognizer of
// the kind SubGemini's introduction contrasts itself with (paper §I,
// refs [1,5,7]): "channel graphs and signal flow are often used to extract
// simple gates from a transistor layout.  Such techniques, however, do not
// generalize to different subcircuit structures and do not transfer to
// other technologies."
//
// The recognizer partitions a transistor netlist into channel-connected
// components (transistors joined through source/drain nets, with the
// supply rails acting as barriers), finds each component's output net, and
// reduces the pull-up and pull-down networks by series/parallel graph
// contraction.  A component whose pull-down reduces to a series-parallel
// expression with a dual pull-up is a recognized static CMOS gate, named
// by its canonical function (INV, NAND3, AOI22, ...).
//
// The limits are exactly the ones the paper describes — and they are what
// experiment E9 measures: transmission gates, latches, flip-flops, SRAM
// cells, and pass-transistor fabrics are not series-parallel static gates
// and come back unrecognized, while SubGemini's library matching handles
// them with the same algorithm it uses for NANDs.
package sprecog

import (
	"fmt"
	"sort"
	"strings"

	"subgemini/internal/graph"
)

// Gate is one recognized static CMOS gate.
type Gate struct {
	// Output is the gate's output net.
	Output *graph.Net
	// Inputs are the gate input nets, sorted by name.
	Inputs []*graph.Net
	// Function is the canonical boolean expression, e.g. "!((a*b)+c)".
	Function string
	// Kind names the gate when the structure matches a standard shape
	// (INV, NAND2..4, NOR2..4, AOI21, AOI22, OAI21, OAI22); otherwise
	// "CMOS" for a recognized but non-standard complex gate.
	Kind string
	// Devices are the transistors forming the gate.
	Devices []*graph.Device
}

// Result is the outcome of a recognition pass.
type Result struct {
	// Gates lists the recognized static gates.
	Gates []Gate
	// Unrecognized groups the remaining devices by channel-connected
	// component: pass-transistor structures, non-series-parallel networks,
	// and anything else the ad hoc method cannot interpret.
	Unrecognized [][]*graph.Device
}

// RecognizedDevices returns how many transistors ended up inside
// recognized gates.
func (r *Result) RecognizedDevices() int {
	n := 0
	for _, g := range r.Gates {
		n += len(g.Devices)
	}
	return n
}

// UnrecognizedDevices returns how many transistors no gate claimed.
func (r *Result) UnrecognizedDevices() int {
	n := 0
	for _, c := range r.Unrecognized {
		n += len(c)
	}
	return n
}

// KindCounts tallies recognized gates by kind.
func (r *Result) KindCounts() map[string]int {
	m := map[string]int{}
	for _, g := range r.Gates {
		m[g.Kind]++
	}
	return m
}

// Recognize runs the ad hoc extractor over a flat transistor circuit.
// vdd and gnd name the supply nets; they must exist if any MOS device is
// present.  Non-MOS devices are ignored (left unclaimed but not reported
// as unrecognized CCCs).
func Recognize(c *graph.Circuit, vdd, gnd string) (*Result, error) {
	vddNet, gndNet := c.NetByName(vdd), c.NetByName(gnd)
	res := &Result{}

	mosDevices := make([]*graph.Device, 0, c.NumDevices())
	for _, d := range c.Devices {
		if d.Type == "nmos" || d.Type == "pmos" {
			mosDevices = append(mosDevices, d)
		}
	}
	if len(mosDevices) == 0 {
		return res, nil
	}
	if vddNet == nil || gndNet == nil {
		return nil, fmt.Errorf("sprecog: circuit %s lacks supply net %q or %q", c.Name, vdd, gnd)
	}

	for _, comp := range channelComponents(mosDevices, vddNet, gndNet) {
		gate, ok := recognizeComponent(comp, vddNet, gndNet)
		if ok {
			res.Gates = append(res.Gates, gate)
		} else {
			res.Unrecognized = append(res.Unrecognized, comp)
		}
	}
	sort.Slice(res.Gates, func(i, j int) bool { return res.Gates[i].Output.Name < res.Gates[j].Output.Name })
	return res, nil
}

// channelComponents groups MOS devices connected through the source/drain
// terminals of shared non-rail nets (the classic channel graph).  Gate
// terminals do not merge components, and the rails act as barriers.
func channelComponents(devices []*graph.Device, vdd, gnd *graph.Net) [][]*graph.Device {
	parent := make(map[*graph.Device]*graph.Device, len(devices))
	var find func(d *graph.Device) *graph.Device
	find = func(d *graph.Device) *graph.Device {
		if parent[d] != d {
			parent[d] = find(parent[d])
		}
		return parent[d]
	}
	union := func(a, b *graph.Device) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	inSet := make(map[*graph.Device]bool, len(devices))
	for _, d := range devices {
		parent[d] = d
		inSet[d] = true
	}
	for _, d := range devices {
		for _, pin := range d.Pins {
			if pin.Class != graph.ClassDS || pin.Net == vdd || pin.Net == gnd {
				continue
			}
			for _, conn := range pin.Net.Conns {
				other := conn.Dev
				if other == d || !inSet[other] {
					continue
				}
				if other.Pins[conn.Pin].Class == graph.ClassDS {
					union(d, other)
				}
			}
		}
	}
	byRoot := map[*graph.Device][]*graph.Device{}
	for _, d := range devices {
		r := find(d)
		byRoot[r] = append(byRoot[r], d)
	}
	comps := make([][]*graph.Device, 0, len(byRoot))
	for _, comp := range byRoot {
		sort.Slice(comp, func(i, j int) bool { return comp[i].Index < comp[j].Index })
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0].Index < comps[j][0].Index })
	return comps
}

// recognizeComponent tries to interpret one channel-connected component as
// a static CMOS gate.
func recognizeComponent(comp []*graph.Device, vdd, gnd *graph.Net) (Gate, bool) {
	var pmos, nmos []*graph.Device
	for _, d := range comp {
		switch d.Type {
		case "pmos":
			pmos = append(pmos, d)
		case "nmos":
			nmos = append(nmos, d)
		}
	}
	if len(pmos) == 0 || len(nmos) == 0 {
		return Gate{}, false // pass network or half a gate
	}

	// The output is the unique non-rail net touched by both a pmos and an
	// nmos source/drain terminal.
	dsNets := func(ds []*graph.Device) map[*graph.Net]bool {
		m := map[*graph.Net]bool{}
		for _, d := range ds {
			for _, pin := range d.Pins {
				if pin.Class == graph.ClassDS && pin.Net != vdd && pin.Net != gnd {
					m[pin.Net] = true
				}
			}
		}
		return m
	}
	pNets, nNets := dsNets(pmos), dsNets(nmos)
	var outputs []*graph.Net
	for n := range pNets {
		if nNets[n] {
			outputs = append(outputs, n)
		}
	}
	if len(outputs) != 1 {
		return Gate{}, false // transmission gates, cross-coupled pairs, ...
	}
	out := outputs[0]

	pdn, ok := reduceNetwork(nmos, out, gnd)
	if !ok {
		return Gate{}, false
	}
	pun, ok := reduceNetwork(pmos, out, vdd)
	if !ok {
		return Gate{}, false
	}
	// Static CMOS requires the pull-up to conduct exactly when the
	// pull-down does not.  A structural-dual comparison is not enough:
	// the mirror full adder's carry stage uses the *same* network topology
	// for both planes (majority is self-dual), so complementarity is
	// checked as a truth table over the gate inputs.
	if !complementary(pdn, pun) {
		return Gate{}, false
	}

	inputs := map[string]*graph.Net{}
	for _, d := range comp {
		for _, pin := range d.Pins {
			if pin.Class == graph.ClassGate {
				inputs[pin.Net.Name] = pin.Net
			}
		}
	}
	names := make([]string, 0, len(inputs))
	for n := range inputs {
		names = append(names, n)
	}
	sort.Strings(names)
	ins := make([]*graph.Net, len(names))
	for i, n := range names {
		ins[i] = inputs[n]
	}
	return Gate{
		Output:   out,
		Inputs:   ins,
		Function: "!" + canonical(pdn),
		Kind:     classify(pdn),
		Devices:  comp,
	}, true
}

// expr is a series-parallel boolean expression over gate-input net names:
// op '=' is a literal, '*' a series (AND toward conduction), '+' a
// parallel composition.
type expr struct {
	op    byte
	name  string
	kids  []*expr
	canon string // memoized canonical form
}

func literal(name string) *expr { return &expr{op: '=', name: name} }

func combine(op byte, a, b *expr) *expr {
	kids := make([]*expr, 0, 4)
	for _, e := range []*expr{a, b} {
		if e.op == op {
			kids = append(kids, e.kids...)
		} else {
			kids = append(kids, e)
		}
	}
	return &expr{op: op, kids: kids}
}

// canonical renders the expression with sorted operands, so structurally
// equal networks compare equal as strings.
func canonical(e *expr) string {
	if e.canon != "" {
		return e.canon
	}
	switch e.op {
	case '=':
		e.canon = e.name
	default:
		parts := make([]string, len(e.kids))
		for i, k := range e.kids {
			parts[i] = canonical(k)
		}
		sort.Strings(parts)
		e.canon = "(" + strings.Join(parts, string(e.op)) + ")"
	}
	return e.canon
}

// complementary reports whether the pull-up network conducts exactly when
// the pull-down does not, for every assignment of the gate inputs.  An
// n-type transistor conducts on a high gate and a p-type on a low gate, so
// with both expressions written over gate-net literals the requirement is
// punConducts(¬x) == ¬pdnConducts(x), i.e. pun evaluated with inverted
// literals equals the complement of pdn.  Gates with more than 20 inputs
// fall back to the (sufficient) structural-dual test.
func complementary(pdn, pun *expr) bool {
	vars := map[string]uint{}
	collectVars(pdn, vars)
	collectVars(pun, vars)
	if len(vars) > 20 {
		return canonical(dual(pdn)) == canonical(pun)
	}
	n := uint(len(vars))
	for assign := uint64(0); assign < 1<<n; assign++ {
		down := eval(pdn, vars, assign, false)
		up := eval(pun, vars, assign, true)
		if up == down {
			return false // both conduct (short) or neither (floating)
		}
	}
	return true
}

func collectVars(e *expr, vars map[string]uint) {
	if e.op == '=' {
		if _, ok := vars[e.name]; !ok {
			vars[e.name] = uint(len(vars))
		}
		return
	}
	for _, k := range e.kids {
		collectVars(k, vars)
	}
}

// eval computes conduction under an input assignment; pType literals
// conduct on a low input.
func eval(e *expr, vars map[string]uint, assign uint64, pType bool) bool {
	switch e.op {
	case '=':
		high := assign&(1<<vars[e.name]) != 0
		if pType {
			return !high
		}
		return high
	case '*':
		for _, k := range e.kids {
			if !eval(k, vars, assign, pType) {
				return false
			}
		}
		return true
	default: // '+'
		for _, k := range e.kids {
			if eval(k, vars, assign, pType) {
				return true
			}
		}
		return false
	}
}

// dual swaps series and parallel composition (De Morgan on the network).
func dual(e *expr) *expr {
	if e.op == '=' {
		return e
	}
	op := byte('+')
	if e.op == '+' {
		op = '*'
	}
	kids := make([]*expr, len(e.kids))
	for i, k := range e.kids {
		kids[i] = dual(k)
	}
	return &expr{op: op, kids: kids}
}

// reduceNetwork contracts the transistor network between the two terminal
// nets by alternating parallel-edge merging and series-node elimination.
// It returns the conduction expression when the network is series-parallel
// with exactly those terminals, and ok=false otherwise.
func reduceNetwork(devices []*graph.Device, out, rail *graph.Net) (*expr, bool) {
	type edge struct {
		u, v *graph.Net
		e    *expr
	}
	var edges []edge
	for _, d := range devices {
		var ds []*graph.Net
		var gate *graph.Net
		for _, pin := range d.Pins {
			switch pin.Class {
			case graph.ClassDS:
				ds = append(ds, pin.Net)
			case graph.ClassGate:
				gate = pin.Net
			}
		}
		if len(ds) != 2 || gate == nil {
			return nil, false
		}
		if ds[0] == ds[1] {
			return nil, false // shorted transistor: not a logic network
		}
		edges = append(edges, edge{ds[0], ds[1], literal(gate.Name)})
	}
	isTerminal := func(n *graph.Net) bool { return n == out || n == rail }

	for {
		if len(edges) == 1 && ((edges[0].u == out && edges[0].v == rail) || (edges[0].u == rail && edges[0].v == out)) {
			return edges[0].e, true
		}
		changed := false

		// Parallel: merge edges with the same endpoints.
		for i := 0; i < len(edges) && !changed; i++ {
			for j := i + 1; j < len(edges); j++ {
				same := (edges[i].u == edges[j].u && edges[i].v == edges[j].v) ||
					(edges[i].u == edges[j].v && edges[i].v == edges[j].u)
				if same {
					edges[i].e = combine('+', edges[i].e, edges[j].e)
					edges = append(edges[:j], edges[j+1:]...)
					changed = true
					break
				}
			}
		}
		if changed {
			continue
		}

		// Series: eliminate a non-terminal net incident to exactly two
		// edges.
		degree := map[*graph.Net]int{}
		for _, e := range edges {
			degree[e.u]++
			degree[e.v]++
		}
		for w, deg := range degree {
			if deg != 2 || isTerminal(w) {
				continue
			}
			var idx []int
			for i := range edges {
				if edges[i].u == w || edges[i].v == w {
					idx = append(idx, i)
				}
			}
			a, b := edges[idx[0]], edges[idx[1]]
			otherEnd := func(e edge) *graph.Net {
				if e.u == w {
					return e.v
				}
				return e.u
			}
			merged := edge{otherEnd(a), otherEnd(b), combine('*', a.e, b.e)}
			// Remove b then a (higher index first).
			edges = append(edges[:idx[1]], edges[idx[1]+1:]...)
			edges[idx[0]] = merged
			changed = true
			break
		}
		if !changed {
			return nil, false // bridge or disconnected: not series-parallel
		}
	}
}

// classify maps a pull-down expression shape to a standard gate name.
func classify(pdn *expr) string {
	shape := shapeOf(pdn)
	switch shape {
	case "x":
		return "INV"
	case "(x*x)":
		return "NAND2"
	case "(x*x*x)":
		return "NAND3"
	case "(x*x*x*x)":
		return "NAND4"
	case "(x+x)":
		return "NOR2"
	case "(x+x+x)":
		return "NOR3"
	case "(x+x+x+x)":
		return "NOR4"
	case "((x*x)+x)":
		return "AOI21"
	case "((x*x)+(x*x))":
		return "AOI22"
	case "((x+x)*x)":
		return "OAI21"
	case "((x+x)*(x+x))":
		return "OAI22"
	}
	return "CMOS"
}

// shapeOf canonicalizes an expression with anonymized literals, so NAND2
// on (a,b) and on (p,q) share a shape.
func shapeOf(e *expr) string {
	switch e.op {
	case '=':
		return "x"
	default:
		parts := make([]string, len(e.kids))
		for i, k := range e.kids {
			parts[i] = shapeOf(k)
		}
		sort.Strings(parts)
		return "(" + strings.Join(parts, string(e.op)) + ")"
	}
}
