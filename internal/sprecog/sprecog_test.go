package sprecog

import (
	"testing"

	"subgemini/internal/gen"
	"subgemini/internal/graph"
	"subgemini/internal/stdcell"
)

// oneCell builds a circuit holding a single instance of the cell.
func oneCell(cell *stdcell.CellDef) *graph.Circuit {
	c := graph.New("one_" + cell.Name)
	vdd, gnd := c.AddNet("VDD"), c.AddNet("GND")
	conns := map[string]*graph.Net{}
	for _, p := range cell.Ports {
		switch p {
		case "VDD":
			conns[p] = vdd
		case "GND":
			conns[p] = gnd
		default:
			conns[p] = c.AddNet(p)
		}
	}
	cell.MustInstantiate(c, "u", conns)
	return c
}

// TestRecognizesStaticGates: every simple static gate in the library is
// recognized with the right name and full device coverage.
func TestRecognizesStaticGates(t *testing.T) {
	cases := map[string]string{
		"INV": "INV", "NAND2": "NAND2", "NAND3": "NAND3", "NAND4": "NAND4",
		"NOR2": "NOR2", "NOR3": "NOR3", "NOR4": "NOR4",
		"AOI21": "AOI21", "OAI21": "OAI21", "AOI22": "AOI22", "OAI22": "OAI22",
	}
	for cellName, wantKind := range cases {
		cell := stdcell.Get(cellName)
		res, err := Recognize(oneCell(cell), "VDD", "GND")
		if err != nil {
			t.Fatalf("%s: %v", cellName, err)
		}
		if len(res.Gates) != 1 {
			t.Errorf("%s: recognized %d gates, want 1", cellName, len(res.Gates))
			continue
		}
		g := res.Gates[0]
		if g.Kind != wantKind {
			t.Errorf("%s: kind = %s, want %s (function %s)", cellName, g.Kind, wantKind, g.Function)
		}
		if len(g.Devices) != cell.NumTransistors() {
			t.Errorf("%s: gate claims %d devices, want %d", cellName, len(g.Devices), cell.NumTransistors())
		}
		if g.Output.Name != "Y" {
			t.Errorf("%s: output = %s, want Y", cellName, g.Output.Name)
		}
		if res.UnrecognizedDevices() != 0 {
			t.Errorf("%s: %d devices unrecognized", cellName, res.UnrecognizedDevices())
		}
	}
}

func TestRecognizesMultiStageCellsAsPieces(t *testing.T) {
	// AND2 = NAND2 + INV: two recognized gates, no single AND2.
	res, err := Recognize(oneCell(stdcell.AND2), "VDD", "GND")
	if err != nil {
		t.Fatal(err)
	}
	kinds := res.KindCounts()
	if kinds["NAND2"] != 1 || kinds["INV"] != 1 {
		t.Errorf("AND2 pieces = %v, want one NAND2 and one INV", kinds)
	}
	// XOR2 = 2 INV + one complex AOI: the AOI22-shaped stack is found but
	// the recognizer cannot see the two-level XOR function.
	res, err = Recognize(oneCell(stdcell.XOR2), "VDD", "GND")
	if err != nil {
		t.Fatal(err)
	}
	kinds = res.KindCounts()
	if kinds["INV"] != 2 || kinds["AOI22"] != 1 {
		t.Errorf("XOR2 pieces = %v, want 2 INV + 1 AOI22", kinds)
	}
	// FA = carry AOI + sum AOI + 2 inverters, where the sum network is a
	// non-standard complex gate.
	res, err = Recognize(oneCell(stdcell.FA), "VDD", "GND")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.RecognizedDevices(); got != 28 {
		t.Errorf("FA: recognized %d devices, want all 28", got)
	}
	if got := res.KindCounts()["INV"]; got != 2 {
		t.Errorf("FA: %d INVs, want 2", got)
	}
}

// TestFailsOnPassTransistorStructures documents the method's §I limits:
// everything built from transmission gates or cross-coupled pairs is
// unrecognizable.
func TestFailsOnPassTransistorStructures(t *testing.T) {
	cases := map[string]struct {
		cell            *stdcell.CellDef
		recognizedKinds map[string]int // the incidental inverters
	}{
		"MUX2": {stdcell.MUX2, map[string]int{"INV": 1}},
		// In LATCH and DFF the feedback inverters sit in the same
		// channel-connected region as the transmission gates, so only the
		// isolated inverters (enable/clock and output drivers) survive.
		"LATCH":  {stdcell.LATCH, map[string]int{"INV": 2}},
		"DFF":    {stdcell.DFF, map[string]int{"INV": 2}},
		"SRAM6T": {stdcell.SRAM6T, map[string]int{}},
	}
	for name, tc := range cases {
		res, err := Recognize(oneCell(tc.cell), "VDD", "GND")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		kinds := res.KindCounts()
		for k, want := range tc.recognizedKinds {
			if kinds[k] != want {
				t.Errorf("%s: recognized %d %s, want %d", name, kinds[k], k, want)
			}
		}
		if res.UnrecognizedDevices() == 0 {
			t.Errorf("%s: ad hoc recognizer claimed everything; expected pass structures to defeat it", name)
		}
		if res.RecognizedDevices()+res.UnrecognizedDevices() != tc.cell.NumTransistors() {
			t.Errorf("%s: device accounting broken", name)
		}
	}
}

func TestSwitchGridUnrecognized(t *testing.T) {
	d := gen.SwitchGrid(4, 0)
	// A pure pass fabric has no rails connected to MOS devices at all; add
	// the rails so Recognize has its terminals, then expect zero gates.
	res, err := Recognize(d.C, "VDD", "GND")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Gates) != 0 {
		t.Errorf("recognized %d gates in a switch fabric, want 0", len(res.Gates))
	}
	if res.UnrecognizedDevices() != d.C.NumDevices() {
		t.Errorf("unrecognized %d devices, want all %d", res.UnrecognizedDevices(), d.C.NumDevices())
	}
}

func TestRecognizeWholeDesigns(t *testing.T) {
	// A multiplier is all static gates: full coverage.
	m := gen.ArrayMultiplier(3)
	res, err := Recognize(m.C, "VDD", "GND")
	if err != nil {
		t.Fatal(err)
	}
	if res.UnrecognizedDevices() != 0 {
		t.Errorf("multiplier: %d devices unrecognized, want 0", res.UnrecognizedDevices())
	}
	// 9 AND2 → 9 NAND2 + 9 INV pieces; 6 FA → 6·2 complex + 6·2 INV.
	kinds := res.KindCounts()
	if kinds["NAND2"] != 9 {
		t.Errorf("multiplier: %d NAND2, want 9", kinds["NAND2"])
	}
	if kinds["INV"] != 9+12 {
		t.Errorf("multiplier: %d INV, want 21", kinds["INV"])
	}

	// A shift register is mostly pass structures: recognition stops at the
	// inverters.
	s := gen.ShiftRegister(8)
	res, err = Recognize(s.C, "VDD", "GND")
	if err != nil {
		t.Fatal(err)
	}
	if res.UnrecognizedDevices() == 0 {
		t.Error("shift register fully recognized; expected the latch cores to defeat the ad hoc method")
	}
	// Each stage's clock inverter is isolated (8); each Q driver feeds the
	// next stage's input transmission gate and merges into its region, so
	// only the last stage's Q driver survives (1).
	if got := res.KindCounts()["INV"]; got != 8+1 {
		t.Errorf("shift register: %d INVs, want 9", got)
	}
}

func TestRecognizeEdgeCases(t *testing.T) {
	// Empty circuit.
	res, err := Recognize(graph.New("empty"), "VDD", "GND")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Gates) != 0 || len(res.Unrecognized) != 0 {
		t.Error("empty circuit produced results")
	}
	// MOS devices but no rails: an error, not a panic.
	c := graph.New("norails")
	cls := []graph.TermClass{graph.ClassDS, graph.ClassGate, graph.ClassDS}
	c.MustAddDevice("m", "nmos", cls, []*graph.Net{c.AddNet("a"), c.AddNet("b"), c.AddNet("c")})
	if _, err := Recognize(c, "VDD", "GND"); err == nil {
		t.Error("missing rails accepted")
	}
	// Non-MOS devices are ignored.
	c2 := graph.New("rc")
	c2.MustAddDevice("r", "res", []graph.TermClass{0, 0}, []*graph.Net{c2.AddNet("a"), c2.AddNet("b")})
	res, err = Recognize(c2, "VDD", "GND")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Gates) != 0 || len(res.Unrecognized) != 0 {
		t.Error("passive-only circuit produced MOS results")
	}
}
