package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, e *Engine, id string, want State) View {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, err := e.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if v.State == want {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, v.State, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func closeNow(t *testing.T, e *Engine) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestJobLifecycleAndResult(t *testing.T) {
	e, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, e)

	req := json.RawMessage(`{"kind":"match"}`)
	v, err := e.Submit("match", req, func(context.Context) (any, error) {
		return map[string]int{"count": 3}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.State != Queued || v.ID == "" || v.Kind != "match" {
		t.Fatalf("submit view = %+v", v)
	}
	v = waitState(t, e, v.ID, Done)
	if string(v.Result) != `{"count":3}` || v.Error != "" {
		t.Errorf("done view = %+v", v)
	}
	if string(v.Request) != string(req) {
		t.Errorf("request not echoed: %s", v.Request)
	}
	if v.StartedMS == 0 || v.FinishedMS < v.StartedMS || v.CreatedMS > v.StartedMS {
		t.Errorf("timestamps out of order: %+v", v)
	}
	if c := e.Counters(); c.Submitted != 1 || c.Done != 1 {
		t.Errorf("counters = %+v", c)
	}
}

func TestJobFailureAndPanicIsolation(t *testing.T) {
	e, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, e)

	v, _ := e.Submit("match", nil, func(context.Context) (any, error) {
		return nil, errors.New("pattern exploded")
	})
	v = waitState(t, e, v.ID, Failed)
	if v.Error != "pattern exploded" {
		t.Errorf("error = %q", v.Error)
	}

	p, _ := e.Submit("match", nil, func(context.Context) (any, error) {
		panic("boom")
	})
	p = waitState(t, e, p.ID, Failed)
	if !strings.Contains(p.Error, "boom") {
		t.Errorf("panic error = %q", p.Error)
	}
	// The worker survived the panic.
	ok, _ := e.Submit("match", nil, func(context.Context) (any, error) { return 1, nil })
	waitState(t, e, ok.ID, Done)
}

func TestCancelQueuedAndRunning(t *testing.T) {
	e, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, e)

	started := make(chan struct{})
	blocker, _ := e.Submit("match", nil, func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	<-started
	queued, _ := e.Submit("match", nil, func(context.Context) (any, error) { return 1, nil })

	// Cancel the queued job: immediate terminal state, runner never runs.
	if v, err := e.Cancel(queued.ID); err != nil || v.State != Cancelled {
		t.Fatalf("cancel queued: %+v, %v", v, err)
	}
	// Cancel the running job: context cancellation finalizes it.
	if _, err := e.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	v := waitState(t, e, blocker.ID, Cancelled)
	if !strings.Contains(v.Error, "context canceled") {
		t.Errorf("cancelled error = %q", v.Error)
	}
	// Cancelling a finished job is an error.
	if _, err := e.Cancel(blocker.ID); !errors.Is(err, ErrFinished) {
		t.Errorf("cancel finished: %v", err)
	}
	if _, err := e.Cancel("j-999999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("cancel unknown: %v", err)
	}
}

func TestQueueFullRejects(t *testing.T) {
	e, err := New(Config{Workers: 1, Queue: 1})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	e.Submit("match", nil, func(context.Context) (any, error) {
		close(started)
		<-release
		return nil, nil
	})
	<-started
	if _, err := e.Submit("match", nil, func(context.Context) (any, error) { return nil, nil }); err != nil {
		t.Fatalf("queue slot 1: %v", err)
	}
	if _, err := e.Submit("match", nil, func(context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrQueueFull) {
		t.Errorf("overfull submit: %v, want ErrQueueFull", err)
	}
	close(release)
	closeNow(t, e)
}

func TestListNewestFirstAndRetention(t *testing.T) {
	e, err := New(Config{Workers: 1, Retention: 50 * time.Millisecond, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, e)
	a, _ := e.Submit("match", nil, func(context.Context) (any, error) { return 1, nil })
	b, _ := e.Submit("batch", nil, func(context.Context) (any, error) { return 2, nil })
	waitState(t, e, a.ID, Done)
	waitState(t, e, b.ID, Done)
	l := e.List()
	if len(l) != 2 || l[0].ID != b.ID || l[1].ID != a.ID {
		t.Fatalf("List = %+v", l)
	}
	recA := filepath.Join(e.cfg.Dir, a.ID+".json")
	if _, err := os.Stat(recA); err != nil {
		t.Fatalf("record not persisted: %v", err)
	}

	time.Sleep(80 * time.Millisecond)
	if l := e.List(); len(l) != 0 {
		t.Errorf("retention kept %d records past TTL", len(l))
	}
	if _, err := e.Get(a.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("pruned job still readable: %v", err)
	}
	if _, err := os.Stat(recA); !os.IsNotExist(err) {
		t.Errorf("pruned record still on disk: %v", err)
	}
}

// TestCrashRecovery simulates a kill -9 mid-job: the first engine is
// abandoned (never Closed) while a job runs; a second engine on the same
// directory reports that job failed, keeps finished jobs intact, and
// numbers new jobs after the old ones.
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	e1, err := New(Config{Workers: 1, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	finished, _ := e1.Submit("match", nil, func(context.Context) (any, error) {
		return "ok", nil
	})
	waitState(t, e1, finished.ID, Done)

	started := make(chan struct{})
	hang := make(chan struct{})
	// Release the abandoned engine's goroutine and drain it before TempDir
	// cleanup, so its late record write cannot race the removal.
	defer closeNow(t, e1)
	defer close(hang)
	running, _ := e1.Submit("extract", json.RawMessage(`{"cells":["INV"]}`), func(context.Context) (any, error) {
		close(started)
		<-hang
		return nil, nil
	})
	<-started
	queued, _ := e1.Submit("match", nil, func(context.Context) (any, error) { return nil, nil })
	// No Close: e1's process state dies here, only the directory survives.

	e2, err := New(Config{Workers: 1, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, e2)

	for _, id := range []string{running.ID, queued.ID} {
		v, err := e2.Get(id)
		if err != nil {
			t.Fatalf("Get(%s) after restart: %v", id, err)
		}
		if v.State != Failed || !strings.Contains(v.Error, "interrupted by daemon restart") {
			t.Errorf("job %s after restart = %s %q, want failed/interrupted", id, v.State, v.Error)
		}
	}
	v, err := e2.Get(finished.ID)
	if err != nil || v.State != Done || string(v.Result) != `"ok"` {
		t.Errorf("finished job after restart = %+v, %v", v, err)
	}
	var req struct {
		Cells []string `json:"cells"`
	}
	if err := json.Unmarshal(mustGet(t, e2, running.ID).Request, &req); err != nil || len(req.Cells) != 1 || req.Cells[0] != "INV" {
		t.Errorf("request payload lost across restart: %+v, %v", req, err)
	}
	if c := e2.Counters(); c.Recovered != 2 {
		t.Errorf("recovered counter = %d, want 2", c.Recovered)
	}

	nv, err := e2.Submit("match", nil, func(context.Context) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	for _, old := range []string{finished.ID, running.ID, queued.ID} {
		if nv.ID == old {
			t.Errorf("new job reused id %s", old)
		}
	}

	// A torn record is moved aside, not fatal.
	if err := os.WriteFile(filepath.Join(dir, "j-000099.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	e3, err := New(Config{Workers: 1, Dir: dir})
	if err != nil {
		t.Fatalf("boot with torn job record: %v", err)
	}
	closeNow(t, e3)
	if _, err := os.Stat(filepath.Join(dir, "j-000099.json.corrupt")); err != nil {
		t.Errorf("torn record not moved aside: %v", err)
	}
}

func mustGet(t *testing.T, e *Engine, id string) View {
	t.Helper()
	v, err := e.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestCloseDrainsAndCancelsQueued: running jobs finish inside the drain
// window; queued jobs are cancelled; late submits are rejected.
func TestCloseDrainsAndCancelsQueued(t *testing.T) {
	e, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	running, _ := e.Submit("match", nil, func(context.Context) (any, error) {
		close(started)
		<-release
		return "drained", nil
	})
	<-started
	queued, _ := e.Submit("match", nil, func(context.Context) (any, error) { return nil, nil })

	closed := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		closed <- e.Close(ctx)
	}()
	time.Sleep(10 * time.Millisecond) // let Close mark the queue
	close(release)
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
	if v := mustGet(t, e, running.ID); v.State != Done || string(v.Result) != `"drained"` {
		t.Errorf("running job after drain = %+v", v)
	}
	if v := mustGet(t, e, queued.ID); v.State != Cancelled {
		t.Errorf("queued job after drain = %+v", v)
	}
	if _, err := e.Submit("match", nil, func(context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close: %v", err)
	}
	if err := e.Close(context.Background()); err != nil {
		t.Errorf("second close: %v", err)
	}
}

// TestCloseDeadlineCancelsRunning: a runner that only stops on context
// cancellation is cut off when the drain deadline expires.
func TestCloseDeadlineCancelsRunning(t *testing.T) {
	e, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	v, _ := e.Submit("match", nil, func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := e.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Close past deadline = %v", err)
	}
	if got := mustGet(t, e, v.ID); got.State != Cancelled && got.State != Failed {
		t.Errorf("hard-cancelled job state = %s", got.State)
	}
}

func TestSubmitConcurrent(t *testing.T) {
	e, err := New(Config{Workers: 4, Queue: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, e)
	const n = 64
	ids := make(chan string, n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			v, err := e.Submit("match", nil, func(context.Context) (any, error) {
				return i, nil
			})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				ids <- ""
				return
			}
			ids <- v.ID
		}()
	}
	seen := make(map[string]bool)
	for i := 0; i < n; i++ {
		id := <-ids
		if id == "" {
			continue
		}
		if seen[id] {
			t.Fatalf("duplicate job id %s", id)
		}
		seen[id] = true
		waitState(t, e, id, Done)
	}
	if c := e.Counters(); c.Done != n {
		t.Errorf("done = %d, want %d", c.Done, n)
	}
}

func TestIDNumber(t *testing.T) {
	for _, c := range []struct {
		id string
		n  int
		ok bool
	}{{"j-000007", 7, true}, {"j-123", 123, true}, {"x-1", 0, false}, {"j-", 0, false}} {
		n, ok := idNumber(c.id)
		if n != c.n || ok != c.ok {
			t.Errorf("idNumber(%q) = %d,%v want %d,%v", c.id, n, ok, c.n, c.ok)
		}
	}
	_ = fmt.Sprintf // keep fmt imported if cases change
}
