package jobs

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"subgemini/internal/faults"
)

// TestPersistRetryRecovers: two injected record-write failures are absorbed
// by the retry loop — the job completes, the retries are counted, and the
// record lands on disk.
func TestPersistRetryRecovers(t *testing.T) {
	defer faults.Reset()
	dir := t.TempDir()
	e, err := New(Config{Workers: 1, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, e)

	// The first persist (the submit transition) loses its first two
	// attempts; the third succeeds and every later transition is clean.
	faults.Arm("jobs.persist", faults.Spec{Mode: faults.ModeError, Count: 2})
	v, err := e.Submit("match", nil, func(context.Context) (any, error) { return 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	v = waitState(t, e, v.ID, Done)
	if c := e.Counters(); c.PersistRetries != 2 {
		t.Errorf("PersistRetries = %d, want 2", c.PersistRetries)
	}
	if _, err := os.Stat(filepath.Join(dir, v.ID+".json")); err != nil {
		t.Errorf("job record missing after retried persist: %v", err)
	}
}

// TestPersistGiveUpNonFatal: a persist that exhausts all attempts is logged
// and dropped — the job itself still runs to completion, and the record is
// written by the next clean transition.
func TestPersistGiveUpNonFatal(t *testing.T) {
	defer faults.Reset()
	dir := t.TempDir()
	e, err := New(Config{Workers: 1, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, e)

	faults.Arm("jobs.persist", faults.Spec{Mode: faults.ModeError, Count: persistAttempts})
	v, err := e.Submit("match", nil, func(context.Context) (any, error) { return "ok", nil })
	if err != nil {
		t.Fatal(err)
	}
	v = waitState(t, e, v.ID, Done)
	if c := e.Counters(); c.PersistRetries != persistAttempts-1 {
		t.Errorf("PersistRetries = %d, want %d", c.PersistRetries, persistAttempts-1)
	}
	if _, err := os.Stat(filepath.Join(dir, v.ID+".json")); err != nil {
		t.Errorf("job record missing after later clean persist: %v", err)
	}
}

// TestRunFaultPanicIsolated: the jobs.run point fires inside the worker's
// recover scope, so an injected panic fails that one job and the worker
// lives on.
func TestRunFaultPanicIsolated(t *testing.T) {
	defer faults.Reset()
	e, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, e)

	faults.Arm("jobs.run", faults.Spec{Mode: faults.ModePanic, Count: 1})
	v, _ := e.Submit("match", nil, func(context.Context) (any, error) { return 1, nil })
	v = waitState(t, e, v.ID, Failed)
	if v.Error == "" {
		t.Error("injected panic produced an empty job error")
	}

	ok, _ := e.Submit("match", nil, func(context.Context) (any, error) { return 2, nil })
	waitState(t, e, ok.ID, Done)
}
