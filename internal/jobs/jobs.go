// Package jobs is subgeminid's async work engine: a bounded queue feeding
// a fixed worker pool, with job records that survive daemon restarts.
//
// Synchronous HTTP matching is bounded by request timeouts, which caps the
// work a client can ask for; extraction-scale runs (replacing every
// library cell in a million-device netlist) do not fit that envelope.  A
// job instead returns an id immediately and runs under a worker; clients
// poll its state and fetch the result when done.  Results are retained
// for a configurable TTL after completion and then pruned.
//
// States move queued → running → done | failed | cancelled.  Cancelling a
// queued job is immediate; cancelling a running job cancels its context,
// which the matcher polls at bounded intervals throughout both phases —
// including inside a single Phase II candidate's solve recursion — so the
// worker frees promptly even mid-way through a pathological match.
//
// Durability: with a directory configured, every state transition rewrites
// the job's record (<dir>/<id>.json, temp file + fsync + rename).  Record
// writes retry a bounded number of times with a short backoff before
// giving up — transient store I/O errors (a full page cache flush, an
// interrupted syscall) must not silently drop a transition — and the
// retry count is surfaced in Counters.PersistRetries.  A write that still
// fails after the retries is logged, not returned: an unwritable record
// must not wedge the job lifecycle (the in-memory state stays
// authoritative until restart).  On boot the engine replays the
// directory; any job found queued or running was interrupted by a crash
// and is marked failed — the engine cannot re-run it (the work closure
// died with the old process), but the client polling that id gets a
// truthful terminal state instead of a 404 or an eternal "running".
//
// Fault injection: the "jobs.persist" point fires on every record-write
// attempt and the "jobs.run" point fires before each work closure
// executes (see internal/faults), so tests and the chaos driver can prove
// the retry loop, the panic isolation, and the boot recovery actually
// work.
package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"subgemini/internal/faults"
	"subgemini/internal/obs"
)

func init() {
	faults.Register("jobs.persist", "each attempt to write a job record to disk (error exercises the retry loop)")
	faults.Register("jobs.run", "job runner invocation, before the work closure executes (panic exercises worker isolation)")
}

// State is a job's lifecycle position.
type State string

const (
	Queued    State = "queued"
	Running   State = "running"
	Done      State = "done"
	Failed    State = "failed"
	Cancelled State = "cancelled"
)

// Terminal reports whether a state is final.
func (s State) Terminal() bool { return s == Done || s == Failed || s == Cancelled }

// Sentinel errors for the API layer to map onto HTTP statuses.
var (
	ErrNotFound  = errors.New("no such job")
	ErrQueueFull = errors.New("job queue is full")
	ErrFinished  = errors.New("job already finished")
	ErrClosed    = errors.New("job engine is shut down")
)

// Config parameterizes New.
type Config struct {
	// Workers is the pool size; 0 selects 2.  Jobs are heavyweight
	// (extraction-scale), so the default stays well under GOMAXPROCS and
	// leaves cores for synchronous traffic.
	Workers int

	// Queue bounds jobs waiting for a worker; 0 selects 64.  A full queue
	// rejects Submit — admission control, not silent buffering.
	Queue int

	// Retention keeps finished jobs (and their results) visible for this
	// long; 0 selects 1h.  Pruning is piggybacked on Submit/Get/List, so
	// an idle engine holds records a little longer — never less.
	Retention time.Duration

	// Dir persists job records; "" keeps them in memory only (no crash
	// recovery).
	Dir string

	// Log, when non-nil, receives recovery, worker-panic, and persistence
	// lines as structured records; nil discards them.
	Log *slog.Logger
}

// View is the client-visible job record; it is also the persisted form.
type View struct {
	ID         string          `json:"id"`
	Kind       string          `json:"kind"`
	State      State           `json:"state"`
	Error      string          `json:"error,omitempty"`
	CreatedMS  int64           `json:"created_unix_ms"`
	StartedMS  int64           `json:"started_unix_ms,omitempty"`
	FinishedMS int64           `json:"finished_unix_ms,omitempty"`
	RequestID  string          `json:"request_id,omitempty"`
	Request    json.RawMessage `json:"request,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
}

// Runner is the work a job performs.  The context is cancelled when the
// job is cancelled or the engine shuts down hard; the returned value is
// marshalled as the job's result.
type Runner func(ctx context.Context) (any, error)

// job pairs the persisted view with the engine-side run state.
type job struct {
	view      View
	fn        Runner
	cancel    context.CancelFunc
	cancelReq bool
}

// Counters is the engine's monotonic counter set for /metrics.
type Counters struct {
	Submitted      int64
	Done           int64
	Failed         int64
	Cancelled      int64
	Recovered      int64 // interrupted jobs marked failed at boot
	PersistRetries int64 // record-write attempts retried after an I/O error
}

// Engine runs jobs.  Create one with New; stop it with Close.
type Engine struct {
	cfg        Config
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu     sync.Mutex
	jobs   map[string]*job
	queue  chan *job
	nextID int
	closed bool
	counts Counters

	wg sync.WaitGroup
}

// New builds an engine, replays any persisted records (marking interrupted
// jobs failed), and starts the worker pool.
func New(cfg Config) (*Engine, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Workers > runtime.GOMAXPROCS(0) {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 64
	}
	if cfg.Retention <= 0 {
		cfg.Retention = time.Hour
	}
	if cfg.Log == nil {
		cfg.Log = obs.Discard()
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{
		cfg:        cfg,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*job),
		queue:      make(chan *job, cfg.Queue),
	}
	if cfg.Dir != "" {
		if err := e.recover(); err != nil {
			cancel()
			return nil, err
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e, nil
}

func nowMS() int64 { return time.Now().UnixMilli() }

// recover replays the job directory: finished jobs are kept for their
// remaining retention; queued or running jobs were interrupted by a crash
// and become failed.  Unreadable records are renamed aside, not fatal — a
// torn job record must not keep the daemon (and every stored circuit)
// from booting.
func (e *Engine) recover() error {
	if err := os.MkdirAll(e.cfg.Dir, 0o755); err != nil {
		return err
	}
	des, err := os.ReadDir(e.cfg.Dir)
	if err != nil {
		return err
	}
	recovered := 0
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		path := filepath.Join(e.cfg.Dir, name)
		raw, err := os.ReadFile(path)
		var v View
		if err == nil {
			err = json.Unmarshal(raw, &v)
		}
		if err != nil || v.ID == "" {
			e.cfg.Log.Warn("job record unreadable; moved aside", "record", name, "err", err)
			os.Rename(path, path+".corrupt")
			continue
		}
		j := &job{view: v}
		if !v.State.Terminal() {
			j.view.State = Failed
			j.view.Error = "interrupted by daemon restart"
			j.view.FinishedMS = nowMS()
			e.persist(j)
			recovered++
			e.counts.Recovered++
			e.counts.Failed++
		}
		e.jobs[v.ID] = j
		if n, ok := idNumber(v.ID); ok && n >= e.nextID {
			e.nextID = n + 1
		}
	}
	if len(e.jobs) > 0 {
		e.cfg.Log.Info("recovered job records", "records", len(e.jobs), "failed_after_interruption", recovered)
	}
	return nil
}

// idNumber parses the numeric suffix of a job id.
func idNumber(id string) (int, bool) {
	rest, ok := strings.CutPrefix(id, "j-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	return n, err == nil
}

// Submit enqueues work.  The request payload is stored verbatim on the
// record for clients to correlate; fn runs when a worker frees.
func (e *Engine) Submit(kind string, request json.RawMessage, fn Runner) (View, error) {
	return e.SubmitWithRequestID(kind, "", request, fn)
}

// SubmitWithRequestID is Submit carrying the originating request's telemetry
// ID, persisted on the job record so a /debug/requests lookup by the
// submitting response's X-Request-Id finds the async work it spawned.
func (e *Engine) SubmitWithRequestID(kind, requestID string, request json.RawMessage, fn Runner) (View, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return View{}, ErrClosed
	}
	e.pruneLocked()
	if len(e.queue) == cap(e.queue) {
		return View{}, fmt.Errorf("%w (depth %d)", ErrQueueFull, cap(e.queue))
	}
	j := &job{
		view: View{
			ID:        fmt.Sprintf("j-%06d", e.nextID),
			Kind:      kind,
			State:     Queued,
			RequestID: requestID,
			CreatedMS: nowMS(),
			Request:   request,
		},
		fn: fn,
	}
	e.nextID++
	e.jobs[j.view.ID] = j
	e.counts.Submitted++
	e.persist(j)
	e.queue <- j // cannot block: len < cap checked under the same lock
	return j.view, nil
}

// worker drains the queue until Close closes it.
func (e *Engine) worker() {
	defer e.wg.Done()
	for j := range e.queue {
		e.run(j)
	}
}

// run executes one job through its lifecycle.
func (e *Engine) run(j *job) {
	e.mu.Lock()
	if j.view.State != Queued { // cancelled while waiting
		e.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(e.baseCtx)
	j.cancel = cancel
	j.view.State = Running
	j.view.StartedMS = nowMS()
	e.persist(j)
	fn := j.fn
	e.mu.Unlock()

	res, err := e.runSafe(fn, ctx)
	cancel()

	e.mu.Lock()
	defer e.mu.Unlock()
	j.view.FinishedMS = nowMS()
	j.fn, j.cancel = nil, nil
	switch {
	case err != nil && (j.cancelReq || errors.Is(err, context.Canceled)):
		j.view.State = Cancelled
		j.view.Error = err.Error()
		e.counts.Cancelled++
	case err != nil:
		j.view.State = Failed
		j.view.Error = err.Error()
		e.counts.Failed++
	default:
		raw, merr := json.Marshal(res)
		if merr != nil {
			j.view.State = Failed
			j.view.Error = fmt.Sprintf("marshalling result: %v", merr)
			e.counts.Failed++
			break
		}
		j.view.State = Done
		j.view.Result = raw
		e.counts.Done++
	}
	e.persist(j)
}

// runSafe isolates worker goroutines from panicking runners.
func (e *Engine) runSafe(fn Runner, ctx context.Context) (res any, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			e.cfg.Log.Error("job runner panicked", "panic", fmt.Sprint(rec))
			err = fmt.Errorf("job panicked: %v", rec)
		}
	}()
	// Inside the recover scope: an armed panic exercises the same isolation
	// a misbehaving runner would.
	if err := faults.Fire("jobs.run"); err != nil {
		return nil, err
	}
	return fn(ctx)
}

// Get returns one job's record.
func (e *Engine) Get(id string) (View, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pruneLocked()
	j, ok := e.jobs[id]
	if !ok {
		return View{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return j.view, nil
}

// List returns every retained record, newest first.
func (e *Engine) List() []View {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pruneLocked()
	out := make([]View, 0, len(e.jobs))
	for _, j := range e.jobs {
		out = append(out, j.view)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID > out[k].ID })
	return out
}

// Cancel stops a job: a queued job finalizes immediately; a running job
// has its context cancelled and finalizes when its runner returns (the
// returned View still says "running" in that window).  Cancelling a
// finished job is ErrFinished.
func (e *Engine) Cancel(id string) (View, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok {
		return View{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	switch j.view.State {
	case Queued:
		j.view.State = Cancelled
		j.view.Error = "cancelled before execution"
		j.view.FinishedMS = nowMS()
		j.fn = nil
		e.counts.Cancelled++
		e.persist(j)
	case Running:
		j.cancelReq = true
		if j.cancel != nil {
			j.cancel()
		}
	default:
		return j.view, fmt.Errorf("%w: %s is %s", ErrFinished, id, j.view.State)
	}
	return j.view, nil
}

// QueueDepth returns (queued, running) gauges.
func (e *Engine) QueueDepth() (queued, running int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, j := range e.jobs {
		switch j.view.State {
		case Queued:
			queued++
		case Running:
			running++
		}
	}
	return
}

// Counters returns the monotonic counter snapshot.
func (e *Engine) Counters() Counters {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.counts
}

// Close drains the engine: no new submissions, still-queued jobs are
// cancelled, and running jobs get until ctx's deadline to finish before
// their contexts are cancelled.  It returns once the workers exit.
func (e *Engine) Close(ctx context.Context) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	for _, j := range e.jobs {
		if j.view.State == Queued {
			j.view.State = Cancelled
			j.view.Error = "daemon shutting down"
			j.view.FinishedMS = nowMS()
			j.fn = nil
			e.counts.Cancelled++
			e.persist(j)
		}
	}
	close(e.queue)
	e.mu.Unlock()

	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Drain period expired: cancel every running job and wait for the
		// runners to notice (the matcher polls cancellation between passes
		// and candidates, so this converges).
		e.baseCancel()
		<-done
		return ctx.Err()
	}
}

// pruneLocked drops finished jobs past their retention, records included.
func (e *Engine) pruneLocked() {
	cutoff := nowMS() - e.cfg.Retention.Milliseconds()
	for id, j := range e.jobs {
		if j.view.State.Terminal() && j.view.FinishedMS > 0 && j.view.FinishedMS < cutoff {
			delete(e.jobs, id)
			if e.cfg.Dir != "" {
				os.Remove(filepath.Join(e.cfg.Dir, id+".json"))
			}
		}
	}
}

// persistAttempts and persistBackoff bound the record-write retry loop:
// up to three attempts with 2ms/4ms pauses (persist runs with e.mu held,
// so the total stall is kept under ~10ms even when every attempt fails).
const (
	persistAttempts = 3
	persistBackoff  = 2 * time.Millisecond
)

// persist rewrites one job record; called with e.mu held (or from the
// single-threaded boot replay).  Transient I/O errors are retried with a
// short bounded backoff; an error that survives every attempt is logged,
// not returned: an unwritable record must not wedge the job lifecycle
// (the in-memory state stays authoritative until restart).
func (e *Engine) persist(j *job) {
	if e.cfg.Dir == "" {
		return
	}
	var err error
	for attempt := 0; attempt < persistAttempts; attempt++ {
		if attempt > 0 {
			e.counts.PersistRetries++
			time.Sleep(persistBackoff << (attempt - 1))
		}
		if err = e.persistOnce(j); err == nil {
			return
		}
	}
	e.cfg.Log.Error("persisting job record failed", "job", j.view.ID, "attempts", persistAttempts, "err", err)
}

// persistOnce is one atomic record-write attempt: temp file, fsync, rename.
func (e *Engine) persistOnce(j *job) error {
	if err := faults.Fire("jobs.persist"); err != nil {
		return err
	}
	path := filepath.Join(e.cfg.Dir, j.view.ID+".json")
	tmp, err := os.CreateTemp(e.cfg.Dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	enc := json.NewEncoder(tmp)
	enc.SetIndent("", "  ")
	err = enc.Encode(&j.view)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), path)
	}
	return err
}
