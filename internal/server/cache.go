package server

import (
	"container/list"
	"fmt"
	"sort"
	"sync"

	"subgemini/internal/graph"
	"subgemini/internal/netlist"
	"subgemini/internal/stdcell"
)

// Pattern sources, reported by /v1/cells.
const (
	sourceBuiltin  = "builtin"
	sourceUploaded = "uploaded"
)

// defaultMaxPatterns bounds the compiled-pattern cache when the operator
// does not set Config.MaxPatterns.  Patterns are small (tens of devices),
// so the bound guards against unbounded growth from adversarial or buggy
// clients uploading endless distinct patterns, not against ordinary use.
const defaultMaxPatterns = 256

// patternCache holds compiled pattern graphs keyed by name, so a pattern is
// parsed and built once and served from memory afterwards.  Entries hold an
// immutable template circuit; every use clones it, because matching marks
// global nets on the pattern and concurrent requests must not share that
// state.
//
// The cache is bounded: at most cap entries, evicted least-recently-used.
// Eviction is safe for both sources — built-in cells recompile on demand
// (a future miss), and uploaded patterns persisted by the store reload the
// same way uploaded circuits do (re-upload otherwise).
type patternCache struct {
	mu        sync.Mutex
	cap       int
	entries   map[string]*list.Element // value: *patternEntry
	lru       *list.List               // front = most recently used
	hits      int64
	misses    int64
	evictions int64
}

// patternEntry is one compiled pattern.
type patternEntry struct {
	name     string
	source   string // sourceBuiltin or sourceUploaded
	template *graph.Circuit
	uses     int64
}

func newPatternCache(capacity int) *patternCache {
	if capacity <= 0 {
		capacity = defaultMaxPatterns
	}
	return &patternCache{
		cap:     capacity,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// touchLocked moves an entry to the MRU position.
func (pc *patternCache) touchLocked(el *list.Element) {
	pc.lru.MoveToFront(el)
}

// insertLocked installs (or replaces) an entry and evicts down to cap.
func (pc *patternCache) insertLocked(e *patternEntry) {
	if el, ok := pc.entries[e.name]; ok {
		el.Value = e
		pc.lru.MoveToFront(el)
		return
	}
	pc.entries[e.name] = pc.lru.PushFront(e)
	for pc.lru.Len() > pc.cap {
		back := pc.lru.Back()
		victim := back.Value.(*patternEntry)
		pc.lru.Remove(back)
		delete(pc.entries, victim.name)
		pc.evictions++
	}
}

// resolve returns a private clone of the named pattern, compiling it on
// first use: a cached entry is a hit; a built-in cell compiled on demand is
// a miss; an unknown name is an error.  count=false (preloading) records
// neither hits nor misses.
func (pc *patternCache) resolve(name string, count bool) (*graph.Circuit, bool, error) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.entries[name]; ok {
		e := el.Value.(*patternEntry)
		if count {
			pc.hits++
		}
		e.uses++
		pc.touchLocked(el)
		return e.template.Clone(), true, nil
	}
	def := stdcell.Get(name)
	if def == nil {
		return nil, false, fmt.Errorf("no pattern named %q (built-in cells and uploaded patterns; see /v1/cells)", name)
	}
	if count {
		pc.misses++
	}
	e := &patternEntry{name: name, source: sourceBuiltin, template: def.Pattern(), uses: 1}
	if !count {
		e.uses = 0
	}
	pc.insertLocked(e)
	return e.template.Clone(), false, nil
}

// put stores a compiled uploaded pattern, replacing any same-named entry,
// and records a miss (the caller just paid the parse+build cost).
func (pc *patternCache) put(name string, template *graph.Circuit, count bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if count {
		pc.misses++
	}
	uses := int64(1)
	if !count {
		uses = 0
	}
	pc.insertLocked(&patternEntry{name: name, source: sourceUploaded, template: template, uses: uses})
}

// template returns the cached immutable template for name, if present.
// Callers must not mutate it (clone first).
func (pc *patternCache) template(name string) (*graph.Circuit, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.entries[name]; ok {
		return el.Value.(*patternEntry).template, true
	}
	return nil, false
}

// compileNetlist parses inline pattern netlist source and compiles the
// selected .SUBCKT (subckt may be empty when the source defines exactly
// one).  The compiled pattern is cached under its subcircuit name, so later
// requests can refer to it by name alone.
func (pc *patternCache) compileNetlist(src, subckt string, count bool) (*graph.Circuit, error) {
	f, err := netlist.ParseString(src, "pattern")
	if err != nil {
		return nil, err
	}
	if subckt == "" {
		if len(f.Subckts) != 1 {
			return nil, fmt.Errorf("pattern netlist defines %d subcircuits; select one with \"subckt\"", len(f.Subckts))
		}
		for name := range f.Subckts {
			subckt = name
		}
	}
	template, err := f.Pattern(subckt)
	if err != nil {
		return nil, err
	}
	pc.put(subckt, template, count)
	return template.Clone(), nil
}

// cellInfo is one row of the /v1/cells listing.
type cellInfo struct {
	Name    string   `json:"name"`
	Source  string   `json:"source"`
	Devices int      `json:"devices"`
	Nets    int      `json:"nets"`
	Ports   []string `json:"ports"`
	Cached  bool     `json:"cached"`
	Uses    int64    `json:"uses"`
}

// list returns every known pattern — cached entries plus not-yet-compiled
// built-in cells — sorted by name.
func (pc *patternCache) list() []cellInfo {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	byName := make(map[string]cellInfo)
	for _, def := range stdcell.All() {
		byName[def.Name] = cellInfo{
			Name:    def.Name,
			Source:  sourceBuiltin,
			Devices: def.NumTransistors(),
			Ports:   def.Ports,
		}
	}
	for name, el := range pc.entries {
		e := el.Value.(*patternEntry)
		info := cellInfo{
			Name:    name,
			Source:  e.source,
			Devices: e.template.NumDevices(),
			Nets:    e.template.NumNets(),
			Cached:  true,
			Uses:    e.uses,
		}
		for _, p := range e.template.Ports() {
			info.Ports = append(info.Ports, p.Name)
		}
		byName[name] = info
	}
	out := make([]cellInfo, 0, len(byName))
	for _, info := range byName {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// cacheCounters is a snapshot of the cache's accounting.
type cacheCounters struct {
	hits      int64
	misses    int64
	evictions int64
	size      int
}

func (pc *patternCache) counters() cacheCounters {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return cacheCounters{hits: pc.hits, misses: pc.misses, evictions: pc.evictions, size: pc.lru.Len()}
}
