package server

// HTTP surface of the incremental mutation engine: PATCH /v1/circuits/{name}
// applies a batch of edit ops through store.ApplyEdits (snapshot isolation:
// in-flight matches keep the pre-edit circuit through their handles), GET
// /v1/circuits/{name}/versions exposes the edit history, and the match and
// sweep paths consult a shared delta.ResultCache so a query against a
// slowly-changing circuit replays candidate outcomes from the last complete
// run instead of re-verifying the whole graph (core.FindIncremental).
//
// Cache policy: entries are keyed by (circuit name, pattern structure) and
// record the circuit version they describe.  A PATCH never invalidates —
// the retained delta.Steps are exactly what lets a stale entry be carried
// forward — while PUT and DELETE drop every entry of the circuit, since a
// replacement starts a new version lineage the steps cannot bridge.

import (
	"errors"
	"net/http"
	"strconv"
	"strings"

	"subgemini/internal/core"
	"subgemini/internal/delta"
	"subgemini/internal/graph"
	"subgemini/internal/obs"
	"subgemini/internal/store"
)

// PatchRequest is the body of PATCH /v1/circuits/{name}: one atomic batch
// of edit ops.  The whole batch applies or none of it does.
type PatchRequest struct {
	Ops []delta.Op `json:"ops"`
}

// PatchResponse reports the edit outcome: the circuit's new shape and
// version.
type PatchResponse struct {
	Circuit CircuitInfo `json:"circuit"`
	Applied int         `json:"applied"`
}

func (s *Server) handleCircuitPatch(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req PatchRequest
	if e := decodeBody(r, &req); e != nil {
		writeError(w, e)
		return
	}
	if len(req.Ops) == 0 {
		writeError(w, errf(http.StatusBadRequest, `patch has no "ops"`))
		return
	}
	sc := obs.ScopeFromContext(r.Context())
	ref := sc.Begin(obs.KindPersist, name)
	sc.AttrInt(ref, "ops", int64(len(req.Ops)))
	info, err := s.store.ApplyEdits(name, req.Ops)
	sc.End(ref)
	if err != nil {
		switch {
		case errors.Is(err, store.ErrNotFound):
			writeError(w, errf(http.StatusNotFound, "no circuit named %q; see GET /v1/circuits", name))
		case strings.Contains(err.Error(), "replaced during the edit"):
			writeError(w, errf(http.StatusConflict, "%v", err))
		default:
			// Validation errors (unknown device, global rename, ...) are the
			// client's problem; nothing was modified.
			writeError(w, errf(http.StatusBadRequest, "%v", err))
		}
		return
	}
	writeJSON(w, http.StatusOK, PatchResponse{Circuit: infoJSON(info), Applied: len(req.Ops)})
}

func (s *Server) handleCircuitVersions(w http.ResponseWriter, r *http.Request) {
	vl, err := s.store.Versions(r.PathValue("name"))
	if err != nil {
		writeError(w, errf(http.StatusNotFound, "no circuit named %q", r.PathValue("name")))
		return
	}
	writeJSON(w, http.StatusOK, vl)
}

// IncrementalJSON reports how a run used the result cache: mode is "full"
// (no usable capture; the run still captured for next time), "replay"
// (candidates outside the blast radius were replayed), or "legacy" (options
// incompatible with capture).  BaseVersion is the capture the run replayed
// from (0 when none).
type IncrementalJSON struct {
	Mode        string `json:"mode"`
	BaseVersion uint64 `json:"base_version,omitempty"`
	Replayed    int    `json:"replayed"`
	Recomputed  int    `json:"recomputed"`
}

// sinceVersion parses the ?since_version= query parameter (0 when absent
// or unparsable — the hint is best-effort, never an error).
func sinceVersion(r *http.Request) uint64 {
	v, _ := strconv.ParseUint(r.URL.Query().Get("since_version"), 10, 64)
	return v
}

// incEnabled reports whether the incremental path is on for this daemon.
func (s *Server) incEnabled() bool { return s.rcache != nil }

// incLookup resolves a cache entry into (previous state, dirty set) for a
// run against the circuit version the handle leases.  minBase, when > 0,
// refuses captures older than that version (the request's since_version
// floor).  Any gap — cold cache, steps aged out, a concurrent PATCH racing
// the handle — degrades to (nil, nil): a full run that re-captures.
func (s *Server) incLookup(h *store.Handle, key string, minBase uint64) (*core.IncrementalState, *core.DirtySet, uint64) {
	ver, prev, ok := s.rcache.Lookup(h.Name(), key)
	if !ok || (minBase > 0 && ver < minBase) {
		return nil, nil, 0
	}
	steps, cur, ok := s.store.StepsSince(h.Name(), ver)
	if !ok || cur != h.Version() {
		return nil, nil, 0
	}
	if len(steps) == 0 {
		// Same version: nothing dirty, every outcome replays.
		return prev, identityDirtySet(h.CSR()), ver
	}
	ds, err := delta.Compose(steps)
	if err != nil {
		return nil, nil, 0
	}
	return prev, ds, ver
}

// identityDirtySet is the dirty set of "no edits at all": identity remaps,
// nothing dirty, nothing touched.
func identityDirtySet(view *core.CSR) *core.DirtySet {
	idDev := make([]int32, view.NumDevs)
	for i := range idDev {
		idDev[i] = int32(i)
	}
	idNet := make([]int32, view.NumNets)
	for i := range idNet {
		idNet[i] = int32(i)
	}
	return &core.DirtySet{DevOld2New: idDev, NetOld2New: idNet}
}

// sweepIncHook adapts the daemon's result cache to sweep.Incremental for
// one sweep invocation: the circuit name and version are pinned to the
// acquired handle, so every per-pattern lookup and store is consistent
// even while PATCHes land concurrently.
type sweepIncHook struct {
	s       *Server
	h       *store.Handle
	minBase uint64
}

func (hk *sweepIncHook) Lookup(pat *graph.Circuit, opts core.Options) (*core.IncrementalState, *core.DirtySet, bool) {
	prev, ds, _ := hk.s.incLookup(hk.h, delta.PatternKey(pat, opts), hk.minBase)
	return prev, ds, prev != nil
}

func (hk *sweepIncHook) Store(pat *graph.Circuit, opts core.Options, st *core.IncrementalState) {
	hk.s.rcache.Store(hk.h.Name(), delta.PatternKey(pat, opts), hk.h.Version(), st)
}
