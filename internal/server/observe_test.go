package server

import (
	"net/http"
	"strings"
	"testing"
)

// TestMetricsHistogramsAndPatternCounters drives a few matches through the
// daemon and checks the observability series added on top of the flat
// counters: per-phase duration histograms and pattern-labeled candidate
// outcome counters.
func TestMetricsHistogramsAndPatternCounters(t *testing.T) {
	s, want := newAdderServer(t, nil)
	const runs = 3
	for i := 0; i < runs; i++ {
		if rec := do(t, s, "POST", "/v1/match", MatchRequest{Pattern: "FA"}); rec.Code != http.StatusOK {
			t.Fatalf("match %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
	}
	rec := do(t, s, "GET", "/metrics", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: status %d", rec.Code)
	}
	m := parseMetrics(t, rec.Body.String())

	for _, phase := range []string{"phase1", "phase2"} {
		count := m["subgeminid_match_"+phase+"_seconds_count"]
		if count != runs {
			t.Errorf("%s histogram count = %v, want %d", phase, count, runs)
		}
		if inf := m["subgeminid_match_"+phase+"_seconds_bucket{le=\"+Inf\"}"]; inf != runs {
			t.Errorf("%s +Inf bucket = %v, want %d", phase, inf, runs)
		}
		// Buckets are cumulative: each le series must be monotone and the
		// widest finite bucket must hold every sub-10s run.
		prev := 0.0
		for _, le := range []string{"1e-05", "0.0001", "0.001", "0.01", "0.1", "1", "10"} {
			key := "subgeminid_match_" + phase + `_seconds_bucket{le="` + le + `"}`
			v, ok := m[key]
			if !ok {
				t.Fatalf("missing histogram series %s\n%s", key, rec.Body.String())
			}
			if v < prev {
				t.Errorf("%s not monotone at le=%s: %v < %v", phase, le, v, prev)
			}
			prev = v
		}
		if prev != runs {
			t.Errorf("%s le=10 bucket = %v, want %d (runs faster than 10s)", phase, prev, runs)
		}
	}

	pc := func(name string) float64 { return m[`subgeminid_pattern_`+name+`_total{pattern="FA"}`] }
	if pc("runs") != runs {
		t.Errorf("pattern runs = %v, want %d", pc("runs"), runs)
	}
	if pc("instances") != float64(runs*want) {
		t.Errorf("pattern instances = %v, want %d", pc("instances"), runs*want)
	}
	if pc("candidates_matched") == 0 {
		t.Error("pattern candidates_matched = 0, want > 0")
	}
	if pc("candidates_matched")+pc("candidates_failed") != pc("candidates") {
		t.Errorf("matched %v + failed %v != candidates %v",
			pc("candidates_matched"), pc("candidates_failed"), pc("candidates"))
	}
}

// TestPprofEndpoints checks that the Go profiling handlers are mounted on
// the daemon mux (index page plus a named profile and the cmdline probe).
func TestPprofEndpoints(t *testing.T) {
	s, _ := newAdderServer(t, nil)
	for _, path := range []string{
		"/debug/pprof/",
		"/debug/pprof/goroutine?debug=1",
		"/debug/pprof/cmdline",
	} {
		rec := do(t, s, "GET", path, nil)
		if rec.Code != http.StatusOK {
			t.Errorf("GET %s: status %d: %s", path, rec.Code, rec.Body.String())
		}
	}
	if rec := do(t, s, "GET", "/debug/pprof/", nil); !strings.Contains(rec.Body.String(), "goroutine") {
		t.Error("pprof index does not list the goroutine profile")
	}
}
