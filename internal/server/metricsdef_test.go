package server

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"subgemini/internal/stats"
	"subgemini/internal/sweep"
)

// TestMetricsReferenceSync is the registry↔dump staleness gate: a fully
// populated metrics dump must render exactly the families MetricsReference
// declares, and every declared family must appear in the dump.  Adding a
// metric to metrics.write without documenting it here (and regenerating
// OPERATIONS.md) fails tier-1, and so does documenting a metric that no
// longer exists.
func TestMetricsReferenceSync(t *testing.T) {
	var m metrics
	// Populate the labeled series so their families appear in the dump.
	m.observe("X", &stats.Report{})
	m.observeSweep(&sweep.Report{
		Results:  []sweep.PatternResult{{Name: "X"}},
		Runs:     1,
		Duration: time.Millisecond,
	})
	var buf bytes.Buffer
	m.write(&buf, externalMetrics{ready: true, storeHealthy: true})

	expected := map[string]bool{}
	for _, d := range MetricsReference() {
		if d.Type == "histogram" {
			expected[d.Name+"_bucket"] = true
			expected[d.Name+"_sum"] = true
			expected[d.Name+"_count"] = true
		} else {
			expected[d.Name] = true
		}
	}
	seen := map[string]bool{}
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		seen[name] = true
		if !expected[name] {
			t.Errorf("dump renders %q but MetricsReference does not declare it", name)
		}
	}
	for name := range expected {
		if !seen[name] {
			t.Errorf("MetricsReference declares %q but the dump never renders it", name)
		}
	}
}

// TestMetricsReferenceMarkdown pins the table shape docgen splices into
// OPERATIONS.md: a header, one row per family, names backquoted.
func TestMetricsReferenceMarkdown(t *testing.T) {
	md := MetricsReferenceMarkdown()
	lines := strings.Split(strings.TrimRight(md, "\n"), "\n")
	if want := len(MetricsReference()) + 2; len(lines) != want {
		t.Fatalf("markdown table has %d lines, want %d", len(lines), want)
	}
	if !strings.HasPrefix(lines[0], "| Metric |") {
		t.Errorf("table header = %q", lines[0])
	}
	for _, line := range lines[2:] {
		if !strings.HasPrefix(line, "| `subgeminid_") {
			t.Errorf("table row %q does not lead with a backquoted metric name", line)
		}
	}
}
