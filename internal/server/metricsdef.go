package server

import (
	"fmt"
	"strings"
)

// MetricDef describes one metric family of the /metrics dump for the
// generated OPERATIONS.md reference.  The registry below is the single
// source of truth the runbook is generated from; TestMetricsReferenceSync
// keeps it equal to what metrics.write actually renders, and the docgen
// staleness gate keeps OPERATIONS.md equal to the registry — so a metric
// added to the dump without a registry entry (or vice versa) fails tier-1.
type MetricDef struct {
	Name   string // family name as rendered (histograms: base name)
	Type   string // "counter", "gauge", or "histogram"
	Labels string // label key, "" for unlabeled families
	Desc   string // one-line operator-facing description
}

// MetricsReference returns every metric family subgeminid exposes, in dump
// order.
func MetricsReference() []MetricDef {
	return []MetricDef{
		{"subgeminid_requests_total", "counter", "", "HTTP requests served, any route"},
		{"subgeminid_requests_errors_total", "counter", "", "responses with status >= 400"},
		{"subgeminid_requests_timeouts_total", "counter", "", "match requests that hit their deadline (504)"},
		{"subgeminid_requests_rejected_total", "counter", "", "match requests that found no slot before their deadline (503)"},
		{"subgeminid_shed_total", "counter", "endpoint", "bulk requests turned away by load shedding (429), by endpoint: batch, jobs, sweep"},
		{"subgeminid_ready", "gauge", "", "1 when /readyz reports ready, 0 while draining or store-degraded"},
		{"subgeminid_matches_inflight", "gauge", "", "match runs executing right now"},
		{"subgeminid_match_runs_total", "counter", "", "finished match runs"},
		{"subgeminid_match_early_aborts_total", "counter", "", "runs Phase I refuted without entering Phase II"},
		{"subgeminid_match_instances_total", "counter", "", "verified instances found"},
		{"subgeminid_match_matched_devices_total", "counter", "", "main-circuit devices covered by found instances"},
		{"subgeminid_match_candidates_total", "counter", "", "Phase II candidates examined"},
		{"subgeminid_match_cv_entries_total", "counter", "", "candidate-vector entries produced by Phase I"},
		{"subgeminid_match_phase1_passes_total", "counter", "", "Phase I relabeling passes"},
		{"subgeminid_match_phase2_passes_total", "counter", "", "Phase II propagation passes"},
		{"subgeminid_match_guesses_total", "counter", "", "Phase II guesses (ambiguous-partition splits)"},
		{"subgeminid_match_backtracks_total", "counter", "", "Phase II backtracks from failed guesses"},
		{"subgeminid_match_verify_calls_total", "counter", "", "candidate verification calls"},
		{"subgeminid_match_phase1_seconds_total", "counter", "", "summed Phase I wall time, seconds"},
		{"subgeminid_match_phase2_seconds_total", "counter", "", "summed Phase II wall time, seconds"},
		{"subgeminid_match_region_vertices_total", "counter", "", "vertices inside extracted Phase II candidate regions (region engine)"},
		{"subgeminid_match_region_max_size", "gauge", "", "largest Phase II candidate region extracted since boot"},
		{"subgeminid_pattern_cache_size", "gauge", "", "compiled patterns resident in the cache"},
		{"subgeminid_pattern_cache_hits_total", "counter", "", "pattern cache hits"},
		{"subgeminid_pattern_cache_misses_total", "counter", "", "pattern cache misses (compiles)"},
		{"subgeminid_pattern_cache_evictions_total", "counter", "", "patterns LRU-evicted from the cache"},
		{"subgeminid_pattern_cache_hit_rate", "gauge", "", "hits / (hits + misses) since boot"},
		{"subgeminid_store_circuits", "gauge", "", "circuits the store holds, resident or demoted"},
		{"subgeminid_store_resident", "gauge", "", "circuits currently resident in memory"},
		{"subgeminid_store_resident_bytes", "gauge", "", "estimated bytes of resident circuits"},
		{"subgeminid_store_evictions_total", "counter", "", "circuits demoted to their snapshots under the byte budget"},
		{"subgeminid_store_reloads_total", "counter", "", "demoted circuits reloaded from snapshots on demand"},
		{"subgeminid_store_healthy", "gauge", "", "1 when the store's last persistence operation succeeded"},
		{"subgeminid_delta_edits_total", "counter", "", "edit batches applied via PATCH /v1/circuits/{name}"},
		{"subgeminid_csr_rebuilds_total", "counter", "", "edits whose CSR patch degenerated to a full rebuild (large blast radius)"},
		{"subgeminid_result_cache_hits_total", "counter", "", "incremental result-cache lookups that found a usable capture"},
		{"subgeminid_result_cache_misses_total", "counter", "", "incremental result-cache lookups that forced a full, re-capturing run"},
		{"subgeminid_result_cache_invalidations_total", "counter", "", "result-cache entries dropped by circuit replacement or deletion (PATCH never invalidates)"},
		{"subgeminid_jobs_submitted_total", "counter", "", "async jobs accepted"},
		{"subgeminid_jobs_done_total", "counter", "", "async jobs finished successfully"},
		{"subgeminid_jobs_failed_total", "counter", "", "async jobs that failed (errors, panics, interrupted-at-boot)"},
		{"subgeminid_jobs_cancelled_total", "counter", "", "async jobs cancelled by clients or shutdown"},
		{"subgeminid_jobs_recovered_total", "counter", "", "interrupted job records marked failed at boot"},
		{"subgeminid_jobs_persist_retries_total", "counter", "", "job record writes retried after an I/O error"},
		{"subgeminid_jobs_queued", "gauge", "", "jobs waiting for a worker"},
		{"subgeminid_jobs_running", "gauge", "", "jobs executing right now"},
		{"subgeminid_circuit_devices", "gauge", "", "device count of the default circuit"},
		{"subgeminid_circuit_nets", "gauge", "", "net count of the default circuit"},
		{"subgeminid_sweeps_total", "counter", "", "library sweeps executed"},
		{"subgeminid_sweep_patterns_total", "counter", "", "patterns swept, deduplicated ones included"},
		{"subgeminid_sweep_deduped_total", "counter", "", "patterns answered from a structural twin's run"},
		{"subgeminid_sweep_instances_total", "counter", "", "instances found across all sweep patterns"},
		{"subgeminid_faults_armed", "gauge", "", "fault-injection points currently armed (0 in production)"},
		{"subgeminid_faults_fired_total", "counter", "", "injected faults fired since boot"},
		{"subgeminid_slow_requests_total", "counter", "", "requests over the -slow-request threshold (each also logs a slow-request line and is kept by the flight recorder)"},
		{"subgeminid_request_spans_total", "counter", "kind", "telemetry spans recorded, by kind: queue-wait, shed-check, store-get, csr-build, phase1, phase2, cache-lookup, persist"},
		{"subgeminid_flight_recorder_kept_total", "counter", "reason", "timelines the flight recorder kept, by reason: shed, cancel, error, slow, sampled"},
		{"subgeminid_match_phase1_seconds", "histogram", "le", "Phase I wall time per run, decade buckets 10µs..10s"},
		{"subgeminid_match_phase2_seconds", "histogram", "le", "Phase II wall time per run, decade buckets 10µs..10s"},
		{"subgeminid_sweep_seconds", "histogram", "le", "sweep wall time per invocation, decade buckets 10µs..10s"},
		{"subgeminid_pattern_runs_total", "counter", "pattern", "match runs per pattern"},
		{"subgeminid_pattern_candidates_total", "counter", "pattern", "Phase II candidates examined per pattern"},
		{"subgeminid_pattern_candidates_matched_total", "counter", "pattern", "candidates that verified per pattern"},
		{"subgeminid_pattern_candidates_failed_total", "counter", "pattern", "candidates Phase II rejected per pattern (the selectivity number worth alerting on)"},
		{"subgeminid_pattern_instances_total", "counter", "pattern", "instances found per pattern"},
		{"subgeminid_sweep_pattern_runs_total", "counter", "pattern", "sweep runs per pattern label (bounded cardinality; overflow under \"_other\")"},
		{"subgeminid_sweep_pattern_early_aborts_total", "counter", "pattern", "sweep runs Phase I refuted per pattern label"},
		{"subgeminid_sweep_pattern_candidates_total", "counter", "pattern", "sweep Phase II candidates per pattern label"},
		{"subgeminid_sweep_pattern_pruned_total", "counter", "pattern", "sweep candidates pruned by Phase I per pattern label"},
		{"subgeminid_sweep_pattern_instances_total", "counter", "pattern", "sweep instances per pattern label"},
	}
}

// MetricsReferenceMarkdown renders the registry as the markdown table
// docgen splices into OPERATIONS.md.
func MetricsReferenceMarkdown() string {
	var b strings.Builder
	b.WriteString("| Metric | Type | Labels | Description |\n")
	b.WriteString("|---|---|---|---|\n")
	for _, d := range MetricsReference() {
		labels := d.Labels
		if labels == "" {
			labels = "—"
		}
		fmt.Fprintf(&b, "| `%s` | %s | %s | %s |\n", d.Name, d.Type, labels, d.Desc)
	}
	return b.String()
}
