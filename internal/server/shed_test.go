package server

import (
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"subgemini/internal/faults"
)

// TestShedOrderUnderInflightBudget: with one match holding the inflight
// budget, the bulk endpoints — batch, jobs, sweep — are shed with 429 and
// a Retry-After header while a second single match still gets through.
func TestShedOrderUnderInflightBudget(t *testing.T) {
	s, want := newAdderServer(t, func(c *Config) {
		c.MaxConcurrent = 2
		c.ShedInflight = 1
		c.RetryAfter = 3 * time.Second
	})
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	blocking := make(chan bool, 1)
	blocking <- true
	s.testCandidateHook = func() {
		// Only the first match blocks; the shed-order probe match below
		// must run to completion while the budget is exceeded.
		select {
		case <-blocking:
			once.Do(func() { close(started) })
			<-release
		default:
		}
	}

	first := make(chan int, 1)
	go func() {
		first <- do(t, s, "POST", "/v1/match", MatchRequest{Pattern: "FA"}).Code
	}()
	<-started

	for _, tc := range []struct {
		endpoint, path string
		body           any
	}{
		{"batch", "/v1/match/batch", BatchRequest{Requests: []MatchRequest{{Pattern: "INV"}}}},
		{"jobs", "/v1/jobs", JobRequest{Kind: "match", Match: &MatchRequest{Pattern: "INV"}}},
		{"sweep", "/v1/sweep", SweepRequest{Patterns: []string{"INV"}}},
	} {
		rec := do(t, s, "POST", tc.path, tc.body)
		if rec.Code != http.StatusTooManyRequests {
			t.Errorf("%s under load: status %d, want 429: %s", tc.endpoint, rec.Code, rec.Body.String())
		}
		if got := rec.Header().Get("Retry-After"); got != "3" {
			t.Errorf("%s Retry-After = %q, want \"3\"", tc.endpoint, got)
		}
		if !strings.Contains(rec.Body.String(), `"shed": true`) {
			t.Errorf("%s shed response not structured: %s", tc.endpoint, rec.Body.String())
		}
	}

	// The single-match path stays live: the second slot serves it even
	// though every bulk endpoint is being turned away.
	rec := do(t, s, "POST", "/v1/match", MatchRequest{Pattern: "FA"})
	if rec.Code != http.StatusOK {
		t.Fatalf("single match under shed: status %d: %s", rec.Code, rec.Body.String())
	}
	if resp := decodeMatch(t, rec); resp.Count != want {
		t.Errorf("single match under shed found %d, want %d", resp.Count, want)
	}

	close(release)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("budget-holding match: status %d", code)
	}

	// Budget free again: the bulk endpoints recover.
	rec = do(t, s, "POST", "/v1/match/batch", BatchRequest{Requests: []MatchRequest{{Pattern: "INV"}}})
	if rec.Code != http.StatusOK {
		t.Fatalf("batch after load: status %d: %s", rec.Code, rec.Body.String())
	}

	met := parseMetrics(t, do(t, s, "GET", "/metrics", nil).Body.String())
	for _, ep := range []string{"batch", "jobs", "sweep"} {
		key := `subgeminid_shed_total{endpoint="` + ep + `"}`
		if met[key] != 1 {
			t.Errorf("%s = %v, want 1", key, met[key])
		}
	}
}

// TestShedMemoryBudget: a 1-byte heap budget sheds every bulk request
// immediately while single matches keep working.
func TestShedMemoryBudget(t *testing.T) {
	s, want := newAdderServer(t, func(c *Config) { c.ShedMemoryBytes = 1 })
	rec := do(t, s, "POST", "/v1/jobs", JobRequest{Kind: "match", Match: &MatchRequest{Pattern: "FA"}})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("job submit over memory budget: status %d, want 429", rec.Code)
	}
	rec = do(t, s, "POST", "/v1/match", MatchRequest{Pattern: "FA"})
	if rec.Code != http.StatusOK {
		t.Fatalf("match over memory budget: status %d, want 200", rec.Code)
	}
	if resp := decodeMatch(t, rec); resp.Count != want {
		t.Errorf("match found %d, want %d", resp.Count, want)
	}
}

// TestReadyzDrainAndStoreHealth: /readyz follows the draining flag and the
// store's persistence health while /healthz stays 200 throughout.
func TestReadyzDrainAndStoreHealth(t *testing.T) {
	defer faults.Reset()
	s, _ := newAdderServer(t, func(c *Config) { c.DataDir = t.TempDir() })
	if rec := do(t, s, "GET", "/readyz", nil); rec.Code != http.StatusOK {
		t.Fatalf("fresh /readyz: status %d: %s", rec.Code, rec.Body.String())
	}

	s.SetDraining(true)
	rec := do(t, s, "GET", "/readyz", nil)
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "draining") {
		t.Errorf("draining /readyz: status %d body %q, want 503 draining", rec.Code, rec.Body.String())
	}
	if rec := do(t, s, "GET", "/healthz", nil); rec.Code != http.StatusOK {
		t.Errorf("draining /healthz: status %d, want 200 (liveness is not readiness)", rec.Code)
	}
	s.SetDraining(false)

	// A failed snapshot write degrades readiness; the next clean
	// persistence operation restores it.
	faults.Arm("store.write-snapshot", faults.Spec{Mode: faults.ModeError, Count: 1})
	if rec := do(t, s, "PUT", "/v1/circuits/c1", nandNetlist); rec.Code == http.StatusOK {
		t.Fatal("circuit PUT succeeded despite injected snapshot-write failure")
	}
	rec = do(t, s, "GET", "/readyz", nil)
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "store") {
		t.Errorf("degraded /readyz: status %d body %q, want 503 store", rec.Code, rec.Body.String())
	}
	met := parseMetrics(t, do(t, s, "GET", "/metrics", nil).Body.String())
	if met["subgeminid_ready"] != 0 || met["subgeminid_store_healthy"] != 0 {
		t.Errorf("ready=%v store_healthy=%v, want 0 0",
			met["subgeminid_ready"], met["subgeminid_store_healthy"])
	}

	if rec := do(t, s, "PUT", "/v1/circuits/c1", nandNetlist); rec.Code != http.StatusOK {
		t.Fatalf("clean circuit PUT: status %d: %s", rec.Code, rec.Body.String())
	}
	if rec := do(t, s, "GET", "/readyz", nil); rec.Code != http.StatusOK {
		t.Errorf("recovered /readyz: status %d: %s", rec.Code, rec.Body.String())
	}
}

// TestReadyzFlipsDuringReload: with an entry demoted to its snapshot, an
// injected reload failure fails the match that needed it and flips
// readiness; the retry reloads cleanly and recovers.
func TestReadyzFlipsDuringReload(t *testing.T) {
	defer faults.Reset()
	s, _ := newAdderServer(t, func(c *Config) {
		c.DataDir = t.TempDir()
		c.MaxStoreBytes = 1 // every idle snapshotted entry demotes
	})
	if rec := do(t, s, "PUT", "/v1/circuits/c1", nandNetlist); rec.Code != http.StatusOK {
		t.Fatalf("PUT c1: status %d: %s", rec.Code, rec.Body.String())
	}

	faults.Arm("store.reload", faults.Spec{Mode: faults.ModeError, Count: 1})
	rec := do(t, s, "POST", "/v1/match", MatchRequest{Circuit: "c1", Pattern: "NAND2"})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("match during failed reload: status %d, want 500: %s", rec.Code, rec.Body.String())
	}
	if rec := do(t, s, "GET", "/readyz", nil); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("/readyz during failed reload: status %d, want 503", rec.Code)
	}

	rec = do(t, s, "POST", "/v1/match", MatchRequest{Circuit: "c1", Pattern: "NAND2"})
	if rec.Code != http.StatusOK {
		t.Fatalf("match after reload recovery: status %d: %s", rec.Code, rec.Body.String())
	}
	if resp := decodeMatch(t, rec); resp.Count != 1 {
		t.Errorf("reloaded match found %d NAND2, want 1", resp.Count)
	}
	if rec := do(t, s, "GET", "/readyz", nil); rec.Code != http.StatusOK {
		t.Errorf("/readyz after recovery: status %d", rec.Code)
	}
}

// TestInjectedHandlerFaults: the server.handler point turns requests away
// with 503 in error mode and exercises panic isolation in panic mode — a
// request dies mid-flight with a 500 and the daemon keeps serving.
func TestInjectedHandlerFaults(t *testing.T) {
	defer faults.Reset()
	s, want := newAdderServer(t, nil)

	faults.Arm("server.handler", faults.Spec{Mode: faults.ModeError, Count: 1})
	if rec := do(t, s, "GET", "/v1/circuits", nil); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("error-mode request: status %d, want 503", rec.Code)
	}

	faults.Arm("server.handler", faults.Spec{Mode: faults.ModePanic, Count: 1})
	if rec := do(t, s, "POST", "/v1/match", MatchRequest{Pattern: "FA"}); rec.Code != http.StatusInternalServerError {
		t.Errorf("panic-mode request: status %d, want 500", rec.Code)
	}

	// The daemon survived the mid-request kill.
	rec := do(t, s, "POST", "/v1/match", MatchRequest{Pattern: "FA"})
	if rec.Code != http.StatusOK {
		t.Fatalf("post-panic match: status %d: %s", rec.Code, rec.Body.String())
	}
	if resp := decodeMatch(t, rec); resp.Count != want {
		t.Errorf("post-panic match found %d, want %d", resp.Count, want)
	}
	met := parseMetrics(t, do(t, s, "GET", "/metrics", nil).Body.String())
	if met["subgeminid_faults_fired_total"] < 2 {
		t.Errorf("faults_fired_total = %v, want >= 2", met["subgeminid_faults_fired_total"])
	}
}
